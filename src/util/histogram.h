// Fixed-bucket log2 latency histogram.
//
// Client-latency accounting at campaign scale cannot keep raw samples
// (util::Samples is exact but O(ops) memory — a 1M-op run would hold
// megabytes per metric) and a running mean/max loses exactly the tail the
// recovery-interference experiments care about. The histogram is the
// classic fixed-size compromise: 4 sub-buckets per power of two from 1 µs
// upward, so any percentile is off by at most ~19% of the value (one
// quarter-octave), with O(1) record and a few hundred bytes of state.
// Deterministic: bucket edges are pure functions of the value, and
// percentile() interpolates linearly inside the winning bucket.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/check.h"

namespace ecf::util {

class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;        // per octave (power of two)
  static constexpr int kOctaves = 36;          // 1 µs .. ~19 h
  static constexpr double kMinLatency = 1e-6;  // seconds; below → bucket 0
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;

  void record(double seconds) {
    ++count_;
    sum_ += seconds;
    max_ = std::max(max_, seconds);
    ++buckets_[bucket_of(seconds)];
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // NaN-safe: no samples → 0, not 0/0.
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double sum() const { return sum_; }

  // q in [0, 1]; returns 0 with no samples. Linear interpolation within
  // the winning bucket against its geometric [lower, upper) bounds.
  double percentile(double q) const {
    if (count_ == 0) return 0.0;
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const std::uint64_t next = seen + buckets_[b];
      if (static_cast<double>(next) >= target) {
        const double lo = bucket_lower(b);
        const double hi = std::min(bucket_upper(b), max_);
        const double frac =
            (target - static_cast<double>(seen)) / buckets_[b];
        return lo + (hi > lo ? (hi - lo) * std::clamp(frac, 0.0, 1.0) : 0.0);
      }
      seen = next;
    }
    return max_;
  }

  // Number of samples recorded since `prev` (an earlier snapshot of this
  // same histogram — counts are monotone, so plain subtraction is exact).
  std::uint64_t count_since(const LatencyHistogram& prev) const {
    return count_ - prev.count_;
  }

  // Percentile over only the samples recorded since `prev`: the classic
  // iostat-style interval metric, computed from per-bucket count deltas.
  // The interval max is unknown, so the winning bucket interpolates
  // against min(bucket_upper, lifetime max) — same quarter-octave error
  // bound as percentile().
  double percentile_since(const LatencyHistogram& prev, double q) const {
    const std::uint64_t dcount = count_since(prev);
    if (dcount == 0) return 0.0;
    const double target = q * static_cast<double>(dcount);
    std::uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t d = buckets_[b] - prev.buckets_[b];
      if (d == 0) continue;
      const std::uint64_t next = seen + d;
      if (static_cast<double>(next) >= target) {
        const double lo = bucket_lower(b);
        const double hi = std::min(bucket_upper(b), max_);
        const double frac = (target - static_cast<double>(seen)) / d;
        return lo + (hi > lo ? (hi - lo) * std::clamp(frac, 0.0, 1.0) : 0.0);
      }
      seen = next;
    }
    return max_;
  }

  void merge(const LatencyHistogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  void reset() { *this = LatencyHistogram{}; }

  // Raw bucket access for serialization (iostat deltas, campaign JSON).
  std::uint64_t bucket_count(int b) const {
    ECF_DCHECK(b >= 0 && b < kNumBuckets);
    return buckets_[b];
  }
  static double bucket_lower(int b) {
    return kMinLatency *
           std::exp2(static_cast<double>(b) / kSubBuckets);
  }
  static double bucket_upper(int b) {
    return kMinLatency *
           std::exp2(static_cast<double>(b + 1) / kSubBuckets);
  }

  static int bucket_of(double seconds) {
    if (!(seconds > kMinLatency)) return 0;  // NaN/negative/tiny → floor
    const int b = static_cast<int>(
        std::log2(seconds / kMinLatency) * kSubBuckets);
    return std::clamp(b, 0, kNumBuckets - 1);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
  std::uint64_t buckets_[kNumBuckets] = {};
};

}  // namespace ecf::util
