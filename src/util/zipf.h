// Zipfian rank sampler (YCSB-style) for skewed object popularity.
//
// Draws ranks in [0, n) with P(rank k) ∝ 1/(k+1)^theta, then scrambles the
// rank through a splitmix64 mix so "popular" objects are spread across the
// id space instead of clustering at low ids (which would otherwise land hot
// objects on adjacent PGs). theta = 0 degenerates to uniform; theta in
// (0, 1) is the classic YCSB range (0.99 ≈ "zipfian" default).
//
// The sampler is deterministic: it consumes exactly one uniform01() draw
// per sample from the caller-owned Rng, so client op traces replay
// bit-identically for a fixed seed.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.h"
#include "util/rng.h"

namespace ecf::util {

class ZipfianSampler {
 public:
  // n: population size (> 0). theta: skew in [0, 1); 0 = uniform.
  ZipfianSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    ECF_CHECK_GE(n, std::uint64_t{1}) << " zipfian population must be > 0";
    ECF_CHECK_GE(theta, 0.0) << " zipfian theta must be in [0, 1)";
    ECF_CHECK_LT(theta, 1.0) << " zipfian theta must be in [0, 1)";
    if (theta_ > 0.0) {
      zetan_ = zeta(n_, theta_);
      const double zeta2 = zeta(2, theta_);
      alpha_ = 1.0 / (1.0 - theta_);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2 / zetan_);
    }
  }

  // Unscrambled zipf rank: 0 is the most popular.
  std::uint64_t rank(Rng& rng) const {
    const double u = rng.uniform01();
    if (theta_ == 0.0) {
      std::uint64_t r = static_cast<std::uint64_t>(u * static_cast<double>(n_));
      return r < n_ ? r : n_ - 1;
    }
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const double r = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t k = static_cast<std::uint64_t>(r);
    return k < n_ ? k : n_ - 1;
  }

  // Zipf rank scrambled over [0, n): deterministic permutation-ish spread
  // (splitmix64 mix mod n; collisions are acceptable for load generation).
  std::uint64_t sample(Rng& rng) const {
    const std::uint64_t k = rank(rng);
    if (theta_ == 0.0) return k;
    std::uint64_t z = k + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z % n_;
  }

  double theta() const { return theta_; }
  std::uint64_t population() const { return n_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    // Direct sum for small n; Euler–Maclaurin tail estimate past the
    // cutoff keeps construction O(1e5) even for n = 1e9.
    constexpr std::uint64_t kExact = 100000;
    double sum = 0.0;
    const std::uint64_t limit = n < kExact ? n : kExact;
    for (std::uint64_t i = 1; i <= limit; ++i) {
      sum += std::pow(static_cast<double>(i), -theta);
    }
    if (n > kExact) {
      // integral_{kExact}^{n} x^-theta dx + midpoint correction
      const double a = static_cast<double>(kExact);
      const double b = static_cast<double>(n);
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
                 (1.0 - theta) +
             0.5 * (std::pow(a, -theta) + std::pow(b, -theta));
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace ecf::util
