// Lightweight statistics accumulators used by the metrics layer and the
// benchmark harnesses (mean/stddev via Welford, exact percentiles on demand).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ecf::util {

// Streaming mean / variance (Welford). O(1) memory; no percentiles.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  void merge(const RunningStats& other);
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores all samples; supports exact percentiles. Used where sample counts
// are modest (per-experiment timings).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  // q in [0,1]; linear interpolation between closest ranks.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  const std::vector<double>& raw() const { return xs_; }
  void reset() { xs_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

// Fixed-width text table writer for bench output. Collects rows of strings
// and prints an aligned, markdown-ish table; the bench binaries use it so
// their output reads like the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style double formatting helper ("%.2f" etc).
std::string fmt_double(double v, int precision = 2);

}  // namespace ecf::util
