#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace ecf::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ecf::util
