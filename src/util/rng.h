// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (placement hashing jitter,
// workload generation, fault timing) draws from an explicitly seeded Rng so
// that a whole experiment is reproducible bit-for-bit from its seed. We use
// xoshiro256** (public domain, Blackman & Vigna) rather than <random>
// engines because its state is tiny, splitting is cheap, and its output is
// stable across standard library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace ecf::util {

// splitmix64: used to expand a single 64-bit seed into xoshiro state and to
// derive independent child seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xEC'FA'17ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  // Derive an independent stream; children with different tags are
  // decorrelated even when derived from the same parent.
  Rng child(std::uint64_t tag) const {
    std::uint64_t mix = s_[0] ^ (tag * 0x9e3779b97f4a7c15ull) ^ s_[3];
    return Rng(mix);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift with rejection.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t x;
    do {
      x = next();
    } while (x >= limit);
    return x % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  bool bernoulli(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ecf::util

#include <cmath>

namespace ecf::util {
inline double Rng::exponential(double mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid log(0).
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}
}  // namespace ecf::util
