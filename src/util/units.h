// Strong quantity types for dimensioned values, read by tools/ecf_analyze
// (rule family `unit-*`, DESIGN.md §14).
//
// Every number this simulator reports — chunk sizes, WA ratios, recovery
// throughput, latency percentiles — is a dimensioned quantity, and the
// paper's conclusions flip when a configuration parameter is scaled in the
// wrong unit. A silent MiB-vs-bytes or s-vs-ms slip corrupts every figure
// while all tests stay green, so the config/report spine of the codebase
// declares its dimensions in the type system:
//
//   Bytes    integral byte count (sizes, capacities, transfer amounts)
//   Mib      fractional mebibyte count (human-scale reporting)
//   SimSec   simulated seconds (the engine's native time unit)
//   Millis   fractional milliseconds (log/report formatting)
//   ChunkIx  chunk index inside a stripe (0..n-1; an ordinal, not a size)
//   Rate     bytes per second (bandwidths, throughputs)
//
// Construction from a raw number is ALWAYS explicit — writing
// `SimSec{interval_ms}` forces the author to look at the unit — while
// conversion back to the raw representation is implicit, so arithmetic,
// comparisons and formatting at read sites stay byte-for-byte identical
// to the pre-typed code (the sweep in PR 8 changed no golden digest).
// Cross-unit conversions never happen implicitly: they are named factory
// functions (Millis::of(SimSec), Mib::of(Bytes), Mib::to_bytes()) with
// checked edges, so the only way to move a value between units is to name
// the conversion.
//
// The types carry the static half of the discipline; the dynamic half is
// tools/ecf_analyze's `check_units` pass, which also infers dimensions
// from canonical name suffixes (_bytes, _mib, _ms, _s, _frac, …), literal
// scale idioms (* 1024 * 1024, / 1e6) and a registry of known signatures
// (Engine::schedule delays, LatencyHistogram::record, fabric bandwidth
// fields). A deliberate cross-unit expression the analyzer would flag is
// annotated in place:
//
//   double mbps = bps / 1e6;  ECF_UNIT_OK("decimal MB/s for the iostat row");
//
// ECF_UNIT_OK(reason) expands to nothing; the reason string is the point.
// Prefer, in order: (1) fix the unit, (2) use a strong type or canonical
// suffix so the inference is right, (3) ECF_UNIT_OK with a reason, and
// only then (4) a baseline entry.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

#define ECF_UNIT_OK(reason)

namespace ecf::util {

// Integral byte count. The representation is exactly the uint64_t the
// pre-typed code used, and the implicit conversion returns it unchanged.
class Bytes {
 public:
  constexpr Bytes() = default;
  explicit constexpr Bytes(std::uint64_t v) : v_(v) {}
  constexpr std::uint64_t count() const { return v_; }
  constexpr operator std::uint64_t() const { return v_; }
  constexpr Bytes& operator+=(Bytes o) { v_ += o.v_; return *this; }
  constexpr Bytes& operator-=(Bytes o) {
    ECF_DCHECK(v_ >= o.v_);
    v_ -= o.v_;
    return *this;
  }

 private:
  std::uint64_t v_ = 0;
};

// Fractional mebibyte count, for human-scale reporting (a 52.3 MiB shard).
// Kept separate from Bytes so the 2^20 scale factor can never be applied
// twice or forgotten: the only bridges are the named conversions below.
class Mib {
 public:
  constexpr Mib() = default;
  explicit constexpr Mib(double v) : v_(v) {}
  constexpr double count() const { return v_; }
  constexpr operator double() const { return v_; }

  static constexpr Mib of(Bytes b) {
    return Mib(static_cast<double>(b.count()) / kScale);
  }
  // Checked narrowing back to integral bytes: negative or too-large MiB
  // counts are programming errors, not values to saturate silently.
  Bytes to_bytes() const {
    ECF_CHECK(v_ >= 0.0);
    ECF_CHECK(v_ <= kMaxConvertible);
    return Bytes(static_cast<std::uint64_t>(v_ * kScale));
  }

  static constexpr double kScale = 1024.0 * 1024.0;
  // Largest MiB count whose byte equivalent round-trips through double
  // into uint64_t without overflow (2^64 / 2^20, below the next rounding
  // step of the double lattice at that magnitude).
  static constexpr double kMaxConvertible = 17592186044415.0;  // 2^44 - 1

 private:
  double v_ = 0;
};

// Simulated seconds — the engine's native unit (sim::SimTime is the same
// quantity as a raw double; SimSec is its declared-dimension spelling for
// config and report fields).
class SimSec {
 public:
  constexpr SimSec() = default;
  explicit constexpr SimSec(double v) : v_(v) {}
  constexpr double count() const { return v_; }
  constexpr operator double() const { return v_; }
  constexpr SimSec& operator+=(SimSec o) { v_ += o.v_; return *this; }
  constexpr SimSec& operator-=(SimSec o) { v_ -= o.v_; return *this; }

 private:
  double v_ = 0;
};

// Fractional milliseconds, for log lines and latency tables. Like
// Mib-vs-Bytes, the 1e3 factor lives only in the named conversions.
class Millis {
 public:
  constexpr Millis() = default;
  explicit constexpr Millis(double v) : v_(v) {}
  constexpr double count() const { return v_; }
  constexpr operator double() const { return v_; }

  static constexpr Millis of(SimSec s) { return Millis(s.count() * 1e3); }
  constexpr SimSec to_sim_sec() const { return SimSec(v_ * 1e-3); }

 private:
  double v_ = 0;
};

// Chunk index inside a stripe (0..n-1). An ordinal: adding two chunk
// indices is meaningless, multiplying one by a chunk size yields bytes.
// Implicitly usable anywhere a container index is expected.
class ChunkIx {
 public:
  constexpr ChunkIx() = default;
  explicit constexpr ChunkIx(std::uint32_t v) : v_(v) {}
  constexpr std::uint32_t count() const { return v_; }
  constexpr operator std::size_t() const { return v_; }

 private:
  std::uint32_t v_ = 0;
};

// Bytes per second: link bandwidths, device throughputs, iostat rates.
// `bytes_over` is the one sanctioned rate × time product; it returns a
// raw double because a partial transfer is genuinely fractional.
class Rate {
 public:
  constexpr Rate() = default;
  explicit constexpr Rate(double bytes_per_s) : v_(bytes_per_s) {}
  constexpr double count() const { return v_; }
  constexpr operator double() const { return v_; }

  constexpr double bytes_over(SimSec t) const { return v_ * t.count(); }
  static constexpr Rate of(Bytes b, SimSec t) {
    return Rate(t.count() > 0 ? static_cast<double>(b.count()) / t.count()
                              : 0.0);
  }

 private:
  double v_ = 0;
};

}  // namespace ecf::util
