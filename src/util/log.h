// Minimal leveled logger for the library's own diagnostics.
//
// Note: this is *not* the paper's "Logger" component — that lives in
// src/ecfault/logger.h and deals with collecting simulated-DSS log records.
// This one exists so library code can report progress/warnings without
// pulling in a logging framework.
#pragma once

#include <sstream>
#include <string>

namespace ecf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded. Defaults to kWarn so
// tests and benches stay quiet unless something is wrong.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emit one line to stderr as "[LEVEL] message".
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ecf::util

#define ECF_LOG(level)                                            \
  if (static_cast<int>(level) < static_cast<int>(::ecf::util::log_level())) \
    ;                                                             \
  else                                                            \
    ::ecf::util::detail::LogStream(level)

#define ECF_DEBUG ECF_LOG(::ecf::util::LogLevel::kDebug)
#define ECF_INFO ECF_LOG(::ecf::util::LogLevel::kInfo)
#define ECF_WARN ECF_LOG(::ecf::util::LogLevel::kWarn)
#define ECF_ERROR ECF_LOG(::ecf::util::LogLevel::kError)
