// Minimal JSON value / parser / writer.
//
// ECFault experiment profiles (the paper's "EC Manager ... experimental
// profile") are JSON documents. We implement a small, dependency-free JSON
// layer rather than pulling in a third-party library: objects preserve
// insertion order (nice for emitted profiles), numbers are stored as double
// with an integer fast-path, and parse errors carry line/column info.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecf::util {

class Json;
using JsonArray = std::vector<Json>;
// Insertion-ordered object representation.
using JsonMember = std::pair<std::string, Json>;

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(unsigned v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const {
    require(Type::kBool);
    return bool_;
  }
  double as_double() const {
    require(Type::kNumber);
    return num_;
  }
  std::int64_t as_int() const {
    require(Type::kNumber);
    return static_cast<std::int64_t>(num_);
  }
  std::uint64_t as_uint() const {
    require(Type::kNumber);
    return static_cast<std::uint64_t>(num_);
  }
  const std::string& as_string() const {
    require(Type::kString);
    return str_;
  }
  const JsonArray& as_array() const {
    require(Type::kArray);
    return arr_;
  }
  JsonArray& as_array() {
    require(Type::kArray);
    return arr_;
  }

  // --- object access -------------------------------------------------------
  // set() inserts or replaces (preserving first-insert position).
  Json& set(const std::string& key, Json value);
  bool has(const std::string& key) const;
  // at() throws JsonError if missing.
  const Json& at(const std::string& key) const;
  // get_or returns fallback when the key is absent.
  bool get_or(const std::string& key, bool fallback) const;
  double get_or(const std::string& key, double fallback) const;
  std::int64_t get_or(const std::string& key, std::int64_t fallback) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  const std::vector<JsonMember>& members() const {
    require(Type::kObject);
    return obj_;
  }

  // --- array helpers -------------------------------------------------------
  void push_back(Json v) {
    require(Type::kArray);
    arr_.push_back(std::move(v));
  }
  std::size_t size() const;

  // --- serialization -------------------------------------------------------
  // indent < 0 → compact; otherwise pretty-printed with that indent width.
  std::string dump(int indent = -1) const;

  // Parse a complete JSON document (trailing garbage is an error).
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void require(Type t) const;
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  std::vector<JsonMember> obj_;
};

}  // namespace ecf::util
