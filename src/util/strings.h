// Small string helpers shared by the JSON parser, profile loader and loggers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ecf::util {

// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Case-sensitive substring check (used by log keyword classification).
bool contains(std::string_view haystack, std::string_view needle);

std::string to_lower(std::string_view s);

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace ecf::util
