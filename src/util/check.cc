#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__)
#include <execinfo.h>
#include <unistd.h>
#endif

namespace ecf::util {

namespace {

CheckFailure make_failure(const char* file, int line, const char* condition,
                          const std::string& message) {
  return CheckFailure(file, line, condition, message);
}

std::atomic<CheckFailureHandler> g_handler{&aborting_check_failure_handler};

std::string render(const char* file, int line, const char* condition,
                   const std::string& message) {
  std::string out = "contract violated at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += condition;
  out += message;
  return out;
}

}  // namespace

CheckFailure::CheckFailure(const char* file, int line, std::string condition,
                           std::string message)
    : std::logic_error(render(file, line, condition.c_str(), message)),
      file_(file),
      line_(line),
      condition_(std::move(condition)),
      message_(std::move(message)) {}

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  if (handler == nullptr) handler = &aborting_check_failure_handler;
  return g_handler.exchange(handler);
}

CheckFailureHandler check_failure_handler() { return g_handler.load(); }

void aborting_check_failure_handler(const char* file, int line,
                                    const char* condition,
                                    const std::string& message) {
  const std::string text = render(file, line, condition, message);
  std::fprintf(stderr, "[FATAL] %s\n", text.c_str());
#if defined(__GLIBC__)
  void* frames[64];
  const int depth = backtrace(frames, 64);
  std::fprintf(stderr, "backtrace (%d frames):\n", depth);
  backtrace_symbols_fd(frames, depth, STDERR_FILENO);
#endif
  std::fflush(stderr);
  std::abort();
}

void throwing_check_failure_handler(const char* file, int line,
                                    const char* condition,
                                    const std::string& message) {
  throw make_failure(file, line, condition, message);
}

void check_failed(const char* file, int line, const char* condition,
                  const std::string& message) {
  g_handler.load()(file, line, condition, message);
  // Handlers must not return; if a custom one does, failing open would let
  // execution continue past a violated contract.
  std::fprintf(stderr,
               "[FATAL] check failure handler returned; aborting (%s:%d)\n",
               file, line);
  std::abort();
}

}  // namespace ecf::util
