// Byte-size constants and human-readable formatting.
//
// All sizes in this codebase are expressed in plain uint64_t bytes; this
// header provides the IEC constants (KiB/MiB/GiB) used throughout and a
// formatter for logs and reports.
#pragma once

#include <cstdint>
#include <string>

namespace ecf::util {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

// Render a byte count as e.g. "64.0 MiB", "4.0 KiB", "17 B".
// Chooses the largest unit whose value is >= 1.
inline std::string format_bytes(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t scale;
    const char* suffix;
  };
  static constexpr Unit units[] = {
      {TiB, "TiB"}, {GiB, "GiB"}, {MiB, "MiB"}, {KiB, "KiB"}};
  for (const auto& u : units) {
    if (bytes >= u.scale) {
      const double v = static_cast<double>(bytes) / static_cast<double>(u.scale);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f %s", v, u.suffix);
      return buf;
    }
  }
  return std::to_string(bytes) + " B";
}

// Integer ceiling division; used pervasively by the striping / padding math.
inline constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Round `a` up to the next multiple of `align` (align > 0).
inline constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t align) {
  return ceil_div(a, align) * align;
}

}  // namespace ecf::util
