// Event-path resource-discipline annotations, read by tools/ecf_analyze
// (rule family `event-*`, DESIGN.md §13).
//
// ECF_ALLOC_OK(reason) marks a deliberate dynamic allocation on an
// event-execution path — a site the analyzer would otherwise flag under
// `event-alloc`. It expands to nothing; the reason string is the point:
// it must say why the allocation cannot spike event latency, e.g.
//
//   lane.slots.emplace_back();  ECF_ALLOC_OK("amortized: slab high-water");
//
// Legitimate reasons are (1) amortized growth into capacity that is
// reused across events (slab/free-list high-water marks), (2) setup-time
// code that runs once per campaign before the event loop, and (3)
// genuinely cold paths (fault handling that fires a handful of times per
// run). Per-event allocations are never OK — route them through
// util::Arena / util::Pool instead (src/util/arena.h).
//
// The other two event-path classes escape with comment allows:
// `// ecf-analyze: allow(event-throw)` / `allow(event-block)`.
#pragma once

#define ECF_ALLOC_OK(reason)
