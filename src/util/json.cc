#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ecf::util {

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

// Recursive-descent parser over a string_view with line/col tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", col " + std::to_string(col) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Allow // comments in profiles — handy for annotated experiment files.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': parse_literal("true"); return Json(true);
      case 'f': parse_literal("false"); return Json(false);
      case 'n': parse_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  void parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = advance();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return obj;
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return arr;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogates not combined; the
            // profiles are ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '+') fail("leading '+' is not valid JSON");
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number '" + token + "'");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Emit integers without a fractional part (profile values are mostly
  // integral byte counts and counts).
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Json::require(Type t) const {
  if (type_ != t) {
    throw JsonError(std::string("JSON type mismatch: want ") + type_name(t) +
                    ", have " + type_name(type_));
  }
}

Json& Json::set(const std::string& key, Json value) {
  require(Type::kObject);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

bool Json::has(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  require(Type::kObject);
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw JsonError("missing JSON key '" + key + "'");
}

bool Json::get_or(const std::string& key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}
double Json::get_or(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_double() : fallback;
}
std::int64_t Json::get_or(const std::string& key, std::int64_t fallback) const {
  return has(key) ? at(key).as_int() : fallback;
}
std::string Json::get_or(const std::string& key,
                         const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray: return arr_.size();
    case Type::kObject: return obj_.size();
    case Type::kString: return str_.size();
    default: return 0;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) *
                                                   (static_cast<std::size_t>(depth) + 1),
                                               ' ')
                                 : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth),
                           ' ')
             : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        if (pretty) {
          out += '\n';
          out += pad;
        }
        append_escaped(out, k);
        out += pretty ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

Json Json::parse(std::string_view text) {
  Parser p(text);
  return p.parse_document();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

}  // namespace ecf::util
