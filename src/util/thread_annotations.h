// Clang thread-safety annotation macros (ECF_GUARDED_BY and friends).
//
// Two checkers consume these annotations:
//   * clang's -Wthread-safety (wired into the build when the compiler is
//     clang and ECF_THREAD_SAFETY_ANALYSIS is ON) — the macros expand to
//     the real attributes;
//   * tools/ecf_analyze's lock-discipline pass, which parses the macro
//     names textually, so the discipline is enforced even on GCC builds
//     where the attributes expand to nothing.
//
// Conventions (DESIGN.md §9): every member mutated by more than one thread
// is either std::atomic or carries ECF_GUARDED_BY(mu); every function that
// assumes a caller-held lock carries ECF_REQUIRES(mu); functions that
// acquire a lock the caller must not already hold carry ECF_EXCLUDES(mu).
#pragma once

#if defined(__clang__)
#define ECF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ECF_THREAD_ANNOTATION_(x)
#endif

// On a member: only read/written with `mu` held.
#define ECF_GUARDED_BY(mu) ECF_THREAD_ANNOTATION_(guarded_by(mu))

// On a pointer member: the pointee (not the pointer) is protected by `mu`.
#define ECF_PT_GUARDED_BY(mu) ECF_THREAD_ANNOTATION_(pt_guarded_by(mu))

// On a function: caller must hold `mu` (exclusively / shared).
#define ECF_REQUIRES(...) \
  ECF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ECF_REQUIRES_SHARED(...) \
  ECF_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On a function: caller must NOT hold `mu` (the function acquires it).
#define ECF_EXCLUDES(...) ECF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: acquires / releases `mu` before returning.
#define ECF_ACQUIRE(...) \
  ECF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ECF_RELEASE(...) \
  ECF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// On a class: it is a lockable type / a scoped lock-holder.
#define ECF_CAPABILITY(name) ECF_THREAD_ANNOTATION_(capability(name))
#define ECF_SCOPED_CAPABILITY ECF_THREAD_ANNOTATION_(scoped_lockable)

// Escape hatch for code the analysis cannot model; pair with a comment.
#define ECF_NO_THREAD_SAFETY_ANALYSIS \
  ECF_THREAD_ANNOTATION_(no_thread_safety_analysis)
