#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ecf::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           o.mean_ * static_cast<double>(o.n_)) / n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
  n_ += o.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size()));
}

double Samples::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Samples::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Samples::percentile(double q) const {
  if (xs_.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  ensure_sorted();
  const double rank = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    out << "|";
    for (std::size_t i = 0; i < r.size(); ++i) {
      out << ' ' << r[i];
      out << std::string(w[i] - r[i].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    out << std::string(w[i] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace ecf::util
