// Bump arena and slab pool for campaign-scale simulator state.
//
// Million-object campaigns allocate the same few transient structures —
// recovery op state, repair shapes, scratch vectors — millions of times.
// Routing those through the general-purpose heap costs both time (malloc
// metadata, locking) and memory (per-allocation headers, fragmentation).
// The arena answers with two primitives:
//
//  * Arena — a bump allocator over geometrically-growing blocks. alloc()
//    is a pointer increment; nothing is freed individually. Trivially-
//    destructible payloads only (enforced by make<T>); release happens
//    wholesale via the owner's destructor or reset().
//  * Pool<T> — a typed slab free list on top of an Arena: acquire() hands
//    out a constructed T (recycled slabs are destroyed+reconstructed, so
//    each acquire sees a fresh object), release() returns it in O(1).
//    For the per-op / per-round protocol state that churns at event rate.
//
// Neither is thread-safe; the simulator is single-threaded by design
// (DESIGN.md §11) and campaign workers each own their cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>  // ecf-lint: allow(naked-new)
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ecf::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 4096)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw aligned storage; never individually freed.
  void* alloc(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    ECF_DCHECK((align & (align - 1)) == 0) << " alignment not a power of two";
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  // Placement-construct a T. Trivially destructible only: the arena never
  // runs destructors, so anything owning memory would leak.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena payloads are never destroyed individually");
    return ::new (alloc(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);  // ecf-lint: allow(naked-new)
  }

  // Drop every allocation but keep the blocks for reuse (campaign reruns
  // hit a warm arena instead of re-growing from scratch).
  void reset() {
    blocks_.resize(blocks_.empty() ? 0 : 1);
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(blocks_[0].data.get());
      limit_ = cursor_ + blocks_[0].bytes;
    } else {
      cursor_ = limit_ = 0;
    }
    allocated_ = 0;
  }

  std::size_t allocated_bytes() const { return allocated_; }
  std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.bytes;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes;
  };

  void grow(std::size_t at_least) {
    std::size_t bytes = next_block_bytes_;
    while (bytes < at_least) bytes *= 2;
    next_block_bytes_ = bytes * 2;  // geometric growth caps block count
    blocks_.push_back(Block{std::make_unique<std::byte[]>(bytes), bytes});
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().data.get());
    limit_ = cursor_ + bytes;
  }

  std::vector<Block> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_block_bytes_;
  std::size_t allocated_ = 0;
};

// Typed slab free list. acquire() returns a fresh, default-or-arg
// constructed T; release() recycles the slab without touching the arena.
// T may own memory (vectors, strings): destructors run on release-path
// reconstruction and in the Pool destructor for outstanding slabs — the
// slab memory itself comes from the arena and is reclaimed wholesale.
template <typename T>
class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() {
    // Destroy every slab ever handed out that is currently free; live
    // objects must have been released (or leaked deliberately at teardown,
    // in which case their memory still frees with the arena).
    for (T* p : free_) p->~T();
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    ++acquired_;
    if (!free_.empty()) {
      T* p = free_.back();
      free_.pop_back();
      p->~T();
      return ::new (static_cast<void*>(p)) T(std::forward<Args>(args)...);  // ecf-lint: allow(naked-new)
    }
    ++slabs_;
    void* raw = arena_.alloc(sizeof(T), alignof(T));
    return ::new (raw) T(std::forward<Args>(args)...);  // ecf-lint: allow(naked-new)
  }

  void release(T* p) {
    if (p == nullptr) return;
    free_.push_back(p);
  }

  // Total distinct slabs carved from the arena — the pool's high-water
  // mark of simultaneously-live objects. Bench output uses this to show
  // per-op allocations stayed O(high-water), not O(ops).
  std::size_t slab_count() const { return slabs_; }
  std::size_t acquired_count() const { return acquired_; }

 private:
  Arena arena_{sizeof(T) < 256 ? 4096 : sizeof(T) * 16};
  std::vector<T*> free_;
  std::size_t slabs_ = 0;
  std::size_t acquired_ = 0;
};

}  // namespace ecf::util
