// Runtime contract framework: ECF_CHECK / ECF_DCHECK and friends.
//
// The simulator's credibility rests on internal invariants (monotonic event
// time, legal PG transitions, conservation of placed bytes, cache-ratio
// accounting). These macros turn "should never happen" comments into
// machine-checked contracts:
//
//   ECF_CHECK(cond) << "context";          // always on, release included
//   ECF_CHECK_EQ/NE/LT/LE/GT/GE(a, b);     // prints both operands on failure
//   ECF_DCHECK(cond), ECF_DCHECK_EQ(...);  // compiled out unless
//                                          // ECF_ENABLE_DCHECKS (CMake)
//
// Cost model: a passing check is a single predictable branch; the failure
// message (including streamed operands) is only formatted on the cold path,
// so checks are safe on hot paths like Engine::schedule and the GF matrix
// kernels.
//
// Failure policy is pluggable via set_check_failure_handler():
//   * aborting_check_failure_handler (default) — prints the message and a
//     backtrace to stderr, then aborts. Right for tools and benches where a
//     violated invariant means the results are garbage.
//   * throwing_check_failure_handler — throws CheckFailure. Installed by the
//     test suite (tests/testing/scoped_checks.h) so contract violations are
//     assertable with EXPECT_THROW.
// A handler must not return; if one does, check_failed() aborts anyway.
#pragma once

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ecf::util {

// Exception thrown by throwing_check_failure_handler.
class CheckFailure : public std::logic_error {
 public:
  CheckFailure(const char* file, int line, std::string condition,
               std::string message);

  const std::string& file() const { return file_; }
  int line() const { return line_; }
  const std::string& condition() const { return condition_; }
  const std::string& message() const { return message_; }

 private:
  std::string file_;
  int line_;
  std::string condition_;
  std::string message_;
};

using CheckFailureHandler = void (*)(const char* file, int line,
                                     const char* condition,
                                     const std::string& message);

// Install a handler; returns the previous one. Thread-safe.
CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler);
CheckFailureHandler check_failure_handler();

// The two stock policies (see header comment).
[[noreturn]] void aborting_check_failure_handler(const char* file, int line,
                                                 const char* condition,
                                                 const std::string& message);
[[noreturn]] void throwing_check_failure_handler(const char* file, int line,
                                                 const char* condition,
                                                 const std::string& message);

// Dispatches to the installed handler; aborts if the handler returns.
[[noreturn]] void check_failed(const char* file, int line,
                               const char* condition,
                               const std::string& message);

namespace detail {

// Cold-path message collector. Constructed only after a check has already
// failed; the destructor hands the accumulated message to check_failed().
class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  CheckStream(const char* file, int line, const char* condition,
              std::unique_ptr<std::string> operands)
      : file_(file), line_(line), condition_(condition) {
    if (operands) os_ << *operands;
  }
  CheckStream(const CheckStream&) = delete;
  CheckStream& operator=(const CheckStream&) = delete;

  // Never returns normally: check_failed() throws or terminates.
  // noexcept(false) because the installed handler may throw (test policy).
  ~CheckStream() noexcept(false) {
    check_failed(file_, line_, condition_, os_.str());
  }

  template <typename T>
  CheckStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream os_;
};

// Turns the CheckStream temporary into void so ECF_CHECK parses as the
// false arm of a ternary (the glog voidify idiom).
struct Voidify {
  // const&: binds both the bare temporary and the result of a << chain.
  void operator&(const CheckStream&) {}
};

// Formats "  (lhs vs. rhs)" for the CHECK_OP macros. Only called on the
// cold path; returning a heap string keeps the hot path allocation-free.
template <typename A, typename B>
[[gnu::cold, gnu::noinline]] std::unique_ptr<std::string> format_check_op(
    const A& a, const B& b) {
  std::ostringstream os;
  os << " (" << a << " vs. " << b << ")";
  return std::make_unique<std::string>(os.str());
}

// uint8_t streams as a character; widen integral types so operands print as
// numbers in failure messages.
inline int printable(signed char v) { return v; }
inline unsigned printable(unsigned char v) { return v; }
inline int printable(char v) { return v; }
template <typename T>
const T& printable(const T& v) {
  return v;
}

// One function per operator so each check evaluates its operands exactly
// once: returns null on success, the formatted operand text on failure.
#define ECF_DETAIL_DEFINE_CHECK_OP(name, op)                         \
  template <typename A, typename B>                                  \
  std::unique_ptr<std::string> name(const A& a, const B& b) {        \
    if (__builtin_expect(static_cast<bool>(a op b), 1)) return nullptr; \
    return format_check_op(printable(a), printable(b));              \
  }
ECF_DETAIL_DEFINE_CHECK_OP(check_eq_impl, ==)
ECF_DETAIL_DEFINE_CHECK_OP(check_ne_impl, !=)
ECF_DETAIL_DEFINE_CHECK_OP(check_lt_impl, <)
ECF_DETAIL_DEFINE_CHECK_OP(check_le_impl, <=)
ECF_DETAIL_DEFINE_CHECK_OP(check_gt_impl, >)
ECF_DETAIL_DEFINE_CHECK_OP(check_ge_impl, >=)
#undef ECF_DETAIL_DEFINE_CHECK_OP

}  // namespace detail
}  // namespace ecf::util

#define ECF_CHECK(cond)                                            \
  (__builtin_expect(static_cast<bool>(cond), 1))                   \
      ? (void)0                                                    \
      : ::ecf::util::detail::Voidify() &                           \
            ::ecf::util::detail::CheckStream(__FILE__, __LINE__,   \
                                             "ECF_CHECK(" #cond ")")

// The while-loop runs at most once: CheckStream's destructor never returns
// normally (the failure handler throws or terminates).
#define ECF_CHECK_OP_(name, impl, a, b)                                  \
  while (auto ecf_check_result_ =                                        \
             ::ecf::util::detail::impl((a), (b)))                        \
  ::ecf::util::detail::CheckStream(__FILE__, __LINE__,                   \
                                   name "(" #a ", " #b ")",              \
                                   std::move(ecf_check_result_))

#define ECF_CHECK_EQ(a, b) ECF_CHECK_OP_("ECF_CHECK_EQ", check_eq_impl, a, b)
#define ECF_CHECK_NE(a, b) ECF_CHECK_OP_("ECF_CHECK_NE", check_ne_impl, a, b)
#define ECF_CHECK_LT(a, b) ECF_CHECK_OP_("ECF_CHECK_LT", check_lt_impl, a, b)
#define ECF_CHECK_LE(a, b) ECF_CHECK_OP_("ECF_CHECK_LE", check_le_impl, a, b)
#define ECF_CHECK_GT(a, b) ECF_CHECK_OP_("ECF_CHECK_GT", check_gt_impl, a, b)
#define ECF_CHECK_GE(a, b) ECF_CHECK_OP_("ECF_CHECK_GE", check_ge_impl, a, b)

// Debug-only contracts: full checks when ECF_DCHECKS_ENABLED (the
// ECF_ENABLE_DCHECKS CMake option, on by default), otherwise compiled to
// nothing while still type-checking their operands.
#if defined(ECF_DCHECKS_ENABLED) && ECF_DCHECKS_ENABLED
#define ECF_DCHECK(cond) ECF_CHECK(cond)
#define ECF_DCHECK_EQ(a, b) ECF_CHECK_EQ(a, b)
#define ECF_DCHECK_NE(a, b) ECF_CHECK_NE(a, b)
#define ECF_DCHECK_LT(a, b) ECF_CHECK_LT(a, b)
#define ECF_DCHECK_LE(a, b) ECF_CHECK_LE(a, b)
#define ECF_DCHECK_GT(a, b) ECF_CHECK_GT(a, b)
#define ECF_DCHECK_GE(a, b) ECF_CHECK_GE(a, b)
#else
#define ECF_DCHECK(cond) \
  while (false) ECF_CHECK(cond)
#define ECF_DCHECK_EQ(a, b) \
  while (false) ECF_CHECK_EQ(a, b)
#define ECF_DCHECK_NE(a, b) \
  while (false) ECF_CHECK_NE(a, b)
#define ECF_DCHECK_LT(a, b) \
  while (false) ECF_CHECK_LT(a, b)
#define ECF_DCHECK_LE(a, b) \
  while (false) ECF_CHECK_LE(a, b)
#define ECF_DCHECK_GT(a, b) \
  while (false) ECF_CHECK_GT(a, b)
#define ECF_DCHECK_GE(a, b) \
  while (false) ECF_CHECK_GE(a, b)
#endif
