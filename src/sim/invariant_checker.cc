#include "sim/invariant_checker.h"

#include "util/check.h"

namespace ecf::sim {

SimInvariantChecker::SimInvariantChecker(Engine& engine) : engine_(&engine) {
  reattach();
}

SimInvariantChecker::~SimInvariantChecker() {
  engine_->set_post_event_hook(nullptr);
}

void SimInvariantChecker::reattach() {
  engine_->set_post_event_hook([this] { check_now(); });
}

void SimInvariantChecker::add_invariant(std::string name, EventFn fn) {
  ECF_CHECK(static_cast<bool>(fn)) << " invariant '" << name << "' has no body";
  invariants_.emplace_back(std::move(name), std::move(fn));
}

void SimInvariantChecker::observe_time(SimTime now) {
  if (has_last_time_) {
    ECF_CHECK_GE(now, last_time_)
        << " simulated clock moved backwards (non-monotonic event)";
  }
  last_time_ = now;
  has_last_time_ = true;
}

void SimInvariantChecker::check_now() {
  observe_time(engine_->now());
  for (auto& [name, fn] : invariants_) {
    current_invariant_ = name;
    fn();
  }
  current_invariant_.clear();
  ++events_checked_;
}

}  // namespace ecf::sim
