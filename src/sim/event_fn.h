// EventFn: a small-buffer-optimized, move-only callable for simulator
// events. Replaces std::function<void()> on the engine hot path.
//
// Why not std::function? A discrete-event campaign schedules millions of
// callbacks, and libstdc++'s std::function spills any capture larger than
// two pointers to a fresh heap allocation — one malloc/free pair per
// heartbeat, keep-alive, iostat tick and recovery I/O. EventFn gives the
// common case (captures up to kInlineSize bytes, nothrow-movable) inline
// storage inside the event slot itself, and routes the rare large capture
// through a thread-local slab recycler (size-class free lists) instead of
// the general-purpose allocator.
//
// Semantics:
//  * move-only (events are scheduled once; copying a callback is a bug),
//  * repeat-invocable (the post-event hook fires once per event),
//  * empty state is falsy; invoking an empty EventFn is a contract
//    violation (ECF_DCHECK).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>  // ecf-lint: allow(naked-new)
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace ecf::sim {

namespace detail {

// Thread-local slab recycler for spilled captures. Returns storage with
// alignof(std::max_align_t) alignment; blocks are recycled per-thread in
// power-of-two size classes. Exposed (rather than hidden in EventFn) so
// tests and the engine's spill accounting can observe it.
void* spill_alloc(std::size_t bytes);
void spill_free(void* payload) noexcept;

// Introspection for tests: number of blocks currently cached on this
// thread's free lists, and total slab allocations served.
std::size_t spill_cached_blocks() noexcept;

}  // namespace detail

class EventFn {
 public:
  // Inline capture budget. 48 bytes holds a this-pointer plus five words
  // of ids/times — every callback in src/cluster, src/nvmeof and
  // src/ecfault today. Measured via Engine stats (spilled_callbacks).
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  // Implicit by design, mirroring std::function: every existing
  // `schedule(delay, [this] { ... })` call site compiles unchanged.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>()) {
      ::new (static_cast<void*>(inline_buf_)) Fn(std::forward<F>(f));  // ecf-lint: allow(naked-new)
      ops_ = &kInlineOps<Fn>;
    } else {
      static_assert(alignof(Fn) <= alignof(std::max_align_t),
                    "over-aligned captures are not supported; the slab "
                    "recycler only guarantees max_align_t alignment");
      void* mem = detail::spill_alloc(sizeof(Fn));
      struct Guard {  // free the slab block if Fn's constructor throws
        void* p;
        ~Guard() {
          if (p != nullptr) detail::spill_free(p);
        }
      } guard{mem};
      ::new (mem) Fn(std::forward<F>(f));  // ecf-lint: allow(naked-new)
      guard.p = nullptr;
      spilled_ = mem;
      ops_ = &kSpilledOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    destroy();
    ops_ = nullptr;
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { destroy(); }

  void operator()() {
    ECF_DCHECK(ops_ != nullptr) << " invoking an empty EventFn";
    ops_->invoke(*this);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the capture lives in the inline buffer (no slab block).
  // Engine stats count the complement as `spilled_callbacks`.
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(EventFn& self);
    // Move the representation out of `src` into raw storage in `dst`
    // (dst's previous value already destroyed); leaves src empty.
    void (*relocate)(EventFn& dst, EventFn& src) noexcept;
    void (*destroy)(EventFn& self) noexcept;
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool stores_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  Fn* inline_target() noexcept {
    return std::launder(reinterpret_cast<Fn*>(inline_buf_));
  }

  template <typename Fn>
  static void inline_invoke(EventFn& self) {
    (*self.inline_target<Fn>())();
  }
  template <typename Fn>
  static void inline_relocate(EventFn& dst, EventFn& src) noexcept {
    ::new (static_cast<void*>(dst.inline_buf_))  // ecf-lint: allow(naked-new)
        Fn(std::move(*src.inline_target<Fn>()));
    src.inline_target<Fn>()->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(EventFn& self) noexcept {
    self.inline_target<Fn>()->~Fn();
  }

  template <typename Fn>
  static void spilled_invoke(EventFn& self) {
    (*static_cast<Fn*>(self.spilled_))();
  }
  static void spilled_relocate(EventFn& dst, EventFn& src) noexcept {
    dst.spilled_ = src.spilled_;
  }
  template <typename Fn>
  static void spilled_destroy(EventFn& self) noexcept {
    static_cast<Fn*>(self.spilled_)->~Fn();
    detail::spill_free(self.spilled_);
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {&inline_invoke<Fn>, &inline_relocate<Fn>,
                                     &inline_destroy<Fn>,
                                     /*inline_stored=*/true};
  template <typename Fn>
  static constexpr Ops kSpilledOps = {&spilled_invoke<Fn>, &spilled_relocate,
                                      &spilled_destroy<Fn>,
                                      /*inline_stored=*/false};

  void steal(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(*this, other);
      other.ops_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr) ops_->destroy(*this);
  }

  union {
    alignas(std::max_align_t) unsigned char inline_buf_[kInlineSize];
    void* spilled_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace ecf::sim
