#include "sim/event_fn.h"

#include <cstddef>
#include <new>  // ecf-lint: allow(naked-new)

namespace ecf::sim::detail {
namespace {

// Block layout: [Header | payload...]; the header is max_align_t-sized so
// the payload keeps max_align_t alignment. Freed blocks are threaded onto
// per-thread free lists through the header storage itself.
struct alignas(std::max_align_t) Header {
  std::uint32_t size_class;  // index into kClassBytes, or kUnpooled
};

constexpr std::size_t kClassBytes[] = {64, 128, 256, 512};
constexpr std::uint32_t kNumClasses = 4;
constexpr std::uint32_t kUnpooled = 0xffffffffu;
// Cap per-class cache so a transient burst doesn't pin memory for the
// whole campaign. The cap must exceed the steady-state spilled-event
// population (campaigns run thousands of in-flight recovery continuations)
// or most spills pay operator new PLUS the slab bookkeeping; 8Ki blocks of
// the largest class is ~4.5 MiB per thread, only reached if the campaign
// actually held that many callbacks live at once.
constexpr std::size_t kMaxCachedPerClass = 8192;

struct FreeNode {
  FreeNode* next;
};

struct Pool {
  FreeNode* free_list[kNumClasses] = {};
  std::size_t cached[kNumClasses] = {};

  ~Pool() {
    for (std::uint32_t c = 0; c < kNumClasses; ++c) {
      FreeNode* node = free_list[c];
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(static_cast<void*>(node));  // ecf-lint: allow(naked-new)
        node = next;
      }
      free_list[c] = nullptr;
      cached[c] = 0;
    }
  }
};

// Thread-local: campaign workers each drive a private Engine, so the free
// lists need no locking; a block is always freed on the thread that owns
// the engine draining it.
thread_local Pool tls_pool;

Header* header_of(void* payload) noexcept {
  return reinterpret_cast<Header*>(static_cast<char*>(payload) -
                                   sizeof(Header));
}

}  // namespace

void* spill_alloc(std::size_t bytes) {
  Pool& pool = tls_pool;
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    if (bytes > kClassBytes[c]) continue;
    void* base;
    if (pool.free_list[c] != nullptr) {
      FreeNode* node = pool.free_list[c];
      pool.free_list[c] = node->next;
      --pool.cached[c];
      base = static_cast<void*>(node);
    } else {
      base = ::operator new(sizeof(Header) + kClassBytes[c]);  // ecf-lint: allow(naked-new)
    }
    ::new (base) Header{c};  // ecf-lint: allow(naked-new)
    return static_cast<char*>(base) + sizeof(Header);
  }
  // Oversized captures (> 512 bytes) bypass the recycler entirely.
  void* base = ::operator new(sizeof(Header) + bytes);  // ecf-lint: allow(naked-new)
  ::new (base) Header{kUnpooled};  // ecf-lint: allow(naked-new)
  return static_cast<char*>(base) + sizeof(Header);
}

void spill_free(void* payload) noexcept {
  Header* hdr = header_of(payload);
  const std::uint32_t c = hdr->size_class;
  void* base = static_cast<void*>(hdr);
  Pool& pool = tls_pool;
  if (c >= kNumClasses || pool.cached[c] >= kMaxCachedPerClass) {
    ::operator delete(base);  // ecf-lint: allow(naked-new)
    return;
  }
  FreeNode* node = ::new (base) FreeNode{pool.free_list[c]};  // ecf-lint: allow(naked-new)
  pool.free_list[c] = node;
  ++pool.cached[c];
}

std::size_t spill_cached_blocks() noexcept {
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    total += tls_pool.cached[c];
  }
  return total;
}

}  // namespace ecf::sim::detail
