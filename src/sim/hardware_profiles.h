// Named hardware profiles used to calibrate the simulator.
//
// The paper's testbed is 31 AWS m5.xlarge VMs with two 100 GB General
// Purpose NVMe volumes each and 25 Gb networking (shared/burst; effective
// per-VM bandwidth is far lower). aws_m5_like() encodes that shape; the
// other profiles exist for ablation benches (what changes when disks are
// faster / the network is slower).
#pragma once

#include "sim/resources.h"

namespace ecf::sim {

// NVMe-oF transport model parameters (consumed by src/nvmeof's fabric).
//
// The default-constructed value is an *ideal* fabric: zero per-hop latency,
// infinite bandwidth, no capsule/PDU overhead, unbounded queue depth. With
// it the fabric layer is timing-inert — every command completes exactly
// when a direct sim::Disk call would — so pre-fabric campaign results are
// reproduced bit-identically. tcp_fabric()/rdma_fabric() switch on the
// transport cost model.
struct FabricParams {
  // --- transport cost model -------------------------------------------------
  util::SimSec hop_latency_s;       // one-way propagation per hop
  util::Rate bw_bytes_per_s;        // link serialization rate; 0 = infinite
  util::Bytes capsule_bytes;        // command capsule overhead (request)
  util::Bytes pdu_header_bytes;     // per-data-PDU header (response)
  util::Bytes max_data_pdu_bytes;   // data split into PDUs; 0 = one PDU

  // --- queue pairs ----------------------------------------------------------
  int io_qpairs = 4;          // I/O queue pairs per connection
  int qpair_depth = 128;      // max outstanding commands per qpair
  // Backpressure off by default: the ideal fabric imposes no queue limit
  // (depth histograms are still recorded). TCP/RDMA profiles enable it.
  bool enforce_qpair_depth = false;

  // --- keep-alive / reconnect state machine --------------------------------
  util::SimSec keepalive_interval_s{5.0};  // KATO: link-loss detection
  util::SimSec ctrl_loss_timeout_s{600.0};  // give up (ctrl_loss_tmo)
  util::SimSec reconnect_backoff_s{1.0};  // first retry delay; doubles
  util::SimSec reconnect_backoff_max_s{60.0};
  util::SimSec retry_timeout_s{0.5};  // retransmit delay per lost command

  // True when the cost model can ever charge time (levers can still
  // activate an inert fabric per-path at runtime).
  bool active() const {
    return hop_latency_s > 0 || bw_bytes_per_s > 0 || capsule_bytes > 0 ||
           pdu_header_bytes > 0 || enforce_qpair_depth;
  }
};

// NVMe/TCP: kernel TCP stack — tens of microseconds per hop, capsules and
// data carried in PDUs with 24-byte common headers, bandwidth shared on
// the host link.
FabricParams tcp_fabric();

// NVMe/RDMA (RoCE-like): single-digit-microsecond hops, tiny capsule
// overhead, no PDU framing on the data path, higher effective bandwidth.
FabricParams rdma_fabric();

struct HardwareProfile {
  DiskParams disk;
  NicParams nic;
  CpuParams cpu;
  FabricParams fabric;  // default: ideal (timing-inert) NVMe-oF transport
};

// The paper's AWS-like testbed.
HardwareProfile aws_m5_like();

// A modern local NVMe box: fast disks, same network.
HardwareProfile fast_nvme();

// Hard-disk era cluster: slow seek-bound disks.
HardwareProfile hdd_cluster();

}  // namespace ecf::sim
