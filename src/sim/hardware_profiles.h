// Named hardware profiles used to calibrate the simulator.
//
// The paper's testbed is 31 AWS m5.xlarge VMs with two 100 GB General
// Purpose NVMe volumes each and 25 Gb networking (shared/burst; effective
// per-VM bandwidth is far lower). aws_m5_like() encodes that shape; the
// other profiles exist for ablation benches (what changes when disks are
// faster / the network is slower).
#pragma once

#include "sim/resources.h"

namespace ecf::sim {

struct HardwareProfile {
  DiskParams disk;
  NicParams nic;
  CpuParams cpu;
};

// The paper's AWS-like testbed.
HardwareProfile aws_m5_like();

// A modern local NVMe box: fast disks, same network.
HardwareProfile fast_nvme();

// Hard-disk era cluster: slow seek-bound disks.
HardwareProfile hdd_cluster();

}  // namespace ecf::sim
