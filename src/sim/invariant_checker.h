// SimInvariantChecker: opt-in runtime validation of simulator state.
//
// The simulator's results are only as trustworthy as its internal
// invariants; this checker makes them machine-checked instead of assumed.
// Hooked into an Engine, it runs after *every* executed event:
//
//   * built in — simulated time is monotone non-decreasing (the backstop
//     for clock corruption that slips past the Engine::schedule contracts,
//     e.g. an event planted with schedule_at_unchecked);
//   * registered — arbitrary named invariants added by higher layers.
//     src/cluster/invariants.h registers PG state-machine legality,
//     chunk/byte conservation, and BlueStore cache accounting.
//
// Invariant functions report violations through ECF_CHECK, so the failure
// policy follows the installed check handler (throw in tests, abort+
// backtrace in tools). The checker is enabled in all tier-1 cluster and
// integration tests via ClusterConfig::check_invariants.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/event_fn.h"

namespace ecf::sim {

class SimInvariantChecker {
 public:
  // Installs itself as the engine's post-event hook; the destructor removes
  // it. The engine must outlive the checker.
  explicit SimInvariantChecker(Engine& engine);
  ~SimInvariantChecker();

  SimInvariantChecker(const SimInvariantChecker&) = delete;
  SimInvariantChecker& operator=(const SimInvariantChecker&) = delete;

  // Register a named invariant; `fn` must ECF_CHECK what it validates.
  // EventFn (not std::function): invariants run after every event, which
  // puts them squarely on the engine hot path.
  void add_invariant(std::string name, EventFn fn);

  // Engine::reset() drops the post-event hook (so a checker from one
  // campaign variant can't observe the next); call this to re-install the
  // hook when intentionally reusing a checker across a reset. Pair with
  // reset_clock().
  void reattach();

  // Run the time check plus every registered invariant against the current
  // state. Called automatically after each event; callable directly from
  // tests.
  void check_now();

  // The monotonic-time invariant, exposed for direct testing: fails an
  // ECF_CHECK when `now` is earlier than the last observed time.
  void observe_time(SimTime now);

  // Forget the last observed time (for engines reset between experiments).
  void reset_clock() { has_last_time_ = false; }

  std::size_t events_checked() const { return events_checked_; }
  std::size_t num_invariants() const { return invariants_.size(); }
  const std::string& current_invariant() const { return current_invariant_; }

 private:
  Engine* engine_;
  SimTime last_time_ = 0;
  bool has_last_time_ = false;
  std::size_t events_checked_ = 0;
  // Name of the invariant being evaluated (for failure context).
  std::string current_invariant_;
  std::vector<std::pair<std::string, EventFn>> invariants_;
};

}  // namespace ecf::sim
