#include "sim/hardware_profiles.h"

#include "util/units.h"

namespace ecf::sim {

using util::Bytes;
using util::Rate;
using util::SimSec;

FabricParams tcp_fabric() {
  FabricParams f;
  f.hop_latency_s = SimSec(30e-6);   // kernel TCP + NIC per hop
  f.bw_bytes_per_s = Rate(1.2e9);    // shares the ~10 Gb/s effective link
  f.capsule_bytes = Bytes(72);       // ICReq-sized command capsule PDU
  f.pdu_header_bytes = Bytes(24);    // C2HData common header per PDU
  f.max_data_pdu_bytes = Bytes(128 * 1024);  // MAXH2CDATA-scale data PDUs
  f.enforce_qpair_depth = true;
  return f;
}

FabricParams rdma_fabric() {
  FabricParams f;
  f.hop_latency_s = SimSec(5e-6);    // RoCE-class hop
  f.bw_bytes_per_s = Rate(2.5e9);    // 25 Gb/s-class fabric port
  f.capsule_bytes = Bytes(16);       // in-capsule command, minimal framing
  f.pdu_header_bytes = Bytes(0);     // RDMA writes carry data without PDUs
  f.max_data_pdu_bytes = Bytes(0);
  f.enforce_qpair_depth = true;
  return f;
}

HardwareProfile aws_m5_like() {
  HardwareProfile p;
  p.disk.read_bw_bytes_per_s = Rate(250e6);   // GP SSD throughput cap
  p.disk.write_bw_bytes_per_s = Rate(220e6);
  p.disk.per_io_seconds = SimSec(120e-6);  // virtualized NVMe-oF round trip
  p.nic.bw_bytes_per_s = Rate(1.2e9);  // m5.xlarge effective (~10 Gb/s)
  p.nic.per_msg_seconds = SimSec(40e-6);
  p.cpu.gf_bytes_per_s = Rate(2.0e9);
  p.cpu.per_op_seconds = SimSec(20e-6);
  return p;
}

HardwareProfile fast_nvme() {
  HardwareProfile p;
  p.disk.read_bw_bytes_per_s = Rate(3.0e9);
  p.disk.write_bw_bytes_per_s = Rate(2.0e9);
  p.disk.per_io_seconds = SimSec(15e-6);
  p.nic.bw_bytes_per_s = Rate(1.2e9);
  p.nic.per_msg_seconds = SimSec(40e-6);
  p.cpu.gf_bytes_per_s = Rate(4.0e9);
  p.cpu.per_op_seconds = SimSec(10e-6);
  return p;
}

HardwareProfile hdd_cluster() {
  HardwareProfile p;
  p.disk.read_bw_bytes_per_s = Rate(150e6);
  p.disk.write_bw_bytes_per_s = Rate(140e6);
  p.disk.per_io_seconds = SimSec(8e-3);  // seek-dominated
  p.nic.bw_bytes_per_s = Rate(1.2e9);
  p.nic.per_msg_seconds = SimSec(40e-6);
  p.cpu.gf_bytes_per_s = Rate(2.0e9);
  p.cpu.per_op_seconds = SimSec(20e-6);
  return p;
}

}  // namespace ecf::sim
