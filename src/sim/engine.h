// Discrete-event simulation engine.
//
// The cluster simulator (src/cluster) is built on this: every activity —
// a disk I/O completing, a heartbeat firing, a peering round finishing —
// is an event at a simulated timestamp. The engine maintains the event
// queue and the virtual clock; resources (src/sim/resources.h) translate
// work (bytes, IOs) into event delays.
//
// Design notes (see DESIGN.md §11/§12 for the full determinism argument):
//  * Time is double seconds. Events scheduled at equal times fire in
//    schedule order (a monotonically increasing sequence number breaks
//    ties), which keeps runs deterministic.
//  * Callbacks are sim::EventFn — a small-buffer-optimized move-only
//    callable (event_fn.h); processes are expressed as chains of
//    callbacks (continuation style). This is simpler and more debuggable
//    than coroutines for the protocol state machines we model.
//  * An event can be cancelled through its EventId (e.g. a heartbeat
//    timeout disarmed by the heartbeat arriving). EventIds are
//    generation-tagged slot handles, so cancel() is an O(1) slot
//    invalidation — no hash sets, and stale ids from a previous use of
//    the slot are rejected by the generation check.
//  * Storage is N independent "lanes" (set_lane_count; default 1). Each
//    lane owns an indexed event-slot table plus a 4-ary min-heap ordered
//    by (when, seq) fronted by a hierarchical timer wheel (3 levels × 64
//    buckets, kWheelResolution per tick) that keeps far-future periodic
//    timers out of the heap until the clock approaches them. The run loop
//    is a deterministic k-way merge: it peeks every lane's earliest live
//    entry and pops the global (when, seq) minimum, so execution order is
//    bit-identical to a single monolithic heap for ANY lane assignment.
//    Lanes exist purely to shard scheduling work and cache footprint at
//    million-event queue depths; callers pin related entities (a PG, a
//    host) to a lane with LaneScope so bursts of nearby-in-time events
//    stay within one small, cache-resident heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_fn.h"

namespace ecf::sim {

using SimTime = double;  // seconds
using EventId = std::uint64_t;

// Per-subsystem labels for executed-event accounting (EngineStats). The
// default kGeneric costs nothing to pass; subsystems opt in at their
// schedule() call sites.
enum class EventTag : std::uint8_t {
  kGeneric = 0,
  kHeartbeat,   // OSD heartbeat + failure detection timers
  kMonitor,     // monitor batching / down-out escalation
  kRecovery,    // peering, reservations, repair rounds
  kScrub,       // scrub passes and per-PG scrub completions
  kClient,      // foreground client load
  kKeepAlive,   // NVMe-oF keep-alive probes
  kReconnect,   // NVMe-oF controller-loss reconnect machine
  kIostat,      // ecfault iostat sampling ticks
  kFault,       // fault-injection triggers
};
inline constexpr std::size_t kNumEventTags = 10;
const char* to_string(EventTag tag);

// Cheap always-on engine profile, reset by Engine::reset(). Surfaced
// through RecoveryReport and `ecfault run --engine-stats`.
struct EngineStats {
  std::uint64_t scheduled = 0;          // events accepted
  std::uint64_t executed = 0;           // callbacks run
  std::uint64_t cancelled = 0;          // live events cancelled
  std::uint64_t spilled_callbacks = 0;  // captures too big for EventFn SBO
  std::uint64_t peak_queue_depth = 0;   // max simultaneous live events
  std::uint64_t wheel_parked = 0;       // events first routed to the wheel
  std::uint64_t wheel_cascades = 0;     // L1/L2 bucket re-distributions
  std::uint64_t lane_count = 1;         // event lanes (set_lane_count)
  std::uint64_t executed_by_tag[kNumEventTags] = {};
};

class Engine {
 public:
  // Timer-wheel tick resolution in simulated seconds. One L0 rotation
  // spans 16 s; the full 3-level wheel covers ~18 h of simulated time
  // (64^3 ticks), past which events sit in the heap directly.
  static constexpr SimTime kWheelResolution = 0.25;

  // Upper bound on set_lane_count: past this the per-event k-way merge
  // scan costs more than the per-lane heaps save.
  static constexpr std::size_t kMaxLanes = 64;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` to run at now() + delay (delay >= 0). Returns an id
  // usable with cancel(). A negative delay violates an ECF_CHECK contract.
  EventId schedule(SimTime delay, EventFn fn, EventTag tag = EventTag::kGeneric);

  // Schedule at an absolute time (>= now()); scheduling in the past
  // violates an ECF_CHECK contract.
  EventId schedule_at(SimTime when, EventFn fn,
                      EventTag tag = EventTag::kGeneric);

  // Test-only backdoor: schedule without the time-ordering contract. Exists
  // so negative tests can plant a non-monotonic event and prove the
  // SimInvariantChecker backstop catches it; never call from product code.
  EventId schedule_at_unchecked(SimTime when, EventFn fn,
                                EventTag tag = EventTag::kGeneric);

  // Cancel a pending event; no-op if it already ran or was cancelled.
  // O(1): flips the slot dead and destroys the callback immediately; the
  // heap/wheel entry is dropped lazily when it surfaces.
  void cancel(EventId id);

  // Run until the queue empties or the optional horizon is reached.
  // Returns the number of events executed.
  std::size_t run();
  std::size_t run_until(SimTime horizon);

  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return live_; }

  // --- event lanes ---
  //
  // Repartition the queue into `n` lanes (1..kMaxLanes). Only legal while
  // no events are pending; the lane layout survives reset() so a campaign
  // can configure lanes once and reuse the engine. Slot tables are
  // rebuilt, so EventIds minted before the call must not be cancelled
  // after it (like reset(), this is a campaign-setup operation). Execution
  // order is independent of the lane count (deterministic k-way merge) —
  // lanes are a throughput knob, never a semantics knob.
  void set_lane_count(std::size_t n);
  std::size_t lane_count() const { return lanes_.size(); }

  // Stable key → lane mapping (splitmix64 finalizer mod lane_count), so
  // adjacent PG/host ids spread across lanes.
  std::size_t lane_of(std::uint64_t key) const;

  // RAII lane pin: events scheduled while a LaneScope is alive land in
  // lane_of(key)'s lane. Events scheduled by an executing callback inherit
  // that event's lane, so one scope at the root of an I/O chain keeps the
  // whole continuation in-lane.
  class LaneScope {
   public:
    LaneScope(Engine& engine, std::uint64_t key)
        : engine_(engine), saved_(engine.current_lane_) {
      engine.current_lane_ = engine.lane_of(key);
    }
    ~LaneScope() { engine_.current_lane_ = saved_; }
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    Engine& engine_;
    std::size_t saved_;
  };

  // Reset clock, queue, statistics AND the post-event hook (a hook from a
  // previous campaign variant must not observe the next one; the checker
  // re-installs its hook when it is re-attached). Keeps the lane count.
  void reset();

  // Hook invoked after every executed event (with the clock at the event's
  // time). Used by SimInvariantChecker to validate simulator state between
  // events; pass nullptr to remove. At most one hook is active.
  void set_post_event_hook(EventFn hook) { post_event_hook_ = std::move(hook); }

  const EngineStats& stats() const { return stats_; }

 private:
  // One scheduled callback. Slots are recycled through a per-lane free
  // list; `gen` is bumped when the slot dies so stale EventIds can't
  // resurrect it.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    EventTag tag = EventTag::kGeneric;
    bool live = false;
  };

  // Heap / wheel entry: the (when, seq) sort key plus the slot index
  // within the owning lane. The callback itself stays in the slot so sift
  // operations move 24 bytes.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // EventId layout: gen(32) | lane(6) | slot(26). Slot tables are sharded
  // per lane so a pinned entity's whole schedule/cancel/execute working
  // set — heap, wheel AND callback slots — lives in one lane-sized arena
  // instead of one engine-sized one.
  static constexpr std::uint64_t kIdLaneShift = 26;
  static constexpr std::uint64_t kIdSlotMask = (std::uint64_t{1} << 26) - 1;
  static_assert(kMaxLanes <= 64, "lane index must fit the 6-bit id field");

  static constexpr std::uint64_t kNoTick = ~std::uint64_t{0};
  static constexpr int kWheelLevels = 3;
  static constexpr std::uint64_t kBucketsPerLevel = 64;

  // One event lane: an independent (heap, timer wheel, slot table) triple.
  // The global (when, seq) order is recovered at pop time by scanning lane
  // heads.
  struct Lane {
    std::vector<Entry> heap;
    std::uint64_t wheel_pos = 0;  // flush position, in ticks
    std::size_t wheel_count = 0;  // entries parked in buckets (incl. dead)
    std::uint64_t occupancy[kWheelLevels] = {};
    std::vector<Entry> buckets[kWheelLevels][kBucketsPerLevel];
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free_slots;
  };

  static constexpr SimTime kInfTime =
      std::numeric_limits<SimTime>::infinity();

  // Hot per-lane digest scanned by the k-way merge: the lane's heap front
  // (sentinel when = +inf if the heap is empty) plus a conservative lower
  // bound on anything still parked in the lane's wheel (+inf if none).
  // heads_ is a dense parallel array so the per-pop scan reads ~32 bytes
  // per lane instead of chasing into each ~5 KB Lane struct.
  struct LaneHead {
    Entry head{kInfTime, ~std::uint64_t{0}, 0};
    SimTime wheel_bound = kInfTime;
  };

  EventId push_event(SimTime when, EventFn fn, EventTag tag);
  std::uint32_t acquire_slot(Lane& lane, EventFn fn, EventTag tag);
  void release_slot(Lane& lane, std::uint32_t slot);

  // --- 4-ary min-heap over (when, seq) ---
  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void heap_push(Lane& lane, Entry e);
  Entry heap_pop(Lane& lane);

  // --- hierarchical timer wheel ---
  static std::uint64_t tick_of(SimTime when);
  // Add to the right wheel bucket (returns true), or to the heap when the
  // tick is at or behind the flush position / beyond the wheel span.
  bool route(Lane& lane, Entry e);
  // Tick bound of the earliest occupied wheel bucket, or kNoTick.
  std::uint64_t next_bound_tick(const Lane& lane) const;
  // Move every wheel entry with tick <= bound into the heap, cascading
  // outer levels as the position crosses their bucket boundaries.
  void flush_until(Lane& lane, std::uint64_t bound);

  // Recompute heads_[i].head from the lane's heap front (pops only touch
  // the heap, so the cached wheel bound stays valid).
  void refresh_heap_head(std::size_t i);
  // Recompute heads_[i] exactly from the heap front and wheel occupancy.
  void refresh_head(std::size_t i);
  // Flush wheel buckets whose bound could precede the lane's heap top, so
  // heads_[i].head is the lane's true earliest entry (dead or live).
  void flush_lane_for_peek(std::size_t i);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;  // tie-break order; monotone per engine run
  std::size_t live_ = 0;        // scheduled, not yet run/cancelled

  std::vector<Lane> lanes_ = std::vector<Lane>(1);
  std::vector<LaneHead> heads_ = std::vector<LaneHead>(1);
  std::size_t current_lane_ = 0;  // lane for new events (LaneScope / pop)

  EventFn post_event_hook_;
  EngineStats stats_;
};

}  // namespace ecf::sim
