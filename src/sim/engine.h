// Discrete-event simulation engine.
//
// The cluster simulator (src/cluster) is built on this: every activity —
// a disk I/O completing, a heartbeat firing, a peering round finishing —
// is an event at a simulated timestamp. The engine maintains the event
// queue and the virtual clock; resources (src/sim/resources.h) translate
// work (bytes, IOs) into event delays.
//
// Design notes:
//  * Time is double seconds. Events scheduled at equal times fire in
//    schedule order (a monotonically increasing sequence number breaks
//    ties), which keeps runs deterministic.
//  * Callbacks are std::function<void()>; processes are expressed as
//    chains of callbacks (continuation style). This is simpler and more
//    debuggable than coroutines for the protocol state machines we model.
//  * An event can be cancelled through its EventId (e.g. a heartbeat
//    timeout disarmed by the heartbeat arriving).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace ecf::sim {

using SimTime = double;  // seconds
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` to run at now() + delay (delay >= 0). Returns an id
  // usable with cancel(). A negative delay violates an ECF_CHECK contract.
  EventId schedule(SimTime delay, std::function<void()> fn);

  // Schedule at an absolute time (>= now()); scheduling in the past
  // violates an ECF_CHECK contract.
  EventId schedule_at(SimTime when, std::function<void()> fn);

  // Test-only backdoor: schedule without the time-ordering contract. Exists
  // so negative tests can plant a non-monotonic event and prove the
  // SimInvariantChecker backstop catches it; never call from product code.
  EventId schedule_at_unchecked(SimTime when, std::function<void()> fn);

  // Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  // Run until the queue empties or the optional horizon is reached.
  // Returns the number of events executed.
  std::size_t run();
  std::size_t run_until(SimTime horizon);

  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return pending_.size(); }

  // Reset clock and queue (for reusing an engine across experiments). The
  // post-event hook is preserved.
  void reset();

  // Hook invoked after every executed event (with the clock at the event's
  // time). Used by SimInvariantChecker to validate simulator state between
  // events; pass nullptr to remove. At most one hook is active.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  EventId push_event(SimTime when, std::function<void()> fn);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::function<void()> post_event_hook_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> pending_;    // scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ecf::sim
