// Simulated hardware resources: disks, NICs, CPUs.
//
// Each resource is a FIFO server: work items serialize behind previous
// work (busy-until semantics). submit() computes the service time from the
// work description, queues it, and returns the absolute completion time so
// callers can chain continuations. Utilization counters feed the metrics
// reported by the benches.
//
// FIFO (rather than processor-sharing) keeps runs deterministic and models
// contention adequately at the granularity we simulate (per-object
// recovery operations); the calibration in DESIGN.md §6 absorbs the
// difference.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.h"
#include "util/units.h"

namespace ecf::sim {

// Serializing server with busy-until semantics.
class FifoServer {
 public:
  // Reserve `service` seconds starting no earlier than now; returns the
  // completion time.
  SimTime reserve(Engine& eng, SimTime service);

  // Reserve `service` seconds starting no earlier than max(now, not_before).
  // Used by the NVMe-oF fabric: a request that spends transport time in
  // flight reaches its device at a future instant, and the device queue
  // must serialize from that arrival, not from the submission time.
  SimTime reserve_at(Engine& eng, SimTime not_before, SimTime service);

  SimTime busy_until() const { return busy_until_; }
  SimTime busy_seconds() const { return busy_seconds_; }
  // Queueing delay accumulated by requests (time spent waiting to start).
  SimTime queued_seconds() const { return queued_seconds_; }
  void reset();

 private:
  SimTime busy_until_ = 0;
  SimTime busy_seconds_ = 0;
  SimTime queued_seconds_ = 0;
};

struct DiskParams {
  util::Rate read_bw_bytes_per_s{250e6};   // GP-SSD-like sequential read
  util::Rate write_bw_bytes_per_s{220e6};  // sequential write
  util::SimSec per_io_seconds{80e-6};  // submission + device overhead per IO
};

// A single storage device (one OSD's backing disk).
class Disk {
 public:
  explicit Disk(DiskParams params) : params_(params) {}

  // `ios` = number of distinct I/O operations the transfer is split into
  // (sub-chunk reads issue many; sequential chunk reads issue few).
  // `extra_seconds` adds scheduler queueing (e.g. mClock recovery-class
  // delay) to the reservation.
  SimTime read(Engine& eng, std::uint64_t bytes, std::uint64_t ios = 1,
               SimTime extra_seconds = 0);
  SimTime write(Engine& eng, std::uint64_t bytes, std::uint64_t ios = 1,
                SimTime extra_seconds = 0);

  // Fabric variants: the command reaches the device no earlier than
  // `not_before` (request capsule still in flight until then).
  SimTime read_at(Engine& eng, SimTime not_before, std::uint64_t bytes,
                  std::uint64_t ios = 1, SimTime extra_seconds = 0);
  SimTime write_at(Engine& eng, SimTime not_before, std::uint64_t bytes,
                   std::uint64_t ios = 1, SimTime extra_seconds = 0);

  // Pure service-time queries (no reservation) for planning.
  SimTime read_service(std::uint64_t bytes, std::uint64_t ios = 1) const;
  SimTime write_service(std::uint64_t bytes, std::uint64_t ios = 1) const;

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t io_count() const { return io_count_; }
  const FifoServer& server() const { return server_; }
  void reset();

 private:
  DiskParams params_;
  FifoServer server_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t io_count_ = 0;
};

struct NicParams {
  util::Rate bw_bytes_per_s{1.2e9};   // effective host bandwidth
  util::SimSec per_msg_seconds{30e-6};  // protocol + kernel overhead per msg
};

// A host NIC; duplex (independent tx and rx servers).
class Nic {
 public:
  explicit Nic(NicParams params) : params_(params) {}

  SimTime send(Engine& eng, std::uint64_t bytes, std::uint64_t msgs = 1);
  SimTime recv(Engine& eng, std::uint64_t bytes, std::uint64_t msgs = 1);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  const FifoServer& tx() const { return tx_; }
  const FifoServer& rx() const { return rx_; }
  void reset();

 private:
  SimTime service(std::uint64_t bytes, std::uint64_t msgs) const;
  NicParams params_;
  FifoServer tx_;
  FifoServer rx_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

struct CpuParams {
  // GF(256) multiply-accumulate throughput of one recovery thread; an RS
  // decode touches each byte k times at most but table-driven kernels are
  // memory-bound, so we express cost as bytes/s of *reconstructed output*
  // scaled by the code's decode_cost_factor.
  util::Rate gf_bytes_per_s{2.0e9};
  util::SimSec per_op_seconds{20e-6};  // fixed cost per decode operation
  // Fixed cost of one GF region operation (mul_acc/mul_region call):
  // table setup + call overhead. Dominates when sub-packetized codes
  // operate on tiny sub-chunks (Clay at small stripe units processes
  // millions of ~50-byte regions per chunk).
  util::SimSec gf_region_op_seconds{0.1e-6};
};

class Cpu {
 public:
  explicit Cpu(CpuParams params) : params_(params) {}

  // cost_factor comes from RepairPlan::decode_cost_factor.
  SimTime compute(Engine& eng, std::uint64_t bytes, double cost_factor = 1.0);

  // Reserve a fixed amount of CPU time (protocol work expressed in seconds
  // rather than bytes, e.g. peering log processing).
  SimTime busy_for(Engine& eng, SimTime seconds) {
    return server_.reserve(eng, seconds);
  }

  std::uint64_t bytes_processed() const { return bytes_processed_; }
  const FifoServer& server() const { return server_; }
  void reset();

 private:
  CpuParams params_;
  FifoServer server_;
  std::uint64_t bytes_processed_ = 0;
};

}  // namespace ecf::sim
