#include "sim/resources.h"

#include <algorithm>

namespace ecf::sim {

SimTime FifoServer::reserve(Engine& eng, SimTime service) {
  const SimTime start = std::max(eng.now(), busy_until_);
  queued_seconds_ += start - eng.now();
  busy_until_ = start + service;
  busy_seconds_ += service;
  return busy_until_;
}

SimTime FifoServer::reserve_at(Engine& eng, SimTime not_before,
                               SimTime service) {
  const SimTime arrival = std::max(eng.now(), not_before);
  const SimTime start = std::max(arrival, busy_until_);
  queued_seconds_ += start - arrival;
  busy_until_ = start + service;
  busy_seconds_ += service;
  return busy_until_;
}

void FifoServer::reset() {
  busy_until_ = 0;
  busy_seconds_ = 0;
  queued_seconds_ = 0;
}

SimTime Disk::read_service(std::uint64_t bytes, std::uint64_t ios) const {
  return static_cast<double>(bytes) / params_.read_bw_bytes_per_s +
         static_cast<double>(ios) * params_.per_io_seconds;
}

SimTime Disk::write_service(std::uint64_t bytes, std::uint64_t ios) const {
  return static_cast<double>(bytes) / params_.write_bw_bytes_per_s +
         static_cast<double>(ios) * params_.per_io_seconds;
}

SimTime Disk::read(Engine& eng, std::uint64_t bytes, std::uint64_t ios,
                   SimTime extra_seconds) {
  bytes_read_ += bytes;
  io_count_ += ios;
  return server_.reserve(eng, read_service(bytes, ios) + extra_seconds);
}

SimTime Disk::write(Engine& eng, std::uint64_t bytes, std::uint64_t ios,
                    SimTime extra_seconds) {
  bytes_written_ += bytes;
  io_count_ += ios;
  return server_.reserve(eng, write_service(bytes, ios) + extra_seconds);
}

SimTime Disk::read_at(Engine& eng, SimTime not_before, std::uint64_t bytes,
                      std::uint64_t ios, SimTime extra_seconds) {
  bytes_read_ += bytes;
  io_count_ += ios;
  return server_.reserve_at(eng, not_before,
                            read_service(bytes, ios) + extra_seconds);
}

SimTime Disk::write_at(Engine& eng, SimTime not_before, std::uint64_t bytes,
                       std::uint64_t ios, SimTime extra_seconds) {
  bytes_written_ += bytes;
  io_count_ += ios;
  return server_.reserve_at(eng, not_before,
                            write_service(bytes, ios) + extra_seconds);
}

void Disk::reset() {
  server_.reset();
  bytes_read_ = bytes_written_ = io_count_ = 0;
}

SimTime Nic::service(std::uint64_t bytes, std::uint64_t msgs) const {
  return static_cast<double>(bytes) / params_.bw_bytes_per_s +
         static_cast<double>(msgs) * params_.per_msg_seconds;
}

SimTime Nic::send(Engine& eng, std::uint64_t bytes, std::uint64_t msgs) {
  bytes_sent_ += bytes;
  return tx_.reserve(eng, service(bytes, msgs));
}

SimTime Nic::recv(Engine& eng, std::uint64_t bytes, std::uint64_t msgs) {
  bytes_received_ += bytes;
  return rx_.reserve(eng, service(bytes, msgs));
}

void Nic::reset() {
  tx_.reset();
  rx_.reset();
  bytes_sent_ = bytes_received_ = 0;
}

SimTime Cpu::compute(Engine& eng, std::uint64_t bytes, double cost_factor) {
  bytes_processed_ += bytes;
  const SimTime service =
      static_cast<double>(bytes) * cost_factor / params_.gf_bytes_per_s +
      params_.per_op_seconds;
  return server_.reserve(eng, service);
}

void Cpu::reset() {
  server_.reset();
  bytes_processed_ = 0;
}

}  // namespace ecf::sim
