#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/check.h"

namespace ecf::sim {

const char* to_string(EventTag tag) {
  switch (tag) {
    case EventTag::kGeneric:   return "generic";
    case EventTag::kHeartbeat: return "heartbeat";
    case EventTag::kMonitor:   return "monitor";
    case EventTag::kRecovery:  return "recovery";
    case EventTag::kScrub:     return "scrub";
    case EventTag::kClient:    return "client";
    case EventTag::kKeepAlive: return "keepalive";
    case EventTag::kReconnect: return "reconnect";
    case EventTag::kIostat:    return "iostat";
    case EventTag::kFault:     return "fault";
  }
  return "?";
}

EventId Engine::schedule(SimTime delay, EventFn fn, EventTag tag) {
  ECF_CHECK_GE(delay, 0.0) << " negative event delay at t=" << now_;
  return schedule_at(now_ + delay, std::move(fn), tag);
}

EventId Engine::schedule_at(SimTime when, EventFn fn, EventTag tag) {
  ECF_CHECK_GE(when, now_) << " event scheduled in the past";
  return push_event(when, std::move(fn), tag);
}

EventId Engine::schedule_at_unchecked(SimTime when, EventFn fn, EventTag tag) {
  return push_event(when, std::move(fn), tag);
}

std::uint32_t Engine::acquire_slot(EventFn fn, EventTag tag) {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.tag = tag;
  s.live = true;
  return idx;
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.live = false;
  ++s.gen;  // invalidate every EventId minted for the previous occupant
  free_slots_.push_back(slot);
}

EventId Engine::push_event(SimTime when, EventFn fn, EventTag tag) {
  ++stats_.scheduled;
  if (fn && !fn.is_inline()) ++stats_.spilled_callbacks;
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot(std::move(fn), tag);
  const EventId id =
      (static_cast<std::uint64_t>(slots_[slot].gen) << 32) | slot;
  ++live_;
  stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                    live_);
  if (route(Entry{when, seq, slot})) ++stats_.wheel_parked;
  return id;
}

void Engine::cancel(EventId id) {
  // Cancelling an event that already ran (or was never scheduled) is a
  // no-op: either the slot index is stale or the generation mismatches.
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return;
  s.live = false;
  s.fn = nullptr;  // release the capture now; the heap entry dies lazily
  --live_;
  ++stats_.cancelled;
}

// --- 4-ary min-heap ---------------------------------------------------------

void Engine::heap_push(Entry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i != 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::Entry Engine::heap_pop() {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n != 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (entry_less(heap_[c], heap_[best])) best = c;
      }
      if (!entry_less(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Engine::heap_prune() {
  while (!heap_.empty() && !slots_[heap_.front().slot].live) {
    release_slot(heap_pop().slot);
  }
}

// --- hierarchical timer wheel ----------------------------------------------
//
// Positions and bucket bounds are in "ticks" (floor(when / resolution)).
// wheel_pos_ is the flush frontier: every wheel entry has tick > wheel_pos_
// and is reachable from it (level L holds ticks sharing the frontier's
// level-(L+1) digit but not its level-L digit). Entries always pass through
// the (when, seq) heap before executing, so the wheel is invisible to
// execution order; it only defers heap insertion for far-future timers.

std::uint64_t Engine::tick_of(SimTime when) {
  const double t = when / kWheelResolution;
  // NaN, negative or overflowing ticks are heap-only. 4.6e18 < 2^62 keeps
  // the uint64 conversion and the shift arithmetic below well-defined.
  if (!(t >= 0.0) || t >= 4.6e18) return kNoTick;
  return static_cast<std::uint64_t>(t);
}

bool Engine::route(Entry e) {
  const std::uint64_t tick = tick_of(e.when);
  if (tick == kNoTick || tick <= wheel_pos_) {
    heap_push(e);
    return false;
  }
  int level;
  std::uint64_t idx;
  if ((tick >> 6) == (wheel_pos_ >> 6)) {
    level = 0;
    idx = tick & 63;
  } else if ((tick >> 12) == (wheel_pos_ >> 12)) {
    level = 1;
    idx = (tick >> 6) & 63;
  } else if ((tick >> 18) == (wheel_pos_ >> 18)) {
    level = 2;
    idx = (tick >> 12) & 63;
  } else {
    heap_push(e);  // beyond the wheel span (~18 h of simulated time)
    return false;
  }
  buckets_[level][idx].push_back(e);
  occupancy_[level] |= std::uint64_t{1} << idx;
  ++wheel_count_;
  return true;
}

std::uint64_t Engine::next_bound_tick() const {
  // The earliest L0 tick always precedes every L1 bound, which precedes
  // every L2 bound (outer levels hold strictly later digit groups), so the
  // first occupied level wins.
  {
    const std::uint64_t sh = wheel_pos_ & 63;
    const std::uint64_t mask = (occupancy_[0] >> sh) << sh;
    if (mask != 0) {
      return (wheel_pos_ & ~std::uint64_t{63}) |
             static_cast<std::uint64_t>(std::countr_zero(mask));
    }
  }
  {
    const std::uint64_t sh = ((wheel_pos_ >> 6) & 63) + 1;
    const std::uint64_t mask =
        sh >= 64 ? 0 : (occupancy_[1] >> sh) << sh;
    if (mask != 0) {
      return ((wheel_pos_ >> 12) << 12) |
             (static_cast<std::uint64_t>(std::countr_zero(mask)) << 6);
    }
  }
  {
    const std::uint64_t sh = ((wheel_pos_ >> 12) & 63) + 1;
    const std::uint64_t mask =
        sh >= 64 ? 0 : (occupancy_[2] >> sh) << sh;
    if (mask != 0) {
      return ((wheel_pos_ >> 18) << 18) |
             (static_cast<std::uint64_t>(std::countr_zero(mask)) << 12);
    }
  }
  return kNoTick;
}

void Engine::flush_until(std::uint64_t bound) {
  bool frontier_done = false;
  while (!frontier_done && wheel_count_ != 0) {
    // L0: drain the earliest occupied bucket in the frontier's group.
    {
      const std::uint64_t sh = wheel_pos_ & 63;
      const std::uint64_t mask = (occupancy_[0] >> sh) << sh;
      if (mask != 0) {
        const int idx = std::countr_zero(mask);
        const std::uint64_t t0 =
            (wheel_pos_ & ~std::uint64_t{63}) | static_cast<unsigned>(idx);
        if (t0 > bound) break;
        auto& bucket = buckets_[0][idx];
        wheel_count_ -= bucket.size();
        for (const Entry& e : bucket) {
          if (slots_[e.slot].live) {
            heap_push(e);
          } else {
            release_slot(e.slot);  // cancelled while parked
          }
        }
        bucket.clear();
        occupancy_[0] &= ~(std::uint64_t{1} << idx);
        wheel_pos_ = t0;
        continue;
      }
    }
    // L1/L2: cascade the earliest occupied outer bucket whose bound is
    // within reach; its entries re-route against the advanced frontier.
    bool cascaded = false;
    for (int level = 1; level < kWheelLevels; ++level) {
      const int digit_shift = 6 * level;
      const std::uint64_t sh = ((wheel_pos_ >> digit_shift) & 63) + 1;
      const std::uint64_t mask =
          sh >= 64 ? 0 : (occupancy_[level] >> sh) << sh;
      if (mask == 0) continue;
      const int idx = std::countr_zero(mask);
      const std::uint64_t bucket_bound =
          ((wheel_pos_ >> (digit_shift + 6)) << (digit_shift + 6)) |
          (static_cast<std::uint64_t>(idx) << digit_shift);
      if (bucket_bound > bound) {
        frontier_done = true;
        cascaded = true;  // exit cleanly; the tail still advances wheel_pos_
        break;
      }
      wheel_pos_ = bucket_bound;
      auto& bucket = buckets_[level][idx];
      wheel_count_ -= bucket.size();
      occupancy_[level] &= ~(std::uint64_t{1} << idx);
      ++stats_.wheel_cascades;
      // route() below never appends back into this same bucket: every
      // entry here shares the frontier's level-(L) digit now, so it lands
      // in a lower level or the heap.
      for (const Entry& e : bucket) {
        if (slots_[e.slot].live) {
          route(e);
        } else {
          release_slot(e.slot);
        }
      }
      bucket.clear();
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    ECF_DCHECK(false) << " timer wheel entries unreachable from frontier";
    break;
  }
  if (bound != kNoTick && bound > wheel_pos_) wheel_pos_ = bound;
}

bool Engine::next_event_time(SimTime* when) {
  for (;;) {
    heap_prune();
    const SimTime heap_top = heap_.empty()
                                 ? std::numeric_limits<SimTime>::infinity()
                                 : heap_.front().when;
    if (wheel_count_ != 0) {
      const std::uint64_t bt = next_bound_tick();
      ECF_DCHECK(bt != kNoTick) << " timer wheel occupancy out of sync";
      // (bt - 1) * resolution is a conservative lower bound on the `when`
      // of any parked entry (one-tick slack absorbs the floating-point
      // rounding in tick_of). Flushing early is harmless — the heap still
      // orders execution by (when, seq).
      if (bt != kNoTick &&
          (static_cast<double>(bt) - 1.0) * kWheelResolution <= heap_top) {
        flush_until(bt);
        continue;
      }
    }
    if (heap_.empty()) return false;
    *when = heap_top;
    return true;
  }
}

// --- run loop ---------------------------------------------------------------

std::size_t Engine::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::size_t Engine::run_until(SimTime horizon) {
  std::size_t executed = 0;
  SimTime when;
  while (next_event_time(&when)) {
    if (when > horizon) break;
    const Entry e = heap_pop();
    Slot& s = slots_[e.slot];
    EventFn fn = std::move(s.fn);
    const EventTag tag = s.tag;
    // Retire the slot before invoking: the callback may schedule into it,
    // and the generation bump keeps the old EventId cancel-proof.
    release_slot(e.slot);
    --live_;
    now_ = e.when;
    ++stats_.executed;
    ++stats_.executed_by_tag[static_cast<std::size_t>(tag)];
    fn();
    ++executed;
    if (post_event_hook_) post_event_hook_();
  }
  // The clock does not advance past the last executed event when idle.
  return executed;
}

void Engine::reset() {
  now_ = 0;
  next_seq_ = 1;
  live_ = 0;
  slots_.clear();
  free_slots_.clear();
  heap_.clear();
  wheel_pos_ = 0;
  wheel_count_ = 0;
  for (int level = 0; level < kWheelLevels; ++level) {
    occupancy_[level] = 0;
    for (auto& bucket : buckets_[level]) bucket.clear();
  }
  post_event_hook_ = nullptr;
  stats_ = EngineStats{};
}

}  // namespace ecf::sim
