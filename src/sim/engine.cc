#include "sim/engine.h"

#include <limits>

#include "util/check.h"

namespace ecf::sim {

EventId Engine::schedule(SimTime delay, std::function<void()> fn) {
  ECF_CHECK_GE(delay, 0.0) << " negative event delay at t=" << now_;
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(SimTime when, std::function<void()> fn) {
  ECF_CHECK_GE(when, now_) << " event scheduled in the past";
  return push_event(when, std::move(fn));
}

EventId Engine::schedule_at_unchecked(SimTime when, std::function<void()> fn) {
  return push_event(when, std::move(fn));
}

EventId Engine::push_event(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void Engine::cancel(EventId id) {
  // Cancelling an event that already ran (or was never scheduled) is a
  // no-op; only live events join the cancelled set.
  if (pending_.erase(id)) cancelled_.insert(id);
}

std::size_t Engine::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::size_t Engine::run_until(SimTime horizon) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > horizon) break;
    Event ev{top.when, top.id, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    if (cancelled_.erase(ev.id)) continue;
    pending_.erase(ev.id);
    now_ = ev.when;
    ev.fn();
    ++executed;
    if (post_event_hook_) post_event_hook_();
  }
  // The clock does not advance past the last executed event when idle.
  return executed;
}

void Engine::reset() {
  now_ = 0;
  next_id_ = 1;
  queue_ = {};
  pending_.clear();
  cancelled_.clear();
}

}  // namespace ecf::sim
