#include "sim/engine.h"

#include <limits>
#include <stdexcept>

namespace ecf::sim {

EventId Engine::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("negative event delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("event scheduled in the past");
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void Engine::cancel(EventId id) {
  // Cancelling an event that already ran (or was never scheduled) is a
  // no-op; only live events join the cancelled set.
  if (pending_.erase(id)) cancelled_.insert(id);
}

std::size_t Engine::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::size_t Engine::run_until(SimTime horizon) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > horizon) break;
    Event ev{top.when, top.id, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    if (cancelled_.erase(ev.id)) continue;
    pending_.erase(ev.id);
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  // The clock does not advance past the last executed event when idle.
  return executed;
}

void Engine::reset() {
  now_ = 0;
  next_id_ = 1;
  queue_ = {};
  pending_.clear();
  cancelled_.clear();
}

}  // namespace ecf::sim
