#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/check.h"
#include "util/hotpath.h"

namespace ecf::sim {

const char* to_string(EventTag tag) {
  switch (tag) {
    case EventTag::kGeneric:   return "generic";
    case EventTag::kHeartbeat: return "heartbeat";
    case EventTag::kMonitor:   return "monitor";
    case EventTag::kRecovery:  return "recovery";
    case EventTag::kScrub:     return "scrub";
    case EventTag::kClient:    return "client";
    case EventTag::kKeepAlive: return "keepalive";
    case EventTag::kReconnect: return "reconnect";
    case EventTag::kIostat:    return "iostat";
    case EventTag::kFault:     return "fault";
  }
  return "?";
}

EventId Engine::schedule(SimTime delay, EventFn fn, EventTag tag) {
  ECF_CHECK_GE(delay, 0.0) << " negative event delay at t=" << now_;
  return schedule_at(now_ + delay, std::move(fn), tag);
}

EventId Engine::schedule_at(SimTime when, EventFn fn, EventTag tag) {
  ECF_CHECK_GE(when, now_) << " event scheduled in the past";
  return push_event(when, std::move(fn), tag);
}

EventId Engine::schedule_at_unchecked(SimTime when, EventFn fn, EventTag tag) {
  return push_event(when, std::move(fn), tag);
}

std::uint32_t Engine::acquire_slot(Lane& lane, EventFn fn, EventTag tag) {
  std::uint32_t idx;
  if (!lane.free_slots.empty()) {
    idx = lane.free_slots.back();
    lane.free_slots.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(lane.slots.size());
    ECF_CHECK_LE(idx, static_cast<std::uint32_t>(kIdSlotMask))
        << " per-lane event slot index overflows the EventId layout";
    lane.slots.emplace_back();  ECF_ALLOC_OK("amortized: slot table grows to in-flight high-water, then recycles via free_slots");
  }
  Slot& s = lane.slots[idx];
  s.fn = std::move(fn);
  s.tag = tag;
  s.live = true;
  return idx;
}

void Engine::release_slot(Lane& lane, std::uint32_t slot) {
  Slot& s = lane.slots[slot];
  s.fn = nullptr;
  s.live = false;
  ++s.gen;  // invalidate every EventId minted for the previous occupant
  lane.free_slots.push_back(slot);
}

EventId Engine::push_event(SimTime when, EventFn fn, EventTag tag) {
  ++stats_.scheduled;
  if (fn && !fn.is_inline()) ++stats_.spilled_callbacks;
  const std::uint64_t seq = next_seq_++;
  Lane& lane = lanes_[current_lane_];
  const std::uint32_t slot = acquire_slot(lane, std::move(fn), tag);
  const EventId id = (static_cast<std::uint64_t>(lane.slots[slot].gen) << 32) |
                     (static_cast<std::uint64_t>(current_lane_) << kIdLaneShift) |
                     slot;
  ++live_;
  stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                    live_);
  if (route(lane, Entry{when, seq, slot})) {
    ++stats_.wheel_parked;
  }
  return id;
}

void Engine::cancel(EventId id) {
  // Cancelling an event that already ran (or was never scheduled) is a
  // no-op: either the slot index is stale or the generation mismatches.
  const std::size_t lane_idx =
      static_cast<std::size_t>((id >> kIdLaneShift) & (kMaxLanes - 1));
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kIdSlotMask);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (lane_idx >= lanes_.size()) return;
  Lane& lane = lanes_[lane_idx];
  if (slot >= lane.slots.size()) return;
  Slot& s = lane.slots[slot];
  if (!s.live || s.gen != gen) return;
  s.live = false;
  s.fn = nullptr;  // release the capture now; the heap entry dies lazily
  --live_;
  ++stats_.cancelled;
}

// --- event lanes ------------------------------------------------------------

std::size_t Engine::lane_of(std::uint64_t key) const {
  // splitmix64 finalizer: full avalanche, so dense PG/host id ranges
  // spread evenly over any lane count.
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  key ^= key >> 31;
  return static_cast<std::size_t>(key % lanes_.size());
}

void Engine::set_lane_count(std::size_t n) {
  ECF_CHECK_GE(n, std::size_t{1}) << " engine needs at least one lane";
  ECF_CHECK_LE(n, kMaxLanes) << " lane count above kMaxLanes";
  ECF_CHECK_EQ(pending(), std::size_t{0})
      << " lane count change with events pending";
  // With no live events every remaining slot is dead (cancelled entries
  // may still sit in lane heaps/wheels, but their captures were already
  // destroyed), so the per-lane tables can simply be rebuilt.
  lanes_.clear();
  lanes_.resize(n);
  heads_.assign(n, LaneHead{});
  current_lane_ = 0;
  stats_.lane_count = n;
}

// --- 4-ary min-heap ---------------------------------------------------------

void Engine::heap_push(Lane& lane, Entry e) {
  auto& heap = lane.heap;
  heap.push_back(e);  ECF_ALLOC_OK("amortized: heap storage grows to queue-depth high-water");
  std::size_t i = heap.size() - 1;
  while (i != 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_less(heap[i], heap[parent])) break;
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

Engine::Entry Engine::heap_pop(Lane& lane) {
  auto& heap = lane.heap;
  const Entry top = heap.front();
  const Entry last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n != 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (entry_less(heap[c], heap[best])) best = c;
      }
      if (!entry_less(heap[best], last)) break;
      heap[i] = heap[best];
      i = best;
    }
    heap[i] = last;
  }
  return top;
}

// --- hierarchical timer wheel ----------------------------------------------
//
// Positions and bucket bounds are in "ticks" (floor(when / resolution)).
// Each lane's wheel_pos is its flush frontier: every wheel entry has
// tick > wheel_pos and is reachable from it (level L holds ticks sharing
// the frontier's level-(L+1) digit but not its level-L digit). Entries
// always pass through the lane's (when, seq) heap before executing, so the
// wheel is invisible to execution order; it only defers heap insertion for
// far-future timers.

std::uint64_t Engine::tick_of(SimTime when) {
  const double t = when / kWheelResolution;
  // NaN, negative or overflowing ticks are heap-only. 4.6e18 < 2^62 keeps
  // the uint64 conversion and the shift arithmetic below well-defined.
  if (!(t >= 0.0) || t >= 4.6e18) return kNoTick;
  return static_cast<std::uint64_t>(t);
}

bool Engine::route(Lane& lane, Entry e) {
  // The heads_ digest is maintained conservatively here: a heap insert can
  // only lower the head, a wheel insert can only lower the wheel bound. A
  // stale-low wheel bound merely sends the merge scan through the slow
  // peek path once, which recomputes it exactly.
  LaneHead& h = heads_[static_cast<std::size_t>(&lane - lanes_.data())];
  const std::uint64_t tick = tick_of(e.when);
  if (tick == kNoTick || tick <= lane.wheel_pos) {
    heap_push(lane, e);
    if (entry_less(e, h.head)) h.head = e;
    return false;
  }
  int level;
  std::uint64_t idx;
  if ((tick >> 6) == (lane.wheel_pos >> 6)) {
    level = 0;
    idx = tick & 63;
  } else if ((tick >> 12) == (lane.wheel_pos >> 12)) {
    level = 1;
    idx = (tick >> 6) & 63;
  } else if ((tick >> 18) == (lane.wheel_pos >> 18)) {
    level = 2;
    idx = (tick >> 12) & 63;
  } else {
    heap_push(lane, e);  // beyond the wheel span (~18 h of simulated time)
    if (entry_less(e, h.head)) h.head = e;
    return false;
  }
  lane.buckets[level][idx].push_back(e);
  lane.occupancy[level] |= std::uint64_t{1} << idx;
  ++lane.wheel_count;
  const SimTime bound =
      (static_cast<double>(tick) - 1.0) * kWheelResolution;
  if (bound < h.wheel_bound) h.wheel_bound = bound;
  return true;
}

std::uint64_t Engine::next_bound_tick(const Lane& lane) const {
  // The earliest L0 tick always precedes every L1 bound, which precedes
  // every L2 bound (outer levels hold strictly later digit groups), so the
  // first occupied level wins.
  {
    const std::uint64_t sh = lane.wheel_pos & 63;
    const std::uint64_t mask = (lane.occupancy[0] >> sh) << sh;
    if (mask != 0) {
      return (lane.wheel_pos & ~std::uint64_t{63}) |
             static_cast<std::uint64_t>(std::countr_zero(mask));
    }
  }
  {
    const std::uint64_t sh = ((lane.wheel_pos >> 6) & 63) + 1;
    const std::uint64_t mask =
        sh >= 64 ? 0 : (lane.occupancy[1] >> sh) << sh;
    if (mask != 0) {
      return ((lane.wheel_pos >> 12) << 12) |
             (static_cast<std::uint64_t>(std::countr_zero(mask)) << 6);
    }
  }
  {
    const std::uint64_t sh = ((lane.wheel_pos >> 12) & 63) + 1;
    const std::uint64_t mask =
        sh >= 64 ? 0 : (lane.occupancy[2] >> sh) << sh;
    if (mask != 0) {
      return ((lane.wheel_pos >> 18) << 18) |
             (static_cast<std::uint64_t>(std::countr_zero(mask)) << 12);
    }
  }
  return kNoTick;
}

void Engine::flush_until(Lane& lane, std::uint64_t bound) {
  bool frontier_done = false;
  while (!frontier_done && lane.wheel_count != 0) {
    // L0: drain the earliest occupied bucket in the frontier's group.
    {
      const std::uint64_t sh = lane.wheel_pos & 63;
      const std::uint64_t mask = (lane.occupancy[0] >> sh) << sh;
      if (mask != 0) {
        const int idx = std::countr_zero(mask);
        const std::uint64_t t0 =
            (lane.wheel_pos & ~std::uint64_t{63}) | static_cast<unsigned>(idx);
        if (t0 > bound) break;
        auto& bucket = lane.buckets[0][idx];
        lane.wheel_count -= bucket.size();
        for (const Entry& e : bucket) {
          if (lane.slots[e.slot].live) {
            heap_push(lane, e);
          } else {
            release_slot(lane, e.slot);  // cancelled while parked
          }
        }
        bucket.clear();
        lane.occupancy[0] &= ~(std::uint64_t{1} << idx);
        lane.wheel_pos = t0;
        continue;
      }
    }
    // L1/L2: cascade the earliest occupied outer bucket whose bound is
    // within reach; its entries re-route against the advanced frontier.
    bool cascaded = false;
    for (int level = 1; level < kWheelLevels; ++level) {
      const int digit_shift = 6 * level;
      const std::uint64_t sh = ((lane.wheel_pos >> digit_shift) & 63) + 1;
      const std::uint64_t mask =
          sh >= 64 ? 0 : (lane.occupancy[level] >> sh) << sh;
      if (mask == 0) continue;
      const int idx = std::countr_zero(mask);
      const std::uint64_t bucket_bound =
          ((lane.wheel_pos >> (digit_shift + 6)) << (digit_shift + 6)) |
          (static_cast<std::uint64_t>(idx) << digit_shift);
      if (bucket_bound > bound) {
        frontier_done = true;
        cascaded = true;  // exit cleanly; the tail still advances wheel_pos
        break;
      }
      lane.wheel_pos = bucket_bound;
      auto& bucket = lane.buckets[level][idx];
      lane.wheel_count -= bucket.size();
      lane.occupancy[level] &= ~(std::uint64_t{1} << idx);
      ++stats_.wheel_cascades;
      // route() below never appends back into this same bucket: every
      // entry here shares the frontier's level-(L) digit now, so it lands
      // in a lower level or the heap.
      for (const Entry& e : bucket) {
        if (lane.slots[e.slot].live) {
          route(lane, e);
        } else {
          release_slot(lane, e.slot);
        }
      }
      bucket.clear();
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    ECF_DCHECK(false) << " timer wheel entries unreachable from frontier";
    break;
  }
  if (bound != kNoTick && bound > lane.wheel_pos) lane.wheel_pos = bound;
}

void Engine::refresh_heap_head(std::size_t i) {
  Lane& lane = lanes_[i];
  heads_[i].head = lane.heap.empty() ? Entry{kInfTime, ~std::uint64_t{0}, 0}
                                     : lane.heap.front();
}

void Engine::refresh_head(std::size_t i) {
  refresh_heap_head(i);
  Lane& lane = lanes_[i];
  LaneHead& h = heads_[i];
  if (lane.wheel_count == 0) {
    h.wheel_bound = kInfTime;
  } else {
    const std::uint64_t bt = next_bound_tick(lane);
    ECF_DCHECK(bt != kNoTick) << " timer wheel occupancy out of sync";
    // (bt - 1) * resolution is a conservative lower bound on the `when`
    // of any parked entry (one-tick slack absorbs the floating-point
    // rounding in tick_of).
    h.wheel_bound = (static_cast<double>(bt) - 1.0) * kWheelResolution;
  }
}

void Engine::flush_lane_for_peek(std::size_t i) {
  // Deliberately does NOT check heads for liveness: the heap front is a
  // valid (when, seq) lower bound on every live event in the lane whether
  // or not it was cancelled, and skipping the check keeps the per-event
  // k-way merge scan from touching a random slot cache line per lane. The
  // run loop verifies liveness for the winning head only and re-peeks the
  // lane when it turns out dead.
  Lane& lane = lanes_[i];
  while (lane.wheel_count != 0) {
    const SimTime heap_top =
        lane.heap.empty() ? kInfTime : lane.heap.front().when;
    const std::uint64_t bt = next_bound_tick(lane);
    ECF_DCHECK(bt != kNoTick) << " timer wheel occupancy out of sync";
    // Flushing early is harmless — the heap still orders execution by
    // (when, seq).
    if (!((static_cast<double>(bt) - 1.0) * kWheelResolution <= heap_top)) {
      break;
    }
    flush_until(lane, bt);
  }
  refresh_head(i);
}

// --- run loop ---------------------------------------------------------------

std::size_t Engine::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::size_t Engine::run_until(SimTime horizon) {
  std::size_t executed = 0;
  const std::size_t n = lanes_.size();
  for (;;) {
    // Deterministic k-way merge over the dense heads_ digest: every lane
    // surfaces its earliest entry; the global (when, seq) minimum wins.
    // seq values are unique, so the winner — and thus the execution order
    // — is independent of how events were assigned to lanes.
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      LaneHead& h = heads_[i];
      if (h.wheel_bound <= h.head.when) {
        if (h.wheel_bound == kInfTime) continue;  // lane fully empty
        flush_lane_for_peek(i);
        if (heads_[i].head.when == kInfTime) continue;  // only dead parked
      }
      if (best == n || entry_less(heads_[i].head, heads_[best].head)) {
        best = i;
      }
    }
    if (best == n) break;
    Lane& lane = lanes_[best];
    const Entry best_entry = heads_[best].head;
    if (!lane.slots[best_entry.slot].live) {
      // Cancelled while queued; drop it and re-merge. A live winner is <=
      // every lane's lower bound, so it is the global live minimum.
      release_slot(lane, heap_pop(lane).slot);
      refresh_heap_head(best);
      continue;
    }
    if (best_entry.when > horizon) break;
    const Entry e = heap_pop(lane);
    refresh_heap_head(best);
    // Events scheduled by this callback inherit its lane.
    current_lane_ = best;
    Slot& s = lane.slots[e.slot];
    EventFn fn = std::move(s.fn);
    const EventTag tag = s.tag;
    // Retire the slot before invoking: the callback may schedule into it,
    // and the generation bump keeps the old EventId cancel-proof.
    release_slot(lane, e.slot);
    --live_;
    now_ = e.when;
    ++stats_.executed;
    ++stats_.executed_by_tag[static_cast<std::size_t>(tag)];
    fn();
    ++executed;
    if (post_event_hook_) post_event_hook_();
  }
  // The clock does not advance past the last executed event when idle.
  return executed;
}

void Engine::reset() {
  now_ = 0;
  next_seq_ = 1;
  live_ = 0;
  // Reset every lane in place — wheel position/occupancy counters back to
  // zero, queues emptied — but keep the heap, bucket, and slot-table
  // capacity: the next campaign variant replays a similar schedule, so the
  // high-water storage is about to be refilled (the event-path allocation
  // discipline counts on that amortization holding across variants).
  for (Lane& lane : lanes_) {
    lane.heap.clear();
    lane.wheel_pos = 0;
    lane.wheel_count = 0;
    for (int level = 0; level < kWheelLevels; ++level) {
      lane.occupancy[level] = 0;
      for (auto& bucket : lane.buckets[level]) bucket.clear();
    }
    lane.slots.clear();
    lane.free_slots.clear();
  }
  heads_.assign(lanes_.size(), LaneHead{});
  current_lane_ = 0;
  post_event_hook_ = nullptr;
  stats_ = EngineStats{};
  stats_.lane_count = lanes_.size();
}

}  // namespace ecf::sim
