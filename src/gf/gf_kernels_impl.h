// Internal: per-variant kernel entry points, shared between the dispatch
// unit (gf_kernels.cc) and the separately-flagged SIMD translation units.
// The SSSE3/AVX2/GFNI symbols exist only when the corresponding
// ECF_GF_HAVE_* macro is defined by the build (x86 with a capable
// compiler); the dispatcher guards every reference with the same macros.
#pragma once

#include "gf/gf256.h"

namespace ecf::gf::detail {

// Scalar reference kernels (always present).
void scalar_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);
void scalar_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);
void scalar_xor_region(const Byte* src, Byte* dst, std::size_t n);
void scalar_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                          Byte* const* dsts, std::size_t n);

// Portable 64-bit SWAR kernels (always present).
void swar_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);
void swar_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);
void swar_xor_region(const Byte* src, Byte* dst, std::size_t n);
void swar_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n);

#ifdef ECF_GF_HAVE_SSSE3
void ssse3_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);
void ssse3_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);
void ssse3_xor_region(const Byte* src, Byte* dst, std::size_t n);
void ssse3_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                         Byte* const* dsts, std::size_t n);
#endif

#ifdef ECF_GF_HAVE_AVX2
void avx2_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);
void avx2_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);
void avx2_xor_region(const Byte* src, Byte* dst, std::size_t n);
void avx2_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n);
#endif

#ifdef ECF_GF_HAVE_GFNI
void gfni_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);
void gfni_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);
void gfni_xor_region(const Byte* src, Byte* dst, std::size_t n);
void gfni_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n);
#endif

}  // namespace ecf::gf::detail
