#include "gf/gf_kernels.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "gf/gf_kernels_impl.h"
#include "util/check.h"
#include "util/thread_annotations.h"

namespace ecf::gf {

namespace detail {

void scalar_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  const Byte* prod = tables().mul_table[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= prod[src[i]];
}

void scalar_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  const Byte* prod = tables().mul_table[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = prod[src[i]];
}

void scalar_xor_region(const Byte* src, Byte* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void scalar_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                          Byte* const* dsts, std::size_t n) {
  for (std::size_t r = 0; r < m; ++r) {
    scalar_mul_acc(coeffs[r], src, dsts[r], n);
  }
}

namespace {

// Per-byte doubling in GF(256)/0x11D across a 64-bit lane: shift each byte
// left and fold the carried-out high bit back in as the reduction 0x1D.
// (hi >> 7) has 0x01 in every byte that overflowed; * 0x1D spreads the
// polynomial into those bytes without cross-byte carries.
inline std::uint64_t swar_double(std::uint64_t a) {
  const std::uint64_t hi = a & 0x8080808080808080ull;
  return ((a << 1) & 0xFEFEFEFEFEFEFEFEull) ^ ((hi >> 7) * 0x1D);
}

}  // namespace

namespace {

// Multiply every byte of `a` by `c` (c != 0): XOR together a * x^b for the
// set bits b of c, walking the doubling chain only up to the top set bit.
// The bit pattern of c is loop-invariant, so the branches predict
// perfectly after the first word.
inline std::uint64_t swar_mul_word(std::uint64_t a, Byte c) {
  std::uint64_t acc = 0;
  unsigned bits = c;
  for (;;) {
    if (bits & 1) acc ^= a;
    bits >>= 1;
    if (bits == 0) return acc;
    a = swar_double(a);
  }
}

}  // namespace

void swar_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, d;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&d, dst + i, 8);
    d ^= swar_mul_word(a, c);
    std::memcpy(dst + i, &d, 8);
  }
  scalar_mul_acc(c, src + i, dst + i, n - i);
}

void swar_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::memcpy(&a, src + i, 8);
    const std::uint64_t acc = swar_mul_word(a, c);
    std::memcpy(dst + i, &acc, 8);
  }
  scalar_mul_region(c, src + i, dst + i, n - i);
}

void swar_xor_region(const Byte* src, Byte* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, d;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&d, dst + i, 8);
    d ^= a;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void swar_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // src * x^b for b = 0..7, computed once and shared by every output row.
    std::uint64_t pw[8];
    std::memcpy(&pw[0], src + i, 8);
    for (int b = 1; b < 8; ++b) pw[b] = swar_double(pw[b - 1]);
    for (std::size_t r = 0; r < m; ++r) {
      const Byte c = coeffs[r];
      if (c == 0) continue;
      std::uint64_t acc = 0;
      for (int b = 0; b < 8; ++b) {
        if ((c >> b) & 1) acc ^= pw[b];
      }
      std::uint64_t d;
      std::memcpy(&d, dsts[r] + i, 8);
      d ^= acc;
      std::memcpy(dsts[r] + i, &d, 8);
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    scalar_mul_acc(coeffs[r], src + i, dsts[r] + i, n - i);
  }
}

}  // namespace detail

namespace {

constexpr Kernels kScalarKernels{
    KernelVariant::kScalar, "scalar",          detail::scalar_mul_acc,
    detail::scalar_mul_region, detail::scalar_xor_region,
    detail::scalar_mul_acc_multi};

constexpr Kernels kSwarKernels{
    KernelVariant::kSwar, "swar",          detail::swar_mul_acc,
    detail::swar_mul_region, detail::swar_xor_region,
    detail::swar_mul_acc_multi};

#ifdef ECF_GF_HAVE_SSSE3
constexpr Kernels kSsse3Kernels{
    KernelVariant::kSsse3, "ssse3",          detail::ssse3_mul_acc,
    detail::ssse3_mul_region, detail::ssse3_xor_region,
    detail::ssse3_mul_acc_multi};
#endif

#ifdef ECF_GF_HAVE_AVX2
constexpr Kernels kAvx2Kernels{
    KernelVariant::kAvx2, "avx2",          detail::avx2_mul_acc,
    detail::avx2_mul_region, detail::avx2_xor_region,
    detail::avx2_mul_acc_multi};
#endif

#ifdef ECF_GF_HAVE_GFNI
constexpr Kernels kGfniKernels{
    KernelVariant::kGfni, "gfni",          detail::gfni_mul_acc,
    detail::gfni_mul_region, detail::gfni_xor_region,
    detail::gfni_mul_acc_multi};
#endif

bool cpu_supports(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar:
    case KernelVariant::kSwar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case KernelVariant::kSsse3:
      return __builtin_cpu_supports("ssse3");
    case KernelVariant::kAvx2:
      return __builtin_cpu_supports("avx2");
    case KernelVariant::kGfni:
      // VEX-encoded vgf2p8affineqb needs both GFNI and AVX state.
      return __builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2");
#endif
    default:
      return false;
  }
}

}  // namespace

const char* to_string(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return "scalar";
    case KernelVariant::kSwar: return "swar";
    case KernelVariant::kSsse3: return "ssse3";
    case KernelVariant::kAvx2: return "avx2";
    case KernelVariant::kGfni: return "gfni";
  }
  return "?";
}

bool variant_supported(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar:
    case KernelVariant::kSwar:
      return true;
    case KernelVariant::kSsse3:
#ifdef ECF_GF_HAVE_SSSE3
      return cpu_supports(v);
#else
      return false;
#endif
    case KernelVariant::kAvx2:
#ifdef ECF_GF_HAVE_AVX2
      return cpu_supports(v);
#else
      return false;
#endif
    case KernelVariant::kGfni:
#ifdef ECF_GF_HAVE_GFNI
      return cpu_supports(v);
#else
      return false;
#endif
  }
  return false;
}

std::vector<KernelVariant> supported_variants() {
  std::vector<KernelVariant> out;
  for (const KernelVariant v :
       {KernelVariant::kScalar, KernelVariant::kSwar, KernelVariant::kSsse3,
        KernelVariant::kAvx2, KernelVariant::kGfni}) {
    if (variant_supported(v)) out.push_back(v);
  }
  return out;
}

KernelVariant best_variant() {
  // Preference order: GFNI > AVX2 > SSSE3 > SWAR. The affine instruction
  // does a full byte multiply per lane-byte with no table pressure at all.
  for (const KernelVariant v : {KernelVariant::kGfni, KernelVariant::kAvx2,
                                KernelVariant::kSsse3}) {
    if (variant_supported(v)) return v;
  }
  return KernelVariant::kSwar;
}

const Kernels& kernels_for(KernelVariant v) {
  if (!variant_supported(v)) {
    throw std::invalid_argument(std::string("gf kernel variant '") +
                                to_string(v) +
                                "' not supported on this build/CPU");
  }
  switch (v) {
    case KernelVariant::kScalar: return kScalarKernels;
    case KernelVariant::kSwar: return kSwarKernels;
#ifdef ECF_GF_HAVE_SSSE3
    case KernelVariant::kSsse3: return kSsse3Kernels;
#endif
#ifdef ECF_GF_HAVE_AVX2
    case KernelVariant::kAvx2: return kAvx2Kernels;
#endif
#ifdef ECF_GF_HAVE_GFNI
    case KernelVariant::kGfni: return kGfniKernels;
#endif
    default:
      throw std::invalid_argument("gf kernel variant not compiled in");
  }
}

namespace {

// Active-kernel slot. A function-local static (not a namespace-scope
// global) so the first call — even from another TU's static initializer or
// from concurrent threads — runs the CPU probe exactly once under the
// compiler's thread-safe magic-static guard; afterwards reads are plain
// atomic loads.
std::atomic<const Kernels*>& active_kernels_slot() {
  static std::atomic<const Kernels*> slot{&kernels_for(best_variant())};
  return slot;
}

// Writers (select_kernels, ScopedKernelOverride) are serialized so a
// save/select/restore sequence can't interleave with another writer;
// readers keep loading the atomic slot lock-free.
std::mutex g_select_mu;
int g_override_depth ECF_GUARDED_BY(g_select_mu) = 0;

}  // namespace

const Kernels& kernels() {
  return *active_kernels_slot().load(std::memory_order_acquire);
}

void select_kernels(KernelVariant v) {
  // Resolve first: an unsupported variant throws without clobbering the slot.
  const Kernels& k = kernels_for(v);
  std::lock_guard<std::mutex> lk(g_select_mu);
  active_kernels_slot().store(&k, std::memory_order_release);
}

ScopedKernelOverride::ScopedKernelOverride(KernelVariant v)
    : saved_(&kernels()) {
  const Kernels& k = kernels_for(v);  // may throw; nothing pinned yet
  std::lock_guard<std::mutex> lk(g_select_mu);
  ++g_override_depth;
  active_kernels_slot().store(&k, std::memory_order_release);
}

ScopedKernelOverride::~ScopedKernelOverride() {
  std::lock_guard<std::mutex> lk(g_select_mu);
  ECF_CHECK_GT(g_override_depth, 0) << " unbalanced kernel override";
  --g_override_depth;
  active_kernels_slot().store(saved_, std::memory_order_release);
}

}  // namespace ecf::gf
