#include "gf/matrix.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "gf/gf_kernels.h"
#include "util/check.h"
#include "util/hotpath.h"

namespace ecf::gf {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(const std::vector<Byte>& evals, std::size_t cols) {
  Matrix m(evals.size(), cols);
  for (std::size_t r = 0; r < evals.size(); ++r) {
    Byte v = 1;
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = v;
      v = mul(v, evals[r]);
    }
  }
  return m;
}

Matrix Matrix::cauchy(const std::vector<Byte>& x, const std::vector<Byte>& y) {
  Matrix m(x.size(), y.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    for (std::size_t c = 0; c < y.size(); ++c) {
      const Byte s = add(x[r], y[c]);
      if (s == 0) throw std::invalid_argument("cauchy: x and y overlap");
      m.at(r, c) = inv(s);
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  ECF_CHECK_EQ(cols_, rhs.rows_) << " matrix multiply dimension mismatch";
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const Byte a = at(r, i);
      if (a == 0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) = add(out.at(r, c), mul(a, rhs.at(i, c)));
      }
    }
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  if (rows_ != cols_) return std::nullopt;
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv_m = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;
    a.swap_rows(col, pivot);
    inv_m.swap_rows(col, pivot);
    // Normalize pivot row.
    const Byte p = inv(a.at(col, col));
    a.scale_row(col, p);
    inv_m.scale_row(col, p);
    // Eliminate the column elsewhere.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Byte f = a.at(r, col);
      if (f == 0) continue;
      a.add_scaled_row(r, col, f);
      inv_m.add_scaled_row(r, col, f);
    }
  }
  return inv_m;
}

std::size_t Matrix::rank() const {
  Matrix a = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && a.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    a.swap_rows(rank, pivot);
    const Byte p = inv(a.at(rank, col));
    a.scale_row(rank, p);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const Byte f = a.at(r, col);
      if (f) a.add_scaled_row(r, rank, f);
    }
    ++rank;
  }
  return rank;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ECF_CHECK_LT(rows[i], rows_) << " select_rows: row out of range";
    for (std::size_t c = 0; c < cols_; ++c) out.at(i, c) = at(rows[i], c);
  }
  return out;
}

void Matrix::scale_row(std::size_t r, Byte c) {
  for (std::size_t i = 0; i < cols_; ++i) at(r, i) = mul(at(r, i), c);
}

void Matrix::add_scaled_row(std::size_t dst, std::size_t src, Byte c) {
  for (std::size_t i = 0; i < cols_; ++i) {
    at(dst, i) = add(at(dst, i), mul(c, at(src, i)));
  }
}

void Matrix::swap_rows(std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t i = 0; i < cols_; ++i) std::swap(at(a, i), at(b, i));
}

bool Matrix::make_systematic(std::size_t k) {
  // Column-reduce so the top k x k block becomes identity. We do this by
  // inverting the top block and right-multiplying the whole matrix — the
  // standard construction for systematic RS from a Vandermonde generator.
  ECF_CHECK_LE(k, rows_) << " make_systematic: k exceeds generator rows";
  ECF_CHECK_LE(k, cols_) << " make_systematic: k exceeds generator cols";
  Matrix top(k, cols_);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) top.at(r, c) = at(r, c);
  }
  // The generator here is (rows x k): rows_ codeword symbols from k data
  // symbols; the "top block" is k x k.
  Matrix block(k, k);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) block.at(r, c) = at(r, c);
  }
  auto binv = block.inverted();
  if (!binv) return false;
  Matrix result = this->multiply(*binv);
  *this = result;
  return true;
}

std::string Matrix::to_string() const {
  std::string out;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%3u ", at(r, c));
      out += buf;  ECF_ALLOC_OK("cold: debug formatting only");
    }
    out += '\n';  ECF_ALLOC_OK("cold: debug formatting only");
  }
  return out;
}

void Matrix::apply_rows(const std::vector<std::size_t>& rows,
                        const std::vector<const Byte*>& in,
                        const std::vector<Byte*>& out, std::size_t len) const {
  ECF_CHECK_EQ(in.size(), cols_) << " apply_rows: source buffer count";
  ECF_CHECK_EQ(out.size(), rows.size()) << " apply_rows: dest buffer count";
  const Kernels& k = kernels();
  const std::size_t m = rows.size();
  // Block size tuned so the m output blocks stay L1-resident while the
  // cols_ source blocks stream through once each.
  constexpr std::size_t kBlock = 4096;
  std::vector<Byte> coeffs(m);
  std::vector<Byte*> dsts(m);
  for (std::size_t ofs = 0; ofs < len; ofs += kBlock) {
    const std::size_t bn = std::min(kBlock, len - ofs);
    for (std::size_t r = 0; r < m; ++r) {
      dsts[r] = out[r] + ofs;
      std::memset(dsts[r], 0, bn);
    }
    for (std::size_t c = 0; c < cols_; ++c) {
      bool any = false;
      for (std::size_t r = 0; r < m; ++r) {
        coeffs[r] = at(rows[r], c);
        any = any || coeffs[r] != 0;
      }
      if (any) k.mul_acc_multi(coeffs.data(), m, in[c] + ofs, dsts.data(), bn);
    }
  }
}

void matrix_apply(const Matrix& m, const std::vector<const Byte*>& in,
                  const std::vector<Byte*>& out, std::size_t len) {
  ECF_CHECK_EQ(in.size(), m.cols()) << " matrix_apply: source buffer count";
  ECF_CHECK_EQ(out.size(), m.rows()) << " matrix_apply: dest buffer count";
  std::vector<std::size_t> rows(m.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  m.apply_rows(rows, in, out, len);
}

}  // namespace ecf::gf
