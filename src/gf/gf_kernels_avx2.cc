// AVX2 nibble-split kernels: the SSSE3 scheme widened to 32 bytes with
// vpshufb. The per-coefficient 32-byte nib row loads as [lo16 | hi16]; two
// lane permutes broadcast each half across both lanes. Compiled with -mavx2
// only; never executed unless CPUID reports AVX2.
#include "gf/gf_kernels_impl.h"

#ifdef ECF_GF_HAVE_AVX2

#include <immintrin.h>

namespace ecf::gf::detail {

namespace {

struct NibTables {
  __m256i lo;
  __m256i hi;
};

inline NibTables load_tables(Byte c) {
  const __m256i both =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(tables().nib[c]));
  return {_mm256_permute2x128_si256(both, both, 0x00),
          _mm256_permute2x128_si256(both, both, 0x11)};
}

}  // namespace

void avx2_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  const NibTables t = load_tables(c);
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(x, maskf);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), maskf);
    const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(t.lo, lo),
                                       _mm256_shuffle_epi8(t.hi, hi));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  scalar_mul_acc(c, src + i, dst + i, n - i);
}

void avx2_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    __builtin_memset(dst, 0, n);
    return;
  }
  const NibTables t = load_tables(c);
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(x, maskf);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), maskf);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(_mm256_shuffle_epi8(t.lo, lo),
                                         _mm256_shuffle_epi8(t.hi, hi)));
  }
  scalar_mul_region(c, src + i, dst + i, n - i);
}

void avx2_xor_region(const Byte* src, Byte* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, x));
  }
  scalar_xor_region(src + i, dst + i, n - i);
}

void avx2_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n) {
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // Load and nibble-split the source block once for all m outputs.
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(x, maskf);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), maskf);
    for (std::size_t r = 0; r < m; ++r) {
      if (coeffs[r] == 0) continue;
      const NibTables t = load_tables(coeffs[r]);
      const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(t.lo, lo),
                                         _mm256_shuffle_epi8(t.hi, hi));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(dsts[r] + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dsts[r] + i),
                          _mm256_xor_si256(d, p));
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    scalar_mul_acc(coeffs[r], src + i, dsts[r] + i, n - i);
  }
}

}  // namespace ecf::gf::detail

#endif  // ECF_GF_HAVE_AVX2
