// GF(2^8) arithmetic.
//
// All erasure codes in this library operate over the finite field GF(2^8)
// with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same
// field used by Jerasure, ISA-L and Ceph. Addition is XOR; multiplication
// uses log/exp tables generated once at static-init time.
//
// Bulk operations (multiply-accumulate a region) are the hot path of
// encode/decode; they use a per-coefficient 256-entry product table so the
// inner loop is a single table lookup + XOR per byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ecf::gf {

using Byte = std::uint8_t;

// Field tables, built once. Access through the free functions below.
// `mul_table` is the full 64 KiB product table: row c is the map x -> c*x.
// Bulk kernels index rows directly, so region operations have no per-call
// setup — important for sub-packetized codes whose regions are tiny.
struct Tables {
  Byte exp[512];   // exp[i] = g^i, duplicated so mul avoids a mod
  Byte log[256];   // log[0] unused
  Byte inv[256];   // inv[0] unused
  Byte mul_table[256][256];
  Tables();
};

const Tables& tables();

inline Byte add(Byte a, Byte b) { return a ^ b; }
inline Byte sub(Byte a, Byte b) { return a ^ b; }

inline Byte mul(Byte a, Byte b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

inline Byte inv(Byte a) {
  // Precondition: a != 0 (division by zero in GF(256)).
  return tables().inv[a];
}

inline Byte div(Byte a, Byte b) { return mul(a, inv(b)); }

// a^e with e >= 0.
Byte pow(Byte a, unsigned e);

// dst[i] ^= c * src[i] for i in [0, n). The workhorse of encoding.
void mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);

// dst[i] = c * src[i].
void mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);

// dst[i] ^= src[i].
void xor_region(const Byte* src, Byte* dst, std::size_t n);

}  // namespace ecf::gf
