// GF(2^8) arithmetic.
//
// All erasure codes in this library operate over the finite field GF(2^8)
// with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same
// field used by Jerasure, ISA-L and Ceph. Addition is XOR; multiplication
// uses log/exp tables generated once at static-init time.
//
// Bulk operations (multiply-accumulate a region) are the hot path of
// encode/decode. They dispatch through a runtime-selected kernel suite
// (gf_kernels.h): nibble-split SSSE3/AVX2 shuffles or GFNI affine ops on
// x86, a 64-bit SWAR kernel elsewhere, with a scalar table kernel as the
// reference implementation every variant is fuzzed against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ecf::gf {

using Byte = std::uint8_t;

// Field tables, built once. Access through the free functions below.
// `mul_table` is the full 64 KiB product table: row c is the map x -> c*x.
// Bulk kernels index rows directly, so region operations have no per-call
// setup — important for sub-packetized codes whose regions are tiny.
//
// `nib` holds the nibble-split tables the SSSE3/AVX2 kernels shuffle with:
// nib[c][0..15] = c * i and nib[c][16..31] = c * (i << 4), so a product is
// nib[c][x & 0xF] ^ nib[c][16 + (x >> 4)] — one 32-byte row per coefficient,
// loaded straight into vector registers.
//
// `affine` holds, per coefficient c, the 8x8 GF(2) bit matrix of the linear
// map x -> c*x packed for vgf2p8affineqb: byte 7-i of the qword is the mask
// of source bits feeding output bit i (column j at bit position j).
struct Tables {
  Byte exp[512];   // exp[i] = g^i, duplicated so mul avoids a mod
  Byte log[256];   // log[0] unused
  Byte inv[256];   // inv[0] unused
  Byte mul_table[256][256];
  alignas(16) Byte nib[256][32];
  std::uint64_t affine[256];
  Tables();
};

const Tables& tables();

inline Byte add(Byte a, Byte b) { return a ^ b; }
inline Byte sub(Byte a, Byte b) { return a ^ b; }

inline Byte mul(Byte a, Byte b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

inline Byte inv(Byte a) {
  // Precondition: a != 0 (division by zero in GF(256)).
  return tables().inv[a];
}

inline Byte div(Byte a, Byte b) { return mul(a, inv(b)); }

// a^e with e >= 0.
Byte pow(Byte a, unsigned e);

// dst[i] ^= c * src[i] for i in [0, n). The workhorse of encoding.
// Dispatches to the active SIMD kernel (see gf_kernels.h); c == 0/1 short-
// circuit to no-op/XOR before the dispatch.
void mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n);

// dst[i] = c * src[i]. c == 0/1 short-circuit to memset/memcpy.
void mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n);

// dst[i] ^= src[i].
void xor_region(const Byte* src, Byte* dst, std::size_t n);

// dsts[r][i] ^= coeffs[r] * src[i] for r in [0, m), i in [0, n): one pass
// over src feeding all m outputs — the batched matrix-apply building block.
// Rows with coeffs[r] == 0 are skipped.
void mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                   Byte* const* dsts, std::size_t n);

}  // namespace ecf::gf
