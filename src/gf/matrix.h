// Dense matrices over GF(2^8).
//
// Used to build and invert the generator/decoding matrices of the RS, LRC
// and Clay codes. Sizes here are tiny (n, k <= ~32), so a straightforward
// row-major dense representation with Gauss-Jordan elimination is exactly
// right — no sparsity or blocking needed.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "gf/gf256.h"

namespace ecf::gf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Byte& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  Byte at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  const Byte* row(std::size_t r) const { return data_.data() + r * cols_; }
  Byte* row(std::size_t r) { return data_.data() + r * cols_; }

  [[nodiscard]] static Matrix identity(std::size_t n);

  // Vandermonde matrix V[r][c] = evals[r]^c  (rows x cols).
  [[nodiscard]] static Matrix vandermonde(const std::vector<Byte>& evals,
                                          std::size_t cols);

  // Cauchy matrix C[r][c] = 1 / (x[r] + y[c]); requires x,y disjoint and
  // all pairwise sums nonzero (automatic when x,y are disjoint in GF(2^8)).
  [[nodiscard]] static Matrix cauchy(const std::vector<Byte>& x,
                                     const std::vector<Byte>& y);

  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  // Gauss-Jordan inverse; nullopt if singular. Only square matrices.
  [[nodiscard]] std::optional<Matrix> inverted() const;

  // Rank via Gaussian elimination (destructive on a copy).
  [[nodiscard]] std::size_t rank() const;

  // Select a subset of rows (for building decode matrices from survivors).
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& rows) const;

  // In-place elementary row ops used by the systematic-form construction.
  void scale_row(std::size_t r, Byte c);
  void add_scaled_row(std::size_t dst, std::size_t src, Byte c);
  void swap_rows(std::size_t a, std::size_t b);

  // Reduce the leading rows x rows block to identity by column operations on
  // the whole matrix — turns a Vandermonde generator into systematic form.
  // Returns false if the leading block is singular.
  [[nodiscard]] bool make_systematic(std::size_t k);

  // Batched bulk apply of a row subset: out[i] = sum_c M[rows[i]][c] * in[c]
  // over data regions of length len. Cache-blocked so every output block
  // stays resident while the source chunks stream through once, feeding all
  // selected rows per pass via gf::mul_acc_multi — the batched encode/decode
  // kernel (vs. rows x cols independent mul_acc sweeps).
  void apply_rows(const std::vector<std::size_t>& rows,
                  const std::vector<const Byte*>& in,
                  const std::vector<Byte*>& out, std::size_t len) const;

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Byte> data_;
};

// y = M * x where x is a vector of column pointers to data regions of
// length len: out[r] = sum_c M[r][c] * in[c]. The core bulk encode/decode
// kernel — every code funnels through this (or through apply_rows for a
// row subset). Delegates to Matrix::apply_rows over all rows.
void matrix_apply(const Matrix& m, const std::vector<const Byte*>& in,
                  const std::vector<Byte*>& out, std::size_t len);

}  // namespace ecf::gf
