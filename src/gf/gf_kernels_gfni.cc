// GFNI kernels: vgf2p8affineqb computes, per byte, an 8x8 GF(2) bit-matrix
// product — exactly a multiply-by-constant in any GF(256) representation.
// (The sibling vgf2p8mulqb instruction is useless here: it hardwires the
// AES polynomial 0x11B, and this library's field uses 0x11D.) The matrix
// for each coefficient is precomputed in Tables::affine with the packing
// the instruction expects: byte 7-i of the qword masks the source bits
// feeding output bit i. Compiled with -mgfni -mavx2; never executed unless
// CPUID reports GFNI+AVX2.
#include "gf/gf_kernels_impl.h"

#ifdef ECF_GF_HAVE_GFNI

#include <immintrin.h>

namespace ecf::gf::detail {

void gfni_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  const __m256i a =
      _mm256_set1_epi64x(static_cast<long long>(tables().affine[c]));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i p = _mm256_gf2p8affine_epi64_epi8(x, a, 0);
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  scalar_mul_acc(c, src + i, dst + i, n - i);
}

void gfni_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    __builtin_memset(dst, 0, n);
    return;
  }
  const __m256i a =
      _mm256_set1_epi64x(static_cast<long long>(tables().affine[c]));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8affine_epi64_epi8(x, a, 0));
  }
  scalar_mul_region(c, src + i, dst + i, n - i);
}

void gfni_xor_region(const Byte* src, Byte* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, x));
  }
  scalar_xor_region(src + i, dst + i, n - i);
}

void gfni_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    for (std::size_t r = 0; r < m; ++r) {
      if (coeffs[r] == 0) continue;
      const __m256i a = _mm256_set1_epi64x(
          static_cast<long long>(tables().affine[coeffs[r]]));
      const __m256i p = _mm256_gf2p8affine_epi64_epi8(x, a, 0);
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(dsts[r] + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dsts[r] + i),
                          _mm256_xor_si256(d, p));
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    scalar_mul_acc(coeffs[r], src + i, dsts[r] + i, n - i);
  }
}

}  // namespace ecf::gf::detail

#endif  // ECF_GF_HAVE_GFNI
