// Runtime-dispatched GF(256) bulk kernels.
//
// Each variant implements the same four region operations; the fastest one
// the CPU supports is selected once at startup (CPUID on x86) and installed
// in a function-pointer table. Callers normally go through the gf::mul_acc /
// gf::mul_region / gf::xor_region / gf::mul_acc_multi wrappers in gf256.h;
// tests and benches can pin a specific variant with select_kernels() or call
// one directly via kernels_for().
//
//   kScalar — 256-entry product-table lookup, one byte per step. The
//             reference implementation every other variant is fuzzed
//             against.
//   kSwar   — portable 64-bit SWAR: multiplies 8 bytes at once by chaining
//             the per-byte doubling map a -> (a<<1) ^ (0x1D if carry) over
//             the bits of the coefficient. The non-x86 fallback.
//   kSsse3  — nibble-split pshufb: two 16-entry tables per coefficient
//             (low/high nibble products), 16 bytes per step.
//   kAvx2   — same nibble scheme with vpshufb, 32 bytes per step.
//   kGfni   — vgf2p8affineqb with a precomputed 8x8 bit matrix per
//             coefficient (the instruction's fixed-polynomial multiply uses
//             0x11B, not our 0x11D, so the affine form is required).
//
// All kernels accept any coefficient (including 0 and 1), any alignment,
// and any length; vector bodies fall back to the scalar tail loop for the
// last < vector-width bytes.
#pragma once

#include <cstddef>
#include <vector>

#include "gf/gf256.h"

namespace ecf::gf {

enum class KernelVariant { kScalar, kSwar, kSsse3, kAvx2, kGfni };

const char* to_string(KernelVariant v);

// The per-variant operation table.
struct Kernels {
  KernelVariant variant = KernelVariant::kScalar;
  const char* name = "scalar";
  void (*mul_acc)(Byte c, const Byte* src, Byte* dst, std::size_t n) = nullptr;
  void (*mul_region)(Byte c, const Byte* src, Byte* dst,
                     std::size_t n) = nullptr;
  void (*xor_region)(const Byte* src, Byte* dst, std::size_t n) = nullptr;
  void (*mul_acc_multi)(const Byte* coeffs, std::size_t m, const Byte* src,
                        Byte* const* dsts, std::size_t n) = nullptr;
};

// True when the variant was compiled in and the CPU reports support.
bool variant_supported(KernelVariant v);

// All supported variants, scalar first (for cross-check loops in tests).
std::vector<KernelVariant> supported_variants();

// The fastest supported variant (what startup auto-selection picks).
KernelVariant best_variant();

// Operation table of a specific variant; throws std::invalid_argument when
// !variant_supported(v).
const Kernels& kernels_for(KernelVariant v);

// The active table. First use selects best_variant().
const Kernels& kernels();

// Pin the active table to a variant (tests/benches); throws when
// unsupported. select_kernels(best_variant()) restores the default.
// Writers are serialized internally; readers stay lock-free.
void select_kernels(KernelVariant v);

// RAII pin: selects `v` on construction, restores the previously active
// table on destruction — so a test or bench section can never leak a
// pinned variant past its scope. Overrides from different threads are
// serialized; nested overrides must unwind LIFO (enforced by contract).
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(KernelVariant v);
  ~ScopedKernelOverride();
  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const Kernels* saved_;
};

}  // namespace ecf::gf
