#include "gf/gf256.h"

namespace ecf::gf {

namespace {
constexpr unsigned kPrimPoly = 0x11D;  // x^8+x^4+x^3+x^2+1
}

Tables::Tables() {
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = static_cast<Byte>(x);
    log[x] = static_cast<Byte>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimPoly;
  }
  // Duplicate so exp[log[a]+log[b]] never needs a reduction mod 255.
  for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read for valid inputs
  inv[0] = 0;
  for (unsigned a = 1; a < 256; ++a) {
    inv[a] = exp[255 - log[a]];
  }
  for (unsigned a = 0; a < 256; ++a) {
    mul_table[a][0] = 0;
    if (a == 0) {
      for (unsigned b = 1; b < 256; ++b) mul_table[a][b] = 0;
      continue;
    }
    for (unsigned b = 1; b < 256; ++b) {
      mul_table[a][b] = exp[log[a] + log[b]];
    }
  }
}

const Tables& tables() {
  static const Tables t;
  return t;
}

Byte pow(Byte a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned l = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[l];
}

void mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_region(src, dst, n);
    return;
  }
  const Byte* prod = tables().mul_table[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= prod[src[i]];
}

void mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  const Byte* prod = tables().mul_table[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = prod[src[i]];
}

void xor_region(const Byte* src, Byte* dst, std::size_t n) {
  std::size_t i = 0;
  // Word-at-a-time XOR for the bulk; bytes for the tail.
  using Word = std::uint64_t;
  for (; i + sizeof(Word) <= n; i += sizeof(Word)) {
    Word a, b;
    __builtin_memcpy(&a, src + i, sizeof(Word));
    __builtin_memcpy(&b, dst + i, sizeof(Word));
    b ^= a;
    __builtin_memcpy(dst + i, &b, sizeof(Word));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace ecf::gf
