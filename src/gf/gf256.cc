#include "gf/gf256.h"

#include <cstring>

#include "gf/gf_kernels.h"

namespace ecf::gf {

namespace {
constexpr unsigned kPrimPoly = 0x11D;  // x^8+x^4+x^3+x^2+1
}

Tables::Tables() {
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = static_cast<Byte>(x);
    log[x] = static_cast<Byte>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimPoly;
  }
  // Duplicate so exp[log[a]+log[b]] never needs a reduction mod 255.
  for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read for valid inputs
  inv[0] = 0;
  for (unsigned a = 1; a < 256; ++a) {
    inv[a] = exp[255 - log[a]];
  }
  for (unsigned a = 0; a < 256; ++a) {
    mul_table[a][0] = 0;
    if (a == 0) {
      for (unsigned b = 1; b < 256; ++b) mul_table[a][b] = 0;
      continue;
    }
    for (unsigned b = 1; b < 256; ++b) {
      mul_table[a][b] = exp[log[a] + log[b]];
    }
  }
  // Nibble-split tables for the pshufb/vpshufb kernels: products of the
  // low and high nibble values, combined by XOR (multiplication is linear
  // over GF(2), so c*x = c*(x & 0xF) ^ c*(x & 0xF0)).
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned v = 0; v < 16; ++v) {
      nib[c][v] = mul_table[c][v];
      nib[c][16 + v] = mul_table[c][v << 4];
    }
  }
  // GFNI affine matrices: for output bit i, byte 7-i of the qword masks
  // the source bits j where bit i of c*x^j is set (vgf2p8affineqb's row
  // packing, verified against the scalar kernel by the cross-check tests).
  for (unsigned c = 0; c < 256; ++c) {
    std::uint64_t m = 0;
    for (unsigned i = 0; i < 8; ++i) {
      Byte row = 0;
      for (unsigned j = 0; j < 8; ++j) {
        if ((mul_table[c][1u << j] >> i) & 1) row |= static_cast<Byte>(1u << j);
      }
      m |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
    }
    affine[c] = m;
  }
}

const Tables& tables() {
  static const Tables t;
  return t;
}

Byte pow(Byte a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned l = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[l];
}

void mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  const Kernels& k = kernels();
  if (c == 1) {
    k.xor_region(src, dst, n);
    return;
  }
  k.mul_acc(c, src, dst, n);
}

void mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  kernels().mul_region(c, src, dst, n);
}

void xor_region(const Byte* src, Byte* dst, std::size_t n) {
  kernels().xor_region(src, dst, n);
}

void mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                   Byte* const* dsts, std::size_t n) {
  kernels().mul_acc_multi(coeffs, m, src, dsts, n);
}

}  // namespace ecf::gf
