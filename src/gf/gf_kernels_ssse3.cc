// SSSE3 nibble-split kernels: product = pshufb(lo_table, x & 0xF) ^
// pshufb(hi_table, x >> 4), 16 bytes per step. Compiled with -mssse3 only;
// never executed unless CPUID reports SSSE3 (see gf_kernels.cc dispatch).
#include "gf/gf_kernels_impl.h"

#ifdef ECF_GF_HAVE_SSSE3

#include <immintrin.h>

namespace ecf::gf::detail {

namespace {

struct NibTables {
  __m128i lo;
  __m128i hi;
};

inline NibTables load_tables(Byte c) {
  const Byte* nib = tables().nib[c];
  return {_mm_load_si128(reinterpret_cast<const __m128i*>(nib)),
          _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16))};
}

inline __m128i product16(const NibTables& t, __m128i x, __m128i maskf) {
  const __m128i lo = _mm_and_si128(x, maskf);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(x, 4), maskf);
  return _mm_xor_si128(_mm_shuffle_epi8(t.lo, lo), _mm_shuffle_epi8(t.hi, hi));
}

}  // namespace

void ssse3_mul_acc(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) return;
  const NibTables t = load_tables(c);
  const __m128i maskf = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, product16(t, x, maskf)));
  }
  scalar_mul_acc(c, src + i, dst + i, n - i);
}

void ssse3_mul_region(Byte c, const Byte* src, Byte* dst, std::size_t n) {
  if (c == 0) {
    __builtin_memset(dst, 0, n);
    return;
  }
  const NibTables t = load_tables(c);
  const __m128i maskf = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     product16(t, x, maskf));
  }
  scalar_mul_region(c, src + i, dst + i, n - i);
}

void ssse3_xor_region(const Byte* src, Byte* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, x));
  }
  scalar_xor_region(src + i, dst + i, n - i);
}

void ssse3_mul_acc_multi(const Byte* coeffs, std::size_t m, const Byte* src,
                         Byte* const* dsts, std::size_t n) {
  const __m128i maskf = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Load and nibble-split the source block once for all m outputs.
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(x, maskf);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(x, 4), maskf);
    for (std::size_t r = 0; r < m; ++r) {
      if (coeffs[r] == 0) continue;
      const NibTables t = load_tables(coeffs[r]);
      const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(t.lo, lo),
                                      _mm_shuffle_epi8(t.hi, hi));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<__m128i*>(dsts[r] + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dsts[r] + i),
                       _mm_xor_si128(d, p));
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    scalar_mul_acc(coeffs[r], src + i, dsts[r] + i, n - i);
  }
}

}  // namespace ecf::gf::detail

#endif  // ECF_GF_HAVE_SSSE3
