#include "cluster/invariants.h"

#include <algorithm>

#include "cluster/cluster.h"
#include "cluster/impl_types.h"
#include "sim/invariant_checker.h"
#include "util/check.h"

namespace ecf::cluster {

ClusterInvariants::ClusterInvariants(const Cluster& cluster)
    : cluster_(&cluster) {}

void ClusterInvariants::install(sim::SimInvariantChecker& checker) {
  checker.add_invariant("pg-state-machine", [this] { check_pg_states(); });
  checker.add_invariant("conservation", [this] { check_conservation(); });
  checker.add_invariant("cache-accounting",
                        [this] { check_cache_accounting(); });
  checker.add_invariant("reservation-slots", [this] { check_reservations(); });
}

// Transitions are observed at event granularity: one event may drive a PG
// through several protocol steps (peering completes AND the reservation is
// granted), so the edge set is the within-one-event closure of the
// single-step machine — not just its raw edges.
bool ClusterInvariants::legal_transition(PgState from, PgState to) {
  if (from == to) return true;
  switch (from) {
    case PgState::kActiveClean:
      // Failure noticed (mark_down), or straight to peering when the PG is
      // first touched by an osdmap epoch.
      return to == PgState::kDegraded || to == PgState::kPeering;
    case PgState::kDegraded:
      // The epoch publish peers the PG; a PG with no survivors is declared
      // lost/complete within the same event.
      return to == PgState::kPeering || to == PgState::kActiveClean;
    case PgState::kPeering:
      // Peering completes into the reservation queue; the grant can land in
      // the same event (-> kRecovering), or the PG finishes outright.
      return to == PgState::kWaitReservation || to == PgState::kRecovering ||
             to == PgState::kActiveClean;
    case PgState::kWaitReservation:
      // Reservation granted, superseded by a new epoch, or abandoned.
      return to == PgState::kRecovering || to == PgState::kPeering ||
             to == PgState::kActiveClean;
    case PgState::kRecovering:
      // Recovery finishes, or a new epoch forces a re-peer.
      return to == PgState::kActiveClean || to == PgState::kPeering;
  }
  return false;
}

void ClusterInvariants::check_pg_states() {
  const auto& pgs = cluster_->pgs_;
  if (last_states_.size() != pgs.size()) {
    // Pool (re)created since the last pass; re-baseline.
    last_states_.clear();
    last_states_.reserve(pgs.size());
    for (const auto& pg : pgs) last_states_.push_back(pg->state);
  }
  const std::size_t n =
      cluster_->code_ ? cluster_->code_->n() : std::size_t{0};
  const int max_active = cluster_->config_.protocol.osd_recovery_max_active;
  for (std::size_t i = 0; i < pgs.size(); ++i) {
    const Cluster::Pg& pg = *pgs[i];
    ECF_CHECK(legal_transition(last_states_[i], pg.state))
        << " pg " << pg.id << ": illegal transition "
        << to_string(last_states_[i]) << " -> " << to_string(pg.state);
    last_states_[i] = pg.state;

    ECF_CHECK_EQ(pg.missing_positions.size(), pg.remap_targets.size())
        << " pg " << pg.id << ": missing shards without remap targets";
    for (std::size_t j = 0; j < pg.missing_positions.size(); ++j) {
      ECF_CHECK_LT(pg.missing_positions[j], n)
          << " pg " << pg.id << ": missing position out of stripe";
      if (j > 0) {
        ECF_CHECK_LT(pg.missing_positions[j - 1], pg.missing_positions[j])
            << " pg " << pg.id << ": missing positions unsorted/duplicated";
      }
    }
    ECF_CHECK_GE(pg.inflight, 0) << " pg " << pg.id;
    ECF_CHECK_LE(pg.inflight, max_active)
        << " pg " << pg.id << ": repairs in flight exceed"
        << " osd_recovery_max_active";
    ECF_CHECK(pg.state == PgState::kRecovering || !pg.reserved)
        << " pg " << pg.id << ": reservation held outside recovery ("
        << to_string(pg.state) << ")";
    ECF_CHECK(pg.state != PgState::kRecovering || pg.reserved)
        << " pg " << pg.id << ": recovering without a reservation";
  }
}

void ClusterInvariants::check_conservation() {
  // Placed objects are conserved: failures remap chunks but never create or
  // destroy objects, so Σ pg.num_objects must equal the applied workload
  // through every osdmap epoch.
  if (cluster_->workload_applied_) {
    std::uint64_t placed = 0;
    for (const auto& pg : cluster_->pgs_) placed += pg->num_objects;
    ECF_CHECK_EQ(placed, cluster_->config_.workload.num_objects)
        << " placed objects not conserved across osd maps";
  }
  // Stored chunk/byte accounting only grows: the recovery path writes
  // rebuilt chunks to their new homes and nothing in the paper's
  // experiments deletes them.
  std::uint64_t onodes = 0;
  std::uint64_t stored = 0;
  for (const auto& osd : cluster_->osds_) {
    onodes += osd->store.onode_count();
    stored += osd->store.stored_bytes();
  }
  ECF_CHECK_GE(onodes, last_total_onodes_)
      << " stored chunk count went backwards";
  ECF_CHECK_GE(stored, last_total_stored_)
      << " stored byte accounting went backwards";
  last_total_onodes_ = onodes;
  last_total_stored_ = stored;
}

void ClusterInvariants::check_cache_accounting() {
  // BlueStore partitions one cache across KV/meta/data by ratio; the
  // partitions must never claim more than the cache (KV+meta+data ≤ size)
  // and hit rates derived from them must be probabilities.
  constexpr double kEps = 1e-6;
  for (const auto& osd : cluster_->osds_) {
    const BlueStore& store = osd->store;
    const double kv = store.kv_ratio();
    const double meta = store.meta_ratio();
    const double data = store.data_ratio();
    ECF_CHECK_GE(kv, 0.0) << " osd." << osd->id << " kv cache ratio";
    ECF_CHECK_GE(meta, 0.0) << " osd." << osd->id << " meta cache ratio";
    ECF_CHECK_GE(data, 0.0) << " osd." << osd->id << " data cache ratio";
    ECF_CHECK_LE(kv + meta + data, 1.0 + kEps)
        << " osd." << osd->id
        << ": cache partitions exceed the cache (kv=" << kv
        << " meta=" << meta << " data=" << data << ")";
    for (const double rate :
         {store.kv_hit_rate(), store.meta_hit_rate(), store.data_hit_rate()}) {
      ECF_CHECK_GE(rate, 0.0) << " osd." << osd->id << " cache hit rate";
      ECF_CHECK_LE(rate, 1.0) << " osd." << osd->id << " cache hit rate";
    }
  }
}

void ClusterInvariants::check_reservations() {
  const int max_backfills = cluster_->config_.protocol.osd_max_backfills;
  // Slots actually held by reserved PGs, per OSD.
  std::vector<int> held(cluster_->osds_.size(), 0);
  for (const auto& pg : cluster_->pgs_) {
    if (!pg->reserved) continue;
    for (const OsdId o : pg->reserved_targets) {
      ECF_CHECK_GE(o, 0) << " pg " << pg->id << " reserved an invalid osd";
      ECF_CHECK_LT(static_cast<std::size_t>(o), held.size())
          << " pg " << pg->id << " reserved an invalid osd";
      ++held[static_cast<std::size_t>(o)];
    }
  }
  for (const auto& osd : cluster_->osds_) {
    ECF_CHECK_GE(osd->backfills_in_use, 0) << " osd." << osd->id;
    ECF_CHECK_LE(osd->backfills_in_use, max_backfills)
        << " osd." << osd->id << ": backfill slots oversubscribed";
    ECF_CHECK_EQ(osd->backfills_in_use,
                 held[static_cast<std::size_t>(osd->id)])
        << " osd." << osd->id << ": leaked or double-counted backfill slot";
  }
}

}  // namespace ecf::cluster
