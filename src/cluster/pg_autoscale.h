// PG autoscaler advice — Table 1 lists pool PG counts as "customized,
// autoscale". This reproduces the pg_autoscaler's sizing rule: target a
// per-OSD replica/shard count (mon_target_pg_per_osd, 100 by default),
// divide by the pool's stripe width, and round to a power of two (Ceph
// only splits/merges PGs in powers of two).
#pragma once

#include <cstdint>

namespace ecf::cluster {

// Recommended pg_num for a pool of width `stripe_width` (= the code's n)
// on `num_osds` OSDs. Returns at least 1.
std::int32_t recommended_pg_num(int num_osds, std::size_t stripe_width,
                                int target_pg_shards_per_osd = 100);

// True when `pg_num` is within a factor of 2 of the recommendation (the
// autoscaler only warns outside a 2x window).
bool pg_num_within_autoscale_window(std::int32_t pg_num, int num_osds,
                                    std::size_t stripe_width,
                                    int target_pg_shards_per_osd = 100);

}  // namespace ecf::cluster
