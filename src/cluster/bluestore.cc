#include "cluster/bluestore.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/check.h"

namespace ecf::cluster {

void BlueStore::ensure_ratios() const {
  if (ratios_init_) return;
  // A misconfigured partition split would silently skew every hit rate the
  // recovery model consults; reject it at first use instead.
  ECF_CHECK_GE(cache_.kv_ratio, 0.0) << " bluestore kv cache ratio";
  ECF_CHECK_GE(cache_.meta_ratio, 0.0) << " bluestore meta cache ratio";
  ECF_CHECK_GE(cache_.data_ratio, 0.0) << " bluestore data cache ratio";
  ECF_CHECK_LE(cache_.kv_ratio + cache_.meta_ratio + cache_.data_ratio,
               1.0 + 1e-6)
      << " bluestore cache ratios oversubscribe the cache";
  auto* self = const_cast<BlueStore*>(this);
  self->kv_ratio_ = cache_.kv_ratio;
  self->meta_ratio_ = cache_.meta_ratio;
  self->data_ratio_ = cache_.data_ratio;
  self->ratios_init_ = true;
}

void BlueStore::override_ratios(double kv, double meta, double data) {
  // Deliberately unchecked: lets tests plant a broken partition split that
  // the SimInvariantChecker's cache-accounting invariant must catch.
  kv_ratio_ = kv;
  meta_ratio_ = meta;
  data_ratio_ = data;
  ratios_init_ = true;
}

namespace {
std::uint64_t chunk_meta_bytes(const StoreConfig& s) {
  const std::uint64_t raw =
      s.onode_bytes + s.ec_attr_bytes + s.pg_log_entry_bytes;
  return static_cast<std::uint64_t>(static_cast<double>(raw) *
                                    s.rocksdb_space_amp) +
         s.wal_bytes_per_write;
}
}  // namespace

std::uint64_t BlueStore::write_chunk(std::uint64_t payload) {
  const std::uint64_t alloc = util::round_up(payload, store_.min_alloc_size);
  const std::uint64_t meta = chunk_meta_bytes(store_);
  data_bytes_ += alloc;
  meta_bytes_ += meta;
  ++onode_count_;
  return alloc + meta;
}

void BlueStore::remove_chunk(std::uint64_t payload) {
  const std::uint64_t alloc = util::round_up(payload, store_.min_alloc_size);
  data_bytes_ -= std::min(data_bytes_, alloc);
  meta_bytes_ -= std::min(meta_bytes_, chunk_meta_bytes(store_));
  if (onode_count_) --onode_count_;
}

std::uint64_t BlueStore::kv_working_set() const {
  // RocksDB block-cache demand: pg log + dup entries and index blocks,
  // inflated by the same space amplification the on-disk accounting uses.
  return static_cast<std::uint64_t>(
      static_cast<double>(onode_count_ * store_.pg_log_entry_bytes) *
      store_.rocksdb_space_amp);
}

std::uint64_t BlueStore::meta_working_set() const {
  // Decoded onode/extent cache demand (+ EC shard attrs consulted on every
  // shard read).
  return static_cast<std::uint64_t>(
      static_cast<double>(onode_count_ *
                          (store_.onode_bytes + store_.ec_attr_bytes)) *
      store_.rocksdb_space_amp / 2.0);
}

namespace {
double hit_rate(double cache_bytes, std::uint64_t working_set) {
  if (working_set == 0) return 1.0;
  return std::min(1.0, cache_bytes / static_cast<double>(working_set));
}
}  // namespace

double BlueStore::kv_hit_rate() const {
  ensure_ratios();
  return hit_rate(kv_ratio_ * static_cast<double>(cache_.cache_bytes),
                  kv_working_set());
}

double BlueStore::meta_hit_rate() const {
  ensure_ratios();
  return hit_rate(meta_ratio_ * static_cast<double>(cache_.cache_bytes),
                  meta_working_set());
}

double BlueStore::data_hit_rate() const {
  ensure_ratios();
  return hit_rate(data_ratio_ * static_cast<double>(cache_.cache_bytes),
                  data_working_set());
}

void BlueStore::autotune_step() {
  if (!cache_.autotune) return;
  ensure_ratios();
  const auto total = static_cast<double>(cache_.cache_bytes);
  // Demand-proportional assignment with KV and metadata served first (the
  // BlueStore autotuner's priority ordering), data gets the remainder.
  const double kv_want =
      std::min(0.70, static_cast<double>(kv_working_set()) / total);
  const double meta_want =
      std::min(0.70, static_cast<double>(meta_working_set()) / total);
  double kv = kv_want, meta = meta_want;
  if (kv + meta > 0.95) {
    const double scale = 0.95 / (kv + meta);
    kv *= scale;
    meta *= scale;
  }
  // Converge gradually (autotune resizes in steps, not jumps).
  const double rate = 0.5;
  kv_ratio_ += rate * (kv - kv_ratio_);
  meta_ratio_ += rate * (meta - meta_ratio_);
  data_ratio_ = std::max(0.05, 1.0 - kv_ratio_ - meta_ratio_);
  // While converging from an extreme starting split (kv+meta > 0.95) the
  // midpoint plus the 0.05 data floor can overshoot the budget; shrink
  // kv/meta to fit rather than oversubscribe the cache.
  if (kv_ratio_ + meta_ratio_ + data_ratio_ > 1.0) {
    const double scale = (1.0 - data_ratio_) / (kv_ratio_ + meta_ratio_);
    kv_ratio_ *= scale;
    meta_ratio_ *= scale;
  }
  // The step must preserve the partition budget regardless of the demand
  // inputs.
  ECF_DCHECK_LE(kv_ratio_ + meta_ratio_ + data_ratio_, 1.0 + 1e-6)
      << " autotune oversubscribed the cache";
}

}  // namespace ecf::cluster
