#include "cluster/crush.h"

#include <algorithm>
#include <stdexcept>

#include "util/hotpath.h"
#include "util/rng.h"

namespace ecf::cluster {

Crush::Crush(std::vector<HostId> host_of, std::vector<int> rack_of_host,
             FailureDomain domain, std::uint64_t seed)
    : host_of_(std::move(host_of)),
      rack_of_host_(std::move(rack_of_host)),
      domain_(domain),
      seed_(seed) {}

int Crush::rack_of(OsdId osd) const {
  const HostId h = host_of_[static_cast<std::size_t>(osd)];
  if (rack_of_host_.empty()) return 0;
  return rack_of_host_[static_cast<std::size_t>(h)];
}

double Crush::draw(PgId pg, OsdId osd) const {
  // Stateless mix of (seed, pg, osd) -> uniform double, the rendezvous
  // hashing weight. splitmix64 gives good avalanche for sequential ids.
  std::uint64_t x = seed_ ^ (static_cast<std::uint64_t>(pg) << 32) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(osd)) + 0x9e37ull);
  const std::uint64_t v = util::splitmix64(x);
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

bool Crush::domain_ok(OsdId candidate, const std::vector<OsdId>& chosen) const {
  switch (domain_) {
    case FailureDomain::kOsd:
      return true;
    case FailureDomain::kHost:
      for (const OsdId o : chosen) {
        if (host_of_[static_cast<std::size_t>(o)] ==
            host_of_[static_cast<std::size_t>(candidate)]) {
          return false;
        }
      }
      return true;
    case FailureDomain::kRack:
      for (const OsdId o : chosen) {
        if (rack_of(o) == rack_of(candidate)) return false;
      }
      return true;
  }
  return true;
}

std::vector<OsdId> Crush::acting_set(PgId pg, std::size_t n,
                                     const std::vector<bool>& alive) const {
  // Rank all alive candidates by their draw, then take the best n that
  // satisfy the failure-domain constraint.
  //
  // Even with the kOsd failure domain, CRUSH's hierarchical descent
  // (root → host → osd) spreads a PG's chunks across distinct hosts while
  // hosts outnumber the stripe width; OSD-distinctness is merely the hard
  // constraint. We reproduce that as a soft host-spread preference: a
  // first pass places chunks on unused hosts, and only if hosts run out
  // does a second pass co-locate. This is load-bearing for the Fig. 2d
  // locality result — same-host concurrent OSD failures then hit at most
  // one chunk per PG, while different-host failures can hit several.
  std::vector<std::pair<double, OsdId>> ranked;
  ranked.reserve(host_of_.size());
  for (OsdId o = 0; o < static_cast<OsdId>(host_of_.size()); ++o) {
    if (!alive[static_cast<std::size_t>(o)]) continue;
    ranked.emplace_back(draw(pg, o), o);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<OsdId> chosen;
  std::vector<bool> host_used(host_of_.empty() ? 0 : *std::max_element(host_of_.begin(), host_of_.end()) + 1, false);
  for (const auto& [w, o] : ranked) {
    if (!domain_ok(o, chosen)) continue;
    if (host_used[static_cast<std::size_t>(host_of_[static_cast<std::size_t>(o)])]) continue;
    chosen.push_back(o);
    host_used[static_cast<std::size_t>(host_of_[static_cast<std::size_t>(o)])] = true;
    if (chosen.size() == n) return chosen;
  }
  if (domain_ == FailureDomain::kOsd) {
    // Second pass: allow host reuse (only reachable when the stripe is
    // wider than the host count).
    for (const auto& [w, o] : ranked) {
      if (std::find(chosen.begin(), chosen.end(), o) != chosen.end()) continue;
      chosen.push_back(o);
      if (chosen.size() == n) return chosen;
    }
  }
  throw std::runtime_error("crush: cannot satisfy placement constraints");
}

OsdId Crush::remap_target(PgId pg, const std::vector<OsdId>& current,
                          const std::vector<bool>& alive) const {
  std::vector<std::pair<double, OsdId>> ranked;
  for (OsdId o = 0; o < static_cast<OsdId>(host_of_.size()); ++o) {
    if (!alive[static_cast<std::size_t>(o)]) continue;
    if (std::find(current.begin(), current.end(), o) != current.end()) continue;
    ranked.emplace_back(draw(pg, o), o);  ECF_ALLOC_OK("cold: once per lost shard at epoch publish");
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // The surviving members keep their spots; prefer a host not already
  // holding a shard (mirroring acting_set's host spread), falling back to
  // any domain-legal candidate.
  for (const auto& [w, o] : ranked) {
    if (!domain_ok(o, current)) continue;
    bool host_clash = false;
    for (const OsdId c : current) {
      if (host_of_[static_cast<std::size_t>(c)] ==
          host_of_[static_cast<std::size_t>(o)]) {
        host_clash = true;
        break;
      }
    }
    if (!host_clash) return o;
  }
  for (const auto& [w, o] : ranked) {
    if (domain_ok(o, current)) return o;
  }
  return kNoOsd;
}

const char* to_string(PgState s) {
  switch (s) {
    case PgState::kActiveClean: return "active+clean";
    case PgState::kDegraded: return "active+undersized+degraded";
    case PgState::kPeering: return "peering";
    case PgState::kWaitReservation: return "wait_reservation";
    case PgState::kRecovering: return "recovering";
  }
  return "?";
}

const char* to_string(FailureDomain d) {
  switch (d) {
    case FailureDomain::kOsd: return "osd";
    case FailureDomain::kHost: return "host";
    case FailureDomain::kRack: return "rack";
  }
  return "?";
}

}  // namespace ecf::cluster
