#include "cluster/pg_autoscale.h"

#include <algorithm>
#include <stdexcept>

namespace ecf::cluster {

std::int32_t recommended_pg_num(int num_osds, std::size_t stripe_width,
                                int target_pg_shards_per_osd) {
  if (num_osds < 1 || stripe_width < 1 || target_pg_shards_per_osd < 1) {
    throw std::invalid_argument("recommended_pg_num: bad arguments");
  }
  const double raw = static_cast<double>(num_osds) *
                     static_cast<double>(target_pg_shards_per_osd) /
                     static_cast<double>(stripe_width);
  // Round to the nearest power of two (at least 1).
  std::int32_t pow2 = 1;
  while (static_cast<double>(pow2) * 1.5 < raw && pow2 < (1 << 29)) {
    pow2 <<= 1;
  }
  return pow2;
}

bool pg_num_within_autoscale_window(std::int32_t pg_num, int num_osds,
                                    std::size_t stripe_width,
                                    int target_pg_shards_per_osd) {
  if (pg_num < 1) return false;
  const std::int32_t want =
      recommended_pg_num(num_osds, stripe_width, target_pg_shards_per_osd);
  return pg_num * 2 >= want && pg_num <= want * 2;
}

}  // namespace ecf::cluster
