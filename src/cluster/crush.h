// CRUSH-style deterministic placement.
//
// Maps a placement group to an ordered acting set of n OSDs using
// rendezvous (highest-random-weight) hashing, the same family of algorithm
// as Ceph's straw2 buckets: every (pg, candidate) pair gets a deterministic
// pseudo-random draw and the top-n candidates win. Properties we rely on:
//   * deterministic in (seed, pg) — re-running an experiment reproduces
//     placement exactly;
//   * minimal movement — removing an OSD only re-homes the chunks that
//     lived on it (the next-highest candidate takes over);
//   * failure-domain separation — with kHost at most one chunk of a PG per
//     host, with kOsd only OSD-distinctness is enforced (chunks of one PG
//     may share a host, which is exactly what the paper's Fig. 2d setup
//     exploits with 3 OSDs per host).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/config.h"
#include "cluster/types.h"

namespace ecf::cluster {

class Crush {
 public:
  // `host_of[osd]` gives each OSD's host, `rack_of_host[host]` its rack;
  // `alive` flags exclude OSDs from selection (the up/in set). An empty
  // rack map puts every host in rack 0 (rack domain then unusable).
  Crush(std::vector<HostId> host_of, std::vector<int> rack_of_host,
        FailureDomain domain, std::uint64_t seed);

  // Ordered acting set of `n` OSDs for `pg`, drawn from the currently
  // alive set. Throws std::runtime_error if the domain constraint cannot
  // be satisfied (not enough hosts/OSDs).
  std::vector<OsdId> acting_set(PgId pg, std::size_t n,
                                const std::vector<bool>& alive) const;

  // Replacement target for the chunk at `position` of `pg` after failures:
  // the highest-ranked alive OSD not already in `current`. Models CRUSH
  // remapping a failed chunk. Returns kNoOsd if none qualifies.
  OsdId remap_target(PgId pg, const std::vector<OsdId>& current,
                     const std::vector<bool>& alive) const;

  FailureDomain domain() const { return domain_; }

 private:
  double draw(PgId pg, OsdId osd) const;
  bool domain_ok(OsdId candidate, const std::vector<OsdId>& chosen) const;
  int rack_of(OsdId osd) const;

  std::vector<HostId> host_of_;
  std::vector<int> rack_of_host_;
  FailureDomain domain_;
  std::uint64_t seed_;
};

}  // namespace ecf::cluster
