#include "cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "cluster/impl_types.h"
#include "cluster/invariants.h"
#include "ec/registry.h"
#include "ec/stripe.h"
#include "util/bytes.h"
#include "util/check.h"

namespace ecf::cluster {

Cluster::Cluster(ClusterConfig config, LogSinkFn sink)
    : config_(std::move(config)),
      sink_(std::move(sink)),
      rng_(config_.seed),
      mon_cpu_(config_.hw.cpu) {
  if (config_.num_hosts < 1 || config_.osds_per_host < 1) {
    throw std::invalid_argument("cluster needs at least one host and OSD");
  }
  if (config_.engine_lanes < 1 ||
      static_cast<std::size_t>(config_.engine_lanes) > sim::Engine::kMaxLanes) {
    throw std::invalid_argument("engine_lanes must be in 1..64");
  }
  // Before anything can schedule: lanes can only be repartitioned on an
  // empty queue.
  engine_.set_lane_count(static_cast<std::size_t>(config_.engine_lanes));
  fabric_ = std::make_unique<nvmeof::Fabric>(&engine_, config_.hw.fabric,
                                             config_.seed ^ 0xFAB51C);
  fabric_->set_on_event(
      [this](nvmeof::ConnectionId conn, const std::string& message) {
        const OsdId o = conn_osd_[static_cast<std::size_t>(conn)];
        log("host" + std::to_string(host_of(o)), "fabric",
            "fabric: osd." + std::to_string(o) + " " + message);
      });
  fabric_->set_on_failed(
      [this](nvmeof::ConnectionId conn) { on_fabric_failed(conn); });
  util::Rng phase_rng = rng_.child(0xbeef);
  std::vector<HostId> host_of;
  for (HostId h = 0; h < config_.num_hosts; ++h) {
    hosts_.push_back(std::make_unique<Host>(h, config_.hw));
    hosts_.back()->hb_phase = phase_rng.uniform01();
    fabric_->add_host("host" + std::to_string(h));
    for (int d = 0; d < config_.osds_per_host; ++d) {
      const OsdId id = static_cast<OsdId>(osds_.size());
      auto osd = std::make_unique<Osd>(config_.store, config_.cache, config_.hw);
      osd->id = id;
      osd->host = h;
      osd->nqn = nvmeof::make_nqn(static_cast<std::size_t>(h),
                                  static_cast<std::size_t>(d));
      osd->hb_offset = phase_rng.uniform01() * 0.5;
      // Provision the virtual disk through the host's NVMe-oF target — the
      // paper's §3.1 lever for device-state control — and open the
      // initiator-side fabric path the OSD's I/O will flow over.
      hosts_.back()->target.create_subsystem(osd->nqn, config_.osd_capacity,
                                             osd->disk.get(), engine_.now());
      hosts_.back()->target.connect(osd->nqn, engine_.now());
      osd->fabric_conn =
          fabric_->connect(h, osd->nqn, osd->disk.get(), engine_.now());
      conn_osd_.push_back(id);
      hosts_.back()->osds.push_back(id);
      host_of.push_back(h);
      osds_.push_back(std::move(osd));
    }
  }
  alive_.assign(osds_.size(), true);
  qos_state_.resize(osds_.size());
  std::vector<int> rack_of_host;
  for (HostId h = 0; h < config_.num_hosts; ++h) {
    rack_of_host.push_back(h / std::max(1, config_.hosts_per_rack));
  }
  crush_ = std::make_unique<Crush>(host_of, rack_of_host,
                                   config_.pool.failure_domain,
                                   config_.seed ^ 0xC0FFEE);
  log("mon.0", "mon",
      "cluster up: " + std::to_string(config_.num_hosts) + " hosts, " +
          std::to_string(osds_.size()) + " osds");
  if (config_.check_invariants) enable_invariant_checks();
}

Cluster::~Cluster() = default;

void Cluster::enable_invariant_checks() {
  if (inv_checker_) return;
  inv_checker_ = std::make_unique<sim::SimInvariantChecker>(engine_);
  invariants_ = std::make_unique<ClusterInvariants>(*this);
  invariants_->install(*inv_checker_);
}

BlueStore& Cluster::mutable_store(OsdId osd) {
  ECF_CHECK_GE(osd, 0) << " invalid osd id";
  ECF_CHECK_LT(static_cast<std::size_t>(osd), osds_.size())
      << " invalid osd id";
  return osds_[static_cast<std::size_t>(osd)]->store;
}

void Cluster::log(const std::string& node, const std::string& subsys,
                  const std::string& message) {
  if (sink_) sink_({engine_.now(), node, subsys, message});
}

void Cluster::create_pool() {
  if (pool_created_) throw std::logic_error("pool already created");
  code_ = ec::make_code(config_.pool.ec_profile);
  if (static_cast<int>(code_->n()) > config_.num_osds()) {
    throw std::invalid_argument("EC width exceeds OSD count");
  }
  for (PgId pgid = 0; pgid < config_.pool.pg_num; ++pgid) {
    auto pg = std::make_unique<Pg>();
    pg->id = pgid;
    pg->acting = crush_->acting_set(pgid, code_->n(), alive_);
    pgs_.push_back(std::move(pg));
  }
  pool_created_ = true;
  log("mon.0", "mon",
      "pool created: " + code_->name() + " pg_num=" +
          std::to_string(config_.pool.pg_num) + " stripe_unit=" +
          util::format_bytes(config_.pool.stripe_unit) + " failure_domain=" +
          to_string(config_.pool.failure_domain));
}

void Cluster::apply_workload() {
  if (!pool_created_) throw std::logic_error("create_pool first");
  if (workload_applied_) throw std::logic_error("workload already applied");
  const auto& wl = config_.workload;
  const ec::StripeLayout layout = ec::compute_stripe_layout(
      wl.object_size, code_->n(), code_->k(), config_.pool.stripe_unit);
  util::Rng place = rng_.child(0x0b7ec7);
  // Object → PG routing table for the client-load generator; only
  // materialized when client load is configured (4 bytes x num_objects).
  const bool track_obj_pg = config_.client.ops_per_s > 0;
  if (track_obj_pg) obj_pg_.reserve(wl.num_objects);
  for (std::uint64_t obj = 0; obj < wl.num_objects; ++obj) {
    // Objects hash uniformly over PGs (rjenkins in Ceph; any uniform
    // deterministic map works here).
    const auto pgid = static_cast<PgId>(
        place.uniform(static_cast<std::uint64_t>(config_.pool.pg_num)));
    if (track_obj_pg) obj_pg_.push_back(static_cast<std::uint32_t>(pgid));
    Pg& pg = *pgs_[static_cast<std::size_t>(pgid)];
    ++pg.num_objects;
    for (std::size_t pos = 0; pos < code_->n(); ++pos) {
      Osd& osd = *osds_[static_cast<std::size_t>(pg.acting[pos])];
      osd.store.write_chunk(layout.chunk_size);
      ++osd.chunk_count;
    }
  }
  // Let the cache autotuner converge on the ingested working set.
  for (int step = 0; step < 12; ++step) {
    for (auto& osd : osds_) osd->store.autotune_step();
  }
  workload_applied_ = true;
  log("mon.0", "mgr",
      "workload applied: " + std::to_string(wl.num_objects) + " x " +
          util::format_bytes(wl.object_size) + " objects");
}

void Cluster::fail_device(OsdId osd_id) {
  ECF_CHECK_LT(static_cast<std::size_t>(osd_id), osds_.size())
      << " invalid osd id";
  Osd& osd = *osds_[static_cast<std::size_t>(osd_id)];
  if (!osd.device_ok) return;
  Host& host = *hosts_[static_cast<std::size_t>(osd.host)];
  host.target.remove_subsystem(osd.nqn, engine_.now());
  fabric_->disconnect(osd.fabric_conn, engine_.now());
  osd.device_ok = false;
  if (report_.failure_time < 0) report_.failure_time = ecf::util::SimSec(engine_.now());
  log(host.target.node(), "nvmeof", "subsystem removed: " + osd.nqn);
  // The OSD daemon hits EIO on the vanished device and aborts; peers stop
  // receiving its heartbeats.
  log("osd." + std::to_string(osd_id), "osd",
      "bdev I/O error (EIO), aborting");
  on_device_removed(osd_id);
}

void Cluster::fail_host(HostId host_id) {
  ECF_CHECK_LT(static_cast<std::size_t>(host_id), hosts_.size())
      << " invalid host id";
  Host& host = *hosts_[static_cast<std::size_t>(host_id)];
  if (!host.alive) return;
  host.alive = false;
  if (report_.failure_time < 0) report_.failure_time = ecf::util::SimSec(engine_.now());
  log(host.target.node(), "osd", "node failure injected (shutdown)");
  for (const OsdId o : host.osds) {
    Osd& osd = *osds_[static_cast<std::size_t>(o)];
    if (!osd.process_up) continue;
    osd.process_up = false;
    on_device_removed(o);
  }
}

RecoveryReport Cluster::run_to_recovery() {
  engine_.run();
  report_.fabric_reconnects = fabric_->totals().reconnects;
  report_.engine_stats = engine_.stats();
  return report_;
}

sim::SimTime Cluster::osd_read(OsdId osd_id, std::uint64_t bytes,
                               std::uint64_t ios, sim::SimTime extra_seconds) {
  Osd& o = *osds_[static_cast<std::size_t>(osd_id)];
  const auto res = fabric_->read(o.fabric_conn, bytes, ios, extra_seconds);
  if (!res) {
    // Path torn down mid-operation (device fault racing in-flight work):
    // commands the DSS already queued run out against the backing store,
    // matching the pre-fabric model where only upper layers gate on
    // osd_alive().
    return o.disk->read(engine_, bytes, ios, extra_seconds);
  }
  report_.fabric_transport_wait_s += util::SimSec(res->transport_wait_s);
  report_.fabric_retries += res->retries;
  return res->complete;
}

sim::SimTime Cluster::osd_write(OsdId osd_id, std::uint64_t bytes,
                                std::uint64_t ios, sim::SimTime extra_seconds) {
  Osd& o = *osds_[static_cast<std::size_t>(osd_id)];
  const auto res = fabric_->write(o.fabric_conn, bytes, ios, extra_seconds);
  if (!res) {
    return o.disk->write(engine_, bytes, ios, extra_seconds);
  }
  report_.fabric_transport_wait_s += util::SimSec(res->transport_wait_s);
  report_.fabric_retries += res->retries;
  return res->complete;
}

void Cluster::on_fabric_failed(nvmeof::ConnectionId conn) {
  // The fabric exhausted ctrl_loss_tmo: the initiator-side device is gone
  // for good. The cluster reacts exactly as if the subsystem was removed.
  const OsdId osd = conn_osd_[static_cast<std::size_t>(conn)];
  log("host" + std::to_string(host_of(osd)), "fabric",
      "fabric: osd." + std::to_string(osd) +
          " connection failed permanently; treating as device loss");
  fail_device(osd);
}

void Cluster::set_link_latency(HostId host, double latency_s,
                               double jitter_s) {
  fabric_->set_link_latency(host, latency_s, jitter_s);
  char msg[128];
  std::snprintf(msg, sizeof(msg),
                "fabric: link latency injected: +%.3fms jitter=%.3fms",
                latency_s * 1e3, jitter_s * 1e3);
  log("host" + std::to_string(host), "fabric", msg);
}

void Cluster::set_link_bandwidth_cap(HostId host, double bytes_per_s) {
  fabric_->set_link_bandwidth_cap(host, bytes_per_s);
  char msg[128];
  if (bytes_per_s > 0) {
    std::snprintf(msg, sizeof(msg), "fabric: link bandwidth capped at %.1fMB/s",
                  bytes_per_s / 1e6);
  } else {
    std::snprintf(msg, sizeof(msg), "fabric: link bandwidth cap removed");
  }
  log("host" + std::to_string(host), "fabric", msg);
}

void Cluster::set_packet_loss(HostId host, double rate) {
  fabric_->set_packet_loss(host, rate);
  char msg[128];
  std::snprintf(msg, sizeof(msg),
                "fabric: packet loss injected: rate=%.4f (retries expected)",
                rate);
  log("host" + std::to_string(host), "fabric", msg);
}

void Cluster::flap_link(HostId host, double down_for_s) {
  fabric_->set_link_down(host, down_for_s);
  char msg[128];
  std::snprintf(msg, sizeof(msg), "fabric: link flap: down for %.3fs",
                down_for_s);
  log("host" + std::to_string(host), "fabric", msg);
}

void Cluster::partition_host(HostId host, double down_for_s) {
  fabric_->set_link_down(host, down_for_s);
  char msg[128];
  std::snprintf(msg, sizeof(msg),
                "fabric: network partition: host unreachable for %.1fs",
                down_for_s);
  log("host" + std::to_string(host), "fabric", msg);
}

void Cluster::heal_partition(HostId host) {
  fabric_->restore_link(host);
  log("host" + std::to_string(host), "fabric",
      "fabric: network partition healed; link restored");
}

std::uint64_t Cluster::total_stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& osd : osds_) total += osd->store.stored_bytes();
  return total;
}

std::uint64_t Cluster::total_data_bytes() const {
  std::uint64_t total = 0;
  for (const auto& osd : osds_) total += osd->store.data_bytes();
  return total;
}

std::uint64_t Cluster::total_meta_bytes() const {
  std::uint64_t total = 0;
  for (const auto& osd : osds_) total += osd->store.meta_bytes();
  return total;
}

std::uint64_t Cluster::workload_bytes() const {
  return config_.workload.num_objects * config_.workload.object_size;
}

double Cluster::actual_wa() const {
  const std::uint64_t written = workload_bytes();
  if (written == 0) return 0;
  return static_cast<double>(total_stored_bytes()) /
         static_cast<double>(written);
}

HostId Cluster::host_of(OsdId osd) const {
  ECF_CHECK_LT(static_cast<std::size_t>(osd), osds_.size())
      << " invalid osd id";
  return osds_[static_cast<std::size_t>(osd)]->host;
}

int Cluster::rack_of(HostId host) const {
  if (host < 0 || host >= config_.num_hosts) {
    // Documented API contract (callers probe topology with raw ids); cold.
    throw std::out_of_range("rack_of: bad host");  // ecf-analyze: allow(event-throw)
  }
  return host / std::max(1, config_.hosts_per_rack);
}

std::vector<OsdId> Cluster::osds_on_host(HostId host) const {
  ECF_CHECK_LT(static_cast<std::size_t>(host), hosts_.size())
      << " invalid host id";
  return hosts_[static_cast<std::size_t>(host)]->osds;
}

bool Cluster::osd_alive(OsdId osd) const {
  ECF_DCHECK_LT(static_cast<std::size_t>(osd), osds_.size())
      << " invalid osd id";
  const Osd& o = *osds_[static_cast<std::size_t>(osd)];
  return o.device_ok && o.process_up;
}

int Cluster::num_failed_osds() const {
  int n = 0;
  for (const auto& osd : osds_) {
    if (!osd->device_ok || !osd->process_up) ++n;
  }
  return n;
}

const BlueStore& Cluster::store(OsdId osd) const {
  return osds_.at(static_cast<std::size_t>(osd))->store;
}

nvmeof::Target& Cluster::target(HostId host) {
  return hosts_.at(static_cast<std::size_t>(host))->target;
}

const nvmeof::ConnectionStats& Cluster::fabric_stats(OsdId osd) const {
  ECF_CHECK_LT(static_cast<std::size_t>(osd), osds_.size())
      << " invalid osd id";
  return fabric_->stats(
      osds_[static_cast<std::size_t>(osd)]->fabric_conn);
}

Cluster::DeviceStats Cluster::disk_stats(OsdId osd) const {
  ECF_CHECK_LT(static_cast<std::size_t>(osd), osds_.size())
      << " invalid osd id";
  const Osd& o = *osds_[static_cast<std::size_t>(osd)];
  DeviceStats stats;
  stats.bytes_read = o.disk->bytes_read();
  stats.bytes_written = o.disk->bytes_written();
  stats.io_count = o.disk->io_count();
  stats.busy_seconds = o.disk->server().busy_seconds();
  stats.recovery_bytes_read = o.recovery_bytes_served;
  return stats;
}

Cluster::PoolStats Cluster::pool_stats() const {
  PoolStats stats;
  stats.client_op_slabs = client_op_pool_.slab_count();
  stats.client_op_acquired = client_op_pool_.acquired_count();
  stats.repair_batch_slabs = repair_batch_pool_.slab_count();
  stats.repair_batch_acquired = repair_batch_pool_.acquired_count();
  return stats;
}

Cluster::NicStats Cluster::nic_stats(HostId host) const {
  const Host& h = *hosts_.at(static_cast<std::size_t>(host));
  NicStats stats;
  stats.bytes_sent = h.nic.bytes_sent();
  stats.bytes_received = h.nic.bytes_received();
  stats.tx_busy_seconds = h.nic.tx().busy_seconds();
  stats.rx_busy_seconds = h.nic.rx().busy_seconds();
  return stats;
}

std::vector<PgId> Cluster::pgs_on_osd(OsdId osd) const {
  std::vector<PgId> out;
  for (const auto& pg : pgs_) {
    if (std::find(pg->acting.begin(), pg->acting.end(), osd) !=
        pg->acting.end()) {
      out.push_back(pg->id);
    }
  }
  return out;
}

std::size_t Cluster::objects_in_pg(PgId pg) const {
  return pgs_.at(static_cast<std::size_t>(pg))->num_objects;
}

std::vector<OsdId> Cluster::pg_acting(PgId pg) const {
  return pgs_.at(static_cast<std::size_t>(pg))->acting;
}

OsdId Cluster::primary_of(const Pg& pg) const {
  // First surviving member of the acting set acts as recovery primary.
  for (const OsdId o : pg.acting) {
    if (osd_alive(o)) return o;
  }
  return kNoOsd;
}

}  // namespace ecf::cluster
