#include "cluster/qos.h"

#include <algorithm>

namespace ecf::cluster::qos {

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::kClient: return "client";
    case OpClass::kRecovery: return "recovery";
    case OpClass::kScrub: return "scrub";
  }
  return "?";
}

double advance_tag(double prev_tag, double now, double rate) {
  if (rate <= 0) return now;
  return std::max(prev_tag + 1.0 / rate, now);
}

double weight_gap(double cost_s, double weight, double other_weight_sum) {
  if (cost_s <= 0 || weight <= 0 || other_weight_sum <= 0) return 0;
  return cost_s * other_weight_sum / weight;
}

double DmClockOsd::submit(const QosConfig& cfg, OpClass c, double now,
                          double op_cost_s) {
  const std::size_t ci = static_cast<std::size_t>(c);
  TagState& t = cls[ci];
  // Idle reset: a class that went quiet must not spend banked tag credit
  // (or pay banked tag debt) when it comes back.
  if (now - t.last_submit > cfg.idle_reset_s) {
    t.r_tag = TagState::kNeverTag;
    t.w_tag = TagState::kNeverTag;
    t.l_tag = TagState::kNeverTag;
  }
  t.last_submit = now;

  const ClassParams& p = cfg.params(c);

  // Competing weight: classes that submitted within the idle window. A
  // sole-active class sees no competition, spaces by nothing, and is
  // granted immediately (work conservation).
  double other_w = 0;
  for (std::size_t j = 0; j < kNumOpClasses; ++j) {
    if (j == ci) continue;
    if (now - cls[j].last_submit <= cfg.idle_reset_s) {
      other_w += cfg.params(static_cast<OpClass>(j)).weight;
    }
  }

  // Weight: grant no earlier than the share tag, then push the tag out by
  // this op's cost scaled to the class's proportional share — a burst of
  // same-class ops self-serializes into w/(w + other) of device time
  // instead of landing on the device at once.
  const double start = std::max(t.w_tag, now);
  double delay = start - now;
  t.w_tag = start + weight_gap(op_cost_s, p.weight, other_w);

  // Reservation: while the class submits below its reserved rate the
  // reservation tag trails `now` and the op is granted immediately,
  // regardless of how far behind its weight share it is.
  if (p.reservation_ops > 0) {
    t.r_tag = advance_tag(t.r_tag, now, p.reservation_ops);
    delay = std::min(delay, std::max(0.0, t.r_tag - now));
  }

  // Limit: never dispatch ahead of the limit tag, even when reservation
  // or weight would grant now.
  if (p.limit_ops > 0) {
    t.l_tag = advance_tag(t.l_tag, now, p.limit_ops);
    delay = std::max(delay, t.l_tag - now);
  }
  return std::max(0.0, delay);
}

}  // namespace ecf::cluster::qos
