// SimCeph: a discrete-event model of an erasure-coded Ceph cluster.
//
// The class owns the whole simulated system: hosts with NICs, OSDs with
// NVMe-oF-provisioned disks and BlueStore accounting, a MON/MGR with
// failure detection and osdmap epochs, an EC pool with CRUSH placement,
// and the peering + recovery state machines. The paper's experiments map
// onto it as:
//
//   apply_workload()     — §4.1's 10,000 x 64 MB object writes (space
//                          accounting + PG population; ingest time is not
//                          part of any measured result, so writes are not
//                          simulated in time)
//   fail_device / fail_host — §3.2's fault injection levers (invoked by
//                          the ECFault Worker through the nvmeof targets)
//   engine().run()       — plays out detection, checking, recovery
//   RecoveryReport       — Fig. 2/Fig. 3 measurements
//   actual_wa()          — Table 3's "Actual WA Factor"
//
// Recovery pipeline (per the Ceph protocol, simplified to the stages that
// cost time):
//   device failure → heartbeat timeout (grace + phase jitter) → MON marks
//   the OSD down (logged: "failure detected") → down-out interval elapses →
//   MON marks it out, publishes a new osdmap epoch → affected PGs peer
//   (log scan, missing-set computation; kv-cache dependent) → recovery
//   reservation (osd_max_backfills) → object repairs (helper disk reads →
//   helper NIC → primary NIC → decode CPU → target NIC → target disk
//   write), osd_recovery_max_active in flight per PG → PG clean.
//
// A new epoch arriving mid-recovery interrupts affected PGs: in-flight
// repairs are wasted, peering re-runs, and repair plans are recomputed with
// the enlarged erasure set (this is how the Fig. 2d locality asymmetry
// emerges — see DESIGN.md §5).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/bluestore.h"
#include "cluster/config.h"
#include "cluster/crush.h"
#include "cluster/types.h"
#include "ec/code.h"
#include "nvmeof/fabric.h"
#include "sim/engine.h"
#include "nvmeof/nvmeof.h"
#include "sim/engine.h"
#include "sim/invariant_checker.h"
#include "sim/resources.h"
#include "util/arena.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/units.h"
#include "util/zipf.h"

namespace ecf::cluster {

class ClusterInvariants;

// Measurements of one recovery cycle, in the paper's Fig. 3 vocabulary.
struct RecoveryReport {
  // Timeline marks in simulated seconds; -1 = never happened.
  util::SimSec failure_time{-1};        // first injected fault
  util::SimSec detection_time{-1};      // first MON "down" (Fig. 3 t=0)
  util::SimSec recovery_start_time{-1}; // first recovery I/O issued
  util::SimSec recovery_end_time{-1};   // last PG clean
  bool complete = false;

  // Fig. 3's two periods (both measured from detection).
  double checking_period() const {
    return recovery_start_time - detection_time;
  }
  double ec_recovery_period() const {
    return recovery_end_time - recovery_start_time;
  }
  double total() const { return recovery_end_time - detection_time; }
  double checking_fraction() const {
    return total() > 0 ? checking_period() / total() : 0;
  }

  // Scrub / corruption accounting (when corruption faults are injected).
  std::uint64_t corruptions_injected = 0;
  std::uint64_t corruptions_found = 0;
  std::uint64_t corruptions_repaired = 0;
  std::uint64_t pgs_scrubbed = 0;

  // Client traffic served during the experiment (when client load is on).
  // Latencies are recorded in fixed-bucket log2 histograms (quarter-octave
  // resolution, exact count/sum/max) split by op class, so p50/p95/p99/p999
  // survive million-op campaigns without per-op logs.
  std::uint64_t client_ops = 0;
  std::uint64_t degraded_reads = 0;  // reads that needed an inline decode
  util::LatencyHistogram client_clean_read_lat;
  util::LatencyHistogram client_degraded_read_lat;
  util::LatencyHistogram client_write_lat;
  util::LatencyHistogram client_latency_all() const {
    util::LatencyHistogram all = client_clean_read_lat;
    all.merge(client_degraded_read_lat);
    all.merge(client_write_lat);
    return all;
  }
  // NaN-safe: all three return 0 when client_ops == 0.
  double mean_client_latency() const { return client_latency_all().mean(); }
  double max_client_latency() const { return client_latency_all().max(); }
  double client_percentile(double q) const {
    return client_latency_all().percentile(q);
  }

  // Work accounting.
  std::uint64_t bytes_read_for_recovery = 0;
  std::uint64_t bytes_written_for_recovery = 0;
  // Repair payload that crossed a host NIC: helper->primary shard reads
  // (or, under pool.dag_recovery, only the forwarded partial-combine
  // outputs) plus primary->target rebuilt-chunk pushes. The DAG executor's
  // headline metric: helper-local combining shrinks this without touching
  // bytes_read_for_recovery.
  std::uint64_t bytes_on_wire_for_recovery = 0;
  std::uint64_t objects_repaired = 0;
  std::uint64_t repairs_wasted = 0;  // in-flight work discarded by re-peering
  int epochs_published = 0;

  // NVMe-oF fabric attribution: time OSD I/O spent on the wire (latency,
  // serialization, qpair backpressure, down-window stalls) rather than at
  // the device, plus retransmissions and connection re-establishments.
  // All three are exactly zero on the default ideal fabric.
  util::SimSec fabric_transport_wait_s;
  std::uint64_t fabric_retries = 0;
  std::uint64_t fabric_reconnects = 0;

  // Event-core profile of the run (events executed/cancelled, queue depth,
  // callback spills, per-subsystem tags). Filled by run_to_recovery().
  sim::EngineStats engine_stats;
};

class Cluster {
 public:
  Cluster(ClusterConfig config, LogSinkFn sink = nullptr);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- setup ----------------------------------------------------------------
  // Create the EC pool (codec from the profile, PG acting sets via CRUSH).
  void create_pool();
  // Account the configured workload into the pool.
  void apply_workload();
  // Start the foreground client-load generator (no-op when
  // config.client.ops_per_s == 0). Call after apply_workload().
  void start_client_load();

  // --- fault levers (the ECFault Worker calls these) -------------------------
  // Remove an OSD's NVMe subsystem now (device-level fault).
  void fail_device(OsdId osd);
  // Kill a whole node: all its devices plus its NIC (node-level fault).
  void fail_host(HostId host);
  // Silently corrupt a fraction of the chunks stored on an OSD (CORDS-style
  // fault: no error surfaces until a checksum is verified). Returns the
  // number of (pg, shard) corruptions planted.
  std::uint64_t corrupt_chunks(OsdId osd, double fraction);
  // Start the periodic deep-scrub process (config.scrub must be enabled).
  void start_scrub();

  // Network-level fault levers: degrade the NVMe-oF fabric link of one
  // host. Every OSD on the host shares the link, so all of its device
  // traffic pays the injected cost. All are timeline-logged.
  void set_link_latency(HostId host, double latency_s, double jitter_s = 0);
  void set_link_bandwidth_cap(HostId host, double bytes_per_s);
  void set_packet_loss(HostId host, double rate);
  // Short outage: commands stall and retransmit; the connection survives
  // when the window closes before the keep-alive interval expires.
  void flap_link(HostId host, double down_for_s);
  // Long outage: drives the fabric keep-alive/reconnect machine. A window
  // past the controller-loss timeout fails the host's connections, which
  // the cluster handles as device losses.
  void partition_host(HostId host, double down_for_s);
  void heal_partition(HostId host);

  // --- correctness tooling ----------------------------------------------------
  // Attach a SimInvariantChecker that validates PG state-machine legality,
  // object/byte conservation, cache accounting and reservation slots after
  // every event (see cluster/invariants.h). Called automatically from the
  // constructor when config.check_invariants is set; idempotent.
  void enable_invariant_checks();
  bool invariant_checks_enabled() const { return inv_checker_ != nullptr; }
  // Events validated so far (0 when checks are disabled).
  std::size_t invariant_events_checked() const {
    return inv_checker_ ? inv_checker_->events_checked() : 0;
  }

  // Mutable store access for tests and fault injection (e.g. planting a
  // broken cache-accounting mutation the invariant checker must catch).
  BlueStore& mutable_store(OsdId osd);

  // --- run --------------------------------------------------------------------
  sim::Engine& engine() { return engine_; }
  // Convenience: run the engine until recovery completes (or events run
  // out). Returns the report.
  RecoveryReport run_to_recovery();

  const RecoveryReport& report() const { return report_; }

  // --- write amplification (Table 3) -----------------------------------------
  std::uint64_t total_stored_bytes() const;
  std::uint64_t total_data_bytes() const;
  std::uint64_t total_meta_bytes() const;
  std::uint64_t workload_bytes() const;
  // Actual WA factor: stored / written, the paper's Table 3 metric.
  double actual_wa() const;

  // --- topology / introspection ----------------------------------------------
  const ClusterConfig& config() const { return config_; }
  const ec::ErasureCode& code() const { return *code_; }
  HostId host_of(OsdId osd) const;
  int rack_of(HostId host) const;
  std::vector<OsdId> osds_on_host(HostId host) const;
  bool osd_alive(OsdId osd) const;
  int num_failed_osds() const;
  const BlueStore& store(OsdId osd) const;
  nvmeof::Target& target(HostId host);
  nvmeof::Fabric& fabric() { return *fabric_; }
  const nvmeof::Fabric& fabric() const { return *fabric_; }
  // Per-OSD fabric connection counters (commands, retries, transport wait,
  // qpair depth) for iostat-style sampling.
  const nvmeof::ConnectionStats& fabric_stats(OsdId osd) const;
  // Device / NIC counters for iostat-style sampling.
  struct DeviceStats {
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t io_count = 0;
    double busy_seconds = 0;
    // Recovery payload this OSD served as a helper (subset of bytes_read's
    // purpose, tracked separately: the helper-read imbalance metric).
    std::uint64_t recovery_bytes_read = 0;
  };
  DeviceStats disk_stats(OsdId osd) const;
  struct NicStats {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    double tx_busy_seconds = 0;
    double rx_busy_seconds = 0;
  };
  NicStats nic_stats(HostId host) const;
  // Slab-pool accounting for the scale bench: slabs is each pool's
  // high-water mark of simultaneously-live op state, acquired the op
  // count it served — proof that per-op memory stayed O(high-water),
  // not O(ops).
  struct PoolStats {
    std::size_t client_op_slabs = 0;
    std::size_t client_op_acquired = 0;
    std::size_t repair_batch_slabs = 0;
    std::size_t repair_batch_acquired = 0;
  };
  PoolStats pool_stats() const;
  // PGs whose acting set contains `osd`.
  std::vector<PgId> pgs_on_osd(OsdId osd) const;
  std::size_t objects_in_pg(PgId pg) const;
  std::vector<OsdId> pg_acting(PgId pg) const;

 private:
  friend class ClusterInvariants;

  struct Osd;
  struct Host;
  struct Pg;
  struct RepairShape;
  struct RepairBatch;
  struct ClientOp;

  void log(const std::string& node, const std::string& subsys,
           const std::string& message);

  // Protocol steps (implemented in recovery.cc).
  void on_device_removed(OsdId osd);
  void schedule_detection(OsdId osd);
  void mark_down(OsdId osd);
  void mark_out_batch(std::vector<OsdId> batch);
  void publish_epoch(const std::vector<OsdId>& newly_out);
  void start_peering(Pg& pg);
  void finish_peering(Pg& pg);
  void try_reserve(Pg& pg);
  void release_reservation(Pg& pg);
  void pump_recovery(Pg& pg);
  void start_object_repair(Pg& pg);
  void issue_repair_round(RepairBatch* b);
  // One flat helper read of the current round (hoisted so a dmClock grant
  // can defer it; captures stay within the EventFn small-buffer).
  void issue_flat_read(RepairBatch* b, std::size_t read_index);
  void repair_after_decode(RepairBatch* b);
  // DAG-staged execution (pool.dag_recovery): one fetch stage of the
  // repair DAG — helper reads, helper-local combines, forwards — then the
  // stage barrier at the primary.
  void issue_dag_stage(RepairBatch* b);
  void issue_dag_helper_read(RepairBatch* b, std::size_t helper_index);
  void dag_helper_step(RepairBatch* b, std::size_t helper_index);
  void dag_after_stage(RepairBatch* b);
  // Pipelined DAG execution (pool.dag_pipeline): every stage's helper
  // chains issue at round start; target combines charge in stage order as
  // each stage's arrivals complete (see impl_types.h RepairBatch fields).
  void issue_pipelined_round(RepairBatch* b);
  void issue_pipe_helper_read(RepairBatch* b, std::uint32_t stage,
                              std::uint32_t helper_index);
  void pipe_helper_step(RepairBatch* b, std::uint32_t stage,
                        std::uint32_t helper_index);
  void pipe_forward(RepairBatch* b, std::uint32_t stage,
                    std::uint32_t helper_index);
  void pipe_deliver(RepairBatch* b, std::uint32_t stage,
                    std::uint32_t helper_index);
  void pipe_arrival(RepairBatch* b, std::uint32_t stage);
  void pipe_advance(RepairBatch* b);
  // Write fan-out shared by the flat and DAG paths (the tail of
  // repair_after_decode / the last DAG stage).
  void issue_repair_writes(RepairBatch* b);
  // Device charge of one repair write (hoisted for dmClock deferral).
  void finish_repair_write(RepairBatch* b, std::size_t write_index,
                           std::uint64_t write_bytes);
  void complete_object_repair(Pg& pg, int generation, std::size_t batch);
  void finish_pg(Pg& pg);
  void maybe_finish_recovery();
  void emit_checking_logs(OsdId osd, double until);
  void issue_client_op();
  void schedule_next_client_op();
  void finish_client_op(ClientOp* op);
  void scrub_tick(PgId next);
  void repair_corrupted_shard(PgId pg, std::size_t position);
  std::string osd_name_for_scrub(PgId pg) const;

  // --- recovery QoS (qos.h; all default-off) --------------------------------
  // Legacy flat scheduler-queueing constant for an op class (0 when the
  // dmClock scheduler is on — tags replace the constant).
  double queue_extra_s(qos::OpClass cls) const;
  // dmClock grant delay for one op of `cls` at `osd` (0 when disabled;
  // touches no tag state in that case, keeping goldens bit-identical).
  double qos_submit_delay(qos::OpClass cls, OsdId osd,
                          std::uint64_t device_bytes);
  // Load-aware helper selection: congestion score of a candidate helper
  // (lower = preferred; see HelperSelectionConfig) and the per-PG survivor
  // preference it induces (ties break by OSD id).
  double helper_score(OsdId osd) const;
  std::vector<std::size_t> helper_preference(const Pg& pg) const;

  RepairShape compute_repair_shape(const Pg& pg) const;
  // Lower a structured repair DAG into the shape's per-stage helper lists
  // (pool.dag_recovery). chunk_size/units_per_chunk come from the stripe
  // layout the caller already computed.
  void lower_dag_stages(const ec::RepairDag& dag, std::uint64_t chunk_size,
                        std::uint64_t units_per_chunk, const Pg& pg,
                        RepairShape& shape) const;
  OsdId primary_of(const Pg& pg) const;

  // All OSD disk I/O funnels through these: the fabric charges qpair
  // backpressure + transport cost around the device reservation and the
  // transport share is attributed to report_.fabric_transport_wait_s.
  sim::SimTime osd_read(OsdId osd, std::uint64_t bytes, std::uint64_t ios,
                        sim::SimTime extra_seconds = 0);
  sim::SimTime osd_write(OsdId osd, std::uint64_t bytes, std::uint64_t ios,
                         sim::SimTime extra_seconds = 0);
  void on_fabric_failed(nvmeof::ConnectionId conn);

  ClusterConfig config_;
  LogSinkFn sink_;
  sim::Engine engine_;
  util::Rng rng_;
  std::unique_ptr<ec::ErasureCode> code_;
  std::unique_ptr<Crush> crush_;
  std::unique_ptr<nvmeof::Fabric> fabric_;
  std::vector<OsdId> conn_osd_;  // fabric ConnectionId -> OSD

  std::vector<std::unique_ptr<Osd>> osds_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Pg>> pgs_;
  sim::Cpu mon_cpu_;

  std::vector<bool> alive_;       // up/in per OSD (false once marked out)
  std::vector<OsdId> pending_out_;  // detected, waiting for batch tick
  bool out_batch_scheduled_ = false;
  int epoch_ = 0;
  int pgs_recovering_ = 0;        // PGs not yet clean
  RecoveryReport report_;
  int scrub_passes_done_ = 0;
  bool pool_created_ = false;
  bool workload_applied_ = false;

  // Client-load generator state (client.cc). The RNG is consumed
  // sequentially at issue time so op traces replay bit-identically;
  // obj_pg_ maps object id -> PG (built during apply_workload, only when
  // client load is configured) so popularity skew lands on real PGs; the
  // op pool recycles per-op state without per-op heap allocations.
  util::Rng client_rng_{0};
  util::ZipfianSampler client_zipf_{1, 0.0};  // rebuilt by start_client_load
  std::vector<std::uint32_t> obj_pg_;
  util::Pool<ClientOp> client_op_pool_;
  util::Pool<RepairBatch> repair_batch_pool_;

  // Per-OSD dmClock tag state (sized with osds_; only touched when
  // config_.qos.enabled).
  std::vector<qos::DmClockOsd> qos_state_;

  // Scratch buffers reused across recovery/protocol rounds (avoid per-call
  // allocations on hot paths). The scratch_ prefix is load-bearing:
  // tools/ecf_analyze treats growth through scratch_* receivers as
  // amortized high-water capacity, not an event-path allocation.
  std::vector<OsdId> scratch_needed_;
  std::vector<Pg*> scratch_waiting_;
  std::vector<std::size_t> scratch_dead_;
  std::vector<std::size_t> scratch_positions_;
  std::vector<OsdId> scratch_occupied_;

  // Correctness tooling (enable_invariant_checks); declaration order makes
  // the checker's engine hook outlive nothing it references.
  std::unique_ptr<ClusterInvariants> invariants_;
  std::unique_ptr<sim::SimInvariantChecker> inv_checker_;
};

}  // namespace ecf::cluster
