// Internal state structs of the Cluster simulator. Included only by
// cluster.cc and recovery.cc; not part of the public API.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"

namespace ecf::cluster {

struct Cluster::Osd {
  OsdId id = kNoOsd;
  HostId host = -1;
  nvmeof::Nqn nqn;
  // Initiator-side NVMe-oF path to the device; all data I/O goes through it.
  nvmeof::ConnectionId fabric_conn = nvmeof::kNoConnection;
  std::unique_ptr<sim::Disk> disk;  // referenced by the host's nvmeof target
  BlueStore store;
  sim::Cpu cpu;
  double hb_offset = 0;        // per-OSD detection offset within the host
  bool device_ok = true;       // NVMe subsystem still connected
  bool process_up = true;      // OSD daemon running (node faults kill it)
  bool marked_down = false;
  bool marked_out = false;
  int backfills_in_use = 0;
  std::uint64_t chunk_count = 0;

  Osd(const StoreConfig& sc, const CacheConfig& cc,
      const sim::HardwareProfile& hw)
      : disk(std::make_unique<sim::Disk>(hw.disk)),
        store(sc, cc),
        cpu(hw.cpu) {}
};

struct Cluster::Host {
  HostId id = -1;
  sim::Nic nic;
  nvmeof::Target target;
  std::vector<OsdId> osds;
  bool alive = true;
  double hb_phase = 0;  // heartbeat phase shared by the host's OSDs

  Host(HostId h, const sim::HardwareProfile& hw)
      : id(h), nic(hw.nic), target("host" + std::to_string(h)) {}
};

struct Cluster::Pg {
  PgId id = -1;
  std::vector<OsdId> acting;  // chunk position -> OSD (original placement)
  std::size_t num_objects = 0;
  PgState state = PgState::kActiveClean;

  // Missing chunk positions (ascending) and their remap targets.
  std::vector<std::size_t> missing_positions;
  std::vector<OsdId> remap_targets;

  // Objects grouped by the set of positions they still need rebuilt. The
  // front item is drained first; a later failure appends its position to
  // every pending item and opens a new item for already-repaired objects.
  struct WorkItem {
    std::vector<std::size_t> positions;
    std::uint64_t remaining = 0;
  };
  std::vector<WorkItem> work;

  int inflight = 0;
  int generation = 0;  // bumped on re-peer; stale completions are wasted
  bool reserved = false;
  OsdId reserved_primary = kNoOsd;
  std::vector<OsdId> reserved_targets;
  std::uint64_t repaired_current = 0;  // objects with no pending positions
  bool counted_recovering = false;     // contributes to pgs_recovering_
  bool logged_first_io = false;

  // Silent corruption: shard position -> number of corrupted object chunks
  // (planted by corrupt_chunks, discovered by scrub or checksum-verifying
  // reads, repaired in place).
  std::map<std::size_t, std::uint64_t> corrupted;
};

// Precomputed per-(PG, erasure-set) resource recipe for one object repair.
struct Cluster::RepairShape {
  struct HelperRead {
    OsdId osd = kNoOsd;
    std::uint64_t bytes = 0;      // payload requested from this helper
    std::uint64_t disk_bytes = 0; // after data-cache hits
    std::uint64_t ios = 0;        // disk IOs (sub-chunk runs + meta misses)
    std::uint64_t msgs = 0;       // network messages
    double extra_s = 0;           // expected RocksDB miss time per op
  };
  std::vector<HelperRead> reads;
  double decode_cost_factor = 1.0;
  std::uint64_t decode_bytes = 0;  // reconstructed payload
  // Fixed CPU overhead of sub-packetized decode (GF region-call overhead).
  double decode_extra_s = 0;
  struct TargetWrite {
    OsdId osd = kNoOsd;
    std::uint64_t bytes = 0;
    std::uint64_t ios = 0;
    std::uint64_t msgs = 0;
  };
  std::vector<TargetWrite> writes;
  std::uint64_t chunk_size = 0;
  std::size_t fetch_stages = 1;
};

}  // namespace ecf::cluster
