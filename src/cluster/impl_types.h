// Internal state structs of the Cluster simulator. Included only by
// cluster.cc and recovery.cc; not part of the public API.
#pragma once

#include <map>
#include <memory>
#include <type_traits>
#include <vector>

#include "cluster/cluster.h"

namespace ecf::cluster {

struct Cluster::Osd {
  OsdId id = kNoOsd;
  HostId host = -1;
  nvmeof::Nqn nqn;
  // Initiator-side NVMe-oF path to the device; all data I/O goes through it.
  nvmeof::ConnectionId fabric_conn = nvmeof::kNoConnection;
  std::unique_ptr<sim::Disk> disk;  // referenced by the host's nvmeof target
  BlueStore store;
  sim::Cpu cpu;
  double hb_offset = 0;        // per-OSD detection offset within the host
  bool device_ok = true;       // NVMe subsystem still connected
  bool process_up = true;      // OSD daemon running (node faults kill it)
  bool marked_down = false;
  bool marked_out = false;
  int backfills_in_use = 0;
  std::uint64_t chunk_count = 0;
  // Cumulative recovery payload this OSD served as a helper. Feeds the
  // load-aware helper score's leveling term and the bench's helper-read
  // imbalance metric; accounting only, never charged as time.
  std::uint64_t recovery_bytes_served = 0;

  Osd(const StoreConfig& sc, const CacheConfig& cc,
      const sim::HardwareProfile& hw)
      : disk(std::make_unique<sim::Disk>(hw.disk)),
        store(sc, cc),
        cpu(hw.cpu) {}
};

struct Cluster::Host {
  HostId id = -1;
  sim::Nic nic;
  nvmeof::Target target;
  std::vector<OsdId> osds;
  bool alive = true;
  double hb_phase = 0;  // heartbeat phase shared by the host's OSDs

  Host(HostId h, const sim::HardwareProfile& hw)
      : id(h), nic(hw.nic), target("host" + std::to_string(h)) {}
};

// Precomputed per-(PG, erasure-set) resource recipe for one object repair.
struct Cluster::RepairShape {
  struct HelperRead {
    OsdId osd = kNoOsd;
    std::uint64_t bytes = 0;      // payload requested from this helper
    std::uint64_t disk_bytes = 0; // after data-cache hits
    std::uint64_t ios = 0;        // disk IOs (sub-chunk runs + meta misses)
    std::uint64_t msgs = 0;       // network messages
    double extra_s = 0;           // expected RocksDB miss time per op
  };
  std::vector<HelperRead> reads;
  double decode_cost_factor = 1.0;
  std::uint64_t decode_bytes = 0;  // reconstructed payload
  // Fixed CPU overhead of sub-packetized decode (GF region-call overhead).
  double decode_extra_s = 0;
  struct TargetWrite {
    OsdId osd = kNoOsd;
    std::uint64_t bytes = 0;
    std::uint64_t ios = 0;
    std::uint64_t msgs = 0;
  };
  std::vector<TargetWrite> writes;
  std::uint64_t chunk_size = 0;
  std::size_t fetch_stages = 1;

  // DAG-staged execution recipe (pool.dag_recovery + a structured DAG).
  // One DagHelper per (fetch stage, surviving OSD): its reads for the
  // stage, the helper-local GF combine run on its own CPU, and the single
  // forward of the combined (or raw) bytes to the next hop. Empty stages
  // vector = flat execution (the default path; bit-identical to the seed).
  struct DagHelper {
    OsdId osd = kNoOsd;
    std::uint64_t read_bytes = 0;     // payload read at this helper
    std::uint64_t disk_bytes = 0;     // after data-cache hits
    std::uint64_t ios = 0;            // disk IOs (runs charged once/sweep)
    double extra_s = 0;               // RocksDB miss time, first stage only
    std::uint64_t combine_bytes = 0;  // helper-local GF combine output
    double combine_cost = 0;          // GF work per combined byte
    OsdId fwd_osd = kNoOsd;           // next hop; kNoOsd = repair primary
    std::uint64_t fwd_bytes = 0;      // the only bytes this helper ships
    std::uint64_t fwd_msgs = 0;
  };
  struct DagStage {
    std::vector<DagHelper> helpers;
    std::uint64_t target_bytes = 0;   // primary-side combine work
    double target_cost = 0;           // byte-weighted GF cost of that work
  };
  std::vector<DagStage> stages;
};

// In-flight state of one pushed recovery batch: the event chain from
// pacing through helper reads, decode and target writes threads a single
// pooled RepairBatch* through every continuation — no shared_ptr control
// blocks, no per-round counter allocations, and every capture fits the
// EventFn small-buffer. Trivially destructible (fixed write array, scalars
// only) so batches orphaned by teardown free wholesale with the pool.
// Per-helper read amounts come from the owning PG's shape_base, which is
// stable for the batch's generation (every round re-checks the generation
// before touching it).
struct Cluster::RepairBatch {
  static constexpr std::size_t kMaxShards = 64;  // >= any EC code width
  PgId pg = -1;
  int gen = -1;
  OsdId primary = kNoOsd;
  std::uint64_t batch = 1;   // objects per push op
  std::uint64_t round = 0;   // current push round
  std::uint64_t rounds = 1;  // osd_recovery_max_chunk x fetch_stages rounds
  std::size_t reads_pending = 0;
  std::size_t writes_pending = 0;
  // DAG-staged execution (shape_base.stages non-empty): the round's
  // current fetch stage and its outstanding helper chains. Scalars only —
  // the batch stays trivially destructible.
  std::uint32_t stage = 0;
  std::uint32_t num_stages = 0;
  std::size_t stage_pending = 0;
  // Pipelined DAG execution (pool.dag_pipeline): all stages' helper
  // chains run concurrently; arrivals[] counts each stage's outstanding
  // chains (stage_pending holds the round total) and combine_next is the
  // next stage whose target-side combine may charge — combines still
  // charge in stage order, preserving the DAG's data dependencies.
  static constexpr std::size_t kMaxStages = 16;  // >= any code's fetch depth
  std::uint32_t arrivals[kMaxStages] = {};
  std::uint32_t combine_next = 0;
  // Decode recipe captured at issue time, batch-scaled where the old
  // per-batch shape was.
  double decode_cost_factor = 1.0;
  double decode_extra_s = 0;
  std::uint64_t decode_bytes = 0;
  // Writes narrowed to the work item's positions, batch-scaled.
  std::size_t num_writes = 0;
  RepairShape::TargetWrite writes[kMaxShards];

  static void check_layout() {
    static_assert(std::is_trivially_destructible_v<RepairBatch>,
                  "pooled repair batches must free wholesale with the arena");
  }
};

struct Cluster::Pg {
  PgId id = -1;
  std::vector<OsdId> acting;  // chunk position -> OSD (original placement)
  std::size_t num_objects = 0;
  PgState state = PgState::kActiveClean;

  // Missing chunk positions (ascending) and their remap targets.
  std::vector<std::size_t> missing_positions;
  std::vector<OsdId> remap_targets;

  // Objects grouped by the set of positions they still need rebuilt. The
  // front item is drained first; a later failure appends its position to
  // every pending item and opens a new item for already-repaired objects.
  struct WorkItem {
    std::vector<std::size_t> positions;
    std::uint64_t remaining = 0;
  };
  std::vector<WorkItem> work;

  int inflight = 0;
  int generation = 0;  // bumped on re-peer; stale completions are wasted
  bool reserved = false;
  OsdId reserved_primary = kNoOsd;
  std::vector<OsdId> reserved_targets;
  std::uint64_t repaired_current = 0;  // objects with no pending positions
  bool counted_recovering = false;     // contributes to pgs_recovering_
  bool logged_first_io = false;

  // Silent corruption: (shard position, corrupted object chunks) pairs,
  // sorted by position (planted by corrupt_chunks, discovered by scrub or
  // checksum-verifying reads, repaired in place). A sorted vector instead
  // of a map: at most n entries, and million-PG campaigns cannot afford a
  // red-black tree header per PG member.
  std::vector<std::pair<std::size_t, std::uint64_t>> corrupted;

  // Cached repair recipe for the current generation (recomputed when the
  // erasure set changes). One repair_plan + stripe-layout computation per
  // (PG, epoch) instead of per pushed batch.
  RepairShape shape_base;
  int shape_base_gen = -1;

  // Cached degraded-read plan, keyed by the dead-position set it was built
  // for (the set can change between epochs — an OSD is dead the moment its
  // device fails, generations only bump at publish). Zipfian client load
  // hammers the same degraded PGs, so this turns a per-op repair_plan
  // (several vector allocations) into a vector compare.
  ec::RepairPlan degraded_plan;
  std::vector<std::size_t> degraded_plan_dead;
  bool degraded_plan_valid = false;
};

// Per-op state of the client-load generator (client.cc), recycled through
// client_op_pool_ so a million-op campaign performs a bounded number of
// heap allocations. Scalars only — trivially destructible — so ops still
// in flight when the cluster tears down free wholesale with the pool's
// arena instead of leaking.
struct Cluster::ClientOp {
  enum class Kind : std::uint8_t { kCleanRead, kDegradedRead, kWrite };
  double start = 0;                // issue time (latency = finish - start)
  double decode_cost_factor = 1.0; // from the repair plan (degraded reads)
  OsdId primary = kNoOsd;
  int pending = 0;                 // outstanding helper reads (degraded)
  Kind kind = Kind::kCleanRead;

  static void check_layout() {
    static_assert(std::is_trivially_destructible_v<ClientOp>,
                  "pooled client ops must free wholesale with the arena");
  }
};

}  // namespace ecf::cluster
