// Foreground client-load generator: replays read/write ops against the
// pool while the experiment runs. Reads of shards on dead OSDs degrade
// into inline reconstructions (gather k survivors, decode at the primary),
// so failures surface as client latency — and client traffic competes with
// recovery for the same disks and NICs.
//
// Ops pick an *object* — zipfian-skewed when client.zipf_theta > 0 — and
// route to its PG through obj_pg_, so popularity concentrates on real
// placement groups. Arrivals are either an open-loop Poisson stream at
// ops_per_s or a closed loop of `clients` workers that re-issue after
// completion (+ think time). All randomness flows through client_rng_
// (seeded once from the cluster seed) consumed sequentially at issue time,
// so a fixed seed replays a bit-identical op trace.
//
// Per-op state lives in pooled ClientOp slabs (no per-op heap allocation:
// a 1M-op campaign touches O(max in-flight) slabs, not O(ops)); latencies
// land in the RecoveryReport log2 histograms split clean-read / degraded-
// read / write so recovery interference shows up as a p99/p999 shift.
#include <algorithm>

#include "cluster/cluster.h"
#include "cluster/impl_types.h"
#include "ec/stripe.h"
#include "util/bytes.h"
#include "util/hotpath.h"

namespace ecf::cluster {

void Cluster::start_client_load() {
  const auto& cc = config_.client;
  if (cc.ops_per_s <= 0) return;
  if (!workload_applied_) throw std::logic_error("apply_workload first");
  client_rng_ = rng_.child(0xC11E57);
  client_zipf_ = util::ZipfianSampler(
      std::max<std::uint64_t>(1, config_.workload.num_objects),
      cc.zipf_theta);
  if (cc.closed_loop) {
    // Ramp the workers in over one mean inter-arrival window each, so the
    // closed loop doesn't fire `clients` simultaneous ops at t=0.
    const int workers = std::max(1, cc.clients);
    for (int w = 0; w < workers; ++w) {
      const double delay =
          client_rng_.uniform01() * static_cast<double>(workers) / cc.ops_per_s;
      engine_.schedule(delay, [this] { issue_client_op(); },
                       sim::EventTag::kClient);
    }
  } else {
    schedule_next_client_op();
  }
}

// Open-loop arrivals: Poisson stream at ops_per_s, independent of
// completions (offered load does NOT back off when the cluster degrades —
// that is the point of an open loop).
void Cluster::schedule_next_client_op() {
  const auto& cc = config_.client;
  if (engine_.now() >= cc.horizon_s) return;
  const double gap = client_rng_.exponential(1.0 / cc.ops_per_s);
  engine_.schedule(gap, [this] {
    issue_client_op();
    schedule_next_client_op();
  }, sim::EventTag::kClient);
}

void Cluster::finish_client_op(ClientOp* op) {
  const double latency = engine_.now() - op->start;
  switch (op->kind) {
    case ClientOp::Kind::kCleanRead:
      report_.client_clean_read_lat.record(latency);
      break;
    case ClientOp::Kind::kDegradedRead:
      report_.client_degraded_read_lat.record(latency);
      break;
    case ClientOp::Kind::kWrite:
      report_.client_write_lat.record(latency);
      break;
  }
  client_op_pool_.release(op);
  if (config_.client.closed_loop && engine_.now() < config_.client.horizon_s) {
    engine_.schedule(config_.client.think_time_s,
                     [this] { issue_client_op(); }, sim::EventTag::kClient);
  }
}

void Cluster::issue_client_op() {
  const auto& c = config_.client;
  if (engine_.now() >= c.horizon_s) return;

  // Pick the object (zipfian popularity) and route to its PG. obj_pg_ is
  // built by apply_workload when client load is configured; fall back to a
  // uniform PG pick if it is absent (defensive — config is fixed at
  // construction, so normally it is populated whenever we run).
  PgId pgid;
  if (!obj_pg_.empty()) {
    const std::uint64_t obj = client_zipf_.sample(client_rng_);
    pgid = static_cast<PgId>(obj_pg_[obj]);
  } else {
    pgid = static_cast<PgId>(
        client_rng_.uniform(static_cast<std::uint64_t>(config_.pool.pg_num)));
  }
  Pg& pg = *pgs_[static_cast<std::size_t>(pgid)];
  ++report_.client_ops;

  const bool is_read = client_rng_.uniform01() < c.read_fraction;
  const ec::StripeLayout layout = ec::compute_stripe_layout(
      config_.workload.object_size, code_->n(), code_->k(),
      config_.pool.stripe_unit);
  const OsdId primary = primary_of(pg);
  if (primary == kNoOsd) {
    // No live primary: the op can't be served; closed-loop workers retry
    // after think time so the loop doesn't die with the PG.
    if (c.closed_loop && engine_.now() < c.horizon_s) {
      engine_.schedule(std::max(c.think_time_s.count(), 0.001),
                       [this] { issue_client_op(); }, sim::EventTag::kClient);
    }
    return;
  }
  Host* phost = hosts_[static_cast<std::size_t>(
                           osds_[static_cast<std::size_t>(primary)]->host)]
                    .get();

  // Keep the whole op chain — shard reads, NIC hops, decode, completion —
  // in the PG's event lane.
  sim::Engine::LaneScope lane(engine_, 0x50470000ull +
                                           static_cast<std::uint64_t>(pgid));

  if (is_read) {
    // Read c.op_bytes: lands on ceil(op/su) consecutive data shards.
    const std::size_t shards = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(
               code_->k(),
               util::ceil_div(c.op_bytes, config_.pool.stripe_unit)));
    bool degraded = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t pos = client_rng_.uniform(code_->k());
      if (!osd_alive(pg.acting[pos])) degraded = true;
    }
    if (!degraded) {
      // Normal path: shard reads in parallel, reply through the primary.
      ClientOp* op = client_op_pool_.acquire();
      op->start = engine_.now();
      op->kind = ClientOp::Kind::kCleanRead;
      sim::SimTime done = engine_.now();
      const std::uint64_t per_shard = c.op_bytes / shards;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t pos = client_rng_.uniform(code_->k());
        Osd& o = *osds_[static_cast<std::size_t>(pg.acting[pos])];
        const auto& store = o.store;
        const auto bytes = static_cast<std::uint64_t>(
            static_cast<double>(per_shard) * (1.0 - store.data_hit_rate()));
        done = std::max(
            done,
            osd_read(pg.acting[pos], bytes, 1,
                     qos_submit_delay(qos::OpClass::kClient, pg.acting[pos],
                                      bytes)));
      }
      done = std::max(done, phost->nic.send(engine_, c.op_bytes, 1));
      engine_.schedule_at(done, [this, op] { finish_client_op(op); },
                          sim::EventTag::kClient);
    } else {
      // Degraded read: gather per the code's repair plan and decode
      // inline. Clay turns this into a sub-chunk gather; RS reads k full
      // shard extents.
      ++report_.degraded_reads;
      scratch_dead_.clear();
      for (std::size_t pos = 0; pos < pg.acting.size(); ++pos) {
        if (!osd_alive(pg.acting[pos])) scratch_dead_.push_back(pos);
      }
      // Recompute the repair plan only when the PG's dead set changes: a
      // zipfian client hammers the same degraded PGs with an identical dead
      // set for the whole inter-failure window, so nearly every op is a
      // vector compare instead of a plan construction. Keyed on the dead
      // set itself, not the generation — osd_alive flips at failure time,
      // before the epoch publish bumps the generation.
      if (!pg.degraded_plan_valid || pg.degraded_plan_dead != scratch_dead_) {
        pg.degraded_plan = code_->repair_plan(scratch_dead_);  ECF_ALLOC_OK("amortized: recomputed only when the dead set changes");
        pg.degraded_plan_dead = scratch_dead_;  ECF_ALLOC_OK("amortized: recomputed only when the dead set changes");
        pg.degraded_plan_valid = true;
      }
      const ec::RepairPlan& plan = pg.degraded_plan;
      const double extent_fraction =
          static_cast<double>(c.op_bytes) /
          static_cast<double>(layout.chunk_size * code_->k());
      ClientOp* op = client_op_pool_.acquire();
      op->start = engine_.now();
      op->kind = ClientOp::Kind::kDegradedRead;
      op->primary = primary;
      op->decode_cost_factor = plan.decode_cost_factor;
      op->pending = static_cast<int>(plan.reads.size());
      for (const auto& r : plan.reads) {
        Osd& helper = *osds_[static_cast<std::size_t>(pg.acting[r.chunk])];
        Host* hhost = hosts_[static_cast<std::size_t>(helper.host)].get();
        const auto bytes = std::max<std::uint64_t>(
            4096, static_cast<std::uint64_t>(
                      static_cast<double>(layout.chunk_size) * r.fraction *
                      extent_fraction));
        const sim::SimTime t_read = osd_read(
            pg.acting[r.chunk], bytes, r.subchunk_ios,
            qos_submit_delay(qos::OpClass::kClient, pg.acting[r.chunk],
                             bytes));
        engine_.schedule_at(t_read, [this, bytes, hhost, phost, op] {
          const sim::SimTime t_tx = hhost->nic.send(engine_, bytes, 1);
          engine_.schedule_at(t_tx, [this, bytes, phost, op] {
            const sim::SimTime t_rx = phost->nic.recv(engine_, bytes, 1);
            engine_.schedule_at(t_rx, [this, op] {
              if (--op->pending != 0) return;
              Osd& p = *osds_[static_cast<std::size_t>(op->primary)];
              const sim::SimTime t_cpu = p.cpu.compute(
                  engine_, config_.client.op_bytes, op->decode_cost_factor);
              engine_.schedule_at(t_cpu,
                                  [this, op] { finish_client_op(op); },
                                  sim::EventTag::kClient);
            }, sim::EventTag::kClient);
          }, sim::EventTag::kClient);
        }, sim::EventTag::kClient);
      }
    }
  } else {
    // Full-stripe write: encode at the primary, push all n shards.
    ClientOp* op = client_op_pool_.acquire();
    op->start = engine_.now();
    op->kind = ClientOp::Kind::kWrite;
    const sim::SimTime t_cpu =
        osds_[static_cast<std::size_t>(primary)]->cpu.compute(engine_,
                                                              c.op_bytes, 1.0);
    engine_.schedule_at(t_cpu, [this, pgid, op, phost] {
      Pg& pg2 = *pgs_[static_cast<std::size_t>(pgid)];
      const auto shard_bytes = std::max<std::uint64_t>(
          4096, config_.client.op_bytes / code_->k());
      sim::SimTime done = engine_.now();
      for (std::size_t pos = 0; pos < pg2.acting.size(); ++pos) {
        if (!osd_alive(pg2.acting[pos])) continue;
        done = std::max(
            done,
            osd_write(pg2.acting[pos], shard_bytes, 1,
                      qos_submit_delay(qos::OpClass::kClient,
                                       pg2.acting[pos], shard_bytes)));
      }
      done = std::max(done, phost->nic.send(engine_, config_.client.op_bytes, 2));
      engine_.schedule_at(done, [this, op] { finish_client_op(op); },
                          sim::EventTag::kClient);
    }, sim::EventTag::kClient);
  }
}

}  // namespace ecf::cluster
