// Foreground client-load generator: replays read/write ops against the
// pool while the experiment runs. Reads of shards on dead OSDs degrade
// into inline reconstructions (gather k survivors, decode at the primary),
// so failures surface as client latency — and client traffic competes with
// recovery for the same disks and NICs.
#include <algorithm>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/impl_types.h"
#include "ec/stripe.h"
#include "util/bytes.h"

namespace ecf::cluster {

void Cluster::start_client_load() {
  if (config_.client.ops_per_s <= 0) return;
  if (!workload_applied_) throw std::logic_error("apply_workload first");
  issue_client_op();
}

void Cluster::issue_client_op() {
  const auto& cc = config_.client;
  if (engine_.now() >= cc.horizon_s) return;
  // Poisson arrivals.
  util::Rng op_rng = rng_.child(0xC11E57 ^ static_cast<std::uint64_t>(
                                               engine_.now() * 1e6) ^
                                report_.client_ops);
  const double gap = op_rng.exponential(1.0 / cc.ops_per_s);
  engine_.schedule(gap, [this] {
    const auto& c = config_.client;
    util::Rng rng = rng_.child(0x0D0A ^ report_.client_ops);
    const auto pgid = static_cast<PgId>(
        rng.uniform(static_cast<std::uint64_t>(config_.pool.pg_num)));
    Pg& pg = *pgs_[static_cast<std::size_t>(pgid)];
    const double start = engine_.now();
    ++report_.client_ops;

    const bool is_read = rng.uniform01() < c.read_fraction;
    const ec::StripeLayout layout = ec::compute_stripe_layout(
        config_.workload.object_size, code_->n(), code_->k(),
        config_.pool.stripe_unit);
    const OsdId primary = primary_of(pg);
    if (primary == kNoOsd) {
      issue_client_op();
      return;
    }
    Host* phost = hosts_[static_cast<std::size_t>(
                             osds_[static_cast<std::size_t>(primary)]->host)]
                      .get();

    auto finish = [this, start](sim::SimTime done) {
      const double latency = done - start;
      report_.client_latency_sum += latency;
      report_.client_latency_max =
          std::max(report_.client_latency_max, latency);
    };

    if (is_read) {
      // Read c.op_bytes: lands on ceil(op/su) consecutive data shards.
      const std::size_t shards = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(
                 code_->k(),
                 util::ceil_div(c.op_bytes, config_.pool.stripe_unit)));
      bool degraded = false;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t pos = rng.uniform(code_->k());
        if (!osd_alive(pg.acting[pos])) degraded = true;
      }
      if (!degraded) {
        // Normal path: shard reads in parallel, reply through the primary.
        sim::SimTime done = engine_.now();
        const std::uint64_t per_shard = c.op_bytes / shards;
        for (std::size_t s = 0; s < shards; ++s) {
          const std::size_t pos = rng.uniform(code_->k());
          Osd& o = *osds_[static_cast<std::size_t>(pg.acting[pos])];
          const auto& store = o.store;
          const auto bytes = static_cast<std::uint64_t>(
              static_cast<double>(per_shard) * (1.0 - store.data_hit_rate()));
          done = std::max(done, osd_read(pg.acting[pos], bytes, 1));
        }
        done = std::max(done, phost->nic.send(engine_, c.op_bytes, 1));
        engine_.schedule_at(done, [finish, this] { finish(engine_.now()); },
                            sim::EventTag::kClient);
      } else {
        // Degraded read: gather per the code's repair plan and decode
        // inline. Clay turns this into a sub-chunk gather; RS reads k full
        // shard extents.
        ++report_.degraded_reads;
        std::vector<std::size_t> dead;
        for (std::size_t pos = 0; pos < pg.acting.size(); ++pos) {
          if (!osd_alive(pg.acting[pos])) dead.push_back(pos);
        }
        const ec::RepairPlan plan = code_->repair_plan(dead);
        const double extent_fraction =
            static_cast<double>(c.op_bytes) /
            static_cast<double>(layout.chunk_size * code_->k());
        auto pending = std::make_shared<std::size_t>(plan.reads.size());
        for (const auto& r : plan.reads) {
          Osd& helper = *osds_[static_cast<std::size_t>(pg.acting[r.chunk])];
          Host* hhost =
              hosts_[static_cast<std::size_t>(helper.host)].get();
          const auto bytes = std::max<std::uint64_t>(
              4096, static_cast<std::uint64_t>(
                        static_cast<double>(layout.chunk_size) * r.fraction *
                        extent_fraction));
          const sim::SimTime t_read =
              osd_read(pg.acting[r.chunk], bytes, r.subchunk_ios);
          engine_.schedule_at(t_read, [this, bytes, hhost, phost, pending,
                                       finish, primary, plan] {
            const sim::SimTime t_tx = hhost->nic.send(engine_, bytes, 1);
            engine_.schedule_at(t_tx, [this, bytes, phost, pending, finish,
                                       primary, plan] {
              const sim::SimTime t_rx = phost->nic.recv(engine_, bytes, 1);
              engine_.schedule_at(t_rx, [this, pending, finish, primary,
                                         plan] {
                if (--*pending != 0) return;
                Osd& p = *osds_[static_cast<std::size_t>(primary)];
                const sim::SimTime t_cpu = p.cpu.compute(
                    engine_, config_.client.op_bytes, plan.decode_cost_factor);
                engine_.schedule_at(t_cpu,
                                    [finish, this] { finish(engine_.now()); },
                                    sim::EventTag::kClient);
              }, sim::EventTag::kClient);
            }, sim::EventTag::kClient);
          }, sim::EventTag::kClient);
        }
      }
    } else {
      // Full-stripe write: encode at the primary, push all n shards.
      const sim::SimTime t_cpu =
          osds_[static_cast<std::size_t>(primary)]->cpu.compute(engine_,
                                                                c.op_bytes, 1.0);
      engine_.schedule_at(t_cpu, [this, pgid, finish, phost] {
        Pg& pg2 = *pgs_[static_cast<std::size_t>(pgid)];
        const auto shard_bytes = std::max<std::uint64_t>(
            4096, config_.client.op_bytes / code_->k());
        sim::SimTime done = engine_.now();
        for (std::size_t pos = 0; pos < pg2.acting.size(); ++pos) {
          if (!osd_alive(pg2.acting[pos])) continue;
          done = std::max(done, osd_write(pg2.acting[pos], shard_bytes, 1));
        }
        done = std::max(done, phost->nic.send(engine_, config_.client.op_bytes, 2));
        engine_.schedule_at(done, [finish, this] { finish(engine_.now()); },
                            sim::EventTag::kClient);
      }, sim::EventTag::kClient);
    }
    issue_client_op();
  }, sim::EventTag::kClient);
}

}  // namespace ecf::cluster
