// Silent-corruption faults and the deep-scrub process that finds and
// repairs them.
//
// Extension beyond the paper's node/device fault levels, grounded in the
// failure-mode literature it cites (CORDS-style corruption, SSD field
// studies): a corruption fault flips bits in stored shards without any
// error surfacing — BlueStore's per-unit checksums only catch it when the
// shard is actually read. Deep scrub walks one PG per tick, reads every
// shard (low-priority, like recovery I/O), verifies checksums, and repairs
// inconsistent shards in place from k healthy peers.
#include <algorithm>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/impl_types.h"
#include "ec/stripe.h"
#include "util/bytes.h"
#include "util/hotpath.h"

namespace ecf::cluster {

std::uint64_t Cluster::corrupt_chunks(OsdId osd_id, double fraction) {
  // Fault-injection contract checks: cold (once per corruption fault) and
  // part of the tested API surface.
  if (!workload_applied_) throw std::logic_error("apply_workload first");  // ecf-analyze: allow(event-throw)
  if (fraction <= 0 || fraction > 1.0) {
    throw std::invalid_argument(  // ecf-analyze: allow(event-throw)
        "corrupt_chunks: fraction in (0,1] required");
  }
  util::Rng rng = rng_.child(0xBADC0DE ^ static_cast<std::uint64_t>(osd_id));
  std::uint64_t planted = 0;
  for (auto& pg_ptr : pgs_) {
    Pg& pg = *pg_ptr;
    const auto it = std::find(pg.acting.begin(), pg.acting.end(), osd_id);
    if (it == pg.acting.end() || pg.num_objects == 0) continue;
    const auto position =
        static_cast<std::size_t>(it - pg.acting.begin());
    std::uint64_t hit = 0;
    for (std::uint64_t obj = 0; obj < pg.num_objects; ++obj) {
      if (rng.bernoulli(fraction)) ++hit;
    }
    if (hit == 0) continue;
    // Sorted-vector insert-or-add (position order = scrub repair order).
    auto where = std::lower_bound(
        pg.corrupted.begin(), pg.corrupted.end(), position,
        [](const auto& entry, std::size_t pos) { return entry.first < pos; });
    if (where != pg.corrupted.end() && where->first == position) {
      where->second += hit;
    } else {
      pg.corrupted.insert(where, {position, hit});  ECF_ALLOC_OK("cold: corruption planting, once per (PG, position)");
    }
    planted += hit;
  }
  report_.corruptions_injected += planted;
  log("osd." + std::to_string(osd_id), "osd",
      "silent corruption planted on " + std::to_string(planted) +
          " stored shards (no error raised)");
  return planted;
}

void Cluster::start_scrub() {
  if (!config_.scrub.enabled) return;
  if (!workload_applied_) throw std::logic_error("apply_workload first");
  engine_.schedule(config_.scrub.interval_s, [this] { scrub_tick(0); },
                   sim::EventTag::kScrub);
}

void Cluster::scrub_tick(PgId next) {
  if (next >= static_cast<PgId>(pgs_.size())) {
    // Full pass complete; scrubbing is continuous in Ceph, but the
    // simulation stops after the configured number of passes.
    if (++scrub_passes_done_ < config_.scrub.max_passes) {
      engine_.schedule(config_.scrub.interval_s, [this] { scrub_tick(0); },
                       sim::EventTag::kScrub);
    }
    return;
  }
  Pg& pg = *pgs_[static_cast<std::size_t>(next)];
  ++report_.pgs_scrubbed;

  const ec::StripeLayout layout = ec::compute_stripe_layout(
      config_.workload.object_size, code_->n(), code_->k(),
      config_.pool.stripe_unit);
  const std::uint64_t per_chunk = config_.scrub.scrub_bytes_per_chunk == 0
                                      ? layout.chunk_size
                                      : config_.scrub.scrub_bytes_per_chunk;

  // Deep scrub reads every live shard of every object in the PG at
  // recovery priority; completion when the slowest shard read finishes.
  sim::SimTime done = engine_.now();
  for (const OsdId member : pg.acting) {
    if (!osd_alive(member)) continue;
    const std::uint64_t bytes = per_chunk * pg.num_objects;
    const std::uint64_t ios = std::max<std::uint64_t>(
        1, util::ceil_div(bytes, config_.protocol.max_io_bytes));
    done = std::max(done,
                    osd_read(member, bytes, ios,
                             queue_extra_s(qos::OpClass::kScrub) +
                                 qos_submit_delay(qos::OpClass::kScrub,
                                                  member, bytes)));
  }

  const PgId pgid = pg.id;
  sim::Engine::LaneScope lane(engine_, 0x50470000ull +
                                           static_cast<std::uint64_t>(pgid));
  engine_.schedule_at(done, [this, pgid] {
    Pg& p = *pgs_[static_cast<std::size_t>(pgid)];
    if (!p.corrupted.empty()) {
      std::uint64_t found = 0;
      for (const auto& [position, count] : p.corrupted) found += count;
      report_.corruptions_found += found;
      log(osd_name_for_scrub(pgid), "scrub",
          "deep-scrub pg " + std::to_string(pgid) + ": " +
              std::to_string(found) + " inconsistent shards found");
      // Repair position by position (in-place rewrite from k peers).
      for (const auto& [position, count] : p.corrupted) {
        for (std::uint64_t i = 0; i < count; ++i) {
          repair_corrupted_shard(pgid, position);
        }
      }
      p.corrupted.clear();
    }
    // Next PG after the inter-PG interval.
    engine_.schedule(config_.scrub.interval_s,
                     [this, pgid] { scrub_tick(pgid + 1); },
                     sim::EventTag::kScrub);
  }, sim::EventTag::kScrub);
}

std::string Cluster::osd_name_for_scrub(PgId pg) const {
  const Pg& p = *pgs_[static_cast<std::size_t>(pg)];
  const OsdId primary = primary_of(p);
  return "osd." + std::to_string(primary == kNoOsd ? 0 : primary);
}

void Cluster::repair_corrupted_shard(PgId pgid, std::size_t position) {
  Pg& pg = *pgs_[static_cast<std::size_t>(pgid)];
  const ec::StripeLayout layout = ec::compute_stripe_layout(
      config_.workload.object_size, code_->n(), code_->k(),
      config_.pool.stripe_unit);
  const std::uint64_t chunk = util::round_up(
      layout.chunk_size, static_cast<std::uint64_t>(code_->alpha()));

  // Read per the code's single-erasure plan (the corrupted shard counts as
  // erased even though its OSD is healthy), decode at the primary, rewrite
  // the shard in place.
  const ec::RepairPlan plan = code_->repair_plan({position});
  const OsdId primary = primary_of(pg);
  const OsdId target = pg.acting[position];
  if (primary == kNoOsd || !osd_alive(target)) return;
  Host* phost = hosts_[static_cast<std::size_t>(
                           osds_[static_cast<std::size_t>(primary)]->host)]
                    .get();

  auto pending = std::make_shared<std::size_t>(plan.reads.size());  ECF_ALLOC_OK("cold: per corrupted-shard repair");
  for (const auto& r : plan.reads) {
    if (!osd_alive(pg.acting[r.chunk])) {
      --*pending;
      continue;
    }
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(chunk) * r.fraction);
    const sim::SimTime t_read =
        osd_read(pg.acting[r.chunk], bytes, 1,
                 queue_extra_s(qos::OpClass::kScrub) +
                     qos_submit_delay(qos::OpClass::kScrub, pg.acting[r.chunk],
                                      bytes));
    engine_.schedule_at(t_read, [this, pending, bytes, phost, pgid, position,
                                 target, chunk, primary, plan] {
      phost->nic.recv(engine_, bytes, 1);
      if (--*pending != 0) return;
      Osd& p = *osds_[static_cast<std::size_t>(primary)];
      const sim::SimTime t_cpu =
          p.cpu.compute(engine_, chunk, plan.decode_cost_factor);
      engine_.schedule_at(t_cpu, [this, pgid, target, chunk] {
        const sim::SimTime t_wr =
            osd_write(target, chunk, 2,
                      queue_extra_s(qos::OpClass::kScrub) +
                          qos_submit_delay(qos::OpClass::kScrub, target,
                                           chunk));
        engine_.schedule_at(t_wr, [this, pgid] {
          ++report_.corruptions_repaired;
          log(osd_name_for_scrub(pgid), "scrub",
              "pg " + std::to_string(pgid) +
                  " inconsistent shard repaired in place");
        }, sim::EventTag::kScrub);
      }, sim::EventTag::kScrub);
    }, sim::EventTag::kScrub);
  }
}

}  // namespace ecf::cluster
