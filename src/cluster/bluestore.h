// BlueStore model: on-disk space accounting and the three-segment cache.
//
// Two roles:
//
//  1. Write-amplification accounting (Table 3). Every EC chunk write costs
//     more than its payload: allocation rounding to min_alloc_size, the
//     onode + extent metadata written through RocksDB (with its own write
//     amplification), the EC shard attributes (hash info), and a PG-log
//     entry. stored_bytes() is what `ceph osd df` would report and is what
//     the paper divides by the workload's write size to get the
//     "Actual WA Factor".
//
//  2. The cache model behind Fig. 2a. BlueStore partitions its cache into
//     KV (RocksDB block cache), metadata (onodes) and data segments by
//     ratio; autotune resizes the ratios. Hit rates follow the classic
//     size/working-set approximation: a segment holding c bytes of a
//     working set of w bytes hits with probability min(1, c/w). Recovery
//     and peering consult these hit rates to decide how much of their
//     reads actually reach the disk.
#pragma once

#include <cstdint>

#include "cluster/config.h"

namespace ecf::cluster {

class BlueStore {
 public:
  BlueStore(const StoreConfig& store, const CacheConfig& cache)
      : store_(store), cache_(cache) {}

  // Account an EC chunk write of `payload` bytes (already padded to the
  // stripe unit by the pool write path). Returns bytes added to the device.
  std::uint64_t write_chunk(std::uint64_t payload);

  // Account removal (used when a recovered chunk supersedes a degraded
  // one elsewhere; not exercised by the paper's experiments).
  void remove_chunk(std::uint64_t payload);

  // --- space accounting ----------------------------------------------------
  std::uint64_t stored_bytes() const { return data_bytes_ + meta_bytes_; }
  std::uint64_t data_bytes() const { return data_bytes_; }      // incl. padding/alloc
  std::uint64_t meta_bytes() const { return meta_bytes_; }
  std::uint64_t onode_count() const { return onode_count_; }

  // --- cache model -----------------------------------------------------------
  // Current effective ratios (autotune may have resized them).
  double kv_ratio() const {
    ensure_ratios();
    return kv_ratio_;
  }
  double meta_ratio() const {
    ensure_ratios();
    return meta_ratio_;
  }
  double data_ratio() const {
    ensure_ratios();
    return data_ratio_;
  }

  // Working sets the segments compete over.
  std::uint64_t kv_working_set() const;
  std::uint64_t meta_working_set() const;
  std::uint64_t data_working_set() const { return data_bytes_; }

  double kv_hit_rate() const;
  double meta_hit_rate() const;
  double data_hit_rate() const;

  // One autotune resizing step: ratios move toward the segments' relative
  // working-set demand, with KV/meta prioritized over data (BlueStore's
  // autotuner assigns data the remainder). No-op when autotune is off.
  void autotune_step();

  // Test-only raw mutator: sets the effective ratios without validation so
  // negative tests can plant a broken partition split for the invariant
  // checker to catch. Production code must never call this.
  void override_ratios(double kv, double meta, double data);

  const CacheConfig& cache_config() const { return cache_; }

 private:
  StoreConfig store_;
  CacheConfig cache_;
  double kv_ratio_ = -1;    // lazily initialized from cache_ on first use
  double meta_ratio_ = -1;
  double data_ratio_ = -1;
  std::uint64_t data_bytes_ = 0;
  std::uint64_t meta_bytes_ = 0;
  std::uint64_t onode_count_ = 0;

  void ensure_ratios() const;
  mutable bool ratios_init_ = false;
};

}  // namespace ecf::cluster
