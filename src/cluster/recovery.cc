// Failure detection, peering ("system checking period") and EC recovery —
// the protocol half of the Cluster simulator. See cluster.h for the
// pipeline overview.
#include <algorithm>
#include <cmath>

#include "cluster/cluster.h"
#include "cluster/impl_types.h"
#include "ec/ecdag.h"
#include "ec/stripe.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/hotpath.h"

namespace ecf::cluster {

namespace {
std::string osd_name(OsdId o) { return "osd." + std::to_string(o); }
}  // namespace

void Cluster::on_device_removed(OsdId osd) { schedule_detection(osd); }

void Cluster::schedule_detection(OsdId osd_id) {
  // Peers notice missing heartbeats after the grace period; the extra
  // jitter is the heartbeat phase. OSDs of one host share the host's phase
  // (their peers' timers expire together when the host's traffic stops),
  // plus a small per-OSD offset — so co-located failures are detected in
  // one monitor batch while failures on different hosts straggle across
  // batches. Fig. 2d's locality asymmetry starts here.
  const Osd& osd = *osds_[static_cast<std::size_t>(osd_id)];
  const Host& host = *hosts_[static_cast<std::size_t>(osd.host)];
  const double jitter = host.hb_phase *
                            config_.protocol.heartbeat_interval_s *
                            config_.protocol.detection_spread_factor +
                        osd.hb_offset;
  // Detection + the monitor machinery it kicks off stay in the host's lane.
  sim::Engine::LaneScope lane(engine_, 0x484F5400ull +
                                           static_cast<std::uint64_t>(osd.host));
  engine_.schedule(config_.protocol.heartbeat_grace_s + jitter,
                   [this, osd_id] { mark_down(osd_id); },
                   sim::EventTag::kHeartbeat);
}

void Cluster::mark_down(OsdId osd_id) {
  Osd& osd = *osds_[static_cast<std::size_t>(osd_id)];
  if (osd.marked_down) return;
  osd.marked_down = true;
  if (report_.detection_time < 0) report_.detection_time = ecf::util::SimSec(engine_.now());
  log("mon.0", "mon",
      osd_name(osd_id) + " reported failed by peers; marked down (failure detected)");
  log("mgr.0", "mgr", "receiving heartbeats; cluster health degraded");
  std::size_t degraded = 0;
  for (auto& pg : pgs_) {
    if (std::find(pg->acting.begin(), pg->acting.end(), osd_id) !=
        pg->acting.end()) {
      if (pg->state == PgState::kActiveClean) pg->state = PgState::kDegraded;
      ++degraded;
    }
  }
  log("mgr.0", "mgr",
      std::to_string(degraded) + " pgs degraded after " + osd_name(osd_id) +
          " down");
  emit_checking_logs(osd_id,
                     engine_.now() + config_.protocol.down_out_interval_s);
  // The monitor waits mon_osd_down_out_interval before declaring the OSD
  // out and remapping its data — the bulk of the paper's "system checking
  // period".
  engine_.schedule(config_.protocol.down_out_interval_s, [this, osd_id] {
    pending_out_.push_back(osd_id);  ECF_ALLOC_OK("cold: once per failed OSD");
    if (!out_batch_scheduled_) {
      out_batch_scheduled_ = true;
      engine_.schedule(config_.protocol.mon_tick_s, [this] {
        out_batch_scheduled_ = false;
        std::vector<OsdId> batch;
        batch.swap(pending_out_);
        mark_out_batch(std::move(batch));
      }, sim::EventTag::kMonitor);
    }
  }, sim::EventTag::kMonitor);
}

void Cluster::emit_checking_logs(OsdId osd_id, double until) {
  // Periodic health-check chatter during the checking window, mirroring
  // the log keywords the paper's Fig. 3 timeline is built from.
  const double interval = 60.0;
  for (double t = engine_.now() + interval; t < until; t += interval) {
    engine_.schedule_at(t, [this, osd_id] {
      log("mgr.0", "mgr", "receiving heartbeats; " + osd_name(osd_id) +
                              " still down, awaiting out interval");
      log(osd_name(osd_id == 0 ? 1 : 0), "osd", "check recovery resource");
    }, sim::EventTag::kMonitor);
  }
}

void Cluster::mark_out_batch(std::vector<OsdId> batch) {
  if (batch.empty()) return;
  publish_epoch(batch);
}

void Cluster::publish_epoch(const std::vector<OsdId>& newly_out) {
  ++epoch_;
  ++report_.epochs_published;
  for (const OsdId o : newly_out) {
    osds_[static_cast<std::size_t>(o)]->marked_out = true;
    alive_[static_cast<std::size_t>(o)] = false;
    log("mon.0", "mon",
        osd_name(o) + " marked out; osdmap epoch " + std::to_string(epoch_));
  }

  for (auto& pg_ptr : pgs_) {
    Pg& pg = *pg_ptr;
    // Positions newly lost in this epoch. Scratch buffer: this loop runs
    // over every PG per epoch, so per-PG vectors here would be the
    // dominant allocation of the checking period.
    std::vector<std::size_t>& new_positions = scratch_positions_;
    new_positions.clear();
    for (std::size_t pos = 0; pos < pg.acting.size(); ++pos) {
      if (std::find(newly_out.begin(), newly_out.end(), pg.acting[pos]) !=
          newly_out.end()) {
        new_positions.push_back(pos);
      }
    }
    if (new_positions.empty()) continue;

    // Remap each lost chunk to a fresh target, respecting the failure
    // domain against the surviving members and earlier remaps.
    std::vector<OsdId>& occupied = scratch_occupied_;
    occupied.clear();
    for (std::size_t pos = 0; pos < pg.acting.size(); ++pos) {
      if (alive_[static_cast<std::size_t>(pg.acting[pos])]) {
        occupied.push_back(pg.acting[pos]);
      }
    }
    for (const OsdId t : pg.remap_targets) occupied.push_back(t);
    for (const std::size_t pos : new_positions) {
      const auto where = std::upper_bound(pg.missing_positions.begin(),
                                          pg.missing_positions.end(), pos);
      const auto idx = static_cast<std::size_t>(
          where - pg.missing_positions.begin());
      pg.missing_positions.insert(where, pos);  ECF_ALLOC_OK("bounded: <= n shard positions per PG");
      const OsdId target = crush_->remap_target(pg.id, occupied, alive_);
      pg.remap_targets.insert(  ECF_ALLOC_OK("bounded: <= n remap targets per PG")
          pg.remap_targets.begin() + static_cast<std::ptrdiff_t>(idx), target);
      occupied.push_back(target);
    }

    // Interrupt any in-flight recovery: the osdmap change forces the PG
    // back through peering and invalidates in-flight pushes. This is where
    // staggered (different-host) failures waste work. The discarded ops are
    // requeued here and counted as wasted when their stale completions (or
    // pre-issue checks) fire.
    if (pg.inflight > 0) {
      if (!pg.work.empty()) {
        pg.work.front().remaining += static_cast<std::uint64_t>(pg.inflight);
      } else {
        Pg::WorkItem item;
        item.positions = pg.missing_positions;
        item.remaining = static_cast<std::uint64_t>(pg.inflight);
        pg.work.push_back(std::move(item));  ECF_ALLOC_OK("cold: one work item per PG per epoch");
      }
      pg.inflight = 0;
    }
    ++pg.generation;
    if (pg.reserved) release_reservation(pg);

    // Fold the new losses into the pending work queue.
    for (auto& item : pg.work) {
      for (const std::size_t pos : new_positions) {
        if (std::find(item.positions.begin(), item.positions.end(), pos) ==
            item.positions.end()) {
          item.positions.insert(  ECF_ALLOC_OK("bounded: <= n positions per work item")
              std::upper_bound(item.positions.begin(), item.positions.end(),
                               pos),
              pos);
        }
      }
    }
    if (pg.repaired_current > 0 || pg.work.empty()) {
      Pg::WorkItem item;
      item.positions = new_positions;
      item.remaining = pg.work.empty() && pg.repaired_current == 0
                           ? pg.num_objects
                           : pg.repaired_current;
      pg.repaired_current = 0;
      if (item.remaining > 0) pg.work.push_back(std::move(item));  ECF_ALLOC_OK("cold: one work item per PG per epoch");
    }

    if (!pg.counted_recovering) {
      pg.counted_recovering = true;
      ++pgs_recovering_;
    }
    pg.logged_first_io = false;
    start_peering(pg);
  }
  maybe_finish_recovery();
}

void Cluster::start_peering(Pg& pg) {
  pg.state = PgState::kPeering;
  const OsdId primary = primary_of(pg);
  if (primary == kNoOsd) {
    // All members lost — unrecoverable; the fault injector's tolerance
    // guard makes this unreachable in experiments.
    log("mon.0", "mon", "pg " + std::to_string(pg.id) + " lost (no survivors)");
    finish_pg(pg);
    return;
  }
  log(osd_name(primary), "pg",
      "pg " + std::to_string(pg.id) +
          " start peering: collecting infos and logs from acting set");

  Osd& posd = *osds_[static_cast<std::size_t>(primary)];
  Host& phost = *hosts_[static_cast<std::size_t>(posd.host)];
  const auto& proto = config_.protocol;

  // Message rounds with the acting set.
  const double rtt_cost = proto.peering_rounds * proto.peering_rtt_s;
  phost.nic.send(engine_, 64 * util::KiB * pg.acting.size(),
                 pg.acting.size());

  // PG log / missing-set scan at the primary: RocksDB reads, kv-cache
  // dependent (this is one of the Fig. 2a levers).
  const double kv_miss = 1.0 - posd.store.kv_hit_rate();
  const auto kv_bytes = static_cast<std::uint64_t>(
      static_cast<double>(pg.num_objects) *
      static_cast<double>(proto.peering_kv_bytes_per_object) * kv_miss);
  const auto kv_ios = static_cast<std::uint64_t>(
      static_cast<double>(pg.num_objects) * kv_miss);
  sim::SimTime t_disk = engine_.now();
  if (kv_bytes > 0) {
    t_disk = osd_read(primary, kv_bytes, std::max<std::uint64_t>(1, kv_ios));
  }
  // Sub-packetized pools track per-sub-chunk shard extents, making the
  // log/missing scan heavier (visible at pg_num=1, where one primary scans
  // every object).
  const double subchunk_factor =
      code_->alpha() > 1
          ? 1.0 + std::log2(static_cast<double>(code_->alpha())) / 2.0
          : 1.0;
  const sim::SimTime t_cpu = posd.cpu.busy_for(
      engine_, static_cast<double>(pg.num_objects) *
                   proto.peering_per_object_cpu_s * subchunk_factor);

  const sim::SimTime done = std::max(t_disk, t_cpu) + rtt_cost;
  const int gen = pg.generation;
  PgId pgid = pg.id;
  // The peering completion — and through it the whole reservation/repair
  // chain — runs in the PG's lane.
  sim::Engine::LaneScope lane(engine_, 0x50470000ull +
                                           static_cast<std::uint64_t>(pgid));
  engine_.schedule_at(done, [this, pgid, gen] {
    Pg& p = *pgs_[static_cast<std::size_t>(pgid)];
    if (p.generation != gen) return;  // superseded by a newer epoch
    finish_peering(p);
  }, sim::EventTag::kRecovery);
}

void Cluster::finish_peering(Pg& pg) {
  const OsdId primary = primary_of(pg);
  std::uint64_t missing_objects = 0;
  for (const auto& item : pg.work) missing_objects += item.remaining;
  log(osd_name(primary), "pg",
      "pg " + std::to_string(pg.id) + " peering complete: collecting missing OSDs, queueing recovery (" +
          std::to_string(missing_objects) + " objects, " +
          std::to_string(pg.missing_positions.size()) + " shards)");
  pg.state = PgState::kWaitReservation;
  try_reserve(pg);
}

void Cluster::try_reserve(Pg& pg) {
  if (pg.reserved || pg.state != PgState::kWaitReservation) return;
  const OsdId primary = primary_of(pg);
  if (primary == kNoOsd) {
    finish_pg(pg);
    return;
  }
  // Local + remote recovery reservations: the primary, every distinct
  // remap target, and (with reserve_remote_shards) the surviving shards
  // all need a free backfill slot (osd_max_backfills). Scratch buffer —
  // try_reserve runs once per PG per release tick, so a fresh vector here
  // would be the hottest allocation in contended recovery.
  std::vector<OsdId>& needed = scratch_needed_;
  needed.clear();
  needed.push_back(primary);
  for (const OsdId t : pg.remap_targets) {
    if (t != kNoOsd &&
        std::find(needed.begin(), needed.end(), t) == needed.end()) {
      needed.push_back(t);
    }
  }
  if (config_.protocol.reserve_remote_shards) {
    for (const OsdId o : pg.acting) {
      if (osd_alive(o) &&
          std::find(needed.begin(), needed.end(), o) == needed.end()) {
        needed.push_back(o);
      }
    }
  }
  for (const OsdId o : needed) {
    if (osds_[static_cast<std::size_t>(o)]->backfills_in_use >=
        config_.protocol.osd_max_backfills) {
      return;  // wait; retried on every release
    }
  }
  for (const OsdId o : needed) {
    ++osds_[static_cast<std::size_t>(o)]->backfills_in_use;
  }
  pg.reserved = true;
  pg.reserved_primary = primary;
  pg.reserved_targets.assign(needed.begin(), needed.end());
  pg.state = PgState::kRecovering;
  log(osd_name(primary), "pg",
      "pg " + std::to_string(pg.id) + " recovery reservation granted");
  // Remote handshakes + backfill scan startup before the first push.
  const int gen = pg.generation;
  const PgId pgid = pg.id;
  sim::Engine::LaneScope lane(engine_, 0x50470000ull +
                                           static_cast<std::uint64_t>(pgid));
  engine_.schedule(config_.protocol.reservation_grant_delay_s,
                   [this, pgid, gen] {
                     Pg& p = *pgs_[static_cast<std::size_t>(pgid)];
                     if (p.generation != gen) return;
                     pump_recovery(p);
                   },
                   sim::EventTag::kRecovery);
}

void Cluster::release_reservation(Pg& pg) {
  if (!pg.reserved) return;
  for (const OsdId o : pg.reserved_targets) {
    --osds_[static_cast<std::size_t>(o)]->backfills_in_use;
  }
  pg.reserved = false;
  pg.reserved_targets.clear();
  // Wake up waiting PGs — most-degraded first, like Ceph's forced-recovery
  // priority: a PG with several missing shards sits closest to data loss
  // (and, for EC pools, to dropping below min_size), so it must not starve
  // behind a queue of single-loss PGs.
  // Scratch buffer. Reuse is safe against reentrancy: try_reserve below
  // can reach release_reservation again only through finish_pg on a
  // kWaitReservation PG, which is never reserved, so the nested call
  // early-returns before touching the buffer.
  std::vector<Pg*>& waiting = scratch_waiting_;
  waiting.clear();
  for (auto& other : pgs_) {
    if (other->state == PgState::kWaitReservation) waiting.push_back(other.get());
  }
  std::stable_sort(waiting.begin(), waiting.end(), [](const Pg* a, const Pg* b) {
    return a->missing_positions.size() > b->missing_positions.size();
  });
  for (Pg* other : waiting) try_reserve(*other);
}

void Cluster::pump_recovery(Pg& pg) {
  if (pg.state != PgState::kRecovering) return;
  while (pg.inflight < config_.protocol.osd_recovery_max_active) {
    // Find the first item with work left.
    while (!pg.work.empty() && pg.work.front().remaining == 0) {
      pg.work.erase(pg.work.begin());
    }
    if (pg.work.empty()) break;
    start_object_repair(pg);
  }
  if (pg.work.empty() && pg.inflight == 0) finish_pg(pg);
}

Cluster::RepairShape Cluster::compute_repair_shape(const Pg& pg) const {
  // Reads cover the union of missing positions (the repair must avoid all
  // dead shards); the caller narrows writes to the item's positions.
  RepairShape shape;
  const ec::StripeLayout layout = ec::compute_stripe_layout(
      config_.workload.object_size, code_->n(), code_->k(),
      config_.pool.stripe_unit);
  shape.chunk_size =
      util::round_up(layout.chunk_size, static_cast<std::uint64_t>(code_->alpha()));

  // Load-aware helper selection: rank survivors by live congestion and
  // let the code pick its helper subset in that order (codes without
  // helper choice ignore the preference). The ranked DAG drives both the
  // flat plan and (below) the staged lowering, so the two views agree.
  const bool ranked = config_.helper_selection.enabled;
  ec::RepairDag ranked_dag;
  ec::RepairPlan plan;
  if (ranked) {
    ranked_dag =
        code_->repair_dag_ranked(pg.missing_positions, helper_preference(pg));
    plan = ranked_dag.to_repair_plan();
  } else {
    plan = code_->repair_plan(pg.missing_positions);
  }
  shape.decode_cost_factor = plan.decode_cost_factor;
  shape.fetch_stages = plan.fetch_stages;
  // Sub-packetized decode cost: the coupled-layer engine performs a GF
  // region operation per (plane, node) pair per encoding unit; with tiny
  // sub-chunks the per-call overhead dominates the byte work (the Fig. 2c
  // Clay-at-4KiB pathology).
  if (code_->alpha() > 1) {
    const double region_ops =
        static_cast<double>(layout.units_per_chunk) *
        static_cast<double>(code_->alpha()) * static_cast<double>(code_->n());
    // Region-call overhead plus per-sub-chunk orchestration (sub-chunk
    // range lists, bufferlist assembly, messenger segments) that scales
    // with α but not with the chunk's unit count.
    shape.decode_extra_s =
        region_ops * config_.hw.cpu.gf_region_op_seconds +
        static_cast<double>(code_->alpha()) *
            static_cast<double>(code_->n()) * 10e-6;
  }
  const auto& proto = config_.protocol;
  for (const auto& r : plan.reads) {
    RepairShape::HelperRead hr;
    hr.osd = pg.acting[r.chunk];
    hr.bytes = static_cast<std::uint64_t>(
        static_cast<double>(shape.chunk_size) * r.fraction);
    const auto& store = osds_[static_cast<std::size_t>(hr.osd)]->store;
    hr.disk_bytes = static_cast<std::uint64_t>(
        static_cast<double>(hr.bytes) * (1.0 - store.data_hit_rate()));
    if (r.subchunk_ios > 1) {
      // Sub-packetized read: `subchunk_ios` scattered runs inside every
      // encoding unit of the chunk.
      hr.ios = layout.units_per_chunk * r.subchunk_ios;
    } else {
      hr.ios = std::max<std::uint64_t>(
          1, util::ceil_div(hr.bytes, proto.max_io_bytes));
    }
    // Onode + EC hash-info lookups at the helper; misses hit RocksDB on
    // the same device.
    const double meta_miss = 1.0 - store.meta_hit_rate();
    hr.ios += static_cast<std::uint64_t>(2.0 * meta_miss + 0.5);
    // onode + snapset + attrs + hash-info; sub-packetized shards double the
    // lookups for per-sub-chunk extent state.
    const double lookups = 4.0 * (code_->alpha() > 1 ? 2.0 : 1.0);
    hr.extra_s = lookups * meta_miss * proto.kv_lookup_miss_s;
    hr.msgs = std::max<std::uint64_t>(
        1, util::ceil_div(hr.bytes, proto.max_io_bytes));
    shape.reads.push_back(hr);  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  }

  // DAG-staged execution: when the pool opts in and the code's repair DAG
  // is genuinely structured (helper-local combines or staged fetches),
  // lower it to per-stage helper lists. Flat DAGs (and the default) leave
  // `stages` empty, keeping the seed's flat path event-identical.
  if (config_.pool.dag_recovery) {
    const ec::RepairDag dag =
        ranked ? std::move(ranked_dag) : code_->repair_dag(pg.missing_positions);
    if (dag.structured()) {
      lower_dag_stages(dag, shape.chunk_size, layout.units_per_chunk, pg,
                       shape);
    }
  }
  return shape;
}

double Cluster::helper_score(OsdId osd) const {
  const auto& w = config_.helper_selection;
  const Osd& o = *osds_[static_cast<std::size_t>(osd)];
  const double now = engine_.now();
  double s = w.disk_weight * std::max(0.0, o.disk->server().busy_until() - now);
  const nvmeof::FabricLoadView lv = fabric_->load_view(o.host, now);
  s += w.link_weight * (lv.tx_backlog_s + lv.rx_backlog_s);
  s += w.inflight_penalty_s * static_cast<double>(lv.in_flight);
  s += w.backfill_penalty_s * static_cast<double>(o.backfills_in_use);
  const double disk_bw = config_.hw.disk.read_bw_bytes_per_s;
  if (disk_bw > 0) {
    s += w.served_weight *
         (static_cast<double>(o.recovery_bytes_served) / disk_bw);
  }
  return s;
}

std::vector<std::size_t> Cluster::helper_preference(const Pg& pg) const {
  // Surviving positions cheapest-first; ties break by OSD id so selection
  // is deterministic across runs and lane counts. Cold path: runs once
  // per (PG, epoch) and is cached inside shape_base.
  std::vector<std::size_t> pref;  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  pref.reserve(pg.acting.size());
  for (std::size_t pos = 0; pos < pg.acting.size(); ++pos) {
    if (std::binary_search(pg.missing_positions.begin(),
                           pg.missing_positions.end(), pos)) {
      continue;
    }
    pref.push_back(pos);  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  }
  std::stable_sort(pref.begin(), pref.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double sa = helper_score(pg.acting[a]);
                     const double sb = helper_score(pg.acting[b]);
                     if (sa != sb) return sa < sb;
                     return pg.acting[a] < pg.acting[b];
                   });
  return pref;
}

double Cluster::queue_extra_s(qos::OpClass cls) const {
  // Legacy mode: the flat mClock stand-in constant, recovery/scrub only
  // (clients never paid it). The dmClock scheduler replaces the constant
  // with tag-derived grant delays.
  if (config_.qos.enabled) return 0;
  switch (cls) {
    case qos::OpClass::kClient: return 0;
    case qos::OpClass::kRecovery:
    case qos::OpClass::kScrub: return config_.protocol.mclock_queue_delay_s;
  }
  return 0;
}

double Cluster::qos_submit_delay(qos::OpClass cls, OsdId osd,
                                 std::uint64_t device_bytes) {
  if (!config_.qos.enabled) return 0;
  // Cost estimate for the weight tag: the op's device occupancy at raw
  // read bandwidth. Writes run at a different rate, but the estimate only
  // sets relative spacing between competing classes, and both sides of
  // every comparison use the same yardstick.
  const double bw = config_.hw.disk.read_bw_bytes_per_s;
  const double cost_s = bw > 0 ? static_cast<double>(device_bytes) / bw : 0.0;
  return qos_state_[static_cast<std::size_t>(osd)].submit(
      config_.qos, cls, engine_.now(), cost_s);
}

// Lower a structured RepairDag into the shape's stage list. Reads group
// per (fetch stage, helper OSD); combines charge their execution site;
// each cross-location data edge becomes the producing helper's single
// forward hop. The executor (issue_dag_stage) requires one destination per
// helper per stage — relay chains (LRC's local-group XOR) are expressible,
// broadcast fan-out is not; the ECF_CHECK below is that contract.
void Cluster::lower_dag_stages(const ec::RepairDag& dag,
                               std::uint64_t chunk_size,
                               std::uint64_t units_per_chunk, const Pg& pg,
                               RepairShape& shape) const {
  using Dag = ec::RepairDag;
  const std::vector<std::size_t> stage_of = dag.node_stages();  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  shape.stages.assign(dag.fetch_stages(), {});  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  const auto& proto = config_.protocol;

  // Helper slot for (1-based stage, chunk position), created on first use.
  const auto helper_at = [this, &shape, &pg](std::size_t stage,
                                             std::size_t loc)
      -> RepairShape::DagHelper& {
    ECF_CHECK_GE(stage, std::size_t{1}) << " DAG node below any fetch stage";
    ECF_CHECK_LT(loc, pg.acting.size()) << " DAG location outside the PG";
    auto& helpers = shape.stages[stage - 1].helpers;
    const OsdId osd = pg.acting[loc];
    for (auto& h : helpers) {
      if (h.osd == osd) return h;
    }
    RepairShape::DagHelper fresh;
    fresh.osd = osd;
    helpers.push_back(fresh);  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
    return helpers.back();
  };

  // Reads: accumulate bytes per (stage, helper); `ios` holds the raw
  // sub-chunk run count until the conversion pass below.
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    const Dag::Node& n = dag.nodes[i];
    if (n.kind != Dag::NodeKind::kRead) continue;
    RepairShape::DagHelper& h = helper_at(stage_of[i], n.loc);
    h.read_bytes += static_cast<std::uint64_t>(
        static_cast<double>(chunk_size) * n.fraction);
    h.ios += n.subchunk_ios;
  }

  // Convert run counts to disk IOs and charge the metadata lookups once
  // per helper (the backfill scan's iterator state survives the stages; a
  // gated continuation read extends a scatter sweep whose per-unit runs
  // were charged on its opening stage).
  std::vector<bool> meta_seen(osds_.size(), false);  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  for (auto& stage : shape.stages) {
    for (auto& h : stage.helpers) {
      const std::uint64_t runs = h.ios;
      if (runs > 1) {
        h.ios = units_per_chunk * runs;
      } else if (runs == 1) {
        h.ios = std::max<std::uint64_t>(
            1, util::ceil_div(h.read_bytes, proto.max_io_bytes));
      } else {
        h.ios = 0;
      }
      const auto& store = osds_[static_cast<std::size_t>(h.osd)]->store;
      h.disk_bytes = static_cast<std::uint64_t>(
          static_cast<double>(h.read_bytes) * (1.0 - store.data_hit_rate()));
      if (h.read_bytes > 0 && !meta_seen[static_cast<std::size_t>(h.osd)]) {
        meta_seen[static_cast<std::size_t>(h.osd)] = true;
        const double meta_miss = 1.0 - store.meta_hit_rate();
        h.ios += static_cast<std::uint64_t>(2.0 * meta_miss + 0.5);
        const double lookups = 4.0 * (code_->alpha() > 1 ? 2.0 : 1.0);
        h.extra_s = lookups * meta_miss * proto.kv_lookup_miss_s;
      }
    }
  }

  // Combines: charge the execution site (byte-weighted GF cost so one
  // cpu.compute call per site per stage does the right total work).
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    const Dag::Node& n = dag.nodes[i];
    if (n.kind != Dag::NodeKind::kCombine) continue;
    const auto out_b = static_cast<std::uint64_t>(
        static_cast<double>(chunk_size) * n.bytes_out);
    if (out_b == 0) continue;
    const double work = static_cast<double>(out_b) * n.cost_weight;
    if (n.loc == Dag::kTargetLoc) {
      ECF_CHECK_GE(stage_of[i], std::size_t{1})
          << " target combine below any fetch stage";
      RepairShape::DagStage& st = shape.stages[stage_of[i] - 1];
      st.target_cost =
          (st.target_cost * static_cast<double>(st.target_bytes) + work) /
          static_cast<double>(st.target_bytes + out_b);
      st.target_bytes += out_b;
    } else {
      RepairShape::DagHelper& h = helper_at(stage_of[i], n.loc);
      h.combine_cost =
          (h.combine_cost * static_cast<double>(h.combine_bytes) + work) /
          static_cast<double>(h.combine_bytes + out_b);
      h.combine_bytes += out_b;
    }
  }

  // Forwards: each producer ships its output once per distinct consumer
  // location (gate edges into reads carry no bytes). The executor models
  // exactly one hop per helper per stage.
  std::vector<std::size_t> dests;  ECF_ALLOC_OK("cold: once per (PG, epoch), cached in shape_base");
  for (std::size_t p = 0; p < dag.nodes.size(); ++p) {
    const Dag::Node& np = dag.nodes[p];
    if (np.kind == Dag::NodeKind::kWrite || np.bytes_out <= 0) continue;
    dests.clear();
    for (std::size_t c = p + 1; c < dag.nodes.size(); ++c) {
      const Dag::Node& nc = dag.nodes[c];
      if (nc.kind == Dag::NodeKind::kRead || nc.loc == np.loc) continue;
      if (std::find(nc.inputs.begin(), nc.inputs.end(),
                    static_cast<Dag::NodeId>(p)) == nc.inputs.end()) {
        continue;
      }
      if (std::find(dests.begin(), dests.end(), nc.loc) == dests.end()) {
        dests.push_back(nc.loc);  ECF_ALLOC_OK("bounded: <= n destinations per producer");
      }
    }
    for (const std::size_t dloc : dests) {
      ECF_CHECK(np.loc != Dag::kTargetLoc)
          << " DAG ships target-side bytes back to a helper";
      RepairShape::DagHelper& h = helper_at(stage_of[p], np.loc);
      const OsdId dst =
          dloc == Dag::kTargetLoc ? kNoOsd : pg.acting[dloc];
      ECF_CHECK(h.fwd_bytes == 0 || h.fwd_osd == dst)
          << " DAG helper forwards to more than one destination";
      h.fwd_osd = dst;
      h.fwd_bytes += static_cast<std::uint64_t>(
          static_cast<double>(chunk_size) * np.bytes_out);
    }
  }
  for (auto& stage : shape.stages) {
    for (auto& h : stage.helpers) {
      if (h.fwd_bytes > 0) {
        h.fwd_msgs = std::max<std::uint64_t>(
            1, util::ceil_div(h.fwd_bytes, proto.max_io_bytes));
      }
    }
  }
}

void Cluster::start_object_repair(Pg& pg) {
  auto& item = pg.work.front();
  // Backfill batching: large PGs stream several objects per push op.
  const auto& proto = config_.protocol;
  std::uint64_t batch = 1;
  if (proto.backfill_batch_divisor > 0) {
    batch = std::min(proto.backfill_batch_max,
                     std::max<std::uint64_t>(
                         1, pg.num_objects / proto.backfill_batch_divisor));
  }
  batch = std::min(batch, item.remaining);
  item.remaining -= batch;
  ++pg.inflight;

  // One repair_plan + layout computation per (PG, epoch): the erasure set
  // only changes with the generation, so every batch of the epoch shares
  // the cached per-object recipe instead of recomputing (and heap-
  // allocating) it per push.
  if (pg.shape_base_gen != pg.generation) {
    pg.shape_base = compute_repair_shape(pg);
    pg.shape_base_gen = pg.generation;
  }
  const RepairShape& base = pg.shape_base;

  RepairBatch* b = repair_batch_pool_.acquire();
  b->pg = pg.id;
  b->gen = pg.generation;
  b->primary = pg.reserved_primary;
  b->batch = batch;
  b->round = 0;
  b->stage = 0;
  b->num_stages = 0;
  b->decode_cost_factor = base.decode_cost_factor;
  b->decode_extra_s = base.decode_extra_s * static_cast<double>(batch);
  b->decode_bytes = base.chunk_size * item.positions.size() * batch;

  // Writes: only the positions this item still needs, batch-scaled.
  ECF_CHECK_LE(item.positions.size(), RepairBatch::kMaxShards)
      << " EC width exceeds RepairBatch::kMaxShards";
  b->num_writes = 0;
  for (const std::size_t pos : item.positions) {
    const auto it = std::find(pg.missing_positions.begin(),
                              pg.missing_positions.end(), pos);
    const std::size_t idx =
        static_cast<std::size_t>(it - pg.missing_positions.begin());
    RepairShape::TargetWrite w;
    w.osd = pg.remap_targets[idx];
    w.bytes = base.chunk_size * batch;
    w.ios = (util::ceil_div(base.chunk_size, proto.max_io_bytes) + 2) * batch;
    w.msgs = std::max<std::uint64_t>(
                 1, util::ceil_div(base.chunk_size, proto.max_io_bytes)) *
             batch;
    b->writes[b->num_writes++] = w;
  }

  // Push granularity: shards larger than osd_recovery_max_chunk move in
  // sequential rounds, each a full read->decode->write cycle. The
  // sub-packetization rounding (a few bytes) must not add a round. Under
  // DAG-staged execution the stage loop carries the fetch stages, so
  // rounds carry only the chunk split.
  const ec::StripeLayout layout = ec::compute_stripe_layout(
      config_.workload.object_size, code_->n(), code_->k(),
      config_.pool.stripe_unit);
  b->rounds =
      std::max<std::uint64_t>(
          1, util::ceil_div(layout.chunk_size, proto.osd_recovery_max_chunk)) *
      static_cast<std::uint64_t>(base.stages.empty() ? base.fetch_stages : 1);

  // Pacing: recovery ops are deprioritized; each slot waits before issuing.
  // The pin keeps the batch's read/decode/write continuations in-lane.
  sim::Engine::LaneScope lane(engine_, 0x50470000ull +
                                           static_cast<std::uint64_t>(pg.id));
  const double pacing = proto.osd_recovery_sleep_s + proto.recovery_op_overhead_s;
  engine_.schedule(pacing, [this, b] {
    Pg& pg2 = *pgs_[static_cast<std::size_t>(b->pg)];
    if (pg2.generation != b->gen) {
      report_.repairs_wasted += b->batch;  // invalidated before it was issued
      repair_batch_pool_.release(b);
      return;
    }
    if (!pg2.logged_first_io) {
      pg2.logged_first_io = true;
      log(osd_name(b->primary), "recovery",
          "pg " + std::to_string(b->pg) + " start recovery I/O");
      if (report_.recovery_start_time < 0) {
        report_.recovery_start_time = ecf::util::SimSec(engine_.now());
        log("mgr.0", "mgr", "report recovery I/O in progress");
      }
    }
    issue_repair_round(b);
  }, sim::EventTag::kRecovery);
}

void Cluster::issue_repair_round(RepairBatch* b) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    report_.repairs_wasted += b->batch;  // epoch change mid-object
    repair_batch_pool_.release(b);
    return;
  }
  // Safe to read: the generation matched, so shape_base is the recipe this
  // batch was issued against.
  const RepairShape& base = pg.shape_base;

  if (!base.stages.empty()) {
    // DAG-staged execution: the stage loop replaces the flat read-all
    // round body; this round's bytes flow stage by stage instead.
    b->stage = 0;
    b->num_stages = static_cast<std::uint32_t>(base.stages.size());
    if (config_.pool.dag_pipeline) {
      issue_pipelined_round(b);
    } else {
      issue_dag_stage(b);
    }
    return;
  }

  b->reads_pending = base.reads.size();
  const auto qslice = [b](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / b->rounds);
  };
  for (std::size_t i = 0; i < base.reads.size(); ++i) {
    // dmClock: recovery reads wait for their scheduling grant *before*
    // charging the device, so deferred reads actually free the disk for
    // client ops. grant == 0 (always, when QoS is off) issues
    // synchronously — no extra event, keeping legacy runs bit-identical.
    // The grant cost is the read's device occupancy (throttle-scaled, like
    // the charge in issue_flat_read).
    const double grant = qos_submit_delay(
        qos::OpClass::kRecovery, base.reads[i].osd,
        static_cast<std::uint64_t>(
            static_cast<double>(qslice(base.reads[i].disk_bytes * b->batch)) /
            config_.protocol.recovery_bw_fraction));
    if (grant <= 0) {
      issue_flat_read(b, i);
    } else {
      engine_.schedule(grant, [this, b, i] { issue_flat_read(b, i); },
                       sim::EventTag::kRecovery);
    }
  }
  if (base.reads.empty()) repair_after_decode(b);
}

// One flat helper read of the current round: device charge, helper-NIC
// send, primary-NIC recv, read-barrier drain. Split from
// issue_repair_round so a dmClock grant can defer just the charging; a
// generation change during the deferral drains the barrier without
// touching the (possibly recomputed) shape.
void Cluster::issue_flat_read(RepairBatch* b, std::size_t read_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    if (--b->reads_pending == 0) repair_after_decode(b);
    return;
  }
  const auto& proto = config_.protocol;
  const RepairShape::HelperRead& r = pg.shape_base.reads[read_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  const std::uint64_t rbytes = slice(r.bytes * b->batch);
  const std::uint64_t rmsgs = slice(r.msgs * b->batch);
  report_.bytes_read_for_recovery += rbytes;
  Osd* hosd = osds_[static_cast<std::size_t>(r.osd)].get();
  hosd->recovery_bytes_served += rbytes;
  Host* hhost = hosts_[static_cast<std::size_t>(hosd->host)].get();
  // Lookups (r.extra_s) do not scale with the batch: the backfill scan
  // walks onodes in key order, so the RocksDB iterator amortizes misses
  // across the batch.
  const std::uint64_t eff = static_cast<std::uint64_t>(
      static_cast<double>(slice(r.disk_bytes * b->batch)) /
      proto.recovery_bw_fraction);
  const sim::SimTime t_read =
      osd_read(r.osd, eff, slice(r.ios * b->batch), r.extra_s);
  engine_.schedule_at(
      t_read + queue_extra_s(qos::OpClass::kRecovery),
      [this, b, hhost, rbytes, rmsgs] {
        report_.bytes_on_wire_for_recovery += rbytes;
        const sim::SimTime t_tx = hhost->nic.send(engine_, rbytes, rmsgs);
        engine_.schedule_at(t_tx, [this, b, rbytes, rmsgs] {
          Host* phost =
              hosts_[static_cast<std::size_t>(
                         osds_[static_cast<std::size_t>(b->primary)]->host)]
                  .get();
          const sim::SimTime t_rx = phost->nic.recv(engine_, rbytes, rmsgs);
          engine_.schedule_at(t_rx, [this, b] {
            if (--b->reads_pending == 0) repair_after_decode(b);
          }, sim::EventTag::kRecovery);
        }, sim::EventTag::kRecovery);
      },
      sim::EventTag::kRecovery);
}

// --- DAG-staged execution (pool.dag_recovery) -------------------------------
// One fetch stage of the repair DAG: every helper of the stage reads its
// slice, combines locally, and forwards one hop (to the next helper in a
// relay, or to the primary). Relay hops within a stage run concurrently —
// the data streams through pipelined, it does not store-and-forward. The
// stage barrier (dag_after_stage) then charges the primary's combine work
// and opens the next stage, so recovery time follows the DAG's critical
// path instead of a fetch-everything round.
void Cluster::issue_dag_stage(RepairBatch* b) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    report_.repairs_wasted += b->batch;  // epoch change mid-object
    repair_batch_pool_.release(b);
    return;
  }
  const RepairShape::DagStage& st = pg.shape_base.stages[b->stage];
  if (st.helpers.empty()) {  // defensive: every stage is opened by a read
    dag_after_stage(b);
    return;
  }
  b->stage_pending = st.helpers.size();
  for (std::size_t hi = 0; hi < st.helpers.size(); ++hi) {
    // dmClock grant before the device charge (see issue_repair_round);
    // reads of zero bytes (pure combine/forward helpers) skip the queue.
    const double grant =
        st.helpers[hi].read_bytes > 0
            ? qos_submit_delay(
                  qos::OpClass::kRecovery, st.helpers[hi].osd,
                  static_cast<std::uint64_t>(
                      static_cast<double>(std::max<std::uint64_t>(
                          1, st.helpers[hi].disk_bytes * b->batch / b->rounds)) /
                      config_.protocol.recovery_bw_fraction))
            : 0.0;
    if (grant <= 0) {
      issue_dag_helper_read(b, hi);
    } else {
      engine_.schedule(grant, [this, b, hi] { issue_dag_helper_read(b, hi); },
                       sim::EventTag::kRecovery);
    }
  }
}

// One DAG helper's device read for the current stage (split out so a
// dmClock grant can defer it). A generation change during the deferral
// drains the stage barrier; dag_after_stage owns the release.
void Cluster::issue_dag_helper_read(RepairBatch* b, std::size_t helper_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    if (--b->stage_pending == 0) dag_after_stage(b);
    return;
  }
  const auto& proto = config_.protocol;
  const RepairShape::DagHelper& h =
      pg.shape_base.stages[b->stage].helpers[helper_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  sim::SimTime t_ready = engine_.now();
  if (h.read_bytes > 0) {
    const std::uint64_t rbytes = slice(h.read_bytes * b->batch);
    report_.bytes_read_for_recovery += rbytes;
    osds_[static_cast<std::size_t>(h.osd)]->recovery_bytes_served += rbytes;
    const std::uint64_t eff = static_cast<std::uint64_t>(
        static_cast<double>(slice(h.disk_bytes * b->batch)) /
        proto.recovery_bw_fraction);
    // A continuation read of an already-open scatter sweep carries no
    // further per-run IOs (h.ios == 0): it pays bytes only.
    t_ready = osd_read(h.osd, eff,
                       h.ios > 0 ? slice(h.ios * b->batch) : 0, h.extra_s) +
              queue_extra_s(qos::OpClass::kRecovery);
  }
  const std::size_t hi = helper_index;
  engine_.schedule_at(t_ready, [this, b, hi] { dag_helper_step(b, hi); },
                      sim::EventTag::kRecovery);
}

// One helper's post-read work for the current stage: the helper-local GF
// combine on its own CPU, then the single forward hop of only the combined
// bytes. A stale generation skips the charging but still drains the stage
// barrier, so the batch reaches its single release point in
// dag_after_stage.
void Cluster::dag_helper_step(RepairBatch* b, std::size_t helper_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    if (--b->stage_pending == 0) dag_after_stage(b);
    return;
  }
  const RepairShape::DagHelper& h =
      pg.shape_base.stages[b->stage].helpers[helper_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  Osd& hosd = *osds_[static_cast<std::size_t>(h.osd)];
  sim::SimTime t_cpu = engine_.now();
  if (h.combine_bytes > 0) {
    t_cpu = hosd.cpu.compute(engine_, slice(h.combine_bytes * b->batch),
                             h.combine_cost);
  }
  if (h.fwd_bytes == 0) {  // degenerate: nothing leaves this helper
    engine_.schedule_at(t_cpu, [this, b] {
      if (--b->stage_pending == 0) dag_after_stage(b);
    }, sim::EventTag::kRecovery);
    return;
  }
  Host* src = hosts_[static_cast<std::size_t>(hosd.host)].get();
  const OsdId dst_osd = h.fwd_osd == kNoOsd ? b->primary : h.fwd_osd;
  Host* dst = hosts_[static_cast<std::size_t>(
                         osds_[static_cast<std::size_t>(dst_osd)]->host)]
                  .get();
  const std::uint64_t fbytes = slice(h.fwd_bytes * b->batch);
  const std::uint64_t fmsgs = slice(h.fwd_msgs * b->batch);
  engine_.schedule_at(t_cpu, [this, b, src, dst, fbytes, fmsgs] {
    report_.bytes_on_wire_for_recovery += fbytes;
    const sim::SimTime t_tx = src->nic.send(engine_, fbytes, fmsgs);
    engine_.schedule_at(t_tx, [this, b, dst, fbytes, fmsgs] {
      const sim::SimTime t_rx = dst->nic.recv(engine_, fbytes, fmsgs);
      engine_.schedule_at(t_rx, [this, b] {
        if (--b->stage_pending == 0) dag_after_stage(b);
      }, sim::EventTag::kRecovery);
    }, sim::EventTag::kRecovery);
  }, sim::EventTag::kRecovery);
}

// Stage barrier at the primary: charge this stage's target-side combine
// work (plus, on the round's last stage, the sub-packetized decode
// overhead), then open the next stage or fall through to the write
// fan-out. Also the batch's bail-out point for epoch changes discovered
// mid-stage.
void Cluster::dag_after_stage(RepairBatch* b) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    report_.repairs_wasted += b->batch;
    repair_batch_pool_.release(b);
    return;
  }
  const RepairShape::DagStage& st = pg.shape_base.stages[b->stage];
  Osd& p = *osds_[static_cast<std::size_t>(b->primary)];
  sim::SimTime t_cpu = engine_.now();
  if (st.target_bytes > 0) {
    t_cpu = p.cpu.compute(
        engine_,
        std::max<std::uint64_t>(1, st.target_bytes * b->batch / b->rounds),
        st.target_cost);
  }
  const bool last = b->stage + 1 >= b->num_stages;
  if (last && b->decode_extra_s > 0) {
    t_cpu = p.cpu.busy_for(engine_,
                           b->decode_extra_s / static_cast<double>(b->rounds));
  }
  engine_.schedule_at(t_cpu, [this, b, last] {
    if (last) {
      issue_repair_writes(b);
    } else {
      ++b->stage;
      issue_dag_stage(b);
    }
  }, sim::EventTag::kRecovery);
}

// --- pipelined DAG execution (pool.dag_pipeline) ----------------------------
// Every stage's helper chains (read → local combine → forward hop) issue
// at round start: the repaired object's surviving shards are static on
// disk, so a later stage's *transfers* need not wait on an earlier
// stage's *combines* — only the target-side combines carry the DAG's data
// dependencies, and those still charge in stage order as each stage's
// arrivals complete (pipe_advance). The result: fabric hops overlap GF
// combines instead of serializing behind per-stage barriers, which is
// where Clay's multi-erasure staged fetch loses most of its time.
void Cluster::issue_pipelined_round(RepairBatch* b) {
  // Caller (issue_repair_round) already verified the generation.
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  const RepairShape& base = pg.shape_base;
  ECF_CHECK_LE(base.stages.size(), RepairBatch::kMaxStages)
      << " repair DAG deeper than the pipelined executor supports";
  b->combine_next = 0;
  b->stage_pending = 0;
  for (std::size_t s = 0; s < base.stages.size(); ++s) {
    b->arrivals[s] = static_cast<std::uint32_t>(base.stages[s].helpers.size());
    b->stage_pending += base.stages[s].helpers.size();
  }
  for (std::uint32_t s = 0; s < b->num_stages; ++s) {
    const auto& helpers = base.stages[s].helpers;
    for (std::uint32_t hi = 0; hi < helpers.size(); ++hi) {
      const double grant =
          helpers[hi].read_bytes > 0
              ? qos_submit_delay(
                    qos::OpClass::kRecovery, helpers[hi].osd,
                    static_cast<std::uint64_t>(
                        static_cast<double>(std::max<std::uint64_t>(
                            1, helpers[hi].disk_bytes * b->batch / b->rounds)) /
                        config_.protocol.recovery_bw_fraction))
              : 0.0;
      if (grant <= 0) {
        issue_pipe_helper_read(b, s, hi);
      } else {
        engine_.schedule(grant, [this, b, s, hi] {
          issue_pipe_helper_read(b, s, hi);
        }, sim::EventTag::kRecovery);
      }
    }
  }
  if (b->stage_pending == 0) pipe_advance(b);  // defensive: empty DAG
}

// One pipelined helper's device read (mirrors issue_dag_helper_read, with
// an explicit stage — the batch's b->stage cursor is meaningless when all
// stages run concurrently).
void Cluster::issue_pipe_helper_read(RepairBatch* b, std::uint32_t stage,
                                     std::uint32_t helper_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    pipe_arrival(b, stage);
    return;
  }
  const auto& proto = config_.protocol;
  const RepairShape::DagHelper& h =
      pg.shape_base.stages[stage].helpers[helper_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  sim::SimTime t_ready = engine_.now();
  if (h.read_bytes > 0) {
    const std::uint64_t rbytes = slice(h.read_bytes * b->batch);
    report_.bytes_read_for_recovery += rbytes;
    osds_[static_cast<std::size_t>(h.osd)]->recovery_bytes_served += rbytes;
    const std::uint64_t eff = static_cast<std::uint64_t>(
        static_cast<double>(slice(h.disk_bytes * b->batch)) /
        proto.recovery_bw_fraction);
    t_ready = osd_read(h.osd, eff,
                       h.ios > 0 ? slice(h.ios * b->batch) : 0, h.extra_s) +
              queue_extra_s(qos::OpClass::kRecovery);
  }
  engine_.schedule_at(t_ready, [this, b, stage, helper_index] {
    pipe_helper_step(b, stage, helper_index);
  }, sim::EventTag::kRecovery);
}

// Helper-local combine, then the forward hop. Split into three small
// continuations (step → forward → deliver) that re-derive shape state
// from (stage, helper_index) so every capture stays within the EventFn
// small-buffer. Stale generations skip charging but still drain the
// arrival counters; pipe_advance owns the release.
void Cluster::pipe_helper_step(RepairBatch* b, std::uint32_t stage,
                               std::uint32_t helper_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    pipe_arrival(b, stage);
    return;
  }
  const RepairShape::DagHelper& h =
      pg.shape_base.stages[stage].helpers[helper_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  Osd& hosd = *osds_[static_cast<std::size_t>(h.osd)];
  sim::SimTime t_cpu = engine_.now();
  if (h.combine_bytes > 0) {
    t_cpu = hosd.cpu.compute(engine_, slice(h.combine_bytes * b->batch),
                             h.combine_cost);
  }
  if (h.fwd_bytes == 0) {  // degenerate: nothing leaves this helper
    engine_.schedule_at(t_cpu, [this, b, stage] { pipe_arrival(b, stage); },
                        sim::EventTag::kRecovery);
    return;
  }
  engine_.schedule_at(t_cpu, [this, b, stage, helper_index] {
    pipe_forward(b, stage, helper_index);
  }, sim::EventTag::kRecovery);
}

void Cluster::pipe_forward(RepairBatch* b, std::uint32_t stage,
                           std::uint32_t helper_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    pipe_arrival(b, stage);
    return;
  }
  const RepairShape::DagHelper& h =
      pg.shape_base.stages[stage].helpers[helper_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  const std::uint64_t fbytes = slice(h.fwd_bytes * b->batch);
  const std::uint64_t fmsgs = slice(h.fwd_msgs * b->batch);
  report_.bytes_on_wire_for_recovery += fbytes;
  Host* src =
      hosts_[static_cast<std::size_t>(
                 osds_[static_cast<std::size_t>(h.osd)]->host)]
          .get();
  const sim::SimTime t_tx = src->nic.send(engine_, fbytes, fmsgs);
  engine_.schedule_at(t_tx, [this, b, stage, helper_index] {
    pipe_deliver(b, stage, helper_index);
  }, sim::EventTag::kRecovery);
}

void Cluster::pipe_deliver(RepairBatch* b, std::uint32_t stage,
                           std::uint32_t helper_index) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    pipe_arrival(b, stage);
    return;
  }
  const RepairShape::DagHelper& h =
      pg.shape_base.stages[stage].helpers[helper_index];
  const std::uint64_t rounds = b->rounds;
  const auto slice = [rounds](std::uint64_t v) {
    return std::max<std::uint64_t>(1, v / rounds);
  };
  const OsdId dst_osd = h.fwd_osd == kNoOsd ? b->primary : h.fwd_osd;
  Host* dst = hosts_[static_cast<std::size_t>(
                         osds_[static_cast<std::size_t>(dst_osd)]->host)]
                  .get();
  const sim::SimTime t_rx = dst->nic.recv(
      engine_, slice(h.fwd_bytes * b->batch), slice(h.fwd_msgs * b->batch));
  engine_.schedule_at(t_rx, [this, b, stage] { pipe_arrival(b, stage); },
                      sim::EventTag::kRecovery);
}

void Cluster::pipe_arrival(RepairBatch* b, std::uint32_t stage) {
  --b->arrivals[stage];
  --b->stage_pending;
  pipe_advance(b);
}

// Charge target-side combines for every stage whose arrivals are complete,
// strictly in stage order (the primary's CPU FIFO serializes the work, so
// an early charge still *runs* after its predecessors). After the last
// stage's combine — plus the sub-packetized decode overhead — the round
// falls through to the shared write fan-out. Stale batches release here
// once every outstanding chain has drained.
void Cluster::pipe_advance(RepairBatch* b) {
  Pg& pg = *pgs_[static_cast<std::size_t>(b->pg)];
  if (pg.generation != b->gen) {
    if (b->stage_pending == 0) {
      report_.repairs_wasted += b->batch;
      repair_batch_pool_.release(b);
    }
    return;
  }
  Osd& p = *osds_[static_cast<std::size_t>(b->primary)];
  sim::SimTime t_cpu = engine_.now();
  bool finished = false;
  while (b->combine_next < b->num_stages &&
         b->arrivals[b->combine_next] == 0) {
    const RepairShape::DagStage& st = pg.shape_base.stages[b->combine_next];
    if (st.target_bytes > 0) {
      t_cpu = p.cpu.compute(
          engine_,
          std::max<std::uint64_t>(1, st.target_bytes * b->batch / b->rounds),
          st.target_cost);
    }
    ++b->combine_next;
    if (b->combine_next >= b->num_stages) {
      if (b->decode_extra_s > 0) {
        t_cpu = p.cpu.busy_for(
            engine_, b->decode_extra_s / static_cast<double>(b->rounds));
      }
      finished = true;
    }
  }
  if (finished) {
    engine_.schedule_at(t_cpu, [this, b] { issue_repair_writes(b); },
                        sim::EventTag::kRecovery);
  }
}

// Decode at the primary, then push the rebuilt shards to their new homes.
// Reached from the last helper-read completion of the round; the batch
// releases back to the pool at the single terminal of the chain (last
// write of the last round, or a stale-generation bail-out).
void Cluster::repair_after_decode(RepairBatch* b) {
  Osd& p = *osds_[static_cast<std::size_t>(b->primary)];
  sim::SimTime t_cpu = p.cpu.compute(
      engine_, std::max<std::uint64_t>(1, b->decode_bytes / b->rounds),
      b->decode_cost_factor);
  if (b->decode_extra_s > 0) {
    t_cpu = p.cpu.busy_for(engine_,
                           b->decode_extra_s / static_cast<double>(b->rounds));
  }
  engine_.schedule_at(t_cpu, [this, b] { issue_repair_writes(b); },
                      sim::EventTag::kRecovery);
}

// Push the rebuilt shards to their new homes — the shared tail of the flat
// path (after the primary's decode) and the DAG path (after the last
// stage's barrier). The round advance at the terminal re-enters
// issue_repair_round, which re-branches into whichever path the shape
// prescribes.
void Cluster::issue_repair_writes(RepairBatch* b) {
  const std::uint64_t rounds = b->rounds;
  Host* phost = hosts_[static_cast<std::size_t>(
                           osds_[static_cast<std::size_t>(b->primary)]->host)]
                    .get();
  b->writes_pending = b->num_writes;
  for (std::size_t wi = 0; wi < b->num_writes; ++wi) {
    const auto& w = b->writes[wi];
    const std::uint64_t wbytes = std::max<std::uint64_t>(1, w.bytes / rounds);
    report_.bytes_written_for_recovery += wbytes;
    report_.bytes_on_wire_for_recovery += wbytes;
    const sim::SimTime t_tx = phost->nic.send(
        engine_, wbytes, std::max<std::uint64_t>(1, w.msgs / rounds));
    engine_.schedule_at(t_tx, [this, b, wi, wbytes] {
      const auto& w2 = b->writes[wi];
      Host* thost =
          hosts_[static_cast<std::size_t>(
                     osds_[static_cast<std::size_t>(w2.osd)]->host)]
              .get();
      const sim::SimTime t_rx = thost->nic.recv(
          engine_, wbytes,
          std::max<std::uint64_t>(1, w2.msgs / b->rounds));
      engine_.schedule_at(t_rx, [this, b, wi, wbytes] {
        // dmClock grant before the device charge (recovery-class write).
        const double grant = qos_submit_delay(qos::OpClass::kRecovery,
                                              b->writes[wi].osd, wbytes);
        if (grant <= 0) {
          finish_repair_write(b, wi, wbytes);
        } else {
          engine_.schedule(grant, [this, b, wi, wbytes] {
            finish_repair_write(b, wi, wbytes);
          }, sim::EventTag::kRecovery);
        }
      }, sim::EventTag::kRecovery);
    }, sim::EventTag::kRecovery);
  }
}

// Device charge + completion bookkeeping of one repair write; the terminal
// of the whole batch chain lives here (last write of the last round).
// Reads only batch-owned state (b->writes), so a generation change during
// a dmClock deferral is safe — complete_object_repair re-checks it.
void Cluster::finish_repair_write(RepairBatch* b, std::size_t write_index,
                                  std::uint64_t write_bytes) {
  const auto& w3 = b->writes[write_index];
  const std::uint64_t eff = static_cast<std::uint64_t>(
      static_cast<double>(write_bytes) /
      config_.protocol.recovery_bw_fraction);
  const sim::SimTime t_wr = osd_write(
      w3.osd, eff, std::max<std::uint64_t>(1, w3.ios / b->rounds));
  // mClock grant latency: completion visible after the delay.
  engine_.schedule_at(
      t_wr + queue_extra_s(qos::OpClass::kRecovery),
      [this, b] {
        if (--b->writes_pending != 0) return;
        ++b->round;
        if (b->round < b->rounds) {
          issue_repair_round(b);
          return;
        }
        // Account the rebuilt chunks on their new homes.
        Pg& done_pg = *pgs_[static_cast<std::size_t>(b->pg)];
        if (done_pg.generation == b->gen) {
          for (std::size_t i = 0; i < b->num_writes; ++i) {
            for (std::uint64_t j = 0; j < b->batch; ++j) {
              osds_[static_cast<std::size_t>(b->writes[i].osd)]
                  ->store.write_chunk(b->writes[i].bytes / b->batch);
            }
          }
        }
        complete_object_repair(done_pg, b->gen, b->batch);
        repair_batch_pool_.release(b);
      },
      sim::EventTag::kRecovery);
}

void Cluster::complete_object_repair(Pg& pg, int generation,
                                     std::size_t batch) {
  if (pg.generation != generation) {
    report_.repairs_wasted += batch;
    return;
  }
  --pg.inflight;
  pg.repaired_current += batch;
  report_.objects_repaired += batch;
  pump_recovery(pg);
}

void Cluster::finish_pg(Pg& pg) {
  const OsdId primary = primary_of(pg);
  pg.state = PgState::kActiveClean;
  pg.work.clear();
  release_reservation(pg);
  if (pg.counted_recovering) {
    pg.counted_recovering = false;
    --pgs_recovering_;
  }
  log(osd_name(primary == kNoOsd ? 0 : primary), "recovery",
      "pg " + std::to_string(pg.id) + " recovery completed");
  maybe_finish_recovery();
}

void Cluster::maybe_finish_recovery() {
  if (pgs_recovering_ != 0) return;
  if (!pending_out_.empty() || out_batch_scheduled_) return;
  // Any down-but-not-yet-out OSD still has an epoch coming.
  for (const auto& osd : osds_) {
    if ((!osd->device_ok || !osd->process_up) && !osd->marked_out) return;
  }
  if (report_.recovery_start_time < 0) return;  // nothing ever recovered
  report_.recovery_end_time = ecf::util::SimSec(engine_.now());
  report_.complete = true;
  log("mgr.0", "mgr", "recovery completed; all pgs active+clean");
}

}  // namespace ecf::cluster
