// Configuration of the simulated Ceph-like cluster.
//
// Field names deliberately track the Ceph options they model (pg_num,
// stripe_unit, osd_heartbeat_grace, mon_osd_down_out_interval,
// osd_max_backfills, osd_recovery_max_active, bluestore cache ratios…) so
// an ECFault experiment profile reads like a Ceph config. Defaults follow
// Ceph Quincy defaults where one exists, and the paper's setup otherwise.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cluster/qos.h"
#include "cluster/types.h"
#include "sim/hardware_profiles.h"
#include "util/bytes.h"
#include "util/units.h"

namespace ecf::cluster {

// BlueStore cache partitioning (Table 2 of the paper).
struct CacheConfig {
  bool autotune = true;       // bluestore_cache_autotune
  double kv_ratio = 0.45;     // initial values when autotune (C3)
  double meta_ratio = 0.45;
  double data_ratio = 0.10;
  util::Bytes cache_bytes{1280 * util::MiB};  // per-OSD cache on a
                                              // 16 GiB m5.xlarge host

  static CacheConfig kv_optimized() {        // C1
    return {false, 0.70, 0.20, 0.10, util::Bytes{1280 * util::MiB}};
  }
  static CacheConfig data_optimized() {      // C2
    return {false, 0.20, 0.20, 0.60, util::Bytes{1280 * util::MiB}};
  }
  static CacheConfig autotuned() {           // C3
    return {true, 0.45, 0.45, 0.10, util::Bytes{1280 * util::MiB}};
  }
};

// Erasure-coded pool configuration (Table 1 subset).
struct PoolConfig {
  // Config-time key/value profile, never touched per object.
  // ecf-analyze: allow(per-object-map)
  std::map<std::string, std::string> ec_profile = {
      {"plugin", "jerasure"}, {"technique", "reed_sol_van"},
      {"k", "9"}, {"m", "3"}};
  std::int32_t pg_num = 256;
  // Default stripe unit. 4 MiB reproduces the paper's defaults best: with
  // 4 KiB the Clay sub-chunks would be ~50 bytes and Fig. 2a/2b would show
  // the pathological Clay slowdown that the paper only reports in the
  // Fig. 2c stripe-unit sweep.
  util::Bytes stripe_unit{4 * util::MiB};
  FailureDomain failure_domain = FailureDomain::kHost;
  // Execute structured repair DAGs (ErasureCode::repair_dag) stage by
  // stage: helper-local GF combines run on the helper's CPU and only the
  // combined bytes cross the fabric, and staged fetches (Clay's
  // plane-by-plane multi-erasure decode) issue per DAG stage instead of
  // fetch-everything rounds. Off by default: flat repair keeps the paper
  // reproduction (Fig. 2/3) byte- and event-identical to the seed.
  bool dag_recovery = false;
  // Pipelined DAG execution (requires dag_recovery): issue every stage's
  // helper read→combine→forward chain at round start instead of running a
  // barrier between fetch stages, overlapping later-stage fabric hops with
  // earlier-stage GF combines. Target-side combines still charge in stage
  // order (the data dependency the DAG encodes). Off by default: the
  // staged executor keeps the dag-recovery goldens bit-identical.
  bool dag_pipeline = false;
};

// BlueStore on-disk accounting constants; these produce the paper's
// Table 3 gap between theoretical and measured WA. Values follow BlueStore
// defaults / reported magnitudes: 4K allocation units on SSD, onode +
// extent metadata in RocksDB amplified by compaction, a replicated PG log
// entry per write, and EC chunk attributes (hash info / shard attrs).
struct StoreConfig {
  std::uint64_t min_alloc_size = 4 * util::KiB;  // bluestore_min_alloc_size_ssd
  // Per-chunk metadata, *before* RocksDB space amplification: the decoded
  // onode + extent map, the EC shard attributes (hash-info xattr with
  // per-stripe-unit checksums), and the PG log + dup-op entries the write
  // leaves behind.
  std::uint64_t onode_bytes = 32 * util::KiB;
  std::uint64_t ec_attr_bytes = 64 * util::KiB;
  std::uint64_t pg_log_entry_bytes = 64 * util::KiB;
  // RocksDB space amplification on the metadata column families (levels +
  // tombstones + dup retention). Together with the three fields above this
  // is calibrated so the measured OSD-level usage reproduces the paper's
  // Table 3 ("Actual WA Factor" 1.76 for RS(12,9) and 2.15 for RS(15,12)
  // at the default 4 MiB stripe unit) — the paper attributes this gap to
  // "additional metadata for EC (e.g., mapping among EC chunks)".
  double rocksdb_space_amp = 8.0;
  std::uint64_t wal_bytes_per_write = 0;  // large writes bypass the WAL
};

// Failure detection / recovery protocol timers (Ceph defaults).
struct ProtocolConfig {
  double heartbeat_interval_s = 6.0;      // osd_heartbeat_interval
  double heartbeat_grace_s = 20.0;        // osd_heartbeat_grace
  // Spread of failure-detection times across *hosts*: peers of different
  // hosts time out at different heartbeat phases and failure reports reach
  // the monitor in different paxos rounds. OSDs of one host share the
  // phase, so co-located failures land in one mark-out batch while
  // failures on different hosts straggle across osdmap epochs (Fig. 2d).
  double detection_spread_factor = 2.0;
  double mon_tick_s = 5.0;                // paxos/mon batching granularity
  double down_out_interval_s = 600.0;     // mon_osd_down_out_interval — the
                                          // bulk of the "system checking
                                          // period" the paper measures
  int osd_max_backfills = 1;              // PG recoveries per OSD
  int osd_recovery_max_active = 3;        // object repairs in flight per PG
  // Peering costs (per affected PG): log/missing scan per object entry at
  // the primary (kv-cache dependent) plus fixed message rounds.
  double peering_rtt_s = 0.002;
  int peering_rounds = 3;
  double peering_per_object_cpu_s = 5e-3;
  std::uint64_t peering_kv_bytes_per_object = 6 * util::KiB;
  // Cost of a RocksDB point lookup that misses the BlueStore meta/KV cache
  // (onode + EC hash-info fetch on the recovery read path). This is the
  // Fig. 2a lever: cache schemes that starve the meta segment pay it on
  // every shard read.
  double kv_lookup_miss_s = 25e-3;
  // Recovery-op pacing (osd_recovery_sleep): per-op delay per in-flight slot.
  double osd_recovery_sleep_s = 0.05;
  // Fixed bookkeeping per object repair (queueing, messaging, throttles).
  double recovery_op_overhead_s = 1e-3;
  // mClock (Quincy's op scheduler) queueing delay for recovery-class disk
  // ops: recovery sub-ops wait behind the client-priority budget each
  // scheduling round. The main reason Quincy recovers far below raw device
  // bandwidth.
  // Added as completion *latency* (the op waits for its scheduling grant)
  // rather than device occupancy, so a single streaming PG can still move
  // data at near-raw bandwidth while per-op recovery latency stays high —
  // matching observed Quincy behaviour.
  double mclock_queue_delay_s = 0.17;
  // Fraction of raw device bandwidth granted to recovery-class I/O
  // (1.0 = work-conserving; lower models a hard QoS reservation).
  double recovery_bw_fraction = 1.0;
  // Recovery push granularity (osd_recovery_max_chunk, 8 MiB in Ceph).
  //
  // A shard larger than this is recovered in sequential rounds, each
  // paying the scheduling latency — which is what makes huge stripe units
  // expensive (Fig. 2c right edge).
  std::uint64_t osd_recovery_max_chunk = 8 * util::MiB;
  // Latency between winning a recovery reservation and the first push:
  // remote-reservation handshakes and backfill scan startup; PGs losing the
  // race retry on osd_backfill_retry_interval, so contended clusters pay
  // this repeatedly.
  double reservation_grant_delay_s = 2.0;
  // Whether recovery reservations also lock the surviving shards (remote
  // recovery reservations), throttling cluster-wide PG concurrency.
  bool reserve_remote_shards = true;
  // Backfill batching: a PG with many objects streams them in scan batches
  // rather than per-object round trips. Objects per push op =
  // clamp(objects_in_pg / divisor, 1, max).
  std::uint64_t backfill_batch_divisor = 500;
  std::uint64_t backfill_batch_max = 8;
  std::uint64_t max_io_bytes = 4 * util::MiB;  // large reads split into IOs
};

// Periodic scrubbing: every interval one PG is deep-scrubbed (all shards
// read and checksummed); corrupted shards found are repaired in place.
struct ScrubConfig {
  bool enabled = false;
  double interval_s = 30.0;        // osd_deep_scrub_... scaled to sim time
  std::uint64_t scrub_bytes_per_chunk = 0;  // 0 = full chunk read
  // Scrubbing is continuous in Ceph; the simulation stops after this many
  // full passes so experiments terminate.
  int max_passes = 1;
};

struct WorkloadConfig {
  std::uint64_t num_objects = 10000;
  util::Bytes object_size{64 * util::MiB};
};

// Foreground client traffic replayed *during* the experiment (off by
// default; the paper measures recovery on an idle cluster). Reads that hit
// a shard on a down/out OSD become degraded reads: the client op must
// gather k surviving shards and decode inline — so recovery state leaks
// into client latency, and client traffic competes with recovery I/O.
struct ClientLoadConfig {
  double ops_per_s = 0;            // 0 = disabled
  double read_fraction = 1.0;      // remainder are (full-stripe) writes
  util::Bytes op_bytes{4 * util::MiB};
  util::SimSec horizon_s{4000.0};  // stop issuing after this sim time
  // Object popularity skew: 0 = uniform over objects; (0, 1) = YCSB-style
  // zipfian (0.99 ≈ classic "zipfian" skew). Ops pick an *object* and are
  // routed to its PG, so hot objects concentrate load on their PGs.
  double zipf_theta = 0.0;
  // Arrival process. Open loop (default): a Poisson stream at ops_per_s
  // regardless of completions. Closed loop: `clients` workers each keep
  // one op in flight and re-issue think_time_s after completion, so
  // offered load backs off when the cluster degrades.
  bool closed_loop = false;
  int clients = 64;
  util::SimSec think_time_s{0.0};
};

struct ClusterConfig {
  int num_hosts = 30;       // paper: 31 VMs, 1 MON/MGR + 30 OSD hosts
  int osds_per_host = 2;    // two NVMe volumes per host (3 in Fig. 2d)
  // Hosts are grouped into racks of this size (for the rack failure
  // domain); the paper's flat AWS cluster corresponds to 1 host per rack.
  int hosts_per_rack = 1;
  util::Bytes osd_capacity{100 * util::GiB};
  sim::HardwareProfile hw = sim::aws_m5_like();
  CacheConfig cache;
  PoolConfig pool;
  StoreConfig store;
  ProtocolConfig protocol;
  WorkloadConfig workload;
  ClientLoadConfig client;
  ScrubConfig scrub;
  // Recovery QoS (dmClock op scheduler) and load-aware helper selection —
  // both default-off; see cluster/qos.h.
  qos::QosConfig qos;
  qos::HelperSelectionConfig helper_selection;
  std::uint64_t seed = 1;
  // Event lanes for the simulation engine (sim::Engine::set_lane_count).
  // Purely a throughput/footprint knob for million-object campaigns:
  // execution order — and therefore every result — is bit-identical for
  // any value (1..sim::Engine::kMaxLanes).
  int engine_lanes = 1;
  // Validate simulator invariants (PG state machine, conservation, cache
  // accounting) after every event — see cluster/invariants.h. Enabled in
  // the tier-1 cluster/integration tests; off by default in benches where
  // the per-event sweep would skew timing.
  bool check_invariants = false;

  int num_osds() const { return num_hosts * osds_per_host; }
};

}  // namespace ecf::cluster
