// Common identifiers and log-record types for the SimCeph cluster model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ecf::cluster {

using OsdId = std::int32_t;
using HostId = std::int32_t;
using PgId = std::int32_t;

inline constexpr OsdId kNoOsd = -1;

// CRUSH failure domain for chunk placement (Table 1: "EC failure domain").
enum class FailureDomain { kOsd, kHost, kRack };

// A simulated DSS log line. The ECFault Logger (src/ecfault/logger.h)
// subscribes to these per node, classifies them by keyword, and forwards
// the relevant ones — mirroring the paper's §3.3 pipeline. Timestamps are
// sim seconds.
struct LogRecord {
  double time = 0;
  std::string node;     // "mon.0", "osd.17", "host3"
  std::string subsys;   // "mon", "mgr", "osd", "pg", "recovery", "nvmeof"
  std::string message;
};

// Log fan-out point; the cluster emits every record here.
using LogSinkFn = std::function<void(const LogRecord&)>;

// Recovery phases a PG moves through; exposed for tests and the timeline
// analyzer (Fig. 3's breakdown derives from logs, but tests can assert on
// states directly).
enum class PgState {
  kActiveClean,
  kDegraded,    // failure noticed, serving but not yet recovering
  kPeering,     // exchanging infos/logs, computing missing set
  kWaitReservation,
  kRecovering,  // EC repair I/O in flight
};

const char* to_string(PgState s);
const char* to_string(FailureDomain d);

}  // namespace ecf::cluster
