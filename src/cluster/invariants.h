// Cluster-level invariants for the SimInvariantChecker.
//
// Validated after every simulation event (ClusterConfig::check_invariants):
//
//   pg-state-machine   — every PG state transition follows the legal edge
//                        set of the peering/recovery protocol, and per-PG
//                        structural invariants hold (missing positions
//                        sorted/unique/in-range and paired 1:1 with remap
//                        targets, inflight within osd_recovery_max_active,
//                        recovering implies reserved);
//   conservation       — placed objects are conserved across osdmap epochs
//                        (Σ pg.num_objects equals the applied workload) and
//                        stored chunk/byte accounting never runs backwards;
//   cache-accounting   — each BlueStore's KV+meta+data cache partitions sum
//                        to at most the cache size and every hit rate stays
//                        in [0, 1];
//   reservation-slots  — per-OSD backfill reservations stay within
//                        osd_max_backfills and are exactly the slots held
//                        by reserved PGs.
//
// Violations fail ECF_CHECK contracts (throw in tests, abort in tools).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/types.h"

namespace ecf::sim {
class SimInvariantChecker;
}

namespace ecf::cluster {

class Cluster;

class ClusterInvariants {
 public:
  explicit ClusterInvariants(const Cluster& cluster);

  // Register the four invariant groups with `checker`.
  void install(sim::SimInvariantChecker& checker);

  // Run one full validation pass (also called per-event once installed).
  void check_pg_states();
  void check_conservation();
  void check_cache_accounting();
  void check_reservations();

  // The legal edge set of the PG recovery state machine.
  static bool legal_transition(PgState from, PgState to);

 private:
  const Cluster* cluster_;
  std::vector<PgState> last_states_;       // per-PG, for transition edges
  std::uint64_t last_total_onodes_ = 0;    // monotone accounting floors
  std::uint64_t last_total_stored_ = 0;
};

}  // namespace ecf::cluster
