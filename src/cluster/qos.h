// Recovery QoS: a dmClock-style tag scheduler plus the knobs for
// load-aware helper selection.
//
// Ceph's op scheduler (mClock/dmClock, Gulati et al., OSDI '10) assigns
// every op a reservation tag, a weight tag and a limit tag; the queue
// dispatches by reservation tag while reservations are unmet, then by
// weight tag, and never ahead of the limit tag. We model the *delay* that
// ordering imposes instead of the queue itself: each submission computes,
// from per-(OSD, class) tag state and the op's estimated device cost, how
// long the scheduler would hold the op before letting it reach the device.
// That delay feeds the existing `extra_seconds` hook on sim::Disk (scrub,
// client) or defers the charging event itself (recovery), so the device
// FIFO stays the single point of serialization.
//
// Determinism: tag arithmetic is pure — a function of (previous tags,
// simulated now, configured rates, op cost) only. No wall clock, no
// randomness, no allocation. Runs replay bit-identically across repeats
// and event-lane counts, which is what makes the QoS sweep benchable.
//
// Everything here is default-off: with QosConfig::enabled == false the
// cluster routes the legacy flat `mclock_queue_delay_s` constant through
// queue_extra_s() and never touches tag state, so seed goldens stay
// bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecf::cluster::qos {

// Op classes the per-OSD scheduler distinguishes. Values index the
// per-class arrays below; keep them dense.
enum class OpClass : std::uint8_t { kClient = 0, kRecovery = 1, kScrub = 2 };
inline constexpr std::size_t kNumOpClasses = 3;

const char* to_string(OpClass c);

// dmClock parameters of one op class. Reservation/limit rates are in
// grants per simulated second; 0 disables the corresponding tag (no
// reservation / no cap). Weight is unitless: under contention a class is
// granted device time proportional to its weight's share of the active
// weight sum.
struct ClassParams {
  double reservation_ops = 0;  // guaranteed dispatch rate
  double weight = 1.0;         // proportional share under contention
  double limit_ops = 0;        // hard dispatch-rate ceiling
};

struct QosConfig {
  bool enabled = false;
  // A class idle for longer than this drops out of the active-weight sum
  // and its tags reset on the next submission (dmClock's idle handling:
  // an idle class must not bank credit).
  double idle_reset_s = 2.0;
  // Defaults favor foreground traffic: the client class holds a
  // reservation high enough that its ops are effectively never held (its
  // queueing is already modeled by the device FIFO), recovery competes on
  // weight alone (the axis bench_qos sweeps), scrub scavenges.
  ClassParams client{500.0, 100.0, 0.0};
  ClassParams recovery{0.0, 10.0, 0.0};
  ClassParams scrub{0.0, 1.0, 0.0};

  const ClassParams& params(OpClass c) const {
    switch (c) {
      case OpClass::kClient: return client;
      case OpClass::kRecovery: return recovery;
      case OpClass::kScrub: return scrub;
    }
    return client;  // unreachable; keeps -Wreturn-type quiet
  }
  ClassParams& params(OpClass c) {
    return const_cast<ClassParams&>(
        static_cast<const QosConfig*>(this)->params(c));
  }
};

// Knobs of the load-aware helper ranking (recovery.cc builds the
// preference, ec::ErasureCode::repair_dag_ranked consumes it). The score
// of a candidate helper OSD is a weighted sum of live congestion signals,
// all expressed in seconds so the weights are unitless:
//
//   score = disk_weight      * disk backlog (busy_until - now)
//         + link_weight      * fabric link backlog (tx + rx)
//         + inflight_penalty_s * in-flight fabric commands on the host
//         + backfill_penalty_s * active recovery reservations on the OSD
//         + served_weight    * cumulative recovery bytes served / disk bw
//
// The last term levels long-run helper load even when instantaneous
// backlogs tie; ties after all that break by OSD id, so selection is
// deterministic across runs and lane counts.
struct HelperSelectionConfig {
  bool enabled = false;
  double disk_weight = 1.0;
  double link_weight = 1.0;
  double inflight_penalty_s = 2e-3;
  double backfill_penalty_s = 0.05;
  double served_weight = 1.0;
};

// --- pure tag arithmetic (unit-tested directly) -----------------------------

// Advance a dmClock tag: the op's tag is 1/rate past the previous tag, but
// never in the past. rate <= 0 returns `now` (tag disabled).
double advance_tag(double prev_tag, double now, double rate);

// Weight-tag spacing after an op costing `cost_s` device-seconds: to hold
// a class at share w / (w + other) of device time, consecutive grants must
// be at least cost_s * other / w apart. No competition (other == 0) means
// no spacing — dmClock is work-conserving, a sole-active class is never
// deferred.
double weight_gap(double cost_s, double weight, double other_weight_sum);

// Per-(OSD, class) tag state. Tags start at -infinity-ish so the first
// submission after construction (or an idle reset) is granted immediately.
struct TagState {
  static constexpr double kNeverTag = -1e300;
  double r_tag = kNeverTag;      // reservation tag
  double w_tag = kNeverTag;      // weight (proportional-share) tag
  double l_tag = kNeverTag;      // limit tag
  double last_submit = kNeverTag;
};

// The dmClock state of one OSD: tag state per op class. submit() is the
// whole scheduler — it returns the grant delay (>= 0 seconds) the op of
// class `c` would wait before reaching the device, and updates the tags.
// `op_cost_s` is the op's estimated device occupancy in seconds; it is
// what the weight tag spaces by, so a class burst self-serializes into
// its proportional share instead of landing on the device at once.
struct DmClockOsd {
  TagState cls[kNumOpClasses];

  double submit(const QosConfig& cfg, OpClass c, double now, double op_cost_s);
};

}  // namespace ecf::cluster::qos
