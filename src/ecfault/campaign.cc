#include "ecfault/campaign.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/bytes.h"
#include "util/stats.h"

namespace ecf::ecfault {

namespace {

// Joins the owned workers on every exit path — including an exception from
// a pool emplace_back or from the calling thread's own work share. Leaving
// scope with unjoined std::threads would std::terminate.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::vector<std::thread>& pool) : pool_(pool) {}
  ~ThreadJoiner() {
    for (std::thread& t : pool_) {
      if (t.joinable()) t.join();
    }
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::vector<std::thread>& pool_;
};

std::size_t resolve_parallelism(std::size_t requested, std::size_t variants) {
  std::size_t threads = requested;
  if (threads == 0) {
    if (const char* env = std::getenv("ECF_CAMPAIGN_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) threads = static_cast<std::size_t>(v);
    }
  }
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return std::min(threads, variants);
}

}  // namespace

void Campaign::note_variant_done(const std::string& label) const {
  std::lock_guard<std::mutex> lk(progress_mu_);
  ++completed_;
  if (progress_) progress_(completed_, variants_.size(), label);
}

std::vector<VariantResult> Campaign::run(
    const std::string& reference_label) const {
  if (variants_.empty()) throw std::logic_error("campaign has no variants");
  {
    std::lock_guard<std::mutex> lk(progress_mu_);
    completed_ = 0;
  }
  std::vector<VariantResult> results(variants_.size());
  auto run_one = [this, &results](std::size_t i) {
    ExperimentProfile p = base_;
    variants_[i].apply(p);
    p.name = variants_[i].label;
    results[i].label = variants_[i].label;
    results[i].campaign = Coordinator::run_profile(p);
    note_variant_done(variants_[i].label);
  };
  const std::size_t nthreads =
      resolve_parallelism(parallelism_, variants_.size());
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < variants_.size(); ++i) run_one(i);
  } else {
    // Each worker claims the next undone variant; every variant runs a
    // fully self-contained sim (own engine, cluster, RNG seeds), so the
    // only shared state is the claim counter and the preallocated result
    // slots, and results land in declaration order by construction.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(variants_.size());
    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= variants_.size()) return;
        try {
          run_one(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(nthreads - 1);
    {
      ThreadJoiner joiner(pool);
      for (std::size_t t = 0; t + 1 < nthreads; ++t) pool.emplace_back(work);
      work();  // the calling thread participates
    }
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
  const std::string ref =
      reference_label.empty() ? results.front().label : reference_label;
  double base_total = 0;
  for (const auto& r : results) {
    if (r.label == ref) base_total = r.campaign.mean_total;
  }
  if (base_total <= 0) {
    throw std::invalid_argument("campaign reference '" + ref +
                                "' missing or failed");
  }
  for (auto& r : results) {
    r.normalized = r.campaign.mean_total / base_total;
  }
  return results;
}

std::string Campaign::to_table(const std::vector<VariantResult>& results) {
  util::TextTable table({"variant", "total(s)", "checking(s)", "recovery(s)",
                         "normalized", "runs"});
  for (const auto& r : results) {
    table.add_row({r.label, util::fmt_double(r.campaign.mean_total, 0),
                   util::fmt_double(r.campaign.mean_checking, 0),
                   util::fmt_double(r.campaign.mean_recovery, 0),
                   util::fmt_double(r.normalized, 3),
                   std::to_string(r.campaign.runs)});
  }
  return table.to_string();
}

std::vector<Variant> code_axis() {
  return {
      {"rs(12,9)",
       [](ExperimentProfile& p) {
         p.cluster.pool.ec_profile = {{"plugin", "jerasure"},
                                      {"technique", "reed_sol_van"},
                                      {"k", "9"},
                                      {"m", "3"}};
       }},
      {"clay(12,9,11)",
       [](ExperimentProfile& p) {
         p.cluster.pool.ec_profile = {
             {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
       }},
  };
}

std::vector<Variant> cache_axis() {
  return {
      {"kv-optimized",
       [](ExperimentProfile& p) {
         p.cluster.cache = cluster::CacheConfig::kv_optimized();
       }},
      {"data-optimized",
       [](ExperimentProfile& p) {
         p.cluster.cache = cluster::CacheConfig::data_optimized();
       }},
      {"autotune",
       [](ExperimentProfile& p) {
         p.cluster.cache = cluster::CacheConfig::autotuned();
       }},
  };
}

std::vector<Variant> pg_axis(std::vector<std::int32_t> values) {
  std::vector<Variant> out;
  for (const std::int32_t pg : values) {
    out.push_back({"pg=" + std::to_string(pg), [pg](ExperimentProfile& p) {
                     p.cluster.pool.pg_num = pg;
                   }});
  }
  return out;
}

std::vector<Variant> stripe_axis(std::vector<std::uint64_t> values) {
  std::vector<Variant> out;
  for (const std::uint64_t su : values) {
    out.push_back(
        {"su=" + util::format_bytes(su),
         [su](ExperimentProfile& p) {
           p.cluster.pool.stripe_unit = ecf::util::Bytes(su);
         }});
  }
  return out;
}

std::vector<Variant> failure_axis(std::vector<int> counts) {
  std::vector<Variant> out;
  for (const int count : counts) {
    for (const auto topo :
         {FaultTopology::kSameHost, FaultTopology::kDifferentHosts}) {
      out.push_back({std::to_string(count) + "f/" + to_string(topo),
                     [count, topo](ExperimentProfile& p) {
                       p.fault.level = FaultLevel::kDevice;
                       p.fault.count = count;
                       p.fault.topology = topo;
                     }});
    }
  }
  return out;
}

std::vector<Variant> cross(const std::vector<Variant>& a,
                           const std::vector<Variant>& b) {
  std::vector<Variant> out;
  for (const Variant& x : a) {
    for (const Variant& y : b) {
      out.push_back({x.label + " x " + y.label,
                     [ax = x.apply, by = y.apply](ExperimentProfile& p) {
                       ax(p);
                       by(p);
                     }});
    }
  }
  return out;
}

CampaignSpec campaign_from_json(const util::Json& doc) {
  ExperimentProfile base;
  if (doc.has("base")) base = ExperimentProfile::from_json(doc.at("base"));

  std::vector<Variant> variants;
  if (doc.has("axes")) {
    for (const util::Json& axis : doc.at("axes").as_array()) {
      const std::string name = axis.at("axis").as_string();
      std::vector<Variant> next;
      if (name == "codes") {
        next = code_axis();
      } else if (name == "cache") {
        next = cache_axis();
      } else if (name == "pg_num") {
        std::vector<std::int32_t> values;
        for (const auto& v : axis.at("values").as_array()) {
          values.push_back(static_cast<std::int32_t>(v.as_int()));
        }
        next = pg_axis(values);
      } else if (name == "stripe_unit") {
        std::vector<std::uint64_t> values;
        for (const auto& v : axis.at("values").as_array()) {
          values.push_back(v.as_uint());
        }
        next = stripe_axis(values);
      } else if (name == "failures") {
        std::vector<int> counts;
        for (const auto& v : axis.at("counts").as_array()) {
          counts.push_back(static_cast<int>(v.as_int()));
        }
        next = failure_axis(counts);
      } else {
        throw std::invalid_argument("unknown campaign axis '" + name + "'");
      }
      variants = variants.empty() ? next : cross(variants, next);
    }
  }
  if (variants.empty()) {
    throw std::invalid_argument("campaign has no axes");
  }
  CampaignSpec spec{Campaign(base), doc.get_or("reference", std::string())};
  spec.campaign.add_all(std::move(variants));
  return spec;
}

}  // namespace ecf::ecfault
