#include "ecfault/iostat.h"

#include <algorithm>
#include <cstdio>

#include "util/hotpath.h"

namespace ecf::ecfault {

IostatCollector::IostatCollector(cluster::Cluster* cluster, double interval_s,
                                 double horizon_s, cluster::LogSinkFn sink)
    : cluster_(cluster),
      interval_(interval_s),
      horizon_(horizon_s),
      sink_(std::move(sink)) {
  const int n = cluster_->config().num_osds();
  last_.resize(static_cast<std::size_t>(n));
  last_fabric_.resize(static_cast<std::size_t>(n));
  for (cluster::OsdId o = 0; o < n; ++o) {
    last_[static_cast<std::size_t>(o)] = cluster_->disk_stats(o);
    last_fabric_[static_cast<std::size_t>(o)] = cluster_->fabric_stats(o);
  }
  cluster_->engine().schedule(interval_, [this] { tick(); },
                              sim::EventTag::kIostat);
}

void IostatCollector::tick() {
  const double now = cluster_->engine().now();
  const int n = cluster_->config().num_osds();
  for (cluster::OsdId o = 0; o < n; ++o) {
    const auto cur = cluster_->disk_stats(o);
    auto& prev = last_[static_cast<std::size_t>(o)];
    IostatSample s;
    s.time = ecf::util::SimSec(now);
    s.osd = o;
    s.read_bps = ecf::util::Rate(
        static_cast<double>(cur.bytes_read - prev.bytes_read) / interval_);
    s.write_bps = ecf::util::Rate(
        static_cast<double>(cur.bytes_written - prev.bytes_written) /
        interval_);
    s.iops = static_cast<double>(cur.io_count - prev.io_count) / interval_;
    s.util =
        std::min(1.0, (cur.busy_seconds - prev.busy_seconds) / interval_);
    prev = cur;
    const auto& fcur = cluster_->fabric_stats(o);
    auto& fprev = last_fabric_[static_cast<std::size_t>(o)];
    s.fabric_wait_s = ecf::util::SimSec(fcur.transport_wait_s - fprev.transport_wait_s);
    s.fabric_retries = fcur.retries - fprev.retries;
    fprev = fcur;
    // Quiet devices are skipped, like iostat with a filter — keeps the log
    // volume proportional to activity.
    if (s.read_bps == 0 && s.write_bps == 0 && s.iops == 0 &&
        s.fabric_wait_s == 0 && s.fabric_retries == 0) {
      continue;
    }
    samples_.push_back(s);  ECF_ALLOC_OK("time-series accumulation: the collector's product, bounded by horizon/interval");
    if (sink_) {
      char msg[200];
      if (s.fabric_wait_s > 0 || s.fabric_retries > 0) {
        std::snprintf(msg, sizeof(msg),
                      "iostat: rMB/s=%.1f wMB/s=%.1f iops=%.0f util=%.0f%% "
                      "fwait=%.3fs fretry=%llu",
                      s.read_bps / 1e6, s.write_bps / 1e6, s.iops,
                      100.0 * s.util, s.fabric_wait_s.count(),
                      static_cast<unsigned long long>(s.fabric_retries));
      } else {
        std::snprintf(msg, sizeof(msg),
                      "iostat: rMB/s=%.1f wMB/s=%.1f iops=%.0f util=%.0f%%",
                      s.read_bps / 1e6, s.write_bps / 1e6, s.iops,
                      100.0 * s.util);
      }
      sink_({now, "osd." + std::to_string(o), "iostat", msg});
    }
  }
  // Foreground client traffic, as one cluster-wide row per tick: interval
  // throughput and tail latency from histogram bucket deltas. This is how
  // recovery interference shows up live in the log stream — the client p99
  // climbs while repair I/O competes for the same disks.
  const auto client = cluster_->report().client_latency_all();
  const std::uint64_t dops = client.count_since(last_client_);
  if (dops > 0) {
    ClientIntervalSample cs;
    cs.time = ecf::util::SimSec(now);
    cs.ops_per_s = static_cast<double>(dops) / interval_;
    cs.p50_s = ecf::util::SimSec(client.percentile_since(last_client_, 0.50));
    cs.p99_s = ecf::util::SimSec(client.percentile_since(last_client_, 0.99));
    client_samples_.push_back(cs);  ECF_ALLOC_OK("time-series accumulation: the collector's product, bounded by horizon/interval");
    if (sink_) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "iostat: ops/s=%.0f p50=%.2fms p99=%.2fms",
                    cs.ops_per_s, 1e3 * cs.p50_s, 1e3 * cs.p99_s);
      sink_({now, "client", "iostat", msg});
    }
    last_client_ = client;
  }
  if (now + interval_ <= horizon_) {
    cluster_->engine().schedule(interval_, [this] { tick(); },
                              sim::EventTag::kIostat);
  }
}

double IostatCollector::peak_util(cluster::OsdId osd) const {
  double peak = 0;
  for (const auto& s : samples_) {
    if (s.osd == osd) peak = std::max(peak, s.util);
  }
  return peak;
}

cluster::OsdId IostatCollector::busiest_osd() const {
  std::vector<double> moved(
      static_cast<std::size_t>(cluster_->config().num_osds()), 0.0);
  for (const auto& s : samples_) {
    moved[static_cast<std::size_t>(s.osd)] +=
        (s.read_bps + s.write_bps) * interval_;
  }
  const auto it = std::max_element(moved.begin(), moved.end());
  return it == moved.end()
             ? cluster::kNoOsd
             : static_cast<cluster::OsdId>(it - moved.begin());
}

double IostatCollector::total_bytes_moved() const {
  double total = 0;
  for (const auto& s : samples_) {
    total += (s.read_bps + s.write_bps) * interval_;
  }
  return total;
}

}  // namespace ecf::ecfault
