#include "ecfault/timeline.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace ecf::ecfault {

Timeline analyze_timeline(const std::vector<cluster::LogRecord>& merged) {
  Timeline tl;
  double recovery_start_abs = -1;
  double recovery_end_abs = -1;
  for (const auto& rec : merged) {
    if (tl.detection_time < 0 &&
        util::contains(rec.message, "failure detected")) {
      tl.detection_time = rec.time;
    }
    if (recovery_start_abs < 0 &&
        util::contains(rec.message, "start recovery I/O")) {
      recovery_start_abs = rec.time;
    }
    if (util::contains(rec.message, "recovery completed")) {
      recovery_end_abs = std::max(recovery_end_abs, rec.time);
    }
  }
  if (tl.detection_time < 0) return tl;
  if (recovery_start_abs >= 0) {
    tl.recovery_start = recovery_start_abs - tl.detection_time;
  }
  if (recovery_end_abs >= 0) {
    tl.recovery_end = recovery_end_abs - tl.detection_time;
  }
  // Annotate the landmark events (first occurrence of each marker), the
  // same ones Fig. 3 calls out.
  const char* markers[] = {
      "failure detected",        "receiving heartbeats",
      "check recovery resource", "queueing recovery",
      "start recovery I/O",      "report recovery I/O",
      "recovery completed",
  };
  for (const char* marker : markers) {
    for (const auto& rec : merged) {
      if (util::contains(rec.message, marker)) {
        tl.events.push_back({rec.time - tl.detection_time, rec.node, marker});
        break;
      }
    }
  }
  std::sort(tl.events.begin(), tl.events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.time < b.time;
            });
  return tl;
}

std::string Timeline::render() const {
  if (!valid()) return "timeline: incomplete (no recovery observed)\n";
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Failure detected (0s) | EC Recovery started (%.0fs) | "
                "EC Recovery finished (%.0fs)\n",
                recovery_start, recovery_end);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  System Checking Period: %.0fs (%.1f%% of total)\n",
                checking_period(), 100.0 * checking_fraction());
  out += buf;
  std::snprintf(buf, sizeof(buf), "  EC Recovery Period:     %.0fs (%.1f%%)\n",
                ec_recovery_period(),
                100.0 * (1.0 - checking_fraction()));
  out += buf;
  for (const auto& ev : events) {
    std::snprintf(buf, sizeof(buf), "  %8.1fs  %-8s %s\n", ev.time,
                  ev.node.c_str(), ev.message.c_str());
    out += buf;
  }
  return out;
}

util::Json Timeline::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("valid", valid());
  doc.set("detection_time", detection_time);
  doc.set("recovery_start", recovery_start);
  doc.set("recovery_end", recovery_end);
  doc.set("checking_period", valid() ? checking_period() : -1.0);
  doc.set("ec_recovery_period", valid() ? ec_recovery_period() : -1.0);
  doc.set("checking_fraction", valid() ? checking_fraction() : -1.0);
  util::Json evs = util::Json::array();
  for (const auto& ev : events) {
    util::Json e = util::Json::object();
    e.set("time", ev.time);
    e.set("node", ev.node);
    e.set("message", ev.message);
    evs.push_back(std::move(e));
  }
  doc.set("events", std::move(evs));
  return doc;
}

}  // namespace ecf::ecfault
