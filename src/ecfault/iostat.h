// iostat-style I/O sampling (§3.3: "On each DSS server, ECFault collects
// both general I/O information (via iostat) and DSS-specific logs").
//
// The collector arms a periodic sampling event on the cluster's simulation
// engine. Every interval it reads each OSD's device counters, computes the
// per-interval deltas (read/write throughput, IOPS, utilization — the
// iostat columns) and emits them as per-node log records so they flow
// through the same Logger/MsgBus pipeline as the DSS logs. It also keeps
// the full sample series for post-experiment analysis (peak utilization,
// busiest device, total traffic).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "util/histogram.h"
#include "util/units.h"

namespace ecf::ecfault {

struct IostatSample {
  util::SimSec time;
  cluster::OsdId osd = cluster::kNoOsd;
  util::Rate read_bps;    // bytes/s over the interval
  util::Rate write_bps;
  double iops = 0;
  double util = 0;        // busy fraction of the interval
  // NVMe-oF fabric counters (per-interval deltas; zero on the default
  // zero-cost transport, so the iostat log format only changes when a
  // transport model or network fault is active).
  util::SimSec fabric_wait_s;      // transport wait accumulated this tick
  std::uint64_t fabric_retries = 0;  // packet-loss / link-down retries
};

// One per-tick slice of foreground client traffic: ops served in the
// interval plus interval percentiles computed from histogram bucket
// deltas (no raw samples kept). Only recorded when a client load ran and
// completed at least one op that tick.
struct ClientIntervalSample {
  util::SimSec time;
  double ops_per_s = 0;
  util::SimSec p50_s;
  util::SimSec p99_s;
};

class IostatCollector {
 public:
  // Samples every `interval_s` until the engine runs out of events or
  // `horizon_s` is reached. Emits one record per OSD per tick through
  // `sink` (pass the LoggerFleet's sink to join the log pipeline).
  IostatCollector(cluster::Cluster* cluster, double interval_s,
                  double horizon_s, cluster::LogSinkFn sink = nullptr);

  const std::vector<IostatSample>& samples() const { return samples_; }
  const std::vector<ClientIntervalSample>& client_samples() const {
    return client_samples_;
  }

  // Post-experiment summaries.
  double peak_util(cluster::OsdId osd) const;
  cluster::OsdId busiest_osd() const;  // by total bytes moved
  double total_bytes_moved() const;

 private:
  void tick();

  cluster::Cluster* cluster_;
  util::SimSec interval_;
  util::SimSec horizon_;
  cluster::LogSinkFn sink_;
  std::vector<cluster::Cluster::DeviceStats> last_;
  std::vector<nvmeof::ConnectionStats> last_fabric_;
  util::LatencyHistogram last_client_;
  std::vector<IostatSample> samples_;
  std::vector<ClientIntervalSample> client_samples_;
};

}  // namespace ecf::ecfault
