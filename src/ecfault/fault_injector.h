// EC-aware, topology-aware fault injection (§3.2).
//
// The Fault Injector is white-box: it knows the EC profile and the CRUSH
// placement, and it never exceeds the guaranteed fault-tolerance capacity —
// for every PG, the number of injected losses among that PG's shards stays
// within n-k. Victim selection is topology-aware (same host vs different
// hosts, Fig. 2d) and prefers victims that actually hold pool data so every
// injection exercises recovery.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "ecfault/profile.h"

namespace ecf::ecfault {

struct InjectionPlan {
  FaultLevel level = FaultLevel::kDevice;
  std::vector<cluster::OsdId> device_victims;  // device-level faults
  std::vector<cluster::HostId> node_victims;   // node-level faults
};

class FaultInjector {
 public:
  explicit FaultInjector(const cluster::Cluster& cluster)
      : cluster_(&cluster) {}

  // Select victims per the spec. Throws std::invalid_argument when the
  // spec is unsatisfiable (not enough hosts / OSDs) or std::runtime_error
  // when every candidate set would exceed the code's tolerance.
  [[nodiscard]] InjectionPlan plan(const FaultSpec& spec) const;

  // Select the hosts a network fault hits. count == 0 means every host;
  // otherwise the first `count` data-bearing hosts (deterministic order).
  // Partitions can escalate into device losses (controller-loss timeout),
  // so a partition plan is additionally checked against EC tolerance as if
  // every OSD on the chosen hosts failed.
  [[nodiscard]] std::vector<cluster::HostId> plan_network(
      const NetworkFaultSpec& spec) const;

  // Would failing these OSDs stay within every PG's tolerance (<= n-k
  // losses per PG, counting already-failed shards)?
  [[nodiscard]] bool within_tolerance(
      const std::vector<cluster::OsdId>& victims) const;

 private:
  std::vector<cluster::OsdId> candidates_with_data() const;
  const cluster::Cluster* cluster_;
};

}  // namespace ecf::ecfault
