#include "ecfault/worker.h"

#include <stdexcept>

namespace ecf::ecfault {

void Worker::announce(const std::string& what) {
  if (bus_) {
    bus_->publish({"ecfault.control", "worker.host" + std::to_string(host_),
                   what, cluster_->engine().now()});
  }
}

void Worker::apply_device_fault(cluster::OsdId osd) {
  if (cluster_->host_of(osd) != host_) {
    throw std::invalid_argument("worker on host " + std::to_string(host_) +
                                " cannot fault osd." + std::to_string(osd));
  }
  announce("apply device fault: osd." + std::to_string(osd));
  cluster_->fail_device(osd);
}

void Worker::apply_node_fault() {
  announce("apply node fault: shutdown host " + std::to_string(host_));
  cluster_->fail_host(host_);
}

std::uint64_t Worker::apply_corruption_fault(cluster::OsdId osd,
                                             double fraction) {
  if (cluster_->host_of(osd) != host_) {
    throw std::invalid_argument("worker on host " + std::to_string(host_) +
                                " cannot corrupt osd." + std::to_string(osd));
  }
  announce("apply corruption fault: osd." + std::to_string(osd));
  return cluster_->corrupt_chunks(osd, fraction);
}

std::vector<nvmeof::SubsystemInfo> Worker::list_subsystems() {
  return cluster_->target(host_).list();
}

}  // namespace ecf::ecfault
