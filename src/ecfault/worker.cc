#include "ecfault/worker.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ecf::ecfault {

void Worker::announce(const std::string& what) {
  if (bus_) {
    bus_->publish({"ecfault.control", "worker.host" + std::to_string(host_),
                   what, cluster_->engine().now()});
  }
}

void Worker::apply_device_fault(cluster::OsdId osd) {
  // Ownership-contract check: cold (once per injected fault) and part of
  // the tested API surface (coordinator tests expect the throw).
  if (cluster_->host_of(osd) != host_) {
    throw std::invalid_argument("worker on host " + std::to_string(host_) +  // ecf-analyze: allow(event-throw)
                                " cannot fault osd." + std::to_string(osd));
  }
  announce("apply device fault: osd." + std::to_string(osd));
  cluster_->fail_device(osd);
}

void Worker::apply_node_fault() {
  announce("apply node fault: shutdown host " + std::to_string(host_));
  cluster_->fail_host(host_);
}

std::uint64_t Worker::apply_corruption_fault(cluster::OsdId osd,
                                             double fraction) {
  if (cluster_->host_of(osd) != host_) {
    throw std::invalid_argument("worker on host " + std::to_string(host_) +  // ecf-analyze: allow(event-throw)
                                " cannot corrupt osd." + std::to_string(osd));
  }
  announce("apply corruption fault: osd." + std::to_string(osd));
  return cluster_->corrupt_chunks(osd, fraction);
}

void Worker::apply_link_latency(double extra_s, double jitter_s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "apply link latency: +%.3fms jitter=%.3fms",
                extra_s * 1e3, jitter_s * 1e3);
  announce(buf);
  cluster_->set_link_latency(host_, extra_s, jitter_s);
}

void Worker::apply_bandwidth_cap(double bytes_per_s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "apply bandwidth cap: %.1fMB/s",
                bytes_per_s / 1e6);
  announce(buf);
  cluster_->set_link_bandwidth_cap(host_, bytes_per_s);
}

void Worker::apply_packet_loss(double rate) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "apply packet loss: rate=%.4f", rate);
  announce(buf);
  cluster_->set_packet_loss(host_, rate);
}

void Worker::apply_link_flap(double down_for_s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "apply link flap: down %.3fs", down_for_s);
  announce(buf);
  cluster_->flap_link(host_, down_for_s);
}

void Worker::apply_partition(double down_for_s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "apply network partition: %.1fs",
                down_for_s);
  announce(buf);
  cluster_->partition_host(host_, down_for_s);
}

void Worker::heal_partition() {
  announce("heal network partition");
  cluster_->heal_partition(host_);
}

std::vector<nvmeof::SubsystemInfo> Worker::list_subsystems() {
  auto list = cluster_->target(host_).list();
  std::sort(list.begin(), list.end(),
            [](const nvmeof::SubsystemInfo& a, const nvmeof::SubsystemInfo& b) {
              return a.nqn < b.nqn;
            });
  return list;
}

}  // namespace ecf::ecfault
