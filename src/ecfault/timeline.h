// Timeline analysis of a recovery cycle (Fig. 3).
//
// The paper derives its breakdown — System Checking Period vs EC Recovery
// Period — from the merged logs, keyed on specific messages ("failure
// detected", "start recovery I/O", "recovery completed"). This analyzer
// does the same from the Coordinator's merged stream, so the measurement
// path is logs-first, exactly like the real framework (the simulator's
// internal RecoveryReport exists too, and tests assert both agree).
#pragma once

#include <string>
#include <vector>

#include "cluster/types.h"
#include "util/json.h"

namespace ecf::ecfault {

struct TimelineEvent {
  double time = 0;       // seconds since failure detection
  std::string node;
  std::string message;
};

struct Timeline {
  double detection_time = -1;       // absolute sim time of detection
  double recovery_start = -1;       // relative to detection
  double recovery_end = -1;         // relative to detection
  std::vector<TimelineEvent> events;  // annotated, relative times

  bool valid() const {
    return detection_time >= 0 && recovery_start >= 0 &&
           recovery_end >= recovery_start;
  }
  double checking_period() const { return recovery_start; }
  double ec_recovery_period() const { return recovery_end - recovery_start; }
  double total() const { return recovery_end; }
  double checking_fraction() const {
    return total() > 0 ? checking_period() / total() : 0;
  }

  // ASCII rendering in the style of Fig. 3.
  std::string render() const;
  // Machine-readable form (for dashboards / regression tracking).
  util::Json to_json() const;
};

// Extract the timeline from time-merged log records.
Timeline analyze_timeline(const std::vector<cluster::LogRecord>& merged);

}  // namespace ecf::ecfault
