// Configuration campaigns: declarative sweeps over experiment variants.
//
// The paper's §4 is a configuration study — every figure is "take the
// default experiment, vary one knob, compare". This module captures that
// pattern: a Campaign owns a base profile and a list of named variants
// (mutations of the base); run() executes each through the Coordinator and
// returns a result table, optionally normalized to one variant, rendered
// like the paper's figures. The standard axes (caching schemes, pg_num,
// stripe units, codes, failure modes) come as prebuilt variant factories.
//
// Variants are independent seeded simulations, so run() executes them on a
// small worker pool (each variant owns its own sim engine); results are
// collected in declaration order, so the output is byte-identical to a
// serial run regardless of thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ecfault/coordinator.h"
#include "util/json.h"

namespace ecf::ecfault {

struct Variant {
  std::string label;
  std::function<void(ExperimentProfile&)> apply;
};

struct VariantResult {
  std::string label;
  CampaignResult campaign;
  double normalized = 0;  // mean_total / reference mean_total
};

class Campaign {
 public:
  explicit Campaign(ExperimentProfile base) : base_(std::move(base)) {}

  Campaign& add(Variant v) {
    variants_.push_back(std::move(v));
    return *this;
  }
  Campaign& add_all(std::vector<Variant> vs) {
    for (auto& v : vs) variants_.push_back(std::move(v));
    return *this;
  }

  // Worker-pool width for run(). 0 (default) = auto: the smaller of the
  // variant count and std::thread::hardware_concurrency(), overridable via
  // the ECF_CAMPAIGN_THREADS environment variable. 1 forces serial
  // execution in the calling thread.
  Campaign& parallelism(std::size_t threads) {
    parallelism_ = threads;
    return *this;
  }

  // Run every variant; normalize to `reference_label` (empty = first).
  // Results are in declaration order and independent of parallelism.
  std::vector<VariantResult> run(const std::string& reference_label = "") const;

  // Markdown table of a result set (the benches' output format).
  static std::string to_table(const std::vector<VariantResult>& results);

  std::size_t size() const { return variants_.size(); }

 private:
  ExperimentProfile base_;
  std::vector<Variant> variants_;
  std::size_t parallelism_ = 0;
};

// --- standard axes (the paper's Table 1 subset) -----------------------------

// RS(12,9) and Clay(12,9,11) variants of the same experiment.
std::vector<Variant> code_axis();
// The Table 2 caching schemes.
std::vector<Variant> cache_axis();
// pg_num values.
std::vector<Variant> pg_axis(std::vector<std::int32_t> values);
// stripe_unit values.
std::vector<Variant> stripe_axis(std::vector<std::uint64_t> values);
// Failure modes: count x topology (device level).
std::vector<Variant> failure_axis(std::vector<int> counts);

// Cartesian product of two axes ("RS x pg=1", ...).
std::vector<Variant> cross(const std::vector<Variant>& a,
                           const std::vector<Variant>& b);

// Build a campaign from a JSON document:
//   { "base": { <experiment profile> },
//     "axes": [ {"axis": "codes"} | {"axis": "cache"} |
//               {"axis": "pg_num", "values": [1,16,256]} |
//               {"axis": "stripe_unit", "values": [4096, ...]} |
//               {"axis": "failures", "counts": [2,3]} ],
//     "reference": "rs(12,9) x pg=256" }
// Multiple axes are crossed in order. Throws on unknown axis names.
struct CampaignSpec {
  Campaign campaign;
  std::string reference;
};
CampaignSpec campaign_from_json(const util::Json& doc);

}  // namespace ecf::ecfault
