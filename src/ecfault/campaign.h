// Configuration campaigns: declarative sweeps over experiment variants.
//
// The paper's §4 is a configuration study — every figure is "take the
// default experiment, vary one knob, compare". This module captures that
// pattern: a Campaign owns a base profile and a list of named variants
// (mutations of the base); run() executes each through the Coordinator and
// returns a result table, optionally normalized to one variant, rendered
// like the paper's figures. The standard axes (caching schemes, pg_num,
// stripe units, codes, failure modes) come as prebuilt variant factories.
//
// Variants are independent seeded simulations, so run() executes them on a
// small worker pool (each variant owns its own sim engine); results are
// collected in declaration order, so the output is byte-identical to a
// serial run regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "ecfault/coordinator.h"
#include "util/json.h"
#include "util/thread_annotations.h"

namespace ecf::ecfault {

struct Variant {
  std::string label;
  std::function<void(ExperimentProfile&)> apply;
};

struct VariantResult {
  std::string label;
  CampaignResult campaign;
  double normalized = 0;  // mean_total / reference mean_total
};

class Campaign {
 public:
  explicit Campaign(ExperimentProfile base) : base_(std::move(base)) {}

  // Movable (campaign_from_json returns one by value); the mutex and the
  // per-run progress counter are deliberately not transferred — moving a
  // Campaign mid-run is a caller bug, and a fresh object starts at 0 done.
  Campaign(Campaign&& other) noexcept
      : base_(std::move(other.base_)),
        variants_(std::move(other.variants_)),
        parallelism_(other.parallelism_),
        progress_(std::move(other.progress_)) {}
  Campaign& operator=(Campaign&& other) noexcept {
    base_ = std::move(other.base_);
    variants_ = std::move(other.variants_);
    parallelism_ = other.parallelism_;
    progress_ = std::move(other.progress_);
    return *this;
  }
  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  Campaign& add(Variant v) {
    variants_.push_back(std::move(v));
    return *this;
  }
  Campaign& add_all(std::vector<Variant> vs) {
    for (auto& v : vs) variants_.push_back(std::move(v));
    return *this;
  }

  // Worker-pool width for run(). 0 (default) = auto: the smaller of the
  // variant count and std::thread::hardware_concurrency(), overridable via
  // the ECF_CAMPAIGN_THREADS environment variable. 1 forces serial
  // execution in the calling thread.
  Campaign& parallelism(std::size_t threads) {
    parallelism_ = threads;
    return *this;
  }

  // Progress observer: invoked once per finished variant with the number
  // done so far, the total, and the finished variant's label. Workers call
  // it from the pool, serialized under an internal mutex, so the callback
  // needs no locking of its own (but must not call back into run()).
  using ProgressFn = std::function<void(
      std::size_t done, std::size_t total, const std::string& label)>;
  Campaign& on_progress(ProgressFn fn) {
    progress_ = std::move(fn);
    return *this;
  }

  // Run every variant; normalize to `reference_label` (empty = first).
  // Results are in declaration order and independent of parallelism.
  std::vector<VariantResult> run(const std::string& reference_label = "") const;

  // Markdown table of a result set (the benches' output format).
  static std::string to_table(const std::vector<VariantResult>& results);

  std::size_t size() const { return variants_.size(); }

 private:
  // Bumps completed_ and fires progress_ under progress_mu_.
  void note_variant_done(const std::string& label) const
      ECF_EXCLUDES(progress_mu_);

  ExperimentProfile base_;
  std::vector<Variant> variants_;
  std::size_t parallelism_ = 0;
  ProgressFn progress_;
  // Run-shared progress state: every pool worker bumps the counter, so it
  // lives behind a mutex (mutable: run() is const and reentrant-safe
  // serially; concurrent run() calls on one Campaign share the counter).
  mutable std::mutex progress_mu_;
  mutable std::size_t completed_ ECF_GUARDED_BY(progress_mu_) = 0;
};

// --- standard axes (the paper's Table 1 subset) -----------------------------

// RS(12,9) and Clay(12,9,11) variants of the same experiment.
std::vector<Variant> code_axis();
// The Table 2 caching schemes.
std::vector<Variant> cache_axis();
// pg_num values.
std::vector<Variant> pg_axis(std::vector<std::int32_t> values);
// stripe_unit values.
std::vector<Variant> stripe_axis(std::vector<std::uint64_t> values);
// Failure modes: count x topology (device level).
std::vector<Variant> failure_axis(std::vector<int> counts);

// Cartesian product of two axes ("RS x pg=1", ...).
std::vector<Variant> cross(const std::vector<Variant>& a,
                           const std::vector<Variant>& b);

// Build a campaign from a JSON document:
//   { "base": { <experiment profile> },
//     "axes": [ {"axis": "codes"} | {"axis": "cache"} |
//               {"axis": "pg_num", "values": [1,16,256]} |
//               {"axis": "stripe_unit", "values": [4096, ...]} |
//               {"axis": "failures", "counts": [2,3]} ],
//     "reference": "rs(12,9) x pg=256" }
// Multiple axes are crossed in order. Throws on unknown axis names.
struct CampaignSpec {
  Campaign campaign;
  std::string reference;
};
CampaignSpec campaign_from_json(const util::Json& doc);

}  // namespace ecf::ecfault
