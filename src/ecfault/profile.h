// Experiment profiles — the EC Manager's configuration surface (§3,
// "manages all EC-related configurations in an experimental profile").
//
// A profile is a JSON document describing one experiment: the cluster
// shape, the EC pool (plugin, k/m/d, stripe_unit, pg_num, failure domain),
// the BlueStore caching scheme, the workload, and the fault specification
// (how many faults, device- or node-level, and their topology). Profiles
// round-trip through JSON so campaigns can be stored on disk and replayed.
#pragma once

#include <string>
#include <vector>

#include "cluster/config.h"
#include "util/json.h"
#include "util/units.h"

namespace ecf::ecfault {

// Fault level of §3.2: device faults remove NVMe subsystems; node faults
// shut whole machines down. kCorruption extends the prototype with silent
// bit-rot on stored shards (found by deep scrub, repaired in place).
enum class FaultLevel { kDevice, kNode, kCorruption };

// Topology constraint for concurrent device faults (Fig. 2d's x-axis).
enum class FaultTopology { kAnywhere, kSameHost, kDifferentHosts };

struct FaultSpec {
  FaultLevel level = FaultLevel::kDevice;
  int count = 1;
  FaultTopology topology = FaultTopology::kAnywhere;
  util::SimSec inject_at_s{10.0};  // injection time after experiment start
  double corrupt_fraction = 0.05;  // kCorruption: fraction of shards hit
};

// Network-level fault levers operating on the NVMe-oF fabric links (one
// link per host; every OSD on the host shares it). These degrade rather
// than destroy: latency/bandwidth/loss make all device I/O slower, a flap
// stalls it for a window, and a partition long enough to exhaust the
// controller-loss timeout escalates into device losses.
enum class NetFaultKind {
  kLinkLatency,
  kBandwidthCap,
  kPacketLoss,
  kLinkFlap,
  kPartition,
};

struct NetworkFaultSpec {
  NetFaultKind kind = NetFaultKind::kLinkLatency;
  int count = 0;  // hosts hit; 0 = every host (cluster-wide dirty network)
  util::SimSec inject_at_s{10.0};
  util::SimSec latency_s{0.005};  // kLinkLatency: added per hop
  util::SimSec jitter_s{0};       // kLinkLatency: uniform extra per hop
  util::Rate bandwidth_bytes_per_s{100e6};  // kBandwidthCap
  double loss_rate = 0.01;    // kPacketLoss: expected losses per command
  util::SimSec down_for_s{0.2};   // kLinkFlap / kPartition window
};

struct ExperimentProfile {
  std::string name = "default";
  cluster::ClusterConfig cluster;
  FaultSpec fault;
  // Network faults applied on top of (or instead of) the device/node
  // fault; empty by default. The cluster's transport model is selected by
  // `fabric` ("none" keeps the ideal zero-cost transport; "tcp"/"rdma"
  // install the corresponding sim::FabricParams profile).
  std::vector<NetworkFaultSpec> network_faults;
  std::string fabric = "none";
  int runs = 3;  // the paper averages three runs

  // Serialize to / parse from JSON. parse() validates field values and
  // throws util::JsonError / std::invalid_argument on malformed profiles.
  util::Json to_json() const;
  static ExperimentProfile from_json(const util::Json& doc);
  std::string dump(int indent = 2) const { return to_json().dump(indent); }
  static ExperimentProfile parse(const std::string& text) {
    return from_json(util::Json::parse(text));
  }
};

const char* to_string(FaultLevel level);
const char* to_string(FaultTopology topo);
const char* to_string(NetFaultKind kind);
FaultLevel fault_level_from_string(const std::string& s);
FaultTopology fault_topology_from_string(const std::string& s);
NetFaultKind net_fault_kind_from_string(const std::string& s);

}  // namespace ecf::ecfault
