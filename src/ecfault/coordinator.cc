#include "ecfault/coordinator.h"

#include <cmath>

#include "util/stats.h"

namespace ecf::ecfault {

ExperimentResult Coordinator::run_experiment(const ExperimentProfile& profile) {
  MsgBus bus;
  LoggerFleet loggers(&bus);
  cluster::ClusterConfig cfg = profile.cluster;
  if (profile.fabric == "tcp") {
    cfg.hw.fabric = sim::tcp_fabric();
  } else if (profile.fabric == "rdma") {
    cfg.hw.fabric = sim::rdma_fabric();
  }
  cluster::Cluster cl(cfg, loggers.sink());
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();  // no-op unless configured
  cl.start_scrub();        // no-op unless configured

  // One worker per node, as in Figure 1.
  std::vector<Worker> workers;
  workers.reserve(static_cast<std::size_t>(profile.cluster.num_hosts));
  for (cluster::HostId h = 0; h < profile.cluster.num_hosts; ++h) {
    workers.emplace_back(&cl, h, &bus);
  }

  FaultInjector injector(cl);
  const InjectionPlan plan = injector.plan(profile.fault);

  // Schedule the injection; Workers apply the faults on their own nodes.
  const double fraction = profile.fault.corrupt_fraction;
  cl.engine().schedule(profile.fault.inject_at_s, [&cl, &workers, plan,
                                                   fraction] {
    switch (plan.level) {
      case FaultLevel::kNode:
        for (const cluster::HostId h : plan.node_victims) {
          workers[static_cast<std::size_t>(h)].apply_node_fault();
        }
        break;
      case FaultLevel::kDevice:
        for (const cluster::OsdId o : plan.device_victims) {
          workers[static_cast<std::size_t>(cl.host_of(o))].apply_device_fault(
              o);
        }
        break;
      case FaultLevel::kCorruption:
        for (const cluster::OsdId o : plan.device_victims) {
          workers[static_cast<std::size_t>(cl.host_of(o))]
              .apply_corruption_fault(o, fraction);
        }
        break;
    }
  }, sim::EventTag::kFault);

  // Network faults ride alongside the device/node fault: plan the victim
  // hosts up front (tolerance-checked for partitions), then let each
  // host's Worker pull its own lever at the scheduled time.
  for (const NetworkFaultSpec& nspec : profile.network_faults) {
    const std::vector<cluster::HostId> victims = injector.plan_network(nspec);
    cl.engine().schedule(nspec.inject_at_s, [&workers, nspec, victims] {
      for (const cluster::HostId h : victims) {
        Worker& w = workers[static_cast<std::size_t>(h)];
        switch (nspec.kind) {
          case NetFaultKind::kLinkLatency:
            w.apply_link_latency(nspec.latency_s, nspec.jitter_s);
            break;
          case NetFaultKind::kBandwidthCap:
            w.apply_bandwidth_cap(nspec.bandwidth_bytes_per_s);
            break;
          case NetFaultKind::kPacketLoss:
            w.apply_packet_loss(nspec.loss_rate);
            break;
          case NetFaultKind::kLinkFlap:
            w.apply_link_flap(nspec.down_for_s);
            break;
          case NetFaultKind::kPartition:
            w.apply_partition(nspec.down_for_s);
            break;
        }
      }
    }, sim::EventTag::kFault);
  }

  ExperimentResult result;
  // run_to_recovery (not a bare engine().run()) so the report's fabric
  // reconnect total and engine-core statistics are filled in.
  result.report = cl.run_to_recovery();
  result.timeline = analyze_timeline(loggers.merged());
  result.injected = plan;
  result.actual_wa = cl.actual_wa();
  result.stored_bytes = cl.total_stored_bytes();
  result.meta_bytes = cl.total_meta_bytes();
  result.log_records_published = bus.total_published();
  result.code_name = cl.code().name();
  return result;
}

CampaignResult Coordinator::run_profile(const ExperimentProfile& profile) {
  CampaignResult campaign;
  util::Samples totals, checkings, recoveries;
  for (int run = 0; run < profile.runs; ++run) {
    ExperimentProfile p = profile;
    p.cluster.seed = profile.cluster.seed + static_cast<std::uint64_t>(run);
    campaign.last = run_experiment(p);
    const auto& rep = campaign.last.report;
    if (rep.complete) {
      totals.add(rep.total());
      checkings.add(rep.checking_period());
      recoveries.add(rep.ec_recovery_period());
    }
  }
  campaign.runs = static_cast<int>(totals.count());
  campaign.mean_total = totals.mean();
  campaign.mean_checking = checkings.mean();
  campaign.mean_recovery = recoveries.mean();
  campaign.stddev_total = totals.stddev();
  return campaign;
}

}  // namespace ecf::ecfault
