// The per-node Worker component (§3).
//
// Workers run on individual DSS nodes for (a) virtual disk provisioning
// through the node's NVMe-oF target, and (b) DSS manipulation — receiving
// fault requests from the Controller and applying them locally. In
// simulation the Worker is the only component allowed to touch the
// node-level levers; the Coordinator never reaches into the cluster
// directly, preserving the paper's control-plane split.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "ecfault/msgbus.h"

namespace ecf::ecfault {

class Worker {
 public:
  Worker(cluster::Cluster* cluster, cluster::HostId host, MsgBus* bus)
      : cluster_(cluster), host_(host), bus_(bus) {}

  cluster::HostId host() const { return host_; }

  // Device-level fault: remove the NVMe subsystem backing `osd` (must live
  // on this worker's host — a Worker only manipulates its own node).
  void apply_device_fault(cluster::OsdId osd);

  // Node-level fault: shut this node down.
  void apply_node_fault();

  // Corruption fault: silently corrupt a fraction of the shards stored on
  // `osd` (must live on this worker's host).
  std::uint64_t apply_corruption_fault(cluster::OsdId osd, double fraction);

  // Network-level levers on this node's NVMe-oF fabric link. Like the
  // device/node faults above, each acts only on the worker's own host.
  void apply_link_latency(double extra_s, double jitter_s = 0);
  void apply_bandwidth_cap(double bytes_per_s);
  void apply_packet_loss(double rate);
  void apply_link_flap(double down_for_s);
  void apply_partition(double down_for_s);
  void heal_partition();

  // Provisioning inventory, as nvmetcli would list it — sorted by NQN so
  // the listing is deterministic regardless of provisioning history.
  std::vector<nvmeof::SubsystemInfo> list_subsystems();

 private:
  void announce(const std::string& what);
  cluster::Cluster* cluster_;
  cluster::HostId host_;
  MsgBus* bus_;
};

}  // namespace ecf::ecfault
