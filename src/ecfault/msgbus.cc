#include "ecfault/msgbus.h"

#include "util/hotpath.h"

namespace ecf::ecfault {

void MsgBus::publish(BusMessage msg) {
  ++total_;
  auto& log = logs_[msg.topic];
  log.push_back(msg);  ECF_ALLOC_OK("message-log accumulation: the bus's product, control-plane rate");
  const auto it = handlers_.find(msg.topic);
  if (it != handlers_.end()) {
    for (const auto& handler : it->second) handler(log.back());
  }
}

void MsgBus::subscribe(const std::string& topic, Handler handler) {
  handlers_[topic].push_back(std::move(handler));
}

const std::vector<BusMessage>& MsgBus::topic_log(
    const std::string& topic) const {
  static const std::vector<BusMessage> empty;
  const auto it = logs_.find(topic);
  return it == logs_.end() ? empty : it->second;
}

std::vector<std::string> MsgBus::topics() const {
  std::vector<std::string> out;
  for (const auto& [name, log] : logs_) out.push_back(name);
  return out;
}

}  // namespace ecf::ecfault
