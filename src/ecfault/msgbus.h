// Topic-based message bus between Loggers and the Coordinator.
//
// The paper implements "log messaging between the Coordinator and Loggers
// via Kafka" (§3.3). In simulation the brokers collapse into an in-process
// bus with the same shape: named topics, publishers append, subscribers
// receive in order, per-topic retention. Keeping the indirection (instead
// of handing log records straight to the coordinator) preserves the
// framework's structure: per-node Loggers filter locally and only publish
// the relevant records, exactly as the paper describes to reduce network
// traffic.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ecf::ecfault {

struct BusMessage {
  std::string topic;
  std::string key;      // producing node, e.g. "osd.17"
  std::string payload;  // serialized log record
  double time = 0;      // simulated produce time
};

class MsgBus {
 public:
  using Handler = std::function<void(const BusMessage&)>;

  // Append to a topic (creates it on first use).
  void publish(BusMessage msg);

  // Subscribe to a topic; the handler sees messages published after the
  // subscription, in publish order.
  void subscribe(const std::string& topic, Handler handler);

  // Retained messages of a topic (consumable for late analysis, like a
  // Kafka topic read from offset 0).
  const std::vector<BusMessage>& topic_log(const std::string& topic) const;

  std::vector<std::string> topics() const;
  std::size_t total_published() const { return total_; }

 private:
  std::map<std::string, std::vector<BusMessage>> logs_;
  std::map<std::string, std::vector<Handler>> handlers_;
  std::size_t total_ = 0;
};

}  // namespace ecf::ecfault
