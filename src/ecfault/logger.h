// The Logger component (§3.3).
//
// One Logger runs per simulated node. It receives that node's raw DSS log
// records, classifies each entry by keyword (decoding, failure, recovery,
// heartbeat, …), keeps everything locally, and publishes only the
// *relevant* classes to the Coordinator's bus topic — the paper's design
// for keeping log-collection network traffic low. The Coordinator merges
// the per-node streams by timestamp (global sort/merge) for analysis.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "ecfault/msgbus.h"

namespace ecf::ecfault {

// Keyword classes used for filtering; kUninteresting stays node-local.
enum class LogClass {
  kFailure,     // device/node failures, down/out marks
  kRecovery,    // recovery start/progress/completion
  kDecoding,    // EC decode / repair computation
  kHeartbeat,   // health chatter (kept: Fig. 3 uses it)
  kPeering,     // checking-period activity
  kIo,          // iostat-style device counters
  kUninteresting,
};

LogClass classify(const std::string& message);
const char* to_string(LogClass c);

class NodeLogger {
 public:
  NodeLogger(std::string node, MsgBus* bus, std::string topic = "ecfault.logs");

  // Ingest one raw record (wired to the Cluster's log sink).
  void ingest(const cluster::LogRecord& rec);

  // Local retention (everything, like the on-node log file).
  const std::vector<cluster::LogRecord>& local_log() const { return local_; }
  std::size_t published_count() const { return published_; }
  std::size_t suppressed_count() const { return suppressed_; }
  const std::string& node() const { return node_; }

 private:
  std::string node_;
  MsgBus* bus_;
  std::string topic_;
  std::vector<cluster::LogRecord> local_;
  std::size_t published_ = 0;
  std::size_t suppressed_ = 0;
};

// A fleet of per-node loggers fed from one cluster-wide sink.
class LoggerFleet {
 public:
  explicit LoggerFleet(MsgBus* bus, std::string topic = "ecfault.logs");

  // Returns a sink function to pass to the Cluster constructor. Routes
  // records to (and lazily creates) the per-node logger.
  cluster::LogSinkFn sink();

  NodeLogger* logger(const std::string& node);
  std::vector<std::string> nodes() const;

  // Coordinator-side view: all published records merged by time (stable on
  // ties). Parsed back into LogRecords.
  std::vector<cluster::LogRecord> merged() const;

 private:
  MsgBus* bus_;
  std::string topic_;
  std::map<std::string, NodeLogger> loggers_;
};

// Serialization of records onto the bus (tab-separated, newline-safe).
std::string encode_record(const cluster::LogRecord& rec);
cluster::LogRecord decode_record(const std::string& payload);

}  // namespace ecf::ecfault
