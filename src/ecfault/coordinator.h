// The Coordinator (§3): orchestrates one experiment end to end.
//
// Given an ExperimentProfile it builds the target DSS, wires the per-node
// Loggers into the message bus, applies the workload, plans and injects
// faults through the per-node Workers at the scheduled time, runs the
// simulation to completion, and assembles the measurements: the recovery
// report, the log-derived timeline (Fig. 3), and the write-amplification
// figures (Table 3). run_experiment() performs one seeded run;
// run_profile() repeats it `runs` times with derived seeds and averages,
// matching the paper's three-run methodology.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "ecfault/fault_injector.h"
#include "ecfault/logger.h"
#include "ecfault/msgbus.h"
#include "ecfault/profile.h"
#include "ecfault/timeline.h"
#include "ecfault/worker.h"

namespace ecf::ecfault {

struct ExperimentResult {
  cluster::RecoveryReport report;
  Timeline timeline;
  InjectionPlan injected;
  double actual_wa = 0;
  std::uint64_t stored_bytes = 0;
  std::uint64_t meta_bytes = 0;
  std::size_t log_records_published = 0;
  std::string code_name;
};

// Averages across runs (recovery timing metrics only; WA is deterministic
// given a seed's placement and reported from the last run).
struct CampaignResult {
  ExperimentResult last;
  double mean_total = 0;
  double mean_checking = 0;
  double mean_recovery = 0;
  double stddev_total = 0;
  int runs = 0;
};

class Coordinator {
 public:
  // Run one seeded experiment. The profile's cluster seed is used as-is.
  static ExperimentResult run_experiment(const ExperimentProfile& profile);

  // Run profile.runs experiments with seeds seed, seed+1, … and average.
  static CampaignResult run_profile(const ExperimentProfile& profile);
};

}  // namespace ecf::ecfault
