#include "ecfault/fault_injector.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ecf::ecfault {

std::vector<cluster::OsdId> FaultInjector::candidates_with_data() const {
  std::vector<cluster::OsdId> out;
  const int n = cluster_->config().num_osds();
  for (cluster::OsdId o = 0; o < n; ++o) {
    if (!cluster_->osd_alive(o)) continue;
    if (!cluster_->pgs_on_osd(o).empty()) out.push_back(o);
  }
  return out;
}

bool FaultInjector::within_tolerance(
    const std::vector<cluster::OsdId>& victims) const {
  const std::size_t m = cluster_->code().m();
  // Count losses per PG: proposed victims plus shards already dead.
  std::map<cluster::PgId, std::size_t> losses;
  for (const cluster::OsdId v : victims) {
    for (const cluster::PgId pg : cluster_->pgs_on_osd(v)) ++losses[pg];
  }
  for (auto& [pg, count] : losses) {
    for (const cluster::OsdId member : cluster_->pg_acting(pg)) {
      if (!cluster_->osd_alive(member) &&
          std::find(victims.begin(), victims.end(), member) == victims.end()) {
        ++count;
      }
    }
    if (count > m) return false;
  }
  return true;
}

std::vector<cluster::HostId> FaultInjector::plan_network(
    const NetworkFaultSpec& spec) const {
  std::vector<cluster::HostId> hosts;
  if (spec.count == 0) {
    // Cluster-wide dirty network: every host, data-bearing or not.
    for (cluster::HostId h = 0; h < cluster_->config().num_hosts; ++h) {
      hosts.push_back(h);
    }
  } else {
    for (cluster::HostId h = 0;
         h < cluster_->config().num_hosts &&
         static_cast<int>(hosts.size()) < spec.count;
         ++h) {
      for (const cluster::OsdId o : cluster_->osds_on_host(h)) {
        if (cluster_->osd_alive(o) && !cluster_->pgs_on_osd(o).empty()) {
          hosts.push_back(h);
          break;
        }
      }
    }
    if (static_cast<int>(hosts.size()) < spec.count) {
      throw std::invalid_argument(
          "not enough data-bearing hosts for network faults");
    }
  }
  if (spec.kind == NetFaultKind::kPartition) {
    // A partition outlasting ctrl_loss_tmo fails every OSD behind the
    // link; refuse plans that could exceed the code's tolerance.
    std::vector<cluster::OsdId> would_fail;
    for (const cluster::HostId h : hosts) {
      for (const cluster::OsdId o : cluster_->osds_on_host(h)) {
        if (cluster_->osd_alive(o)) would_fail.push_back(o);
      }
    }
    if (!within_tolerance(would_fail)) {
      throw std::runtime_error(
          "partition plan could exceed EC tolerance; refuse to inject");
    }
  }
  return hosts;
}

InjectionPlan FaultInjector::plan(const FaultSpec& spec) const {
  InjectionPlan out;
  out.level = spec.level;

  if (spec.level == FaultLevel::kCorruption) {
    // Corruption victims are selected like device victims (the corrupted
    // shards must stay decodable: <= n-k bad shards per PG guaranteed by
    // the same tolerance check, since corruption hits at most one shard
    // per PG per victim OSD).
    FaultSpec device_spec = spec;
    device_spec.level = FaultLevel::kDevice;
    InjectionPlan plan = this->plan(device_spec);
    plan.level = FaultLevel::kCorruption;
    return plan;
  }

  if (spec.level == FaultLevel::kNode) {
    // Pick hosts whose OSDs hold data; tolerance-checked like devices.
    std::vector<cluster::HostId> hosts;
    for (cluster::HostId h = 0; h < cluster_->config().num_hosts; ++h) {
      bool has_data = false;
      std::vector<cluster::OsdId> osds = cluster_->osds_on_host(h);
      for (const cluster::OsdId o : osds) {
        if (cluster_->osd_alive(o) && !cluster_->pgs_on_osd(o).empty()) {
          has_data = true;
        }
      }
      if (has_data) hosts.push_back(h);
    }
    if (static_cast<int>(hosts.size()) < spec.count) {
      throw std::invalid_argument("not enough data-bearing hosts for node faults");
    }
    for (int i = 0; i < spec.count; ++i) {
      std::vector<cluster::OsdId> victims;
      for (int j = 0; j <= i; ++j) {
        for (const cluster::OsdId o : cluster_->osds_on_host(hosts[static_cast<std::size_t>(j)])) {
          victims.push_back(o);
        }
      }
      if (i + 1 == spec.count && !within_tolerance(victims)) {
        throw std::runtime_error(
            "node fault plan would exceed EC tolerance; refuse to inject");
      }
      if (i + 1 == spec.count) {
        out.node_victims.assign(hosts.begin(), hosts.begin() + spec.count);
      }
    }
    return out;
  }

  // Device level.
  const std::vector<cluster::OsdId> cands = candidates_with_data();
  const auto count = static_cast<std::size_t>(spec.count);
  if (cands.size() < count) {
    throw std::invalid_argument("not enough data-bearing OSDs for device faults");
  }

  auto try_set = [&](const std::vector<cluster::OsdId>& set) -> bool {
    return set.size() == count && within_tolerance(set);
  };

  if (spec.topology == FaultTopology::kSameHost) {
    // All victims on one host.
    for (cluster::HostId h = 0; h < cluster_->config().num_hosts; ++h) {
      std::vector<cluster::OsdId> set;
      for (const cluster::OsdId o : cluster_->osds_on_host(h)) {
        if (std::find(cands.begin(), cands.end(), o) != cands.end()) {
          set.push_back(o);
          if (set.size() == count) break;
        }
      }
      if (try_set(set)) {
        out.device_victims = set;
        return out;
      }
    }
    throw std::runtime_error("no host offers a tolerant same-host victim set");
  }

  if (spec.topology == FaultTopology::kDifferentHosts) {
    std::vector<cluster::OsdId> set;
    std::vector<cluster::HostId> used;
    for (const cluster::OsdId o : cands) {
      const cluster::HostId h = cluster_->host_of(o);
      if (std::find(used.begin(), used.end(), h) != used.end()) continue;
      set.push_back(o);
      used.push_back(h);
      if (set.size() == count) break;
    }
    if (try_set(set)) {
      out.device_victims = set;
      return out;
    }
    throw std::runtime_error("no tolerant different-host victim set found");
  }

  // kAnywhere: first tolerant prefix.
  std::vector<cluster::OsdId> set(cands.begin(),
                                  cands.begin() + static_cast<std::ptrdiff_t>(count));
  if (!try_set(set)) {
    throw std::runtime_error("no tolerant victim set found");
  }
  out.device_victims = set;
  return out;
}

}  // namespace ecf::ecfault
