#include "ecfault/profile.h"

#include <stdexcept>

namespace ecf::ecfault {

const char* to_string(FaultLevel level) {
  switch (level) {
    case FaultLevel::kDevice: return "device";
    case FaultLevel::kNode: return "node";
    case FaultLevel::kCorruption: return "corruption";
  }
  return "?";
}

const char* to_string(FaultTopology topo) {
  switch (topo) {
    case FaultTopology::kAnywhere: return "anywhere";
    case FaultTopology::kSameHost: return "same_host";
    case FaultTopology::kDifferentHosts: return "different_hosts";
  }
  return "?";
}

FaultLevel fault_level_from_string(const std::string& s) {
  if (s == "device") return FaultLevel::kDevice;
  if (s == "node") return FaultLevel::kNode;
  if (s == "corruption") return FaultLevel::kCorruption;
  throw std::invalid_argument("unknown fault level '" + s + "'");
}

FaultTopology fault_topology_from_string(const std::string& s) {
  if (s == "anywhere") return FaultTopology::kAnywhere;
  if (s == "same_host") return FaultTopology::kSameHost;
  if (s == "different_hosts") return FaultTopology::kDifferentHosts;
  throw std::invalid_argument("unknown fault topology '" + s + "'");
}

const char* to_string(NetFaultKind kind) {
  switch (kind) {
    case NetFaultKind::kLinkLatency: return "link_latency";
    case NetFaultKind::kBandwidthCap: return "bandwidth_cap";
    case NetFaultKind::kPacketLoss: return "packet_loss";
    case NetFaultKind::kLinkFlap: return "link_flap";
    case NetFaultKind::kPartition: return "partition";
  }
  return "?";
}

NetFaultKind net_fault_kind_from_string(const std::string& s) {
  if (s == "link_latency") return NetFaultKind::kLinkLatency;
  if (s == "bandwidth_cap") return NetFaultKind::kBandwidthCap;
  if (s == "packet_loss") return NetFaultKind::kPacketLoss;
  if (s == "link_flap") return NetFaultKind::kLinkFlap;
  if (s == "partition") return NetFaultKind::kPartition;
  throw std::invalid_argument("unknown network fault kind '" + s + "'");
}

namespace {

const char* domain_name(cluster::FailureDomain d) {
  return cluster::to_string(d);
}

cluster::FailureDomain domain_from_string(const std::string& s) {
  if (s == "osd") return cluster::FailureDomain::kOsd;
  if (s == "host") return cluster::FailureDomain::kHost;
  if (s == "rack") return cluster::FailureDomain::kRack;
  throw std::invalid_argument("unknown failure domain '" + s + "'");
}

}  // namespace

util::Json ExperimentProfile::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("name", name);
  doc.set("runs", runs);

  util::Json cl = util::Json::object();
  cl.set("num_hosts", cluster.num_hosts);
  cl.set("osds_per_host", cluster.osds_per_host);
  cl.set("seed", cluster.seed);
  cl.set("check_invariants", cluster.check_invariants);

  util::Json ec = util::Json::object();
  for (const auto& [key, value] : cluster.pool.ec_profile) ec.set(key, value);
  cl.set("ec_profile", ec);

  util::Json pool = util::Json::object();
  pool.set("pg_num", cluster.pool.pg_num);
  pool.set("stripe_unit", cluster.pool.stripe_unit.count());
  pool.set("failure_domain", domain_name(cluster.pool.failure_domain));
  pool.set("dag_recovery", cluster.pool.dag_recovery);
  pool.set("dag_pipeline", cluster.pool.dag_pipeline);
  cl.set("pool", pool);

  util::Json cache = util::Json::object();
  cache.set("autotune", cluster.cache.autotune);
  cache.set("kv_ratio", cluster.cache.kv_ratio);
  cache.set("meta_ratio", cluster.cache.meta_ratio);
  cache.set("data_ratio", cluster.cache.data_ratio);
  cache.set("cache_bytes", cluster.cache.cache_bytes.count());
  cl.set("bluestore_cache", cache);

  util::Json wl = util::Json::object();
  wl.set("num_objects", cluster.workload.num_objects);
  wl.set("object_size", cluster.workload.object_size.count());
  cl.set("workload", wl);

  cl.set("engine_lanes", cluster.engine_lanes);

  util::Json client = util::Json::object();
  client.set("ops_per_s", cluster.client.ops_per_s);
  client.set("read_fraction", cluster.client.read_fraction);
  client.set("op_bytes", cluster.client.op_bytes.count());
  client.set("horizon_s", cluster.client.horizon_s.count());
  client.set("zipf_theta", cluster.client.zipf_theta);
  client.set("closed_loop", cluster.client.closed_loop);
  client.set("clients", cluster.client.clients);
  client.set("think_time_s", cluster.client.think_time_s.count());
  cl.set("client", client);
  doc.set("cluster", cl);

  util::Json f = util::Json::object();
  f.set("level", to_string(fault.level));
  f.set("count", fault.count);
  f.set("topology", to_string(fault.topology));
  f.set("inject_at_s", fault.inject_at_s.count());
  f.set("corrupt_fraction", fault.corrupt_fraction);
  doc.set("fault", f);

  if (!network_faults.empty()) {
    util::Json nf = util::Json::array();
    for (const auto& spec : network_faults) {
      util::Json n = util::Json::object();
      n.set("kind", to_string(spec.kind));
      n.set("count", spec.count);
      n.set("inject_at_s", spec.inject_at_s.count());
      n.set("latency_s", spec.latency_s.count());
      n.set("jitter_s", spec.jitter_s.count());
      n.set("bandwidth_bytes_per_s", spec.bandwidth_bytes_per_s.count());
      n.set("loss_rate", spec.loss_rate);
      n.set("down_for_s", spec.down_for_s.count());
      nf.push_back(n);
    }
    doc.set("network_faults", nf);
  }
  doc.set("fabric", fabric);

  util::Json scrub = util::Json::object();
  scrub.set("enabled", cluster.scrub.enabled);
  scrub.set("interval_s", cluster.scrub.interval_s);
  scrub.set("max_passes", cluster.scrub.max_passes);
  doc.set("scrub", scrub);

  util::Json qos = util::Json::object();
  qos.set("enabled", cluster.qos.enabled);
  qos.set("idle_reset_s", cluster.qos.idle_reset_s);
  const auto class_json = [](const cluster::qos::ClassParams& cp) {
    util::Json c = util::Json::object();
    c.set("reservation_ops", cp.reservation_ops);
    c.set("weight", cp.weight);
    c.set("limit_ops", cp.limit_ops);
    return c;
  };
  qos.set("client", class_json(cluster.qos.client));
  qos.set("recovery", class_json(cluster.qos.recovery));
  qos.set("scrub", class_json(cluster.qos.scrub));
  doc.set("qos", qos);

  util::Json hs = util::Json::object();
  hs.set("enabled", cluster.helper_selection.enabled);
  hs.set("disk_weight", cluster.helper_selection.disk_weight);
  hs.set("link_weight", cluster.helper_selection.link_weight);
  hs.set("inflight_penalty_s", cluster.helper_selection.inflight_penalty_s);
  hs.set("backfill_penalty_s", cluster.helper_selection.backfill_penalty_s);
  hs.set("served_weight", cluster.helper_selection.served_weight);
  doc.set("helper_selection", hs);
  return doc;
}

ExperimentProfile ExperimentProfile::from_json(const util::Json& doc) {
  ExperimentProfile p;
  p.name = doc.get_or("name", std::string("default"));
  p.runs = static_cast<int>(doc.get_or("runs", std::int64_t{3}));
  if (p.runs < 1) throw std::invalid_argument("profile: runs must be >= 1");

  if (doc.has("cluster")) {
    const util::Json& cl = doc.at("cluster");
    p.cluster.num_hosts =
        static_cast<int>(cl.get_or("num_hosts", std::int64_t{30}));
    p.cluster.osds_per_host =
        static_cast<int>(cl.get_or("osds_per_host", std::int64_t{2}));
    p.cluster.seed = static_cast<std::uint64_t>(
        cl.get_or("seed", std::int64_t{1}));
    p.cluster.check_invariants = cl.get_or("check_invariants", false);
    if (cl.has("ec_profile")) {
      p.cluster.pool.ec_profile.clear();
      for (const auto& [key, value] : cl.at("ec_profile").members()) {
        p.cluster.pool.ec_profile[key] =
            value.is_string() ? value.as_string()
                              : std::to_string(value.as_int());
      }
    }
    if (cl.has("pool")) {
      const util::Json& pool = cl.at("pool");
      p.cluster.pool.pg_num =
          static_cast<std::int32_t>(pool.get_or("pg_num", std::int64_t{256}));
      if (p.cluster.pool.pg_num < 1) {
        throw std::invalid_argument("profile: pg_num must be >= 1");
      }
      p.cluster.pool.stripe_unit = util::Bytes(
          static_cast<std::uint64_t>(pool.get_or(
              "stripe_unit",
              static_cast<std::int64_t>(p.cluster.pool.stripe_unit.count()))));
      p.cluster.pool.failure_domain = domain_from_string(
          pool.get_or("failure_domain", std::string("host")));
      p.cluster.pool.dag_recovery = pool.get_or("dag_recovery", false);
      p.cluster.pool.dag_pipeline = pool.get_or("dag_pipeline", false);
      if (p.cluster.pool.dag_pipeline && !p.cluster.pool.dag_recovery) {
        throw std::invalid_argument(
            "profile: dag_pipeline requires dag_recovery");
      }
    }
    if (cl.has("bluestore_cache")) {
      const util::Json& cache = cl.at("bluestore_cache");
      p.cluster.cache.autotune = cache.get_or("autotune", true);
      p.cluster.cache.kv_ratio = cache.get_or("kv_ratio", 0.45);
      p.cluster.cache.meta_ratio = cache.get_or("meta_ratio", 0.45);
      p.cluster.cache.data_ratio = cache.get_or("data_ratio", 0.10);
      p.cluster.cache.cache_bytes = util::Bytes(
          static_cast<std::uint64_t>(cache.get_or(
              "cache_bytes",
              static_cast<std::int64_t>(p.cluster.cache.cache_bytes.count()))));
      const double sum = p.cluster.cache.kv_ratio + p.cluster.cache.meta_ratio +
                         p.cluster.cache.data_ratio;
      if (sum < 0.99 || sum > 1.01) {
        throw std::invalid_argument("profile: cache ratios must sum to 1");
      }
    }
    if (cl.has("workload")) {
      const util::Json& wl = cl.at("workload");
      p.cluster.workload.num_objects = static_cast<std::uint64_t>(wl.get_or(
          "num_objects",
          static_cast<std::int64_t>(p.cluster.workload.num_objects)));
      p.cluster.workload.object_size = util::Bytes(
          static_cast<std::uint64_t>(wl.get_or(
              "object_size",
              static_cast<std::int64_t>(p.cluster.workload.object_size.count()))));
    }
    p.cluster.engine_lanes =
        static_cast<int>(cl.get_or("engine_lanes", std::int64_t{1}));
    if (p.cluster.engine_lanes < 1 || p.cluster.engine_lanes > 64) {
      throw std::invalid_argument("profile: engine_lanes in 1..64");
    }
    if (cl.has("client")) {
      const util::Json& client = cl.at("client");
      auto& cc = p.cluster.client;
      cc.ops_per_s = client.get_or("ops_per_s", 0.0);
      if (cc.ops_per_s < 0) {
        throw std::invalid_argument("profile: client ops_per_s must be >= 0");
      }
      cc.read_fraction = client.get_or("read_fraction", 1.0);
      if (cc.read_fraction < 0 || cc.read_fraction > 1.0) {
        throw std::invalid_argument("profile: client read_fraction in [0,1]");
      }
      cc.op_bytes = util::Bytes(static_cast<std::uint64_t>(client.get_or(
          "op_bytes", static_cast<std::int64_t>(cc.op_bytes.count()))));
      cc.horizon_s =
          util::SimSec(client.get_or("horizon_s", cc.horizon_s.count()));
      if (cc.horizon_s <= 0) {
        throw std::invalid_argument("profile: client horizon_s must be > 0");
      }
      cc.zipf_theta = client.get_or("zipf_theta", 0.0);
      if (cc.zipf_theta < 0 || cc.zipf_theta >= 1.0) {
        throw std::invalid_argument("profile: client zipf_theta in [0,1)");
      }
      cc.closed_loop = client.get_or("closed_loop", false);
      cc.clients = static_cast<int>(client.get_or("clients", std::int64_t{64}));
      if (cc.clients < 1) {
        throw std::invalid_argument("profile: client clients must be >= 1");
      }
      cc.think_time_s = util::SimSec(client.get_or("think_time_s", 0.0));
      if (cc.think_time_s < 0) {
        throw std::invalid_argument("profile: client think_time_s must be >= 0");
      }
    }
  }

  if (doc.has("fault")) {
    const util::Json& f = doc.at("fault");
    p.fault.level = fault_level_from_string(
        f.get_or("level", std::string("device")));
    p.fault.count = static_cast<int>(f.get_or("count", std::int64_t{1}));
    if (p.fault.count < 1) {
      throw std::invalid_argument("profile: fault count must be >= 1");
    }
    p.fault.topology = fault_topology_from_string(
        f.get_or("topology", std::string("anywhere")));
    p.fault.inject_at_s = util::SimSec(f.get_or("inject_at_s", 10.0));
    p.fault.corrupt_fraction = f.get_or("corrupt_fraction", 0.05);
    if (p.fault.corrupt_fraction <= 0 || p.fault.corrupt_fraction > 1.0) {
      throw std::invalid_argument("profile: corrupt_fraction in (0,1]");
    }
  }
  if (doc.has("network_faults")) {
    for (const util::Json& n : doc.at("network_faults").as_array()) {
      NetworkFaultSpec spec;
      spec.kind = net_fault_kind_from_string(
          n.get_or("kind", std::string("link_latency")));
      spec.count = static_cast<int>(n.get_or("count", std::int64_t{0}));
      if (spec.count < 0) {
        throw std::invalid_argument("profile: network fault count must be >= 0");
      }
      spec.inject_at_s = util::SimSec(n.get_or("inject_at_s", 10.0));
      spec.latency_s = util::SimSec(n.get_or("latency_s", 0.005));
      spec.jitter_s = util::SimSec(n.get_or("jitter_s", 0.0));
      spec.bandwidth_bytes_per_s = util::Rate(n.get_or("bandwidth_bytes_per_s", 100e6));
      spec.loss_rate = n.get_or("loss_rate", 0.01);
      spec.down_for_s = util::SimSec(n.get_or("down_for_s", 0.2));
      if (spec.latency_s < 0 || spec.jitter_s < 0 || spec.down_for_s < 0 ||
          spec.bandwidth_bytes_per_s < 0) {
        throw std::invalid_argument("profile: network fault values must be >= 0");
      }
      if (spec.loss_rate < 0 || spec.loss_rate >= 1.0) {
        throw std::invalid_argument("profile: loss_rate in [0,1)");
      }
      p.network_faults.push_back(spec);
    }
  }
  p.fabric = doc.get_or("fabric", std::string("none"));
  if (p.fabric != "none" && p.fabric != "tcp" && p.fabric != "rdma") {
    throw std::invalid_argument("profile: fabric must be none|tcp|rdma");
  }
  if (doc.has("scrub")) {
    const util::Json& scrub = doc.at("scrub");
    p.cluster.scrub.enabled = scrub.get_or("enabled", false);
    p.cluster.scrub.interval_s = scrub.get_or("interval_s", 30.0);
    p.cluster.scrub.max_passes =
        static_cast<int>(scrub.get_or("max_passes", std::int64_t{1}));
  }
  if (doc.has("qos")) {
    const util::Json& qos = doc.at("qos");
    auto& qc = p.cluster.qos;
    qc.enabled = qos.get_or("enabled", false);
    qc.idle_reset_s = qos.get_or("idle_reset_s", qc.idle_reset_s);
    if (qc.idle_reset_s <= 0) {
      throw std::invalid_argument("profile: qos idle_reset_s must be > 0");
    }
    const auto parse_class = [&qos](const char* key,
                                    cluster::qos::ClassParams& cp) {
      if (!qos.has(key)) return;
      const util::Json& c = qos.at(key);
      cp.reservation_ops = c.get_or("reservation_ops", cp.reservation_ops);
      cp.weight = c.get_or("weight", cp.weight);
      cp.limit_ops = c.get_or("limit_ops", cp.limit_ops);
      if (cp.reservation_ops < 0 || cp.limit_ops < 0) {
        throw std::invalid_argument(
            "profile: qos reservation/limit rates must be >= 0");
      }
      if (cp.weight <= 0) {
        throw std::invalid_argument("profile: qos weight must be > 0");
      }
      if (cp.limit_ops > 0 && cp.limit_ops < cp.reservation_ops) {
        throw std::invalid_argument(
            "profile: qos limit_ops must be >= reservation_ops");
      }
    };
    parse_class("client", qc.client);
    parse_class("recovery", qc.recovery);
    parse_class("scrub", qc.scrub);
  }
  if (doc.has("helper_selection")) {
    const util::Json& hs = doc.at("helper_selection");
    auto& hc = p.cluster.helper_selection;
    hc.enabled = hs.get_or("enabled", false);
    hc.disk_weight = hs.get_or("disk_weight", hc.disk_weight);
    hc.link_weight = hs.get_or("link_weight", hc.link_weight);
    hc.inflight_penalty_s = hs.get_or("inflight_penalty_s", hc.inflight_penalty_s);
    hc.backfill_penalty_s = hs.get_or("backfill_penalty_s", hc.backfill_penalty_s);
    hc.served_weight = hs.get_or("served_weight", hc.served_weight);
    if (hc.disk_weight < 0 || hc.link_weight < 0 || hc.inflight_penalty_s < 0 ||
        hc.backfill_penalty_s < 0 || hc.served_weight < 0) {
      throw std::invalid_argument(
          "profile: helper_selection weights must be >= 0");
    }
  }
  return p;
}

}  // namespace ecf::ecfault
