#include "ecfault/logger.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace ecf::ecfault {

LogClass classify(const std::string& message) {
  const std::string m = util::to_lower(message);
  // Order matters: the most specific classes first.
  if (util::contains(m, "decode") || util::contains(m, "decoding")) {
    return LogClass::kDecoding;
  }
  if (util::contains(m, "recovery") || util::contains(m, "recover") ||
      util::contains(m, "backfill")) {
    return LogClass::kRecovery;
  }
  if (util::contains(m, "fail") || util::contains(m, "down") ||
      util::contains(m, "marked out") || util::contains(m, "eio") ||
      util::contains(m, "removed") || util::contains(m, "link") ||
      util::contains(m, "partition") || util::contains(m, "packet loss") ||
      util::contains(m, "keep-alive timeout") ||
      util::contains(m, "controller loss") ||
      util::contains(m, "reconnect")) {
    return LogClass::kFailure;
  }
  if (util::contains(m, "peering") || util::contains(m, "missing") ||
      util::contains(m, "queueing")) {
    return LogClass::kPeering;
  }
  if (util::contains(m, "heartbeat")) return LogClass::kHeartbeat;
  if (util::contains(m, "iostat") || util::contains(m, "io stats")) {
    return LogClass::kIo;
  }
  return LogClass::kUninteresting;
}

const char* to_string(LogClass c) {
  switch (c) {
    case LogClass::kFailure: return "failure";
    case LogClass::kRecovery: return "recovery";
    case LogClass::kDecoding: return "decoding";
    case LogClass::kHeartbeat: return "heartbeat";
    case LogClass::kPeering: return "peering";
    case LogClass::kIo: return "io";
    case LogClass::kUninteresting: return "uninteresting";
  }
  return "?";
}

std::string encode_record(const cluster::LogRecord& rec) {
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.6f", rec.time);
  std::string msg = rec.message;
  std::replace(msg.begin(), msg.end(), '\t', ' ');
  std::replace(msg.begin(), msg.end(), '\n', ' ');
  return std::string(ts) + "\t" + rec.node + "\t" + rec.subsys + "\t" + msg;
}

cluster::LogRecord decode_record(const std::string& payload) {
  const auto parts = util::split(payload, '\t');
  cluster::LogRecord rec;
  if (parts.size() >= 4) {
    rec.time = std::strtod(parts[0].c_str(), nullptr);
    rec.node = parts[1];
    rec.subsys = parts[2];
    rec.message = parts[3];
  }
  return rec;
}

NodeLogger::NodeLogger(std::string node, MsgBus* bus, std::string topic)
    : node_(std::move(node)), bus_(bus), topic_(std::move(topic)) {}

void NodeLogger::ingest(const cluster::LogRecord& rec) {
  local_.push_back(rec);
  const LogClass cls = classify(rec.message);
  if (cls == LogClass::kUninteresting) {
    ++suppressed_;
    return;  // stays in the node-local file only
  }
  ++published_;
  if (bus_) {
    bus_->publish({topic_, node_, encode_record(rec), rec.time});
  }
}

LoggerFleet::LoggerFleet(MsgBus* bus, std::string topic)
    : bus_(bus), topic_(std::move(topic)) {}

cluster::LogSinkFn LoggerFleet::sink() {
  return [this](const cluster::LogRecord& rec) {
    auto it = loggers_.find(rec.node);
    if (it == loggers_.end()) {
      it = loggers_.emplace(rec.node, NodeLogger(rec.node, bus_, topic_)).first;
    }
    it->second.ingest(rec);
  };
}

NodeLogger* LoggerFleet::logger(const std::string& node) {
  const auto it = loggers_.find(node);
  return it == loggers_.end() ? nullptr : &it->second;
}

std::vector<std::string> LoggerFleet::nodes() const {
  std::vector<std::string> out;
  for (const auto& [name, logger] : loggers_) out.push_back(name);
  return out;
}

std::vector<cluster::LogRecord> LoggerFleet::merged() const {
  std::vector<cluster::LogRecord> out;
  for (const auto& msg : bus_->topic_log(topic_)) {
    out.push_back(decode_record(msg.payload));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const cluster::LogRecord& a, const cluster::LogRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

}  // namespace ecf::ecfault
