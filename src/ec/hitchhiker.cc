#include "ec/hitchhiker.h"

#include <algorithm>
#include <stdexcept>

#include "ec/ecdag.h"
#include "util/hotpath.h"

namespace ecf::ec {

HitchhikerCode::HitchhikerCode(std::size_t n, std::size_t k,
                               RsTechnique technique)
    : n_(n), k_(k), base_(n, k, technique) {
  // base_ already enforced 0 < k < n <= 255.
  const std::size_t m = n - k;
  if (m < 2) {
    throw std::invalid_argument("Hitchhiker requires m >= 2 parities");
  }
  if (k < m - 1) {
    throw std::invalid_argument("Hitchhiker requires k >= m-1 (non-empty groups)");
  }
  // m-1 contiguous groups; the first k % (m-1) groups take the extra chunk.
  const std::size_t ngroups = m - 1;
  const std::size_t base_size = k / ngroups;
  const std::size_t extra = k % ngroups;
  group_start_.resize(ngroups + 1);
  group_start_[0] = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    group_start_[g + 1] = group_start_[g] + base_size + (g < extra ? 1 : 0);
  }
}

std::string HitchhikerCode::name() const {
  return "Hitchhiker(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

std::size_t HitchhikerCode::group_of(std::size_t data_chunk) const {
  // Input-contract check, amortized to plan-build frequency by the repair
  // caches (same convention as check_erasures).
  if (data_chunk >= k_) {
    throw std::invalid_argument("group_of: data chunks only");  // ecf-analyze: allow(event-throw)
  }
  std::size_t g = 0;
  while (group_start_[g + 1] <= data_chunk) ++g;
  return g;
}

std::vector<std::size_t> HitchhikerCode::group_members(
    std::size_t group) const {
  if (group >= groups()) throw std::invalid_argument("group_members: bad group");  // ecf-analyze: allow(event-throw)
  std::vector<std::size_t> out;
  for (std::size_t d = group_start_[group]; d < group_start_[group + 1]; ++d) {
    out.push_back(d);  ECF_ALLOC_OK("bounded: <= group-size members, plan-build frequency");
  }
  return out;
}

void HitchhikerCode::encode(std::vector<Buffer>& chunks) const {
  check_chunks(chunks);  // alpha = 2 ensures an even chunk size
  const std::size_t half = chunks[0].size() / 2;
  const gf::Matrix& gen = base_.generator();

  std::vector<const Byte*> a_in(k_), b_in(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    a_in[i] = chunks[i].data();
    b_in[i] = chunks[i].data() + half;
  }
  std::vector<std::size_t> rows(m());
  std::vector<Byte*> a_out(m()), b_out(m());
  for (std::size_t p = k_; p < n_; ++p) {
    rows[p - k_] = p;
    a_out[p - k_] = chunks[p].data();
    b_out[p - k_] = chunks[p].data() + half;
  }
  gen.apply_rows(rows, a_in, a_out, half);  // p_i^a = f_i(a)
  gen.apply_rows(rows, b_in, b_out, half);  // f_i(b), unadjusted
  // Piggyback: p_i^b = f_i(b) ⊕ XOR_{j∈S_i} a_j for i >= 2.
  for (std::size_t g = 0; g < groups(); ++g) {
    Byte* dst = chunks[group_parity(g)].data() + half;
    for (std::size_t j = group_start_[g]; j < group_start_[g + 1]; ++j) {
      gf::xor_region(chunks[j].data(), dst, half);
    }
  }
}

bool HitchhikerCode::decode(std::vector<Buffer>& chunks,
                            const std::vector<std::size_t>& erased) const {
  check_chunks(chunks);
  check_erasures(*this, erased);
  const std::size_t half = chunks[0].size() / 2;
  const gf::Matrix& gen = base_.generator();

  // The first k surviving chunks drive both substripe solves.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n_ && rows.size() < k_; ++i) {
    if (std::binary_search(erased.begin(), erased.end(), i)) continue;
    rows.push_back(i);
  }
  if (rows.size() < k_) return false;
  const auto dec = rs_decode_matrix(gen, rows);
  if (!dec) return false;  // cannot happen for an MDS base

  // a-substripe: survivors' a-halves are plain RS symbols.
  std::vector<Buffer> a(k_, Buffer(half));
  {
    std::vector<const Byte*> in(k_);
    std::vector<Byte*> out(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      in[i] = chunks[rows[i]].data();
      out[i] = a[i].data();
    }
    gf::matrix_apply(*dec, in, out, half);
  }

  // b-substripe symbols: data b-halves and p_1^b are clean; surviving
  // piggybacked parities are stripped into scratch copies (the survivors'
  // stored bytes must not be modified).
  std::vector<Buffer> stripped(groups());
  std::vector<const Byte*> b_sym(n_, nullptr);
  for (const std::size_t r : rows) {
    if (r < k_ || r == k_) {
      b_sym[r] = chunks[r].data() + half;
    } else {
      const std::size_t g = r - k_ - 1;
      stripped[g].assign(chunks[r].begin() + static_cast<std::ptrdiff_t>(half),
                         chunks[r].end());
      for (std::size_t j = group_start_[g]; j < group_start_[g + 1]; ++j) {
        gf::xor_region(a[j].data(), stripped[g].data(), half);
      }
      b_sym[r] = stripped[g].data();
    }
  }

  std::vector<Buffer> b(k_, Buffer(half));
  {
    std::vector<const Byte*> in(k_);
    std::vector<Byte*> out(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      in[i] = b_sym[rows[i]];
      out[i] = b[i].data();
    }
    gf::matrix_apply(*dec, in, out, half);
  }

  // Rebuild the erased chunks from the solved data halves.
  std::vector<const Byte*> a_data(k_), b_data(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    a_data[i] = a[i].data();
    b_data[i] = b[i].data();
  }
  std::vector<std::size_t> parity_rows;
  std::vector<Byte*> pa_out, pb_out;
  for (const std::size_t e : erased) {
    if (e < k_) {
      std::copy(a[e].begin(), a[e].end(), chunks[e].begin());
      std::copy(b[e].begin(), b[e].end(),
                chunks[e].begin() + static_cast<std::ptrdiff_t>(half));
    } else {
      parity_rows.push_back(e);
      pa_out.push_back(chunks[e].data());
      pb_out.push_back(chunks[e].data() + half);
    }
  }
  if (!parity_rows.empty()) {
    gen.apply_rows(parity_rows, a_data, pa_out, half);
    gen.apply_rows(parity_rows, b_data, pb_out, half);
    for (std::size_t i = 0; i < parity_rows.size(); ++i) {
      if (parity_rows[i] == k_) continue;  // p_1 carries no piggyback
      const std::size_t g = parity_rows[i] - k_ - 1;
      for (std::size_t j = group_start_[g]; j < group_start_[g + 1]; ++j) {
        gf::xor_region(a[j].data(), pb_out[i], half);
      }
    }
  }
  return true;
}

std::vector<HitchhikerCode::HalfRef> HitchhikerCode::repair_reads(
    std::size_t failed) const {
  if (failed >= k_) {
    throw std::invalid_argument("repair_reads: data chunks only");  // ecf-analyze: allow(event-throw)
  }
  const std::size_t g = group_of(failed);
  const std::size_t pg = group_parity(g);
  std::vector<HalfRef> out;
  for (std::size_t c = 0; c < n_; ++c) {
    if (c == failed) continue;
    if (c < k_) {
      // Every surviving data b-half feeds the b-solve (via p_1) and the
      // f_i(b) recomputation; group members lend their a-half for the
      // piggyback peel too.
      if (group_of(c) == g) out.push_back({c, SubChunk::kA});  ECF_ALLOC_OK("bounded: <= k+|S_i| halves, plan-build frequency");
      out.push_back({c, SubChunk::kB});  ECF_ALLOC_OK("bounded: <= k+|S_i| halves, plan-build frequency");
    } else if (c == k_ || c == pg) {
      out.push_back({c, SubChunk::kB});  ECF_ALLOC_OK("bounded: <= k+|S_i| halves, plan-build frequency");
    }
  }
  return out;
}

Buffer HitchhikerCode::repair_one(std::size_t failed,
                                  const std::vector<Buffer>& halves,
                                  std::size_t chunk_size) const {
  if (failed >= k_) {
    throw std::invalid_argument("repair_one: data chunks only");
  }
  if (chunk_size == 0 || chunk_size % 2 != 0) {
    throw std::invalid_argument("repair_one: chunk size not a multiple of 2");
  }
  const std::size_t half = chunk_size / 2;
  const std::vector<HalfRef> refs = repair_reads(failed);
  if (halves.size() != refs.size()) {
    throw std::invalid_argument("repair_one: half-chunk count mismatch");
  }
  for (const Buffer& h : halves) {
    if (h.size() != half) {
      throw std::invalid_argument("repair_one: half-chunk size mismatch");
    }
  }
  const gf::Matrix& gen = base_.generator();
  const std::size_t g = group_of(failed);
  const std::size_t pg = group_parity(g);

  std::vector<const Byte*> b_data(k_, nullptr);
  std::vector<const Byte*> a_group;
  const Byte* p1_b = nullptr;
  const Byte* pg_b = nullptr;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const HalfRef& r = refs[i];
    const Byte* p = halves[i].data();
    if (r.chunk < k_) {
      if (r.half == SubChunk::kA) {
        a_group.push_back(p);  ECF_ALLOC_OK("bounded: <= group-size halves, repair frequency");
      } else {
        b_data[r.chunk] = p;
      }
    } else if (r.chunk == k_) {
      p1_b = p;
    } else {
      pg_b = p;
    }
  }

  // b_failed: RS-solve the b-substripe from the k-1 surviving data
  // b-halves plus p_1^b = f_1(b); only the failed row of the inverse is
  // applied.
  std::vector<std::size_t> rows;
  for (std::size_t j = 0; j < k_; ++j) {
    if (j != failed) rows.push_back(j);  ECF_ALLOC_OK("bounded: k rows, repair frequency");
  }
  rows.push_back(k_);  ECF_ALLOC_OK("bounded: k rows, repair frequency");
  const auto dec = rs_decode_matrix(gen, rows);
  if (!dec) throw std::logic_error("hitchhiker: b-solve matrix singular");

  Buffer out(chunk_size, 0);
  Byte* a_out = out.data();
  Byte* b_out = out.data() + half;
  for (std::size_t t = 0; t < k_; ++t) {
    const std::size_t row = rows[t];
    const Byte* sym = row == k_ ? p1_b : b_data[row];
    gf::mul_acc(dec->at(failed, t), sym, b_out, half);
  }

  // a_failed: p_i^b ⊕ f_i(b) = XOR of the group's a-halves; peel with the
  // surviving members' a-halves. f_i(b) needs every data b, including the
  // just-solved b_failed.
  gf::xor_region(pg_b, a_out, half);
  for (std::size_t j = 0; j < k_; ++j) {
    const Byte* sym = j == failed ? b_out : b_data[j];
    gf::mul_acc(gen.at(pg, j), sym, a_out, half);
  }
  for (const Byte* ap : a_group) gf::xor_region(ap, a_out, half);
  return out;
}

RepairDag HitchhikerCode::repair_dag(
    const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  RepairDag dag;
  if (erased.size() == 1 && erased[0] < k_) {
    const std::size_t failed = erased[0];
    const std::size_t g = group_of(failed);
    // Half-chunk reads in repair_reads() order. A group member's two
    // halves are one contiguous range, so the pair costs a single I/O
    // (the b read is a continuation).
    std::vector<RepairDag::NodeId> b_reads;   // data b-halves, b-solve inputs
    std::vector<RepairDag::NodeId> a_reads;   // group members' a-halves
    RepairDag::NodeId p1_read = 0, pg_read = 0;
    for (const HalfRef& r : repair_reads(failed)) {
      if (r.chunk < k_) {
        if (r.half == SubChunk::kA) {
          a_reads.push_back(dag.add_read(r.chunk, 0.5, 1));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
        } else {
          const std::size_t ios = group_of(r.chunk) == g ? 0 : 1;
          b_reads.push_back(dag.add_read(r.chunk, 0.5, ios));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
        }
      } else if (r.chunk == k_) {
        p1_read = dag.add_read(r.chunk, 0.5, 1);
      } else {
        pg_read = dag.add_read(r.chunk, 0.5, 1);
      }
    }
    // All combines run at the target: b-solve, then the piggyback strip
    // (f_i(b) over every data b + p_i^b), then the a-XOR peel.
    std::vector<RepairDag::NodeId> ins = b_reads;
    ins.push_back(p1_read);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    const RepairDag::NodeId bsolve =
        dag.add_combine(RepairDag::kTargetLoc, ins, 0.5, 1.0);
    ins = b_reads;
    ins.push_back(pg_read);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    ins.push_back(bsolve);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    const RepairDag::NodeId strip =
        dag.add_combine(RepairDag::kTargetLoc, ins, 0.5, 1.0);
    ins.assign(1, strip);
    ins.insert(ins.end(), a_reads.begin(), a_reads.end());  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    const RepairDag::NodeId axor =
        dag.add_combine(RepairDag::kTargetLoc, ins, 0.5, 0.5);
    dag.add_write({bsolve, axor});
    // Two RS-row passes + the XOR peel per reconstructed byte.
    dag.decode_cost_factor = 1.25;
    dag.bandwidth_optimal = false;
    return dag;
  }
  // Parity or multi-failure: conventional full decode from k survivors.
  std::vector<std::size_t> helpers;
  helpers.reserve(k_);
  std::size_t taken = 0;
  for (std::size_t i = 0; i < n_ && taken < k_; ++i) {
    if (std::binary_search(erased.begin(), erased.end(), i)) continue;
    helpers.push_back(i);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    ++taken;
  }
  return conventional_repair_dag(erased, helpers);
}

RepairDag HitchhikerCode::conventional_repair_dag(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& helpers) const {
  RepairDag dag;
  std::vector<RepairDag::NodeId> reads;
  reads.reserve(helpers.size());
  for (const std::size_t i : helpers) {
    reads.push_back(dag.add_read(i, 1.0, 1));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  }
  const RepairDag::NodeId solve =
      dag.add_combine(RepairDag::kTargetLoc, reads,
                      static_cast<double>(erased.size()), 1.0);
  dag.add_write({solve});
  dag.decode_cost_factor = 1.0;
  dag.bandwidth_optimal = false;
  return dag;
}

RepairDag HitchhikerCode::repair_dag_ranked(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference) const {
  check_erasures(*this, erased);
  // The single-data-failure read set (group halves + p1/pg b-halves) is
  // fixed by the group structure — no choice there. The conventional
  // branch decodes from any k survivors (underlying RS substripes), so
  // the preference picks that helper set.
  if (erased.size() == 1 && erased[0] < k_) return repair_dag(erased);
  std::vector<std::size_t> helpers =
      ranked_survivors(n_, erased, preference, k_);
  std::sort(helpers.begin(), helpers.end());
  return conventional_repair_dag(erased, helpers);
}

RepairPlan HitchhikerCode::repair_plan(
    const std::vector<std::size_t>& erased) const {
  return repair_dag(erased).to_repair_plan();
}

}  // namespace ecf::ec
