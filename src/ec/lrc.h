// Locally repairable code, Azure-LRC style (Huang et al., ATC '12).
//
// LRC(k, l, g): k data chunks split into l local groups, one XOR local
// parity per group, plus g global Cauchy parities. n = k + l + g.
// A single data-chunk failure is repaired from its ⌈k/l⌉-chunk local group
// instead of k chunks — the locality/storage trade-off the paper's Table 1
// lists among Ceph's EC plugins.
//
// LRC is not MDS: decode() reports failure for information-theoretically
// unrecoverable patterns (e.g. g+2 erasures inside one local group).
#pragma once

#include "ec/code.h"
#include "gf/matrix.h"

namespace ecf::ec {

class LrcCode : public ErasureCode {
 public:
  // Throws std::invalid_argument for k == 0, l == 0 or l > k, g == 0, or
  // n > 255. Chunk layout: [0,k) data, [k,k+l) local parities (group i's
  // parity at k+i), [k+l,n) global parities.
  LrcCode(std::size_t k, std::size_t l, std::size_t g);

  std::string name() const override;
  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t locals() const { return l_; }
  std::size_t globals() const { return g_; }

  // Group of a data chunk; data chunk d is in group d / group_size().
  std::size_t group_of(std::size_t data_chunk) const;
  std::size_t group_size() const { return group_size_; }
  // Data chunk ids of a group.
  std::vector<std::size_t> group_members(std::size_t group) const;

  void encode(std::vector<Buffer>& chunks) const override;
  [[nodiscard]] bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const override;
  // Single in-group failure: an XOR relay chain across the local group —
  // each helper folds its chunk into the running partial and forwards one
  // chunk's worth, so the repair target receives a single combined chunk
  // instead of the whole group. Other patterns: flat general solve.
  [[nodiscard]] RepairDag repair_dag(
      const std::vector<std::size_t>& erased) const override;
  // Helper choice applies only to the general solve (global parity loss /
  // multi-failure): the greedy row selection walks candidates in
  // preference order, so lightly-loaded survivors are tried first. The
  // single in-group relay chain is fixed by the group layout.
  [[nodiscard]] RepairDag repair_dag_ranked(
      const std::vector<std::size_t>& erased,
      const std::vector<std::size_t>& preference) const override;
  [[nodiscard]] RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const override;

  // True when the erasure pattern is decodable (rank test).
  bool recoverable(const std::vector<std::size_t>& erased) const;

 private:
  // Select k survivor generator rows forming an invertible matrix, or empty.
  std::vector<std::size_t> pick_rows(const std::vector<std::size_t>& erased) const;
  // Same greedy selection over an explicit candidate sequence (survivors
  // only); greedy over any order reaches rank k whenever the pattern is
  // recoverable, the order just biases which rows win.
  std::vector<std::size_t> pick_rows_in_order(
      const std::vector<std::size_t>& candidates) const;
  // Flat general-solve DAG over the chosen rows (empty rows = unrecoverable).
  RepairDag general_repair_dag(const std::vector<std::size_t>& erased,
                               const std::vector<std::size_t>& rows) const;

  std::size_t k_;
  std::size_t l_;
  std::size_t g_;
  std::size_t n_;
  std::size_t group_size_;
  gf::Matrix gen_;  // n x k
};

}  // namespace ecf::ec
