#include "ec/ecdag.h"

#include <algorithm>
#include <cmath>

#include "util/hotpath.h"
#include "util/units.h"

namespace ecf::ec {

namespace {

// Snap a merged fraction to a whole number of chunks when it is within
// rounding noise of one: per-level fractions like |level|/alpha are not
// exact binaries, but their sum across a full sweep *means* exactly 1.0.
double snap_fraction(double f) {
  const double nearest = std::round(f);
  if (nearest >= 1.0 && std::abs(f - nearest) <= 1e-9) return nearest;
  return f;
}

}  // namespace

RepairDag::NodeId RepairDag::add_read(std::size_t chunk, double fraction,
                                      std::size_t subchunk_ios) {
  Node n;
  n.kind = NodeKind::kRead;
  n.loc = chunk;
  n.chunk = chunk;
  n.fraction = fraction;
  n.subchunk_ios = subchunk_ios;
  n.bytes_out = fraction;  ECF_UNIT_OK("bytes_in/bytes_out are chunk-fraction units throughout the DAG");
  nodes.push_back(std::move(n));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  return static_cast<NodeId>(nodes.size() - 1);
}

RepairDag::NodeId RepairDag::add_staged_read(std::size_t chunk, double fraction,
                                             std::size_t subchunk_ios,
                                             const std::vector<NodeId>& after) {
  const NodeId id = add_read(chunk, fraction, subchunk_ios);
  nodes[id].inputs = after;
  return id;
}

RepairDag::NodeId RepairDag::add_combine(std::size_t loc,
                                         const std::vector<NodeId>& inputs,
                                         double bytes_out, double cost_weight) {
  Node n;
  n.kind = NodeKind::kCombine;
  n.loc = loc;
  n.inputs = inputs;
  for (const NodeId in : inputs) {
    if (in < nodes.size()) n.bytes_in += nodes[in].bytes_out;
  }
  n.bytes_out = bytes_out;
  n.cost_weight = cost_weight;
  nodes.push_back(std::move(n));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  return static_cast<NodeId>(nodes.size() - 1);
}

RepairDag::NodeId RepairDag::add_write(const std::vector<NodeId>& inputs) {
  Node n;
  n.kind = NodeKind::kWrite;
  n.loc = kTargetLoc;
  n.inputs = inputs;
  for (const NodeId in : inputs) {
    if (in < nodes.size()) n.bytes_in += nodes[in].bytes_out;
  }
  n.bytes_out = n.bytes_in;
  nodes.push_back(std::move(n));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  return static_cast<NodeId>(nodes.size() - 1);
}

std::vector<std::string> RepairDag::validate() const {
  std::vector<std::string> errors;
  const auto fail = [&errors](std::string msg) {
    errors.push_back(std::move(msg));
  };
  if (nodes.empty()) {
    fail("empty DAG (unrecoverable erasure pattern?)");
    return errors;
  }

  std::size_t writes = 0;
  std::vector<bool> consumed(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    const std::string where = "node " + std::to_string(i);
    // Topological input order: every edge points backwards, so the graph
    // is acyclic by construction (and a hand-built forward edge is the
    // cycle the validator reports).
    for (const NodeId in : n.inputs) {
      if (in >= nodes.size()) {
        fail(where + ": input " + std::to_string(in) + " out of range");
      } else if (in >= i) {
        fail(where + ": input " + std::to_string(in) +
             " not topologically earlier (cycle)");
      } else {
        consumed[in] = true;
      }
    }
    switch (n.kind) {
      case NodeKind::kRead:
        if (!(n.fraction > 0.0) || n.fraction > 1.0) {
          fail(where + ": read fraction must be in (0, 1]");
        }
        break;
      case NodeKind::kCombine: {
        if (n.inputs.empty()) fail(where + ": combine with no inputs");
        if (!(n.bytes_out > 0)) fail(where + ": combine produces no bytes");
        double in_sum = 0;
        for (const NodeId in : n.inputs) {
          if (in < i) in_sum += nodes[in].bytes_out;
        }
        if (std::abs(in_sum - n.bytes_in) > 1e-9) {
          fail(where + ": combine bytes_in does not conserve input bytes");
        }
        break;
      }
      case NodeKind::kWrite: {
        ++writes;
        if (n.inputs.empty()) fail(where + ": write with no inputs");
        if (n.loc != kTargetLoc) fail(where + ": write not at the target");
        double in_sum = 0;
        for (const NodeId in : n.inputs) {
          if (in < i) in_sum += nodes[in].bytes_out;
        }
        if (std::abs(in_sum - n.bytes_in) > 1e-9 ||
            std::abs(n.bytes_out - n.bytes_in) > 1e-9) {
          fail(where + ": write does not conserve bytes");
        }
        break;
      }
    }
  }
  if (writes != 1) {
    fail("expected exactly one write sink, found " + std::to_string(writes));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind != NodeKind::kWrite && !consumed[i]) {
      fail("node " + std::to_string(i) + " has no consumer (dangling sink)");
    }
  }
  return errors;
}

void RepairDag::compute_stages(std::vector<std::size_t>& out) const {
  out.assign(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    std::size_t in_max = 0;
    for (const NodeId in : n.inputs) {
      if (in < i) in_max = std::max(in_max, out[in]);
    }
    // Reads open a fetch stage after everything they are gated on;
    // combines and the write happen within the stage of their last input.
    out[i] = n.kind == NodeKind::kRead ? in_max + 1 : in_max;
  }
}

std::size_t RepairDag::fetch_stages() const {
  std::vector<std::size_t> stage;
  compute_stages(stage);
  std::size_t s = 1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == NodeKind::kRead) s = std::max(s, stage[i]);
  }
  return s;
}

std::vector<std::size_t> RepairDag::node_stages() const {
  std::vector<std::size_t> stage;
  compute_stages(stage);
  return stage;
}

std::size_t RepairDag::depth() const {
  std::vector<std::size_t> d(nodes.size(), 1);
  std::size_t best = nodes.empty() ? 0 : 1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId in : nodes[i].inputs) {
      if (in < i) d[i] = std::max(d[i], d[in] + 1);
    }
    best = std::max(best, d[i]);
  }
  return best;
}

double RepairDag::wire_fraction() const {
  double wire = 0;
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    if (nodes[p].bytes_out <= 0) continue;
    // Each producer ships its output once per distinct consumer location
    // (a target-side broadcast to several combines is one transfer). Gate
    // edges into reads carry no bytes.
    std::vector<std::size_t> dests;
    for (std::size_t c = p + 1; c < nodes.size(); ++c) {
      if (nodes[c].kind == NodeKind::kRead) continue;
      if (std::find(nodes[c].inputs.begin(), nodes[c].inputs.end(),
                    static_cast<NodeId>(p)) == nodes[c].inputs.end()) {
        continue;
      }
      if (nodes[c].loc == nodes[p].loc) continue;
      if (std::find(dests.begin(), dests.end(), nodes[c].loc) == dests.end()) {
        dests.push_back(nodes[c].loc);
      }
    }
    wire += nodes[p].bytes_out * static_cast<double>(dests.size());
  }
  return wire;
}

double RepairDag::target_rx_fraction() const {
  double rx = 0;
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    if (nodes[p].bytes_out <= 0 || nodes[p].loc == kTargetLoc) continue;
    bool feeds_target = false;
    for (std::size_t c = p + 1; c < nodes.size() && !feeds_target; ++c) {
      if (nodes[c].kind == NodeKind::kRead || nodes[c].loc != kTargetLoc) {
        continue;
      }
      feeds_target = std::find(nodes[c].inputs.begin(), nodes[c].inputs.end(),
                               static_cast<NodeId>(p)) != nodes[c].inputs.end();
    }
    if (feeds_target) rx += nodes[p].bytes_out;
  }
  return rx;
}

bool RepairDag::structured() const {
  for (const Node& n : nodes) {
    if (n.kind == NodeKind::kCombine && n.loc != kTargetLoc) return true;
    if (n.kind == NodeKind::kRead && !n.inputs.empty()) return true;
  }
  return false;
}

RepairPlan RepairDag::to_repair_plan() const {
  RepairPlan plan;
  plan.decode_cost_factor = decode_cost_factor;
  plan.bandwidth_optimal = bandwidth_optimal;
  plan.fetch_stages = fetch_stages();
  for (const Node& n : nodes) {
    if (n.kind != NodeKind::kRead) continue;
    auto it = std::find_if(plan.reads.begin(), plan.reads.end(),
                           [&n](const RepairPlan::Read& r) {
                             return r.chunk == n.chunk;
                           });
    if (it == plan.reads.end()) {
      plan.reads.push_back({n.chunk, n.fraction, n.subchunk_ios});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
    } else {
      it->fraction += n.fraction;
      it->subchunk_ios += n.subchunk_ios;
    }
  }
  for (auto& r : plan.reads) r.fraction = snap_fraction(r.fraction);
  return plan;
}

RepairDag RepairDag::from_plan(const RepairPlan& plan,
                               std::size_t erased_count) {
  RepairDag dag;
  dag.decode_cost_factor = plan.decode_cost_factor;
  dag.bandwidth_optimal = plan.bandwidth_optimal;
  if (plan.reads.empty()) return dag;  // unrecoverable: empty DAG
  std::vector<NodeId> reads;
  reads.reserve(plan.reads.size());
  for (const auto& r : plan.reads) {
    reads.push_back(dag.add_read(r.chunk, r.fraction, r.subchunk_ios));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  }
  const NodeId decode =
      dag.add_combine(kTargetLoc, reads, static_cast<double>(erased_count),
                      plan.decode_cost_factor);
  dag.add_write({decode});
  return dag;
}

}  // namespace ecf::ec
