#include "ec/clay.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ec/ecdag.h"
#include "util/hotpath.h"

namespace ecf::ec {

namespace {

// Precomputed linear map from a selected set of known plane symbols to the
// unknown ones: unknown = R · known_selected. Built once per erasure
// pattern, applied to every plane.
struct PlaneSolver {
  std::vector<std::size_t> sel;  // k' known node ids feeding the solve
  gf::Matrix r;                  // |unknown| x k'
};

PlaneSolver make_plane_solver(const gf::Matrix& gen,
                              const std::vector<bool>& unknown) {
  const std::size_t nfull = gen.rows();
  const std::size_t kprime = gen.cols();
  PlaneSolver s;
  for (std::size_t u = 0; u < nfull && s.sel.size() < kprime; ++u) {
    if (!unknown[u]) s.sel.push_back(u);
  }
  if (s.sel.size() < kprime) {
    throw std::logic_error("clay: not enough known symbols for plane solve");
  }
  const auto inv = gen.select_rows(s.sel).inverted();
  if (!inv) throw std::logic_error("clay: plane decode matrix singular");
  std::vector<std::size_t> unknown_rows;
  for (std::size_t u = 0; u < nfull; ++u) {
    if (unknown[u]) unknown_rows.push_back(u);
  }
  s.r = gen.select_rows(unknown_rows).multiply(*inv);
  return s;
}

}  // namespace

ClayCode::ClayCode(std::size_t n, std::size_t k, std::size_t d)
    : n_(n), k_(k), d_(d) {
  if (k == 0 || n <= k) throw std::invalid_argument("Clay requires 0 < k < n");
  if (d < k || d > n - 1) {
    throw std::invalid_argument("Clay requires k <= d <= n-1");
  }
  q_ = d - k + 1;
  t_ = (n + q_ - 1) / q_;
  nfull_ = q_ * t_;
  if (nfull_ > 255) throw std::invalid_argument("Clay internal n' exceeds GF(256)");
  alpha_ = 1;
  for (std::size_t i = 0; i < t_; ++i) {
    if (alpha_ > (1u << 24) / q_) {
      throw std::invalid_argument("Clay sub-packetization too large");
    }
    alpha_ *= q_;
  }
  pow_q_.resize(t_ + 1);
  pow_q_[0] = 1;
  for (std::size_t i = 0; i < t_; ++i) pow_q_[i + 1] = pow_q_[i] * q_;

  const std::size_t m = n_ - k_;
  const std::size_t kprime = nfull_ - m;
  // Systematic Cauchy [n' x k'] generator for the per-plane MDS code.
  gen_ = gf::Matrix(nfull_, kprime);
  for (std::size_t i = 0; i < kprime; ++i) gen_.at(i, i) = 1;
  {
    std::vector<Byte> x(m), y(kprime);
    for (std::size_t i = 0; i < kprime; ++i) y[i] = static_cast<Byte>(i);
    for (std::size_t i = 0; i < m; ++i) x[i] = static_cast<Byte>(kprime + i);
    const gf::Matrix c = gf::Matrix::cauchy(x, y);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t col = 0; col < kprime; ++col) {
        gen_.at(kprime + r, col) = c.at(r, col);
      }
    }
  }
  gamma_ = 2;
  det_ = gf::add(1, gf::mul(gamma_, gamma_));  // 1 + γ² = 5, nonzero
  inv_det_ = gf::inv(det_);
}

std::string ClayCode::name() const {
  return "Clay(" + std::to_string(n_) + "," + std::to_string(k_) + "," +
         std::to_string(d_) + ")";
}

std::size_t ClayCode::digit(std::size_t z, std::size_t y) const {
  return (z / pow_q_[y]) % q_;
}

std::size_t ClayCode::with_digit(std::size_t z, std::size_t y,
                                 std::size_t v) const {
  return z + (v - digit(z, y)) * pow_q_[y];
}

void ClayCode::encode(std::vector<Buffer>& chunks) const {
  check_chunks(chunks);
  std::vector<std::size_t> parities;
  for (std::size_t i = k_; i < n_; ++i) parities.push_back(i);
  // Encoding *is* decoding the parity chunks from the data chunks.
  decode_internal(chunks, parities);
}

bool ClayCode::decode(std::vector<Buffer>& chunks,
                      const std::vector<std::size_t>& erased) const {
  check_chunks(chunks);
  check_erasures(*this, erased);
  decode_internal(chunks, erased);
  return true;
}

void ClayCode::decode_internal(std::vector<Buffer>& chunks,
                               const std::vector<std::size_t>& erased) const {
  const std::size_t chunk_size = chunks[0].size();
  const std::size_t sub = chunk_size / alpha_;

  // Internal chunk pointers: real chunks then virtual (zero) shortening
  // chunks, which count as always-known data.
  std::vector<Buffer> virt(nfull_ - n_, Buffer(chunk_size, 0));
  std::vector<Byte*> c(nfull_);
  for (std::size_t i = 0; i < n_; ++i) c[i] = chunks[i].data();
  for (std::size_t i = n_; i < nfull_; ++i) c[i] = virt[i - n_].data();

  std::vector<bool> is_erased(nfull_, false);
  for (const std::size_t e : erased) is_erased[e] = true;

  // Uncoupled symbols.
  std::vector<Buffer> ustore(nfull_, Buffer(chunk_size, 0));
  std::vector<Byte*> u(nfull_);
  for (std::size_t i = 0; i < nfull_; ++i) u[i] = ustore[i].data();

  // Group planes by intersection score.
  std::vector<std::vector<std::size_t>> levels(t_ + 1);
  for (std::size_t z = 0; z < alpha_; ++z) {
    std::size_t is = 0;
    for (const std::size_t e : erased) {
      if (digit(z, e / q_) == e % q_) ++is;
    }
    levels[is].push_back(z);
  }

  const PlaneSolver solver = make_plane_solver(gen_, is_erased);
  std::vector<const Byte*> solve_in(solver.sel.size());
  std::vector<Byte*> solve_out(erased.size());
  const Byte c_ainv = inv_det_;                      // coeff of own C
  const Byte c_binv = gf::mul(inv_det_, gamma_);     // coeff of partner C

  for (const auto& level : levels) {
    // Step 1: uncoupled symbols of surviving nodes in this level's planes.
    for (const std::size_t z : level) {
      for (std::size_t node = 0; node < nfull_; ++node) {
        if (is_erased[node]) continue;
        const std::size_t x = node % q_;
        const std::size_t y = node / q_;
        Byte* uz = u[node] + z * sub;
        if (digit(z, y) == x) {
          std::copy(c[node] + z * sub, c[node] + (z + 1) * sub, uz);
        } else {
          // Partner vertex; if the partner node is erased, its coupled
          // value at the partner plane was recovered at a lower level.
          const std::size_t pnode = y * q_ + digit(z, y);
          const std::size_t pz = with_digit(z, y, x);
          gf::mul_region(c_ainv, c[node] + z * sub, uz, sub);
          gf::mul_acc(c_binv, c[pnode] + pz * sub, uz, sub);
        }
      }
    }
    // Step 2: MDS-solve every plane in the level for the erased nodes' U —
    // one batched matrix apply per plane (all erased rows share each pass
    // over the known symbols).
    for (const std::size_t z : level) {
      for (std::size_t j = 0; j < solver.sel.size(); ++j) {
        solve_in[j] = u[solver.sel[j]] + z * sub;
      }
      for (std::size_t i = 0; i < erased.size(); ++i) {
        solve_out[i] = u[erased[i]] + z * sub;
      }
      gf::matrix_apply(solver.r, solve_in, solve_out, sub);
    }
    // Step 3: coupled symbols of erased nodes in this level's planes.
    for (const std::size_t z : level) {
      for (const std::size_t node : erased) {
        const std::size_t x = node % q_;
        const std::size_t y = node / q_;
        Byte* cz = c[node] + z * sub;
        if (digit(z, y) == x) {
          std::copy(u[node] + z * sub, u[node] + (z + 1) * sub, cz);
        } else {
          const std::size_t pnode = y * q_ + digit(z, y);
          const std::size_t pz = with_digit(z, y, x);
          if (!is_erased[pnode]) {
            // C_a = det·U_a + γ·C_b  (partner coupled value is known).
            gf::mul_region(det_, u[node] + z * sub, cz, sub);
            gf::mul_acc(gamma_, c[pnode] + pz * sub, cz, sub);
          } else {
            // Partner erased: its U at the partner plane (same level) is
            // available after step 2. C_a = U_a + γ·U_b.
            std::copy(u[node] + z * sub, u[node] + (z + 1) * sub, cz);
            gf::mul_acc(gamma_, u[pnode] + pz * sub, cz, sub);
          }
        }
      }
    }
  }
}

std::vector<std::size_t> ClayCode::repair_planes(std::size_t failed) const {
  if (failed >= n_) throw std::invalid_argument("repair_planes: bad chunk id");
  const std::size_t x0 = failed % q_;
  const std::size_t y0 = failed / q_;
  std::vector<std::size_t> planes;
  planes.reserve(alpha_ / q_);
  for (std::size_t z = 0; z < alpha_; ++z) {
    if (digit(z, y0) == x0) planes.push_back(z);
  }
  return planes;
}

std::size_t ClayCode::repair_subchunk_runs(std::size_t failed) const {
  const std::size_t y0 = failed / q_;
  // Planes with digit y0 fixed form contiguous runs of length q^y0.
  return (alpha_ / q_) / pow_q_[y0];
}

Buffer ClayCode::repair_one(
    std::size_t failed, const std::vector<std::vector<Buffer>>& helper_planes,
    std::size_t chunk_size) const {
  if (d_ != n_ - 1) {
    throw std::invalid_argument(
        "bandwidth-optimal repair implemented for d = n-1 only");
  }
  if (failed >= n_) throw std::invalid_argument("repair_one: bad chunk id");
  if (chunk_size == 0 || chunk_size % alpha_ != 0) {
    throw std::invalid_argument("repair_one: chunk size not multiple of alpha");
  }
  if (helper_planes.size() != n_ - 1) {
    throw std::invalid_argument("repair_one: expected n-1 helpers");
  }
  const std::size_t sub = chunk_size / alpha_;
  const std::vector<std::size_t> rz = repair_planes(failed);

  // Coupled symbols: zero-filled full-size buffers; only repair-plane
  // regions of helpers get real data. Virtual shortening nodes stay zero.
  std::vector<Buffer> cstore(nfull_, Buffer(chunk_size, 0));
  {
    std::size_t hi = 0;
    for (std::size_t node = 0; node < n_; ++node) {
      if (node == failed) continue;
      const auto& planes = helper_planes[hi];
      if (planes.size() != rz.size()) {
        throw std::invalid_argument("repair_one: helper plane count mismatch");
      }
      for (std::size_t p = 0; p < rz.size(); ++p) {
        if (planes[p].size() != sub) {
          throw std::invalid_argument("repair_one: sub-chunk size mismatch");
        }
        std::copy(planes[p].begin(), planes[p].end(),
                  cstore[node].begin() + rz[p] * sub);
      }
      ++hi;
    }
  }

  const std::size_t x0 = failed % q_;
  const std::size_t y0 = failed / q_;

  std::vector<Buffer> ustore(nfull_, Buffer(chunk_size, 0));
  const Byte c_ainv = inv_det_;
  const Byte c_binv = gf::mul(inv_det_, gamma_);

  // Step A: uncoupled symbols of nodes outside column y0, repair planes
  // only. Their partner vertices live in repair planes too.
  for (const std::size_t z : rz) {
    for (std::size_t node = 0; node < nfull_; ++node) {
      const std::size_t x = node % q_;
      const std::size_t y = node / q_;
      if (y == y0) continue;
      Byte* uz = ustore[node].data() + z * sub;
      if (digit(z, y) == x) {
        const Byte* cz = cstore[node].data() + z * sub;
        std::copy(cz, cz + sub, uz);
      } else {
        const std::size_t pnode = y * q_ + digit(z, y);
        const std::size_t pz = with_digit(z, y, x);
        gf::mul_region(c_ainv, cstore[node].data() + z * sub, uz, sub);
        gf::mul_acc(c_binv, cstore[pnode].data() + pz * sub, uz, sub);
      }
    }
  }

  // Step B: per repair plane, MDS-solve the q unknown symbols of column y0
  // (the failed node is the fixed point there, so its U *is* its C).
  std::vector<bool> unknown(nfull_, false);
  std::vector<std::size_t> unknown_ids;
  for (std::size_t x = 0; x < q_; ++x) {
    unknown[y0 * q_ + x] = true;
    unknown_ids.push_back(y0 * q_ + x);
  }
  const PlaneSolver solver = make_plane_solver(gen_, unknown);
  std::vector<const Byte*> solve_in(solver.sel.size());
  std::vector<Byte*> solve_out(unknown_ids.size());
  for (const std::size_t z : rz) {
    for (std::size_t j = 0; j < solver.sel.size(); ++j) {
      solve_in[j] = ustore[solver.sel[j]].data() + z * sub;
    }
    for (std::size_t i = 0; i < unknown_ids.size(); ++i) {
      solve_out[i] = ustore[unknown_ids[i]].data() + z * sub;
    }
    gf::matrix_apply(solver.r, solve_in, solve_out, sub);
  }

  Buffer out(chunk_size, 0);
  // Repair planes: the failed node sits at a fixed point, C = U.
  for (const std::size_t z : rz) {
    const Byte* uz = ustore[failed].data() + z * sub;
    std::copy(uz, uz + sub, out.begin() + z * sub);
  }
  // Step C: remaining planes via the pairwise relation with column-y0
  // helpers, whose repair-plane U and C are both known:
  //   C_a = (det·U_b + C_b) / γ.
  const Byte inv_gamma = gf::inv(gamma_);
  for (std::size_t z2 = 0; z2 < alpha_; ++z2) {
    const std::size_t xp = digit(z2, y0);
    if (xp == x0) continue;  // repair plane, already done
    const std::size_t pnode = y0 * q_ + xp;
    const std::size_t z = with_digit(z2, y0, x0);
    Byte* dst = out.data() + z2 * sub;
    gf::mul_region(gf::mul(det_, inv_gamma), ustore[pnode].data() + z * sub,
                   dst, sub);
    gf::mul_acc(inv_gamma, cstore[pnode].data() + z * sub, dst, sub);
  }
  return out;
}

RepairDag ClayCode::repair_dag(const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  RepairDag dag;
  if (erased.size() == 1) {
    // Bandwidth-optimal: read α/q sub-chunks from each of d helpers, one
    // target-side solve over all of them. Pair transforms + plane solves
    // cost more GF work per reconstructed byte than a plain k-term RS
    // decode.
    std::vector<std::size_t> helpers;
    helpers.reserve(d_);
    std::size_t taken = 0;
    for (std::size_t i = 0; i < n_ && taken < d_; ++i) {
      if (i == erased[0]) continue;
      helpers.push_back(i);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
      ++taken;
    }
    return single_repair_dag(erased[0], helpers);
  }
  // Multi-failure: full-stripe decode. Unlike RS, the coupled-layer
  // construction cannot decode from an arbitrary k-subset of chunks: the
  // pairwise transforms need the partner sub-chunks of *every* surviving
  // node (decode_internal consumes all n-e survivors). The engine also
  // walks planes in intersection-score order — level s+1's pair transforms
  // need level s's solved partners, so each non-empty IS level is a
  // dependent fetch stage of |level|/α of every survivor, read as q
  // scattered segments per encoding unit rather than one linear pass — and
  // pays the pair transforms on top of per-plane MDS solves. This is why
  // Clay loses (and can invert) its advantage under multi-failure patterns
  // (Fig. 2d).
  std::vector<std::size_t> survivors;
  survivors.reserve(n_ - erased.size());
  for (std::size_t i = 0; i < n_; ++i) {
    if (std::binary_search(erased.begin(), erased.end(), i)) continue;
    survivors.push_back(i);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  }
  // Plane population per intersection score, as decode_internal walks it.
  std::vector<std::size_t> level_sizes(t_ + 1, 0);
  for (std::size_t z = 0; z < alpha_; ++z) {
    std::size_t is = 0;
    for (const std::size_t e : erased) {
      if (digit(z, e / q_) == e % q_) ++is;
    }
    ++level_sizes[is];
  }
  std::vector<double> level_fracs;
  level_fracs.reserve(level_sizes.size());
  for (const std::size_t sz : level_sizes) {
    if (sz == 0) continue;
    level_fracs.push_back(static_cast<double>(sz) /  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers")
                          static_cast<double>(alpha_));
  }
  const double e_count = static_cast<double>(erased.size());
  RepairDag::NodeId prev = 0;
  double cum = 0;
  std::vector<RepairDag::NodeId> inputs;
  for (std::size_t lvl = 0; lvl < level_fracs.size(); ++lvl) {
    const double frac = level_fracs[lvl];
    const bool last = lvl + 1 == level_fracs.size();
    inputs.clear();
    if (lvl > 0) inputs.push_back(prev);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    for (const std::size_t s : survivors) {
      // The first level opens the q-segment scatter sweep over each
      // survivor (charged once); later gated reads continue it.
      const RepairDag::NodeId r =
          lvl == 0 ? dag.add_read(s, frac, q_)
                   : dag.add_staged_read(s, frac, 0, {prev});
      inputs.push_back(r);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    }
    cum += frac;
    // Cumulative reconstructed fraction of the e erased chunks; per-level
    // cost weights sum to the plan-level 3.0 per reconstructed byte.
    const double out = last ? e_count : e_count * cum;
    const double cost = last ? 3.0 * frac : 3.0 * frac / cum;
    prev = dag.add_combine(RepairDag::kTargetLoc, inputs, out, cost);
  }
  dag.add_write({prev});
  dag.decode_cost_factor = 3.0;
  dag.bandwidth_optimal = false;
  return dag;
}

RepairDag ClayCode::single_repair_dag(
    std::size_t failed, const std::vector<std::size_t>& helpers) const {
  // Bandwidth-optimal: read α/q sub-chunks from each of d helpers, one
  // target-side solve over all of them. Pair transforms + plane solves
  // cost more GF work per reconstructed byte than a plain k-term RS
  // decode.
  RepairDag dag;
  const std::size_t runs = repair_subchunk_runs(failed);
  std::vector<RepairDag::NodeId> reads;
  reads.reserve(helpers.size());
  for (const std::size_t i : helpers) {
    reads.push_back(  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers")
        dag.add_read(i, 1.0 / static_cast<double>(q_), runs));
  }
  const RepairDag::NodeId solve =
      dag.add_combine(RepairDag::kTargetLoc, reads, 1.0, 2.0);
  dag.add_write({solve});
  dag.decode_cost_factor = 2.0;
  dag.bandwidth_optimal = (d_ == n_ - 1);
  return dag;
}

RepairDag ClayCode::repair_dag_ranked(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference) const {
  check_erasures(*this, erased);
  // Helper choice exists only for single-erasure repair with d < n−1 (any
  // d of the n−1 survivors work). Multi-erasure decode consumes every
  // survivor's partner sub-chunks, and d == n−1 needs all survivors — no
  // choice either way.
  if (erased.size() != 1 || d_ >= n_ - 1) return repair_dag(erased);
  std::vector<std::size_t> helpers =
      ranked_survivors(n_, erased, preference, d_);
  std::sort(helpers.begin(), helpers.end());
  return single_repair_dag(erased[0], helpers);
}

RepairPlan ClayCode::repair_plan(const std::vector<std::size_t>& erased) const {
  return repair_dag(erased).to_repair_plan();
}

}  // namespace ecf::ec
