#include "ec/lrc.h"

#include <algorithm>
#include <stdexcept>

#include "ec/ecdag.h"
#include "util/hotpath.h"

namespace ecf::ec {

LrcCode::LrcCode(std::size_t k, std::size_t l, std::size_t g)
    : k_(k), l_(l), g_(g), n_(k + l + g) {
  if (k == 0) throw std::invalid_argument("LRC requires k > 0");
  if (l == 0 || l > k) throw std::invalid_argument("LRC requires 0 < l <= k");
  if (g == 0) throw std::invalid_argument("LRC requires g > 0");
  if (n_ > 255) throw std::invalid_argument("LRC over GF(256) requires n <= 255");
  group_size_ = (k + l - 1) / l;

  gen_ = gf::Matrix(n_, k_);
  for (std::size_t i = 0; i < k_; ++i) gen_.at(i, i) = 1;
  // Local parities: XOR of the group's data chunks.
  for (std::size_t d = 0; d < k_; ++d) gen_.at(k_ + group_of(d), d) = 1;
  // Global parities: Cauchy rows, evaluation points disjoint from data ids.
  std::vector<Byte> x(g_), y(k_);
  for (std::size_t i = 0; i < k_; ++i) y[i] = static_cast<Byte>(i);
  for (std::size_t i = 0; i < g_; ++i) x[i] = static_cast<Byte>(k_ + i);
  const gf::Matrix c = gf::Matrix::cauchy(x, y);
  for (std::size_t r = 0; r < g_; ++r) {
    for (std::size_t col = 0; col < k_; ++col) {
      gen_.at(k_ + l_ + r, col) = c.at(r, col);
    }
  }
}

std::string LrcCode::name() const {
  return "LRC(k=" + std::to_string(k_) + ",l=" + std::to_string(l_) +
         ",g=" + std::to_string(g_) + ")";
}

std::size_t LrcCode::group_of(std::size_t data_chunk) const {
  return data_chunk / group_size_;
}

std::vector<std::size_t> LrcCode::group_members(std::size_t group) const {
  std::vector<std::size_t> out;
  for (std::size_t d = group * group_size_;
       d < std::min(k_, (group + 1) * group_size_); ++d) {
    out.push_back(d);  ECF_ALLOC_OK("bounded: <= group_size members, plan-build frequency");
  }
  return out;
}

void LrcCode::encode(std::vector<Buffer>& chunks) const {
  check_chunks(chunks);
  const std::size_t len = chunks[0].size();
  // All local + global parities in one batched pass over the data chunks.
  std::vector<const Byte*> in(k_);
  for (std::size_t i = 0; i < k_; ++i) in[i] = chunks[i].data();
  std::vector<std::size_t> rows(n_ - k_);
  std::vector<Byte*> out(n_ - k_);
  for (std::size_t p = k_; p < n_; ++p) {
    rows[p - k_] = p;
    out[p - k_] = chunks[p].data();
  }
  gen_.apply_rows(rows, in, out, len);
}

std::vector<std::size_t> LrcCode::pick_rows(
    const std::vector<std::size_t>& erased) const {
  std::vector<std::size_t> candidates;
  candidates.reserve(n_);
  for (std::size_t row = 0; row < n_; ++row) {
    if (std::binary_search(erased.begin(), erased.end(), row)) continue;
    candidates.push_back(row);  ECF_ALLOC_OK("bounded: <= n rows, plan-build frequency");
  }
  return pick_rows_in_order(candidates);
}

std::vector<std::size_t> LrcCode::pick_rows_in_order(
    const std::vector<std::size_t>& candidates) const {
  // Greedy Gaussian elimination over survivor rows: keep rows that extend
  // the rank until we have k independent ones. Greedy over any candidate
  // order yields a basis whenever one exists (matroid exchange), so the
  // order only biases *which* k rows are chosen — the lever the ranked
  // repair uses to route reads to lightly-loaded helpers.
  std::vector<std::size_t> chosen;
  gf::Matrix basis(k_, k_);
  std::size_t rank = 0;
  for (const std::size_t row : candidates) {
    if (rank >= k_) break;
    // Reduce the candidate row against the current basis.
    std::vector<Byte> v(k_);
    for (std::size_t c = 0; c < k_; ++c) v[c] = gen_.at(row, c);
    for (std::size_t r = 0; r < rank; ++r) {
      // basis row r has pivot at pivot_col[r]; stored normalized.
      // Find its pivot (first nonzero).
      std::size_t pc = 0;
      while (pc < k_ && basis.at(r, pc) == 0) ++pc;
      if (pc < k_ && v[pc] != 0) {
        const Byte f = v[pc];
        for (std::size_t c = 0; c < k_; ++c) {
          v[c] = gf::add(v[c], gf::mul(f, basis.at(r, c)));
        }
      }
    }
    std::size_t pivot = 0;
    while (pivot < k_ && v[pivot] == 0) ++pivot;
    if (pivot == k_) continue;  // dependent
    const Byte inv_p = gf::inv(v[pivot]);
    for (std::size_t c = 0; c < k_; ++c) basis.at(rank, c) = gf::mul(v[c], inv_p);
    chosen.push_back(row);  ECF_ALLOC_OK("bounded: <= k rows, plan-build frequency");
    ++rank;
  }
  if (rank < k_) return {};
  return chosen;
}

bool LrcCode::recoverable(const std::vector<std::size_t>& erased) const {
  return !pick_rows(erased).empty();
}

bool LrcCode::decode(std::vector<Buffer>& chunks,
                     const std::vector<std::size_t>& erased) const {
  check_chunks(chunks);
  check_erasures(*this, erased);
  const std::size_t len = chunks[0].size();

  // Fast path: lone erasures repairable inside their local group by XOR.
  // (Also covers a lost local parity.) Fall through to the general solve
  // when any group has 2+ losses.
  const std::vector<std::size_t> rows = pick_rows(erased);
  if (rows.empty()) return false;

  const auto inv = gen_.select_rows(rows).inverted();
  if (!inv) return false;

  std::vector<Buffer> data(k_, Buffer(len));
  std::vector<const Byte*> in(k_);
  std::vector<Byte*> out(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = chunks[rows[i]].data();
    out[i] = data[i].data();
  }
  gf::matrix_apply(*inv, in, out, len);

  std::vector<const Byte*> data_in(k_);
  for (std::size_t i = 0; i < k_; ++i) data_in[i] = data[i].data();
  std::vector<Byte*> erased_out(erased.size());
  for (std::size_t i = 0; i < erased.size(); ++i) {
    erased_out[i] = chunks[erased[i]].data();
  }
  gen_.apply_rows(erased, data_in, erased_out, len);
  return true;
}

RepairDag LrcCode::repair_dag(const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  RepairDag dag;
  if (erased.size() == 1 && erased[0] < k_ + l_) {
    // Data chunk or local parity: XOR the rest of the local group. The
    // combines form a relay chain through the group's helpers, so only one
    // chunk's worth of bytes reaches the repair target.
    const std::size_t e = erased[0];
    const std::size_t grp = e < k_ ? group_of(e) : e - k_;
    std::vector<std::size_t> helpers;
    for (const std::size_t d : group_members(grp)) {
      if (d != e) helpers.push_back(d);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    }
    if (e != k_ + grp) helpers.push_back(k_ + grp);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    std::vector<RepairDag::NodeId> reads;
    reads.reserve(helpers.size());
    for (const std::size_t h : helpers) {
      reads.push_back(dag.add_read(h, 1.0, 1));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
    }
    RepairDag::NodeId tail;
    if (helpers.size() == 1) {
      tail = dag.add_combine(RepairDag::kTargetLoc, {reads[0]}, 1.0, 0.5);
    } else {
      // Per-hop XOR weights sum to the plan-level 0.5 per produced byte.
      const double step = 0.5 / static_cast<double>(helpers.size() - 1);
      tail = dag.add_combine(helpers[1], {reads[0], reads[1]}, 1.0, step);
      for (std::size_t j = 2; j < helpers.size(); ++j) {
        tail = dag.add_combine(helpers[j], {tail, reads[j]}, 1.0, step);
      }
    }
    dag.add_write({tail});
    dag.decode_cost_factor = 0.5;  // pure XOR
    dag.bandwidth_optimal = true;  // locality-optimal
    return dag;
  }
  // Global parity loss or multi-failure: general solve (flat).
  return general_repair_dag(erased, pick_rows(erased));
}

RepairDag LrcCode::general_repair_dag(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& rows) const {
  RepairDag dag;
  dag.decode_cost_factor = 1.0;
  if (rows.empty()) return dag;  // unrecoverable: empty DAG
  std::vector<RepairDag::NodeId> reads;
  reads.reserve(rows.size());
  for (const std::size_t r : rows) {
    reads.push_back(dag.add_read(r, 1.0, 1));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  }
  const RepairDag::NodeId solve =
      dag.add_combine(RepairDag::kTargetLoc, reads,
                      static_cast<double>(erased.size()), 1.0);
  dag.add_write({solve});
  return dag;
}

RepairDag LrcCode::repair_dag_ranked(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference) const {
  check_erasures(*this, erased);
  // The single in-group repair's relay chain is fixed by the group
  // layout; only the general solve picks among survivor rows. Feed the
  // greedy row selection candidates in preference order, then sort the
  // chosen rows so the DAG depends only on the selected set.
  if (erased.size() == 1 && erased[0] < k_ + l_) return repair_dag(erased);
  std::vector<std::size_t> rows = pick_rows_in_order(
      ranked_survivors(n_, erased, preference, n_));
  std::sort(rows.begin(), rows.end());
  return general_repair_dag(erased, rows);
}

RepairPlan LrcCode::repair_plan(const std::vector<std::size_t>& erased) const {
  return repair_dag(erased).to_repair_plan();
}

}  // namespace ecf::ec
