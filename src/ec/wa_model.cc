#include "ec/wa_model.h"

#include "ec/stripe.h"

namespace ecf::ec {

WaEstimate estimate_wa(std::uint64_t object_size, std::size_t n, std::size_t k,
                       std::uint64_t stripe_unit, std::uint64_t s_meta) {
  const StripeLayout layout =
      compute_stripe_layout(object_size, n, k, stripe_unit);
  WaEstimate est;
  est.theoretical = static_cast<double>(n) / static_cast<double>(k);
  est.chunk_size = layout.chunk_size;
  est.padding_bytes = layout.padding_bytes;
  est.stored_data_bytes = layout.stored_total;
  const auto obj = static_cast<double>(object_size);
  est.padding_only = static_cast<double>(layout.stored_total) / obj;
  est.with_metadata =
      (static_cast<double>(layout.stored_total) + static_cast<double>(s_meta)) /
      obj;
  return est;
}

}  // namespace ecf::ec
