// The paper's §4.4 write-amplification model.
//
// Theoretical EC storage amplification is n/k, but the measured OSD-level
// amplification is larger because of (1) zero padding from the
// division-and-padding policy and (2) per-chunk metadata. The paper derives
//
//     S_chunk = S_unit · ⌈ S_object / (k · S_unit) ⌉
//     WA      = (n · S_chunk + S_meta) / S_object
//
// and validates it as a tighter lower bound than n/k. This header exposes
// the formula directly (used by the WA benches and the wa_estimator
// example) plus a breakdown of where the amplification comes from.
#pragma once

#include <cstdint>

namespace ecf::ec {

struct WaEstimate {
  double theoretical = 0;     // n/k
  double padding_only = 0;    // n·S_chunk / S_object   (S_meta = 0)
  double with_metadata = 0;   // (n·S_chunk + S_meta) / S_object
  std::uint64_t chunk_size = 0;       // S_chunk
  std::uint64_t padding_bytes = 0;    // total zero padding across k chunks
  std::uint64_t stored_data_bytes = 0;  // n·S_chunk
};

// Per-object WA estimate from the paper's formula. s_meta is the metadata
// bytes attributed to the object's stripe (0 when unknown; the paper notes
// S_meta "may not be readily available" and uses the rest as a lower
// bound).
WaEstimate estimate_wa(std::uint64_t object_size, std::size_t n, std::size_t k,
                       std::uint64_t stripe_unit, std::uint64_t s_meta = 0);

}  // namespace ecf::ec
