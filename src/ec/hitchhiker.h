// Hitchhiker-XOR, after Rashmi et al., "A 'Hitchhiker's' Guide to Fast and
// Efficient Data Reconstruction in Erasure-coded Data Centers" (SIGCOMM '14).
//
// HH-XOR piggybacks on a base (n, k) Reed-Solomon code with sub-
// packetization α = 2: every chunk is two half-chunks [a | b]. The
// a-substripe is a plain RS codeword. The b-substripe stores, for parity
// i >= 2, the RS parity f_i(b) XORed with the a-halves of a group S_i of
// data chunks (the parity "gives a ride" to those data halves):
//
//   p_1 = [ f_1(a) | f_1(b) ]
//   p_i = [ f_i(a) | f_i(b) ⊕ XOR_{j∈S_i} a_j ]   for i = 2..m
//
// with S_2..S_m a near-even contiguous partition of the k data chunks.
// The code stays MDS (any m erasures decodable: solve the a-substripe
// first, strip the now-known a-XORs off the surviving b-parities, then
// solve the b-substripe), but a single *data* chunk failure j ∈ S_i reads
// only (k + |S_i|) half-chunks instead of RS's 2k:
//
//   * b_j   from k-1 surviving data b-halves + p_1's b-half (RS solve);
//   * a_j   from p_i's b-half: f_i(b) is computable once b_j is known, so
//           p_i^b ⊕ f_i(b) = XOR_{t∈S_i} a_t, and the group's other
//           a-halves peel the XOR down to a_j.
//
// For k = 10, m = 4 (groups of 3-4) that is (10+4)/2 = 7 chunk-equivalents
// against 10 — the ~35% repair-byte saving the paper reports — with no
// sub-chunk scatter: each half is one contiguous run.
//
// Requires m >= 2 (parity 1 must stay clean for the b-solve, and at least
// one parity must carry a group) and k >= m-1 (every group non-empty).
#pragma once

#include <cstdint>

#include "ec/code.h"
#include "ec/rs.h"

namespace ecf::ec {

class HitchhikerCode : public ErasureCode {
 public:
  // Throws std::invalid_argument unless 0 < k < n <= 255, n-k >= 2 and
  // k >= n-k-1 (plus anything the base RS construction rejects).
  HitchhikerCode(std::size_t n, std::size_t k,
                 RsTechnique technique = RsTechnique::kVandermonde);

  std::string name() const override;
  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t alpha() const override { return 2; }  // [a | b] half-chunks

  void encode(std::vector<Buffer>& chunks) const override;
  [[nodiscard]] bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const override;

  // Single data-chunk failure: half-chunk reads (group members contribute
  // both halves, everyone else only b) with target-side b-solve → strip →
  // a-XOR combines. Parity or multi-failure: flat full decode.
  [[nodiscard]] RepairDag repair_dag(
      const std::vector<std::size_t>& erased) const override;
  // Helper choice applies only to the conventional (parity/multi-failure)
  // branch: single-data-failure reads are fixed by the group structure.
  [[nodiscard]] RepairDag repair_dag_ranked(
      const std::vector<std::size_t>& erased,
      const std::vector<std::size_t>& preference) const override;
  [[nodiscard]] RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const override;

  // --- group layout -------------------------------------------------------
  // Groups are 0-based here; group g rides on parity i = g+2, i.e. chunk
  // group_parity(g). k data chunks split into m-1 contiguous groups whose
  // sizes differ by at most one.
  std::size_t groups() const { return n_ - k_ - 1; }
  std::size_t group_of(std::size_t data_chunk) const;
  std::vector<std::size_t> group_members(std::size_t group) const;
  std::size_t group_parity(std::size_t group) const { return k_ + 1 + group; }

  // --- bandwidth-efficient single data-chunk repair -----------------------
  enum class SubChunk : std::uint8_t { kA, kB };
  struct HalfRef {
    std::size_t chunk = 0;
    SubChunk half = SubChunk::kA;
  };
  // The half-chunks read to repair data chunk `failed`: ascending chunk id,
  // kA before kB within a chunk; (k + |S_i|) halves total. Throws for
  // parity chunks (their repair is a full decode).
  std::vector<HalfRef> repair_reads(std::size_t failed) const;
  // Repair data chunk `failed` from the halves listed by repair_reads
  // (same order; each buffer of size chunk_size / 2). Bit-exact against
  // erase_and_decode. Throws std::invalid_argument on malformed input.
  Buffer repair_one(std::size_t failed, const std::vector<Buffer>& halves,
                    std::size_t chunk_size) const;

 private:
  // Flat full decode over an explicit k-helper set (ascending); the
  // parity/multi-failure branch shared by repair_dag and repair_dag_ranked.
  RepairDag conventional_repair_dag(
      const std::vector<std::size_t>& erased,
      const std::vector<std::size_t>& helpers) const;

  std::size_t n_;
  std::size_t k_;
  RsCode base_;
  std::vector<std::size_t> group_start_;  // groups()+1 boundaries, last = k
};

}  // namespace ecf::ec
