#include "ec/code.h"

#include <algorithm>
#include <stdexcept>

#include "ec/ecdag.h"
#include "util/hotpath.h"

namespace ecf::ec {

void ErasureCode::check_chunks(const std::vector<Buffer>& chunks) const {
  if (chunks.size() != n()) {
    throw std::invalid_argument(name() + ": expected " + std::to_string(n()) +
                                " chunks, got " + std::to_string(chunks.size()));
  }
  const std::size_t size = chunks.empty() ? 0 : chunks[0].size();
  if (size == 0) throw std::invalid_argument(name() + ": empty chunks");
  if (size % alpha() != 0) {
    throw std::invalid_argument(name() + ": chunk size " + std::to_string(size) +
                                " not a multiple of alpha=" +
                                std::to_string(alpha()));
  }
  for (const auto& c : chunks) {
    if (c.size() != size) {
      throw std::invalid_argument(name() + ": chunk sizes differ");
    }
  }
}

RepairPlan ErasureCode::repair_plan(
    const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  RepairPlan plan;
  // Conventional MDS repair: read the first k surviving chunks in full.
  // check_erasures guarantees `erased` is sorted, so membership is a
  // binary search.
  std::size_t taken = 0;
  for (std::size_t i = 0; i < n() && taken < k(); ++i) {
    if (std::binary_search(erased.begin(), erased.end(), i)) continue;
    plan.reads.push_back({i, 1.0, 1});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
    ++taken;
  }
  plan.decode_cost_factor = 1.0;
  plan.bandwidth_optimal = false;
  return plan;
}

RepairDag ErasureCode::repair_dag(
    const std::vector<std::size_t>& erased) const {
  // Flat fetch-all-then-decode wrap of the plan; overriders express real
  // structure (helper-local combines, staged fetches) directly instead.
  return RepairDag::from_plan(repair_plan(erased), erased.size());
}

RepairDag ErasureCode::repair_dag_ranked(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference) const {
  // Default: no helper choice (every survivor is needed, or the read set
  // is structurally fixed) — the preference cannot change the DAG.
  (void)preference;
  return repair_dag(erased);
}

std::vector<std::size_t> ranked_survivors(
    std::size_t n, const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference, std::size_t want) {
  std::vector<std::size_t> chosen;
  chosen.reserve(want);
  const auto is_erased = [&](std::size_t i) {
    return std::binary_search(erased.begin(), erased.end(), i);
  };
  const auto picked = [&](std::size_t i) {
    return std::find(chosen.begin(), chosen.end(), i) != chosen.end();
  };
  for (const std::size_t pos : preference) {
    if (chosen.size() >= want) break;
    if (pos >= n || is_erased(pos) || picked(pos)) continue;
    chosen.push_back(pos);  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
  }
  for (std::size_t i = 0; i < n && chosen.size() < want; ++i) {
    if (is_erased(i) || picked(i)) continue;
    chosen.push_back(i);  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
  }
  return chosen;
}

void check_erasures(const ErasureCode& code,
                    const std::vector<std::size_t>& erased) {
  // Input-contract checks on the erasure pattern: part of the tested API
  // surface (callers rely on these throws), and amortized to plan-build
  // frequency by the repair-plan caches.
  if (erased.empty()) throw std::invalid_argument("no erasures given");  // ecf-analyze: allow(event-throw)
  if (erased.size() > code.m()) {
    throw std::invalid_argument("more erasures than parity chunks");  // ecf-analyze: allow(event-throw)
  }
  for (std::size_t i = 0; i < erased.size(); ++i) {
    if (erased[i] >= code.n()) throw std::invalid_argument("erasure out of range");  // ecf-analyze: allow(event-throw)
    if (i > 0 && erased[i] <= erased[i - 1]) {
      throw std::invalid_argument("erasures must be sorted and unique");  // ecf-analyze: allow(event-throw)
    }
  }
}

bool erase_and_decode(const ErasureCode& code, std::vector<Buffer>& chunks,
                      const std::vector<std::size_t>& erased) {
  for (const std::size_t e : erased) {
    std::fill(chunks[e].begin(), chunks[e].end(), Byte{0});
  }
  return code.decode(chunks, erased);
}

}  // namespace ecf::ec
