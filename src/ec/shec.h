// SHEC — Shingled Erasure Code (Miyamae et al., Ceph's `shec` plugin),
// the last entry in the paper's Table 1 plugin list.
//
// SHEC(k, m, c) arranges m parity chunks as overlapping ("shingled")
// windows over the k data chunks: parity i covers l = ceil(k*c/m)
// consecutive data chunks starting at offset i*(k - l)/(m - 1) (degenerate
// cases handled below). It guarantees recovery of any c concurrent
// failures, and a single data-chunk failure is repaired from one window —
// l data reads instead of k, trading storage efficiency (m > the MDS
// minimum) for repair locality, like a diagonal cousin of LRC.
//
// Not MDS for c < m: decode() reports unrecoverable patterns honestly via
// the same rank test the LRC uses.
#pragma once

#include "ec/code.h"
#include "gf/matrix.h"

namespace ecf::ec {

class ShecCode : public ErasureCode {
 public:
  // Throws std::invalid_argument unless 0 < c <= m <= k and n <= 255.
  ShecCode(std::size_t k, std::size_t m, std::size_t c);

  std::string name() const override;
  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t durability() const { return c_; }  // guaranteed failures
  // Window width l: data chunks covered by each parity.
  std::size_t window() const { return l_; }
  // Data chunk ids covered by parity p (0-based parity index).
  std::vector<std::size_t> parity_window(std::size_t p) const;

  void encode(std::vector<Buffer>& chunks) const override;
  [[nodiscard]] bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const override;
  [[nodiscard]] RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const override;

  // Rank test: is this erasure pattern decodable?
  bool recoverable(const std::vector<std::size_t>& erased) const;

 private:
  std::size_t window_start(std::size_t p) const;
  std::vector<std::size_t> pick_rows(const std::vector<std::size_t>& erased) const;

  std::size_t k_;
  std::size_t m_;
  std::size_t c_;
  std::size_t n_;
  std::size_t l_;
  gf::Matrix gen_;  // n x k
};

}  // namespace ecf::ec
