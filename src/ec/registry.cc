#include "ec/registry.h"

#include <stdexcept>

#include "ec/clay.h"
#include "ec/hitchhiker.h"
#include "ec/lrc.h"
#include "ec/replication.h"
#include "ec/rs.h"
#include "ec/shec.h"

namespace ecf::ec {

namespace {

std::size_t require_uint(const std::map<std::string, std::string>& p,
                         const std::string& key) {
  const auto it = p.find(key);
  if (it == p.end()) {
    throw std::invalid_argument("EC profile missing '" + key + "'");
  }
  return static_cast<std::size_t>(std::stoul(it->second));
}

std::size_t get_uint_or(const std::map<std::string, std::string>& p,
                        const std::string& key, std::size_t fallback) {
  const auto it = p.find(key);
  return it == p.end() ? fallback
                       : static_cast<std::size_t>(std::stoul(it->second));
}

std::string get_str_or(const std::map<std::string, std::string>& p,
                       const std::string& key, const std::string& fallback) {
  const auto it = p.find(key);
  return it == p.end() ? fallback : it->second;
}

}  // namespace

std::unique_ptr<ErasureCode> make_code(
    const std::map<std::string, std::string>& profile) {
  const std::string plugin = get_str_or(profile, "plugin", "jerasure");
  if (plugin == "jerasure" || plugin == "isa") {
    const std::size_t k = require_uint(profile, "k");
    const std::size_t m = require_uint(profile, "m");
    const std::string technique = get_str_or(
        profile, "technique",
        plugin == "jerasure" ? "reed_sol_van" : "cauchy");
    RsTechnique t;
    if (technique == "reed_sol_van" || technique == "vandermonde") {
      t = RsTechnique::kVandermonde;
    } else if (technique == "cauchy_orig" || technique == "cauchy") {
      t = RsTechnique::kCauchy;
    } else {
      throw std::invalid_argument("unknown RS technique '" + technique + "'");
    }
    return std::make_unique<RsCode>(k + m, k, t);
  }
  if (plugin == "clay") {
    const std::size_t k = require_uint(profile, "k");
    const std::size_t m = require_uint(profile, "m");
    const std::size_t d = get_uint_or(profile, "d", k + m - 1);
    return std::make_unique<ClayCode>(k + m, k, d);
  }
  if (plugin == "lrc") {
    const std::size_t k = require_uint(profile, "k");
    const std::size_t l = require_uint(profile, "l");
    const std::size_t g = require_uint(profile, "g");
    return std::make_unique<LrcCode>(k, l, g);
  }
  if (plugin == "hitchhiker") {
    const std::size_t k = require_uint(profile, "k");
    const std::size_t m = require_uint(profile, "m");
    const std::string technique = get_str_or(profile, "technique", "reed_sol_van");
    RsTechnique t;
    if (technique == "reed_sol_van" || technique == "vandermonde") {
      t = RsTechnique::kVandermonde;
    } else if (technique == "cauchy_orig" || technique == "cauchy") {
      t = RsTechnique::kCauchy;
    } else {
      throw std::invalid_argument("unknown RS technique '" + technique + "'");
    }
    return std::make_unique<HitchhikerCode>(k + m, k, t);
  }
  if (plugin == "shec") {
    const std::size_t k = require_uint(profile, "k");
    const std::size_t m = require_uint(profile, "m");
    const std::size_t c = get_uint_or(profile, "c", m);
    return std::make_unique<ShecCode>(k, m, c);
  }
  if (plugin == "replication") {
    return std::make_unique<ReplicationCode>(get_uint_or(profile, "size", 3));
  }
  throw std::invalid_argument("unknown EC plugin '" + plugin + "'");
}

std::unique_ptr<ErasureCode> make_code(const util::Json& profile) {
  std::map<std::string, std::string> flat;
  for (const auto& [key, value] : profile.members()) {
    if (value.is_string()) {
      flat[key] = value.as_string();
    } else if (value.is_number()) {
      flat[key] = std::to_string(value.as_int());
    }
  }
  return make_code(flat);
}

std::vector<std::string> known_plugins() {
  return {"jerasure", "isa", "clay", "lrc", "shec", "hitchhiker",
          "replication"};
}

}  // namespace ecf::ec
