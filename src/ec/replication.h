// n-way replication as a degenerate "code": k = 1, every chunk is a copy.
// Serves as the baseline Ceph pools default to and as a sanity anchor for
// the WA experiments (its theoretical and padding-free WA coincide).
#pragma once

#include "ec/code.h"

namespace ecf::ec {

class ReplicationCode : public ErasureCode {
 public:
  explicit ReplicationCode(std::size_t copies);

  std::string name() const override;
  std::size_t n() const override { return copies_; }
  std::size_t k() const override { return 1; }

  void encode(std::vector<Buffer>& chunks) const override;
  [[nodiscard]] bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const override;
  [[nodiscard]] RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const override;

 private:
  std::size_t copies_;
};

}  // namespace ecf::ec
