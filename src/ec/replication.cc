#include "ec/replication.h"

#include <algorithm>
#include <stdexcept>

#include "util/hotpath.h"

namespace ecf::ec {

ReplicationCode::ReplicationCode(std::size_t copies) : copies_(copies) {
  if (copies < 2) throw std::invalid_argument("replication requires >= 2 copies");
}

std::string ReplicationCode::name() const {
  return "Replication(x" + std::to_string(copies_) + ")";
}

void ReplicationCode::encode(std::vector<Buffer>& chunks) const {
  check_chunks(chunks);
  for (std::size_t i = 1; i < copies_; ++i) chunks[i] = chunks[0];
}

bool ReplicationCode::decode(std::vector<Buffer>& chunks,
                             const std::vector<std::size_t>& erased) const {
  check_chunks(chunks);
  check_erasures(*this, erased);
  // Find any survivor and copy it over the erased replicas.
  std::size_t src = copies_;
  for (std::size_t i = 0; i < copies_; ++i) {
    if (!std::binary_search(erased.begin(), erased.end(), i)) {
      src = i;
      break;
    }
  }
  if (src == copies_) return false;
  for (const std::size_t e : erased) chunks[e] = chunks[src];
  return true;
}

RepairPlan ReplicationCode::repair_plan(
    const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  RepairPlan plan;
  for (std::size_t i = 0; i < copies_; ++i) {
    if (!std::binary_search(erased.begin(), erased.end(), i)) {
      plan.reads.push_back({i, 1.0, 1});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
      break;
    }
  }
  plan.decode_cost_factor = 0.1;  // memcpy, no GF arithmetic
  plan.bandwidth_optimal = true;
  return plan;
}

}  // namespace ecf::ec
