// Object striping and the paper's division-and-padding policy (§4.4).
//
// In a Ceph EC pool an object of size S_object is split into k data chunks.
// Each chunk is built from stripe_unit-sized encoding units: an undersized
// chunk is zero-padded up to stripe_unit, an oversized chunk is divided
// into ⌈S_object / (k·S_unit)⌉ units, the last of which is padded. Hence
// the per-chunk stored size the paper derives:
//
//     S_chunk = S_unit · ⌈ S_object / (k · S_unit) ⌉
//
// This header provides both the arithmetic (StripeLayout, feeding the WA
// model and the simulator's write path) and the real byte-level
// split/reassemble used by the examples and the codec round-trip tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ec/code.h"
#include "util/units.h"

namespace ecf::ec {

// All sizes are util::Bytes (explicit in, implicit out): the stripe
// geometry is where a MiB-vs-bytes slip would silently rescale every
// derived figure.
struct StripeLayout {
  util::Bytes object_size;
  util::Bytes stripe_unit;
  std::size_t k = 0;
  std::size_t n = 0;
  // Encoding units per chunk: ⌈S_object / (k·S_unit)⌉ (≥ 1 for S_object>0).
  std::uint64_t units_per_chunk = 0;
  // Stored bytes per chunk: S_unit · units_per_chunk.
  util::Bytes chunk_size;
  // Stored bytes over all n chunks.
  util::Bytes stored_total;
  // Zero padding over all data chunks: k·chunk_size − S_object.
  util::Bytes padding_bytes;
};

// Throws std::invalid_argument if any of object_size, k, n, stripe_unit is
// zero or n < k.
StripeLayout compute_stripe_layout(std::uint64_t object_size, std::size_t n,
                                   std::size_t k, std::uint64_t stripe_unit);

// Split object bytes into n chunk buffers (k data chunks per the layout,
// zero-padded; parity buffers allocated zero-filled), matching what the
// encode() of any code expects. For sub-packetized codes pass alpha so the
// chunk size is rounded up to a multiple of it.
std::vector<Buffer> split_object(const Buffer& object, std::size_t n,
                                 std::size_t k, std::uint64_t stripe_unit,
                                 std::size_t alpha = 1);

// Inverse of split_object: reassemble the original object_size bytes from
// the k data chunks.
Buffer reassemble_object(const std::vector<Buffer>& chunks, std::size_t k,
                         std::uint64_t object_size, std::uint64_t stripe_unit);

}  // namespace ecf::ec
