#include "ec/rs.h"

#include <algorithm>
#include <stdexcept>

#include "ec/ecdag.h"
#include "util/hotpath.h"

namespace ecf::ec {

namespace {

gf::Matrix build_generator(std::size_t n, std::size_t k, RsTechnique tech) {
  if (tech == RsTechnique::kVandermonde) {
    std::vector<gf::Byte> evals(n);
    for (std::size_t i = 0; i < n; ++i) evals[i] = static_cast<gf::Byte>(i + 1);
    gf::Matrix g = gf::Matrix::vandermonde(evals, k);
    if (!g.make_systematic(k)) {
      throw std::invalid_argument("RS vandermonde generator singular");
    }
    return g;
  }
  // Cauchy: top k rows identity, bottom m rows Cauchy(x, y) with
  // x = {k, ..., n-1}+shift disjoint from y = {0, ..., k-1}.
  gf::Matrix g(n, k);
  for (std::size_t i = 0; i < k; ++i) g.at(i, i) = 1;
  std::vector<gf::Byte> x(n - k), y(k);
  for (std::size_t i = 0; i < k; ++i) y[i] = static_cast<gf::Byte>(i);
  for (std::size_t i = 0; i < n - k; ++i) x[i] = static_cast<gf::Byte>(k + i);
  const gf::Matrix c = gf::Matrix::cauchy(x, y);
  for (std::size_t r = 0; r < n - k; ++r) {
    for (std::size_t col = 0; col < k; ++col) g.at(k + r, col) = c.at(r, col);
  }
  return g;
}

}  // namespace

RsCode::RsCode(std::size_t n, std::size_t k, RsTechnique technique)
    : n_(n), k_(k), technique_(technique) {
  if (k == 0 || n <= k) throw std::invalid_argument("RS requires 0 < k < n");
  if (n > 255) throw std::invalid_argument("RS over GF(256) requires n <= 255");
  gen_ = build_generator(n, k, technique);
  if (technique == RsTechnique::kVandermonde && !verify_mds()) {
    throw std::invalid_argument("RS vandermonde generator is not MDS");
  }
}

std::string RsCode::name() const {
  const char* t = technique_ == RsTechnique::kVandermonde ? "reed_sol_van"
                                                          : "cauchy_orig";
  return "RS(" + std::to_string(n_) + "," + std::to_string(k_) + ")/" + t;
}

void RsCode::encode(std::vector<Buffer>& chunks) const {
  check_chunks(chunks);
  const std::size_t len = chunks[0].size();
  std::vector<const Byte*> in(k_);
  for (std::size_t i = 0; i < k_; ++i) in[i] = chunks[i].data();
  // Parity rows only; data rows are identity (systematic). One batched,
  // cache-blocked pass over the data chunks fills all m parity chunks.
  std::vector<std::size_t> rows(m());
  std::vector<Byte*> out(m());
  for (std::size_t p = k_; p < n_; ++p) {
    rows[p - k_] = p;
    out[p - k_] = chunks[p].data();
  }
  gen_.apply_rows(rows, in, out, len);
}

bool RsCode::decode(std::vector<Buffer>& chunks,
                    const std::vector<std::size_t>& erased) const {
  check_chunks(chunks);
  check_erasures(*this, erased);
  const std::size_t len = chunks[0].size();

  // Pick the first k surviving chunks.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n_ && rows.size() < k_; ++i) {
    if (std::binary_search(erased.begin(), erased.end(), i)) continue;
    rows.push_back(i);
  }
  if (rows.size() < k_) return false;

  const auto dec = rs_decode_matrix(gen_, rows);
  if (!dec) return false;  // cannot happen for an MDS generator

  // data = dec * survivors; then re-encode the erased rows.
  std::vector<Buffer> data(k_, Buffer(len));
  std::vector<const Byte*> in(k_);
  std::vector<Byte*> out(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = chunks[rows[i]].data();
    out[i] = data[i].data();
  }
  gf::matrix_apply(*dec, in, out, len);

  std::vector<std::size_t> parity_rows;
  std::vector<Byte*> parity_out;
  std::vector<const Byte*> data_in(k_);
  for (std::size_t i = 0; i < k_; ++i) data_in[i] = data[i].data();
  for (const std::size_t e : erased) {
    if (e < k_) {
      std::copy(data[e].begin(), data[e].end(), chunks[e].begin());
    } else {
      parity_rows.push_back(e);
      parity_out.push_back(chunks[e].data());
    }
  }
  if (!parity_rows.empty()) {
    gen_.apply_rows(parity_rows, data_in, parity_out, len);
  }
  return true;
}

RepairDag RsCode::repair_dag(const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  // The first k survivors, exactly as decode() selects them.
  std::vector<std::size_t> helpers;
  for (std::size_t i = 0; i < n_ && helpers.size() < k_; ++i) {
    if (std::binary_search(erased.begin(), erased.end(), i)) continue;
    helpers.push_back(i);  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  }
  return build_repair_dag(erased, helpers);
}

RepairDag RsCode::repair_dag_ranked(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference) const {
  check_erasures(*this, erased);
  // MDS: any k survivors decode, so the preference picks the helper set
  // outright. Canonicalize ascending — DAG shape depends on the set only.
  std::vector<std::size_t> helpers =
      ranked_survivors(n_, erased, preference, k_);
  std::sort(helpers.begin(), helpers.end());
  return build_repair_dag(erased, helpers);
}

RepairDag RsCode::build_repair_dag(
    const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& helpers) const {
  RepairDag dag;
  dag.decode_cost_factor = 1.0;
  dag.bandwidth_optimal = false;
  std::vector<RepairDag::NodeId> reads;
  reads.reserve(helpers.size());
  for (const std::size_t i : helpers) {
    reads.push_back(dag.add_read(i, 1.0, 1));  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers");
  }
  const double kd = static_cast<double>(k_);
  if (erased.size() == 1) {
    // Helper-local partial products: chunk_i * dec[i] is computed where the
    // chunk lives; the target only XOR-accumulates k pre-scaled chunks. No
    // wire savings (a scaled chunk is chunk-sized), but the O(k) GF
    // multiply work spreads across k helper CPUs instead of one target.
    std::vector<RepairDag::NodeId> partials;
    partials.reserve(reads.size());
    for (std::size_t h = 0; h < helpers.size(); ++h) {
      partials.push_back(  ECF_ALLOC_OK("amortized: DAG built once per (PG, dead set), cached by callers")
          dag.add_combine(helpers[h], {reads[h]}, 1.0, 1.0 / kd));
    }
    const RepairDag::NodeId acc = dag.add_combine(
        RepairDag::kTargetLoc, partials, 1.0, (kd - 1.0) / (2.0 * kd));
    dag.add_write({acc});
  } else {
    const RepairDag::NodeId dec =
        dag.add_combine(RepairDag::kTargetLoc, reads,
                        static_cast<double>(erased.size()), 1.0);
    dag.add_write({dec});
  }
  return dag;
}

RepairPlan RsCode::repair_plan(const std::vector<std::size_t>& erased) const {
  return repair_dag(erased).to_repair_plan();
}

bool RsCode::verify_mds() const {
  // Enumerate all k-subsets of rows and test invertibility.
  std::vector<std::size_t> idx(k_);
  for (std::size_t i = 0; i < k_; ++i) idx[i] = i;
  while (true) {
    if (!rs_decode_matrix(gen_, idx)) return false;
    // next combination
    std::size_t i = k_;
    while (i > 0) {
      --i;
      if (idx[i] != i + n_ - k_) break;
    }
    if (idx[i] == i + n_ - k_) return true;  // done
    ++idx[i];
    for (std::size_t j = i + 1; j < k_; ++j) idx[j] = idx[j - 1] + 1;
  }
}

std::optional<gf::Matrix> rs_decode_matrix(
    const gf::Matrix& generator, const std::vector<std::size_t>& rows) {
  return generator.select_rows(rows).inverted();
}

}  // namespace ecf::ec
