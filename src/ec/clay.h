// Clay codes (Coupled-LAYer MSR codes), after Vajha et al., FAST '18, and
// the Ceph "clay" EC plugin.
//
// Clay(n, k, d) with k <= d <= n-1 is an MDS code with sub-packetization
// α = q^t where q = d-k+1 and t = ⌈n/q⌉. Each chunk is divided into α
// sub-chunks; a *single* chunk failure is repaired by reading only α/q
// sub-chunks from each of d helper chunks — a factor d/(q·k) of the data a
// conventional RS repair reads. When n is not a multiple of q the code is
// internally *shortened*: (n'-n) virtual zero data chunks are appended so
// n' = q·t.
//
// Construction sketch (all arithmetic in GF(2^8)):
//   * Internal nodes live on a q × t grid: node u ↦ (x, y) = (u % q, u / q).
//   * Sub-chunks are indexed by planes z ∈ [0, q^t), with digits
//     z_y = (z / q^y) % q.
//   * The *uncoupled* symbols U(u, z) of every plane z form a codeword of a
//     fixed [n', n'-m] systematic Cauchy MDS code (m = n-k).
//   * Stored (coupled) symbols C relate to U through a pairwise transform:
//     vertex (x, y, z) with x == z_y is a fixed point (C = U); otherwise it
//     pairs with (z_y, y, z') where z' = z with digit y set to x, and
//       C_a = U_a + γ·U_b,   C_b = γ·U_a + U_b,   det = 1 + γ² ≠ 0.
//   * Decoding e ≤ m erasures processes planes in increasing "intersection
//     score" IS(z) = |{erased (x̂,ŷ) : z_ŷ = x̂}|; at each level the partner
//     values needed are always available from lower levels or the same
//     level's MDS solve.
//   * Encoding is decoding with the erasure set equal to the parity chunks.
//
// The bandwidth-optimal single-failure repair is implemented for d = n-1
// (the configuration the paper evaluates: Clay(12,9,11)); for d < n-1 the
// data-plane falls back to a full decode while repair_plan() still reports
// the I/O Ceph's implementation would issue.
#pragma once

#include "ec/code.h"
#include "gf/matrix.h"

namespace ecf::ec {

class ClayCode : public ErasureCode {
 public:
  // Throws std::invalid_argument unless 0 < k < n <= 254, k <= d <= n-1,
  // and the internal field supports n' = q·t nodes.
  ClayCode(std::size_t n, std::size_t k, std::size_t d);

  std::string name() const override;
  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t d() const { return d_; }
  std::size_t q() const { return q_; }
  std::size_t t() const { return t_; }
  std::size_t alpha() const override { return alpha_; }

  void encode(std::vector<Buffer>& chunks) const override;
  [[nodiscard]] bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const override;

  // Single failure: d sub-chunk reads feeding one target-side solve.
  // Multi-failure: reads staged per intersection-score level (level s+1's
  // planes need level s's solved partners), so fetch_stages is the number
  // of non-empty IS levels — derived from the DAG, not hand-set.
  [[nodiscard]] RepairDag repair_dag(
      const std::vector<std::size_t>& erased) const override;
  // Helper choice exists only for single-erasure repair when d < n−1 (any
  // d of the n−1 survivors serve); multi-erasure decode needs every
  // survivor, so the preference is ignored there.
  [[nodiscard]] RepairDag repair_dag_ranked(
      const std::vector<std::size_t>& erased,
      const std::vector<std::size_t>& preference) const override;
  [[nodiscard]] RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const override;

  // --- bandwidth-optimal single-failure repair (d = n-1) ------------------
  // The plane indices (z values, ascending) helpers must supply to repair
  // `failed`. |result| = alpha()/q().
  std::vector<std::size_t> repair_planes(std::size_t failed) const;

  // Number of contiguous sub-chunk runs the repair reads from one helper
  // chunk stored as alpha() consecutive sub-chunks (used for IOPS modelling).
  std::size_t repair_subchunk_runs(std::size_t failed) const;

  // Repair chunk `failed` given, for each surviving real chunk (ascending
  // id), its sub-chunks at repair_planes(failed) (in that order). Every
  // sub-chunk buffer must have size chunk_size / alpha(). Requires d = n-1.
  Buffer repair_one(std::size_t failed,
                    const std::vector<std::vector<Buffer>>& helper_planes,
                    std::size_t chunk_size) const;

  // Fraction of total surviving data a single-failure repair reads,
  // relative to the k·chunk a conventional RS repair reads: d / (q·k).
  double repair_bandwidth_fraction() const {
    return static_cast<double>(d_) /
           (static_cast<double>(q_) * static_cast<double>(k_));
  }

 private:
  // Single-failure repair DAG over an explicit d-helper set (ascending).
  RepairDag single_repair_dag(std::size_t failed,
                              const std::vector<std::size_t>& helpers) const;

  std::size_t digit(std::size_t z, std::size_t y) const;
  std::size_t with_digit(std::size_t z, std::size_t y, std::size_t v) const;

  // Full decode over internal (possibly shortened) chunk vector.
  void decode_internal(std::vector<Buffer>& all,
                       const std::vector<std::size_t>& erased) const;

  std::size_t n_;      // real chunk count
  std::size_t k_;
  std::size_t d_;
  std::size_t q_;      // d - k + 1
  std::size_t t_;      // ⌈n/q⌉
  std::size_t nfull_;  // q·t (internal node count incl. virtual)
  std::size_t alpha_;  // q^t
  Byte gamma_;
  Byte det_;       // 1 + γ²
  Byte inv_det_;
  gf::Matrix gen_;  // [n' x (n'-m)] systematic Cauchy generator (plane code)
  std::vector<std::size_t> pow_q_;  // q^0 .. q^t
};

}  // namespace ecf::ec
