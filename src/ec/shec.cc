#include "ec/shec.h"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.h"
#include "util/hotpath.h"

namespace ecf::ec {

ShecCode::ShecCode(std::size_t k, std::size_t m, std::size_t c)
    : k_(k), m_(m), c_(c), n_(k + m) {
  if (k == 0 || m == 0 || c == 0) {
    throw std::invalid_argument("SHEC requires k, m, c > 0");
  }
  if (c > m || m > k) throw std::invalid_argument("SHEC requires c <= m <= k");
  if (n_ > 255) throw std::invalid_argument("SHEC over GF(256) requires n <= 255");
  l_ = util::ceil_div(k * c, m);

  // Generator: identity for data; parity p covers window(p) with Cauchy
  // coefficients (distinct per parity so overlapping windows stay
  // independent).
  gen_ = gf::Matrix(n_, k_);
  for (std::size_t i = 0; i < k_; ++i) gen_.at(i, i) = 1;
  for (std::size_t p = 0; p < m_; ++p) {
    const gf::Byte x = static_cast<gf::Byte>(k_ + p);
    for (const std::size_t d : parity_window(p)) {
      // 1/(x + y_d): Cauchy element; x in [k, k+m), y in [0, k) disjoint.
      gen_.at(k_ + p, d) = gf::inv(gf::add(x, static_cast<gf::Byte>(d)));
    }
  }
}

std::string ShecCode::name() const {
  return "SHEC(k=" + std::to_string(k_) + ",m=" + std::to_string(m_) +
         ",c=" + std::to_string(c_) + ")";
}

std::size_t ShecCode::window_start(std::size_t p) const {
  // Circular shingling: windows advance by k/m and wrap, so every data
  // chunk is covered by ~c parities and no chunk depends on a single
  // parity — required for the any-c recovery guarantee.
  return p * k_ / m_;
}

std::vector<std::size_t> ShecCode::parity_window(std::size_t p) const {
  // Contract check on the tested API surface; window construction runs at
  // plan-build frequency (repair plans are cached by callers).
  if (p >= m_) throw std::invalid_argument("SHEC: parity index out of range");  // ecf-analyze: allow(event-throw)
  std::vector<std::size_t> out;
  const std::size_t start = window_start(p);
  for (std::size_t i = 0; i < l_ && i < k_; ++i) {
    out.push_back((start + i) % k_);  ECF_ALLOC_OK("bounded: <= l window members, plan-build frequency");
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ShecCode::encode(std::vector<Buffer>& chunks) const {
  check_chunks(chunks);
  const std::size_t len = chunks[0].size();
  // All shingled parities in one batched pass over the data chunks.
  std::vector<const Byte*> in(k_);
  for (std::size_t i = 0; i < k_; ++i) in[i] = chunks[i].data();
  std::vector<std::size_t> rows(m_);
  std::vector<Byte*> out(m_);
  for (std::size_t p = k_; p < n_; ++p) {
    rows[p - k_] = p;
    out[p - k_] = chunks[p].data();
  }
  gen_.apply_rows(rows, in, out, len);
}

std::vector<std::size_t> ShecCode::pick_rows(
    const std::vector<std::size_t>& erased) const {
  // Greedy Gaussian elimination over survivor generator rows (same scheme
  // as the LRC): returns k independent rows or empty.
  std::vector<std::size_t> chosen;
  gf::Matrix basis(k_, k_);
  std::size_t rank = 0;
  for (std::size_t row = 0; row < n_ && rank < k_; ++row) {
    if (std::binary_search(erased.begin(), erased.end(), row)) continue;
    std::vector<Byte> v(k_);
    for (std::size_t col = 0; col < k_; ++col) v[col] = gen_.at(row, col);
    for (std::size_t r = 0; r < rank; ++r) {
      std::size_t pc = 0;
      while (pc < k_ && basis.at(r, pc) == 0) ++pc;
      if (pc < k_ && v[pc] != 0) {
        const Byte f = v[pc];
        for (std::size_t col = 0; col < k_; ++col) {
          v[col] = gf::add(v[col], gf::mul(f, basis.at(r, col)));
        }
      }
    }
    std::size_t pivot = 0;
    while (pivot < k_ && v[pivot] == 0) ++pivot;
    if (pivot == k_) continue;
    const Byte inv_p = gf::inv(v[pivot]);
    for (std::size_t col = 0; col < k_; ++col) {
      basis.at(rank, col) = gf::mul(v[col], inv_p);
    }
    chosen.push_back(row);  ECF_ALLOC_OK("bounded: <= k rows, plan-build frequency");
    ++rank;
  }
  if (rank < k_) return {};
  return chosen;
}

bool ShecCode::recoverable(const std::vector<std::size_t>& erased) const {
  return !pick_rows(erased).empty();
}

bool ShecCode::decode(std::vector<Buffer>& chunks,
                      const std::vector<std::size_t>& erased) const {
  check_chunks(chunks);
  check_erasures(*this, erased);
  const std::size_t len = chunks[0].size();
  const std::vector<std::size_t> rows = pick_rows(erased);
  if (rows.empty()) return false;
  const auto inv = gen_.select_rows(rows).inverted();
  if (!inv) return false;
  std::vector<Buffer> data(k_, Buffer(len));
  std::vector<const Byte*> in(k_);
  std::vector<Byte*> out(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = chunks[rows[i]].data();
    out[i] = data[i].data();
  }
  gf::matrix_apply(*inv, in, out, len);
  std::vector<const Byte*> data_in(k_);
  for (std::size_t i = 0; i < k_; ++i) data_in[i] = data[i].data();
  std::vector<Byte*> erased_out(erased.size());
  for (std::size_t i = 0; i < erased.size(); ++i) {
    erased_out[i] = chunks[erased[i]].data();
  }
  gen_.apply_rows(erased, data_in, erased_out, len);
  return true;
}

RepairPlan ShecCode::repair_plan(const std::vector<std::size_t>& erased) const {
  check_erasures(*this, erased);
  RepairPlan plan;
  if (erased.size() == 1 && erased[0] < k_) {
    // Single data-chunk loss: use the cheapest covering parity window.
    std::size_t best = m_;
    for (std::size_t p = 0; p < m_; ++p) {
      const auto w = parity_window(p);
      if (std::find(w.begin(), w.end(), erased[0]) != w.end()) {
        best = p;
        break;
      }
    }
    if (best < m_) {
      for (const std::size_t d : parity_window(best)) {
        if (d != erased[0]) plan.reads.push_back({d, 1.0, 1});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
      }
      plan.reads.push_back({k_ + best, 1.0, 1});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
      plan.decode_cost_factor = 0.6;
      plan.bandwidth_optimal = true;  // locality-optimal window repair
      return plan;
    }
  }
  if (erased.size() == 1 && erased[0] >= k_) {
    // Lost parity: re-encode from its window.
    for (const std::size_t d : parity_window(erased[0] - k_)) {
      plan.reads.push_back({d, 1.0, 1});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
    }
    plan.decode_cost_factor = 0.6;
    plan.bandwidth_optimal = true;
    return plan;
  }
  // Multi-failure: general solve from k independent survivors.
  for (const std::size_t r : pick_rows(erased)) {
    plan.reads.push_back({r, 1.0, 1});  ECF_ALLOC_OK("amortized: plan built once per (PG, dead set), cached by callers");
  }
  plan.decode_cost_factor = 1.0;
  return plan;
}

}  // namespace ecf::ec
