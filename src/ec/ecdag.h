// Repair DAGs: structured repair description, after OpenEC's ECDAG model.
//
// A RepairPlan is a flat read-set — enough to charge "fetch everything,
// then decode" — but it cannot express *where* partial results are
// computed or *when* each read becomes issuable. A RepairDag can:
//
//   * kRead nodes    — a (chunk, fraction, sub-chunk-run) read executed at
//                      the surviving chunk's location;
//   * kCombine nodes — a GF scale/XOR/solve step executed at a location
//                      (a helper chunk position, or the repair target);
//   * kWrite node    — the single sink: the reconstructed chunk(s) landing
//                      at the repair target.
//
// Edges are data dependencies (node `inputs`). Each node carries
// bytes-in/bytes-out (in chunk-fraction units: 1.0 = one full chunk) and a
// decode-cost weight (GF work per produced byte; 1.0 = a k-term RS decode
// pass). Read nodes use `inputs` as *control-only* stage gates: a read
// gated on a combine cannot issue before that combine finishes (the Clay
// multi-erasure decode fetches planes level by level), but the gate edge
// carries no bytes.
//
// Two consumers:
//   * to_repair_plan() lowers any DAG to the flat RepairPlan every
//     existing consumer understands — reads merged per chunk,
//     fetch_stages derived from the DAG's read-stage depth;
//   * the cluster's RecoveryManager (cluster/recovery.cc) can execute the
//     DAG stage by stage, running helper-local combines on the helper's
//     CPU and forwarding only the combined bytes across the fabric.
//
// validate() checks structural sanity: topological construction
// (acyclicity), a single kWrite sink that every other node feeds, and
// conservation of bytes through combines and the write.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ec/code.h"

namespace ecf::ec {

struct RepairDag {
  using NodeId = std::uint32_t;

  // Location sentinel for "the repair target" (the OSD conducting the
  // decode); every other location is a surviving chunk position.
  static constexpr std::size_t kTargetLoc = static_cast<std::size_t>(-1);

  enum class NodeKind : std::uint8_t { kRead, kCombine, kWrite };

  struct Node {
    NodeKind kind = NodeKind::kRead;
    // Execution site: chunk position for reads/helper combines, kTargetLoc
    // for target-side combines and the final write.
    std::size_t loc = kTargetLoc;
    // kRead only: which surviving chunk, what fraction of it, and how many
    // scattered sub-chunk runs per encoding unit the read touches. A
    // gated continuation read may carry 0 runs: it extends a scatter sweep
    // an earlier stage already opened (the per-unit run estimate is
    // charged once).
    std::size_t chunk = 0;
    double fraction = 0;
    std::size_t subchunk_ios = 1;
    // Chunk-fraction units (1.0 = one full chunk). Reads produce
    // `fraction`; combines consume the full output of each data input and
    // produce bytes_out; the write consumes and lands bytes_in.
    double bytes_in = 0;
    double bytes_out = 0;
    // GF work per produced byte; 1.0 = one k-term RS decode pass.
    double cost_weight = 0;
    // Data dependencies (producers). For kRead nodes these are
    // control-only stage gates and carry no bytes.
    std::vector<NodeId> inputs;
  };

  std::vector<Node> nodes;
  // Plan-level metadata preserved through the lowering.
  double decode_cost_factor = 1.0;
  bool bandwidth_optimal = false;

  // --- builders (inputs must reference already-added nodes) ---------------
  NodeId add_read(std::size_t chunk, double fraction,
                  std::size_t subchunk_ios = 1);
  // A read that may not issue before `after` finish (control-only edges).
  NodeId add_staged_read(std::size_t chunk, double fraction,
                         std::size_t subchunk_ios,
                         const std::vector<NodeId>& after);
  NodeId add_combine(std::size_t loc, const std::vector<NodeId>& inputs,
                     double bytes_out, double cost_weight);
  NodeId add_write(const std::vector<NodeId>& inputs);

  // --- validation ---------------------------------------------------------
  // Structural errors, empty when well-formed: topological input order
  // (which implies acyclicity), exactly one kWrite and it is the unique
  // sink, read fractions in (0, 1], and byte conservation at every combine
  // and at the write. An empty DAG (unrecoverable pattern) is an error.
  std::vector<std::string> validate() const;

  // --- structural queries -------------------------------------------------
  // Sequential fetch stages: longest chain of dependent *reads* (a read
  // gated on a combine of stage s reads at stage s+1). 1 for any DAG whose
  // reads are all issuable up front; >= 1 always.
  std::size_t fetch_stages() const;
  // Longest node path (nodes on the DAG's critical path).
  std::size_t depth() const;
  // Chunk-fraction units crossing locations (each producer counted once
  // per distinct consumer location; gate edges excluded) — the repair's
  // bytes on the wire per reconstructed chunk-size unit.
  double wire_fraction() const;
  // Chunk-fraction units entering the repair target — what helper-local
  // combining saves relative to wire_fraction() of the flat plan.
  double target_rx_fraction() const;
  // True when execution differs from fetch-all-then-decode: any
  // helper-local combine or any gated (staged) read.
  bool structured() const;
  // Per-node stage numbers (reads advance the stage, combines and the
  // write inherit the max of their inputs) — what a stage-by-stage
  // executor (cluster/recovery.cc) schedules from. Entry i is node i's
  // stage; read stages are >= 1.
  std::vector<std::size_t> node_stages() const;

  // --- lowering -----------------------------------------------------------
  // Flat plan: reads merged per chunk in first-appearance order (fractions
  // summed — sums within 1e-9 of a whole number of chunks snap exact, so
  // staged per-level reads lower back to the hand-built full-chunk plans
  // bit for bit), fetch_stages() derived, metadata copied.
  RepairPlan to_repair_plan() const;

  // The default flat wrap: every plan read feeds one target-side combine
  // (cost = the plan's decode_cost_factor, output = the reconstructed
  // chunks) feeding the write. Models a fetch_stages=1 repair; codes with
  // genuinely staged fetches override ErasureCode::repair_dag instead.
  static RepairDag from_plan(const RepairPlan& plan, std::size_t erased_count);

 private:
  // Per-node stage numbers (reads advance the stage, combines/writes
  // inherit the max of their inputs). out must have nodes.size() entries.
  void compute_stages(std::vector<std::size_t>& out) const;
};

}  // namespace ecf::ec
