// Reed-Solomon codes over GF(2^8).
//
// Two generator constructions, mirroring the Jerasure techniques Ceph
// exposes (`reed_sol_van`, `cauchy_orig`):
//
//   * kVandermonde — start from the (n x k) Vandermonde matrix on distinct
//     evaluation points and column-reduce to systematic form. The MDS
//     property of the result is verified exhaustively at construction time
//     (every k-subset of rows invertible) because the naive systematic
//     Vandermonde construction is *not* automatically MDS — a classic
//     pitfall in EC libraries.
//   * kCauchy — systematic [I ; C] with C an m x k Cauchy block, which is
//     provably MDS with no verification needed.
//
// Both support n <= 256 (field-size limit for 8-bit symbols).
#pragma once

#include <optional>

#include "ec/code.h"
#include "gf/matrix.h"

namespace ecf::ec {

enum class RsTechnique { kVandermonde, kCauchy };

class RsCode : public ErasureCode {
 public:
  // Throws std::invalid_argument for k == 0, n <= k, n > 255, or (for
  // Vandermonde) a generator that fails the MDS check.
  RsCode(std::size_t n, std::size_t k,
         RsTechnique technique = RsTechnique::kVandermonde);

  std::string name() const override;
  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }

  void encode(std::vector<Buffer>& chunks) const override;
  [[nodiscard]] bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const override;

  // Single failure: helper-local partial products (each helper scales its
  // chunk by its decode coefficient; the target only XOR-accumulates).
  // Multi-failure: flat fetch-all-then-decode. The flat plan is derived
  // from the DAG, so both views always agree.
  [[nodiscard]] RepairDag repair_dag(
      const std::vector<std::size_t>& erased) const override;
  // MDS: any k survivors decode, so the preference picks the helper set.
  [[nodiscard]] RepairDag repair_dag_ranked(
      const std::vector<std::size_t>& erased,
      const std::vector<std::size_t>& preference) const override;
  [[nodiscard]] RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const override;

  RsTechnique technique() const { return technique_; }

  // The full (n x k) systematic generator; row i produces chunk i.
  const gf::Matrix& generator() const { return gen_; }

  // Exhaustively check that every k-subset of generator rows is invertible
  // (the MDS property). O(C(n,k)) — fine for the n <= ~20 codes studied here.
  bool verify_mds() const;

 private:
  // Build the repair DAG over an explicit helper set (|helpers| == k,
  // ascending). Shared by repair_dag (first-k) and repair_dag_ranked.
  RepairDag build_repair_dag(const std::vector<std::size_t>& erased,
                             const std::vector<std::size_t>& helpers) const;

  std::size_t n_;
  std::size_t k_;
  RsTechnique technique_;
  gf::Matrix gen_;
};

// Solve for the data vector from any k known codeword symbols: returns the
// k x k inverse of the selected generator rows, or nullopt if singular.
// Shared with the Clay code, which uses an RS code per sub-chunk plane.
std::optional<gf::Matrix> rs_decode_matrix(const gf::Matrix& generator,
                                           const std::vector<std::size_t>& rows);

}  // namespace ecf::ec
