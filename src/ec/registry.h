// Codec registry: builds ErasureCode instances from Ceph-style EC profiles.
//
// Mirrors the plugin table in the paper's Table 1:
//   plugin=jerasure technique=reed_sol_van k=9 m=3
//   plugin=isa      technique=cauchy       k=9 m=3
//   plugin=clay     k=9 m=3 d=11
//   plugin=lrc      k=8 l=2 g=2            (mapping of Ceph's lrc plugin)
//   plugin=replication size=3
//
// Profiles arrive either as a util::Json object (the ECFault experiment
// profile's "ec" section) or as a flat key=value map.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "ec/code.h"
#include "util/json.h"

namespace ecf::ec {

// Throws std::invalid_argument on unknown plugin/technique or bad params.
std::unique_ptr<ErasureCode> make_code(
    const std::map<std::string, std::string>& profile);

// JSON form; keys as above, numbers may be JSON numbers.
std::unique_ptr<ErasureCode> make_code(const util::Json& profile);

// Registered plugin names, for diagnostics and profile validation.
std::vector<std::string> known_plugins();

}  // namespace ecf::ec
