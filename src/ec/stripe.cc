#include "ec/stripe.h"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.h"

namespace ecf::ec {

StripeLayout compute_stripe_layout(std::uint64_t object_size, std::size_t n,
                                   std::size_t k, std::uint64_t stripe_unit) {
  if (object_size == 0 || n == 0 || k == 0 || stripe_unit == 0 || n < k) {
    // Config-contract check, tested API surface; parameters are fixed at
    // cluster construction so this can only fire on the first call.
    throw std::invalid_argument("compute_stripe_layout: bad arguments");  // ecf-analyze: allow(event-throw)
  }
  StripeLayout layout;
  layout.object_size = util::Bytes(object_size);
  layout.stripe_unit = util::Bytes(stripe_unit);
  layout.k = k;
  layout.n = n;
  layout.units_per_chunk =
      util::ceil_div(object_size, static_cast<std::uint64_t>(k) * stripe_unit);
  layout.chunk_size = util::Bytes(layout.units_per_chunk * stripe_unit);
  layout.stored_total =
      util::Bytes(static_cast<std::uint64_t>(n) * layout.chunk_size);
  layout.padding_bytes =
      util::Bytes(static_cast<std::uint64_t>(k) * layout.chunk_size -
                  object_size);
  return layout;
}

std::vector<Buffer> split_object(const Buffer& object, std::size_t n,
                                 std::size_t k, std::uint64_t stripe_unit,
                                 std::size_t alpha) {
  const StripeLayout layout =
      compute_stripe_layout(object.size(), n, k, stripe_unit);
  // Sub-packetized codes need chunk sizes that are multiples of alpha; the
  // extra bytes are further zero padding.
  const std::uint64_t chunk_size =
      util::round_up(layout.chunk_size, static_cast<std::uint64_t>(alpha));
  std::vector<Buffer> chunks(n, Buffer(chunk_size, 0));
  // Stripe s, unit u -> chunk u, offset s·stripe_unit: Ceph's RAID-0 style
  // striping across the k data chunks.
  std::uint64_t pos = 0;
  std::uint64_t stripe = 0;
  while (pos < object.size()) {
    for (std::size_t u = 0; u < k && pos < object.size(); ++u) {
      const std::uint64_t take =
          std::min<std::uint64_t>(stripe_unit, object.size() - pos);
      std::copy(object.begin() + static_cast<std::ptrdiff_t>(pos),
                object.begin() + static_cast<std::ptrdiff_t>(pos + take),
                chunks[u].begin() + static_cast<std::ptrdiff_t>(stripe * stripe_unit));
      pos += take;
    }
    ++stripe;
  }
  return chunks;
}

Buffer reassemble_object(const std::vector<Buffer>& chunks, std::size_t k,
                         std::uint64_t object_size, std::uint64_t stripe_unit) {
  if (chunks.size() < k || k == 0 || stripe_unit == 0) {
    throw std::invalid_argument("reassemble_object: bad arguments");
  }
  Buffer object(object_size);
  std::uint64_t pos = 0;
  std::uint64_t stripe = 0;
  while (pos < object_size) {
    for (std::size_t u = 0; u < k && pos < object_size; ++u) {
      const std::uint64_t take =
          std::min<std::uint64_t>(stripe_unit, object_size - pos);
      const std::uint64_t off = stripe * stripe_unit;
      if (off + take > chunks[u].size()) {
        throw std::invalid_argument("reassemble_object: chunk too small");
      }
      std::copy(chunks[u].begin() + static_cast<std::ptrdiff_t>(off),
                chunks[u].begin() + static_cast<std::ptrdiff_t>(off + take),
                object.begin() + static_cast<std::ptrdiff_t>(pos));
      pos += take;
    }
    ++stripe;
  }
  return object;
}

}  // namespace ecf::ec
