// Erasure code interface.
//
// A code maps k equal-size data chunks to n total chunks (k data + m = n-k
// parity) such that any m chunk erasures can be repaired. Implementations:
//
//   RsCode          — classic Reed-Solomon (Vandermonde or Cauchy generator)
//   ClayCode        — Clay(n,k,d) MSR code: sub-packetization
//                     α = q^t (q = d-k+1, t = ⌈n/q⌉); bandwidth-optimal
//                     single-failure repair reading α/q sub-chunks from each
//                     of d helpers
//   LrcCode         — Azure-style locally repairable code (local XOR parities
//                     + global Cauchy parities)
//   ReplicationCode — n-way replication baseline (k = 1)
//
// Two layers of API:
//   * data-plane: encode() / decode() / repair_one() operate on real byte
//     buffers and are verified bit-exact by the test suite;
//   * planning: repair_plan() describes the I/O a repair performs (which
//     chunks are read, what fraction of each, how many distinct sub-chunk
//     I/Os) — this feeds the cluster simulator, which charges disk/NIC/CPU
//     time for exactly the work the real codec would do.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gf/gf256.h"

namespace ecf::ec {

using Byte = gf::Byte;
using Buffer = std::vector<Byte>;

// Describes the reads a repair performs. Produced by repair_plan() and
// consumed by the cluster simulator's RecoveryManager.
struct RepairPlan {
  struct Read {
    std::size_t chunk = 0;      // which surviving chunk is read
    double fraction = 1.0;      // fraction of the chunk's bytes read
    std::size_t subchunk_ios = 1;  // distinct contiguous regions read
  };
  std::vector<Read> reads;
  // Relative GF-arithmetic work per reconstructed byte (1.0 = one k-term
  // RS decode). Clay multi-plane decode costs more per byte.
  double decode_cost_factor = 1.0;
  // True when the plan is repair-bandwidth optimal (Clay single failure).
  bool bandwidth_optimal = false;
  // Sequential fetch stages the repair needs. 1 for codes that read
  // everything up front; the Clay multi-erasure decode consumes planes in
  // intersection-score order, where level s needs level s-1 results, so a
  // pipelined implementation fetches in |erasures| dependent stages.
  std::size_t fetch_stages = 1;

  // Total bytes read per byte of one reconstructed chunk.
  double read_fraction_total() const {
    double s = 0;
    for (const auto& r : reads) s += r.fraction;
    return s;
  }
  std::size_t total_subchunk_ios() const {
    std::size_t s = 0;
    for (const auto& r : reads) s += r.subchunk_ios;
    return s;
  }
};

struct RepairDag;

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  virtual std::string name() const = 0;
  virtual std::size_t n() const = 0;
  virtual std::size_t k() const = 0;
  std::size_t m() const { return n() - k(); }

  // Sub-packetization α: every chunk must be a multiple of α bytes and is
  // logically divided into α sub-chunks. 1 for scalar codes.
  virtual std::size_t alpha() const { return 1; }

  // Encode in place: chunks.size() == n(), all buffers equal size (a
  // multiple of alpha()), data in chunks[0..k-1]; parity written to
  // chunks[k..n-1]. Throws std::invalid_argument on malformed input.
  virtual void encode(std::vector<Buffer>& chunks) const = 0;

  // Reconstruct the chunks listed in `erased` (buffers must be sized; their
  // contents are overwritten) from the remaining chunks. Returns false when
  // the pattern is unrecoverable (|erased| > m, or non-MDS pattern for LRC).
  [[nodiscard]] virtual bool decode(
      std::vector<Buffer>& chunks,
      const std::vector<std::size_t>& erased) const = 0;

  // I/O plan for repairing `erased`. Default: read any k survivors fully.
  [[nodiscard]] virtual RepairPlan repair_plan(
      const std::vector<std::size_t>& erased) const;

  // Structured repair description for `erased` (see ec/ecdag.h). The
  // default wraps repair_plan() in a flat fetch-all-then-decode DAG;
  // codes with helper-local combines or staged fetches override this
  // (and derive repair_plan from it via RepairDag::to_repair_plan so the
  // two views can never drift).
  [[nodiscard]] virtual RepairDag repair_dag(
      const std::vector<std::size_t>& erased) const;

  // Like repair_dag(), but biased by a helper preference: `preference`
  // lists surviving chunk positions most-preferred first (it need not be
  // complete — unlisted survivors rank after listed ones in index order).
  // Codes whose repair admits helper choice (RS any-k-of-n, Clay
  // d-of-(n−1) when d < n−1, Hitchhiker/LRC multi-failure survivor picks)
  // override this to pick their helper subset in preference order; the
  // default ignores the preference and returns repair_dag(). The chosen
  // subset is canonicalized (ascending positions) so DAG structure depends
  // only on the chosen set, never on the preference's internal order.
  [[nodiscard]] virtual RepairDag repair_dag_ranked(
      const std::vector<std::size_t>& erased,
      const std::vector<std::size_t>& preference) const;

  // Theoretical storage amplification n/k (the value the paper shows the
  // real system exceeding).
  double theoretical_wa() const {
    return static_cast<double>(n()) / static_cast<double>(k());
  }

 protected:
  // Shared validation for encode/decode inputs.
  void check_chunks(const std::vector<Buffer>& chunks) const;
};

// Verifies an erasure list: sorted unique indices < n. Throws on misuse.
void check_erasures(const ErasureCode& code,
                    const std::vector<std::size_t>& erased);

// Pick up to `want` survivors (indices < n, not in `erased`) honoring a
// preference order: listed positions first, then remaining survivors in
// index order. Returned in the order picked (callers canonicalize by
// sorting when the set, not the order, matters). Shared by the
// repair_dag_ranked overrides.
std::vector<std::size_t> ranked_survivors(
    std::size_t n, const std::vector<std::size_t>& erased,
    const std::vector<std::size_t>& preference, std::size_t want);

// Convenience for tests/examples: erase (zero + forget) chunks and repair.
[[nodiscard]] bool erase_and_decode(const ErasureCode& code,
                                    std::vector<Buffer>& chunks,
                                    const std::vector<std::size_t>& erased);

}  // namespace ecf::ec
