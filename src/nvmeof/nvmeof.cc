#include "nvmeof/nvmeof.h"

#include <stdexcept>

namespace ecf::nvmeof {

Target::Subsystem* Target::find(const Nqn& nqn) {
  for (auto& s : subsystems_) {
    if (s.info.nqn == nqn) return &s;
  }
  return nullptr;
}

const Target::Subsystem* Target::find(const Nqn& nqn) const {
  for (const auto& s : subsystems_) {
    if (s.info.nqn == nqn) return &s;
  }
  return nullptr;
}

void Target::create_subsystem(const Nqn& nqn, std::uint64_t capacity_bytes,
                              sim::Disk* disk, double now) {
  if (find(nqn)) throw std::invalid_argument("duplicate NQN " + nqn);
  if (disk == nullptr) throw std::invalid_argument("null backing disk");
  Subsystem s;
  s.info.nqn = nqn;
  s.info.ns.capacity_bytes = capacity_bytes;
  s.disk = disk;
  subsystems_.push_back(s);
  admin_log_.push_back({now, "create", nqn});
}

void Target::connect(const Nqn& nqn, double now) {
  Subsystem* s = find(nqn);
  if (!s) throw std::invalid_argument("connect: unknown NQN " + nqn);
  s->info.connected = true;
  admin_log_.push_back({now, "connect", nqn});
}

void Target::remove_subsystem(const Nqn& nqn, double now) {
  Subsystem* s = find(nqn);
  if (!s) throw std::invalid_argument("remove: unknown NQN " + nqn);
  s->info.connected = false;
  s->disk = nullptr;  // device gone; namespace unbound
  admin_log_.push_back({now, "remove", nqn});
}

std::optional<sim::SimTime> Target::read(sim::Engine& eng, const Nqn& nqn,
                                         std::uint64_t bytes,
                                         std::uint64_t ios) {
  Subsystem* s = find(nqn);
  if (!s || !s->info.connected || !s->disk) return std::nullopt;
  return s->disk->read(eng, bytes, ios);
}

std::optional<sim::SimTime> Target::write(sim::Engine& eng, const Nqn& nqn,
                                          std::uint64_t bytes,
                                          std::uint64_t ios) {
  Subsystem* s = find(nqn);
  if (!s || !s->info.connected || !s->disk) return std::nullopt;
  return s->disk->write(eng, bytes, ios);
}

bool Target::is_connected(const Nqn& nqn) const {
  const Subsystem* s = find(nqn);
  return s && s->info.connected && s->disk;
}

std::vector<SubsystemInfo> Target::list() const {
  std::vector<SubsystemInfo> out;
  for (const auto& s : subsystems_) out.push_back(s.info);
  return out;
}

Nqn make_nqn(std::size_t host, std::size_t device) {
  return "nqn.2024-04.io.ecfault:host" + std::to_string(host) + ".nvme" +
         std::to_string(device);
}

}  // namespace ecf::nvmeof
