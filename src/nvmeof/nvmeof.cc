#include "nvmeof/nvmeof.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"
#include "util/hotpath.h"

namespace ecf::nvmeof {

namespace {

// Admin-log timestamps come from the simulation clock and must never run
// backwards; a violation means a caller passed a stale or defaulted time.
void append_log(std::vector<AdminLogEntry>& log, double now,
                const char* op, const Nqn& nqn) {
  if (!log.empty()) {
    ECF_CHECK_GE(now, log.back().time)
        << " admin log must be monotone (op=" << op << " nqn=" << nqn << ")";
  }
  log.push_back({now, op, nqn});  ECF_ALLOC_OK("admin-log accumulation: one entry per fabric admin op");
}

}  // namespace

bool valid_nqn(const Nqn& nqn) {
  // Shape: "nqn.<date>.<reversed-domain>:<identifier>", all parts
  // non-empty; e.g. "nqn.2024-04.io.ecfault:host3.nvme1".
  constexpr const char kPrefix[] = "nqn.";
  if (nqn.size() <= sizeof(kPrefix) - 1) return false;
  if (nqn.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const std::size_t colon = nqn.find(':');
  if (colon == Nqn::npos) return false;            // no identifier part
  if (colon == sizeof(kPrefix) - 1) return false;  // empty authority
  if (colon + 1 >= nqn.size()) return false;       // empty identifier
  return nqn.find(':', colon + 1) == Nqn::npos;    // single separator
}

Target::Subsystem* Target::find(const Nqn& nqn) {
  for (auto& s : subsystems_) {
    if (s.info.nqn == nqn) return &s;
  }
  return nullptr;
}

const Target::Subsystem* Target::find(const Nqn& nqn) const {
  for (const auto& s : subsystems_) {
    if (s.info.nqn == nqn) return &s;
  }
  return nullptr;
}

void Target::create_subsystem(const Nqn& nqn, std::uint64_t capacity_bytes,
                              sim::Disk* disk, double now) {
  if (!valid_nqn(nqn)) throw std::invalid_argument("malformed NQN " + nqn);
  if (find(nqn)) throw std::invalid_argument("duplicate NQN " + nqn);
  if (disk == nullptr) throw std::invalid_argument("null backing disk");
  Subsystem s;
  s.info.nqn = nqn;
  s.info.ns.capacity_bytes = capacity_bytes;
  s.disk = disk;
  subsystems_.push_back(s);
  append_log(admin_log_, now, "create", nqn);
}

void Target::connect(const Nqn& nqn, double now) {
  Subsystem* s = find(nqn);
  if (!s) throw std::invalid_argument("connect: unknown NQN " + nqn);
  s->info.connected = true;
  append_log(admin_log_, now, "connect", nqn);
}

void Target::remove_subsystem(const Nqn& nqn, double now) {
  const auto it = std::find_if(
      subsystems_.begin(), subsystems_.end(),
      [&nqn](const Subsystem& s) { return s.info.nqn == nqn; });
  if (it == subsystems_.end()) {
    // Admin-contract check: cold (once per device removal) and part of the
    // tested API surface.
    throw std::invalid_argument("remove: unknown NQN " + nqn);  // ecf-analyze: allow(event-throw)
  }
  // Erase rather than tombstone: a removed NQN is free for re-creation
  // (replacing a failed device re-provisions under the same name).
  subsystems_.erase(it);
  append_log(admin_log_, now, "remove", nqn);
}

std::optional<sim::SimTime> Target::read(sim::Engine& eng, const Nqn& nqn,
                                         std::uint64_t bytes,
                                         std::uint64_t ios) {
  Subsystem* s = find(nqn);
  if (!s || !s->info.connected || !s->disk) return std::nullopt;
  return s->disk->read(eng, bytes, ios);
}

std::optional<sim::SimTime> Target::write(sim::Engine& eng, const Nqn& nqn,
                                          std::uint64_t bytes,
                                          std::uint64_t ios) {
  Subsystem* s = find(nqn);
  if (!s || !s->info.connected || !s->disk) return std::nullopt;
  return s->disk->write(eng, bytes, ios);
}

bool Target::is_connected(const Nqn& nqn) const {
  const Subsystem* s = find(nqn);
  return s && s->info.connected && s->disk;
}

std::vector<SubsystemInfo> Target::list() const {
  std::vector<SubsystemInfo> out;
  for (const auto& s : subsystems_) out.push_back(s.info);
  return out;
}

Nqn make_nqn(std::size_t host, std::size_t device) {
  return "nqn.2024-04.io.ecfault:host" + std::to_string(host) + ".nvme" +
         std::to_string(device);
}

}  // namespace ecf::nvmeof
