#include "nvmeof/qpair.h"

#include <algorithm>

#include "util/check.h"

namespace ecf::nvmeof {

QueuePair::QueuePair(int id, int depth) : id_(id), depth_(depth) {
  ECF_CHECK_GE(depth, 1) << " qpair depth";
  slot_free_.assign(static_cast<std::size_t>(depth), 0.0);
  // Buckets 0..depth inclusive; the last bucket catches "submitted at full
  // depth" (only reachable when the bound is not enforced).
  depth_hist_.assign(static_cast<std::size_t>(depth) + 1, 0);
}

int QueuePair::in_flight(sim::SimTime now) const {
  int n = 0;
  for (const sim::SimTime t : slot_free_) {
    if (t > now) ++n;
  }
  return n;
}

sim::SimTime QueuePair::earliest_free(sim::SimTime now) const {
  const auto it = std::min_element(slot_free_.begin(), slot_free_.end());
  return std::max(now, *it);
}

QueuePair::Slot QueuePair::submit(sim::SimTime now, bool enforce) {
  ++submitted_;
  Slot out;
  out.depth_at_submit = in_flight(now);
  const std::size_t bucket =
      std::min(static_cast<std::size_t>(out.depth_at_submit),
               depth_hist_.size() - 1);
  ++depth_hist_[bucket];

  // Lowest-index free (or earliest-freeing) slot keeps ties deterministic.
  const auto it = std::min_element(slot_free_.begin(), slot_free_.end());
  out.index = static_cast<std::size_t>(it - slot_free_.begin());
  out.start = enforce ? std::max(now, *it) : now;
  queued_seconds_ += out.start - now;
  return out;
}

void QueuePair::commit(const Slot& slot, sim::SimTime complete) {
  ECF_CHECK_LT(slot.index, slot_free_.size()) << " qpair slot index";
  slot_free_[slot.index] = std::max(slot_free_[slot.index], complete);
}

}  // namespace ecf::nvmeof
