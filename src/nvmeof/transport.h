// NVMe-oF transport cost model: per-hop latency, bandwidth sharing,
// capsule/PDU overhead, and the network-level fault levers.
//
// Every initiator host owns one fabric Link (its port onto the fabric).
// All of that host's connections share the link, so a bandwidth cap or
// latency injection on the link degrades every path through it — the
// "dirty network" scenario family. The link carries two FifoServers (tx
// for request capsules, rx for response data) so serialization contends
// the way a real duplex port does, plus the mutable fault state the
// ECFault levers flip at runtime: extra latency/jitter, a bandwidth cap,
// a deterministic packet-loss rate, and down windows (flap/partition).
//
// Transport time is evaluated synchronously at submission (busy-until
// semantics, like sim::resources): with the ideal default parameters every
// component is exactly zero and the caller can skip the model entirely.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "sim/hardware_profiles.h"
#include "sim/resources.h"
#include "util/rng.h"
#include "util/units.h"

namespace ecf::nvmeof {

// One host's port onto the fabric, shared by its connections.
struct Link {
  // Injected fault state (ECFault network levers).
  util::SimSec extra_latency_s;   // added per hop, both directions
  util::SimSec jitter_s;          // uniform [0, jitter_s) per direction
  util::Rate bw_cap_bytes_per_s;  // 0 = no cap
  double loss_rate = 0;           // expected command losses per command
  sim::SimTime down_until = 0;    // link unusable before this instant

  // Serialization servers (bandwidth sharing across the host's paths).
  sim::FifoServer tx;  // initiator -> target (capsules, write data)
  sim::FifoServer rx;  // target -> initiator (read data, completions)

  // Deterministic loss accumulator: command i is "lost" when the running
  // sum of loss_rate crosses an integer — an evenly-spaced loss pattern
  // that keeps campaigns replayable (no RNG on the loss path).
  double loss_accum = 0;

  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;

  bool down_at(sim::SimTime t) const { return t < down_until; }
};

class Transport {
 public:
  Transport(sim::FabricParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  const sim::FabricParams& params() const { return params_; }

  // True when no transport component can charge time on this link right
  // now — the bit-identical fast path for the default ideal fabric.
  bool inert(const Link& link, sim::SimTime now) const {
    return !params_.active() && link.extra_latency_s == 0 &&
           link.jitter_s == 0 && link.bw_cap_bytes_per_s == 0 &&
           link.loss_rate == 0 && !link.down_at(now);
  }

  struct HopResult {
    sim::SimTime arrive = 0;  // payload fully delivered
    double wait_s = 0;        // latency + serialization + stall time spent
    std::uint32_t retries = 0;  // lost-command retransmissions
  };

  // Move `payload_bytes` across `link` starting no earlier than `depart`.
  // `to_target` selects the tx (request) or rx (response) server. Framing
  // overhead (capsule / PDU headers) is added here; a down window stalls
  // the transfer to link.down_until with one retransmission per
  // retry_timeout elapsed; packet loss adds whole-command retransmission
  // delays via the deterministic accumulator.
  HopResult transfer(sim::Engine& eng, Link& link, bool to_target,
                     sim::SimTime depart, std::uint64_t payload_bytes);

 private:
  double hop_latency(const Link& link);

  sim::FabricParams params_;
  util::Rng rng_;  // jitter only; never drawn on the inert path
};

}  // namespace ecf::nvmeof
