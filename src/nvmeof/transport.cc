#include "nvmeof/transport.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"

namespace ecf::nvmeof {

double Transport::hop_latency(const Link& link) {
  double lat = params_.hop_latency_s + link.extra_latency_s;
  if (link.jitter_s > 0) lat += link.jitter_s * rng_.uniform01();
  return lat;
}

Transport::HopResult Transport::transfer(sim::Engine& eng, Link& link,
                                         bool to_target, sim::SimTime depart,
                                         std::uint64_t payload_bytes) {
  HopResult out;

  // Down window: the command stalls until the link is back, paying one
  // retransmission per elapsed retry timeout (the host keeps resending
  // until a path exists).
  sim::SimTime t = depart;
  if (link.down_at(t)) {
    const double stall = link.down_until - t;
    if (params_.retry_timeout_s > 0) {
      out.retries += static_cast<std::uint32_t>(
          std::ceil(stall / params_.retry_timeout_s));
    } else {
      out.retries += 1;
    }
    t = link.down_until;
  }

  // Deterministic packet loss: each loss costs a full retransmission
  // timeout before the transfer goes through.
  if (link.loss_rate > 0) {
    link.loss_accum += link.loss_rate;
    while (link.loss_accum >= 1.0) {
      link.loss_accum -= 1.0;
      ++out.retries;
      t += params_.retry_timeout_s;
    }
  }

  // Framing overhead: requests carry the command capsule; responses split
  // data into PDUs, each with a header.
  std::uint64_t wire_bytes = payload_bytes;
  if (to_target) {
    wire_bytes += params_.capsule_bytes;
  } else if (params_.pdu_header_bytes > 0) {
    const std::uint64_t pdus =
        params_.max_data_pdu_bytes > 0
            ? std::max<std::uint64_t>(
                  1, util::ceil_div(payload_bytes, params_.max_data_pdu_bytes))
            : 1;
    wire_bytes += pdus * params_.pdu_header_bytes;
  }

  // Serialization: the effective rate is the tighter of the transport's
  // base bandwidth and the injected cap; 0 everywhere means no
  // serialization cost (infinite bandwidth).
  double bw = params_.bw_bytes_per_s;
  if (link.bw_cap_bytes_per_s > 0) {
    bw = bw > 0 ? std::min(bw, link.bw_cap_bytes_per_s.count())
                : link.bw_cap_bytes_per_s.count();
  }
  sim::SimTime sent = t;
  if (bw > 0) {
    sim::FifoServer& server = to_target ? link.tx : link.rx;
    sent = server.reserve_at(eng, t, static_cast<double>(wire_bytes) / bw);
  }

  // Propagation after the last byte leaves the port.
  out.arrive = sent + hop_latency(link);
  out.wait_s = out.arrive - depart;
  if (to_target) {
    link.bytes_tx += wire_bytes;
  } else {
    link.bytes_rx += wire_bytes;
  }
  return out;
}

}  // namespace ecf::nvmeof
