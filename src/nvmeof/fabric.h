// The NVMe-oF fabric: initiator↔target connections, queue pairs, and the
// keep-alive/reconnect state machine.
//
// One Fabric instance models the whole experiment's storage network. Each
// host registers a Link (its fabric port, see transport.h); each
// provisioned namespace gets a Connection from its initiator host to the
// target, carrying one admin queue pair plus N I/O queue pairs. All block
// I/O the cluster issues flows through Connection::read/write, which
// charge, in order: qpair backpressure, the request capsule over the
// shared link, the backing sim::Disk (starting at capsule arrival), and
// the response transfer — returning both the completion time and how much
// of it was transport (not disk), so experiment logs can attribute
// recovery time to the network.
//
// Connection health follows the NVMe-oF host model:
//
//           keep-alive misses (KATO)        backoff attempt, link up
//   CONNECTED ------------------> TIMED_OUT/RECONNECTING ----> CONNECTED
//                                     |  elapsed > ctrl_loss_tmo
//                                     v
//                                  FAILED  (device vanishes; EIO upward)
//
// The machine is event-driven: timers are armed only when a down window
// opens (an idle healthy fabric schedules nothing, so default runs keep
// their event streams — and results — bit-identical to pre-fabric builds).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nvmeof/nvmeof.h"
#include "nvmeof/qpair.h"
#include "nvmeof/transport.h"
#include "util/thread_annotations.h"

#include <mutex>

namespace ecf::nvmeof {

using ConnectionId = std::int32_t;
inline constexpr ConnectionId kNoConnection = -1;

enum class ConnState { kConnected, kTimedOut, kReconnecting, kFailed };
const char* to_string(ConnState s);

// Read-only snapshot of one host link's live load, for congestion-aware
// placement decisions (the cluster's load-aware helper selection). All
// fields derive from state the fabric already tracks; taking a view never
// mutates anything or schedules events.
struct FabricLoadView {
  double tx_backlog_s = 0;   // queued seconds on the host's tx server
  double rx_backlog_s = 0;   // queued seconds on the host's rx server
  std::uint64_t bytes_carried = 0;  // cumulative payload over the link
  int in_flight = 0;         // outstanding commands across the host's
                             // I/O queue pairs
};

struct ConnectionStats {
  std::uint64_t commands = 0;
  std::uint64_t retries = 0;          // retransmitted commands (loss, down)
  std::uint64_t keepalives = 0;       // admin-queue keep-alives sent
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t reconnects = 0;       // successful re-establishments
  std::uint64_t bytes_read = 0;       // payload bytes moved target->host
  std::uint64_t bytes_written = 0;    // payload bytes moved host->target
  double transport_wait_s = 0;        // non-disk time across all commands
  double backpressure_wait_s = 0;     // subset: waiting for a qpair slot
};

class Fabric {
 public:
  // Events worth a log line (state transitions, reconnects); wired by the
  // cluster into its log sink so they reach the merged timeline. Cold
  // path — fires on state transitions, not per event, so std::function's
  // copyability matters more than its allocation.
  using EventFn =
      std::function<void(ConnectionId, const std::string& message)>;  // ecf-analyze: allow(std-function)
  // Fired when a connection exhausts ctrl_loss_tmo and goes FAILED — the
  // initiator-side device vanishes (the cluster treats it like a yanked
  // subsystem). Cold path, as above.
  using FailedFn = std::function<void(ConnectionId)>;  // ecf-analyze: allow(std-function)

  Fabric(sim::Engine* engine, sim::FabricParams params, std::uint64_t seed);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const sim::FabricParams& params() const { return transport_.params(); }
  void set_on_event(EventFn fn) { on_event_ = std::move(fn); }
  void set_on_failed(FailedFn fn) { on_failed_ = std::move(fn); }

  // --- topology -------------------------------------------------------------
  // Register a host's fabric port; returns its index (dense, in call order).
  int add_host(std::string name);
  int num_hosts() const { return static_cast<int>(links_.size()); }

  // Establish initiator_host -> target path for `nqn`, backed by `disk`.
  // Queue pairs (admin + io_qpairs) are created per FabricParams.
  ConnectionId connect(int initiator_host, const Nqn& nqn, sim::Disk* disk,
                       sim::SimTime now);
  // Tear the path down (subsystem removed / device failed). In-flight
  // semantics match a yanked device: the backing disk object survives, so
  // already-issued commands still run out their reservations.
  void disconnect(ConnectionId id, sim::SimTime now);

  // --- data path ------------------------------------------------------------
  struct IoResult {
    sim::SimTime complete = 0;
    double transport_wait_s = 0;  // qpair + request + response + stalls
    std::uint32_t retries = 0;
  };
  // nullopt = EIO: the connection was torn down (disconnect) or went
  // FAILED. While merely TIMED_OUT/RECONNECTING, commands stall on the
  // down window instead of failing (the NVMe host freezes I/O until
  // ctrl_loss_tmo expires).
  std::optional<IoResult> read(ConnectionId id, std::uint64_t bytes,
                               std::uint64_t ios, sim::SimTime extra_disk_s);
  std::optional<IoResult> write(ConnectionId id, std::uint64_t bytes,
                                std::uint64_t ios, sim::SimTime extra_disk_s);

  // --- network fault levers (per host link) ----------------------------------
  void set_link_latency(int host, double latency_s, double jitter_s);
  void set_link_bandwidth_cap(int host, double bytes_per_s);  // 0 = uncapped
  void set_packet_loss(int host, double rate);
  // Open (or extend) a down window on the host's link. Arms the keep-alive
  // machinery on every connection using the link: windows shorter than the
  // keep-alive interval only stall commands; longer ones drive the
  // TIMED_OUT -> RECONNECTING -> CONNECTED/FAILED transition.
  void set_link_down(int host, double down_for_s);
  void restore_link(int host);  // close the window now

  // --- introspection ---------------------------------------------------------
  ConnState state(ConnectionId id) const;
  const ConnectionStats& stats(ConnectionId id) const;
  const Link& link(int host) const;
  int connection_in_flight(ConnectionId id) const;  // across I/O qpairs
  // Live congestion snapshot of a host's link at `now` (see FabricLoadView).
  FabricLoadView load_view(int host, sim::SimTime now) const;
  // Aggregated I/O-qpair depth histogram for a connection.
  std::vector<std::uint64_t> depth_histogram(ConnectionId id) const;
  struct Totals {
    std::uint64_t commands = 0;
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
    double transport_wait_s = 0;
  };
  Totals totals() const;

 private:
  struct Connection {
    int host = -1;
    Nqn nqn;
    sim::Disk* disk = nullptr;
    ConnState state = ConnState::kConnected;
    bool open = false;              // false after disconnect()
    bool ka_armed = false;          // a keep-alive check event is pending
    sim::SimTime timed_out_at = 0;  // when keep-alive declared the loss
    double next_backoff_s = 0;
    std::vector<QueuePair> io_qpairs;
    QueuePair admin;
    ConnectionStats stats;

    Connection(const sim::FabricParams& p, int host_idx, Nqn name,
               sim::Disk* d);
  };

  std::optional<IoResult> submit(ConnectionId id, bool is_read,
                                 std::uint64_t bytes, std::uint64_t ios,
                                 sim::SimTime extra_disk_s);
  void arm_keepalive(ConnectionId id);
  void keepalive_fire(ConnectionId id);
  void reconnect_attempt(ConnectionId id);
  void emit(ConnectionId id, const std::string& message);

  sim::Engine* engine_;
  Transport transport_;
  std::vector<std::string> host_names_;
  std::vector<Link> links_;
  std::vector<Connection> connections_;
  EventFn on_event_;
  FailedFn on_failed_;
};

// Process-wide fabric telemetry, aggregated across every Fabric instance —
// campaigns run variants on a worker pool, so concurrently-running
// simulations flush here from different threads. Flushes happen once per
// Fabric lifetime (destructor), never on the per-command path.
class FabricTelemetry {
 public:
  struct Snapshot {
    std::uint64_t fabrics = 0;
    std::uint64_t connections = 0;
    std::uint64_t commands = 0;
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
  };

  void record_fabric(const Fabric::Totals& totals, std::uint64_t connections)
      ECF_EXCLUDES(mu_);
  Snapshot snapshot() const ECF_EXCLUDES(mu_);
  void reset() ECF_EXCLUDES(mu_);

 private:
  mutable std::mutex mu_;
  std::uint64_t fabrics_ ECF_GUARDED_BY(mu_) = 0;
  std::uint64_t connections_ ECF_GUARDED_BY(mu_) = 0;
  std::uint64_t commands_ ECF_GUARDED_BY(mu_) = 0;
  std::uint64_t retries_ ECF_GUARDED_BY(mu_) = 0;
  std::uint64_t reconnects_ ECF_GUARDED_BY(mu_) = 0;
};

FabricTelemetry& fabric_telemetry();

}  // namespace ecf::nvmeof
