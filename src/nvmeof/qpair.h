// NVMe-oF queue pairs: bounded submission queues with in-flight accounting.
//
// A connection carries one admin queue pair plus N I/O queue pairs. Each
// qpair admits at most `depth` outstanding commands; a command submitted
// while all slots are busy waits for the earliest completion (the host
// blocks on a free SQ entry — the fabric-level backpressure the paper's
// transport-queueing observations hinge on). The model is a deterministic
// k-server queue evaluated synchronously: submit() returns the time the
// command may start, commit() records when its slot frees.
//
// Depth histograms are always recorded (they are pure accounting); whether
// the bound actually delays commands is the caller's choice
// (sim::FabricParams::enforce_qpair_depth), so the default ideal fabric
// stays timing-inert.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"

namespace ecf::nvmeof {

class QueuePair {
 public:
  // `depth` must be >= 1. `id` is the queue id (0 = admin by convention).
  QueuePair(int id, int depth);

  struct Slot {
    std::size_t index = 0;       // slot to pass to commit()
    sim::SimTime start = 0;      // earliest start honoring the depth bound
    int depth_at_submit = 0;     // outstanding commands seen at submission
  };

  // Admit a command at time `now`. When `enforce` is set and all slots are
  // outstanding, start is pushed to the earliest slot-free time; otherwise
  // start == now and the bound is accounting-only.
  Slot submit(sim::SimTime now, bool enforce);

  // Record the command's completion time into its slot.
  void commit(const Slot& slot, sim::SimTime complete);

  int id() const { return id_; }
  int depth() const { return depth_; }
  std::uint64_t submitted() const { return submitted_; }
  // Seconds commands spent waiting for a free slot (backpressure wait).
  double queued_seconds() const { return queued_seconds_; }
  // Earliest instant a new command could start (min over slot-free times).
  sim::SimTime earliest_free(sim::SimTime now) const;
  // Outstanding commands at `now`.
  int in_flight(sim::SimTime now) const;
  // histogram[d] = submissions that found d commands outstanding
  // (d saturates at the last bucket).
  const std::vector<std::uint64_t>& depth_histogram() const {
    return depth_hist_;
  }

 private:
  int id_;
  int depth_;
  std::vector<sim::SimTime> slot_free_;  // completion time per slot
  std::vector<std::uint64_t> depth_hist_;
  std::uint64_t submitted_ = 0;
  double queued_seconds_ = 0;
};

}  // namespace ecf::nvmeof
