#include "nvmeof/fabric.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/check.h"

namespace ecf::nvmeof {

const char* to_string(ConnState s) {
  switch (s) {
    case ConnState::kConnected:
      return "CONNECTED";
    case ConnState::kTimedOut:
      return "TIMED_OUT";
    case ConnState::kReconnecting:
      return "RECONNECTING";
    case ConnState::kFailed:
      return "FAILED";
  }
  return "?";
}

Fabric::Connection::Connection(const sim::FabricParams& p, int host_idx,
                               Nqn name, sim::Disk* d)
    : host(host_idx),
      nqn(std::move(name)),
      disk(d),
      open(true),
      next_backoff_s(p.reconnect_backoff_s),
      admin(0, std::max(1, p.qpair_depth)) {
  const int n = std::max(1, p.io_qpairs);
  const int depth = std::max(1, p.qpair_depth);
  io_qpairs.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) io_qpairs.emplace_back(q + 1, depth);
}

Fabric::Fabric(sim::Engine* engine, sim::FabricParams params,
               std::uint64_t seed)
    : engine_(engine), transport_(params, seed) {
  ECF_CHECK(engine != nullptr) << " fabric needs an engine";
}

Fabric::~Fabric() {
  fabric_telemetry().record_fabric(totals(), connections_.size());
}

int Fabric::add_host(std::string name) {
  host_names_.push_back(std::move(name));
  links_.emplace_back();
  return static_cast<int>(links_.size()) - 1;
}

ConnectionId Fabric::connect(int initiator_host, const Nqn& nqn,
                             sim::Disk* disk, sim::SimTime now) {
  ECF_CHECK_GE(initiator_host, 0) << " fabric host";
  ECF_CHECK_LT(initiator_host, static_cast<int>(links_.size()))
      << " fabric host";
  ECF_CHECK(disk != nullptr) << " fabric connect needs a backing disk";
  connections_.emplace_back(transport_.params(), initiator_host, nqn, disk);
  const ConnectionId id = static_cast<ConnectionId>(connections_.size()) - 1;
  (void)now;
  return id;
}

void Fabric::disconnect(ConnectionId id, sim::SimTime now) {
  ECF_CHECK_GE(id, 0) << " fabric connection";
  ECF_CHECK_LT(id, static_cast<ConnectionId>(connections_.size()))
      << " fabric connection";
  Connection& c = connections_[static_cast<std::size_t>(id)];
  if (!c.open) return;
  c.open = false;
  c.disk = nullptr;
  (void)now;
}

std::optional<Fabric::IoResult> Fabric::read(ConnectionId id,
                                             std::uint64_t bytes,
                                             std::uint64_t ios,
                                             sim::SimTime extra_disk_s) {
  return submit(id, /*is_read=*/true, bytes, ios, extra_disk_s);
}

std::optional<Fabric::IoResult> Fabric::write(ConnectionId id,
                                              std::uint64_t bytes,
                                              std::uint64_t ios,
                                              sim::SimTime extra_disk_s) {
  return submit(id, /*is_read=*/false, bytes, ios, extra_disk_s);
}

std::optional<Fabric::IoResult> Fabric::submit(ConnectionId id, bool is_read,
                                               std::uint64_t bytes,
                                               std::uint64_t ios,
                                               sim::SimTime extra_disk_s) {
  ECF_CHECK_GE(id, 0) << " fabric connection";
  ECF_CHECK_LT(id, static_cast<ConnectionId>(connections_.size()))
      << " fabric connection";
  Connection& c = connections_[static_cast<std::size_t>(id)];
  if (!c.open || c.state == ConnState::kFailed || c.disk == nullptr) {
    return std::nullopt;  // EIO: device is gone from the initiator
  }

  sim::Engine& eng = *engine_;
  const sim::SimTime now = eng.now();
  Link& link = links_[static_cast<std::size_t>(c.host)];
  ConnectionStats& st = c.stats;
  ++st.commands;
  if (is_read) {
    st.bytes_read += bytes;
  } else {
    st.bytes_written += bytes;
  }

  // Round-robin command distribution over the I/O queue pairs.
  QueuePair& qp =
      c.io_qpairs[(st.commands - 1) % c.io_qpairs.size()];

  // Ideal fabric, healthy link: pure accounting, and the disk sees exactly
  // the call it would have seen without a fabric (bit-identical results).
  if (transport_.inert(link, now)) {
    const sim::SimTime complete =
        is_read ? c.disk->read(eng, bytes, ios, extra_disk_s)
                : c.disk->write(eng, bytes, ios, extra_disk_s);
    const QueuePair::Slot slot = qp.submit(now, /*enforce=*/false);
    qp.commit(slot, complete);
    return IoResult{complete, 0.0, 0};
  }

  const bool enforce = transport_.params().enforce_qpair_depth;
  const QueuePair::Slot slot = qp.submit(now, enforce);
  st.backpressure_wait_s += slot.start - now;

  // Request capsule to the target (write commands carry the data inline).
  const Transport::HopResult req = transport_.transfer(
      eng, link, /*to_target=*/true, slot.start, is_read ? 0 : bytes);
  // Device executes once the command has fully arrived.
  const sim::SimTime disk_start = req.arrive;
  const sim::SimTime disk_done =
      is_read ? c.disk->read_at(eng, disk_start, bytes, ios, extra_disk_s)
              : c.disk->write_at(eng, disk_start, bytes, ios, extra_disk_s);
  // Response back to the host (read data / write completion).
  const Transport::HopResult resp = transport_.transfer(
      eng, link, /*to_target=*/false, disk_done, is_read ? bytes : 0);
  qp.commit(slot, resp.arrive);

  IoResult out;
  out.complete = resp.arrive;
  out.retries = req.retries + resp.retries;
  // Everything that is not device service time is transport time.
  out.transport_wait_s = (resp.arrive - now) - (disk_done - disk_start);
  st.retries += out.retries;
  st.transport_wait_s += out.transport_wait_s;
  return out;
}

void Fabric::set_link_latency(int host, double latency_s, double jitter_s) {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  links_[static_cast<std::size_t>(host)].extra_latency_s =
      util::SimSec(latency_s);
  links_[static_cast<std::size_t>(host)].jitter_s = util::SimSec(jitter_s);
}

void Fabric::set_link_bandwidth_cap(int host, double bytes_per_s) {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  links_[static_cast<std::size_t>(host)].bw_cap_bytes_per_s =
      util::Rate(bytes_per_s);
}

void Fabric::set_packet_loss(int host, double rate) {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  ECF_CHECK_GE(rate, 0.0) << " loss rate";
  links_[static_cast<std::size_t>(host)].loss_rate = rate;
}

void Fabric::set_link_down(int host, double down_for_s) {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  ECF_CHECK_GE(down_for_s, 0.0) << " down window";
  const sim::SimTime now = engine_->now();
  Link& link = links_[static_cast<std::size_t>(host)];
  link.down_until = std::max(link.down_until, now + down_for_s);
  // Arm the keep-alive check on every connection using this link: if the
  // window outlives the keep-alive interval the connection times out and
  // enters the reconnect machine.
  for (ConnectionId id = 0;
       id < static_cast<ConnectionId>(connections_.size()); ++id) {
    const Connection& c = connections_[static_cast<std::size_t>(id)];
    if (c.host == host && c.open && c.state == ConnState::kConnected &&
        !c.ka_armed) {
      arm_keepalive(id);
    }
  }
}

void Fabric::restore_link(int host) {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  Link& link = links_[static_cast<std::size_t>(host)];
  link.down_until = std::min(link.down_until, engine_->now());
}

void Fabric::arm_keepalive(ConnectionId id) {
  Connection& c = connections_[static_cast<std::size_t>(id)];
  c.ka_armed = true;
  engine_->schedule(transport_.params().keepalive_interval_s,
                    [this, id] { keepalive_fire(id); },
                    sim::EventTag::kKeepAlive);
}

void Fabric::keepalive_fire(ConnectionId id) {
  Connection& c = connections_[static_cast<std::size_t>(id)];
  c.ka_armed = false;
  if (!c.open || c.state != ConnState::kConnected) return;
  ++c.stats.keepalives;
  const sim::SimTime now = engine_->now();
  const Link& link = links_[static_cast<std::size_t>(c.host)];
  if (!link.down_at(now)) {
    // Keep-alive answered: the down window closed before KATO expired.
    return;
  }
  // KATO expired with the link still dark: declare the controller lost and
  // start reconnecting with exponential backoff.
  c.state = ConnState::kTimedOut;
  c.timed_out_at = now;
  c.next_backoff_s = transport_.params().reconnect_backoff_s;
  emit(id, "keep-alive timeout, controller lost; state=TIMED_OUT");
  c.state = ConnState::kReconnecting;
  engine_->schedule(c.next_backoff_s, [this, id] { reconnect_attempt(id); },
                    sim::EventTag::kReconnect);
}

void Fabric::reconnect_attempt(ConnectionId id) {
  Connection& c = connections_[static_cast<std::size_t>(id)];
  if (!c.open || c.state != ConnState::kReconnecting) return;
  ++c.stats.reconnect_attempts;
  const sim::SimTime now = engine_->now();
  const sim::FabricParams& p = transport_.params();
  const Link& link = links_[static_cast<std::size_t>(c.host)];
  if (!link.down_at(now)) {
    c.state = ConnState::kConnected;
    ++c.stats.reconnects;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "reconnected after %.3fs (%llu attempts); state=CONNECTED",
                  now - c.timed_out_at,
                  static_cast<unsigned long long>(c.stats.reconnect_attempts));
    emit(id, buf);
    c.next_backoff_s = p.reconnect_backoff_s;
    return;
  }
  if (now - c.timed_out_at >= p.ctrl_loss_timeout_s) {
    c.state = ConnState::kFailed;
    emit(id, "controller loss timeout exceeded; state=FAILED (device gone)");
    if (on_failed_) on_failed_(id);
    return;
  }
  c.next_backoff_s =
      std::min(c.next_backoff_s * 2, p.reconnect_backoff_max_s.count());
  engine_->schedule(c.next_backoff_s, [this, id] { reconnect_attempt(id); },
                    sim::EventTag::kReconnect);
}

void Fabric::emit(ConnectionId id, const std::string& message) {
  if (on_event_) on_event_(id, message);
}

ConnState Fabric::state(ConnectionId id) const {
  ECF_CHECK_GE(id, 0) << " fabric connection";
  ECF_CHECK_LT(id, static_cast<ConnectionId>(connections_.size()))
      << " fabric connection";
  return connections_[static_cast<std::size_t>(id)].state;
}

const ConnectionStats& Fabric::stats(ConnectionId id) const {
  ECF_CHECK_GE(id, 0) << " fabric connection";
  ECF_CHECK_LT(id, static_cast<ConnectionId>(connections_.size()))
      << " fabric connection";
  return connections_[static_cast<std::size_t>(id)].stats;
}

const Link& Fabric::link(int host) const {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  return links_[static_cast<std::size_t>(host)];
}

FabricLoadView Fabric::load_view(int host, sim::SimTime now) const {
  ECF_CHECK_GE(host, 0) << " fabric host";
  ECF_CHECK_LT(host, static_cast<int>(links_.size())) << " fabric host";
  const Link& l = links_[static_cast<std::size_t>(host)];
  FabricLoadView v;
  v.tx_backlog_s = std::max(0.0, l.tx.busy_until() - now);
  v.rx_backlog_s = std::max(0.0, l.rx.busy_until() - now);
  v.bytes_carried = l.bytes_tx + l.bytes_rx;
  for (const Connection& c : connections_) {
    if (c.host != host || !c.open) continue;
    for (const QueuePair& qp : c.io_qpairs) v.in_flight += qp.in_flight(now);
  }
  return v;
}

int Fabric::connection_in_flight(ConnectionId id) const {
  ECF_CHECK_GE(id, 0) << " fabric connection";
  ECF_CHECK_LT(id, static_cast<ConnectionId>(connections_.size()))
      << " fabric connection";
  const Connection& c = connections_[static_cast<std::size_t>(id)];
  const sim::SimTime now = engine_->now();
  int n = 0;
  for (const QueuePair& qp : c.io_qpairs) n += qp.in_flight(now);
  return n;
}

std::vector<std::uint64_t> Fabric::depth_histogram(ConnectionId id) const {
  ECF_CHECK_GE(id, 0) << " fabric connection";
  ECF_CHECK_LT(id, static_cast<ConnectionId>(connections_.size()))
      << " fabric connection";
  const Connection& c = connections_[static_cast<std::size_t>(id)];
  std::vector<std::uint64_t> hist;
  for (const QueuePair& qp : c.io_qpairs) {
    const std::vector<std::uint64_t>& h = qp.depth_histogram();
    if (hist.size() < h.size()) hist.resize(h.size(), 0);
    for (std::size_t i = 0; i < h.size(); ++i) hist[i] += h[i];
  }
  return hist;
}

Fabric::Totals Fabric::totals() const {
  Totals t;
  for (const Connection& c : connections_) {
    t.commands += c.stats.commands;
    t.retries += c.stats.retries;
    t.reconnects += c.stats.reconnects;
    t.transport_wait_s += c.stats.transport_wait_s;
  }
  return t;
}

void FabricTelemetry::record_fabric(const Fabric::Totals& totals,
                                    std::uint64_t connections) {
  std::lock_guard<std::mutex> lock(mu_);
  ++fabrics_;
  connections_ += connections;
  commands_ += totals.commands;
  retries_ += totals.retries;
  reconnects_ += totals.reconnects;
}

FabricTelemetry::Snapshot FabricTelemetry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.fabrics = fabrics_;
  s.connections = connections_;
  s.commands = commands_;
  s.retries = retries_;
  s.reconnects = reconnects_;
  return s;
}

void FabricTelemetry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  fabrics_ = 0;
  connections_ = 0;
  commands_ = 0;
  retries_ = 0;
  reconnects_ = 0;
}

FabricTelemetry& fabric_telemetry() {
  static FabricTelemetry telemetry;
  return telemetry;
}

}  // namespace ecf::nvmeof
