// Virtual NVMe-oF target layer — the paper's §3.1 substrate.
//
// ECFault decouples the DSS from its storage by provisioning virtual NVMe
// disks over NVMe-oF (via nvmetcli on real hardware). The point of the
// indirection is *controllability*: removing a subsystem makes the device
// vanish from the data node without touching the DSS software — the fault
// injector's device-level lever.
//
// This module reproduces that control surface in simulation: a Target per
// data node owns subsystems; each subsystem exposes one namespace bound to
// a sim::Disk. Removing the subsystem atomically fails all subsequent I/O
// on the device, which the OSD layer observes as EIO, exactly like a
// yanked NVMe-oF device. An admin log mirrors the nvmetcli operations so
// experiment logs show the provisioning history.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/resources.h"

namespace ecf::nvmeof {

// NVMe Qualified Name, e.g. "nqn.2024-04.io.ecfault:node3.ssd1".
using Nqn = std::string;

struct NamespaceInfo {
  std::uint32_t nsid = 1;
  std::uint64_t capacity_bytes = 0;
};

struct SubsystemInfo {
  Nqn nqn;
  NamespaceInfo ns;
  bool connected = false;  // visible to the host (OSD node)
};

struct AdminLogEntry {
  double time = 0;
  std::string op;   // "create", "connect", "remove", ...
  Nqn nqn;
};

// One NVMe-oF target per data node.
class Target {
 public:
  explicit Target(std::string node_name) : node_(std::move(node_name)) {}

  const std::string& node() const { return node_; }

  // nvmetcli create: define a subsystem + namespace backed by `disk`.
  // Throws std::invalid_argument on a malformed or duplicate NQN. `now` is
  // the simulation clock (engine.now()) — admin-log timestamps must be
  // monotone, so callers may not default it.
  void create_subsystem(const Nqn& nqn, std::uint64_t capacity_bytes,
                        sim::Disk* disk, double now);

  // Host connects the subsystem (device appears as /dev/nvmeXnY).
  void connect(const Nqn& nqn, double now);

  // nvmetcli remove: the fault injector's device-failure lever. The device
  // disappears; in-flight and future I/O fail. The subsystem entry is
  // erased, so the NQN may be re-created later (a replacement device
  // provisioned under the same name).
  void remove_subsystem(const Nqn& nqn, double now);

  // Device I/O entry points used by the OSD layer. Returns the completion
  // time, or nullopt when the device is gone (EIO).
  std::optional<sim::SimTime> read(sim::Engine& eng, const Nqn& nqn,
                                   std::uint64_t bytes, std::uint64_t ios = 1);
  std::optional<sim::SimTime> write(sim::Engine& eng, const Nqn& nqn,
                                    std::uint64_t bytes, std::uint64_t ios = 1);

  bool is_connected(const Nqn& nqn) const;
  std::vector<SubsystemInfo> list() const;
  const std::vector<AdminLogEntry>& admin_log() const { return admin_log_; }

 private:
  struct Subsystem {
    SubsystemInfo info;
    sim::Disk* disk = nullptr;
  };
  Subsystem* find(const Nqn& nqn);
  const Subsystem* find(const Nqn& nqn) const;

  std::string node_;
  std::vector<Subsystem> subsystems_;
  std::vector<AdminLogEntry> admin_log_;
};

// Syntactic validity per the NVMe spec shape we emit: non-empty, "nqn."
// prefix, and a date.domain authority followed by a ":identifier" suffix.
bool valid_nqn(const Nqn& nqn);

// Helper to build the conventional NQN for host h, device d. The result
// always satisfies valid_nqn().
Nqn make_nqn(std::size_t host, std::size_t device);

}  // namespace ecf::nvmeof
