// Repair bandwidth vs theory: the I/O plans the simulator charges for,
// compared against the codes' theoretical repair costs. Supports the
// Fig. 2 analyses: Clay's single-failure plan reads d/(q*k) of what RS
// reads, loses that property under multi-failure, and its sub-chunk reads
// fragment into many IOs at small stripe units.
#include <cstdio>

#include "bench/bench_common.h"
#include "ec/clay.h"
#include "ec/lrc.h"
#include "ec/rs.h"
#include "ec/stripe.h"

using namespace ecf;

namespace {

void report(const ec::ErasureCode& code,
            const std::vector<std::size_t>& erased, util::TextTable& table) {
  const ec::RepairPlan plan = code.repair_plan(erased);
  std::string pattern;
  for (const std::size_t e : erased) {
    if (!pattern.empty()) pattern += ",";
    pattern += std::to_string(e);
  }
  table.add_row({code.name(), pattern, std::to_string(plan.reads.size()),
                 bench::fmt(plan.read_fraction_total(), 2),
                 std::to_string(plan.total_subchunk_ios()),
                 plan.bandwidth_optimal ? "yes" : "no",
                 bench::fmt(plan.decode_cost_factor, 1)});
}

}  // namespace

int main() {
  bench::print_header("Repair plans: bandwidth and IO fragmentation vs theory");

  const ec::RsCode rs(12, 9);
  const ec::ClayCode clay(12, 9, 11);
  const ec::LrcCode lrc(8, 2, 2);

  util::TextTable table({"code", "erased", "helpers", "chunk-equivalents read",
                         "sub-chunk runs/stripe", "bw-optimal", "decode cost"});
  report(rs, {0}, table);
  report(clay, {0}, table);
  report(rs, {0, 1}, table);
  report(clay, {0, 1}, table);
  report(rs, {0, 1, 2}, table);
  report(clay, {0, 1, 2}, table);
  report(lrc, {0}, table);
  report(lrc, {10}, table);
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nTheory: Clay(12,9,11) single-failure repair reads d/(q*k) = 11/27 =\n"
      "%.3f of an RS repair (measured ratio: %.3f). The advantage disappears\n"
      "for multi-failure patterns, where the coupled decode needs every\n"
      "survivor in full — the Fig. 2d mechanism.\n",
      clay.repair_bandwidth_fraction(),
      clay.repair_plan({0}).read_fraction_total() /
          rs.repair_plan({0}).read_fraction_total());

  // Sub-chunk fragmentation per stripe-unit choice (Fig. 2c mechanism).
  bench::print_header("Clay sub-chunk fragmentation per stripe unit");
  util::TextTable frag({"stripe_unit", "sub-chunk size", "runs per unit read",
                        "IOs per 64MiB object repair"});
  for (const std::uint64_t su :
       {4 * util::KiB, 64 * util::KiB, 4 * util::MiB, 64 * util::MiB}) {
    const auto layout = ec::compute_stripe_layout(64 * util::MiB, 12, 9, su);
    // Average runs over the failed chunk's position.
    double runs = 0;
    for (std::size_t f = 0; f < 12; ++f) {
      runs += static_cast<double>(clay.repair_subchunk_runs(f));
    }
    runs /= 12.0;
    const double ios = runs * static_cast<double>(layout.units_per_chunk) * 11;
    frag.add_row({util::format_bytes(su),
                  std::to_string(su / clay.alpha()) + " B",
                  bench::fmt(runs, 1), bench::fmt(ios, 0)});
  }
  std::printf("%s", frag.to_string().c_str());
  return 0;
}
