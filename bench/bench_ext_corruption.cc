// Extension study: silent corruption and deep scrub (the CORDS-class
// fault the paper's related work discusses but its prototype does not
// inject). Sweeps the corruption rate and compares RS vs Clay on repair
// traffic — in-place shard repair is exactly the single-erasure case where
// Clay's sub-chunk reads shine.
#include <cstdio>

#include "bench/bench_common.h"
#include "ec/clay.h"
#include "ec/rs.h"

using namespace ecf;

int main() {
  bench::print_header("Extension: silent corruption + deep scrub");

  util::TextTable table({"corrupt %", "code", "planted", "found", "repaired",
                         "scrub+repair wall(s)"});
  for (const double fraction : {0.01, 0.05, 0.20}) {
    for (const bool clay : {false, true}) {
      cluster::ClusterConfig cfg;
      cfg.num_hosts = 30;
      cfg.pool.pg_num = 64;
      cfg.workload.num_objects = 1000;
      if (clay) {
        cfg.pool.ec_profile = {
            {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
      }
      cfg.scrub.enabled = true;
      cfg.scrub.interval_s = 1.0;
      cfg.scrub.max_passes = 1;
      cluster::Cluster cl(cfg);
      cl.create_pool();
      cl.apply_workload();
      const std::uint64_t planted = cl.corrupt_chunks(7, fraction);
      cl.start_scrub();
      cl.engine().run();
      table.add_row({bench::fmt(100 * fraction, 0), clay ? "Clay" : "RS",
                     std::to_string(planted),
                     std::to_string(cl.report().corruptions_found),
                     std::to_string(cl.report().corruptions_repaired),
                     bench::fmt(cl.engine().now(), 0)});
    }
  }
  std::printf("%s", table.to_string().c_str());

  // Per-repair traffic comparison: the reason to prefer MSR codes for
  // scrub-repair-heavy clusters.
  const ec::RsCode rs(12, 9);
  const ec::ClayCode clay(12, 9, 11);
  std::printf(
      "\nper-shard in-place repair reads: RS %.2f chunk-equivalents vs Clay "
      "%.2f\n(corruption repair is always single-erasure, so Clay's repair\n"
      "bandwidth advantage applies to every scrub fix)\n",
      rs.repair_plan({0}).read_fraction_total(),
      clay.repair_plan({0}).read_fraction_total());
  return 0;
}
