// §4.4 formula validation: the paper derives
//
//   S_chunk = S_unit * ceil(S_object / (k * S_unit))
//   WA >= (n * S_chunk + S_meta) / S_object
//
// and validates it "through a set of experiments with a variety of object
// size, EC parameter (n,k), and stripe_unit". This bench regenerates that
// sweep: for every combination it compares the formula (with S_meta = 0,
// the lower bound the paper recommends) against the simulated OSD-level
// usage, and checks the two claimed properties: the formula never falls
// below n/k, and the measured WA never falls below the formula.
#include <cstdio>

#include "bench/bench_common.h"
#include "cluster/cluster.h"
#include "ec/wa_model.h"

using namespace ecf;

int main() {
  bench::print_header("4.4: WA formula validation sweep");

  const std::uint64_t object_sizes[] = {1 * util::MiB, 16 * util::MiB,
                                        64 * util::MiB, 100 * util::MiB};
  const std::pair<std::size_t, std::size_t> codes[] = {
      {12, 9}, {15, 12}, {6, 4}, {14, 10}};
  const std::uint64_t units[] = {4 * util::KiB, 64 * util::KiB, 4 * util::MiB,
                                 16 * util::MiB};

  util::TextTable table({"object", "code", "stripe_unit", "n/k",
                         "formula(S_meta=0)", "measured", "bound holds"});
  int violations = 0;
  int cases = 0;
  for (const auto& [n, k] : codes) {
    for (const std::uint64_t obj : object_sizes) {
      for (const std::uint64_t su : units) {
        ++cases;
        const ec::WaEstimate est = ec::estimate_wa(obj, n, k, su);

        cluster::ClusterConfig cfg;
        cfg.pool.ec_profile = {{"plugin", "jerasure"},
                               {"k", std::to_string(k)},
                               {"m", std::to_string(n - k)}};
        cfg.pool.stripe_unit = ecf::util::Bytes(su);
        cfg.workload.num_objects = 200;  // enough for stable averages
        cfg.workload.object_size = ecf::util::Bytes(obj);
        cluster::Cluster cl(cfg);
        cl.create_pool();
        cl.apply_workload();
        const double measured = cl.actual_wa();

        const bool lower_bound_ok =
            est.padding_only >= est.theoretical - 1e-9 &&
            measured >= est.padding_only - 1e-9;
        if (!lower_bound_ok) ++violations;
        // Print a representative subset (all 4KiB rows + extremes) to keep
        // the output readable; every case is still checked.
        if (su == 4 * util::KiB || est.padding_only > 2.0) {
          table.add_row({util::format_bytes(obj),
                         "RS(" + std::to_string(n) + "," + std::to_string(k) + ")",
                         util::format_bytes(su),
                         bench::fmt(est.theoretical, 3),
                         bench::fmt(est.padding_only, 3),
                         bench::fmt(measured, 3),
                         lower_bound_ok ? "yes" : "NO"});
        }
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nChecked %d (object, code, stripe_unit) combinations; "
              "bound violations: %d\n",
              cases, violations);
  std::printf(
      "Paper finding: the formula is a more accurate lower bound of the real\n"
      "WA than n/k; the gap to the measurement is the metadata term S_meta.\n");
  return violations == 0 ? 0 : 1;
}
