// Figure 2b: impact of the placement-group count (pg_num) on EC recovery
// time. pg_num in {1, 16, 256} x {RS, Clay}; normalized to RS @ pg_num=256.
// Expected shape: larger pg_num recovers faster (objects spread more evenly
// across OSDs); Clay with pg_num=1 is the worst case.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header("Figure 2b: Placement groups vs EC recovery time");

  struct Row {
    int pg_num;
    double paper_rs;
    double paper_clay;
  };
  const Row rows[] = {{1, 1.22, 1.35}, {16, 1.04, 1.03}, {256, 1.00, 1.02}};

  double base = 0;
  {
    ecfault::ExperimentProfile p = bench::default_profile(false, 1.0);
    p.cluster.pool.pg_num = 256;
    base = ecfault::Coordinator::run_profile(p).mean_total;
  }

  util::TextTable table({"pg_num", "code", "recovery(s)", "normalized",
                         "paper"});
  for (const Row& r : rows) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
      p.cluster.pool.pg_num = r.pg_num;
      const auto c = ecfault::Coordinator::run_profile(p);
      table.add_row({std::to_string(r.pg_num),
                     clay ? "Clay(12,9,11)" : "RS(12,9)",
                     bench::fmt(c.mean_total, 0),
                     bench::fmt(c.mean_total / base, 3),
                     bench::fmt(clay ? r.paper_clay : r.paper_rs, 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper finding: a larger pg_num recovers faster for both codes;\n"
      "Clay at pg_num=1 is the worst case. Normalization: RS @ pg_num=256.\n");
  return 0;
}
