// Figure 2a: impact of the BlueStore caching scheme on EC recovery time.
//
// Three cache configurations (Table 2 of the paper) x {RS(12,9),
// Clay(12,9,11)} under a single OSD-host failure; recovery time normalized
// to RS with autotune (the paper's best case). Expected shape: autotune
// best for both codes; kv-optimized worst, and worst overall for Clay.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header(
      "Figure 2a: Backend cache schemes vs EC recovery time "
      "(single OSD-host failure)");

  struct Scheme {
    const char* name;
    cluster::CacheConfig config;
    double paper_rs;   // approximate values read off the paper's chart
    double paper_clay;
  };
  const Scheme schemes[] = {
      {"kv-optimized (C1)", cluster::CacheConfig::kv_optimized(), 1.08, 1.11},
      {"data-optimized (C2)", cluster::CacheConfig::data_optimized(), 1.05,
       1.08},
      {"autotune (C3)", cluster::CacheConfig::autotuned(), 1.00, 1.02},
  };

  // Reference: RS + autotune (normalization base), averaged over 3 runs.
  double base = 0;
  {
    ecfault::ExperimentProfile p = bench::default_profile(false, 1.0);
    p.cluster.cache = cluster::CacheConfig::autotuned();
    base = ecfault::Coordinator::run_profile(p).mean_total;
  }

  util::TextTable table({"caching scheme", "code", "recovery(s)", "normalized",
                         "paper"});
  for (const Scheme& s : schemes) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
      p.cluster.cache = s.config;
      const auto c = ecfault::Coordinator::run_profile(p);
      table.add_row({s.name, clay ? "Clay(12,9,11)" : "RS(12,9)",
                     bench::fmt(c.mean_total, 0),
                     bench::fmt(c.mean_total / base, 3),
                     bench::fmt(clay ? s.paper_clay : s.paper_rs, 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper finding: autotune performs best (cache resizing is effective);\n"
      "Clay with kv-optimized is the worst case. Normalization: RS+autotune.\n");
  return 0;
}
