// Ablation/extension: recovery under foreground client load.
//
// The paper measures recovery on an idle cluster; real clusters recover
// while serving clients. This bench varies the client op rate during a
// single-host-failure recovery and reports (a) how much recovery stretches
// and (b) what clients experience — including degraded-read latency, where
// Clay's sub-chunk gather beats RS's full k-shard reconstruction.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header("Ablation: recovery under client load (host failure)");

  util::TextTable table({"client ops/s", "code", "ec recovery(s)",
                         "client ops", "degraded reads", "mean lat(ms)",
                         "max lat(ms)"});
  for (const double rate : {0.0, 50.0, 200.0}) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 0.2);
      p.cluster.client.ops_per_s = rate;
      p.cluster.client.horizon_s = ecf::util::SimSec(4000.0);
      p.cluster.client.op_bytes = ecf::util::Bytes(4 * util::MiB);
      p.runs = 1;

      // Coordinator does not know about client load; run manually.
      cluster::Cluster cl(p.cluster);
      cl.create_pool();
      cl.apply_workload();
      cl.start_client_load();
      ecfault::FaultInjector injector(cl);
      const auto plan = injector.plan(p.fault);
      cl.engine().schedule(p.fault.inject_at_s, [&cl, &plan] {
        for (const cluster::HostId h : plan.node_victims) cl.fail_host(h);
      });
      const cluster::RecoveryReport r = cl.run_to_recovery();

      table.add_row({bench::fmt(rate, 0), clay ? "Clay" : "RS",
                     bench::fmt(r.ec_recovery_period(), 0),
                     std::to_string(r.client_ops),
                     std::to_string(r.degraded_reads),
                     bench::fmt(1e3 * r.mean_client_latency(), 1),
                     bench::fmt(1e3 * r.max_client_latency(), 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nTakeaways: client traffic and recovery contend (recovery stretches\n"
      "with load); degraded reads dominate client tail latency during the\n"
      "checking period — another reason the 600 s down-out timer matters.\n");
  return 0;
}
