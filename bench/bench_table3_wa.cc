// Table 3: write amplification of RS codes — theoretical n/k vs the
// "Actual WA Factor" measured at the OSD level after the default workload
// (10,000 x 64 MB object writes), for two codes with the same fault
// tolerance (3 concurrent failures).
//
//   paper: J1 RS(12,9):  n/k = 1.33, actual 1.76  (+32.3%)
//          J2 RS(15,12): n/k = 1.25, actual 2.15  (+72.0%)
//
// The gap comes from (1) zero padding of undersized encoding units under
// the division-and-padding policy and (2) per-chunk metadata (onode/extent
// maps, EC hash-info attributes, PG-log entries, amplified by RocksDB).
#include <cstdio>

#include "bench/bench_common.h"
#include "cluster/cluster.h"
#include "ec/wa_model.h"

using namespace ecf;

int main() {
  bench::print_header("Table 3: Write amplification of RS codes");

  struct Row {
    const char* id;
    std::size_t k;
    std::size_t m;
    double paper_actual;
    double paper_diff_pct;
  };
  const Row rows[] = {{"J1 RS(12,9)", 9, 3, 1.76, 32.3},
                      {"J2 RS(15,12)", 12, 3, 2.15, 72.0}};

  util::TextTable table({"code", "n/k", "actual WA", "diff", "paper actual",
                         "paper diff"});
  for (const Row& r : rows) {
    cluster::ClusterConfig cfg;
    cfg.pool.ec_profile = {{"plugin", "jerasure"},
                           {"k", std::to_string(r.k)},
                           {"m", std::to_string(r.m)}};
    cluster::Cluster cl(cfg);
    cl.create_pool();
    cl.apply_workload();
    const double theoretical =
        static_cast<double>(r.k + r.m) / static_cast<double>(r.k);
    const double actual = cl.actual_wa();
    const double diff = 100.0 * (actual / theoretical - 1.0);
    table.add_row({r.id, bench::fmt(theoretical, 2), bench::fmt(actual, 2),
                   "+" + bench::fmt(diff, 1) + "%",
                   bench::fmt(r.paper_actual, 2),
                   "+" + bench::fmt(r.paper_diff_pct, 1) + "%"});
  }
  std::printf("%s", table.to_string().c_str());

  // Breakdown for RS(12,9): where does the amplification come from?
  {
    cluster::ClusterConfig cfg;
    cluster::Cluster cl(cfg);
    cl.create_pool();
    cl.apply_workload();
    const double written = static_cast<double>(cl.workload_bytes());
    std::printf(
        "\nRS(12,9) breakdown: written %s; stored data (incl. padding) %s "
        "(%.3fx);\nmetadata %s (%.3fx); total %.3fx\n",
        util::format_bytes(cl.workload_bytes()).c_str(),
        util::format_bytes(cl.total_data_bytes()).c_str(),
        static_cast<double>(cl.total_data_bytes()) / written,
        util::format_bytes(cl.total_meta_bytes()).c_str(),
        static_cast<double>(cl.total_meta_bytes()) / written, cl.actual_wa());
  }
  std::printf(
      "\nPaper finding: the Actual WA Factor always exceeds n/k, and the gap\n"
      "depends strongly on (n,k) — n/k alone is not an accurate estimator.\n");
  return 0;
}
