// Recovery QoS campaign: the dmClock scheduler's recovery-time vs
// client-p99 trade-off, and load-aware helper selection's read-imbalance
// win, both under a dirty network (cluster-wide +1 ms link latency) with
// zipfian foreground load riding over a node failure.
//
// Four sections, emitted to BENCH_qos.json (or argv[1]):
//   tradeoff    — qos off (the legacy flat-constant "greedy" recovery)
//                 vs a recovery-weight sweep; each point records recovery
//                 time and client p99.
//   imbalance   — index-order vs load-aware helper selection; metric is
//                 max/mean recovery bytes served across surviving OSDs.
//   families    — RS / Clay / Hitchhiker at one QoS operating point.
//   pipeline    — Clay multi-stage fetch, staged vs pipelined executor.
//
// CI gates (exit nonzero on failure):
//   1. load-aware selection lowers the helper-read imbalance;
//   2. client p99 moves monotonically with the recovery weight
//      (5% tolerance between neighbors, strict across the endpoints);
//   3. some sweep point cuts client p99 >= 20% below greedy recovery
//      while finishing recovery within 1.5x of it.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/json.h"

using namespace ecf;

namespace {

// Scaled-down dirty-network campaign (same shape as the dirty-network
// example): 15 hosts x 2 OSDs, pg_num 32, 16 MiB objects, one node fault,
// +1 ms cluster-wide link latency injected before the fault, and an
// open-loop zipfian client stream that keeps queues occupied while
// recovery storms the disks.
ecfault::ExperimentProfile qos_profile(
    const std::map<std::string, std::string>& ec_profile,
    std::uint64_t num_objects) {
  ecfault::ExperimentProfile p;
  p.cluster.pool.ec_profile = ec_profile;
  p.cluster.num_hosts = 15;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 32;
  p.cluster.workload.num_objects = num_objects;
  p.cluster.workload.object_size = util::Bytes(16 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 10.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  // Device-bound recovery: a realistic Ceph throttle (recovery granted
  // 40% of raw bandwidth -> each recovery read occupies the disk 2.5x its
  // payload time) with enough concurrent pushes that helper disks carry a
  // standing backlog — the signal dmClock's weight delay works from.
  p.cluster.protocol.recovery_bw_fraction = 0.2;
  p.cluster.protocol.osd_recovery_max_active = 8;
  p.cluster.protocol.osd_max_backfills = 4;
  p.cluster.protocol.osd_recovery_sleep_s = 0.005;
  p.fault.level = ecfault::FaultLevel::kNode;
  p.fault.count = 1;
  p.fault.inject_at_s = util::SimSec(2.0);
  p.runs = 1;

  ecfault::NetworkFaultSpec lat;
  lat.kind = ecfault::NetFaultKind::kLinkLatency;
  lat.count = 0;  // every host: uniformly dirty network
  lat.inject_at_s = util::SimSec(0.5);
  lat.latency_s = util::SimSec(1e-3);
  p.network_faults = {lat};

  p.cluster.client.ops_per_s = 2000.0;
  p.cluster.client.op_bytes = util::Bytes(1 * util::MiB);
  p.cluster.client.read_fraction = 1.0;
  p.cluster.client.zipf_theta = 0.9;
  p.cluster.client.horizon_s = util::SimSec(60.0);
  return p;
}

std::map<std::string, std::string> rs_profile() {
  return {{"plugin", "jerasure"}, {"technique", "reed_sol_van"},
          {"k", "9"}, {"m", "3"}};
}

struct Point {
  double recovery_s = 0;
  double p99_s = 0;
  double mean_s = 0;
  std::uint64_t client_ops = 0;
};

Point run_point(const ecfault::ExperimentProfile& p) {
  const ecfault::ExperimentResult r = ecfault::Coordinator::run_experiment(p);
  Point pt;
  pt.recovery_s = r.report.ec_recovery_period();
  pt.p99_s = r.report.client_percentile(0.99);
  pt.mean_s = r.report.mean_client_latency();
  pt.client_ops = r.report.client_ops;
  return pt;
}

// Max/mean recovery bytes served across the OSDs that survived the fault.
// Driven through the Cluster directly (the coordinator does not expose
// per-device counters): same dirty network, same node fault, no client
// load — pure helper-placement signal.
double helper_imbalance(bool load_aware, std::uint64_t* max_out,
                        double* mean_out) {
  ecfault::ExperimentProfile p = qos_profile(rs_profile(), 200);
  p.cluster.client.ops_per_s = 0;
  p.cluster.helper_selection.enabled = load_aware;
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  cl.apply_workload();
  for (cluster::HostId h = 0; h < p.cluster.num_hosts; ++h) {
    cl.set_link_latency(h, 1e-3);
  }
  const cluster::HostId victim = 0;
  cl.engine().schedule(2.0, [&cl] { cl.fail_host(0); },
                       sim::EventTag::kFault);
  cl.run_to_recovery();

  std::uint64_t max_served = 0, total = 0;
  int survivors = 0;
  const int num_osds = p.cluster.num_hosts * p.cluster.osds_per_host;
  for (cluster::OsdId o = 0; o < num_osds; ++o) {
    if (cl.host_of(o) == victim) continue;
    const std::uint64_t served = cl.disk_stats(o).recovery_bytes_read;
    max_served = std::max(max_served, served);
    total += served;
    ++survivors;
  }
  const double mean =
      survivors > 0 ? static_cast<double>(total) / survivors : 0.0;
  if (max_out) *max_out = max_served;
  if (mean_out) *mean_out = mean;
  return mean > 0 ? static_cast<double>(max_served) / mean : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_qos.json";
  // Optional scale override for deeper (non-CI) runs.
  const std::uint64_t num_objects =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 200;
  bench::print_header(
      "Recovery QoS: dmClock trade-off + load-aware helper selection");
  util::Json doc = util::Json::object();
  doc.set("bench", std::string("recovery_qos"));
  bool ok = true;

  // --- section 1: recovery-weight trade-off curve ---------------------------
  std::printf("\n[tradeoff] RS(12,9), dirty network, node fault, "
              "zipfian clients\n");
  // 5x the base object count so the recovery storm is device-bound: the
  // helper disks must carry a standing backlog for the scheduler to have
  // anything to arbitrate.
  const ecfault::ExperimentProfile base = qos_profile(rs_profile(),
                                                      num_objects * 5);
  const Point greedy = run_point(base);

  const double weights[] = {1, 10, 30, 100, 1000};
  std::vector<Point> sweep;
  util::Json tradeoff = util::Json::array();
  {
    util::Json row = util::Json::object();
    row.set("label", std::string("qos-off (greedy)"));
    row.set("recovery_s", greedy.recovery_s);
    row.set("client_p99_s", greedy.p99_s);
    row.set("client_mean_s", greedy.mean_s);
    row.set("client_ops", greedy.client_ops);
    tradeoff.push_back(row);
  }
  util::TextTable table({"recovery weight", "recovery(s)", "vs greedy",
                         "client p99(ms)", "p99 vs greedy"});
  table.add_row({"(qos off)", bench::fmt(greedy.recovery_s, 1), "1.00x",
                 bench::fmt(greedy.p99_s * 1e3, 1), "1.00x"});
  for (const double w : weights) {
    ecfault::ExperimentProfile p = base;
    p.cluster.qos.enabled = true;
    p.cluster.qos.recovery.weight = w;
    const Point pt = run_point(p);
    sweep.push_back(pt);
    table.add_row({bench::fmt(w, 0), bench::fmt(pt.recovery_s, 1),
                   bench::fmt(greedy.recovery_s > 0
                                  ? pt.recovery_s / greedy.recovery_s
                                  : 0.0) + "x",
                   bench::fmt(pt.p99_s * 1e3, 1),
                   bench::fmt(greedy.p99_s > 0 ? pt.p99_s / greedy.p99_s
                                               : 0.0) + "x"});
    util::Json row = util::Json::object();
    row.set("recovery_weight", w);
    row.set("recovery_s", pt.recovery_s);
    row.set("client_p99_s", pt.p99_s);
    row.set("client_mean_s", pt.mean_s);
    row.set("client_ops", pt.client_ops);
    tradeoff.push_back(row);
  }
  std::printf("%s", table.to_string().c_str());
  doc.set("tradeoff", tradeoff);

  // Gate 2: p99 rises with the recovery weight (recovery ops defer less,
  // clients queue more). 5% tolerance between neighbors; endpoints strict.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].p99_s < sweep[i - 1].p99_s * 0.95) {
      std::printf("FAIL: client p99 not monotone in recovery weight "
                  "(w=%.0f: %.4fs -> w=%.0f: %.4fs)\n",
                  weights[i - 1], sweep[i - 1].p99_s, weights[i],
                  sweep[i].p99_s);
      ok = false;
    }
  }
  if (!(sweep.front().p99_s < sweep.back().p99_s)) {
    std::printf("FAIL: lowest recovery weight (p99 %.4fs) does not beat "
                "highest (p99 %.4fs)\n",
                sweep.front().p99_s, sweep.back().p99_s);
    ok = false;
  }

  // Gate 3: some point cuts p99 >= 20% under greedy at <= 1.5x recovery.
  bool found = false;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].p99_s <= 0.8 * greedy.p99_s &&
        sweep[i].recovery_s <= 1.5 * greedy.recovery_s) {
      std::printf("\ntrade-off point: weight %.0f cuts client p99 %.0f%% "
                  "(%.1f -> %.1f ms) at %.2fx recovery time\n",
                  weights[i], 100.0 * (1.0 - sweep[i].p99_s / greedy.p99_s),
                  greedy.p99_s * 1e3, sweep[i].p99_s * 1e3,
                  sweep[i].recovery_s / greedy.recovery_s);
      found = true;
      break;
    }
  }
  if (!found) {
    std::printf("FAIL: no sweep point with p99 <= 0.8x greedy and "
                "recovery <= 1.5x greedy\n");
    ok = false;
  }

  // --- section 2: helper-read imbalance -------------------------------------
  std::printf("\n[imbalance] index-order vs load-aware helper selection\n");
  std::uint64_t max_index = 0, max_aware = 0;
  double mean_index = 0, mean_aware = 0;
  const double imb_index = helper_imbalance(false, &max_index, &mean_index);
  const double imb_aware = helper_imbalance(true, &max_aware, &mean_aware);
  std::printf("  index-order: max/mean = %.3f   load-aware: max/mean = %.3f\n",
              imb_index, imb_aware);
  util::Json imb = util::Json::object();
  imb.set("index_order_max_over_mean", imb_index);
  imb.set("load_aware_max_over_mean", imb_aware);
  imb.set("index_order_max_bytes", max_index);
  imb.set("load_aware_max_bytes", max_aware);
  doc.set("imbalance", imb);
  if (!(imb_aware < imb_index)) {
    std::printf("FAIL: load-aware selection did not lower the helper-read "
                "imbalance (%.3f vs %.3f)\n", imb_aware, imb_index);
    ok = false;
  }

  // --- section 3: code families at one QoS operating point ------------------
  std::printf("\n[families] recovery weight 16, dirty network\n");
  struct Family {
    const char* name;
    std::map<std::string, std::string> profile;
  };
  const Family families[] = {
      {"rs(12,9)", rs_profile()},
      {"clay(12,9,11)",
       {{"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}}},
      {"hitchhiker(12,9)", {{"plugin", "hitchhiker"}, {"k", "9"}, {"m", "3"}}},
  };
  util::Json fam = util::Json::array();
  util::TextTable ftable({"family", "recovery(s)", "client p99(ms)"});
  for (const Family& f : families) {
    ecfault::ExperimentProfile p = qos_profile(f.profile, num_objects);
    p.cluster.qos.enabled = true;
    p.cluster.qos.recovery.weight = 16;
    p.cluster.helper_selection.enabled = true;
    const Point pt = run_point(p);
    ftable.add_row({f.name, bench::fmt(pt.recovery_s, 1),
                    bench::fmt(pt.p99_s * 1e3, 1)});
    util::Json row = util::Json::object();
    row.set("family", std::string(f.name));
    row.set("recovery_s", pt.recovery_s);
    row.set("client_p99_s", pt.p99_s);
    fam.push_back(row);
  }
  std::printf("%s", ftable.to_string().c_str());
  doc.set("families", fam);

  // --- section 4: staged vs pipelined DAG execution -------------------------
  // Clay's multi-erasure DAG fetches level by level; under a high-latency
  // fabric (+5 ms per hop) the staged executor serializes every level's
  // wire hop behind the previous level's combine, which is exactly the
  // idle time pipelined chained transfers reclaim. A host-domain node
  // fault only ever costs a stripe one chunk (one chunk per host), so the
  // multi-stage regime needs a two-device fault on different hosts —
  // stripes holding both victims decode through the staged plane walk.
  std::printf("\n[pipeline] Clay staged vs pipelined chained transfers "
              "(+5 ms links, 2 device faults)\n");
  util::Json pipe = util::Json::object();
  double staged_s = 0, pipelined_s = 0;
  for (const bool pipelined : {false, true}) {
    ecfault::ExperimentProfile p = qos_profile(
        {{"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}},
        num_objects);
    p.cluster.client.ops_per_s = 0;
    p.cluster.pool.dag_recovery = true;
    p.cluster.pool.dag_pipeline = pipelined;
    p.fault.level = ecfault::FaultLevel::kDevice;
    p.fault.count = 2;
    p.fault.topology = ecfault::FaultTopology::kDifferentHosts;
    p.network_faults[0].latency_s = util::SimSec(5e-3);
    // Serialize object repairs (one in flight per PG) so per-object stage
    // latency sets the recovery rate — the regime pipelining targets.
    p.cluster.protocol.osd_recovery_max_active = 1;
    p.cluster.protocol.osd_max_backfills = 1;
    const Point pt = run_point(p);
    (pipelined ? pipelined_s : staged_s) = pt.recovery_s;
  }
  std::printf("  staged: %.1fs   pipelined: %.1fs (%.2fx)\n", staged_s,
              pipelined_s, staged_s > 0 ? pipelined_s / staged_s : 0.0);
  pipe.set("staged_recovery_s", staged_s);
  pipe.set("pipelined_recovery_s", pipelined_s);
  doc.set("pipeline", pipe);
  if (pipelined_s > staged_s * 1.02) {
    std::printf("FAIL: pipelined execution slower than staged "
                "(%.1fs vs %.1fs)\n", pipelined_s, staged_s);
    ok = false;
  }

  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path);
  return ok && out.good() ? 0 : 1;
}
