// Figure 2d: impact of the failure mode (count and locality of concurrent
// OSD failures) on EC recovery time.
//
// Setup per the paper: failure domain = OSD, a third SSD added to every
// host (3 OSDs/host), pg_num = 256. Four scenarios: {2,3} concurrent
// device failures x {same host, different hosts}. We normalize to a
// single-device-failure run of the same cluster (the paper normalizes to
// its default configuration; the paper's bars start at 1.08).
//
// Expected shape: more failures -> slower; and the locality crossover —
// with 3 failures on the SAME host Clay recovers faster than RS (every PG
// loses at most one shard, so Clay's bandwidth-optimal repair applies
// everywhere), while on DIFFERENT hosts RS is faster (multi-shard-loss PGs
// force Clay's full-stripe staged decode).
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

namespace {

ecfault::ExperimentProfile fig2d_profile(bool clay) {
  ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
  p.cluster.osds_per_host = 3;
  p.cluster.pool.failure_domain = cluster::FailureDomain::kOsd;
  p.fault.level = ecfault::FaultLevel::kDevice;
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2d: Failure mode vs EC recovery time "
      "(failure domain = OSD, 3 OSDs/host)");

  double base = 0;
  {
    ecfault::ExperimentProfile p = fig2d_profile(false);
    p.fault.count = 1;
    base = ecfault::Coordinator::run_profile(p).mean_total;
    std::printf("single-failure RS baseline: %.0f s\n", base);
  }

  struct Scenario {
    int count;
    ecfault::FaultTopology topo;
    const char* label;
    double paper_rs;
    double paper_clay;
  };
  const Scenario scenarios[] = {
      {2, ecfault::FaultTopology::kSameHost, "2 failures, same host", 1.08,
       1.09},
      {2, ecfault::FaultTopology::kDifferentHosts, "2 failures, diff hosts",
       1.08, 1.12},
      {3, ecfault::FaultTopology::kSameHost, "3 failures, same host", 1.49,
       1.45},
      {3, ecfault::FaultTopology::kDifferentHosts, "3 failures, diff hosts",
       1.51, 1.55},
  };

  util::TextTable table({"scenario", "code", "recovery(s)", "normalized",
                         "paper", "wasted repairs", "epochs"});
  for (const Scenario& s : scenarios) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = fig2d_profile(clay);
      p.fault.count = s.count;
      p.fault.topology = s.topo;
      const auto c = ecfault::Coordinator::run_profile(p);
      table.add_row({s.label, clay ? "Clay(12,9,11)" : "RS(12,9)",
                     bench::fmt(c.mean_total, 0),
                     bench::fmt(c.mean_total / base, 3),
                     bench::fmt(clay ? s.paper_clay : s.paper_rs, 2),
                     std::to_string(c.last.report.repairs_wasted),
                     std::to_string(c.last.report.epochs_published)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper finding: both codes slow down as concurrent failures grow;\n"
      "with 3 same-host failures Clay recovers faster than RS, with 3\n"
      "failures on different hosts RS is faster — the locality crossover.\n"
      "(Different-host failures are detected/marked out across several\n"
      "osdmap epochs and create multi-shard-loss PGs; see the wasted-repair\n"
      "and epoch columns.)\n");
  return 0;
}
