// Extension study (§6: "extended to cover more configurations"): the same
// default experiment across *all* EC plugins from the paper's Table 1 —
// RS (Jerasure & ISA variants), Clay, LRC, SHEC — comparing recovery time,
// repair traffic, and storage cost. This is the comparison the paper's
// framework enables but its evaluation (RS vs Clay only) does not show.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header(
      "Extension: every Table-1 EC plugin under the default host failure");

  struct Plugin {
    const char* label;
    std::map<std::string, std::string> profile;
  };
  // All configured for 3-failure tolerance except SHEC/LRC which trade
  // tolerance or storage for repair locality (that's their point).
  const Plugin plugins[] = {
      {"jerasure RS(12,9)",
       {{"plugin", "jerasure"}, {"technique", "reed_sol_van"}, {"k", "9"},
        {"m", "3"}}},
      {"isa RS(12,9)/cauchy",
       {{"plugin", "isa"}, {"k", "9"}, {"m", "3"}}},
      {"clay(12,9,11)",
       {{"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}}},
      {"lrc(k=9,l=3,g=3)",
       {{"plugin", "lrc"}, {"k", "9"}, {"l", "3"}, {"g", "3"}}},
      {"shec(k=9,m=4,c=2)",
       {{"plugin", "shec"}, {"k", "9"}, {"m", "4"}, {"c", "2"}}},
  };

  util::TextTable table({"plugin", "n/k", "actual WA", "total(s)",
                         "ec recovery(s)", "read GiB", "norm"});
  double base = 0;
  for (const Plugin& pl : plugins) {
    ecfault::ExperimentProfile p = bench::default_profile(false, 0.5);
    p.cluster.pool.ec_profile = pl.profile;
    p.runs = 1;
    const auto r = ecfault::Coordinator::run_experiment(p);
    if (base == 0) base = r.report.total();
    const double nk = [&] {
      // derive from result name is awkward; recompute from profile
      const double k = std::stod(pl.profile.at("k"));
      double m = 0;
      if (pl.profile.count("m")) m = std::stod(pl.profile.at("m"));
      if (pl.profile.count("l")) {
        m = std::stod(pl.profile.at("l")) + std::stod(pl.profile.at("g"));
      }
      return (k + m) / k;
    }();
    table.add_row({pl.label, bench::fmt(nk, 2), bench::fmt(r.actual_wa, 2),
                   bench::fmt(r.report.total(), 0),
                   bench::fmt(r.report.ec_recovery_period(), 0),
                   bench::fmt(static_cast<double>(
                                  r.report.bytes_read_for_recovery) /
                                  static_cast<double>(util::GiB),
                              1),
                   bench::fmt(r.report.total() / base, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading guide: Clay cuts repair *reads* (see the read column) but\n"
      "not wall time in this op-latency-bound regime; LRC/SHEC cut the\n"
      "repair fan-in at a storage-overhead price (WA column). The checking\n"
      "period dominates every plugin equally — the paper's core point\n"
      "generalizes beyond RS vs Clay.\n");
  return 0;
}
