// Calibration harness (not a paper figure): prints the headline metrics of
// every experiment family for the current ProtocolConfig constants, plus
// optional knob overrides from the command line:
//
//   bench_calibrate [mclock_delay] [grant_delay] [batch_max] [batch_divisor]
//                   [reserve_remote(0/1)] [sleep]
//
// Targets (paper): fig3 checking 53.7% (602s / 1128s);
//   fig2b totals normalized to RS/pg256: RS 1.22/1.04/1.00, Clay 1.35/1.03/1.02;
//   fig2d (vs single-failure default): 2f ~1.08, 3f same RS 1.49 Clay 1.45,
//   3f diff RS 1.51 Clay 1.55.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"

using namespace ecf;

namespace {

cluster::ProtocolConfig g_proto;

ecfault::ExperimentProfile prof(bool clay) {
  ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
  p.cluster.protocol = g_proto;
  p.runs = 1;
  return p;
}

double total_of(const ecfault::ExperimentProfile& p) {
  const auto r = ecfault::Coordinator::run_experiment(p);
  return r.report.complete ? r.report.total() : -1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_proto.mclock_queue_delay_s = std::atof(argv[1]);
  if (argc > 2) g_proto.reservation_grant_delay_s = std::atof(argv[2]);
  if (argc > 3) g_proto.backfill_batch_max = static_cast<std::uint64_t>(std::atoi(argv[3]));
  if (argc > 4) g_proto.backfill_batch_divisor = static_cast<std::uint64_t>(std::atoi(argv[4]));
  if (argc > 5) g_proto.reserve_remote_shards = std::atoi(argv[5]) != 0;
  if (argc > 6) g_proto.osd_recovery_sleep_s = std::atof(argv[6]);
  if (argc > 7) g_proto.recovery_bw_fraction = std::atof(argv[7]);
  if (argc > 8) g_proto.detection_spread_factor = std::atof(argv[8]);

  std::printf("knobs: mclock=%.3f grant=%.1f batch_max=%llu div=%llu remote=%d sleep=%.2f\n",
              g_proto.mclock_queue_delay_s, g_proto.reservation_grant_delay_s,
              static_cast<unsigned long long>(g_proto.backfill_batch_max),
              static_cast<unsigned long long>(g_proto.backfill_batch_divisor),
              g_proto.reserve_remote_shards ? 1 : 0,
              g_proto.osd_recovery_sleep_s);
  std::printf("       bw_frac=%.2f\n", g_proto.recovery_bw_fraction);

  // --- Fig 3: default RS host failure ---------------------------------------
  {
    const auto r = ecfault::Coordinator::run_experiment(prof(false));
    std::printf("fig3 RS default: total=%.0f checking=%.0f (%.1f%%)  [paper 1128/602=53.7%%]\n",
                r.report.total(), r.report.checking_period(),
                100 * r.report.checking_fraction());
  }
  {
    const auto r = ecfault::Coordinator::run_experiment(prof(true));
    std::printf("     Clay default: total=%.0f checking=%.0f (%.1f%%)\n",
                r.report.total(), r.report.checking_period(),
                100 * r.report.checking_fraction());
  }

  // --- Fig 2a: cache schemes ---------------------------------------------------
  {
    double rs_auto = 0;
    struct Scheme { const char* name; cluster::CacheConfig cc; };
    const Scheme schemes[] = {
        {"kv-opt", cluster::CacheConfig::kv_optimized()},
        {"data-opt", cluster::CacheConfig::data_optimized()},
        {"autotune", cluster::CacheConfig::autotuned()},
    };
    for (const bool clay : {false, true}) {
      for (const auto& sch : schemes) {
        auto p = prof(clay);
        p.cluster.cache = sch.cc;
        const double t = total_of(p);
        if (!clay && std::string(sch.name) == "autotune") rs_auto = t;
        std::printf("fig2a %-8s %-4s total=%.0f\n", sch.name,
                    clay ? "Clay" : "RS", t);
      }
    }
    std::printf("   [paper: autotune best for RS; Clay kv-opt worst (+11%% vs RS autotune); rs_auto=%.0f]\n", rs_auto);
  }

  // --- Fig 2b: pg sweep -------------------------------------------------------
  double rs256 = 0;
  for (const int pg : {256, 16, 1}) {
    for (const bool clay : {false, true}) {
      auto p = prof(clay);
      p.cluster.pool.pg_num = pg;
      const double t = total_of(p);
      if (pg == 256 && !clay) rs256 = t;
      std::printf("fig2b pg=%-3d %-4s total=%.0f norm=%.2f\n", pg,
                  clay ? "Clay" : "RS", t, rs256 > 0 ? t / rs256 : 0.0);
    }
  }
  std::printf("   [paper norm: RS 1.00/1.04/1.22, Clay 1.02/1.03/1.35]\n");

  // --- Fig 2c: stripe unit ----------------------------------------------------
  double rs4k = 0;
  for (const std::uint64_t su : {4 * util::KiB, 4 * util::MiB, 64 * util::MiB}) {
    for (const bool clay : {false, true}) {
      auto p = prof(clay);
      p.cluster.pool.stripe_unit = ecf::util::Bytes(su);
      const double t = total_of(p);
      if (su == 4 * util::KiB && !clay) rs4k = t;
      std::printf("fig2c su=%-8s %-4s total=%.0f norm=%.2f\n",
                  util::format_bytes(su).c_str(), clay ? "Clay" : "RS", t,
                  rs4k > 0 ? t / rs4k : 0.0);
    }
  }
  std::printf("   [paper norm (RS@4KB=1): RS 1.00/1.08/3.29, Clay 4.26/1.12/~3.4]\n");

  // --- Fig 2d: failure modes (domain=osd, 3 osds/host) -----------------------
  double base = 0;
  {
    // Single-device-failure baseline for normalization.
    auto p = prof(false);
    p.cluster.osds_per_host = 3;
    p.cluster.pool.failure_domain = cluster::FailureDomain::kOsd;
    p.fault.level = ecfault::FaultLevel::kDevice;
    p.fault.count = 1;
    base = total_of(p);
    std::printf("fig2d baseline 1-failure RS: total=%.0f\n", base);
  }
  for (const int count : {2, 3}) {
    for (const auto topo : {ecfault::FaultTopology::kSameHost,
                            ecfault::FaultTopology::kDifferentHosts}) {
      for (const bool clay : {false, true}) {
        auto p = prof(clay);
        p.cluster.osds_per_host = 3;
        p.cluster.pool.failure_domain = cluster::FailureDomain::kOsd;
        p.fault.level = ecfault::FaultLevel::kDevice;
        p.fault.count = count;
        p.fault.topology = topo;
        const double t = total_of(p);
        std::printf("fig2d %df %-10s %-4s total=%.0f norm=%.2f\n", count,
                    to_string(topo), clay ? "Clay" : "RS", t,
                    base > 0 ? t / base : 0);
      }
    }
  }
  std::printf("   [paper norm: 2f same 1.08/1.09, 2f diff ~1.08/1.12, 3f same 1.49/1.45, 3f diff 1.51/1.55]\n");
  return 0;
}
