// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper: it
// builds the experiment profiles, runs them through the ECFault
// Coordinator (three seeded runs each, like the paper), and prints rows in
// the paper's units — normalized recovery times for Fig. 2, a timeline for
// Fig. 3, WA factors for Table 3 — followed by the paper's values for
// comparison.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "ecfault/coordinator.h"
#include "ecfault/profile.h"
#include "util/bytes.h"
#include "util/stats.h"

namespace ecf::bench {

// The paper's default experiment (§4.1): 30 OSD hosts x 2 NVMe, RS(12,9)
// or Clay(12,9,11), 10,000 x 64 MB objects, pg_num 256, one host failure.
//
// One deliberate scale-down: `workload_scale` shrinks the object count
// (10,000 -> 1,000 by default) so every bench finishes in seconds of wall
// time; recovery *ratios* are scale-invariant here because the checking
// period is timer-dominated and the recovery period scales linearly in
// both numerator and denominator of every figure's normalization. The
// timeline bench (Fig. 3) runs the full 10,000-object workload to match
// the paper's absolute seconds.
inline ecfault::ExperimentProfile default_profile(bool clay,
                                                  double workload_scale = 0.1) {
  ecfault::ExperimentProfile p;
  p.name = clay ? "clay(12,9,11)" : "rs(12,9)";
  if (clay) {
    p.cluster.pool.ec_profile = {
        {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  } else {
    p.cluster.pool.ec_profile = {{"plugin", "jerasure"},
                                 {"technique", "reed_sol_van"},
                                 {"k", "9"},
                                 {"m", "3"}};
  }
  p.cluster.workload.num_objects = static_cast<std::uint64_t>(
      10000 * workload_scale);
  p.fault.level = ecfault::FaultLevel::kNode;  // one OSD-host failure
  p.fault.count = 1;
  p.runs = 3;
  return p;
}

inline std::string fmt(double v, int precision = 2) {
  return util::fmt_double(v, precision);
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace ecf::bench
