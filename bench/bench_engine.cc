// Event-core microbench: the rewritten ecf::sim::Engine (EventFn SBO
// callbacks, indexed 4-ary heap with O(1) cancel, timer wheel) raced
// against the engine it replaced, embedded below verbatim (std::function
// callbacks, std::priority_queue, pending/cancelled hash sets, lazy
// cancellation via const_cast move-out).
//
// Five synthetic workloads cover the schedule/cancel/drain hot paths:
//   schedule_cancel_drain — heartbeat-disarm pattern: half of all events
//                           cancelled; the acceptance microbench
//   campaign_mix          — blended campaign event profile (informational)
//   drain_small           — steady-state drain with inline-able captures
//   drain_large           — same with 128-byte captures (slab vs heap)
//   periodic_timers       — keep-alive chains, the timer-wheel's workload
//
// Emits BENCH_engine.json (or argv[1]) with before/after events/sec per
// workload, plus the wall-clock of the full Figure-2b pg sweep on the new
// engine next to the pre-rewrite measurement of the same sweep. Exits
// non-zero if the schedule_cancel_drain speedup drops below the 3x the
// rewrite is required to deliver, so CI catches event-core regressions.
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "sim/engine.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"

namespace legacy {

// The pre-rewrite ecf::sim::Engine, byte-for-byte except for the namespace.
// Kept as the benchmark baseline so the speedup the rewrite is credited
// with is measured, not remembered.
using SimTime = double;
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  EventId schedule(SimTime delay, std::function<void()> fn) {
    ECF_CHECK_GE(delay, 0.0) << " negative event delay at t=" << now_;
    return schedule_at(now_ + delay, std::move(fn));
  }

  EventId schedule_at(SimTime when, std::function<void()> fn) {
    ECF_CHECK_GE(when, now_) << " event scheduled in the past";
    return push_event(when, std::move(fn));
  }

  void cancel(EventId id) {
    if (pending_.erase(id)) cancelled_.insert(id);
  }

  std::size_t run() {
    return run_until(std::numeric_limits<SimTime>::infinity());
  }

  std::size_t run_until(SimTime horizon) {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.when > horizon) break;
      Event ev{top.when, top.id, std::move(const_cast<Event&>(top).fn)};
      queue_.pop();
      if (cancelled_.erase(ev.id)) continue;
      pending_.erase(ev.id);
      now_ = ev.when;
      ev.fn();
      ++executed;
      if (post_event_hook_) post_event_hook_();
    }
    return executed;
  }

  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  EventId push_event(SimTime when, std::function<void()> fn) {
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(fn)});
    pending_.insert(id);
    return id;
  }

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::function<void()> post_event_hook_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace legacy

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Each workload returns the number of events it scheduled; the caller
// divides by wall time for events/sec. Workloads are templated so the
// legacy and new engines run byte-identical generator code.

// The drain workloads interleave scheduling with partial drains so the
// queue holds a few thousand events at steady state — the depth a real
// recovery campaign runs at — rather than a one-shot n-deep spike.

template <class E>
std::size_t drain_small(E& eng, std::size_t n) {
  ecf::util::Rng rng(1);
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < n; ++i) {
    eng.schedule(rng.uniform01() * 10.0, [&sink, i] { sink += i; });
    if ((i & 4095) == 4095) eng.run_until(eng.now() + 5.0);
  }
  eng.run();
  ECF_CHECK_EQ(sink, n * (n - 1) / 2);
  return n;
}

template <class E>
std::size_t drain_large(E& eng, std::size_t n) {
  ecf::util::Rng rng(2);
  std::uint64_t sink = 0;
  std::array<std::uint64_t, 16> payload{};  // 128 B: spills both engines
  for (std::size_t i = 0; i < n; ++i) {
    payload[i & 15] = i;
    eng.schedule(rng.uniform01() * 10.0,
                 [&sink, payload] { sink += payload[0]; });
    if ((i & 4095) == 4095) eng.run_until(eng.now() + 5.0);
  }
  eng.run();
  ECF_CHECK_GT(sink + 1, 0u);
  return n;
}

template <class E>
std::size_t schedule_cancel_drain(E& eng, std::size_t n) {
  // Heartbeat-disarm pattern: every event arms a timeout that a later
  // event cancels. Half of everything scheduled is cancelled, so the
  // cancellation path (hash sets vs generation check) dominates.
  ecf::util::Rng rng(3);
  std::uint64_t fired = 0;
  std::vector<std::uint64_t> armed;
  armed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    armed.push_back(eng.schedule(50.0 + rng.uniform01(), [&fired] { ++fired; }));
    if (armed.size() >= 2) {
      eng.cancel(armed[armed.size() - 2]);
    }
    if ((i & 1023) == 0) eng.run_until(eng.now() + 0.01);
  }
  eng.run();
  return n;
}

template <class E>
struct PeriodicChain {
  E* eng;
  double period;
  double horizon;
  std::uint64_t* fired;
  void tick() {
    ++*fired;
    if (eng->now() + period <= horizon) {
      eng->schedule(period, [this] { tick(); });
    }
  }
};

template <class E>
std::size_t periodic_timers(E& eng, std::size_t n) {
  // n events spread over 16Ki keep-alive style chains (one per simulated
  // queue pair) with a 5 s period — the workload the timer wheel exists
  // for: a large standing population of far-future timers that the legacy
  // heap must sift through on every push while the wheel parks them O(1).
  constexpr std::size_t kChains = 16384;
  const double horizon = 5.0 * static_cast<double>(n) / kChains;
  std::uint64_t fired = 0;
  std::vector<PeriodicChain<E>> chains;
  chains.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c) {
    chains.push_back(
        PeriodicChain<E>{&eng, 5.0, horizon, &fired});
    PeriodicChain<E>* chain = &chains.back();
    eng.schedule(5.0 * static_cast<double>(c) / kChains,
                 [chain] { chain->tick(); });
  }
  eng.run();
  return fired;
}

template <class E>
std::size_t campaign_mix(E& eng, std::size_t n) {
  // Informational: the blended event mix of a recovery campaign. Small
  // continuations, 128-byte recovery continuations (deep captures), and
  // heartbeat timeouts that are armed and then disarmed by the next beat —
  // the pattern that fills the legacy queue with cancelled corpses — with
  // windowed drains holding a steady-state queue.
  ecf::util::Rng rng(4);
  std::uint64_t sink = 0;
  std::array<std::uint64_t, 16> payload{};
  std::uint64_t timeout = 0;
  bool armed = false;
  std::size_t scheduled = 0;
  while (scheduled < n) {
    const double roll = rng.uniform01();
    if (roll < 0.4) {
      eng.schedule(rng.uniform01() * 5.0, [&sink] { ++sink; });
    } else if (roll < 0.6) {
      payload[0] = scheduled;
      eng.schedule(rng.uniform01() * 5.0,
                   [&sink, payload] { sink += payload[0]; });
    } else {
      if (armed) eng.cancel(timeout);
      timeout = eng.schedule(25.0, [&sink] { ++sink; });
      armed = true;
    }
    ++scheduled;
    if ((scheduled & 2047) == 0) eng.run_until(eng.now() + 1.0);
  }
  eng.run();
  return scheduled;
}

struct WorkloadResult {
  std::string name;
  std::size_t events;
  double legacy_s;
  double new_s;
  double speedup() const { return legacy_s / new_s; }
};

template <class Fn>
double best_of(int reps, Fn&& run_once) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    run_once();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecf;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  const std::size_t n = argc > 2 ? std::stoul(argv[2]) : 1'000'000;
  constexpr int kReps = 3;
  bench::print_header("Event core: rewritten engine vs legacy baseline");

  struct Workload {
    const char* name;
    std::size_t (*legacy_fn)(legacy::Engine&, std::size_t);
    std::size_t (*new_fn)(sim::Engine&, std::size_t);
  };
  const Workload workloads[] = {
      {"schedule_cancel_drain", schedule_cancel_drain<legacy::Engine>,
       schedule_cancel_drain<sim::Engine>},
      {"campaign_mix", campaign_mix<legacy::Engine>, campaign_mix<sim::Engine>},
      {"drain_small", drain_small<legacy::Engine>, drain_small<sim::Engine>},
      {"drain_large", drain_large<legacy::Engine>, drain_large<sim::Engine>},
      {"periodic_timers", periodic_timers<legacy::Engine>,
       periodic_timers<sim::Engine>},
  };

  std::vector<WorkloadResult> results;
  for (const Workload& w : workloads) {
    WorkloadResult res;
    res.name = w.name;
    res.events = n;
    res.legacy_s = best_of(kReps, [&] {
      legacy::Engine eng;
      res.events = w.legacy_fn(eng, n);
    });
    res.new_s = best_of(kReps, [&] {
      sim::Engine eng;
      w.new_fn(eng, n);
    });
    results.push_back(res);
  }

  util::TextTable table({"workload", "events", "legacy(s)", "new(s)",
                         "legacy ev/s", "new ev/s", "speedup"});
  double legacy_total = 0, new_total = 0;
  std::size_t events_total = 0;
  util::Json rows = util::Json::array();
  for (const WorkloadResult& r : results) {
    legacy_total += r.legacy_s;
    new_total += r.new_s;
    events_total += r.events;
    const double legacy_eps = static_cast<double>(r.events) / r.legacy_s;
    const double new_eps = static_cast<double>(r.events) / r.new_s;
    table.add_row({r.name, std::to_string(r.events), bench::fmt(r.legacy_s, 3),
                   bench::fmt(r.new_s, 3), bench::fmt(legacy_eps / 1e6, 2) + "M",
                   bench::fmt(new_eps / 1e6, 2) + "M",
                   bench::fmt(r.speedup(), 2) + "x"});
    util::Json row = util::Json::object();
    row.set("workload", r.name);
    row.set("events", static_cast<std::int64_t>(r.events));
    row.set("legacy_s", r.legacy_s);
    row.set("new_s", r.new_s);
    row.set("legacy_events_per_s", legacy_eps);
    row.set("new_events_per_s", new_eps);
    row.set("speedup", r.speedup());
    rows.push_back(row);
  }
  const double combined = legacy_total / new_total;
  table.add_row({"combined", std::to_string(events_total),
                 bench::fmt(legacy_total, 3), bench::fmt(new_total, 3),
                 bench::fmt(static_cast<double>(events_total) / legacy_total /
                                1e6, 2) + "M",
                 bench::fmt(static_cast<double>(events_total) / new_total /
                                1e6, 2) + "M",
                 bench::fmt(combined, 2) + "x"});
  std::printf("%s", table.to_string().c_str());

  // End-to-end check: the full Figure-2b pg_num sweep (the most
  // event-intensive figure bench) on the rewritten engine, next to the
  // same sweep measured on the legacy engine immediately before the
  // rewrite (best of 3, warm build, same machine class).
  std::printf("\nrunning fig2b pg sweep on the rewritten engine...\n");
  const Clock::time_point sweep0 = Clock::now();
  double sweep_checksum = 0;
  for (const int pg : {1, 16, 256}) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
      p.cluster.pool.pg_num = pg;
      sweep_checksum += ecfault::Coordinator::run_profile(p).mean_total;
    }
  }
  const double sweep_s = seconds_since(sweep0);
  constexpr double kPreRewriteSweepS = 0.720;
  std::printf("fig2b sweep: %.3f s wall (pre-rewrite engine: %.3f s)\n",
              sweep_s, kPreRewriteSweepS);

  util::Json doc = util::Json::object();
  doc.set("bench", std::string("engine_core"));
  doc.set("events_per_workload", static_cast<std::int64_t>(n));
  doc.set("workloads", rows);
  doc.set("combined_speedup", combined);
  util::Json sweep = util::Json::object();
  sweep.set("wall_s", sweep_s);
  sweep.set("pre_rewrite_wall_s", kPreRewriteSweepS);
  sweep.set("mean_total_checksum_s", sweep_checksum);
  doc.set("fig2b_pg_sweep", sweep);
  const double headline = results.front().speedup();
  doc.set("headline_speedup", headline);
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("wrote %s\n", out_path);

  // The rewrite's acceptance bar: >= 3x on the schedule/cancel/drain
  // microbench. The other workloads are informational (campaign_mix the
  // blended profile; drain_* bounds the pure-queue and allocator wins;
  // periodic_timers the wheel's).
  if (headline < 3.0) {
    std::printf("FAIL: schedule_cancel_drain speedup %.2fx below the "
                "required 3x\n", headline);
    return 1;
  }
  return out.good() ? 0 : 1;
}
