// Fabric transport bench: the default experiment run over the three
// transport models — the ideal zero-latency fabric (the pre-fabric
// baseline), NVMe/TCP, and NVMe/RDMA — for RS(12,9) and Clay(12,9,11).
//
// Prints a comparison table and emits a machine-readable perf record
// (BENCH_fabric.json, or the path given as argv[1]) with absolute recovery
// times and the transport-wait attribution, so CI can track how much of
// recovery each transport model charges to the wire.
#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "util/json.h"

using namespace ecf;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fabric.json";
  bench::print_header("NVMe-oF transport models (default experiment, 10%)");

  struct Transport {
    const char* name;
    sim::FabricParams params;
  };
  const Transport transports[] = {
      {"ideal", sim::FabricParams{}},
      {"tcp", sim::tcp_fabric()},
      {"rdma", sim::rdma_fabric()},
  };

  util::Json runs = util::Json::array();
  util::TextTable table({"transport", "code", "total(s)", "recovery(s)",
                         "transport wait(s)", "wait/recovery %"});
  for (const Transport& t : transports) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 0.1);
      p.cluster.hw.fabric = t.params;
      p.runs = 1;
      const auto r = ecfault::Coordinator::run_experiment(p);
      const double wait = r.report.fabric_transport_wait_s;
      const double rec = r.report.ec_recovery_period();
      table.add_row({t.name, clay ? "Clay(12,9,11)" : "RS(12,9)",
                     bench::fmt(r.report.total(), 1), bench::fmt(rec, 1),
                     bench::fmt(wait, 1),
                     bench::fmt(rec > 0 ? 100 * wait / rec : 0, 1)});

      util::Json row = util::Json::object();
      row.set("transport", std::string(t.name));
      row.set("code", std::string(clay ? "clay(12,9,11)" : "rs(12,9)"));
      row.set("total_s", r.report.total());
      row.set("recovery_s", rec);
      row.set("transport_wait_s", wait);
      row.set("fabric_retries", static_cast<std::int64_t>(
                                    r.report.fabric_retries));
      row.set("fabric_reconnects", static_cast<std::int64_t>(
                                       r.report.fabric_reconnects));
      runs.push_back(row);
    }
  }
  std::printf("%s", table.to_string().c_str());

  util::Json doc = util::Json::object();
  doc.set("bench", std::string("fabric_transports"));
  doc.set("runs", runs);
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path);
  return out.good() ? 0 : 1;
}
