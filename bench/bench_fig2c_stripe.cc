// Figure 2c: impact of stripe_unit on EC recovery time.
// stripe_unit in {4 KiB, 4 MiB, 64 MiB} x {RS, Clay}, pg_num = 256;
// normalized to RS @ 4 KiB. Expected shape: Clay at 4 KiB is pathological
// (sub-packetization turns each encoding unit into 81 ~50-byte sub-chunks);
// both codes degrade badly at 64 MiB (division-and-padding makes every
// chunk a zero-padded 64 MiB unit, ~9x the recovery I/O).
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header("Figure 2c: Stripe unit vs EC recovery time (pg_num=256)");

  struct Row {
    std::uint64_t su;
    double paper_rs;
    double paper_clay;
  };
  const Row rows[] = {{4 * util::KiB, 1.00, 4.26},
                      {4 * util::MiB, 1.08, 1.12},
                      {64 * util::MiB, 3.29, 3.45}};

  double base = 0;
  {
    ecfault::ExperimentProfile p = bench::default_profile(false, 1.0);
    p.cluster.pool.stripe_unit = ecf::util::Bytes(4 * util::KiB);
    base = ecfault::Coordinator::run_profile(p).mean_total;
  }

  util::TextTable table({"stripe_unit", "code", "recovery(s)", "normalized",
                         "paper"});
  for (const Row& r : rows) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
      p.cluster.pool.stripe_unit = ecf::util::Bytes(r.su);
      const auto c = ecfault::Coordinator::run_profile(p);
      table.add_row({util::format_bytes(r.su),
                     clay ? "Clay(12,9,11)" : "RS(12,9)",
                     bench::fmt(c.mean_total, 0),
                     bench::fmt(c.mean_total / base, 2),
                     bench::fmt(clay ? r.paper_clay : r.paper_rs, 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper finding: both codes are highly sensitive to stripe_unit —\n"
      "Clay @ 4KiB can be ~4x slower than the best case (sub-packetization\n"
      "overhead), and @ 64MiB zero-padding inflates recovery I/O for both.\n"
      "Normalization: RS @ 4 KiB. (The Clay@64MiB paper value is read off\n"
      "the chart; the text only notes both codes are 'relatively high'.)\n");
  return 0;
}
