// Ablation: hardware profile sensitivity. Re-runs the default experiment
// (RS and Clay, single host failure) on the three built-in hardware
// profiles. Shows which conclusions are testbed-dependent: on fast NVMe
// the byte-bound terms shrink and the protocol timers dominate even more;
// on HDD the seek-bound sub-chunk reads hurt Clay disproportionately.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header("Ablation: hardware profiles (default experiment)");

  struct Profile {
    const char* name;
    sim::HardwareProfile hw;
  };
  const Profile profiles[] = {
      {"aws_m5_like (paper testbed)", sim::aws_m5_like()},
      {"fast_nvme", sim::fast_nvme()},
      {"hdd_cluster", sim::hdd_cluster()},
  };

  util::TextTable table({"hardware", "code", "total(s)", "checking %",
                         "ec recovery(s)"});
  for (const Profile& hw : profiles) {
    for (const bool clay : {false, true}) {
      ecfault::ExperimentProfile p = bench::default_profile(clay, 1.0);
      p.cluster.hw = hw.hw;
      p.runs = 1;
      const auto r = ecfault::Coordinator::run_experiment(p);
      table.add_row({hw.name, clay ? "Clay(12,9,11)" : "RS(12,9)",
                     bench::fmt(r.report.total(), 0),
                     bench::fmt(100 * r.report.checking_fraction(), 1),
                     bench::fmt(r.report.ec_recovery_period(), 0)});
    }
  }
  std::printf("%s", table.to_string().c_str());

  bench::print_header("Ablation: Clay @ 4KiB stripe unit across hardware");
  util::TextTable clay4k({"hardware", "total(s)", "vs RS same hw"});
  for (const Profile& hw : profiles) {
    ecfault::ExperimentProfile pc = bench::default_profile(true, 1.0);
    pc.cluster.hw = hw.hw;
    pc.cluster.pool.stripe_unit = ecf::util::Bytes(4 * util::KiB);
    pc.runs = 1;
    ecfault::ExperimentProfile pr = bench::default_profile(false, 1.0);
    pr.cluster.hw = hw.hw;
    pr.cluster.pool.stripe_unit = ecf::util::Bytes(4 * util::KiB);
    pr.runs = 1;
    const auto rc = ecfault::Coordinator::run_experiment(pc);
    const auto rr = ecfault::Coordinator::run_experiment(pr);
    clay4k.add_row({hw.name, bench::fmt(rc.report.total(), 0),
                    bench::fmt(rc.report.total() / rr.report.total(), 2)});
  }
  std::printf("%s", clay4k.to_string().c_str());
  return 0;
}
