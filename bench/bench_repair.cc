// Repair-bandwidth campaign across code families: one host failure over
// the paper's default cluster, recovered with pool.dag_recovery on, so
// structured repair DAGs (RS helper partial sums, LRC group relay) execute
// stage by stage while repair-efficient reads (Hitchhiker half-chunks,
// Clay sub-chunks) shrink what crosses the fabric at all.
//
// Prints bytes-on-wire / bytes-read / recovery time per family, normalized
// against RS(12,9), and emits BENCH_repair.json (or argv[1]) for CI. Exits
// nonzero if Hitchhiker(12,9) fails to ship measurably fewer bytes on the
// wire than same-(n,k) RS — the ECDAG PR's acceptance gate.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "util/json.h"

using namespace ecf;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_repair.json";
  bench::print_header(
      "Repair bandwidth by code family (host failure, DAG-staged recovery)");

  struct Family {
    const char* name;
    std::map<std::string, std::string> profile;
  };
  const Family families[] = {
      {"rs(12,9)",
       {{"plugin", "jerasure"}, {"technique", "reed_sol_van"},
        {"k", "9"}, {"m", "3"}}},
      {"clay(12,9,11)",
       {{"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}}},
      {"lrc(9,3,3)",
       {{"plugin", "lrc"}, {"k", "9"}, {"l", "3"}, {"g", "3"}}},
      {"shec(9,4,2)",
       {{"plugin", "shec"}, {"k", "9"}, {"m", "4"}, {"c", "2"}}},
      {"hitchhiker(12,9)",
       {{"plugin", "hitchhiker"}, {"k", "9"}, {"m", "3"}}},
  };

  util::Json runs = util::Json::array();
  util::TextTable table({"family", "wire(GB)", "read(GB)", "written(GB)",
                         "wire vs RS", "recovery(s)"});
  double rs_wire = 0;
  double hh_wire = 0;
  constexpr double kGB = 1e9;
  for (const Family& f : families) {
    ecfault::ExperimentProfile p = bench::default_profile(false, 0.1);
    p.name = f.name;
    p.cluster.pool.ec_profile = f.profile;
    p.cluster.pool.dag_recovery = true;
    p.runs = 1;
    const auto r = ecfault::Coordinator::run_experiment(p);
    const double wire =
        static_cast<double>(r.report.bytes_on_wire_for_recovery);
    const double read = static_cast<double>(r.report.bytes_read_for_recovery);
    const double written =
        static_cast<double>(r.report.bytes_written_for_recovery);
    const double rec = r.report.ec_recovery_period();
    if (std::string(f.name) == "rs(12,9)") rs_wire = wire;
    if (std::string(f.name) == "hitchhiker(12,9)") hh_wire = wire;
    table.add_row({f.name, bench::fmt(wire / kGB), bench::fmt(read / kGB),
                   bench::fmt(written / kGB),
                   bench::fmt(rs_wire > 0 ? wire / rs_wire : 1.0),
                   bench::fmt(rec, 1)});

    util::Json row = util::Json::object();
    row.set("family", std::string(f.name));
    row.set("bytes_on_wire", r.report.bytes_on_wire_for_recovery);
    row.set("bytes_read", r.report.bytes_read_for_recovery);
    row.set("bytes_written", r.report.bytes_written_for_recovery);
    row.set("recovery_s", rec);
    row.set("total_s", r.report.total());
    row.set("objects_repaired", r.report.objects_repaired);
    row.set("wire_vs_rs", rs_wire > 0 ? wire / rs_wire : 1.0);
    runs.push_back(row);
  }
  std::printf("%s", table.to_string().c_str());

  util::Json doc = util::Json::object();
  doc.set("bench", std::string("repair_bandwidth"));
  doc.set("dag_recovery", true);
  doc.set("runs", runs);
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path);

  if (!(hh_wire > 0) || !(rs_wire > 0) || hh_wire >= rs_wire) {
    std::printf("FAIL: hitchhiker wire bytes (%.3e) not below RS (%.3e)\n",
                hh_wire, rs_wire);
    return 1;
  }
  std::printf("hitchhiker ships %.1f%% of RS repair bytes on the wire\n",
              100.0 * hh_wire / rs_wire);
  return out.good() ? 0 : 1;
}
