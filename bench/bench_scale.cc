// Million-object campaign scaling bench: sharded event lanes, pooled
// per-op state, and zipfian foreground load at 300 hosts.
//
// Section 1 — event lanes. A churn workload (PG-keyed lane scopes, mixed
// immediate events / in-lane continuations / armed-then-cancelled
// timeouts) swept across lane counts {1, 4, 16, 64} on ONE engine, then
// drained as N independent single-lane engines on N threads (one shard
// per thread, nothing shared — the deterministic campaign-worker layout).
// In-engine lanes are roughly throughput-neutral on big-L3 hardware (the
// whole heap working set fits in cache either way); what they buy is a
// bounded per-lane footprint and the shard decomposition, and the shard
// drain is where the aggregate >= 2x events/s requirement is earned.
// Aggregate throughput is reported two ways: wall-clock (what this
// machine actually delivered — bounded by its core count) and capacity
// (sum of per-shard rates over each shard's own thread CPU time). The
// shards share no engine state, heap arena, or lock, so capacity is what
// wall-clock becomes on any box with >= N cores; the 2x gate checks
// capacity so a 1-core CI container measures the decomposition, not the
// scheduler.
//
// Section 2 — campaign ladder. Full recovery campaigns (host failure,
// peering, batched repair, zipfian client load with latency percentiles)
// at 10k / 100k / 1M objects on 300 hosts x 2 OSDs. Reports wall clock,
// events/s, peak RSS, and the slab-pool high-water marks that prove per-op
// state stayed O(concurrency), not O(ops).
//
// Emits BENCH_scale.json (or argv[1]). argv[2] caps the ladder's object
// count (default 1,000,000) for quick local runs. Exit is non-zero if the
// shard-drain speedup drops below 2x or the top ladder rung misses the
// <= 30 s wall / <= 2 GiB RSS budget, so CI catches scale regressions.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace ecf;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

long peak_rss_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss / 1024;  // Linux reports KiB
}

// CPU time consumed by the calling thread only — excludes time spent
// descheduled, so per-shard rates stay meaningful when threads
// oversubscribe the cores.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// Campaign-shaped churn: every op pins a PG lane, then schedules either an
// immediate completion, a two-hop continuation (which inherits the lane),
// or a timeout that is armed and immediately disarmed — the heartbeat
// pattern. Windowed drains hold a steady-state queue. Returns events
// executed.
std::uint64_t churn(sim::Engine& eng, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sim::Engine::LaneScope lane(eng, 0x50470000ull + rng.uniform(4096));
    const double roll = rng.uniform01();
    if (roll < 0.5) {
      eng.schedule(rng.uniform01() * 5.0, [&sink] { ++sink; });
    } else if (roll < 0.8) {
      eng.schedule(rng.uniform01() * 5.0, [&eng, &sink] {
        eng.schedule(0.25, [&sink] { ++sink; });  // stays in the op's lane
      });
    } else {
      eng.cancel(eng.schedule(25.0, [&sink] { ++sink; }));
    }
    if ((i & 2047) == 2047) eng.run_until(eng.now() + 1.0);
  }
  eng.run();
  ECF_CHECK_GT(sink, 0u);
  return eng.stats().executed;
}

template <class Fn>
double best_of(int reps, Fn&& run_once) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    run_once();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct CampaignRow {
  std::uint64_t objects = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  double events_per_s = 0;
  long rss_mib = 0;
  bool complete = false;
  std::uint64_t client_ops = 0;
  double client_p99_ms = 0;
  double degraded_p99_ms = 0;
  cluster::Cluster::PoolStats pools;
};

CampaignRow run_campaign(std::uint64_t objects) {
  cluster::ClusterConfig cfg;
  cfg.num_hosts = 300;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 2048;
  cfg.workload.num_objects = objects;
  cfg.workload.object_size = ecf::util::Bytes(4 * util::MiB);
  cfg.protocol.down_out_interval_s = 30.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.engine_lanes = 16;
  cfg.client.ops_per_s = 2000.0;
  cfg.client.read_fraction = 0.9;
  cfg.client.op_bytes = ecf::util::Bytes(64 * util::KiB);
  cfg.client.zipf_theta = 0.99;
  cfg.client.horizon_s = ecf::util::SimSec(180.0);

  cluster::Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  const Clock::time_point t0 = Clock::now();
  const cluster::RecoveryReport r = cl.run_to_recovery();
  CampaignRow row;
  row.objects = objects;
  row.wall_s = seconds_since(t0);
  row.events = r.engine_stats.executed;
  row.events_per_s = static_cast<double>(row.events) / row.wall_s;
  row.rss_mib = peak_rss_mib();
  row.complete = r.complete;
  row.client_ops = r.client_ops;
  row.client_p99_ms = 1e3 * r.client_percentile(0.99);
  row.degraded_p99_ms = 1e3 * r.client_degraded_read_lat.percentile(0.99);
  row.pools = cl.pool_stats();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_scale.json";
  const std::uint64_t max_objects =
      argc > 2 ? std::stoull(argv[2]) : 1'000'000;
  constexpr int kReps = 3;
  bench::print_header("Scale: event lanes, shard drain, campaign ladder");

  // --- Section 1a: in-engine lane sweep (same churn, one engine) ---
  const std::size_t n = max_objects >= 1'000'000 ? 2'000'000 : 500'000;
  util::TextTable lane_table({"lanes", "events", "best(s)", "ev/s"});
  util::Json lane_rows = util::Json::array();
  double single_lane_eps = 0;
  for (const std::size_t lanes : {1, 4, 16, 64}) {
    std::uint64_t executed = 0;
    const double best = best_of(kReps, [&] {
      sim::Engine eng;
      eng.set_lane_count(lanes);
      executed = churn(eng, n, /*seed=*/11);
    });
    const double eps = static_cast<double>(executed) / best;
    if (lanes == 1) single_lane_eps = eps;
    lane_table.add_row({std::to_string(lanes), std::to_string(executed),
                        bench::fmt(best, 3), bench::fmt(eps / 1e6, 2) + "M"});
    util::Json row = util::Json::object();
    row.set("lanes", static_cast<std::int64_t>(lanes));
    row.set("events", static_cast<std::int64_t>(executed));
    row.set("best_s", best);
    row.set("events_per_s", eps);
    lane_rows.push_back(row);
  }
  std::printf("%s", lane_table.to_string().c_str());

  // --- Section 1b: parallel shard drain (one engine per thread) ---
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t shards = std::clamp<std::size_t>(hw, 4, 8);
  std::vector<std::uint64_t> shard_executed(shards, 0);
  std::vector<double> shard_cpu_s(shards, 0);
  std::vector<double> shard_best_eps(shards, 0);
  const double shard_wall = best_of(kReps, [&] {
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        sim::Engine eng;  // thread-confined: no shared engine state
        const double cpu0 = thread_cpu_seconds();
        shard_executed[s] = churn(eng, n / shards, /*seed=*/100 + s);
        shard_cpu_s[s] = thread_cpu_seconds() - cpu0;
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t s = 0; s < shards; ++s) {
      shard_best_eps[s] = std::max(
          shard_best_eps[s],
          static_cast<double>(shard_executed[s]) / shard_cpu_s[s]);
    }
  });
  std::uint64_t aggregate_events = 0;
  double capacity_eps = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    aggregate_events += shard_executed[s];
    capacity_eps += shard_best_eps[s];
  }
  const double wall_eps = static_cast<double>(aggregate_events) / shard_wall;
  const double lane_speedup = capacity_eps / single_lane_eps;
  std::printf("shard drain: %zu shards on %u core(s): %.2fM ev/s wall, "
              "%.2fM ev/s capacity (%.2fx single-lane single-engine)\n",
              shards, hw, wall_eps / 1e6, capacity_eps / 1e6, lane_speedup);

  // --- Section 2: campaign ladder ---
  std::vector<CampaignRow> rows;
  for (const std::uint64_t objects : {std::uint64_t{10'000},
                                      std::uint64_t{100'000},
                                      std::uint64_t{1'000'000}}) {
    if (objects > max_objects) continue;
    rows.push_back(run_campaign(objects));
  }
  util::TextTable table({"objects", "wall(s)", "events", "ev/s", "RSS(MiB)",
                         "client ops", "p99(ms)", "op slabs", "batch slabs"});
  util::Json campaign_rows = util::Json::array();
  for (const CampaignRow& r : rows) {
    table.add_row({std::to_string(r.objects), bench::fmt(r.wall_s, 2),
                   std::to_string(r.events),
                   bench::fmt(r.events_per_s / 1e6, 2) + "M",
                   std::to_string(r.rss_mib), std::to_string(r.client_ops),
                   bench::fmt(r.client_p99_ms, 1),
                   std::to_string(r.pools.client_op_slabs) + "/" +
                       std::to_string(r.pools.client_op_acquired),
                   std::to_string(r.pools.repair_batch_slabs) + "/" +
                       std::to_string(r.pools.repair_batch_acquired)});
    util::Json row = util::Json::object();
    row.set("objects", static_cast<std::int64_t>(r.objects));
    row.set("wall_s", r.wall_s);
    row.set("events", static_cast<std::int64_t>(r.events));
    row.set("events_per_s", r.events_per_s);
    row.set("peak_rss_mib", static_cast<std::int64_t>(r.rss_mib));
    row.set("complete", r.complete);
    row.set("client_ops", static_cast<std::int64_t>(r.client_ops));
    row.set("client_p99_ms", r.client_p99_ms);
    row.set("degraded_p99_ms", r.degraded_p99_ms);
    row.set("client_op_slabs",
            static_cast<std::int64_t>(r.pools.client_op_slabs));
    row.set("client_op_acquired",
            static_cast<std::int64_t>(r.pools.client_op_acquired));
    row.set("repair_batch_slabs",
            static_cast<std::int64_t>(r.pools.repair_batch_slabs));
    row.set("repair_batch_acquired",
            static_cast<std::int64_t>(r.pools.repair_batch_acquired));
    campaign_rows.push_back(row);
  }
  std::printf("%s", table.to_string().c_str());

  util::Json doc = util::Json::object();
  doc.set("bench", std::string("scale"));
  doc.set("churn_events", static_cast<std::int64_t>(n));
  doc.set("lane_sweep", lane_rows);
  util::Json shard = util::Json::object();
  shard.set("shards", static_cast<std::int64_t>(shards));
  shard.set("cores", static_cast<std::int64_t>(hw));
  shard.set("wall_s", shard_wall);
  shard.set("wall_events_per_s", wall_eps);
  shard.set("aggregate_events_per_s", capacity_eps);
  shard.set("lane_speedup", lane_speedup);
  doc.set("shard_drain", shard);
  doc.set("campaigns", campaign_rows);
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("wrote %s\n", out_path);

  // Acceptance gates: shard parallelism must at least double aggregate
  // event throughput, and the top ladder rung must stay inside the
  // campaign budget (complete recovery, <= 30 s wall, <= 2 GiB RSS).
  bool ok = out.good();
  if (lane_speedup < 2.0) {
    std::printf("FAIL: shard-drain speedup %.2fx below the required 2x\n",
                lane_speedup);
    ok = false;
  }
  for (const CampaignRow& r : rows) {
    if (!r.complete) {
      std::printf("FAIL: %llu-object campaign did not complete recovery\n",
                  static_cast<unsigned long long>(r.objects));
      ok = false;
    }
  }
  if (!rows.empty() && rows.back().objects == 1'000'000) {
    const CampaignRow& top = rows.back();
    if (top.wall_s > 30.0) {
      std::printf("FAIL: 1M-object campaign took %.1f s (budget 30 s)\n",
                  top.wall_s);
      ok = false;
    }
    if (top.rss_mib > 2048) {
      std::printf("FAIL: peak RSS %ld MiB over the 2 GiB budget\n",
                  top.rss_mib);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
