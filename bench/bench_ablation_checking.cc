// Ablation: what actually makes up the "system checking period"?
//
// DESIGN.md calls out that the checking period is dominated by
// mon_osd_down_out_interval (the monitor's 600 s down->out timer), not by
// peering work — the paper's §4.3 observation that optimizing EC recovery
// alone "might not be enough in practice". This ablation sweeps the timer
// and shows the checking fraction collapsing with it, plus the detection
// (heartbeat-grace) contribution.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header(
      "Ablation: mon_osd_down_out_interval vs checking period");

  util::TextTable table({"down_out_interval(s)", "total(s)", "checking(s)",
                         "checking %"});
  for (const double interval : {0.0, 60.0, 300.0, 600.0, 1200.0}) {
    ecfault::ExperimentProfile p = bench::default_profile(false, 1.0);
    p.cluster.protocol.down_out_interval_s = interval;
    p.runs = 1;
    const auto r = ecfault::Coordinator::run_experiment(p);
    table.add_row({bench::fmt(interval, 0), bench::fmt(r.report.total(), 0),
                   bench::fmt(r.report.checking_period(), 0),
                   bench::fmt(100 * r.report.checking_fraction(), 1)});
  }
  std::printf("%s", table.to_string().c_str());

  bench::print_header("Ablation: heartbeat grace vs detection latency");
  util::TextTable det({"grace(s)", "failure->detection(s)"});
  for (const double grace : {5.0, 20.0, 60.0}) {
    ecfault::ExperimentProfile p = bench::default_profile(false, 0.02);
    p.cluster.protocol.heartbeat_grace_s = grace;
    p.runs = 1;
    const auto r = ecfault::Coordinator::run_experiment(p);
    det.add_row({bench::fmt(grace, 0),
                 bench::fmt(r.report.detection_time - r.report.failure_time, 1)});
  }
  std::printf("%s", det.to_string().c_str());
  std::printf(
      "\nTakeaway: the checking period is timer-dominated; a configuration\n"
      "study that only measures decode bandwidth misses ~half the recovery\n"
      "cycle. (This is the design rationale for modeling mon timers at all.)\n");
  return 0;
}
