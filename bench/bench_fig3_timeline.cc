// Figure 3: timeline of one entire system recovery cycle, plus the §4.3
// claim that the System Checking Period accounts for 41%-58% of the total
// depending on workload size.
//
// Reproduces: detection at t=0, EC recovery starting after a long checking
// period (~600 s, dominated by mon_osd_down_out_interval), recovery
// finishing later; checking fraction ~53.7% at the default workload and
// 41-58% across workload sizes.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ecf;

int main() {
  bench::print_header(
      "Figure 3: Timeline of System Recovery (RS(12,9), single host failure)");

  // Full-size default workload for absolute comparability.
  ecfault::ExperimentProfile p = bench::default_profile(false, 1.0);
  p.runs = 1;
  const ecfault::ExperimentResult r = ecfault::Coordinator::run_experiment(p);

  std::printf("%s", r.timeline.render().c_str());
  std::printf("\nPaper:     detected 0s, EC recovery 602s..1128s; checking = 53.7%%\n");
  std::printf("Measured:  detected 0s, EC recovery %.0fs..%.0fs; checking = %.1f%%\n",
              r.timeline.recovery_start, r.timeline.recovery_end,
              100.0 * r.timeline.checking_fraction());

  bench::print_header(
      "4.3: checking fraction vs workload size (paper: 41%-58%)");
  util::TextTable table({"objects", "total(s)", "checking(s)", "ec_recovery(s)",
                         "checking %"});
  for (const std::uint64_t objects :
       {2500ull, 5000ull, 8000ull, 10000ull, 15000ull, 20000ull}) {
    ecfault::ExperimentProfile sweep = bench::default_profile(false, 1.0);
    sweep.cluster.workload.num_objects = objects;
    sweep.runs = 1;
    const auto res = ecfault::Coordinator::run_experiment(sweep);
    table.add_row({std::to_string(objects),
                   bench::fmt(res.report.total(), 0),
                   bench::fmt(res.report.checking_period(), 0),
                   bench::fmt(res.report.ec_recovery_period(), 0),
                   bench::fmt(100.0 * res.report.checking_fraction(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
