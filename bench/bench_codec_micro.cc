// Codec micro-benchmarks (google-benchmark): encode/decode/repair
// throughput of the from-scratch GF(256), RS, Clay and LRC implementations.
// Supporting material — the paper's evaluation is system-level, but these
// numbers justify the simulator's CPU cost parameters (HardwareProfile::cpu).
//
// Per-variant benchmarks (BM_GfMulAcc/<variant>, BM_RsEncode/<variant>) are
// registered at startup for every kernel the CPU supports, so one run shows
// the scalar -> SWAR -> SSSE3 -> AVX2 -> GFNI trajectory. Run with
//   --benchmark_out=BENCH_codec.json --benchmark_out_format=json
// for the machine-readable output the repo tracks across PRs (the
// bench-smoke ctest label does this automatically).
#include <benchmark/benchmark.h>

#include <string>

#include "ec/clay.h"
#include "ec/lrc.h"
#include "ec/rs.h"
#include "gf/gf256.h"
#include "gf/gf_kernels.h"
#include "gf/matrix.h"
#include "util/rng.h"

namespace {

using namespace ecf;

std::vector<ec::Buffer> make_chunks(const ec::ErasureCode& code,
                                    std::size_t chunk_size) {
  util::Rng rng(7);
  std::vector<ec::Buffer> chunks(code.n(), ec::Buffer(chunk_size, 0));
  for (std::size_t i = 0; i < code.k(); ++i) {
    for (auto& b : chunks[i]) b = static_cast<gf::Byte>(rng.uniform(256));
  }
  return chunks;
}

void BM_GfMulAcc(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<gf::Byte> src(len, 0x5a), dst(len, 0x17);
  for (auto _ : state) {
    gf::mul_acc(0x3c, src.data(), dst.data(), len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfMulAcc)->Arg(4096)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const ec::RsCode code(12, 9);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  auto chunks = make_chunks(code, chunk);
  for (auto _ : state) {
    code.encode(chunks);
    benchmark::DoNotOptimize(chunks[11].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * 9));
}
BENCHMARK(BM_RsEncode)->Arg(4096)->Arg(1 << 20);

void BM_RsDecode3(benchmark::State& state) {
  const ec::RsCode code(12, 9);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  auto chunks = make_chunks(code, chunk);
  code.encode(chunks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(chunks, {0, 5, 11}));
    benchmark::DoNotOptimize(chunks[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * 3));
}
BENCHMARK(BM_RsDecode3)->Arg(4096)->Arg(1 << 20);

void BM_ClayEncode(benchmark::State& state) {
  const ec::ClayCode code(12, 9, 11);
  const auto chunk = static_cast<std::size_t>(state.range(0)) * code.alpha();
  auto chunks = make_chunks(code, chunk);
  for (auto _ : state) {
    code.encode(chunks);
    benchmark::DoNotOptimize(chunks[11].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * 9));
}
// Sub-chunk sizes 64B (4KiB-unit regime) and 12.8KiB (1MiB-unit regime).
BENCHMARK(BM_ClayEncode)->Arg(64)->Arg(12800);

void BM_ClayDecode1(benchmark::State& state) {
  const ec::ClayCode code(12, 9, 11);
  const auto chunk = static_cast<std::size_t>(state.range(0)) * code.alpha();
  auto chunks = make_chunks(code, chunk);
  code.encode(chunks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(chunks, {3}));
    benchmark::DoNotOptimize(chunks[3].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_ClayDecode1)->Arg(64)->Arg(12800);

void BM_ClayRepairOptimal(benchmark::State& state) {
  const ec::ClayCode code(12, 9, 11);
  const std::size_t chunk = static_cast<std::size_t>(state.range(0)) * code.alpha();
  auto chunks = make_chunks(code, chunk);
  code.encode(chunks);
  const std::size_t failed = 3;
  const std::size_t sub = chunk / code.alpha();
  const auto planes = code.repair_planes(failed);
  std::vector<std::vector<ec::Buffer>> helper_planes;
  for (std::size_t h = 0; h < 12; ++h) {
    if (h == failed) continue;
    std::vector<ec::Buffer> supplied;
    for (const std::size_t z : planes) {
      supplied.emplace_back(chunks[h].begin() + z * sub,
                            chunks[h].begin() + (z + 1) * sub);
    }
    helper_planes.push_back(std::move(supplied));
  }
  for (auto _ : state) {
    auto rebuilt = code.repair_one(failed, helper_planes, chunk);
    benchmark::DoNotOptimize(rebuilt.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_ClayRepairOptimal)->Arg(64)->Arg(12800);

void BM_LrcLocalRepair(benchmark::State& state) {
  const ec::LrcCode code(8, 2, 2);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  auto chunks = make_chunks(code, chunk);
  code.encode(chunks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(chunks, {2}));
    benchmark::DoNotOptimize(chunks[2].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_LrcLocalRepair)->Arg(1 << 20);

// Batched matrix-apply at the kernel layer: all 3 parity rows of an
// RS(12,9)-shaped Cauchy generator in one cache-blocked pass over the 9
// data chunks (the path RsCode::encode takes, minus codec overhead).
void BM_RsEncodeBatched(benchmark::State& state) {
  const std::size_t k = 9, m = 3;
  std::vector<gf::Byte> xs(m), ys(k);
  for (std::size_t i = 0; i < k; ++i) ys[i] = static_cast<gf::Byte>(i);
  for (std::size_t i = 0; i < m; ++i) xs[i] = static_cast<gf::Byte>(k + i);
  const gf::Matrix gen = gf::Matrix::cauchy(xs, ys);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  std::vector<std::vector<gf::Byte>> data(k, std::vector<gf::Byte>(chunk));
  std::vector<std::vector<gf::Byte>> parity(m, std::vector<gf::Byte>(chunk));
  for (auto& d : data) {
    for (auto& b : d) b = static_cast<gf::Byte>(rng.uniform(256));
  }
  std::vector<const gf::Byte*> in;
  std::vector<gf::Byte*> out;
  for (auto& d : data) in.push_back(d.data());
  for (auto& p : parity) out.push_back(p.data());
  const std::vector<std::size_t> rows = {0, 1, 2};
  for (auto _ : state) {
    gen.apply_rows(rows, in, out, chunk);
    benchmark::DoNotOptimize(parity[m - 1].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * k));
}
BENCHMARK(BM_RsEncodeBatched)->Arg(4096)->Arg(1 << 20);

// --- per-kernel-variant benchmarks (registered for supported variants) ----

void BM_GfMulAccVariant(benchmark::State& state, gf::KernelVariant v) {
  const gf::Kernels& k = gf::kernels_for(v);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<gf::Byte> src(len, 0x5a), dst(len, 0x17);
  for (auto _ : state) {
    k.mul_acc(0x3c, src.data(), dst.data(), len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

// Full RS(12,9) encode with the dispatch table pinned to one variant —
// the number the ≥3×-over-scalar acceptance bar is judged on.
void BM_RsEncodeVariant(benchmark::State& state, gf::KernelVariant v) {
  gf::select_kernels(v);
  const ec::RsCode code(12, 9);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  auto chunks = make_chunks(code, chunk);
  for (auto _ : state) {
    code.encode(chunks);
    benchmark::DoNotOptimize(chunks[11].data());
  }
  gf::select_kernels(gf::best_variant());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * 9));
}

void register_variant_benches() {
  for (const gf::KernelVariant v : gf::supported_variants()) {
    const std::string suffix = gf::to_string(v);
    benchmark::RegisterBenchmark(("BM_GfMulAcc/" + suffix).c_str(),
                                 BM_GfMulAccVariant, v)
        ->Arg(4096)
        ->Arg(1 << 20);
    benchmark::RegisterBenchmark(("BM_RsEncode/" + suffix).c_str(),
                                 BM_RsEncodeVariant, v)
        ->Arg(1 << 20);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_variant_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
