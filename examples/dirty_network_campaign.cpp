// Dirty-network campaign: how recovery degrades when the NVMe-oF fabric
// gets slow — the network-level fault axis the ECFault Worker exposes.
//
//   $ ./dirty_network_campaign
//
// Sweeps cluster-wide link latency {0, 1, 5, 20} ms for RS(12,9) vs
// Clay(12,9,11) under a single host failure. For every cell it reports the
// recovery time and how much of it the fabric counters attribute to the
// wire (transport wait) rather than the devices — Clay's sub-chunk reads
// issue many more commands per repaired byte, so added per-command latency
// hits it harder than RS.
#include <cstdio>

#include "ecfault/coordinator.h"
#include "util/bytes.h"
#include "util/stats.h"

using namespace ecf;

namespace {

ecfault::ExperimentProfile base_profile(bool clay) {
  ecfault::ExperimentProfile p;
  p.name = clay ? "dirty-clay(12,9,11)" : "dirty-rs(12,9)";
  if (clay) {
    p.cluster.pool.ec_profile = {
        {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  } else {
    p.cluster.pool.ec_profile = {{"plugin", "jerasure"},
                                 {"technique", "reed_sol_van"},
                                 {"k", "9"},
                                 {"m", "3"}};
  }
  // Scaled down from the paper's testbed so the sweep runs in seconds.
  p.cluster.num_hosts = 15;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 32;
  p.cluster.workload.num_objects = 200;
  p.cluster.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 30.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  p.fault.level = ecfault::FaultLevel::kNode;
  p.fault.count = 1;
  p.fault.inject_at_s = ecf::util::SimSec(2.0);
  p.runs = 1;
  return p;
}

}  // namespace

int main() {
  const double latencies_ms[] = {0.0, 1.0, 5.0, 20.0};

  std::printf("dirty-network campaign: cluster-wide link latency sweep\n");
  std::printf("(single host failure; transport wait = time the fabric "
              "counters charge to the wire)\n\n");

  util::TextTable table({"link latency", "code", "recovery(s)", "vs clean",
                         "transport wait(s)"});
  for (const bool clay : {false, true}) {
    double clean_recovery = 0;
    for (const double ms : latencies_ms) {
      ecfault::ExperimentProfile p = base_profile(clay);
      if (ms > 0) {
        ecfault::NetworkFaultSpec lat;
        lat.kind = ecfault::NetFaultKind::kLinkLatency;
        lat.count = 0;  // every host: uniformly dirty network
        lat.inject_at_s = ecf::util::SimSec(0.5);  // before the fault, so all recovery pays it
        lat.latency_s = ecf::util::SimSec(ms * 1e-3);
        p.network_faults = {lat};
      }
      const ecfault::ExperimentResult r =
          ecfault::Coordinator::run_experiment(p);
      const double recovery = r.report.ec_recovery_period();
      if (ms == 0.0) clean_recovery = recovery;
      char lat_label[32], ratio[32];
      std::snprintf(lat_label, sizeof(lat_label), "+%.0f ms", ms);
      std::snprintf(ratio, sizeof(ratio), "%.2fx",
                    clean_recovery > 0 ? recovery / clean_recovery : 1.0);
      table.add_row({lat_label, clay ? "Clay(12,9,11)" : "RS(12,9)",
                     util::fmt_double(recovery, 1), ratio,
                     util::fmt_double(r.report.fabric_transport_wait_s, 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nTry network faults in a JSON profile with fault_campaign:\n"
              "  \"fabric\": \"tcp\",\n"
              "  \"network_faults\": [{\"kind\": \"link_latency\", "
              "\"count\": 0, \"latency_s\": 0.005}]\n");
  return 0;
}
