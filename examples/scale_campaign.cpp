// Million-object scale campaign: recovery vs. client tail latency.
//
//   $ ./scale_campaign            # full 1M-object run (~a few seconds)
//   $ ./scale_campaign 100000     # smaller ladder rung
//
// Runs the paper's host-failure experiment at campaign scale — 1,000,000
// objects on 300 hosts / 2048 PGs — with zipfian foreground clients
// replaying during recovery (2000 ops/s open-loop, 90% reads of 64 KiB,
// theta = 0.99). Compares RS(12,9) against Clay(12,9,11) on both axes at
// once: how fast the cluster re-protects data, and what the repair
// traffic does to the clients' p99 while it runs. Degraded reads (a read
// that hits a shard on the failed host and must gather k survivors and
// decode inline) are reported separately from clean reads — that split
// is where recovery "interference" actually lives.
//
// The machinery that makes this size practical — sharded event lanes,
// pooled per-op state, dense per-PG tables — is DESIGN.md §12; the CI
// gate for it is bench/bench_scale.
#include <cstdio>
#include <cstdlib>
#include <cstdint>

#include "ecfault/coordinator.h"
#include "util/bytes.h"
#include "util/stats.h"

using namespace ecf;

namespace {

ecfault::ExperimentProfile scale_profile(bool clay, std::uint64_t objects) {
  ecfault::ExperimentProfile p;
  p.name = clay ? "scale-clay(12,9,11)" : "scale-rs(12,9)";
  if (clay) {
    p.cluster.pool.ec_profile = {
        {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  } else {
    p.cluster.pool.ec_profile = {{"plugin", "jerasure"},
                                 {"technique", "reed_sol_van"},
                                 {"k", "9"},
                                 {"m", "3"}};
  }
  p.cluster.num_hosts = 300;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 2048;
  p.cluster.workload.num_objects = objects;
  p.cluster.workload.object_size = ecf::util::Bytes(4 * util::MiB);
  p.cluster.engine_lanes = 16;
  // Shorten the checking period so the example turns around in seconds;
  // the interference shape is unchanged (see EXPERIMENTS.md).
  p.cluster.protocol.down_out_interval_s = 30.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  // Foreground clients, replayed while recovery runs.
  p.cluster.client.ops_per_s = 2000;
  p.cluster.client.read_fraction = 0.9;
  p.cluster.client.op_bytes = ecf::util::Bytes(64 * util::KiB);
  p.cluster.client.zipf_theta = 0.99;
  p.cluster.client.horizon_s = ecf::util::SimSec(180.0);
  p.fault.level = ecfault::FaultLevel::kNode;
  p.fault.count = 1;
  p.fault.inject_at_s = ecf::util::SimSec(2.0);
  p.runs = 1;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t objects =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000ull;

  std::printf("scale campaign: %llu objects x 300 hosts, one host failure,\n"
              "zipfian clients (2000 ops/s, 90%% reads, theta=0.99) during "
              "recovery\n\n",
              static_cast<unsigned long long>(objects));

  util::TextTable table({"code", "recovery(s)", "client ops", "degraded",
                         "clean p99(ms)", "degraded p99(ms)", "all p99(ms)"});
  for (const bool clay : {false, true}) {
    const ecfault::ExperimentResult r =
        ecfault::Coordinator::run_experiment(scale_profile(clay, objects));
    const auto& rep = r.report;
    char degraded[48];
    std::snprintf(degraded, sizeof(degraded), "%llu (%.1f%%)",
                  static_cast<unsigned long long>(rep.degraded_reads),
                  rep.client_ops > 0
                      ? 100.0 * static_cast<double>(rep.degraded_reads) /
                            static_cast<double>(rep.client_ops)
                      : 0.0);
    table.add_row(
        {clay ? "Clay(12,9,11)" : "RS(12,9)",
         util::fmt_double(rep.ec_recovery_period(), 1),
         std::to_string(rep.client_ops), degraded,
         util::fmt_double(1e3 * rep.client_clean_read_lat.percentile(0.99), 2),
         util::fmt_double(1e3 * rep.client_degraded_read_lat.percentile(0.99),
                          2),
         util::fmt_double(1e3 * rep.client_percentile(0.99), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nDegraded reads pay the k-shard gather + inline decode; the clean\n"
      "p99 moves too because client and repair I/O share the same OSDs.\n"
      "Sweep the ladder (10k/100k/1M) to watch interference grow with\n"
      "scale, or see bench/bench_scale for the CI-gated version.\n");
  return 0;
}
