// Quickstart: encode an object with Reed-Solomon and Clay codes, lose
// chunks, and get the data back — the 60-second tour of the codec API.
//
//   $ ./quickstart
//
// Shows: split_object/encode/erase/decode round trip, and why Clay exists
// (its single-failure repair reads a fraction of what RS needs).
#include <cstdio>
#include <string>

#include "ec/clay.h"
#include "ec/registry.h"
#include "ec/rs.h"
#include "ec/stripe.h"
#include "util/bytes.h"
#include "util/rng.h"

using namespace ecf;

int main() {
  // 1. Some data: 1 MiB of pseudo-random bytes standing in for an object.
  util::Rng rng(2024);
  ec::Buffer object(1 * util::MiB);
  for (auto& b : object) b = static_cast<gf::Byte>(rng.uniform(256));

  // 2. An RS(12,9) code, as Ceph's default jerasure plugin would build it.
  const auto rs = ec::make_code(
      {{"plugin", "jerasure"}, {"technique", "reed_sol_van"}, {"k", "9"},
       {"m", "3"}});
  std::printf("code: %s (tolerates %zu failures, storage overhead %.2fx)\n",
              rs->name().c_str(), rs->m(), rs->theoretical_wa());

  // 3. Split into chunks (64 KiB stripe unit) and encode.
  auto chunks = ec::split_object(object, rs->n(), rs->k(), 64 * util::KiB);
  rs->encode(chunks);
  std::printf("object %s -> %zu chunks of %s\n",
              util::format_bytes(object.size()).c_str(), chunks.size(),
              util::format_bytes(chunks[0].size()).c_str());

  // 4. Lose three chunks — the maximum this code tolerates.
  const std::vector<std::size_t> lost = {1, 6, 11};
  if (!ec::erase_and_decode(*rs, chunks, lost)) {
    std::printf("decode failed?!\n");
    return 1;
  }
  const ec::Buffer restored =
      ec::reassemble_object(chunks, rs->k(), object.size(), 64 * util::KiB);
  std::printf("erased chunks {1,6,11}, decoded: %s\n",
              restored == object ? "bit-exact" : "MISMATCH");

  // 5. The same exercise with Clay(12,9,11) — and the reason to use it:
  const ec::ClayCode clay(12, 9, 11);
  auto clay_chunks =
      ec::split_object(object, clay.n(), clay.k(), 64 * util::KiB, clay.alpha());
  clay.encode(clay_chunks);
  const auto rs_plan = rs->repair_plan({4});
  const auto clay_plan = clay.repair_plan({4});
  std::printf(
      "\nsingle-chunk repair reads:  RS %.2f chunk-equivalents, "
      "Clay %.2f (%.0f%% of RS)\n",
      rs_plan.read_fraction_total(), clay_plan.read_fraction_total(),
      100.0 * clay_plan.read_fraction_total() / rs_plan.read_fraction_total());

  // ...and Clay's repair really works from those partial reads:
  const std::size_t failed = 4;
  const std::size_t chunk_size = clay_chunks[0].size();
  const std::size_t sub = chunk_size / clay.alpha();
  const auto planes = clay.repair_planes(failed);
  std::vector<std::vector<ec::Buffer>> helper_planes;
  for (std::size_t h = 0; h < clay.n(); ++h) {
    if (h == failed) continue;
    std::vector<ec::Buffer> supplied;
    for (const std::size_t z : planes) {
      supplied.emplace_back(clay_chunks[h].begin() + z * sub,
                            clay_chunks[h].begin() + (z + 1) * sub);
    }
    helper_planes.push_back(std::move(supplied));
  }
  const ec::Buffer rebuilt = clay.repair_one(failed, helper_planes, chunk_size);
  std::printf("Clay sub-chunk repair of chunk %zu: %s (read %zu of %zu "
              "sub-chunks per helper)\n",
              failed, rebuilt == clay_chunks[failed] ? "bit-exact" : "MISMATCH",
              planes.size(), clay.alpha());
  return 0;
}
