// WA estimator: the paper's §4.4 formula as a planning tool.
//
//   $ ./wa_estimator <object_bytes> <k> <m> <stripe_unit_bytes>
//   $ ./wa_estimator            # demo sweep with the paper's parameters
//
// Given an object size, EC parameters and stripe unit, prints the
// theoretical n/k, the division-and-padding lower bound
// S_chunk = S_unit * ceil(S_object / (k*S_unit)), and a simulated
// OSD-level measurement (which adds the metadata term the formula calls
// S_meta) — so an operator can see how much capacity a pool really costs
// before creating it.
#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.h"
#include "ec/wa_model.h"
#include "util/bytes.h"

using namespace ecf;

namespace {

void report(std::uint64_t object, std::size_t k, std::size_t m,
            std::uint64_t su) {
  const std::size_t n = k + m;
  const ec::WaEstimate est = ec::estimate_wa(object, n, k, su);

  cluster::ClusterConfig cfg;
  cfg.pool.ec_profile = {{"plugin", "jerasure"},
                         {"k", std::to_string(k)},
                         {"m", std::to_string(m)}};
  cfg.pool.stripe_unit = ecf::util::Bytes(su);
  cfg.workload.num_objects = 100;
  cfg.workload.object_size = ecf::util::Bytes(object);
  cluster::Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();

  std::printf(
      "RS(%zu,%zu), object %s, stripe_unit %s\n"
      "  theoretical n/k:          %.3f\n"
      "  formula lower bound:      %.3f   (chunk %s, padding %s/object)\n"
      "  simulated OSD usage:      %.3f   (metadata adds %.3f)\n\n",
      n, k, util::format_bytes(object).c_str(), util::format_bytes(su).c_str(),
      est.theoretical, est.padding_only,
      util::format_bytes(est.chunk_size).c_str(),
      util::format_bytes(est.padding_bytes).c_str(), cl.actual_wa(),
      cl.actual_wa() - est.padding_only);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5) {
    report(std::strtoull(argv[1], nullptr, 10),
           std::strtoull(argv[2], nullptr, 10),
           std::strtoull(argv[3], nullptr, 10),
           std::strtoull(argv[4], nullptr, 10));
    return 0;
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s <object_bytes> <k> <m> <stripe_unit_bytes>\n",
                 argv[0]);
    return 1;
  }

  std::printf("=== Table 3 codes, 64 MiB objects ===\n\n");
  report(64 * util::MiB, 9, 3, 4 * util::MiB);
  report(64 * util::MiB, 12, 3, 4 * util::MiB);

  std::printf("=== why stripe_unit matters (§4.4) ===\n\n");
  report(64 * util::MiB, 9, 3, 4 * util::KiB);
  report(64 * util::MiB, 9, 3, 64 * util::MiB);

  std::printf("=== small objects are the pathology ===\n\n");
  report(1 * util::MiB, 9, 3, 4 * util::MiB);
  return 0;
}
