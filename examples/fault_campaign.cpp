// Fault-injection campaign: the ECFault framework end to end, driven by a
// JSON experiment profile — the way the paper's §4 case study runs.
//
//   $ ./fault_campaign                # built-in profile
//   $ ./fault_campaign profile.json   # your own profile
//
// Builds the simulated Ceph cluster, applies the workload, plans a
// tolerance-checked fault injection, replays the recovery, and prints the
// Fig.-3-style timeline plus the measured metrics — all derived from the
// collected logs, like the real framework.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ecfault/coordinator.h"
#include "util/bytes.h"

using namespace ecf;

namespace {

const char* kDefaultProfile = R"({
  // Two concurrent device faults on different hosts against Clay(12,9,11):
  // the Fig. 2d scenario, scaled down to run in about a second.
  "name": "clay-2dev-diff-hosts",
  "runs": 3,
  "cluster": {
    "num_hosts": 30,
    "osds_per_host": 3,
    "ec_profile": {"plugin": "clay", "k": 9, "m": 3, "d": 11},
    "pool": {"pg_num": 128, "stripe_unit": 4194304, "failure_domain": "osd"},
    "workload": {"num_objects": 2000, "object_size": 67108864}
  },
  "fault": {"level": "device", "count": 2, "topology": "different_hosts"}
})";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultProfile;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  ecfault::ExperimentProfile profile;
  try {
    profile = ecfault::ExperimentProfile::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad profile: %s\n", e.what());
    return 1;
  }

  std::printf("experiment: %s (%d runs)\n", profile.name.c_str(), profile.runs);
  std::printf("profile:\n%s\n\n", profile.dump().c_str());

  const ecfault::CampaignResult campaign =
      ecfault::Coordinator::run_profile(profile);
  const ecfault::ExperimentResult& r = campaign.last;

  std::printf("injected: ");
  if (r.injected.level == ecfault::FaultLevel::kNode) {
    for (const auto h : r.injected.node_victims) std::printf("host%d ", h);
  } else {
    for (const auto o : r.injected.device_victims) std::printf("osd.%d ", o);
  }
  std::printf("(%s faults, tolerance-checked)\n\n",
              to_string(r.injected.level));

  std::printf("%s\n", r.timeline.render().c_str());
  std::printf("across %d runs: total %.0f±%.0f s (checking %.0f s, "
              "EC recovery %.0f s)\n",
              campaign.runs, campaign.mean_total, campaign.stddev_total,
              campaign.mean_checking, campaign.mean_recovery);
  std::printf("repairs: %llu objects, %s read, %s written, %llu wasted by "
              "re-peering, %d osdmap epochs\n",
              static_cast<unsigned long long>(r.report.objects_repaired),
              util::format_bytes(r.report.bytes_read_for_recovery).c_str(),
              util::format_bytes(r.report.bytes_written_for_recovery).c_str(),
              static_cast<unsigned long long>(r.report.repairs_wasted),
              r.report.epochs_published);
  std::printf("storage: %s stored for %s written — actual WA %.2f "
              "(theoretical %s)\n",
              util::format_bytes(r.stored_bytes).c_str(),
              util::format_bytes(profile.cluster.workload.num_objects *
                                 profile.cluster.workload.object_size)
                  .c_str(),
              r.actual_wa, r.code_name.c_str());
  std::printf("logs: %zu relevant records shipped through the bus\n",
              r.log_records_published);
  return 0;
}
