// Configuration auto-tuner — the paper's §6 future-work idea made concrete:
// "the quantitative analysis on configuration sensitivity could potentially
// help create more intelligent mechanisms for tuning EC-based DSS
// automatically."
//
//   $ ./config_tuner
//
// Searches the (code, pg_num, stripe_unit) space against the simulated
// cluster, scoring each candidate on recovery time AND write
// amplification, and prints a Pareto-style recommendation. Scaled-down
// workload so the sweep finishes in seconds; pass a larger budget via
// argv[1] (number of objects) to refine.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ecfault/coordinator.h"
#include "util/bytes.h"
#include "util/stats.h"

using namespace ecf;

int main(int argc, char** argv) {
  const std::uint64_t objects =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

  struct Candidate {
    const char* code;
    std::map<std::string, std::string> profile;
    std::int32_t pg_num;
    std::uint64_t su;
    double recovery = 0;
    double wa = 0;
  };
  std::vector<Candidate> candidates;
  for (const auto& [name, prof] :
       std::vector<std::pair<const char*, std::map<std::string, std::string>>>{
           {"RS(12,9)",
            {{"plugin", "jerasure"}, {"k", "9"}, {"m", "3"}}},
           {"Clay(12,9,11)",
            {{"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}}}}) {
    for (const std::int32_t pg : {64, 256}) {
      for (const std::uint64_t su : {64 * util::KiB, 4 * util::MiB}) {
        candidates.push_back({name, prof, pg, su});
      }
    }
  }

  std::printf("tuning over %zu candidates (workload: %llu x 64 MiB)...\n\n",
              candidates.size(), static_cast<unsigned long long>(objects));

  for (auto& c : candidates) {
    ecfault::ExperimentProfile p;
    p.cluster.pool.ec_profile = c.profile;
    p.cluster.pool.pg_num = c.pg_num;
    p.cluster.pool.stripe_unit = ecf::util::Bytes(c.su);
    p.cluster.workload.num_objects = objects;
    p.fault.level = ecfault::FaultLevel::kNode;
    p.runs = 1;
    const auto r = ecfault::Coordinator::run_experiment(p);
    c.recovery = r.report.total();
    c.wa = r.actual_wa;
  }

  // Normalize both objectives to [0,1] and score; recovery weighted 2:1
  // (the paper's subject) over capacity.
  double rmin = 1e18, rmax = 0, wmin = 1e18, wmax = 0;
  for (const auto& c : candidates) {
    rmin = std::min(rmin, c.recovery);
    rmax = std::max(rmax, c.recovery);
    wmin = std::min(wmin, c.wa);
    wmax = std::max(wmax, c.wa);
  }
  const Candidate* best = nullptr;
  double best_score = 1e18;
  util::TextTable table({"code", "pg_num", "stripe_unit", "recovery(s)",
                         "actual WA", "score"});
  for (const auto& c : candidates) {
    const double rn = (c.recovery - rmin) / std::max(1e-9, rmax - rmin);
    const double wn = (c.wa - wmin) / std::max(1e-9, wmax - wmin);
    const double score = 2.0 * rn + wn;
    if (score < best_score) {
      best_score = score;
      best = &c;
    }
    table.add_row({c.code, std::to_string(c.pg_num),
                   util::format_bytes(c.su), util::fmt_double(c.recovery, 0),
                   util::fmt_double(c.wa, 2), util::fmt_double(score, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nrecommendation: %s, pg_num=%d, stripe_unit=%s\n", best->code,
              best->pg_num, util::format_bytes(best->su).c_str());
  std::printf("(recovery weighted 2:1 over capacity; edit the weights for "
              "your priorities)\n");
  return 0;
}
