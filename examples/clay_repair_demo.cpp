// Clay repair anatomy: a guided tour of the sub-packetized repair that
// makes MSR codes interesting — and of the overheads that Fig. 2c shows
// biting at small stripe units.
//
//   $ ./clay_repair_demo
//
// Walks through the Clay(12,9,11) grid/plane structure, repairs every
// chunk from exact sub-chunk reads, and tabulates read bandwidth and
// fragmentation per failed position.
#include <cstdio>

#include "ec/clay.h"
#include "ec/rs.h"
#include "ec/stripe.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace ecf;

int main() {
  const ec::ClayCode clay(12, 9, 11);
  std::printf("Clay(12,9,11): q = d-k+1 = %zu, t = n/q = %zu, "
              "sub-packetization alpha = q^t = %zu\n",
              clay.q(), clay.t(), clay.alpha());
  std::printf("nodes live on a %zux%zu grid; chunk %% %zu sub-chunks\n\n",
              clay.q(), clay.t(), clay.alpha());

  // Encode an object.
  util::Rng rng(7);
  ec::Buffer object(972 * util::KiB);  // multiple of alpha for tidy numbers
  for (auto& b : object) b = static_cast<gf::Byte>(rng.uniform(256));
  auto chunks =
      ec::split_object(object, clay.n(), clay.k(), 4 * util::KiB, clay.alpha());
  clay.encode(chunks);
  const std::size_t chunk_size = chunks[0].size();
  const std::size_t sub = chunk_size / clay.alpha();
  std::printf("encoded: chunk %s, sub-chunk %s\n\n",
              util::format_bytes(chunk_size).c_str(),
              util::format_bytes(sub).c_str());

  util::TextTable table({"failed chunk", "grid (x,y)", "planes read",
                         "contiguous runs", "bytes/helper", "repaired"});
  for (std::size_t failed = 0; failed < clay.n(); ++failed) {
    const auto planes = clay.repair_planes(failed);
    std::vector<std::vector<ec::Buffer>> helper_planes;
    for (std::size_t h = 0; h < clay.n(); ++h) {
      if (h == failed) continue;
      std::vector<ec::Buffer> supplied;
      for (const std::size_t z : planes) {
        supplied.emplace_back(chunks[h].begin() + z * sub,
                              chunks[h].begin() + (z + 1) * sub);
      }
      helper_planes.push_back(std::move(supplied));
    }
    const ec::Buffer rebuilt =
        clay.repair_one(failed, helper_planes, chunk_size);
    char grid[48];
    std::snprintf(grid, sizeof(grid), "(%zu,%zu)", failed % clay.q(),
                  failed / clay.q());
    table.add_row({std::to_string(failed), grid,
                   std::to_string(planes.size()) + "/" +
                       std::to_string(clay.alpha()),
                   std::to_string(clay.repair_subchunk_runs(failed)),
                   util::format_bytes(planes.size() * sub),
                   rebuilt == chunks[failed] ? "bit-exact" : "MISMATCH"});
  }
  std::printf("%s", table.to_string().c_str());

  const ec::RsCode rs(12, 9);
  std::printf(
      "\ntotals per repaired chunk: Clay reads %.2f chunk-equivalents from "
      "%zu helpers;\nRS(12,9) reads %.2f from %zu. Clay saves %.0f%% of the "
      "repair traffic —\nbut fragments each helper read into runs, which is "
      "what hurts at 4 KiB\nstripe units (Fig. 2c).\n",
      clay.repair_plan({0}).read_fraction_total(),
      clay.repair_plan({0}).reads.size(),
      rs.repair_plan({0}).read_fraction_total(),
      rs.repair_plan({0}).reads.size(),
      100.0 * (1.0 - clay.repair_plan({0}).read_fraction_total() /
                         rs.repair_plan({0}).read_fraction_total()));
  return 0;
}
