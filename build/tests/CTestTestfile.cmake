# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_gf[1]_include.cmake")
include("/root/repo/build/tests/test_ec[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nvmeof[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_ecfault[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
