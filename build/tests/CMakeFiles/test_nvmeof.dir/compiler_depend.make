# Empty compiler generated dependencies file for test_nvmeof.
# This may be replaced when dependencies are built.
