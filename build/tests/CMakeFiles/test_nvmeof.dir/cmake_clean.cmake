file(REMOVE_RECURSE
  "CMakeFiles/test_nvmeof.dir/nvmeof/nvmeof_test.cc.o"
  "CMakeFiles/test_nvmeof.dir/nvmeof/nvmeof_test.cc.o.d"
  "test_nvmeof"
  "test_nvmeof.pdb"
  "test_nvmeof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvmeof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
