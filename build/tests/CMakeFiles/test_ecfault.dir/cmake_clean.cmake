file(REMOVE_RECURSE
  "CMakeFiles/test_ecfault.dir/ecfault/campaign_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/campaign_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/coordinator_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/coordinator_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/fault_injector_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/fault_injector_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/iostat_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/iostat_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/logger_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/logger_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/msgbus_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/msgbus_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/profile_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/profile_test.cc.o.d"
  "CMakeFiles/test_ecfault.dir/ecfault/timeline_test.cc.o"
  "CMakeFiles/test_ecfault.dir/ecfault/timeline_test.cc.o.d"
  "test_ecfault"
  "test_ecfault.pdb"
  "test_ecfault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecfault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
