# Empty compiler generated dependencies file for test_ecfault.
# This may be replaced when dependencies are built.
