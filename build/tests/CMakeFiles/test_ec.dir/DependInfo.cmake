
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ec/clay_shortened_test.cc" "tests/CMakeFiles/test_ec.dir/ec/clay_shortened_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/clay_shortened_test.cc.o.d"
  "/root/repo/tests/ec/clay_test.cc" "tests/CMakeFiles/test_ec.dir/ec/clay_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/clay_test.cc.o.d"
  "/root/repo/tests/ec/code_property_test.cc" "tests/CMakeFiles/test_ec.dir/ec/code_property_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/code_property_test.cc.o.d"
  "/root/repo/tests/ec/lrc_test.cc" "tests/CMakeFiles/test_ec.dir/ec/lrc_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/lrc_test.cc.o.d"
  "/root/repo/tests/ec/registry_test.cc" "tests/CMakeFiles/test_ec.dir/ec/registry_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/registry_test.cc.o.d"
  "/root/repo/tests/ec/replication_test.cc" "tests/CMakeFiles/test_ec.dir/ec/replication_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/replication_test.cc.o.d"
  "/root/repo/tests/ec/rs_test.cc" "tests/CMakeFiles/test_ec.dir/ec/rs_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/rs_test.cc.o.d"
  "/root/repo/tests/ec/shec_test.cc" "tests/CMakeFiles/test_ec.dir/ec/shec_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/shec_test.cc.o.d"
  "/root/repo/tests/ec/stripe_fuzz_test.cc" "tests/CMakeFiles/test_ec.dir/ec/stripe_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/stripe_fuzz_test.cc.o.d"
  "/root/repo/tests/ec/stripe_test.cc" "tests/CMakeFiles/test_ec.dir/ec/stripe_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/stripe_test.cc.o.d"
  "/root/repo/tests/ec/wa_model_test.cc" "tests/CMakeFiles/test_ec.dir/ec/wa_model_test.cc.o" "gcc" "tests/CMakeFiles/test_ec.dir/ec/wa_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/ecf_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecf_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
