file(REMOVE_RECURSE
  "CMakeFiles/test_ec.dir/ec/clay_shortened_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/clay_shortened_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/clay_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/clay_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/code_property_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/code_property_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/lrc_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/lrc_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/registry_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/registry_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/replication_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/replication_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/rs_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/rs_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/shec_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/shec_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/stripe_fuzz_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/stripe_fuzz_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/stripe_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/stripe_test.cc.o.d"
  "CMakeFiles/test_ec.dir/ec/wa_model_test.cc.o"
  "CMakeFiles/test_ec.dir/ec/wa_model_test.cc.o.d"
  "test_ec"
  "test_ec.pdb"
  "test_ec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
