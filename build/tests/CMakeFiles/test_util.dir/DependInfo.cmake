
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bytes_test.cc" "tests/CMakeFiles/test_util.dir/util/bytes_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/bytes_test.cc.o.d"
  "/root/repo/tests/util/json_robustness_test.cc" "tests/CMakeFiles/test_util.dir/util/json_robustness_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/json_robustness_test.cc.o.d"
  "/root/repo/tests/util/json_test.cc" "tests/CMakeFiles/test_util.dir/util/json_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/json_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/test_util.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/test_util.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/strings_test.cc" "tests/CMakeFiles/test_util.dir/util/strings_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/strings_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/ecf_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecf_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
