file(REMOVE_RECURSE
  "CMakeFiles/test_gf.dir/gf/gf256_test.cc.o"
  "CMakeFiles/test_gf.dir/gf/gf256_test.cc.o.d"
  "CMakeFiles/test_gf.dir/gf/matrix_test.cc.o"
  "CMakeFiles/test_gf.dir/gf/matrix_test.cc.o.d"
  "test_gf"
  "test_gf.pdb"
  "test_gf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
