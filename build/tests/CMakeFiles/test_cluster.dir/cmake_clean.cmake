file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/bluestore_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/bluestore_test.cc.o.d"
  "CMakeFiles/test_cluster.dir/cluster/client_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/client_test.cc.o.d"
  "CMakeFiles/test_cluster.dir/cluster/cluster_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/cluster_test.cc.o.d"
  "CMakeFiles/test_cluster.dir/cluster/crush_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/crush_test.cc.o.d"
  "CMakeFiles/test_cluster.dir/cluster/pg_autoscale_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/pg_autoscale_test.cc.o.d"
  "CMakeFiles/test_cluster.dir/cluster/recovery_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/recovery_test.cc.o.d"
  "CMakeFiles/test_cluster.dir/cluster/scrub_test.cc.o"
  "CMakeFiles/test_cluster.dir/cluster/scrub_test.cc.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
