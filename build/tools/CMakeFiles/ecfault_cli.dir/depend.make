# Empty dependencies file for ecfault_cli.
# This may be replaced when dependencies are built.
