file(REMOVE_RECURSE
  "CMakeFiles/ecfault_cli.dir/ecfault_cli.cc.o"
  "CMakeFiles/ecfault_cli.dir/ecfault_cli.cc.o.d"
  "ecfault"
  "ecfault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfault_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
