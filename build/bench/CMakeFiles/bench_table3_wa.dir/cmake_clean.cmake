file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_wa.dir/bench_table3_wa.cc.o"
  "CMakeFiles/bench_table3_wa.dir/bench_table3_wa.cc.o.d"
  "bench_table3_wa"
  "bench_table3_wa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_wa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
