# Empty dependencies file for bench_repair_bw.
# This may be replaced when dependencies are built.
