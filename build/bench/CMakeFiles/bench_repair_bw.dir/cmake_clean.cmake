file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_bw.dir/bench_repair_bw.cc.o"
  "CMakeFiles/bench_repair_bw.dir/bench_repair_bw.cc.o.d"
  "bench_repair_bw"
  "bench_repair_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
