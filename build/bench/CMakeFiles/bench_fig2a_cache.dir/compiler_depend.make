# Empty compiler generated dependencies file for bench_fig2a_cache.
# This may be replaced when dependencies are built.
