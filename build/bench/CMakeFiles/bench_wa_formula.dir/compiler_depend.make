# Empty compiler generated dependencies file for bench_wa_formula.
# This may be replaced when dependencies are built.
