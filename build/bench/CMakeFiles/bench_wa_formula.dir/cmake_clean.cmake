file(REMOVE_RECURSE
  "CMakeFiles/bench_wa_formula.dir/bench_wa_formula.cc.o"
  "CMakeFiles/bench_wa_formula.dir/bench_wa_formula.cc.o.d"
  "bench_wa_formula"
  "bench_wa_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wa_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
