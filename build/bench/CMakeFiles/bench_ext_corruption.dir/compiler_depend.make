# Empty compiler generated dependencies file for bench_ext_corruption.
# This may be replaced when dependencies are built.
