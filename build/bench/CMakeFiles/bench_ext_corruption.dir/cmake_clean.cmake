file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_corruption.dir/bench_ext_corruption.cc.o"
  "CMakeFiles/bench_ext_corruption.dir/bench_ext_corruption.cc.o.d"
  "bench_ext_corruption"
  "bench_ext_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
