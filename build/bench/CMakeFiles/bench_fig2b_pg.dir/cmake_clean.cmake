file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_pg.dir/bench_fig2b_pg.cc.o"
  "CMakeFiles/bench_fig2b_pg.dir/bench_fig2b_pg.cc.o.d"
  "bench_fig2b_pg"
  "bench_fig2b_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
