# Empty dependencies file for bench_fig2b_pg.
# This may be replaced when dependencies are built.
