# Empty dependencies file for bench_fig2c_stripe.
# This may be replaced when dependencies are built.
