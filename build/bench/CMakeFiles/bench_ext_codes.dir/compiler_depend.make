# Empty compiler generated dependencies file for bench_ext_codes.
# This may be replaced when dependencies are built.
