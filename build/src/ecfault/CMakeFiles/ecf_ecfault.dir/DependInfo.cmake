
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecfault/campaign.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/campaign.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/campaign.cc.o.d"
  "/root/repo/src/ecfault/coordinator.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/coordinator.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/coordinator.cc.o.d"
  "/root/repo/src/ecfault/fault_injector.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/fault_injector.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/fault_injector.cc.o.d"
  "/root/repo/src/ecfault/iostat.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/iostat.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/iostat.cc.o.d"
  "/root/repo/src/ecfault/logger.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/logger.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/logger.cc.o.d"
  "/root/repo/src/ecfault/msgbus.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/msgbus.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/msgbus.cc.o.d"
  "/root/repo/src/ecfault/profile.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/profile.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/profile.cc.o.d"
  "/root/repo/src/ecfault/timeline.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/timeline.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/timeline.cc.o.d"
  "/root/repo/src/ecfault/worker.cc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/worker.cc.o" "gcc" "src/ecfault/CMakeFiles/ecf_ecfault.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ecf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/ecf_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecf_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmeof/CMakeFiles/ecf_nvmeof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
