# Empty dependencies file for ecf_ecfault.
# This may be replaced when dependencies are built.
