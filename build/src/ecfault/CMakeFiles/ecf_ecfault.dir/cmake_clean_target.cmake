file(REMOVE_RECURSE
  "libecf_ecfault.a"
)
