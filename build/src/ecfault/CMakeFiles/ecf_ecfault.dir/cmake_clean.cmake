file(REMOVE_RECURSE
  "CMakeFiles/ecf_ecfault.dir/campaign.cc.o"
  "CMakeFiles/ecf_ecfault.dir/campaign.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/coordinator.cc.o"
  "CMakeFiles/ecf_ecfault.dir/coordinator.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/fault_injector.cc.o"
  "CMakeFiles/ecf_ecfault.dir/fault_injector.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/iostat.cc.o"
  "CMakeFiles/ecf_ecfault.dir/iostat.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/logger.cc.o"
  "CMakeFiles/ecf_ecfault.dir/logger.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/msgbus.cc.o"
  "CMakeFiles/ecf_ecfault.dir/msgbus.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/profile.cc.o"
  "CMakeFiles/ecf_ecfault.dir/profile.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/timeline.cc.o"
  "CMakeFiles/ecf_ecfault.dir/timeline.cc.o.d"
  "CMakeFiles/ecf_ecfault.dir/worker.cc.o"
  "CMakeFiles/ecf_ecfault.dir/worker.cc.o.d"
  "libecf_ecfault.a"
  "libecf_ecfault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_ecfault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
