file(REMOVE_RECURSE
  "libecf_cluster.a"
)
