file(REMOVE_RECURSE
  "CMakeFiles/ecf_cluster.dir/bluestore.cc.o"
  "CMakeFiles/ecf_cluster.dir/bluestore.cc.o.d"
  "CMakeFiles/ecf_cluster.dir/client.cc.o"
  "CMakeFiles/ecf_cluster.dir/client.cc.o.d"
  "CMakeFiles/ecf_cluster.dir/cluster.cc.o"
  "CMakeFiles/ecf_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/ecf_cluster.dir/crush.cc.o"
  "CMakeFiles/ecf_cluster.dir/crush.cc.o.d"
  "CMakeFiles/ecf_cluster.dir/pg_autoscale.cc.o"
  "CMakeFiles/ecf_cluster.dir/pg_autoscale.cc.o.d"
  "CMakeFiles/ecf_cluster.dir/recovery.cc.o"
  "CMakeFiles/ecf_cluster.dir/recovery.cc.o.d"
  "CMakeFiles/ecf_cluster.dir/scrub.cc.o"
  "CMakeFiles/ecf_cluster.dir/scrub.cc.o.d"
  "libecf_cluster.a"
  "libecf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
