# Empty compiler generated dependencies file for ecf_cluster.
# This may be replaced when dependencies are built.
