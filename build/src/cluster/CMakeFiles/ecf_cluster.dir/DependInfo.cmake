
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/bluestore.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/bluestore.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/bluestore.cc.o.d"
  "/root/repo/src/cluster/client.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/client.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/client.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/crush.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/crush.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/crush.cc.o.d"
  "/root/repo/src/cluster/pg_autoscale.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/pg_autoscale.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/pg_autoscale.cc.o.d"
  "/root/repo/src/cluster/recovery.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/recovery.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/recovery.cc.o.d"
  "/root/repo/src/cluster/scrub.cc" "src/cluster/CMakeFiles/ecf_cluster.dir/scrub.cc.o" "gcc" "src/cluster/CMakeFiles/ecf_cluster.dir/scrub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/ecf_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmeof/CMakeFiles/ecf_nvmeof.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecf_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
