# Empty compiler generated dependencies file for ecf_util.
# This may be replaced when dependencies are built.
