file(REMOVE_RECURSE
  "libecf_util.a"
)
