file(REMOVE_RECURSE
  "CMakeFiles/ecf_util.dir/json.cc.o"
  "CMakeFiles/ecf_util.dir/json.cc.o.d"
  "CMakeFiles/ecf_util.dir/log.cc.o"
  "CMakeFiles/ecf_util.dir/log.cc.o.d"
  "CMakeFiles/ecf_util.dir/stats.cc.o"
  "CMakeFiles/ecf_util.dir/stats.cc.o.d"
  "CMakeFiles/ecf_util.dir/strings.cc.o"
  "CMakeFiles/ecf_util.dir/strings.cc.o.d"
  "libecf_util.a"
  "libecf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
