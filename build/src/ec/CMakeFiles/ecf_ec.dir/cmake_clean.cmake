file(REMOVE_RECURSE
  "CMakeFiles/ecf_ec.dir/clay.cc.o"
  "CMakeFiles/ecf_ec.dir/clay.cc.o.d"
  "CMakeFiles/ecf_ec.dir/code.cc.o"
  "CMakeFiles/ecf_ec.dir/code.cc.o.d"
  "CMakeFiles/ecf_ec.dir/lrc.cc.o"
  "CMakeFiles/ecf_ec.dir/lrc.cc.o.d"
  "CMakeFiles/ecf_ec.dir/registry.cc.o"
  "CMakeFiles/ecf_ec.dir/registry.cc.o.d"
  "CMakeFiles/ecf_ec.dir/replication.cc.o"
  "CMakeFiles/ecf_ec.dir/replication.cc.o.d"
  "CMakeFiles/ecf_ec.dir/rs.cc.o"
  "CMakeFiles/ecf_ec.dir/rs.cc.o.d"
  "CMakeFiles/ecf_ec.dir/shec.cc.o"
  "CMakeFiles/ecf_ec.dir/shec.cc.o.d"
  "CMakeFiles/ecf_ec.dir/stripe.cc.o"
  "CMakeFiles/ecf_ec.dir/stripe.cc.o.d"
  "CMakeFiles/ecf_ec.dir/wa_model.cc.o"
  "CMakeFiles/ecf_ec.dir/wa_model.cc.o.d"
  "libecf_ec.a"
  "libecf_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
