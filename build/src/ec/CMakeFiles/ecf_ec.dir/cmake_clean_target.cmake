file(REMOVE_RECURSE
  "libecf_ec.a"
)
