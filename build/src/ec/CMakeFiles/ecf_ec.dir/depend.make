# Empty dependencies file for ecf_ec.
# This may be replaced when dependencies are built.
