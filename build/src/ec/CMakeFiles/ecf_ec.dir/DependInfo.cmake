
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/clay.cc" "src/ec/CMakeFiles/ecf_ec.dir/clay.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/clay.cc.o.d"
  "/root/repo/src/ec/code.cc" "src/ec/CMakeFiles/ecf_ec.dir/code.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/code.cc.o.d"
  "/root/repo/src/ec/lrc.cc" "src/ec/CMakeFiles/ecf_ec.dir/lrc.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/lrc.cc.o.d"
  "/root/repo/src/ec/registry.cc" "src/ec/CMakeFiles/ecf_ec.dir/registry.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/registry.cc.o.d"
  "/root/repo/src/ec/replication.cc" "src/ec/CMakeFiles/ecf_ec.dir/replication.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/replication.cc.o.d"
  "/root/repo/src/ec/rs.cc" "src/ec/CMakeFiles/ecf_ec.dir/rs.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/rs.cc.o.d"
  "/root/repo/src/ec/shec.cc" "src/ec/CMakeFiles/ecf_ec.dir/shec.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/shec.cc.o.d"
  "/root/repo/src/ec/stripe.cc" "src/ec/CMakeFiles/ecf_ec.dir/stripe.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/stripe.cc.o.d"
  "/root/repo/src/ec/wa_model.cc" "src/ec/CMakeFiles/ecf_ec.dir/wa_model.cc.o" "gcc" "src/ec/CMakeFiles/ecf_ec.dir/wa_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/ecf_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
