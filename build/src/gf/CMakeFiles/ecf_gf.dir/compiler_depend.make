# Empty compiler generated dependencies file for ecf_gf.
# This may be replaced when dependencies are built.
