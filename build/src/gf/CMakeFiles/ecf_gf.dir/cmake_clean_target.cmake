file(REMOVE_RECURSE
  "libecf_gf.a"
)
