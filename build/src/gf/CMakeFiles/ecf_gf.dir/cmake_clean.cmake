file(REMOVE_RECURSE
  "CMakeFiles/ecf_gf.dir/gf256.cc.o"
  "CMakeFiles/ecf_gf.dir/gf256.cc.o.d"
  "CMakeFiles/ecf_gf.dir/matrix.cc.o"
  "CMakeFiles/ecf_gf.dir/matrix.cc.o.d"
  "libecf_gf.a"
  "libecf_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
