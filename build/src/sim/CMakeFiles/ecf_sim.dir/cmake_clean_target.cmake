file(REMOVE_RECURSE
  "libecf_sim.a"
)
