# Empty dependencies file for ecf_sim.
# This may be replaced when dependencies are built.
