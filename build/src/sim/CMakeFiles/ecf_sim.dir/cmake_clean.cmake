file(REMOVE_RECURSE
  "CMakeFiles/ecf_sim.dir/engine.cc.o"
  "CMakeFiles/ecf_sim.dir/engine.cc.o.d"
  "CMakeFiles/ecf_sim.dir/hardware_profiles.cc.o"
  "CMakeFiles/ecf_sim.dir/hardware_profiles.cc.o.d"
  "CMakeFiles/ecf_sim.dir/resources.cc.o"
  "CMakeFiles/ecf_sim.dir/resources.cc.o.d"
  "libecf_sim.a"
  "libecf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
