# Empty compiler generated dependencies file for ecf_nvmeof.
# This may be replaced when dependencies are built.
