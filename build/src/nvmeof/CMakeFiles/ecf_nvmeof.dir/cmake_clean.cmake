file(REMOVE_RECURSE
  "CMakeFiles/ecf_nvmeof.dir/nvmeof.cc.o"
  "CMakeFiles/ecf_nvmeof.dir/nvmeof.cc.o.d"
  "libecf_nvmeof.a"
  "libecf_nvmeof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecf_nvmeof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
