file(REMOVE_RECURSE
  "libecf_nvmeof.a"
)
