# Empty dependencies file for config_tuner.
# This may be replaced when dependencies are built.
