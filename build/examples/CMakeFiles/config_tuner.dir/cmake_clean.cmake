file(REMOVE_RECURSE
  "CMakeFiles/config_tuner.dir/config_tuner.cpp.o"
  "CMakeFiles/config_tuner.dir/config_tuner.cpp.o.d"
  "config_tuner"
  "config_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
