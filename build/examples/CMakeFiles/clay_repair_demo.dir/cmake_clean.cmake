file(REMOVE_RECURSE
  "CMakeFiles/clay_repair_demo.dir/clay_repair_demo.cpp.o"
  "CMakeFiles/clay_repair_demo.dir/clay_repair_demo.cpp.o.d"
  "clay_repair_demo"
  "clay_repair_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clay_repair_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
