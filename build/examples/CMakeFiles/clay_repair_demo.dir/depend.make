# Empty dependencies file for clay_repair_demo.
# This may be replaced when dependencies are built.
