# Empty dependencies file for wa_estimator.
# This may be replaced when dependencies are built.
