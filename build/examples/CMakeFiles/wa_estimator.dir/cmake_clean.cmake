file(REMOVE_RECURSE
  "CMakeFiles/wa_estimator.dir/wa_estimator.cpp.o"
  "CMakeFiles/wa_estimator.dir/wa_estimator.cpp.o.d"
  "wa_estimator"
  "wa_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wa_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
