
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fault_campaign.cpp" "examples/CMakeFiles/fault_campaign.dir/fault_campaign.cpp.o" "gcc" "examples/CMakeFiles/fault_campaign.dir/fault_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecfault/CMakeFiles/ecf_ecfault.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ecf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/ecf_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecf_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmeof/CMakeFiles/ecf_nvmeof.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
