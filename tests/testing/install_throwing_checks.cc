// Linked into every test binary (see tests/CMakeLists.txt ecf_test()):
// makes ECF_CHECK failures throw util::CheckFailure so tests can assert on
// contract violations with EXPECT_THROW instead of dying.
#include "util/check.h"

namespace {

const bool kInstalled = [] {
  ecf::util::set_check_failure_handler(
      &ecf::util::throwing_check_failure_handler);
  return true;
}();

}  // namespace
