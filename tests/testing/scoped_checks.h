// Test-side helpers for the ECF_CHECK contract framework.
//
// Every test binary links tests/testing/install_throwing_checks.cc, whose
// static initializer installs throwing_check_failure_handler so contract
// violations surface as catchable util::CheckFailure exceptions instead of
// aborting the whole gtest process. The helpers here let individual tests
// switch policy locally:
//
//   ScopedCheckHandler guard(&util::aborting_check_failure_handler);
//
// restores the previous handler on scope exit (used inside EXPECT_DEATH
// statements to exercise the abort+backtrace path).
#pragma once

#include "util/check.h"

namespace ecf::testing {

class ScopedCheckHandler {
 public:
  explicit ScopedCheckHandler(util::CheckFailureHandler handler)
      : previous_(util::set_check_failure_handler(handler)) {}
  ~ScopedCheckHandler() { util::set_check_failure_handler(previous_); }

  ScopedCheckHandler(const ScopedCheckHandler&) = delete;
  ScopedCheckHandler& operator=(const ScopedCheckHandler&) = delete;

 private:
  util::CheckFailureHandler previous_;
};

}  // namespace ecf::testing
