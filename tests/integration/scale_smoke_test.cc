// Million-object smoke: the scale machinery of DESIGN.md §12 (sharded
// event lanes, pooled per-op state, dense per-PG tables) under the full
// per-event SimInvariantChecker sweep. The config keeps the *object*
// count at 10^6 while holding the event count down (compact cluster,
// short checking period, light client load) so the per-event invariant
// pass stays affordable — this test is part of the tier-1 suite and the
// asan-ubsan matrix, where it is the only coverage of pool recycling,
// the object->PG route table, and lane-merged scheduling at real
// campaign cardinality.
#include <gtest/gtest.h>

#include "ecfault/coordinator.h"
#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

TEST(ScaleSmoke, MillionObjectsWithInvariantsAndClients) {
  ExperimentProfile p;
  p.cluster.workload.num_objects = 1000000;
  p.cluster.workload.object_size = ecf::util::Bytes(1 * util::MiB);
  p.cluster.num_hosts = 30;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 128;
  p.cluster.engine_lanes = 8;
  p.cluster.protocol.down_out_interval_s = 10.0;
  p.cluster.protocol.heartbeat_grace_s = 3.0;
  p.cluster.client.ops_per_s = 50;
  p.cluster.client.read_fraction = 0.9;
  p.cluster.client.op_bytes = ecf::util::Bytes(64 * util::KiB);
  p.cluster.client.zipf_theta = 0.99;
  p.cluster.client.horizon_s = ecf::util::SimSec(60.0);
  p.cluster.check_invariants = true;  // full sweep after every event
  p.fault.level = FaultLevel::kNode;
  p.fault.count = 1;
  p.fault.inject_at_s = ecf::util::SimSec(1.0);
  p.runs = 1;

  const auto r = Coordinator::run_experiment(p);
  EXPECT_TRUE(r.report.complete);
  EXPECT_GT(r.report.objects_repaired, 0u);
  EXPECT_GT(r.report.client_ops, 0u);
  EXPECT_GT(r.report.client_percentile(0.99), 0.0);
}

}  // namespace
}  // namespace ecf::ecfault
