// Golden test for the event-core rewrite (EventFn + indexed 4-ary heap +
// timer wheel): a full recovery campaign with network faults enabled must
// produce BIT-IDENTICAL results to the pre-rewrite engine (std::function +
// std::priority_queue + pending/cancelled hash sets).
//
// The expected values below were captured from the old engine immediately
// before the rewrite, printed with %a (exact hexfloat) — the same pattern
// as tests/cluster/fabric_golden_test.cc. The scenario deliberately works
// every event class the engine serves: heartbeats and failure detection
// (device fault at t=1), NVMe-oF keep-alives and the reconnect machine (a
// 6 s link flap at t=12 outlives the 5 s keep-alive interval), per-chunk
// recovery I/O, retry timers (2% packet loss), and latency-shifted
// completions (cluster-wide 2 ms at t=0.5).
//
// If this test fails after an engine change, the change reordered event
// execution (the (when, seq) tie-break) or perturbed timing arithmetic —
// both break run-to-run comparability of every published figure. Don't
// re-capture the goldens unless the reordering is intentional and
// understood; see DESIGN.md §11.
#include <gtest/gtest.h>

#include "ecfault/coordinator.h"
#include "ecfault/profile.h"
#include "sim/engine.h"
#include "util/bytes.h"

namespace ecf {
namespace {

ecfault::ExperimentProfile engine_golden_profile(bool clay) {
  ecfault::ExperimentProfile p;
  p.name = clay ? "clay(12,9,11)" : "rs(12,9)";
  p.cluster.num_hosts = 15;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 32;
  if (clay) {
    p.cluster.pool.ec_profile = {
        {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  }
  p.cluster.workload.num_objects = 200;
  p.cluster.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 30.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  p.cluster.check_invariants = true;
  p.fault.level = ecfault::FaultLevel::kDevice;
  p.fault.count = 1;
  p.fault.inject_at_s = ecf::util::SimSec(1.0);
  p.runs = 1;

  ecfault::NetworkFaultSpec lat;
  lat.kind = ecfault::NetFaultKind::kLinkLatency;
  lat.count = 0;  // cluster-wide
  lat.inject_at_s = ecf::util::SimSec(0.5);
  lat.latency_s = ecf::util::SimSec(0.002);
  lat.jitter_s = ecf::util::SimSec(0.0005);
  ecfault::NetworkFaultSpec loss;
  loss.kind = ecfault::NetFaultKind::kPacketLoss;
  loss.count = 0;
  loss.inject_at_s = ecf::util::SimSec(0.5);
  loss.loss_rate = 0.02;
  ecfault::NetworkFaultSpec flap;
  flap.kind = ecfault::NetFaultKind::kLinkFlap;
  flap.count = 2;
  flap.inject_at_s = ecf::util::SimSec(12.0);
  flap.down_for_s = ecf::util::SimSec(6.0);
  p.network_faults = {lat, loss, flap};
  return p;
}

TEST(EngineCoreGolden, RsRecoveryCampaignBitIdentical) {
  const auto r = ecfault::Coordinator::run_experiment(
      engine_golden_profile(/*clay=*/false));
  EXPECT_TRUE(r.report.complete);
  EXPECT_EQ(r.report.detection_time, 0x1.6713fd63d94b4p+3);
  EXPECT_EQ(r.report.recovery_end_time, 0x1.50f3396d1fbc3p+6);
  EXPECT_EQ(r.report.bytes_read_for_recovery, 2604662784u);
  EXPECT_EQ(r.report.bytes_written_for_recovery, 289406976u);
  EXPECT_EQ(r.report.objects_repaired, 69u);
  EXPECT_EQ(r.report.fabric_transport_wait_s, 0x1.93518ab56566p+3);
  EXPECT_EQ(r.report.fabric_retries, 19u);
  EXPECT_EQ(r.report.fabric_reconnects, 3u);
  EXPECT_EQ(r.actual_wa, 0x1.033eb851eb852p+2);
  EXPECT_EQ(r.log_records_published, 135u);

  // The rewrite's accounting must agree with what actually happened.
  const auto& es = r.report.engine_stats;
  EXPECT_GT(es.executed, 0u);
  EXPECT_EQ(es.scheduled, es.executed + es.cancelled);  // campaign drains
  EXPECT_GT(es.peak_queue_depth, 0u);
  // Deep recovery continuations (10+ captures) legitimately spill to the
  // slab recycler — in this recovery-heavy scenario they are the majority.
  // Spill accounting is per scheduled event, so it can never exceed it.
  EXPECT_LE(es.spilled_callbacks, es.scheduled);
  EXPECT_GT(es.spilled_callbacks, 0u);
  // Recovery I/O dominates the tagged profile of a recovery campaign.
  const auto tag_count = [&es](sim::EventTag t) {
    return es.executed_by_tag[static_cast<std::size_t>(t)];
  };
  EXPECT_GT(tag_count(sim::EventTag::kRecovery), 0u);
  EXPECT_GT(tag_count(sim::EventTag::kKeepAlive), 0u);   // keep-alives armed
  EXPECT_GT(tag_count(sim::EventTag::kReconnect), 0u);   // flap outlived KATO
  EXPECT_EQ(tag_count(sim::EventTag::kFault), 4u);  // device + 3 net levers
}

// Event lanes are a throughput knob, never a semantics knob: the same
// campaign sharded over 8 lanes (PG/host-pinned scheduling, per-lane slot
// tables, k-way merge pop) must reproduce every golden value bit for bit.
TEST(EngineCoreGolden, RsRecoveryCampaignBitIdenticalWithLanes) {
  auto p = engine_golden_profile(/*clay=*/false);
  p.cluster.engine_lanes = 8;
  const auto r = ecfault::Coordinator::run_experiment(p);
  EXPECT_TRUE(r.report.complete);
  EXPECT_EQ(r.report.detection_time, 0x1.6713fd63d94b4p+3);
  EXPECT_EQ(r.report.recovery_end_time, 0x1.50f3396d1fbc3p+6);
  EXPECT_EQ(r.report.bytes_read_for_recovery, 2604662784u);
  EXPECT_EQ(r.report.bytes_written_for_recovery, 289406976u);
  EXPECT_EQ(r.report.objects_repaired, 69u);
  EXPECT_EQ(r.report.fabric_transport_wait_s, 0x1.93518ab56566p+3);
  EXPECT_EQ(r.report.fabric_retries, 19u);
  EXPECT_EQ(r.report.fabric_reconnects, 3u);
  EXPECT_EQ(r.actual_wa, 0x1.033eb851eb852p+2);
  EXPECT_EQ(r.log_records_published, 135u);
  EXPECT_EQ(r.report.engine_stats.lane_count, 8u);
}

TEST(EngineCoreGolden, ClayRecoveryCampaignBitIdentical) {
  const auto r = ecfault::Coordinator::run_experiment(
      engine_golden_profile(/*clay=*/true));
  EXPECT_TRUE(r.report.complete);
  EXPECT_EQ(r.report.detection_time, 0x1.6713fd63d94b4p+3);
  EXPECT_EQ(r.report.recovery_end_time, 0x1.53a0abfaacb85p+6);
  EXPECT_EQ(r.report.bytes_read_for_recovery, 1061168526u);
  EXPECT_EQ(r.report.bytes_written_for_recovery, 289409598u);
  EXPECT_EQ(r.report.objects_repaired, 69u);
  EXPECT_EQ(r.report.fabric_transport_wait_s, 0x1.0b908aab06d98p+4);
  EXPECT_EQ(r.report.fabric_retries, 26u);
  EXPECT_EQ(r.report.fabric_reconnects, 3u);
  EXPECT_EQ(r.actual_wa, 0x1.034019999999ap+2);
  EXPECT_EQ(r.log_records_published, 135u);
}

}  // namespace
}  // namespace ecf
