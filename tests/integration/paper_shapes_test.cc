// Reproduction regression tests: the paper's headline *shapes* must keep
// holding as the simulator evolves. These run the real experiment
// configurations (single seeds, full workload) — a few hundred ms each.
//
// If one of these fails after a change, EXPERIMENTS.md is stale and the
// reproduction is broken; fix the model or re-calibrate, don't loosen the
// bounds casually.
#include <gtest/gtest.h>

#include "ecfault/coordinator.h"
#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

ExperimentProfile paper_default(bool clay) {
  ExperimentProfile p;
  if (clay) {
    p.cluster.pool.ec_profile = {
        {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  }
  p.cluster.workload.num_objects = 10000;
  p.fault.level = FaultLevel::kNode;
  p.runs = 1;
  // The reproduction runs double as invariant soaks: every event of the
  // full paper-scale experiments is validated by the SimInvariantChecker.
  p.cluster.check_invariants = true;
  return p;
}

double total(const ExperimentProfile& p) {
  const auto r = Coordinator::run_experiment(p);
  EXPECT_TRUE(r.report.complete);
  return r.report.total();
}

TEST(PaperShapes, Fig3CheckingFractionNearPaper) {
  // Paper: 53.7% of a 1128 s cycle.
  const auto r = Coordinator::run_experiment(paper_default(false));
  EXPECT_NEAR(r.report.checking_fraction(), 0.537, 0.05);
  EXPECT_NEAR(r.report.total(), 1128.0, 120.0);
}

TEST(PaperShapes, Fig2bLargerPgNumRecoversFaster) {
  ExperimentProfile pg256 = paper_default(false);
  ExperimentProfile pg1 = paper_default(false);
  pg1.cluster.pool.pg_num = 1;
  const double t256 = total(pg256);
  const double t1 = total(pg1);
  // Paper: pg=1 is ~1.22x of pg=256 for RS.
  EXPECT_GT(t1 / t256, 1.10);
  EXPECT_LT(t1 / t256, 1.45);
}

TEST(PaperShapes, Fig2cClayPathologicalAt4K) {
  ExperimentProfile rs4k = paper_default(false);
  rs4k.cluster.pool.stripe_unit = ecf::util::Bytes(4 * util::KiB);
  ExperimentProfile clay4k = paper_default(true);
  clay4k.cluster.pool.stripe_unit = ecf::util::Bytes(4 * util::KiB);
  const double ratio = total(clay4k) / total(rs4k);
  // Paper: 4.26x; we land in the same regime.
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 7.0);
}

TEST(PaperShapes, Fig2cHugeStripeUnitHurtsBothCodes) {
  ExperimentProfile rs4k = paper_default(false);
  rs4k.cluster.pool.stripe_unit = ecf::util::Bytes(4 * util::KiB);
  ExperimentProfile rs64m = paper_default(false);
  rs64m.cluster.pool.stripe_unit = ecf::util::Bytes(64 * util::MiB);
  const double ratio = total(rs64m) / total(rs4k);
  // Paper: 3.29x.
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.2);
}

TEST(PaperShapes, Fig2dLocalityCrossover) {
  // 3 same-host failures: Clay <= RS; 3 different-host: Clay >= RS.
  auto scenario = [](bool clay, FaultTopology topo) {
    ExperimentProfile p = paper_default(clay);
    p.cluster.osds_per_host = 3;
    p.cluster.pool.failure_domain = cluster::FailureDomain::kOsd;
    p.fault.level = FaultLevel::kDevice;
    p.fault.count = 3;
    p.fault.topology = topo;
    return p;
  };
  const double rs_same = total(scenario(false, FaultTopology::kSameHost));
  const double clay_same = total(scenario(true, FaultTopology::kSameHost));
  const double rs_diff =
      total(scenario(false, FaultTopology::kDifferentHosts));
  const double clay_diff =
      total(scenario(true, FaultTopology::kDifferentHosts));
  EXPECT_LE(clay_same, rs_same * 1.005);  // Clay wins (or ties) same-host
  EXPECT_GE(clay_diff, rs_diff * 1.005);  // RS wins different-hosts
}

TEST(PaperShapes, Fig2dMoreFailuresSlower) {
  auto scenario = [](int count) {
    ExperimentProfile p = paper_default(false);
    p.cluster.osds_per_host = 3;
    p.cluster.pool.failure_domain = cluster::FailureDomain::kOsd;
    p.fault.level = FaultLevel::kDevice;
    p.fault.count = count;
    p.fault.topology = FaultTopology::kSameHost;
    return p;
  };
  const double t1 = total(scenario(1));
  const double t2 = total(scenario(2));
  const double t3 = total(scenario(3));
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(PaperShapes, Table3WaMagnitudes) {
  // Paper: RS(12,9) 1.76, RS(15,12) 2.15 at the same 3-failure tolerance.
  cluster::ClusterConfig j1;
  cluster::Cluster a(j1);
  a.create_pool();
  a.apply_workload();
  EXPECT_NEAR(a.actual_wa(), 1.76, 0.08);

  cluster::ClusterConfig j2;
  j2.pool.ec_profile = {{"plugin", "jerasure"}, {"k", "12"}, {"m", "3"}};
  cluster::Cluster b(j2);
  b.create_pool();
  b.apply_workload();
  EXPECT_NEAR(b.actual_wa(), 2.15, 0.10);
  // The paper's point: the (n,k) dependence of the gap.
  EXPECT_GT(b.actual_wa() / (15.0 / 12.0), a.actual_wa() / (12.0 / 9.0));
}

TEST(PaperShapes, Fig2aAutotuneBest) {
  ExperimentProfile autotune = paper_default(false);
  autotune.cluster.cache = cluster::CacheConfig::autotuned();
  ExperimentProfile kv = paper_default(false);
  kv.cluster.cache = cluster::CacheConfig::kv_optimized();
  EXPECT_LT(total(autotune), total(kv));
}

}  // namespace
}  // namespace ecf::ecfault
