#include "nvmeof/nvmeof.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ecf::nvmeof {
namespace {

class NvmeofTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  sim::Disk disk_{sim::DiskParams{}};
  Target target_{"node1"};
};

TEST_F(NvmeofTest, CreateConnectRead) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 0.0);
  EXPECT_FALSE(target_.is_connected("nqn.test:a"));
  target_.connect("nqn.test:a", 0.0);
  EXPECT_TRUE(target_.is_connected("nqn.test:a"));
  const auto t = target_.read(eng_, "nqn.test:a", 4096);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 0.0);
  EXPECT_EQ(disk_.bytes_read(), 4096u);
}

TEST_F(NvmeofTest, RemoveSubsystemFailsIo) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 0.0);
  target_.connect("nqn.test:a", 0.0);
  target_.remove_subsystem("nqn.test:a", 0.0);
  EXPECT_FALSE(target_.is_connected("nqn.test:a"));
  EXPECT_FALSE(target_.read(eng_, "nqn.test:a", 4096).has_value());
  EXPECT_FALSE(target_.write(eng_, "nqn.test:a", 4096).has_value());
}

TEST_F(NvmeofTest, RemovedNqnCanBeRecreated) {
  // A replacement device re-provisioned under the same name must work: the
  // remove erases the subsystem entry rather than tombstoning it.
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 0.0);
  target_.connect("nqn.test:a", 1.0);
  target_.remove_subsystem("nqn.test:a", 2.0);
  sim::Disk replacement{sim::DiskParams{}};
  target_.create_subsystem("nqn.test:a", 2u << 30, &replacement, 3.0);
  target_.connect("nqn.test:a", 4.0);
  EXPECT_TRUE(target_.is_connected("nqn.test:a"));
  const auto t = target_.read(eng_, "nqn.test:a", 4096);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(replacement.bytes_read(), 4096u);
  EXPECT_EQ(disk_.bytes_read(), 0u);  // old device untouched
  ASSERT_EQ(target_.list().size(), 1u);
  EXPECT_EQ(target_.list()[0].ns.capacity_bytes, 2u << 30);
}

TEST_F(NvmeofTest, IoOnDisconnectedDeviceFails) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 0.0);
  // Created but never connected: host does not see it.
  EXPECT_FALSE(target_.write(eng_, "nqn.test:a", 512).has_value());
}

TEST_F(NvmeofTest, UnknownNqnFails) {
  EXPECT_FALSE(target_.read(eng_, "nqn.test:ghost", 1).has_value());
  EXPECT_THROW(target_.connect("nqn.test:ghost", 0.0), std::invalid_argument);
  EXPECT_THROW(target_.remove_subsystem("nqn.test:ghost", 0.0),
               std::invalid_argument);
}

TEST_F(NvmeofTest, DuplicateNqnRejected) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 0.0);
  EXPECT_THROW(target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 0.0),
               std::invalid_argument);
}

TEST_F(NvmeofTest, MalformedNqnRejected) {
  EXPECT_THROW(target_.create_subsystem("", 1, &disk_, 0.0),
               std::invalid_argument);
  EXPECT_THROW(target_.create_subsystem("disk1", 1, &disk_, 0.0),
               std::invalid_argument);
  EXPECT_THROW(target_.create_subsystem("nqn.", 1, &disk_, 0.0),
               std::invalid_argument);
  EXPECT_THROW(target_.create_subsystem("nqn.test", 1, &disk_, 0.0),
               std::invalid_argument);  // no identifier part
  EXPECT_THROW(target_.create_subsystem("nqn.:id", 1, &disk_, 0.0),
               std::invalid_argument);  // empty authority
  EXPECT_THROW(target_.create_subsystem("nqn.test:", 1, &disk_, 0.0),
               std::invalid_argument);  // empty identifier
  EXPECT_THROW(target_.create_subsystem("nqn.test:a:b", 1, &disk_, 0.0),
               std::invalid_argument);  // double separator
  EXPECT_TRUE(target_.list().empty());
}

TEST(NvmeofNqnValidity, Shapes) {
  EXPECT_TRUE(valid_nqn("nqn.2024-04.io.ecfault:host3.nvme1"));
  EXPECT_TRUE(valid_nqn("nqn.test:a"));
  EXPECT_FALSE(valid_nqn(""));
  EXPECT_FALSE(valid_nqn("nqn."));
  EXPECT_FALSE(valid_nqn("qnq.test:a"));
  EXPECT_FALSE(valid_nqn("nqn.test"));
  EXPECT_FALSE(valid_nqn("nqn.test:"));
  EXPECT_FALSE(valid_nqn("nqn.:x"));
  EXPECT_FALSE(valid_nqn("nqn.a:b:c"));
}

TEST_F(NvmeofTest, NullDiskRejected) {
  EXPECT_THROW(target_.create_subsystem("nqn.test:x", 1, nullptr, 0.0),
               std::invalid_argument);
}

TEST_F(NvmeofTest, AdminLogRecordsLifecycle) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 1.0);
  target_.connect("nqn.test:a", 2.0);
  target_.remove_subsystem("nqn.test:a", 3.0);
  const auto& log = target_.admin_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].op, "create");
  EXPECT_EQ(log[1].op, "connect");
  EXPECT_EQ(log[2].op, "remove");
  EXPECT_DOUBLE_EQ(log[2].time, 3.0);
}

TEST_F(NvmeofTest, AdminLogRejectsBackwardsTime) {
  // The admin log mirrors the simulation timeline; a timestamp running
  // backwards means a caller passed a stale clock and violates the
  // ECF_CHECK contract.
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 5.0);
  EXPECT_THROW(target_.connect("nqn.test:a", 4.0), std::logic_error);
  // Equal timestamps are fine (several admin ops in one event).
  target_.connect("nqn.test:a", 5.0);
  EXPECT_EQ(target_.admin_log().size(), 2u);
}

TEST_F(NvmeofTest, ListShowsSubsystems) {
  sim::Disk d2{sim::DiskParams{}};
  target_.create_subsystem("nqn.test:a", 100, &disk_, 0.0);
  target_.create_subsystem("nqn.test:b", 200, &d2, 0.0);
  target_.connect("nqn.test:b", 0.0);
  const auto list = target_.list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].nqn, "nqn.test:a");
  EXPECT_FALSE(list[0].connected);
  EXPECT_TRUE(list[1].connected);
  EXPECT_EQ(list[1].ns.capacity_bytes, 200u);
}

TEST(NvmeofNqn, MakeNqnFormat) {
  EXPECT_EQ(make_nqn(3, 1), "nqn.2024-04.io.ecfault:host3.nvme1");
  EXPECT_TRUE(valid_nqn(make_nqn(0, 0)));
  EXPECT_TRUE(valid_nqn(make_nqn(29, 2)));
}

}  // namespace
}  // namespace ecf::nvmeof
