#include "nvmeof/nvmeof.h"

#include <gtest/gtest.h>

namespace ecf::nvmeof {
namespace {

class NvmeofTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  sim::Disk disk_{sim::DiskParams{}};
  Target target_{"node1"};
};

TEST_F(NvmeofTest, CreateConnectRead) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_);
  EXPECT_FALSE(target_.is_connected("nqn.test:a"));
  target_.connect("nqn.test:a");
  EXPECT_TRUE(target_.is_connected("nqn.test:a"));
  const auto t = target_.read(eng_, "nqn.test:a", 4096);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 0.0);
  EXPECT_EQ(disk_.bytes_read(), 4096u);
}

TEST_F(NvmeofTest, RemoveSubsystemFailsIo) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_);
  target_.connect("nqn.test:a");
  target_.remove_subsystem("nqn.test:a");
  EXPECT_FALSE(target_.is_connected("nqn.test:a"));
  EXPECT_FALSE(target_.read(eng_, "nqn.test:a", 4096).has_value());
  EXPECT_FALSE(target_.write(eng_, "nqn.test:a", 4096).has_value());
}

TEST_F(NvmeofTest, IoOnDisconnectedDeviceFails) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_);
  // Created but never connected: host does not see it.
  EXPECT_FALSE(target_.write(eng_, "nqn.test:a", 512).has_value());
}

TEST_F(NvmeofTest, UnknownNqnFails) {
  EXPECT_FALSE(target_.read(eng_, "nqn.test:ghost", 1).has_value());
  EXPECT_THROW(target_.connect("nqn.test:ghost"), std::invalid_argument);
  EXPECT_THROW(target_.remove_subsystem("nqn.test:ghost"),
               std::invalid_argument);
}

TEST_F(NvmeofTest, DuplicateNqnRejected) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_);
  EXPECT_THROW(target_.create_subsystem("nqn.test:a", 1 << 30, &disk_),
               std::invalid_argument);
}

TEST_F(NvmeofTest, NullDiskRejected) {
  EXPECT_THROW(target_.create_subsystem("nqn.test:x", 1, nullptr),
               std::invalid_argument);
}

TEST_F(NvmeofTest, AdminLogRecordsLifecycle) {
  target_.create_subsystem("nqn.test:a", 1 << 30, &disk_, 1.0);
  target_.connect("nqn.test:a", 2.0);
  target_.remove_subsystem("nqn.test:a", 3.0);
  const auto& log = target_.admin_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].op, "create");
  EXPECT_EQ(log[1].op, "connect");
  EXPECT_EQ(log[2].op, "remove");
  EXPECT_DOUBLE_EQ(log[2].time, 3.0);
}

TEST_F(NvmeofTest, ListShowsSubsystems) {
  sim::Disk d2{sim::DiskParams{}};
  target_.create_subsystem("nqn.test:a", 100, &disk_);
  target_.create_subsystem("nqn.test:b", 200, &d2);
  target_.connect("nqn.test:b");
  const auto list = target_.list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].nqn, "nqn.test:a");
  EXPECT_FALSE(list[0].connected);
  EXPECT_TRUE(list[1].connected);
  EXPECT_EQ(list[1].ns.capacity_bytes, 200u);
}

TEST(NvmeofNqn, MakeNqnFormat) {
  EXPECT_EQ(make_nqn(3, 1), "nqn.2024-04.io.ecfault:host3.nvme1");
}

}  // namespace
}  // namespace ecf::nvmeof
