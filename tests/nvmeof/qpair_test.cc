#include "nvmeof/qpair.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ecf::nvmeof {
namespace {

TEST(QueuePair, RejectsBadDepth) {
  EXPECT_THROW(QueuePair(1, 0), std::logic_error);
  EXPECT_THROW(QueuePair(1, -3), std::logic_error);
}

TEST(QueuePair, UnenforcedSubmitStartsImmediately) {
  QueuePair q(1, 2);
  const auto a = q.submit(1.0, /*enforce=*/false);
  q.commit(a, 5.0);
  const auto b = q.submit(1.0, false);
  q.commit(b, 5.0);
  // Third command exceeds depth 2, but without enforcement it still
  // starts at `now` — the bound is accounting-only.
  const auto c = q.submit(1.0, false);
  EXPECT_DOUBLE_EQ(c.start, 1.0);
  EXPECT_DOUBLE_EQ(q.queued_seconds(), 0.0);
}

TEST(QueuePair, EnforcedSubmitWaitsForFreeSlot) {
  QueuePair q(1, 2);
  const auto a = q.submit(0.0, true);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  q.commit(a, 10.0);
  const auto b = q.submit(0.0, true);
  EXPECT_DOUBLE_EQ(b.start, 0.0);
  q.commit(b, 4.0);
  // Both slots busy; the next command must wait for the earliest
  // completion (t=4, slot freed by b).
  const auto c = q.submit(1.0, true);
  EXPECT_DOUBLE_EQ(c.start, 4.0);
  EXPECT_EQ(c.depth_at_submit, 2);
  EXPECT_DOUBLE_EQ(q.queued_seconds(), 3.0);
  q.commit(c, 6.0);
  // After c's slot is taken, earliest free time is min(10, next-free).
  const auto d = q.submit(5.0, true);
  EXPECT_DOUBLE_EQ(d.start, 6.0);
}

TEST(QueuePair, InFlightAndHistogramTrackOutstanding) {
  QueuePair q(1, 4);
  const auto a = q.submit(0.0, true);
  q.commit(a, 2.0);
  const auto b = q.submit(0.0, true);
  q.commit(b, 3.0);
  EXPECT_EQ(q.in_flight(1.0), 2);
  EXPECT_EQ(q.in_flight(2.5), 1);
  EXPECT_EQ(q.in_flight(3.5), 0);
  // Histogram: first submit saw 0 outstanding, second saw 1.
  const auto& h = q.depth_histogram();
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(q.submitted(), 2u);
}

TEST(QueuePair, HistogramSaturatesAtDepthBucket) {
  QueuePair q(1, 2);
  for (int i = 0; i < 5; ++i) {
    const auto s = q.submit(0.0, /*enforce=*/false);
    q.commit(s, 100.0);  // all outstanding forever
  }
  const auto& h = q.depth_histogram();
  ASSERT_EQ(h.size(), 3u);  // buckets 0..depth
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 3u);  // 2, 3, 4 outstanding all land in the last bucket
}

TEST(QueuePair, LowestIndexSlotWinsTies) {
  QueuePair q(1, 3);
  // All slots free at t=0: submissions must reuse slot 0 first
  // (deterministic tie-break, keeps replays stable).
  const auto a = q.submit(0.0, true);
  EXPECT_EQ(a.index, 0u);
  q.commit(a, 1.0);
  const auto b = q.submit(0.0, true);
  EXPECT_EQ(b.index, 1u);
}

}  // namespace
}  // namespace ecf::nvmeof
