#include "nvmeof/fabric.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ecf::nvmeof {
namespace {

sim::FabricParams fast_reconnect_params() {
  sim::FabricParams p;  // ideal transport; only the state machine timing
  p.keepalive_interval_s = ecf::util::SimSec(1.0);
  p.reconnect_backoff_s = ecf::util::SimSec(0.5);
  p.reconnect_backoff_max_s = ecf::util::SimSec(2.0);
  p.ctrl_loss_timeout_s = ecf::util::SimSec(10.0);
  p.retry_timeout_s = ecf::util::SimSec(0.5);
  return p;
}

class FabricTest : public ::testing::Test {
 protected:
  ConnectionId connect(Fabric& f) {
    const int h = f.add_host("host0");
    return f.connect(h, "nqn.test:a", &disk_, 0.0);
  }

  sim::Engine eng_;
  sim::Disk disk_{sim::DiskParams{}};
};

TEST_F(FabricTest, DefaultFabricIsTimingInert) {
  // The acceptance bar for the whole subsystem: with default params the
  // disk must see exactly the call it would have seen without a fabric.
  Fabric fab(&eng_, sim::FabricParams{}, 1);
  const ConnectionId id = connect(fab);
  sim::Disk twin{sim::DiskParams{}};

  for (int i = 0; i < 8; ++i) {
    const std::uint64_t bytes = 1u << (12 + i % 4);
    const auto via_fabric = fab.read(id, bytes, 1, 0.01);
    const sim::SimTime direct = twin.read(eng_, bytes, 1, 0.01);
    ASSERT_TRUE(via_fabric.has_value());
    EXPECT_DOUBLE_EQ(via_fabric->complete, direct);
    EXPECT_DOUBLE_EQ(via_fabric->transport_wait_s, 0.0);
    EXPECT_EQ(via_fabric->retries, 0u);
  }
  const auto w = fab.write(id, 4096, 1, 0.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->complete, twin.write(eng_, 4096, 1, 0.0));
  EXPECT_DOUBLE_EQ(fab.totals().transport_wait_s, 0.0);
  EXPECT_EQ(fab.stats(id).commands, 9u);
}

TEST_F(FabricTest, LinkLatencyChargesOneRoundTrip) {
  Fabric fab(&eng_, sim::FabricParams{}, 1);
  const ConnectionId id = connect(fab);
  fab.set_link_latency(0, 0.005, 0.0);
  const auto r = fab.read(id, 4096, 1, 0.0);
  ASSERT_TRUE(r.has_value());
  // Request hop + response hop, nothing else (infinite bandwidth).
  EXPECT_NEAR(r->transport_wait_s, 0.010, 1e-12);
  // Clearing the lever restores the inert fast path.
  fab.set_link_latency(0, 0.0, 0.0);
  const auto r2 = fab.read(id, 4096, 1, 0.0);
  ASSERT_TRUE(r2.has_value());
  EXPECT_DOUBLE_EQ(r2->transport_wait_s, 0.0);
}

TEST_F(FabricTest, BandwidthCapChargesReadSerialization) {
  Fabric fab(&eng_, sim::FabricParams{}, 1);
  const ConnectionId id = connect(fab);
  fab.set_link_bandwidth_cap(0, 1e6);  // 1 MB/s
  // A read moves its payload on the response (rx) leg only.
  const auto r = fab.read(id, 500000, 1, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->transport_wait_s, 0.5, 1e-9);
  EXPECT_EQ(fab.link(0).bytes_rx, 500000u);
}

TEST_F(FabricTest, BandwidthCapChargesWriteSerialization) {
  Fabric fab(&eng_, sim::FabricParams{}, 1);
  const ConnectionId id = connect(fab);
  fab.set_link_bandwidth_cap(0, 1e6);
  // A write carries the payload on the request (tx) leg.
  const auto w = fab.write(id, 250000, 1, 0.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(w->transport_wait_s, 0.25, 1e-9);
  EXPECT_EQ(fab.link(0).bytes_tx, 250000u);
}

TEST_F(FabricTest, BandwidthSharingContendsOnTheLink) {
  // Two reads submitted at the same instant share the host's rx server:
  // the second serializes behind the first (duplex-port contention).
  Fabric fab(&eng_, sim::FabricParams{}, 1);
  const ConnectionId id = connect(fab);
  fab.set_link_bandwidth_cap(0, 1e6);
  const auto a = fab.read(id, 500000, 1, 0.0);
  const auto b = fab.read(id, 500000, 1, 0.0);
  ASSERT_TRUE(a && b);
  EXPECT_GT(b->transport_wait_s, a->transport_wait_s);
  EXPECT_GT(b->complete, a->complete);
}

TEST_F(FabricTest, PacketLossRetriesDeterministically) {
  sim::FabricParams p;
  p.retry_timeout_s = ecf::util::SimSec(0.25);
  Fabric fab(&eng_, p, 1);
  const ConnectionId id = connect(fab);
  fab.set_packet_loss(0, 0.5);
  // rate 0.5 over two hops per command: the accumulator crosses 1.0 on
  // every command's response leg — exactly one retransmission each.
  for (int i = 0; i < 4; ++i) {
    const auto r = fab.read(id, 4096, 1, 0.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->retries, 1u);
    EXPECT_NEAR(r->transport_wait_s, 0.25, 1e-12);
  }
  EXPECT_EQ(fab.stats(id).retries, 4u);
}

TEST_F(FabricTest, TcpProfileChargesFramingOverhead) {
  Fabric fab(&eng_, sim::tcp_fabric(), 1);
  const ConnectionId id = connect(fab);
  const auto r = fab.read(id, 1u << 20, 4, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->transport_wait_s, 0.0);
  // Wire bytes exceed the payload: capsule on the request, PDU headers on
  // the response.
  EXPECT_GT(fab.link(0).bytes_rx, 1u << 20);
  EXPECT_GT(fab.link(0).bytes_tx, 0u);
}

TEST_F(FabricTest, ShortFlapOnlyStallsCommands) {
  Fabric fab(&eng_, fast_reconnect_params(), 1);
  const ConnectionId id = connect(fab);
  fab.set_link_down(0, 0.4);  // shorter than the 1s keep-alive interval
  const auto r = fab.read(id, 4096, 1, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->transport_wait_s, 0.4);
  EXPECT_GT(r->retries, 0u);
  eng_.run();
  // Keep-alive fired after the window closed: still CONNECTED, no
  // reconnect cycle.
  EXPECT_EQ(fab.state(id), ConnState::kConnected);
  EXPECT_EQ(fab.stats(id).keepalives, 1u);
  EXPECT_EQ(fab.stats(id).reconnects, 0u);
}

TEST_F(FabricTest, ReconnectBackoffTiming) {
  Fabric fab(&eng_, fast_reconnect_params(), 1);
  const ConnectionId id = connect(fab);
  std::vector<std::string> events;
  fab.set_on_event([&](ConnectionId, const std::string& m) {
    events.push_back(std::to_string(eng_.now()) + " " + m);
  });

  fab.set_link_down(0, 3.0);
  eng_.run();

  // KA fires at t=1 (TIMED_OUT); attempts at 1.5 and 2.5 find the link
  // still dark (backoff 0.5 doubling to 1.0, 2.0); the attempt at 4.5
  // succeeds — 3.5s after the controller loss, on the 3rd attempt.
  EXPECT_EQ(fab.state(id), ConnState::kConnected);
  const ConnectionStats& st = fab.stats(id);
  EXPECT_EQ(st.keepalives, 1u);
  EXPECT_EQ(st.reconnect_attempts, 3u);
  EXPECT_EQ(st.reconnects, 1u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].find("state=TIMED_OUT"), std::string::npos);
  EXPECT_NE(events[1].find("reconnected after 3.500s (3 attempts)"),
            std::string::npos);
  EXPECT_EQ(fab.totals().reconnects, 1u);
}

TEST_F(FabricTest, ControllerLossTimeoutFailsDevice) {
  sim::FabricParams p = fast_reconnect_params();
  p.ctrl_loss_timeout_s = ecf::util::SimSec(3.0);
  Fabric fab(&eng_, p, 1);
  const ConnectionId id = connect(fab);
  ConnectionId failed = kNoConnection;
  fab.set_on_failed([&](ConnectionId c) { failed = c; });

  fab.set_link_down(0, 100.0);
  eng_.run();

  // TIMED_OUT at t=1; attempts at 1.5 and 2.5 are within ctrl_loss_tmo;
  // the attempt at 4.5 exceeds it (3.5s elapsed) and gives up.
  EXPECT_EQ(fab.state(id), ConnState::kFailed);
  EXPECT_EQ(failed, id);
  EXPECT_EQ(fab.stats(id).reconnect_attempts, 3u);
  EXPECT_EQ(fab.stats(id).reconnects, 0u);
  // The device is gone from the initiator: I/O now returns EIO.
  EXPECT_FALSE(fab.read(id, 4096, 1, 0.0).has_value());
}

TEST_F(FabricTest, RestoreLinkBeforeKatoKeepsConnection) {
  Fabric fab(&eng_, fast_reconnect_params(), 1);
  const ConnectionId id = connect(fab);
  fab.set_link_down(0, 100.0);
  eng_.schedule(0.5, [&] { fab.restore_link(0); });
  eng_.run();
  // The window closed before the keep-alive deadline: no state change.
  EXPECT_EQ(fab.state(id), ConnState::kConnected);
  EXPECT_EQ(fab.stats(id).keepalives, 1u);
  EXPECT_EQ(fab.stats(id).reconnect_attempts, 0u);
}

TEST_F(FabricTest, DisconnectReturnsEioAndIsIdempotent) {
  Fabric fab(&eng_, sim::FabricParams{}, 1);
  const ConnectionId id = connect(fab);
  ASSERT_TRUE(fab.read(id, 4096, 1, 0.0).has_value());
  fab.disconnect(id, 1.0);
  EXPECT_FALSE(fab.read(id, 4096, 1, 0.0).has_value());
  EXPECT_FALSE(fab.write(id, 4096, 1, 0.0).has_value());
  fab.disconnect(id, 2.0);  // second teardown is a no-op
  EXPECT_EQ(fab.stats(id).commands, 1u);
}

TEST_F(FabricTest, QpairBackpressureDelaysWhenEnforced) {
  sim::FabricParams p;
  p.io_qpairs = 1;
  p.qpair_depth = 1;
  p.enforce_qpair_depth = true;
  Fabric fab(&eng_, p, 1);
  const ConnectionId id = connect(fab);

  // Three commands issued back to back into a single depth-1 qpair: the
  // 2nd and 3rd must wait for the previous completion before starting.
  const auto a = fab.write(id, 1u << 20, 1, 0.0);
  const auto b = fab.write(id, 1u << 20, 1, 0.0);
  const auto c = fab.write(id, 1u << 20, 1, 0.0);
  ASSERT_TRUE(a && b && c);
  EXPECT_GT(b->complete, a->complete);
  EXPECT_GT(c->complete, b->complete);
  const ConnectionStats& st = fab.stats(id);
  EXPECT_GT(st.backpressure_wait_s, 0.0);
  // Backpressure is part of the transport attribution.
  EXPECT_GE(st.transport_wait_s, st.backpressure_wait_s);
  const auto hist = fab.depth_histogram(id);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 1u);  // first command found an empty queue
  EXPECT_EQ(hist[1], 2u);  // the others found it full
}

TEST_F(FabricTest, DepthHistogramRecordsWithoutEnforcement) {
  sim::FabricParams p;  // inert: accounting only
  p.io_qpairs = 2;
  Fabric fab(&eng_, p, 1);
  const ConnectionId id = connect(fab);
  for (int i = 0; i < 6; ++i) fab.write(id, 1u << 20, 1, 0.0);
  std::uint64_t total = 0;
  for (const std::uint64_t n : fab.depth_histogram(id)) total += n;
  EXPECT_EQ(total, 6u);
  EXPECT_DOUBLE_EQ(fab.stats(id).backpressure_wait_s, 0.0);
  EXPECT_GE(fab.connection_in_flight(id), 0);
}

TEST(FabricTelemetryTest, FlushesOnceOnDestruction) {
  fabric_telemetry().reset();
  {
    sim::Engine eng;
    sim::Disk disk{sim::DiskParams{}};
    Fabric fab(&eng, sim::FabricParams{}, 1);
    const int h = fab.add_host("host0");
    const ConnectionId id = fab.connect(h, "nqn.test:a", &disk, 0.0);
    fab.read(id, 4096, 1, 0.0);
    fab.read(id, 4096, 1, 0.0);
    EXPECT_EQ(fabric_telemetry().snapshot().fabrics, 0u);  // not yet flushed
  }
  const FabricTelemetry::Snapshot s = fabric_telemetry().snapshot();
  EXPECT_EQ(s.fabrics, 1u);
  EXPECT_EQ(s.connections, 1u);
  EXPECT_EQ(s.commands, 2u);
  fabric_telemetry().reset();
}

}  // namespace
}  // namespace ecf::nvmeof
