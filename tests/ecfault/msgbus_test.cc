#include "ecfault/msgbus.h"

#include <gtest/gtest.h>

namespace ecf::ecfault {
namespace {

TEST(MsgBus, PublishRetainsInOrder) {
  MsgBus bus;
  bus.publish({"t", "osd.1", "a", 1.0});
  bus.publish({"t", "osd.2", "b", 2.0});
  const auto& log = bus.topic_log("t");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].payload, "a");
  EXPECT_EQ(log[1].payload, "b");
  EXPECT_EQ(bus.total_published(), 2u);
}

TEST(MsgBus, SubscribersSeeSubsequentMessages) {
  MsgBus bus;
  std::vector<std::string> seen;
  bus.publish({"t", "n", "before", 0.0});
  bus.subscribe("t", [&](const BusMessage& m) { seen.push_back(m.payload); });
  bus.publish({"t", "n", "after", 1.0});
  EXPECT_EQ(seen, (std::vector<std::string>{"after"}));
}

TEST(MsgBus, TopicsAreIndependent) {
  MsgBus bus;
  int a_count = 0;
  bus.subscribe("a", [&](const BusMessage&) { ++a_count; });
  bus.publish({"b", "n", "x", 0.0});
  EXPECT_EQ(a_count, 0);
  EXPECT_EQ(bus.topic_log("a").size(), 0u);
  EXPECT_EQ(bus.topic_log("b").size(), 1u);
}

TEST(MsgBus, MultipleSubscribersAllNotified) {
  MsgBus bus;
  int n1 = 0, n2 = 0;
  bus.subscribe("t", [&](const BusMessage&) { ++n1; });
  bus.subscribe("t", [&](const BusMessage&) { ++n2; });
  bus.publish({"t", "n", "x", 0.0});
  EXPECT_EQ(n1, 1);
  EXPECT_EQ(n2, 1);
}

TEST(MsgBus, UnknownTopicLogIsEmpty) {
  MsgBus bus;
  EXPECT_TRUE(bus.topic_log("ghost").empty());
}

TEST(MsgBus, TopicsEnumerated) {
  MsgBus bus;
  bus.publish({"beta", "n", "x", 0.0});
  bus.publish({"alpha", "n", "y", 0.0});
  const auto topics = bus.topics();
  ASSERT_EQ(topics.size(), 2u);
  EXPECT_EQ(topics[0], "alpha");  // map order
  EXPECT_EQ(topics[1], "beta");
}

}  // namespace
}  // namespace ecf::ecfault
