// Network-level fault injection through the ECFault control plane:
// profile round-trip, topology-aware planning, per-node Worker levers,
// Coordinator scheduling, and log classification of fabric events.
#include <gtest/gtest.h>

#include "ecfault/coordinator.h"
#include "ecfault/logger.h"
#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

ExperimentProfile net_profile() {
  ExperimentProfile p;
  p.name = "dirty-network";
  p.cluster.num_hosts = 8;
  p.cluster.osds_per_host = 2;
  // RS(6,4): placeable across 8 hosts with a host failure domain.
  p.cluster.pool.ec_profile = {{"plugin", "jerasure"}, {"k", "4"}, {"m", "2"}};
  p.cluster.pool.pg_num = 16;
  p.cluster.workload.num_objects = 60;
  p.cluster.workload.object_size = ecf::util::Bytes(8 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 10.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  p.fault.level = FaultLevel::kDevice;
  p.fault.count = 1;
  p.fault.inject_at_s = ecf::util::SimSec(1.0);
  p.runs = 1;
  return p;
}

TEST(NetworkProfile, JsonRoundTrip) {
  ExperimentProfile p = net_profile();
  p.fabric = "tcp";
  NetworkFaultSpec lat;
  lat.kind = NetFaultKind::kLinkLatency;
  lat.count = 0;
  lat.inject_at_s = ecf::util::SimSec(0.5);
  lat.latency_s = ecf::util::SimSec(0.002);
  lat.jitter_s = ecf::util::SimSec(0.0005);
  NetworkFaultSpec part;
  part.kind = NetFaultKind::kPartition;
  part.count = 1;
  part.down_for_s = ecf::util::SimSec(42.0);
  p.network_faults = {lat, part};

  const ExperimentProfile q = ExperimentProfile::parse(p.dump());
  EXPECT_EQ(q.fabric, "tcp");
  ASSERT_EQ(q.network_faults.size(), 2u);
  EXPECT_EQ(q.network_faults[0].kind, NetFaultKind::kLinkLatency);
  EXPECT_DOUBLE_EQ(q.network_faults[0].latency_s, 0.002);
  EXPECT_DOUBLE_EQ(q.network_faults[0].jitter_s, 0.0005);
  EXPECT_DOUBLE_EQ(q.network_faults[0].inject_at_s, 0.5);
  EXPECT_EQ(q.network_faults[1].kind, NetFaultKind::kPartition);
  EXPECT_EQ(q.network_faults[1].count, 1);
  EXPECT_DOUBLE_EQ(q.network_faults[1].down_for_s, 42.0);
}

TEST(NetworkProfile, DefaultsOmitNetworkFaults) {
  const ExperimentProfile p = net_profile();
  const ExperimentProfile q = ExperimentProfile::parse(p.dump());
  EXPECT_TRUE(q.network_faults.empty());
  EXPECT_EQ(q.fabric, "none");
}

TEST(NetworkProfile, RejectsMalformedSpecs) {
  EXPECT_THROW(ExperimentProfile::parse(R"({"fabric": "carrier-pigeon"})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"network_faults": [{"kind": "wormhole"}]})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"network_faults": [{"kind": "packet_loss",
                       "loss_rate": 1.5}]})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"network_faults": [{"kind": "link_latency",
                       "latency_s": -1}]})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"network_faults": [{"kind": "link_flap",
                       "count": -2}]})"),
               std::invalid_argument);
}

TEST(NetworkProfile, KindNamesRoundTrip) {
  for (const NetFaultKind k :
       {NetFaultKind::kLinkLatency, NetFaultKind::kBandwidthCap,
        NetFaultKind::kPacketLoss, NetFaultKind::kLinkFlap,
        NetFaultKind::kPartition}) {
    EXPECT_EQ(net_fault_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(net_fault_kind_from_string("bogus"), std::invalid_argument);
}

TEST(FaultInjector, PlanNetworkCountZeroHitsEveryHost) {
  ExperimentProfile p = net_profile();
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  cl.apply_workload();
  FaultInjector injector(cl);
  NetworkFaultSpec spec;
  spec.kind = NetFaultKind::kLinkLatency;
  spec.count = 0;
  const auto hosts = injector.plan_network(spec);
  ASSERT_EQ(hosts.size(), 8u);
  for (cluster::HostId h = 0; h < 8; ++h) EXPECT_EQ(hosts[h], h);
}

TEST(FaultInjector, PlanNetworkPicksDataBearingHosts) {
  ExperimentProfile p = net_profile();
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  cl.apply_workload();
  FaultInjector injector(cl);
  NetworkFaultSpec spec;
  spec.kind = NetFaultKind::kBandwidthCap;
  spec.count = 2;
  const auto hosts = injector.plan_network(spec);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_NE(hosts[0], hosts[1]);
  for (const cluster::HostId h : hosts) {
    bool has_data = false;
    for (const cluster::OsdId o : cl.osds_on_host(h)) {
      if (!cl.pgs_on_osd(o).empty()) has_data = true;
    }
    EXPECT_TRUE(has_data);
  }
}

TEST(FaultInjector, PartitionPlanRespectsTolerance) {
  ExperimentProfile p = net_profile();
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  cl.apply_workload();
  FaultInjector injector(cl);
  NetworkFaultSpec spec;
  spec.kind = NetFaultKind::kPartition;
  // Partitioning every host would fail 16 OSDs — far beyond m=2.
  spec.count = 0;
  EXPECT_THROW(injector.plan_network(spec), std::runtime_error);
  // A single host (2 OSDs, different PIs) is within tolerance.
  spec.count = 1;
  EXPECT_EQ(injector.plan_network(spec).size(), 1u);
}

TEST(Worker, NetworkLeversActOnOwnHostOnly) {
  ExperimentProfile p = net_profile();
  MsgBus bus;
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  cl.apply_workload();
  Worker w(&cl, /*host=*/3, &bus);
  w.apply_link_latency(0.002, 0.0);
  w.apply_bandwidth_cap(50e6);
  w.apply_packet_loss(0.01);
  EXPECT_DOUBLE_EQ(cl.fabric().link(3).extra_latency_s, 0.002);
  EXPECT_DOUBLE_EQ(cl.fabric().link(3).bw_cap_bytes_per_s, 50e6);
  EXPECT_DOUBLE_EQ(cl.fabric().link(3).loss_rate, 0.01);
  // Other hosts untouched.
  EXPECT_DOUBLE_EQ(cl.fabric().link(0).extra_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(cl.fabric().link(0).loss_rate, 0.0);
  // Every lever announced on the control topic.
  EXPECT_EQ(bus.topic_log("ecfault.control").size(), 3u);
}

TEST(Worker, ListSubsystemsSortedByNqn) {
  ExperimentProfile p = net_profile();
  MsgBus bus;
  cluster::Cluster cl(p.cluster);
  Worker w(&cl, 0, &bus);
  const auto subsystems = w.list_subsystems();
  ASSERT_EQ(subsystems.size(), 2u);
  EXPECT_LT(subsystems[0].nqn, subsystems[1].nqn);
}

TEST(Coordinator, DirtyNetworkExperimentAttributesTransportWait) {
  ExperimentProfile p = net_profile();
  NetworkFaultSpec lat;
  lat.kind = NetFaultKind::kLinkLatency;
  lat.count = 0;
  lat.inject_at_s = ecf::util::SimSec(0.5);  // before the device fault at t=1
  lat.latency_s = ecf::util::SimSec(0.002);
  p.network_faults = {lat};

  const ExperimentResult clean = Coordinator::run_experiment(net_profile());
  const ExperimentResult dirty = Coordinator::run_experiment(p);
  ASSERT_TRUE(clean.report.complete);
  ASSERT_TRUE(dirty.report.complete);
  EXPECT_EQ(clean.report.fabric_transport_wait_s, 0.0);
  EXPECT_GT(dirty.report.fabric_transport_wait_s, 0.0);
  EXPECT_GT(dirty.report.recovery_end_time, clean.report.recovery_end_time);
}

TEST(Coordinator, TcpFabricProfileChargesTransport) {
  ExperimentProfile p = net_profile();
  p.fabric = "tcp";
  const ExperimentResult r = Coordinator::run_experiment(p);
  ASSERT_TRUE(r.report.complete);
  EXPECT_GT(r.report.fabric_transport_wait_s, 0.0);
}

TEST(Coordinator, LinkFlapExperimentSurvives) {
  ExperimentProfile p = net_profile();
  NetworkFaultSpec flap;
  flap.kind = NetFaultKind::kLinkFlap;
  flap.count = 1;
  flap.inject_at_s = ecf::util::SimSec(2.0);
  flap.down_for_s = ecf::util::SimSec(0.2);
  p.network_faults = {flap};
  const ExperimentResult r = Coordinator::run_experiment(p);
  ASSERT_TRUE(r.report.complete);
  EXPECT_EQ(r.report.fabric_reconnects, 0u);
}

TEST(LoggerClassify, FabricEventsAreFailureClass) {
  EXPECT_EQ(classify("fabric: link latency injected: +2.000ms jitter=0.000ms"),
            LogClass::kFailure);
  EXPECT_EQ(classify("fabric: network partition: host unreachable for 42.0s"),
            LogClass::kFailure);
  EXPECT_EQ(classify("fabric: packet loss injected: rate=0.0100"),
            LogClass::kFailure);
  EXPECT_EQ(
      classify("fabric: osd.3 keep-alive timeout, controller lost; "
               "state=TIMED_OUT"),
      LogClass::kFailure);
}

}  // namespace
}  // namespace ecf::ecfault
