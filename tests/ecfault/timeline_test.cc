#include "ecfault/timeline.h"

#include <gtest/gtest.h>

namespace ecf::ecfault {
namespace {

std::vector<cluster::LogRecord> sample_logs() {
  return {
      {100.0, "mon.0", "mon", "osd.3 reported failed; marked down (failure detected)"},
      {110.0, "mgr.0", "mgr", "receiving heartbeats; cluster health degraded"},
      {160.0, "osd.1", "osd", "check recovery resource"},
      {700.0, "osd.5", "pg", "peering complete: collecting missing OSDs, queueing recovery"},
      {702.0, "osd.5", "recovery", "pg 9 start recovery I/O"},
      {703.0, "mgr.0", "mgr", "report recovery I/O in progress"},
      {1200.0, "osd.5", "recovery", "pg 9 recovery completed"},
      {1228.0, "mgr.0", "mgr", "recovery completed; all pgs active+clean"},
  };
}

TEST(Timeline, ExtractsPeriodsFromLogs) {
  const Timeline tl = analyze_timeline(sample_logs());
  ASSERT_TRUE(tl.valid());
  EXPECT_DOUBLE_EQ(tl.detection_time, 100.0);
  EXPECT_DOUBLE_EQ(tl.recovery_start, 602.0);   // relative to detection
  EXPECT_DOUBLE_EQ(tl.recovery_end, 1128.0);
  EXPECT_DOUBLE_EQ(tl.checking_period(), 602.0);
  EXPECT_DOUBLE_EQ(tl.ec_recovery_period(), 526.0);
  EXPECT_NEAR(tl.checking_fraction(), 602.0 / 1128.0, 1e-12);
}

TEST(Timeline, UsesLastCompletionMark) {
  auto logs = sample_logs();
  logs.push_back({1500.0, "osd.9", "recovery", "pg 12 recovery completed"});
  const Timeline tl = analyze_timeline(logs);
  EXPECT_DOUBLE_EQ(tl.recovery_end, 1400.0);
}

TEST(Timeline, EventsAnnotatedAndSorted) {
  const Timeline tl = analyze_timeline(sample_logs());
  ASSERT_GE(tl.events.size(), 5u);
  for (std::size_t i = 1; i < tl.events.size(); ++i) {
    EXPECT_LE(tl.events[i - 1].time, tl.events[i].time);
  }
  EXPECT_EQ(tl.events.front().message, "failure detected");
  EXPECT_DOUBLE_EQ(tl.events.front().time, 0.0);
}

TEST(Timeline, InvalidWithoutDetection) {
  const Timeline tl = analyze_timeline({{1.0, "n", "s", "nothing happened"}});
  EXPECT_FALSE(tl.valid());
  EXPECT_NE(tl.render().find("incomplete"), std::string::npos);
}

TEST(Timeline, RenderShowsBreakdown) {
  const std::string out = analyze_timeline(sample_logs()).render();
  EXPECT_NE(out.find("EC Recovery started (602s)"), std::string::npos);
  EXPECT_NE(out.find("EC Recovery finished (1128s)"), std::string::npos);
  EXPECT_NE(out.find("53.4%"), std::string::npos);
}

TEST(Timeline, ToJsonCarriesBreakdown) {
  const util::Json doc = analyze_timeline(sample_logs()).to_json();
  EXPECT_TRUE(doc.at("valid").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("recovery_start").as_double(), 602.0);
  EXPECT_DOUBLE_EQ(doc.at("recovery_end").as_double(), 1128.0);
  EXPECT_NEAR(doc.at("checking_fraction").as_double(), 602.0 / 1128.0, 1e-12);
  EXPECT_GE(doc.at("events").as_array().size(), 5u);
  // Round-trips through the serializer.
  EXPECT_EQ(util::Json::parse(doc.dump()), doc);
}

}  // namespace
}  // namespace ecf::ecfault
