#include "ecfault/profile.h"

#include <gtest/gtest.h>

namespace ecf::ecfault {
namespace {

TEST(Profile, RoundTripThroughJson) {
  ExperimentProfile p;
  p.name = "fig2c-clay-4k";
  p.runs = 3;
  p.cluster.num_hosts = 30;
  p.cluster.pool.pg_num = 256;
  p.cluster.pool.stripe_unit = ecf::util::Bytes(4096);
  p.cluster.pool.ec_profile = {{"plugin", "clay"}, {"k", "9"}, {"m", "3"},
                               {"d", "11"}};
  p.cluster.cache = cluster::CacheConfig::kv_optimized();
  p.cluster.pool.dag_recovery = true;
  p.fault.level = FaultLevel::kNode;
  p.fault.count = 1;
  p.fault.topology = FaultTopology::kSameHost;

  const ExperimentProfile q = ExperimentProfile::parse(p.dump());
  EXPECT_EQ(q.name, p.name);
  EXPECT_EQ(q.runs, 3);
  EXPECT_EQ(q.cluster.pool.pg_num, 256);
  EXPECT_EQ(q.cluster.pool.stripe_unit, 4096u);
  EXPECT_EQ(q.cluster.pool.ec_profile.at("plugin"), "clay");
  EXPECT_EQ(q.cluster.pool.ec_profile.at("d"), "11");
  EXPECT_TRUE(q.cluster.pool.dag_recovery);
  EXPECT_FALSE(q.cluster.cache.autotune);
  EXPECT_DOUBLE_EQ(q.cluster.cache.kv_ratio, 0.70);
  EXPECT_EQ(q.fault.level, FaultLevel::kNode);
  EXPECT_EQ(q.fault.topology, FaultTopology::kSameHost);
}

TEST(Profile, DefaultsApplyWhenFieldsOmitted) {
  const ExperimentProfile p = ExperimentProfile::parse(R"({"name": "min"})");
  EXPECT_EQ(p.name, "min");
  EXPECT_EQ(p.runs, 3);
  EXPECT_EQ(p.cluster.num_hosts, 30);
  EXPECT_EQ(p.cluster.pool.pg_num, 256);
  EXPECT_FALSE(p.cluster.pool.dag_recovery);
  EXPECT_EQ(p.fault.count, 1);
}

TEST(Profile, ValidatesCacheRatios) {
  EXPECT_THROW(ExperimentProfile::parse(R"({
    "cluster": {"bluestore_cache": {"autotune": false,
      "kv_ratio": 0.9, "meta_ratio": 0.9, "data_ratio": 0.9}}
  })"),
               std::invalid_argument);
}

TEST(Profile, ValidatesPgNum) {
  EXPECT_THROW(ExperimentProfile::parse(R"({"cluster": {"pool": {"pg_num": 0}}})"),
               std::invalid_argument);
}

TEST(Profile, ValidatesFaultCount) {
  EXPECT_THROW(ExperimentProfile::parse(R"({"fault": {"count": 0}})"),
               std::invalid_argument);
}

TEST(Profile, RejectsUnknownEnumStrings) {
  EXPECT_THROW(ExperimentProfile::parse(R"({"fault": {"level": "cosmic"}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(R"({"fault": {"topology": "moon"}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"cluster": {"pool": {"failure_domain": "continent"}}})"),
               std::invalid_argument);
}

TEST(Profile, CorruptionAndScrubRoundTrip) {
  ExperimentProfile p;
  p.fault.level = FaultLevel::kCorruption;
  p.fault.corrupt_fraction = 0.25;
  p.cluster.scrub.enabled = true;
  p.cluster.scrub.interval_s = 12.5;
  p.cluster.scrub.max_passes = 3;
  const ExperimentProfile q = ExperimentProfile::parse(p.dump());
  EXPECT_EQ(q.fault.level, FaultLevel::kCorruption);
  EXPECT_DOUBLE_EQ(q.fault.corrupt_fraction, 0.25);
  EXPECT_TRUE(q.cluster.scrub.enabled);
  EXPECT_DOUBLE_EQ(q.cluster.scrub.interval_s, 12.5);
  EXPECT_EQ(q.cluster.scrub.max_passes, 3);
}

TEST(Profile, RejectsBadCorruptFraction) {
  EXPECT_THROW(
      ExperimentProfile::parse(R"({"fault": {"corrupt_fraction": 1.5}})"),
      std::invalid_argument);
}

TEST(Profile, ClientLoadAndEngineLanesRoundTrip) {
  ExperimentProfile p;
  p.cluster.engine_lanes = 16;
  p.cluster.client.ops_per_s = 500.0;
  p.cluster.client.read_fraction = 0.75;
  p.cluster.client.op_bytes = ecf::util::Bytes(65536);
  p.cluster.client.horizon_s = ecf::util::SimSec(300.0);
  p.cluster.client.zipf_theta = 0.99;
  p.cluster.client.closed_loop = true;
  p.cluster.client.clients = 64;
  p.cluster.client.think_time_s = ecf::util::SimSec(0.002);
  const ExperimentProfile q = ExperimentProfile::parse(p.dump());
  EXPECT_EQ(q.cluster.engine_lanes, 16);
  EXPECT_DOUBLE_EQ(q.cluster.client.ops_per_s, 500.0);
  EXPECT_DOUBLE_EQ(q.cluster.client.read_fraction, 0.75);
  EXPECT_EQ(q.cluster.client.op_bytes, 65536u);
  EXPECT_DOUBLE_EQ(q.cluster.client.horizon_s, 300.0);
  EXPECT_DOUBLE_EQ(q.cluster.client.zipf_theta, 0.99);
  EXPECT_TRUE(q.cluster.client.closed_loop);
  EXPECT_EQ(q.cluster.client.clients, 64);
  EXPECT_DOUBLE_EQ(q.cluster.client.think_time_s, 0.002);
}

TEST(Profile, ValidatesEngineLanes) {
  EXPECT_THROW(
      ExperimentProfile::parse(R"({"cluster": {"engine_lanes": 0}})"),
      std::invalid_argument);
  EXPECT_THROW(
      ExperimentProfile::parse(R"({"cluster": {"engine_lanes": 65}})"),
      std::invalid_argument);
}

TEST(Profile, ValidatesClientLoad) {
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"cluster": {"client": {"read_fraction": 1.5}}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"cluster": {"client": {"zipf_theta": 1.0}}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"cluster": {"client": {"ops_per_s": -1}}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"cluster": {"client": {"clients": 0}}})"),
               std::invalid_argument);
}

TEST(Profile, EnumStringsRoundTrip) {
  EXPECT_EQ(fault_level_from_string(to_string(FaultLevel::kDevice)),
            FaultLevel::kDevice);
  EXPECT_EQ(fault_topology_from_string(to_string(FaultTopology::kDifferentHosts)),
            FaultTopology::kDifferentHosts);
}

TEST(Profile, QosAndHelperSelectionRoundTrip) {
  ExperimentProfile p;
  p.cluster.qos.enabled = true;
  p.cluster.qos.idle_reset_s = 1.25;
  p.cluster.qos.client = {250.0, 80.0, 0.0};
  p.cluster.qos.recovery = {5.0, 16.0, 200.0};
  p.cluster.qos.scrub = {0.0, 2.0, 0.0};
  p.cluster.helper_selection.enabled = true;
  p.cluster.helper_selection.disk_weight = 2.0;
  p.cluster.helper_selection.link_weight = 0.5;
  p.cluster.helper_selection.inflight_penalty_s = 1e-3;
  p.cluster.helper_selection.backfill_penalty_s = 0.1;
  p.cluster.helper_selection.served_weight = 3.0;
  p.cluster.pool.dag_recovery = true;
  p.cluster.pool.dag_pipeline = true;
  const ExperimentProfile q = ExperimentProfile::parse(p.dump());
  EXPECT_TRUE(q.cluster.qos.enabled);
  EXPECT_DOUBLE_EQ(q.cluster.qos.idle_reset_s, 1.25);
  EXPECT_DOUBLE_EQ(q.cluster.qos.client.reservation_ops, 250.0);
  EXPECT_DOUBLE_EQ(q.cluster.qos.client.weight, 80.0);
  EXPECT_DOUBLE_EQ(q.cluster.qos.recovery.reservation_ops, 5.0);
  EXPECT_DOUBLE_EQ(q.cluster.qos.recovery.weight, 16.0);
  EXPECT_DOUBLE_EQ(q.cluster.qos.recovery.limit_ops, 200.0);
  EXPECT_DOUBLE_EQ(q.cluster.qos.scrub.weight, 2.0);
  EXPECT_TRUE(q.cluster.helper_selection.enabled);
  EXPECT_DOUBLE_EQ(q.cluster.helper_selection.disk_weight, 2.0);
  EXPECT_DOUBLE_EQ(q.cluster.helper_selection.link_weight, 0.5);
  EXPECT_DOUBLE_EQ(q.cluster.helper_selection.inflight_penalty_s, 1e-3);
  EXPECT_DOUBLE_EQ(q.cluster.helper_selection.backfill_penalty_s, 0.1);
  EXPECT_DOUBLE_EQ(q.cluster.helper_selection.served_weight, 3.0);
  EXPECT_TRUE(q.cluster.pool.dag_pipeline);
}

TEST(Profile, QosDefaultsWhenOmitted) {
  const ExperimentProfile p = ExperimentProfile::parse(R"({"name": "min"})");
  EXPECT_FALSE(p.cluster.qos.enabled);
  EXPECT_DOUBLE_EQ(p.cluster.qos.client.reservation_ops, 500.0);
  EXPECT_DOUBLE_EQ(p.cluster.qos.recovery.weight, 10.0);
  EXPECT_FALSE(p.cluster.helper_selection.enabled);
  EXPECT_FALSE(p.cluster.pool.dag_pipeline);
}

TEST(Profile, ValidatesQos) {
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"qos": {"idle_reset_s": 0}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"qos": {"recovery": {"weight": 0}}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"qos": {"recovery": {"reservation_ops": -1}}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"qos": {"client": {"reservation_ops": 100,
                                          "limit_ops": 50}}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"helper_selection": {"disk_weight": -1}})"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentProfile::parse(
                   R"({"cluster": {"pool": {"dag_pipeline": true}}})"),
               std::invalid_argument);
}

TEST(Profile, CommentsAllowedInProfileFiles) {
  const ExperimentProfile p = ExperimentProfile::parse(
      "{\n// the Fig. 2b pg_num=1 point\n\"cluster\": {\"pool\": {\"pg_num\": 1}}\n}");
  EXPECT_EQ(p.cluster.pool.pg_num, 1);
}

}  // namespace
}  // namespace ecf::ecfault
