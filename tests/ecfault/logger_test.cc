#include "ecfault/logger.h"

#include <gtest/gtest.h>

namespace ecf::ecfault {
namespace {

TEST(Classify, KeywordClasses) {
  EXPECT_EQ(classify("pg 3 start recovery I/O"), LogClass::kRecovery);
  EXPECT_EQ(classify("osd.2 reported failed by peers"), LogClass::kFailure);
  EXPECT_EQ(classify("bdev I/O error (EIO), aborting"), LogClass::kFailure);
  EXPECT_EQ(classify("decoding stripe 5 with 2 erasures"), LogClass::kDecoding);
  EXPECT_EQ(classify("receiving heartbeats; cluster health degraded"),
            LogClass::kHeartbeat);
  EXPECT_EQ(classify("pg 1 start peering: collecting infos"),
            LogClass::kPeering);
  EXPECT_EQ(classify("pool created: RS(12,9)"), LogClass::kUninteresting);
}

TEST(Classify, SpecificityOrder) {
  // "recovery" beats "failed": recovery-related failure messages stay in
  // the recovery class where the timeline analyzer looks for them.
  EXPECT_EQ(classify("recovery of failed osd complete"), LogClass::kRecovery);
  // decode beats recovery.
  EXPECT_EQ(classify("recovery decode error"), LogClass::kDecoding);
}

TEST(Record, EncodeDecodeRoundTrip) {
  const cluster::LogRecord rec{12.5, "osd.7", "pg", "start recovery I/O"};
  const cluster::LogRecord back = decode_record(encode_record(rec));
  EXPECT_DOUBLE_EQ(back.time, 12.5);
  EXPECT_EQ(back.node, "osd.7");
  EXPECT_EQ(back.subsys, "pg");
  EXPECT_EQ(back.message, "start recovery I/O");
}

TEST(Record, TabsAndNewlinesSanitized) {
  const cluster::LogRecord rec{1.0, "n", "s", "a\tb\nc"};
  const cluster::LogRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.message, "a b c");
}

TEST(NodeLogger, PublishesOnlyRelevantClasses) {
  MsgBus bus;
  NodeLogger logger("osd.1", &bus);
  logger.ingest({1.0, "osd.1", "pg", "start recovery I/O"});
  logger.ingest({2.0, "osd.1", "mon", "pool created"});  // uninteresting
  logger.ingest({3.0, "osd.1", "osd", "device removed"});
  EXPECT_EQ(logger.local_log().size(), 3u);   // everything kept locally
  EXPECT_EQ(logger.published_count(), 2u);    // only relevant shipped
  EXPECT_EQ(logger.suppressed_count(), 1u);
  EXPECT_EQ(bus.topic_log("ecfault.logs").size(), 2u);
}

TEST(LoggerFleet, RoutesByNode) {
  MsgBus bus;
  LoggerFleet fleet(&bus);
  auto sink = fleet.sink();
  sink({1.0, "osd.1", "pg", "start recovery I/O"});
  sink({2.0, "osd.2", "pg", "recovery completed"});
  sink({3.0, "osd.1", "pg", "recovery completed"});
  ASSERT_NE(fleet.logger("osd.1"), nullptr);
  ASSERT_NE(fleet.logger("osd.2"), nullptr);
  EXPECT_EQ(fleet.logger("osd.1")->local_log().size(), 2u);
  EXPECT_EQ(fleet.logger("osd.2")->local_log().size(), 1u);
  EXPECT_EQ(fleet.nodes().size(), 2u);
  EXPECT_EQ(fleet.logger("ghost"), nullptr);
}

TEST(LoggerFleet, MergedSortsByTime) {
  MsgBus bus;
  LoggerFleet fleet(&bus);
  auto sink = fleet.sink();
  sink({5.0, "osd.2", "pg", "recovery completed"});
  sink({1.0, "osd.1", "pg", "start recovery I/O"});
  sink({3.0, "mon.0", "mon", "osd.3 marked down"});
  const auto merged = fleet.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[0].time, 1.0);
  EXPECT_DOUBLE_EQ(merged[1].time, 3.0);
  EXPECT_DOUBLE_EQ(merged[2].time, 5.0);
}

}  // namespace
}  // namespace ecf::ecfault
