// Threaded campaign stress: 16 variants drained by 8 workers. Exists to be
// run under ThreadSanitizer (the tsan CMake preset / tools/run_sanitizers.sh)
// so data races in the worker pool, the GF kernel dispatch table, or any
// state shared across concurrently-running sims are caught, not assumed
// away. It also pins down the pool's failure semantics: an exception in one
// variant must join every worker before propagating.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ecfault/campaign.h"
#include "gf/gf_kernels.h"
#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

ExperimentProfile stress_base() {
  // Deliberately tiny per-variant work: the point is many concurrent sims,
  // not long ones (this runs on single-core CI under TSan's ~10x slowdown).
  ExperimentProfile p;
  p.cluster.num_hosts = 15;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 8;
  p.cluster.workload.num_objects = 40;
  p.cluster.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 20.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  p.cluster.check_invariants = true;  // validated concurrently in every sim
  p.fault.level = FaultLevel::kNode;
  p.runs = 1;
  return p;
}

TEST(CampaignStress, SixteenVariantsOnEightThreads) {
  // Touch the GF kernel dispatch from the main thread first and again from
  // every worker (each sim encodes/decodes); under TSan this exercises the
  // once-initialized dispatch slot from 9 threads.
  (void)gf::kernels();

  Campaign campaign(stress_base());
  campaign.add_all(cross(cross(code_axis(), pg_axis({4, 8})),
                         failure_axis({1, 2})));  // 2 x 2 x 4 = 16 variants
  campaign.parallelism(8);
  const auto results = campaign.run();

  ASSERT_EQ(results.size(), 16u);
  std::set<std::string> labels;
  for (const auto& r : results) {
    EXPECT_GT(r.campaign.mean_total, 0.0) << r.label;
    EXPECT_GT(r.normalized, 0.0) << r.label;
    labels.insert(r.label);
  }
  EXPECT_EQ(labels.size(), 16u);  // every variant ran exactly once
}

TEST(CampaignStress, WorkerExceptionJoinsPoolAndPropagates) {
  // Variant 0 recovers; the EC-width variant cannot even build its pool
  // (k+m wider than the cluster). The campaign must join all 8 workers and
  // rethrow the failure instead of terminating or leaking threads.
  Campaign campaign(stress_base());
  campaign.add_all(pg_axis({8, 4}));
  campaign.add({"too-wide", [](ExperimentProfile& p) {
                  p.cluster.num_hosts = 2;  // 4 OSDs < n=12 chunks
                }});
  campaign.parallelism(8);
  EXPECT_THROW(campaign.run(), std::invalid_argument);
}

}  // namespace
}  // namespace ecf::ecfault
