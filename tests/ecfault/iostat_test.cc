#include "ecfault/iostat.h"

#include <gtest/gtest.h>

#include "ecfault/logger.h"
#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

cluster::ClusterConfig tiny_config() {
  cluster::ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 16;
  cfg.workload.num_objects = 100;
  cfg.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  cfg.protocol.down_out_interval_s = 20.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  return cfg;
}

TEST(Iostat, SamplesDuringRecovery) {
  cluster::Cluster cl(tiny_config());
  cl.create_pool();
  cl.apply_workload();
  IostatCollector iostat(&cl, 5.0, 600.0);
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  ASSERT_FALSE(iostat.samples().empty());
  // Some device must have been busy during recovery.
  double max_util = 0;
  for (const auto& s : iostat.samples()) max_util = std::max(max_util, s.util);
  EXPECT_GT(max_util, 0.0);
  EXPECT_LE(max_util, 1.0);
  EXPECT_GT(iostat.total_bytes_moved(), 0.0);
}

TEST(Iostat, QuietClusterProducesNoSamples) {
  cluster::Cluster cl(tiny_config());
  cl.create_pool();
  cl.apply_workload();  // accounting only; no simulated I/O
  IostatCollector iostat(&cl, 5.0, 100.0);
  cl.engine().schedule(90.0, [] {});  // keep the clock moving
  cl.engine().run();
  EXPECT_TRUE(iostat.samples().empty());
}

TEST(Iostat, RecordsFlowThroughLoggerPipeline) {
  MsgBus bus;
  LoggerFleet loggers(&bus);
  cluster::Cluster cl(tiny_config(), loggers.sink());
  cl.create_pool();
  cl.apply_workload();
  IostatCollector iostat(&cl, 5.0, 600.0, loggers.sink());
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  std::size_t io_records = 0;
  for (const auto& msg : bus.topic_log("ecfault.logs")) {
    const auto rec = decode_record(msg.payload);
    if (classify(rec.message) == LogClass::kIo) ++io_records;
  }
  EXPECT_GT(io_records, 0u);
}

TEST(Iostat, ClientIntervalPercentilesTrackForegroundLoad) {
  cluster::ClusterConfig cfg = tiny_config();
  cfg.client.ops_per_s = 50.0;
  cfg.client.horizon_s = ecf::util::SimSec(60.0);
  cluster::Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  IostatCollector iostat(&cl, 5.0, 600.0);
  cl.engine().run();
  ASSERT_FALSE(iostat.client_samples().empty());
  double total_ops = 0;
  for (const auto& cs : iostat.client_samples()) {
    EXPECT_GT(cs.ops_per_s, 0.0);   // quiet ticks are skipped entirely
    EXPECT_GT(cs.p99_s, 0.0);
    EXPECT_GE(cs.p99_s, cs.p50_s);  // interval percentiles stay ordered
    total_ops += cs.ops_per_s * 5.0;
  }
  // Interval deltas must re-add to the lifetime count (ops finishing
  // after the last tick are the only loss).
  EXPECT_LE(total_ops, static_cast<double>(cl.report().client_ops));
  EXPECT_GT(total_ops, 0.5 * static_cast<double>(cl.report().client_ops));
}

TEST(Iostat, NoClientSamplesWithoutClientLoad) {
  cluster::Cluster cl(tiny_config());
  cl.create_pool();
  cl.apply_workload();
  IostatCollector iostat(&cl, 5.0, 600.0);
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  EXPECT_TRUE(iostat.client_samples().empty());
}

TEST(Iostat, BusiestOsdIsARecoveryParticipant) {
  cluster::Cluster cl(tiny_config());
  cl.create_pool();
  cl.apply_workload();
  IostatCollector iostat(&cl, 5.0, 600.0);
  cl.engine().schedule(1.0, [&cl] { cl.fail_device(4); });
  cl.run_to_recovery();
  const cluster::OsdId busy = iostat.busiest_osd();
  ASSERT_NE(busy, cluster::kNoOsd);
  EXPECT_NE(busy, 4);  // the dead device moved nothing
  EXPECT_GT(iostat.peak_util(busy), 0.0);
}

}  // namespace
}  // namespace ecf::ecfault
