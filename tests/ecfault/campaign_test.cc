#include "ecfault/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

ExperimentProfile tiny_base() {
  ExperimentProfile p;
  p.cluster.num_hosts = 15;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 16;
  p.cluster.workload.num_objects = 100;
  p.cluster.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 20.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  p.fault.level = FaultLevel::kNode;
  p.runs = 1;
  return p;
}

TEST(Campaign, RunsAllVariantsAndNormalizes) {
  Campaign campaign(tiny_base());
  campaign.add_all(pg_axis({16, 4}));
  const auto results = campaign.run("pg=16");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "pg=16");
  EXPECT_DOUBLE_EQ(results[0].normalized, 1.0);
  EXPECT_GT(results[1].campaign.mean_total, 0.0);
  EXPECT_GT(results[1].normalized, 0.0);
}

TEST(Campaign, ProgressObserverSeesEveryVariantExactlyOnce) {
  Campaign campaign(tiny_base());
  campaign.add_all(pg_axis({16, 4, 8}));
  std::vector<std::size_t> dones;
  std::vector<std::string> labels;
  campaign.on_progress([&](std::size_t done, std::size_t total,
                           const std::string& label) {
    EXPECT_EQ(total, 3u);
    dones.push_back(done);
    labels.push_back(label);
  });
  // Serial run: callbacks arrive in declaration order with done = 1, 2, 3.
  campaign.parallelism(1);
  (void)campaign.run();
  EXPECT_EQ(dones, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(labels, (std::vector<std::string>{"pg=16", "pg=4", "pg=8"}));
}

TEST(Campaign, ProgressUnderParallelRunCountsEveryVariant) {
  Campaign campaign(tiny_base());
  campaign.add_all(pg_axis({16, 4, 8, 32}));
  std::vector<std::size_t> dones;
  campaign.on_progress(
      [&](std::size_t done, std::size_t, const std::string&) {
        // Serialized under the campaign's progress mutex, so no locking here.
        dones.push_back(done);
      });
  campaign.parallelism(2);
  (void)campaign.run();
  // Completion order is nondeterministic but each count appears once.
  std::sort(dones.begin(), dones.end());
  EXPECT_EQ(dones, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(Campaign, MovedFromSpecRunsWithFreshProgressState) {
  // campaign_from_json returns a Campaign by value; the move must carry
  // variants and the observer but start the completion counter at zero.
  Campaign source(tiny_base());
  source.add_all(pg_axis({16, 4}));
  std::size_t calls = 0;
  source.on_progress(
      [&](std::size_t, std::size_t, const std::string&) { ++calls; });
  Campaign moved(std::move(source));
  EXPECT_EQ(moved.size(), 2u);
  (void)moved.run();
  EXPECT_EQ(calls, 2u);
}

TEST(Campaign, EmptyCampaignRejected) {
  Campaign campaign(tiny_base());
  EXPECT_THROW(campaign.run(), std::logic_error);
}

TEST(Campaign, UnknownReferenceRejected) {
  Campaign campaign(tiny_base());
  campaign.add_all(code_axis());
  EXPECT_THROW(campaign.run("nonexistent"), std::invalid_argument);
}

TEST(Campaign, AxesProduceExpectedLabels) {
  EXPECT_EQ(code_axis().size(), 2u);
  EXPECT_EQ(cache_axis().size(), 3u);
  EXPECT_EQ(pg_axis({1, 16, 256}).size(), 3u);
  EXPECT_EQ(stripe_axis({4096}).front().label, "su=4.0 KiB");
  EXPECT_EQ(failure_axis({2, 3}).size(), 4u);
}

TEST(Campaign, CrossProductComposesMutations) {
  const auto crossed = cross(code_axis(), pg_axis({1}));
  ASSERT_EQ(crossed.size(), 2u);
  EXPECT_EQ(crossed[0].label, "rs(12,9) x pg=1");
  ExperimentProfile p = tiny_base();
  crossed[1].apply(p);
  EXPECT_EQ(p.cluster.pool.ec_profile.at("plugin"), "clay");
  EXPECT_EQ(p.cluster.pool.pg_num, 1);
}

TEST(Campaign, TableRendersAllRows) {
  Campaign campaign(tiny_base());
  campaign.add_all(code_axis());
  const auto results = campaign.run();
  const std::string table = Campaign::to_table(results);
  EXPECT_NE(table.find("rs(12,9)"), std::string::npos);
  EXPECT_NE(table.find("clay(12,9,11)"), std::string::npos);
  EXPECT_NE(table.find("normalized"), std::string::npos);
}

TEST(Campaign, ParallelRunMatchesSerialByteForByte) {
  // 4 variants on 4 workers must produce the identical result table, in
  // declaration order, as a serial run — every variant owns its own sim
  // engine and derives its seeds from the profile alone.
  const auto variants = cross(code_axis(), pg_axis({4, 16}));
  Campaign serial(tiny_base());
  serial.add_all(variants).parallelism(1);
  Campaign parallel(tiny_base());
  parallel.add_all(variants).parallelism(4);

  const auto a = serial.run();
  const auto b = parallel.run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_DOUBLE_EQ(a[i].campaign.mean_total, b[i].campaign.mean_total);
    EXPECT_DOUBLE_EQ(a[i].campaign.mean_checking,
                     b[i].campaign.mean_checking);
    EXPECT_DOUBLE_EQ(a[i].campaign.mean_recovery,
                     b[i].campaign.mean_recovery);
    EXPECT_DOUBLE_EQ(a[i].normalized, b[i].normalized);
  }
  EXPECT_EQ(Campaign::to_table(a), Campaign::to_table(b));
}

TEST(Campaign, ParallelismManyWorkersOnFewVariants) {
  // More workers than variants must not deadlock or reorder results.
  Campaign campaign(tiny_base());
  campaign.add_all(pg_axis({16, 4})).parallelism(8);
  const auto results = campaign.run("pg=16");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "pg=16");
  EXPECT_DOUBLE_EQ(results[0].normalized, 1.0);
}

TEST(CampaignJson, BuildsCrossedAxes) {
  const auto spec = campaign_from_json(util::Json::parse(R"({
    "base": {"runs": 1, "cluster": {"num_hosts": 15,
              "workload": {"num_objects": 50, "object_size": 16777216},
              "pool": {"pg_num": 8}}},
    "axes": [{"axis": "codes"}, {"axis": "pg_num", "values": [4, 8]}],
    "reference": "rs(12,9) x pg=8"
  })"));
  EXPECT_EQ(spec.campaign.size(), 4u);
  EXPECT_EQ(spec.reference, "rs(12,9) x pg=8");
}

TEST(CampaignJson, AllAxisTypesParse) {
  const auto spec = campaign_from_json(util::Json::parse(R"({
    "axes": [{"axis": "cache"},
             {"axis": "stripe_unit", "values": [4096]},
             {"axis": "failures", "counts": [2]}]
  })"));
  EXPECT_EQ(spec.campaign.size(), 3u * 1u * 2u);
}

TEST(CampaignJson, UnknownAxisRejected) {
  EXPECT_THROW(
      campaign_from_json(util::Json::parse(R"({"axes": [{"axis": "moon"}]})")),
      std::invalid_argument);
}

TEST(CampaignJson, EmptyAxesRejected) {
  EXPECT_THROW(campaign_from_json(util::Json::parse(R"({"axes": []})")),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecf::ecfault
