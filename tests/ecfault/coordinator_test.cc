// End-to-end tests of the full ECFault stack: Coordinator -> Workers ->
// fault injection -> simulated Ceph recovery -> Logger pipeline ->
// timeline analysis. These are the integration tests for Figure 1.
#include "ecfault/coordinator.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

ExperimentProfile fast_profile() {
  ExperimentProfile p;
  p.name = "test";
  p.cluster.num_hosts = 15;
  p.cluster.osds_per_host = 2;
  p.cluster.pool.pg_num = 32;
  p.cluster.workload.num_objects = 150;
  p.cluster.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  p.cluster.protocol.down_out_interval_s = 40.0;
  p.cluster.protocol.heartbeat_grace_s = 5.0;
  p.fault.level = FaultLevel::kNode;
  p.fault.count = 1;
  p.runs = 2;
  p.cluster.check_invariants = true;  // per-event validation in tier-1 tests
  return p;
}

TEST(Coordinator, RunsExperimentEndToEnd) {
  const ExperimentResult r = Coordinator::run_experiment(fast_profile());
  EXPECT_TRUE(r.report.complete);
  EXPECT_EQ(r.code_name, "RS(12,9)/reed_sol_van");
  EXPECT_EQ(r.injected.node_victims.size(), 1u);
  EXPECT_GT(r.actual_wa, 1.33);
  EXPECT_GT(r.log_records_published, 10u);
}

TEST(Coordinator, TimelineAgreesWithReport) {
  // The log-derived timeline (the paper's measurement path) must agree
  // with the simulator's internal report.
  const ExperimentResult r = Coordinator::run_experiment(fast_profile());
  ASSERT_TRUE(r.timeline.valid());
  EXPECT_NEAR(r.timeline.detection_time, r.report.detection_time, 1e-6);
  EXPECT_NEAR(r.timeline.checking_period(), r.report.checking_period(), 1e-6);
  EXPECT_NEAR(r.timeline.total(), r.report.total(), 1e-6);
}

TEST(Coordinator, DeviceFaultExperiment) {
  ExperimentProfile p = fast_profile();
  p.fault.level = FaultLevel::kDevice;
  p.fault.count = 2;
  p.fault.topology = FaultTopology::kDifferentHosts;
  const ExperimentResult r = Coordinator::run_experiment(p);
  EXPECT_TRUE(r.report.complete);
  EXPECT_EQ(r.injected.device_victims.size(), 2u);
}

TEST(Coordinator, ClayProfileExperiment) {
  ExperimentProfile p = fast_profile();
  p.cluster.pool.ec_profile = {{"plugin", "clay"}, {"k", "9"}, {"m", "3"},
                               {"d", "11"}};
  const ExperimentResult r = Coordinator::run_experiment(p);
  EXPECT_TRUE(r.report.complete);
  EXPECT_EQ(r.code_name, "Clay(12,9,11)");
}

TEST(Coordinator, CorruptionFaultWithScrub) {
  ExperimentProfile p = fast_profile();
  p.fault.level = FaultLevel::kCorruption;
  p.fault.count = 2;
  p.fault.corrupt_fraction = 0.2;
  p.cluster.scrub.enabled = true;
  p.cluster.scrub.interval_s = 2.0;
  p.cluster.scrub.max_passes = 2;
  p.runs = 1;
  MsgBus bus;
  LoggerFleet loggers(&bus);
  cluster::Cluster cl(p.cluster, loggers.sink());
  cl.create_pool();
  cl.apply_workload();
  cl.start_scrub();
  FaultInjector injector(cl);
  const auto plan = injector.plan(p.fault);
  EXPECT_EQ(plan.level, FaultLevel::kCorruption);
  ASSERT_EQ(plan.device_victims.size(), 2u);
  Worker w0(&cl, cl.host_of(plan.device_victims[0]), &bus);
  Worker w1(&cl, cl.host_of(plan.device_victims[1]), &bus);
  const std::uint64_t planted =
      w0.apply_corruption_fault(plan.device_victims[0], 0.2) +
      w1.apply_corruption_fault(plan.device_victims[1], 0.2);
  cl.engine().run();
  EXPECT_EQ(cl.report().corruptions_repaired, planted);
}

TEST(Coordinator, CorruptionProfileEndToEnd) {
  ExperimentProfile p = fast_profile();
  p.fault.level = FaultLevel::kCorruption;
  p.fault.corrupt_fraction = 0.1;
  p.cluster.scrub.enabled = true;
  p.cluster.scrub.interval_s = 2.0;
  p.runs = 1;
  const auto r = Coordinator::run_experiment(p);
  // Corruption does not trigger OSD-failure recovery; scrub handles it.
  EXPECT_FALSE(r.report.complete);
  EXPECT_GT(r.report.corruptions_injected, 0u);
  EXPECT_EQ(r.report.corruptions_repaired, r.report.corruptions_injected);
}

TEST(Coordinator, RunProfileAveragesRuns) {
  const CampaignResult c = Coordinator::run_profile(fast_profile());
  EXPECT_EQ(c.runs, 2);
  EXPECT_GT(c.mean_total, 0.0);
  EXPECT_NEAR(c.mean_total, c.mean_checking + c.mean_recovery, 1e-6);
  // Different seeds -> nonzero spread (phases differ).
  EXPECT_GT(c.stddev_total, 0.0);
}

TEST(Coordinator, SameSeedReproducesExactly) {
  const ExperimentResult a = Coordinator::run_experiment(fast_profile());
  const ExperimentResult b = Coordinator::run_experiment(fast_profile());
  EXPECT_DOUBLE_EQ(a.report.total(), b.report.total());
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.log_records_published, b.log_records_published);
}

TEST(Coordinator, ChecksFractionInPaperBallpark) {
  // With the real 600 s down-out interval and the default workload scaled
  // to 10%, checking dominates (as §4.3 reports for small workloads).
  ExperimentProfile p = fast_profile();
  p.cluster.protocol.down_out_interval_s = 600.0;
  p.runs = 1;
  const ExperimentResult r = Coordinator::run_experiment(p);
  EXPECT_GT(r.report.checking_fraction(), 0.5);
}

TEST(Worker, RefusesForeignOsd) {
  ExperimentProfile p = fast_profile();
  MsgBus bus;
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  Worker w(&cl, /*host=*/0, &bus);
  EXPECT_THROW(w.apply_device_fault(5), std::invalid_argument);  // host 2's
}

TEST(Worker, ListsProvisionedSubsystems) {
  ExperimentProfile p = fast_profile();
  MsgBus bus;
  cluster::Cluster cl(p.cluster);
  Worker w(&cl, 0, &bus);
  const auto subsystems = w.list_subsystems();
  ASSERT_EQ(subsystems.size(), 2u);  // two NVMe namespaces per host
  EXPECT_TRUE(subsystems[0].connected);
}

TEST(Worker, DeviceFaultAnnouncedOnControlTopic) {
  ExperimentProfile p = fast_profile();
  MsgBus bus;
  cluster::Cluster cl(p.cluster);
  cl.create_pool();
  cl.apply_workload();
  Worker w(&cl, 2, &bus);
  w.apply_device_fault(4);
  EXPECT_EQ(bus.topic_log("ecfault.control").size(), 1u);
  EXPECT_FALSE(cl.osd_alive(4));
}

}  // namespace
}  // namespace ecf::ecfault
