#include "ecfault/fault_injector.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace ecf::ecfault {
namespace {

cluster::ClusterConfig test_config(int osds_per_host = 3) {
  cluster::ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = osds_per_host;
  cfg.pool.pg_num = 32;
  cfg.pool.failure_domain = cluster::FailureDomain::kOsd;
  cfg.workload.num_objects = 100;
  cfg.workload.object_size = ecf::util::Bytes(4 * util::MiB);
  return cfg;
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<cluster::Cluster>(test_config());
    cluster_->create_pool();
    cluster_->apply_workload();
    injector_ = std::make_unique<FaultInjector>(*cluster_);
  }
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<FaultInjector> injector_;
};

TEST_F(FaultInjectorTest, SameHostVictimsShareHost) {
  FaultSpec spec;
  spec.count = 3;
  spec.topology = FaultTopology::kSameHost;
  const InjectionPlan plan = injector_->plan(spec);
  ASSERT_EQ(plan.device_victims.size(), 3u);
  const cluster::HostId h = cluster_->host_of(plan.device_victims[0]);
  for (const cluster::OsdId o : plan.device_victims) {
    EXPECT_EQ(cluster_->host_of(o), h);
  }
}

TEST_F(FaultInjectorTest, DifferentHostVictimsSpread) {
  FaultSpec spec;
  spec.count = 3;
  spec.topology = FaultTopology::kDifferentHosts;
  const InjectionPlan plan = injector_->plan(spec);
  ASSERT_EQ(plan.device_victims.size(), 3u);
  std::set<cluster::HostId> hosts;
  for (const cluster::OsdId o : plan.device_victims) {
    hosts.insert(cluster_->host_of(o));
  }
  EXPECT_EQ(hosts.size(), 3u);
}

TEST_F(FaultInjectorTest, VictimsCarryData) {
  FaultSpec spec;
  spec.count = 2;
  const InjectionPlan plan = injector_->plan(spec);
  for (const cluster::OsdId o : plan.device_victims) {
    EXPECT_FALSE(cluster_->pgs_on_osd(o).empty());
  }
}

TEST_F(FaultInjectorTest, NeverExceedsTolerance) {
  // The white-box guarantee of §3.2: every plan stays within n-k per PG.
  for (const auto topo :
       {FaultTopology::kAnywhere, FaultTopology::kSameHost,
        FaultTopology::kDifferentHosts}) {
    for (int count = 1; count <= 3; ++count) {
      FaultSpec spec;
      spec.count = count;
      spec.topology = topo;
      const InjectionPlan plan = injector_->plan(spec);
      EXPECT_TRUE(injector_->within_tolerance(plan.device_victims));
    }
  }
}

TEST_F(FaultInjectorTest, WithinToleranceDetectsViolations) {
  // Find a PG and kill m+1 = 4 of its members: must be rejected.
  const auto acting = cluster_->pg_acting(0);
  const std::vector<cluster::OsdId> too_many(acting.begin(),
                                             acting.begin() + 4);
  EXPECT_FALSE(injector_->within_tolerance(too_many));
  const std::vector<cluster::OsdId> ok(acting.begin(), acting.begin() + 3);
  EXPECT_TRUE(injector_->within_tolerance(ok));
}

TEST_F(FaultInjectorTest, CountsExistingFailures) {
  const auto acting = cluster_->pg_acting(0);
  cluster_->fail_device(acting[0]);
  cluster_->fail_device(acting[1]);
  // Two shards already dead; two more of the same PG exceeds m = 3.
  EXPECT_FALSE(injector_->within_tolerance({acting[2], acting[3]}));
  EXPECT_TRUE(injector_->within_tolerance({acting[2]}));
}

TEST_F(FaultInjectorTest, NodePlanSelectsDataBearingHosts) {
  FaultSpec spec;
  spec.level = FaultLevel::kNode;
  spec.count = 1;
  const InjectionPlan plan = injector_->plan(spec);
  ASSERT_EQ(plan.node_victims.size(), 1u);
  bool has_data = false;
  for (const cluster::OsdId o : cluster_->osds_on_host(plan.node_victims[0])) {
    has_data |= !cluster_->pgs_on_osd(o).empty();
  }
  EXPECT_TRUE(has_data);
}

TEST_F(FaultInjectorTest, SameHostImpossibleWhenHostTooSmall) {
  // 3 OSDs per host; 4 same-host faults are unsatisfiable.
  FaultSpec spec;
  spec.count = 4;
  spec.topology = FaultTopology::kSameHost;
  EXPECT_THROW(injector_->plan(spec), std::exception);
}

TEST(FaultInjectorGuard, HostDomainNodeFaultStaysWithinTolerance) {
  // With host failure domain, one node fault costs each PG at most one
  // shard — always tolerable.
  cluster::ClusterConfig cfg = test_config(2);
  cfg.pool.failure_domain = cluster::FailureDomain::kHost;
  cluster::Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  FaultInjector injector(cl);
  FaultSpec spec;
  spec.level = FaultLevel::kNode;
  spec.count = 1;
  const InjectionPlan plan = injector.plan(spec);
  EXPECT_EQ(plan.node_victims.size(), 1u);
}

}  // namespace
}  // namespace ecf::ecfault
