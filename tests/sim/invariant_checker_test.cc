#include "sim/invariant_checker.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "util/check.h"

namespace ecf::sim {
namespace {

TEST(SimInvariantChecker, RunsAfterEveryEvent) {
  Engine eng;
  SimInvariantChecker checker(eng);
  int validations = 0;
  checker.add_invariant("count", [&validations] { ++validations; });
  eng.schedule(1.0, [] {});
  eng.schedule(2.0, [] {});
  eng.schedule(3.0, [] {});
  eng.run();
  EXPECT_EQ(checker.events_checked(), 3u);
  EXPECT_EQ(validations, 3);
  EXPECT_EQ(checker.num_invariants(), 1u);
}

TEST(SimInvariantChecker, DetectorRemovedOnDestruction) {
  Engine eng;
  {
    SimInvariantChecker checker(eng);
    eng.schedule(1.0, [] {});
    eng.run();
    EXPECT_EQ(checker.events_checked(), 1u);
  }
  // With the checker gone its hook must be gone too.
  eng.schedule(1.0, [] {});
  EXPECT_EQ(eng.run(), 1u);
}

TEST(SimInvariantChecker, InvariantViolationSurfacesWithEventContext) {
  Engine eng;
  SimInvariantChecker checker(eng);
  int balance = 0;
  checker.add_invariant("balance-nonnegative",
                        [&balance] { ECF_CHECK_GE(balance, 0); });
  eng.schedule(1.0, [&balance] { balance = 5; });
  eng.schedule(2.0, [&balance] { balance = -1; });  // the corrupting event
  EXPECT_THROW(eng.run(), util::CheckFailure);
  // The violation fired right after the corrupting event, not at the end.
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  EXPECT_EQ(checker.current_invariant(), "balance-nonnegative");
}

TEST(SimInvariantChecker, RejectsInvariantWithoutBody) {
  Engine eng;
  SimInvariantChecker checker(eng);
  EXPECT_THROW(checker.add_invariant("empty", nullptr), util::CheckFailure);
}

TEST(SimInvariantChecker, CatchesNonMonotonicEventInjection) {
  // Negative test of the backstop layer: an event planted in the past with
  // the unchecked backdoor bypasses the Engine::schedule contracts. Because
  // the queue is a min-heap, the past event pops first and drags the clock
  // backwards — which the checker's built-in time invariant must catch.
  Engine eng;
  SimInvariantChecker checker(eng);
  eng.schedule(5.0, [] {});
  eng.run();  // checker's time baseline is now t=5
  ASSERT_DOUBLE_EQ(eng.now(), 5.0);

  eng.schedule_at_unchecked(2.0, [] {});  // in the past, bypassing contracts
  EXPECT_THROW(eng.run(), util::CheckFailure);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);  // clock really did go backwards
}

TEST(SimInvariantChecker, ObserveTimeDirectly) {
  Engine eng;
  SimInvariantChecker checker(eng);
  checker.observe_time(1.0);
  checker.observe_time(1.0);  // equal is fine (simultaneous events)
  checker.observe_time(2.0);
  EXPECT_THROW(checker.observe_time(1.5), util::CheckFailure);
  checker.reset_clock();
  checker.observe_time(0.0);  // legal again after an engine reset
}

TEST(SimInvariantChecker, ReattachAfterEngineReset) {
  Engine eng;
  SimInvariantChecker checker(eng);
  eng.schedule(10.0, [] {});
  eng.run();
  eng.reset();  // drops the checker's hook along with the queue
  checker.reset_clock();
  checker.reattach();
  eng.schedule(1.0, [] {});  // earlier absolute time than before the reset
  EXPECT_EQ(eng.run(), 1u);
  EXPECT_EQ(checker.events_checked(), 2u);
}

TEST(SimInvariantChecker, EngineResetDetachesStaleChecker) {
  // Regression: Engine::reset() used to preserve the post-event hook, so a
  // checker wired up for one campaign variant kept observing the next one
  // (and, worse, a destroyed checker's hook could dangle until someone
  // remembered to overwrite it). reset() must drop the hook.
  Engine eng;
  SimInvariantChecker checker(eng);
  eng.schedule(1.0, [] {});
  eng.run();
  EXPECT_EQ(checker.events_checked(), 1u);

  eng.reset();
  eng.schedule(1.0, [] {});
  EXPECT_EQ(eng.run(), 1u);
  // The stale checker saw nothing after the reset.
  EXPECT_EQ(checker.events_checked(), 1u);
}

}  // namespace
}  // namespace ecf::sim
