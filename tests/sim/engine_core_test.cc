// Targeted tests for the rewritten event core: the EventFn SBO callable,
// generation-tagged EventIds, the 4-ary heap + timer wheel queue, and the
// EngineStats profile. The behavioral contracts shared with the old engine
// live in engine_test.cc / engine_stress_test.cc; this file covers what is
// new or was previously untestable.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/event_fn.h"
#include "util/check.h"
#include "util/rng.h"

namespace ecf::sim {
namespace {

// --- EventFn ----------------------------------------------------------------

TEST(EventFn, EmptyIsFalsyAndAssignable) {
  EventFn fn;
  EXPECT_FALSE(fn);
  fn = [] {};
  EXPECT_TRUE(fn);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(EventFn, SmallCaptureStaysInline) {
  int hits = 0;
  int* p = &hits;
  EventFn fn([p] { ++*p; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();  // repeat-invocable
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, LargeCaptureSpillsAndStillRuns) {
  std::array<std::uint64_t, 16> payload{};  // 128 bytes > kInlineSize
  payload[0] = 7;
  payload[15] = 9;
  int sum = 0;
  EventFn fn([payload, &sum] {
    sum += static_cast<int>(payload[0] + payload[15]);
  });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(sum, 16);
}

TEST(EventFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  EventFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  EventFn b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — contract under test
  EXPECT_TRUE(b);
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
  b = nullptr;
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed
}

TEST(EventFn, MoveAssignDestroysPreviousCapture) {
  auto old_capture = std::make_shared<int>(0);
  EventFn fn([old_capture] {});
  EXPECT_EQ(old_capture.use_count(), 2);
  fn = EventFn([] {});
  EXPECT_EQ(old_capture.use_count(), 1);
}

TEST(EventFn, SpillBlocksRecycleThroughThreadLocalPool) {
  struct Big {
    std::array<std::uint64_t, 20> words{};
    void operator()() const {}
  };
  {
    EventFn a{Big{}};
    EXPECT_FALSE(a.is_inline());
  }
  const std::size_t cached_after_free = detail::spill_cached_blocks();
  EXPECT_GE(cached_after_free, 1u);  // the freed block joined the free list
  {
    EventFn b{Big{}};  // same size class: must come from the free list
    EXPECT_EQ(detail::spill_cached_blocks(), cached_after_free - 1);
  }
  EXPECT_EQ(detail::spill_cached_blocks(), cached_after_free);
}

// --- EventId generation tags ------------------------------------------------

TEST(EngineCore, EventIdReuseAfterCancelIsInert) {
  Engine eng;
  int first = 0, second = 0;
  const EventId a = eng.schedule(1.0, [&first] { ++first; });
  eng.cancel(a);
  // Drain so slot `a` is recycled, then schedule a new event: with a slot
  // allocator the new event may reuse a's slot, and the stale id must not
  // be able to cancel it.
  eng.run();
  const EventId b = eng.schedule(1.0, [&second] { ++second; });
  EXPECT_NE(a, b);  // generation tag differs even if the slot is reused
  eng.cancel(a);    // stale id: must be a no-op
  eng.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(EngineCore, CancelAfterExecutionCannotKillSlotReuser) {
  Engine eng;
  int ran = 0;
  const EventId a = eng.schedule(1.0, [] {});
  eng.run();  // slot freed by execution
  const EventId b = eng.schedule(1.0, [&ran] { ++ran; });
  eng.cancel(a);  // id from the executed event; b may occupy the same slot
  EXPECT_EQ(eng.run(), 1u);
  EXPECT_EQ(ran, 1);
  (void)b;
}

TEST(EngineCore, DoubleCancelCountsOnce) {
  Engine eng;
  const EventId a = eng.schedule(1.0, [] {});
  eng.cancel(a);
  eng.cancel(a);
  EXPECT_EQ(eng.stats().cancelled, 1u);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.run(), 0u);
}

// --- horizon boundary -------------------------------------------------------

TEST(EngineCore, EventExactlyAtHorizonFires) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(2.0, [&fired] { ++fired; });
  eng.schedule_at(2.0000001, [&fired] { fired += 100; });
  EXPECT_EQ(eng.run_until(2.0), 1u);  // when == horizon executes
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  EXPECT_EQ(eng.pending(), 1u);  // the later event stays queued
  EXPECT_EQ(eng.run(), 1u);
  EXPECT_EQ(fired, 101);
}

// --- equal-time FIFO + cancel semantics (regression for any reordering) -----

TEST(EngineCore, EqualTimeFifoSurvivesCancellationHoles) {
  // Schedule N same-time events, cancel a pseudo-random subset, and check
  // the survivors still run in exact schedule order. Catches any future
  // queue change that breaks the (when, seq) tie-break — including lazy-
  // deletion bugs where a cancelled entry's slot is resurrected.
  Engine eng;
  std::vector<int> order;
  std::vector<EventId> ids;
  constexpr int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ids.push_back(eng.schedule(1.0, [&order, i] { order.push_back(i); }));
  }
  util::Rng rng(20260807);
  std::vector<int> expected;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.4)) {
      eng.cancel(ids[static_cast<std::size_t>(i)]);
    } else {
      expected.push_back(i);
    }
  }
  eng.run();
  EXPECT_EQ(order, expected);
  EXPECT_EQ(eng.stats().executed + eng.stats().cancelled,
            static_cast<std::uint64_t>(kN));
}

// --- randomized differential test vs a reference model ----------------------

// Reference model: a plain sorted list with (when, seq) keys — the simplest
// possible correct implementation of the engine's ordering contract.
class ReferenceEngine {
 public:
  std::uint64_t schedule_at(double when, int payload) {
    items_.push_back({when, next_seq_++, payload, true});
    return items_.back().seq;
  }
  void cancel(std::uint64_t seq) {
    for (auto& it : items_) {
      if (it.seq == seq) it.live = false;
    }
  }
  // Executes events with when <= horizon in (when, seq) order; returns
  // payloads in execution order.
  std::vector<int> run_until(double horizon, double* now) {
    std::vector<int> out;
    for (;;) {
      Item* best = nullptr;
      for (auto& it : items_) {
        if (!it.live || it.when > horizon) continue;
        if (best == nullptr || it.when < best->when ||
            (it.when == best->when && it.seq < best->seq)) {
          best = &it;
        }
      }
      if (best == nullptr) break;
      best->live = false;
      *now = best->when;
      out.push_back(best->payload);
    }
    return out;
  }
  std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& it : items_) n += it.live ? 1 : 0;
    return n;
  }

 private:
  struct Item {
    double when;
    std::uint64_t seq;
    int payload;
    bool live;
  };
  std::uint64_t next_seq_ = 1;
  std::vector<Item> items_;
};

TEST(EngineCore, DifferentialAgainstReferenceModel) {
  // Seeded, deterministic interleavings of schedule / cancel / run_until.
  // Delays are drawn across six scales so events land in the same-tick heap
  // fast path, every wheel level, and the beyond-wheel-span overflow path.
  for (const std::uint64_t seed : {1ull, 42ull, 20260807ull}) {
    Engine eng;
    ReferenceEngine ref;
    util::Rng rng(seed);
    std::vector<int> got;       // engine execution order
    std::vector<int> expected;  // reference execution order
    std::vector<EventId> eng_ids;
    std::vector<std::uint64_t> ref_ids;
    int payload = 0;
    double ref_now = 0;

    for (int step = 0; step < 2000; ++step) {
      const double roll = rng.uniform01();
      if (roll < 0.55) {
        static constexpr double kScales[] = {0.0,    0.1,     10.0,
                                             300.0, 30000.0, 2.0e6};
        const double delay = kScales[rng.uniform(6)] * rng.uniform01();
        const double when = eng.now() + delay;
        const int p = payload++;
        eng_ids.push_back(
            eng.schedule_at(when, [&got, p] { got.push_back(p); }));
        ref_ids.push_back(ref.schedule_at(when, p));
      } else if (roll < 0.75) {
        if (!eng_ids.empty()) {
          const std::size_t k = rng.uniform(eng_ids.size());
          eng.cancel(eng_ids[k]);
          ref.cancel(ref_ids[k]);
        }
      } else {
        const double horizon = eng.now() + 200.0 * rng.uniform01();
        eng.run_until(horizon);
        const std::vector<int> step_out = ref.run_until(horizon, &ref_now);
        expected.insert(expected.end(), step_out.begin(), step_out.end());
        ASSERT_EQ(got, expected) << "diverged at step " << step << " (seed "
                                 << seed << ")";
        ASSERT_DOUBLE_EQ(eng.now(),
                         step_out.empty() ? eng.now() : ref_now);
      }
    }
    eng.run();
    const std::vector<int> tail = ref.run_until(
        std::numeric_limits<double>::infinity(), &ref_now);
    expected.insert(expected.end(), tail.begin(), tail.end());
    EXPECT_EQ(got, expected) << "final drain diverged (seed " << seed << ")";
    EXPECT_EQ(eng.pending(), ref.pending());
    EXPECT_EQ(eng.pending(), 0u);
  }
}

// --- engine stats -----------------------------------------------------------

TEST(EngineCore, StatsCountExecutedCancelledAndTags) {
  Engine eng;
  eng.schedule(1.0, [] {}, EventTag::kHeartbeat);
  eng.schedule(2.0, [] {}, EventTag::kHeartbeat);
  const EventId c = eng.schedule(3.0, [] {}, EventTag::kScrub);
  eng.cancel(c);
  eng.run();
  const EngineStats& s = eng.stats();
  EXPECT_EQ(s.scheduled, 3u);
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.peak_queue_depth, 3u);
  EXPECT_EQ(s.executed_by_tag[static_cast<std::size_t>(EventTag::kHeartbeat)],
            2u);
  EXPECT_EQ(s.executed_by_tag[static_cast<std::size_t>(EventTag::kScrub)], 0u);
}

TEST(EngineCore, StatsTrackWheelParkingForPeriodicTimers) {
  Engine eng;
  // A periodic 5 s keep-alive style chain: far enough ahead of the clock
  // to park in the wheel rather than the heap.
  int remaining = 50;
  std::function<void()> chain;
  chain = [&eng, &remaining, &chain] {
    if (--remaining > 0) eng.schedule(5.0, [&chain] { chain(); });
  };
  eng.schedule(5.0, [&chain] { chain(); });
  eng.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_GT(eng.stats().wheel_parked, 0u);
}

TEST(EngineCore, ResetClearsStatsAndHook) {
  Engine eng;
  int hook_runs = 0;
  eng.set_post_event_hook([&hook_runs] { ++hook_runs; });
  eng.schedule(1.0, [] {});
  eng.run();
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(eng.stats().executed, 1u);
  eng.reset();
  EXPECT_EQ(eng.stats().executed, 0u);
  EXPECT_EQ(eng.stats().scheduled, 0u);
  eng.schedule(1.0, [] {});
  eng.run();
  EXPECT_EQ(hook_runs, 1);  // hook did not survive the reset
}

TEST(EngineCore, TagNamesAreStable) {
  EXPECT_STREQ(to_string(EventTag::kGeneric), "generic");
  EXPECT_STREQ(to_string(EventTag::kKeepAlive), "keepalive");
  EXPECT_STREQ(to_string(EventTag::kIostat), "iostat");
}

// --- timer wheel edge cases -------------------------------------------------

TEST(EngineCore, WheelSpanningDelaysExecuteInOrder) {
  // One event per wheel level plus one beyond the span, scheduled out of
  // order; execution must be strictly by time.
  Engine eng;
  std::vector<int> order;
  eng.schedule(2.0e6, [&order] { order.push_back(4); });   // beyond wheel
  eng.schedule(40000.0, [&order] { order.push_back(3); }); // L2
  eng.schedule(500.0, [&order] { order.push_back(2); });   // L1
  eng.schedule(3.0, [&order] { order.push_back(1); });     // L0
  eng.schedule(0.01, [&order] { order.push_back(0); });    // same-tick heap
  EXPECT_EQ(eng.run(), 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_GT(eng.stats().wheel_cascades, 0u);
}

TEST(EngineCore, CancelledWheelEntriesAreReaped) {
  Engine eng;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(eng.schedule(1000.0 + i, [] {}));
  }
  for (const EventId id : ids) eng.cancel(id);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_TRUE(eng.empty());
  EXPECT_EQ(eng.run(), 0u);  // flushing dead entries executes nothing
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
}

TEST(EngineCore, UncheckedPastEventStillRunsFirst) {
  // schedule_at_unchecked plants an event behind the clock; the engine must
  // surface it before later events even though the wheel frontier has
  // advanced past its tick.
  Engine eng;
  eng.schedule(50.0, [] {});
  eng.run();
  ASSERT_DOUBLE_EQ(eng.now(), 50.0);
  std::vector<int> order;
  eng.schedule_at_unchecked(2.0, [&order] { order.push_back(0); });
  eng.schedule(10.0, [&order] { order.push_back(1); });  // t=60
  EXPECT_EQ(eng.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

// --- 1M-event stress (also exercised under asan-ubsan / tsan presets) -------

TEST(EngineCoreStress, MillionEventScheduleCancelDrain) {
  Engine eng;
  util::Rng rng(0xEC0DE);
  std::uint64_t executed_payloads = 0;
  constexpr int kEvents = 1'000'000;
  std::vector<EventId> window;
  for (int i = 0; i < kEvents; ++i) {
    const double delay = rng.uniform01() * 100.0;
    window.push_back(
        eng.schedule(delay, [&executed_payloads] { ++executed_payloads; }));
    if (window.size() >= 64) {
      // Cancel one of the last 64 — keeps a live cancellation mix without
      // quadratic bookkeeping.
      eng.cancel(window[rng.uniform(window.size())]);
      window.clear();
    }
    if ((i & 0xFFF) == 0 && i != 0) {
      eng.run_until(eng.now() + 1.0);
    }
  }
  const std::size_t left = eng.pending();
  eng.run();
  EXPECT_EQ(eng.pending(), 0u);
  const EngineStats& s = eng.stats();
  EXPECT_EQ(s.scheduled, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(s.executed + s.cancelled, s.scheduled);
  EXPECT_EQ(s.executed, executed_payloads);
  EXPECT_GT(left, 0u);
}

}  // namespace
}  // namespace ecf::sim
