// Sharded event lanes: the k-way merge must reproduce the single-heap
// (when, seq) execution order bit-for-bit, for any lane count and any
// lane assignment. The differential test drives a randomized mix of
// schedule/cancel/drain ops through 1, 4, and 16 lanes and compares the
// full execution traces.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace ecf::sim {
namespace {

TEST(EngineLanes, DefaultsToOneLane) {
  Engine eng;
  EXPECT_EQ(eng.lane_count(), 1u);
  EXPECT_EQ(eng.stats().lane_count, 1u);
}

TEST(EngineLanes, SetLaneCountReflectsInStats) {
  Engine eng;
  eng.set_lane_count(8);
  EXPECT_EQ(eng.lane_count(), 8u);
  EXPECT_EQ(eng.stats().lane_count, 8u);
}

TEST(EngineLanes, LaneCountSurvivesReset) {
  Engine eng;
  eng.set_lane_count(4);
  eng.schedule(1.0, [] {});
  eng.run();
  eng.reset();
  EXPECT_EQ(eng.lane_count(), 4u);
  EXPECT_EQ(eng.stats().lane_count, 4u);
}

TEST(EngineLanes, ResetZeroesStatsAndWheelCountersAcrossLanes) {
  Engine eng;
  eng.set_lane_count(4);
  // Populate every counter class: near events (heap), far events (wheel),
  // a cancellation, and a spread of lanes.
  for (int i = 0; i < 32; ++i) {
    Engine::LaneScope scope(eng, static_cast<std::size_t>(i % 4));
    eng.schedule(0.5 * i, [] {});
    eng.schedule(100.0 + i, [] {});  // parked in the timer wheel
  }
  eng.cancel(eng.schedule(1.0, [] {}));
  eng.run();
  ASSERT_GT(eng.stats().scheduled, 0u);
  ASSERT_GT(eng.stats().wheel_parked, 0u);

  eng.reset();
  EXPECT_EQ(eng.stats().scheduled, 0u);
  EXPECT_EQ(eng.stats().executed, 0u);
  EXPECT_EQ(eng.stats().cancelled, 0u);
  EXPECT_EQ(eng.stats().spilled_callbacks, 0u);
  EXPECT_EQ(eng.stats().peak_queue_depth, 0u);
  EXPECT_EQ(eng.stats().wheel_parked, 0u);
  EXPECT_EQ(eng.stats().wheel_cascades, 0u);
  EXPECT_EQ(eng.stats().lane_count, 4u);
  for (std::size_t t = 0; t < kNumEventTags; ++t) {
    EXPECT_EQ(eng.stats().executed_by_tag[t], 0u);
  }
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pending(), 0u);

  // The in-place lane reset (wheel position/occupancy back to zero, storage
  // capacity kept) must leave a fully working engine: near + far events
  // still execute in time order on every lane.
  std::vector<int> order;
  for (int i = 3; i >= 0; --i) {
    Engine::LaneScope scope(eng, static_cast<std::size_t>(i));
    eng.schedule(1.0 + i, [&order, i] { order.push_back(i); });
    eng.schedule(200.0 + i, [&order, i] { order.push_back(100 + i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 100, 101, 102, 103}));
  EXPECT_EQ(eng.stats().executed, 8u);
}

TEST(EngineLanes, SetLaneCountReleasesCancelledEntries) {
  Engine eng;
  // Cancelled events leave dead entries parked in heaps/wheels; changing
  // the lane count must retire their slots, not leak or crash.
  for (int i = 0; i < 64; ++i) {
    eng.cancel(eng.schedule(0.1 * i, [] {}));
  }
  ASSERT_EQ(eng.pending(), 0u);
  eng.set_lane_count(16);
  bool ran = false;
  eng.schedule(1.0, [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(EngineLanes, LaneOfIsStableAndInRange) {
  Engine eng;
  eng.set_lane_count(7);
  for (std::uint64_t key = 0; key < 100; ++key) {
    const std::size_t lane = eng.lane_of(key);
    EXPECT_LT(lane, 7u);
    EXPECT_EQ(lane, eng.lane_of(key));
  }
}

TEST(EngineLanes, LaneScopeRestoresOnExit) {
  Engine eng;
  eng.set_lane_count(16);
  // Pin two events to different lanes; a third after both scopes closed
  // lands in the default lane. Execution order must still be by time.
  std::vector<int> order;
  {
    Engine::LaneScope scope(eng, 11);
    eng.schedule(2.0, [&] { order.push_back(2); });
  }
  {
    Engine::LaneScope scope(eng, 42);
    eng.schedule(1.0, [&] { order.push_back(1); });
  }
  eng.schedule(3.0, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// One op in the randomized schedule/cancel/drain mix. `id` is the op's
// schedule-order identity, identical across lane configurations as long
// as all prior execution happened in the same order (induction).
using Trace = std::vector<std::pair<double, int>>;

Trace run_trace(std::size_t lanes, std::uint64_t seed) {
  Engine eng;
  eng.set_lane_count(lanes);
  Trace trace;
  util::Rng rng(seed);
  std::vector<EventId> cancellable;
  int next_id = 0;

  // Schedules one event whose callback records itself, sometimes chains a
  // follow-up, and sometimes cancels a random pending event.
  auto spawn = [&](auto&& self, double delay) -> void {
    Engine::LaneScope scope(eng, rng.uniform(64));
    const int id = next_id++;
    const EventId ev = eng.schedule(delay, [&, id, self] {
      trace.emplace_back(eng.now(), id);
      const std::uint64_t dice = rng.uniform(10);
      if (dice < 4) {
        // Chain: near-future follow-up (heap) or far-future (wheel).
        self(self, dice == 0 ? 120.0 + rng.uniform01() : rng.uniform01());
      }
      if (dice >= 7 && !cancellable.empty()) {
        const std::size_t victim = rng.uniform(cancellable.size());
        eng.cancel(cancellable[victim]);
        cancellable[victim] = cancellable.back();
        cancellable.pop_back();
      }
    });
    if (rng.uniform(3) == 0) cancellable.push_back(ev);
  };

  for (int i = 0; i < 400; ++i) {
    // Mix of tie-prone short delays, wheel-range timers, and ties.
    const std::uint64_t kind = rng.uniform(4);
    double delay = 0;
    if (kind == 0) delay = rng.uniform(8) * 0.5;        // exact ties
    if (kind == 1) delay = rng.uniform01() * 2.0;       // heap range
    if (kind == 2) delay = 10.0 + rng.uniform01() * 50; // L0/L1 wheel
    if (kind == 3) delay = 300.0 + rng.uniform01() * 5000;  // L2 wheel
    spawn(spawn, delay);
  }
  // Drain in stages so the horizon path and the idle-clock behavior are
  // part of the differential surface too.
  eng.run_until(1.0);
  eng.run_until(40.0);
  eng.run();
  EXPECT_EQ(eng.pending(), 0u);
  return trace;
}

TEST(EngineLanes, DifferentialTraceMatchesSingleLane) {
  for (const std::uint64_t seed : {1ull, 77ull, 20260809ull}) {
    const Trace base = run_trace(1, seed);
    ASSERT_GT(base.size(), 400u) << "seed " << seed;
    for (const std::size_t lanes : {4u, 16u}) {
      const Trace got = run_trace(lanes, seed);
      ASSERT_EQ(got.size(), base.size())
          << "seed " << seed << " lanes " << lanes;
      for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_EQ(got[i].second, base[i].second)
            << "seed " << seed << " lanes " << lanes << " step " << i;
        // Bit-identical timestamps, not just approximately equal.
        ASSERT_EQ(got[i].first, base[i].first)
            << "seed " << seed << " lanes " << lanes << " step " << i;
      }
    }
  }
}

TEST(EngineLanes, CoreCountersMatchAcrossLaneCounts) {
  for (const std::uint64_t seed : {5ull, 99ull}) {
    Engine ref;
    // Trace equality already pins execution; also pin the scheduling
    // ledger (scheduled/executed/cancelled are lane-independent).
    run_trace(1, seed);
    std::uint64_t scheduled = 0, executed = 0, cancelled = 0;
    for (const std::size_t lanes : {1u, 8u}) {
      Engine eng;
      eng.set_lane_count(lanes);
      util::Rng rng(seed);
      for (int i = 0; i < 200; ++i) {
        Engine::LaneScope scope(eng, rng.uniform(32));
        const EventId ev = eng.schedule(rng.uniform01() * 20.0, [] {});
        if (rng.uniform(4) == 0) eng.cancel(ev);
      }
      eng.run();
      if (lanes == 1) {
        scheduled = eng.stats().scheduled;
        executed = eng.stats().executed;
        cancelled = eng.stats().cancelled;
      } else {
        EXPECT_EQ(eng.stats().scheduled, scheduled);
        EXPECT_EQ(eng.stats().executed, executed);
        EXPECT_EQ(eng.stats().cancelled, cancelled);
      }
    }
  }
}

}  // namespace
}  // namespace ecf::sim
