// Stress/property tests for the event engine: time monotonicity, stable
// tie-breaking and determinism under large random event loads — the
// foundations the whole recovery simulation rests on.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "util/rng.h"

namespace ecf::sim {
namespace {

TEST(EngineStress, TimeNeverGoesBackwards) {
  Engine eng;
  util::Rng rng(1);
  double last_seen = -1.0;
  bool ok = true;
  // Seed events that recursively schedule more events at random offsets.
  std::function<void(int)> spawn = [&](int depth) {
    if (eng.now() < last_seen) ok = false;
    last_seen = eng.now();
    if (depth <= 0) return;
    const int children = static_cast<int>(rng.uniform(3));
    for (int c = 0; c < children; ++c) {
      eng.schedule(rng.uniform01() * 10.0, [&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int i = 0; i < 50; ++i) {
    eng.schedule(rng.uniform01() * 100.0, [&spawn] { spawn(6); });
  }
  eng.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(eng.empty());
}

TEST(EngineStress, DeterministicUnderRandomLoad) {
  auto run_once = [] {
    Engine eng;
    util::Rng rng(99);
    std::vector<double> trace;
    for (int i = 0; i < 2000; ++i) {
      eng.schedule(rng.uniform01() * 50.0,
                   [&trace, &eng] { trace.push_back(eng.now()); });
    }
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineStress, ManyCancellations) {
  Engine eng;
  util::Rng rng(7);
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(eng.schedule(rng.uniform01() * 10.0, [&fired] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    eng.cancel(ids[i]);
    ++cancelled;
  }
  eng.run();
  EXPECT_EQ(fired, 1000 - cancelled);
  EXPECT_TRUE(eng.empty());
}

TEST(EngineStress, EqualTimestampsKeepScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 500; ++i) {
    eng.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineStress, RunUntilResumable) {
  Engine eng;
  util::Rng rng(3);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    eng.schedule(rng.uniform01() * 100.0, [&fired] { ++fired; });
  }
  // Drain in 10 time slices; total must match one-shot execution.
  for (int slice = 1; slice <= 10; ++slice) {
    eng.run_until(10.0 * slice);
  }
  EXPECT_EQ(fired, 1000);
}

}  // namespace
}  // namespace ecf::sim
