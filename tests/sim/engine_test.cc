#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace ecf::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(3.0, [&] { order.push_back(3); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TieBreaksByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(1.0, [&] { order.push_back(0); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.schedule(1.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int fired = 0;
  eng.schedule(1.0, [&] {
    ++fired;
    eng.schedule(1.0, [&] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  const EventId id = eng.schedule(1.0, [&] { ran = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterRunIsNoop) {
  Engine eng;
  const EventId id = eng.schedule(1.0, [] {});
  eng.run();
  eng.cancel(id);  // should not crash or affect anything
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, RunUntilHorizonStops) {
  Engine eng;
  int fired = 0;
  eng.schedule(1.0, [&] { ++fired; });
  eng.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(eng.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pending(), 1u);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RejectsNegativeDelay) {
  Engine eng;
  // Scheduling contracts are ECF_CHECKs; the test harness installs the
  // throwing failure handler, so violations surface as CheckFailure.
  EXPECT_THROW(eng.schedule(-1.0, [] {}), util::CheckFailure);
}

TEST(Engine, RejectsPastAbsoluteTime) {
  Engine eng;
  eng.schedule(5.0, [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(1.0, [] {}), util::CheckFailure);
}

TEST(Engine, ResetClearsState) {
  Engine eng;
  eng.schedule(1.0, [] {});
  eng.run();
  eng.reset();
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, ScheduleAtAbsoluteTime) {
  Engine eng;
  double when = -1;
  eng.schedule(1.0, [&] {
    eng.schedule_at(10.0, [&] { when = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(when, 10.0);
}

}  // namespace
}  // namespace ecf::sim
