#include "sim/resources.h"

#include <gtest/gtest.h>

#include "sim/hardware_profiles.h"

namespace ecf::sim {
namespace {

TEST(FifoServer, SerializesWork) {
  Engine eng;
  FifoServer s;
  EXPECT_DOUBLE_EQ(s.reserve(eng, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(s.reserve(eng, 3.0), 5.0);  // queues behind the first
  EXPECT_DOUBLE_EQ(s.busy_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(s.queued_seconds(), 2.0);
}

TEST(FifoServer, IdleGapsAreNotBusy) {
  Engine eng;
  FifoServer s;
  s.reserve(eng, 1.0);
  eng.schedule(10.0, [] {});
  eng.run();  // now = 10
  EXPECT_DOUBLE_EQ(s.reserve(eng, 1.0), 11.0);
  EXPECT_DOUBLE_EQ(s.busy_seconds(), 2.0);
}

TEST(Disk, ServiceTimeCombinesBandwidthAndIops) {
  DiskParams p;
  p.read_bw_bytes_per_s = ecf::util::Rate(100e6);
  p.write_bw_bytes_per_s = ecf::util::Rate(50e6);
  p.per_io_seconds = ecf::util::SimSec(1e-3);
  Disk d(p);
  EXPECT_NEAR(d.read_service(100'000'000, 1), 1.001, 1e-9);
  EXPECT_NEAR(d.read_service(0, 1000), 1.0, 1e-9);
  EXPECT_NEAR(d.write_service(50'000'000, 2), 1.002, 1e-9);
}

TEST(Disk, TracksCounters) {
  Engine eng;
  Disk d(DiskParams{});
  d.read(eng, 1000, 2);
  d.write(eng, 500, 1);
  EXPECT_EQ(d.bytes_read(), 1000u);
  EXPECT_EQ(d.bytes_written(), 500u);
  EXPECT_EQ(d.io_count(), 3u);
}

TEST(Disk, ExtraSecondsExtendService) {
  Engine eng;
  DiskParams p;
  p.read_bw_bytes_per_s = ecf::util::Rate(1e9);
  p.per_io_seconds = ecf::util::SimSec(0);
  Disk d(p);
  const SimTime t = d.read(eng, 1'000'000, 1, 0.5);
  EXPECT_NEAR(t, 0.501, 1e-9);
}

TEST(Disk, ConcurrentReadsQueue) {
  Engine eng;
  DiskParams p;
  p.read_bw_bytes_per_s = ecf::util::Rate(100e6);
  p.per_io_seconds = ecf::util::SimSec(0);
  Disk d(p);
  const SimTime t1 = d.read(eng, 100'000'000);  // 1s
  const SimTime t2 = d.read(eng, 100'000'000);  // queues behind
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(Nic, DuplexDirectionsIndependent) {
  Engine eng;
  NicParams p;
  p.bw_bytes_per_s = ecf::util::Rate(1e9);
  p.per_msg_seconds = ecf::util::SimSec(0);
  Nic nic(p);
  const SimTime tx = nic.send(eng, 1'000'000'000);
  const SimTime rx = nic.recv(eng, 1'000'000'000);
  // Same completion: send does not block receive.
  EXPECT_NEAR(tx, 1.0, 1e-9);
  EXPECT_NEAR(rx, 1.0, 1e-9);
  EXPECT_EQ(nic.bytes_sent(), 1'000'000'000u);
  EXPECT_EQ(nic.bytes_received(), 1'000'000'000u);
}

TEST(Cpu, CostFactorScalesService) {
  Engine eng;
  CpuParams p;
  p.gf_bytes_per_s = ecf::util::Rate(1e9);
  p.per_op_seconds = ecf::util::SimSec(0);
  Cpu cpu(p);
  const SimTime t1 = cpu.compute(eng, 1'000'000'000, 1.0);
  EXPECT_NEAR(t1, 1.0, 1e-9);
  Cpu cpu2(p);
  const SimTime t2 = cpu2.compute(eng, 1'000'000'000, 2.0);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(Cpu, BusyForReservesSeconds) {
  Engine eng;
  Cpu cpu(CpuParams{});
  EXPECT_NEAR(cpu.busy_for(eng, 1.5), 1.5, 1e-12);
  EXPECT_NEAR(cpu.busy_for(eng, 0.5), 2.0, 1e-12);
}

TEST(HardwareProfiles, SaneOrdering) {
  const auto aws = aws_m5_like();
  const auto nvme = fast_nvme();
  const auto hdd = hdd_cluster();
  EXPECT_GT(nvme.disk.read_bw_bytes_per_s, aws.disk.read_bw_bytes_per_s);
  EXPECT_LT(nvme.disk.per_io_seconds, aws.disk.per_io_seconds);
  EXPECT_GT(hdd.disk.per_io_seconds, aws.disk.per_io_seconds);
}

}  // namespace
}  // namespace ecf::sim
