// Silent corruption + deep scrub: injection, detection and in-place repair.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace ecf::cluster {
namespace {

using util::MiB;

ClusterConfig scrub_config() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 16;
  cfg.workload.num_objects = 100;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  cfg.scrub.enabled = true;
  cfg.scrub.interval_s = 2.0;
  cfg.scrub.max_passes = 2;
  cfg.check_invariants = true;  // per-event validation in all tier-1 tests
  return cfg;
}

TEST(Scrub, CorruptionInjectionCounts) {
  Cluster cl(scrub_config());
  cl.create_pool();
  cl.apply_workload();
  const std::uint64_t planted = cl.corrupt_chunks(3, 0.5);
  EXPECT_GT(planted, 0u);
  EXPECT_EQ(cl.report().corruptions_injected, planted);
  // The fault is silent: no detection, no recovery state change.
  EXPECT_EQ(cl.report().corruptions_found, 0u);
  EXPECT_TRUE(cl.osd_alive(3));
}

TEST(Scrub, RejectsBadFraction) {
  Cluster cl(scrub_config());
  cl.create_pool();
  cl.apply_workload();
  EXPECT_THROW(cl.corrupt_chunks(0, 0.0), std::invalid_argument);
  EXPECT_THROW(cl.corrupt_chunks(0, 1.5), std::invalid_argument);
}

TEST(Scrub, RequiresWorkload) {
  Cluster cl(scrub_config());
  cl.create_pool();
  EXPECT_THROW(cl.corrupt_chunks(0, 0.1), std::logic_error);
  EXPECT_THROW(cl.start_scrub(), std::logic_error);
}

TEST(Scrub, FindsAndRepairsEverything) {
  Cluster cl(scrub_config());
  cl.create_pool();
  cl.apply_workload();
  const std::uint64_t planted = cl.corrupt_chunks(5, 0.3);
  ASSERT_GT(planted, 0u);
  cl.start_scrub();
  cl.engine().run();
  const auto& r = cl.report();
  EXPECT_EQ(r.corruptions_found, planted);
  EXPECT_EQ(r.corruptions_repaired, planted);
  EXPECT_GT(r.pgs_scrubbed, 16u);  // two passes over 16 PGs
}

TEST(Scrub, CleanClusterScrubsQuietly) {
  Cluster cl(scrub_config());
  cl.create_pool();
  cl.apply_workload();
  cl.start_scrub();
  cl.engine().run();
  EXPECT_EQ(cl.report().corruptions_found, 0u);
  EXPECT_EQ(cl.report().corruptions_repaired, 0u);
  EXPECT_EQ(cl.report().pgs_scrubbed, 32u);
}

TEST(Scrub, DisabledScrubIsNoop) {
  ClusterConfig cfg = scrub_config();
  cfg.scrub.enabled = false;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.corrupt_chunks(5, 0.3);
  cl.start_scrub();
  cl.engine().run();
  EXPECT_EQ(cl.report().pgs_scrubbed, 0u);
  EXPECT_EQ(cl.report().corruptions_found, 0u);
}

TEST(Scrub, EmitsInconsistencyLogs) {
  std::vector<LogRecord> records;
  Cluster cl(scrub_config(), [&](const LogRecord& r) { records.push_back(r); });
  cl.create_pool();
  cl.apply_workload();
  cl.corrupt_chunks(7, 0.4);
  cl.start_scrub();
  cl.engine().run();
  bool found = false, repaired = false;
  for (const auto& rec : records) {
    found |= util::contains(rec.message, "inconsistent shards found");
    repaired |= util::contains(rec.message, "repaired in place");
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(repaired);
}

TEST(Scrub, MultipleVictimsAllRepaired) {
  Cluster cl(scrub_config());
  cl.create_pool();
  cl.apply_workload();
  std::uint64_t planted = 0;
  planted += cl.corrupt_chunks(2, 0.2);
  planted += cl.corrupt_chunks(9, 0.2);
  planted += cl.corrupt_chunks(21, 0.2);
  cl.start_scrub();
  cl.engine().run();
  EXPECT_EQ(cl.report().corruptions_repaired, planted);
}

}  // namespace
}  // namespace ecf::cluster
