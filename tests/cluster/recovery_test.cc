// End-to-end recovery behaviour of the cluster simulator: detection,
// checking period, EC recovery, interruption by later failures, and the
// invariants the figure benches rely on.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace ecf::cluster {
namespace {

using util::MiB;

ClusterConfig fast_config() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 32;
  cfg.workload.num_objects = 200;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  // Shrink the protocol timers so tests run the full pipeline quickly.
  cfg.protocol.down_out_interval_s = 30.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.check_invariants = true;  // per-event validation in all tier-1 tests
  return cfg;
}

// Fail one whole host and run to completion.
RecoveryReport run_host_failure(ClusterConfig cfg, HostId host = 2) {
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl, host] { cl.fail_host(host); });
  return cl.run_to_recovery();
}

TEST(Recovery, CompletesAfterHostFailure) {
  const RecoveryReport r = run_host_failure(fast_config());
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.objects_repaired, 0u);
  EXPECT_GT(r.bytes_read_for_recovery, 0u);
  EXPECT_GT(r.bytes_written_for_recovery, 0u);
  EXPECT_EQ(r.epochs_published, 1);
}

TEST(Recovery, TimelineOrdering) {
  const RecoveryReport r = run_host_failure(fast_config());
  EXPECT_LT(r.failure_time, r.detection_time);
  EXPECT_LT(r.detection_time, r.recovery_start_time);
  EXPECT_LT(r.recovery_start_time, r.recovery_end_time);
}

TEST(Recovery, DetectionAfterGracePeriod) {
  ClusterConfig cfg = fast_config();
  cfg.protocol.heartbeat_grace_s = 5.0;
  const RecoveryReport r = run_host_failure(cfg);
  const double latency = r.detection_time - r.failure_time;
  EXPECT_GE(latency, 5.0);
  // grace + phase jitter (bounded by spread * interval + offset).
  EXPECT_LE(latency, 5.0 + cfg.protocol.heartbeat_interval_s *
                               cfg.protocol.detection_spread_factor +
                         1.0);
}

TEST(Recovery, CheckingPeriodDominatedByDownOutInterval) {
  ClusterConfig cfg = fast_config();
  cfg.protocol.down_out_interval_s = 50.0;
  const RecoveryReport r = run_host_failure(cfg);
  EXPECT_GE(r.checking_period(), 50.0);
  EXPECT_LE(r.checking_period(), 80.0);  // + mon tick + peering + grants
}

TEST(Recovery, RepairsEveryChunkOfFailedOsds) {
  ClusterConfig cfg = fast_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  // Chunks on host 2's OSDs = expected repairs.
  std::uint64_t expected = 0;
  for (const OsdId o : cl.osds_on_host(2)) {
    for (const PgId pg : cl.pgs_on_osd(o)) {
      expected += cl.objects_in_pg(pg);
    }
  }
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  const RecoveryReport r = cl.run_to_recovery();
  EXPECT_EQ(r.objects_repaired, expected);
}

TEST(Recovery, ReadVolumeMatchesCodePlan) {
  // RS reads ~k full chunks per repaired chunk.
  ClusterConfig cfg = fast_config();
  const RecoveryReport r = run_host_failure(cfg);
  const double per_repair =
      static_cast<double>(r.bytes_read_for_recovery) /
      static_cast<double>(r.objects_repaired);
  // 16 MiB object, k=9, su=4MiB -> one 4 MiB unit per chunk.
  const double chunk = 4.0 * 1048576.0;
  EXPECT_NEAR(per_repair, 9.0 * chunk, 0.25 * 9.0 * chunk);
}

TEST(Recovery, ClayReadsLessThanRs) {
  ClusterConfig rs_cfg = fast_config();
  const RecoveryReport rs = run_host_failure(rs_cfg);

  ClusterConfig clay_cfg = fast_config();
  clay_cfg.pool.ec_profile = {{"plugin", "clay"}, {"k", "9"}, {"m", "3"},
                              {"d", "11"}};
  const RecoveryReport clay = run_host_failure(clay_cfg);

  // Same failure domain → all single-shard losses → Clay's repair reads
  // d/(q·k) = 11/27 of what RS reads per repaired chunk.
  const double rs_per = static_cast<double>(rs.bytes_read_for_recovery) /
                        static_cast<double>(rs.objects_repaired);
  const double clay_per = static_cast<double>(clay.bytes_read_for_recovery) /
                          static_cast<double>(clay.objects_repaired);
  EXPECT_NEAR(clay_per / rs_per, 11.0 / 27.0, 0.05);
}

TEST(Recovery, WriteVolumeMatchesLostChunks) {
  const RecoveryReport r = run_host_failure(fast_config());
  const double per_repair =
      static_cast<double>(r.bytes_written_for_recovery) /
      static_cast<double>(r.objects_repaired);
  const double chunk = 4.0 * 1048576.0;
  EXPECT_NEAR(per_repair, chunk, 0.1 * chunk);
}

TEST(Recovery, DeviceFailureAlsoRecovers) {
  ClusterConfig cfg = fast_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.fail_device(9); });
  const RecoveryReport r = cl.run_to_recovery();
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.objects_repaired, 0u);
}

TEST(Recovery, ConcurrentFailuresWithinToleranceRecover) {
  ClusterConfig cfg = fast_config();
  cfg.osds_per_host = 3;
  cfg.pool.failure_domain = FailureDomain::kOsd;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  // 3 concurrent device failures on different hosts (within m = 3).
  cl.engine().schedule(1.0, [&cl] {
    cl.fail_device(0);
    cl.fail_device(5);
    cl.fail_device(11);
  });
  const RecoveryReport r = cl.run_to_recovery();
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.epochs_published, 1);
}

TEST(Recovery, StaggeredFailuresPublishMultipleEpochs) {
  ClusterConfig cfg = fast_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.fail_device(2); });
  // Second failure long after the first is marked out.
  cl.engine().schedule(200.0, [&cl] { cl.fail_device(20); });
  const RecoveryReport r = cl.run_to_recovery();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.epochs_published, 2);
}

TEST(Recovery, SecondFailureMidRecoveryStillCompletes) {
  ClusterConfig cfg = fast_config();
  cfg.workload.num_objects = 400;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.fail_device(2); });
  // Injected so its mark-out lands while PGs are recovering from the first.
  cl.engine().schedule(15.0, [&cl] { cl.fail_device(21); });
  const RecoveryReport r = cl.run_to_recovery();
  EXPECT_TRUE(r.complete);
  // Everything missing was eventually repaired, wasted work is accounted.
  std::uint64_t expected = 0;
  // (recompute is awkward post-hoc; at minimum both failures contributed)
  EXPECT_GT(r.objects_repaired, 0u);
  (void)expected;
}

TEST(Recovery, LogsContainFig3Landmarks) {
  std::vector<LogRecord> records;
  ClusterConfig cfg = fast_config();
  Cluster cl(cfg, [&](const LogRecord& r) { records.push_back(r); });
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  bool detected = false, started = false, completed = false, queued = false;
  for (const auto& rec : records) {
    detected |= util::contains(rec.message, "failure detected");
    started |= util::contains(rec.message, "start recovery I/O");
    completed |= util::contains(rec.message, "recovery completed");
    queued |= util::contains(rec.message, "queueing recovery");
  }
  EXPECT_TRUE(detected);
  EXPECT_TRUE(started);
  EXPECT_TRUE(completed);
  EXPECT_TRUE(queued);
}

TEST(Recovery, DeterministicForSeed) {
  const RecoveryReport a = run_host_failure(fast_config());
  const RecoveryReport b = run_host_failure(fast_config());
  EXPECT_DOUBLE_EQ(a.recovery_end_time, b.recovery_end_time);
  EXPECT_EQ(a.objects_repaired, b.objects_repaired);
  EXPECT_EQ(a.bytes_read_for_recovery, b.bytes_read_for_recovery);
}

TEST(Recovery, DifferentSeedsVaryTiming) {
  ClusterConfig a = fast_config();
  ClusterConfig b = fast_config();
  b.seed = 99;
  const RecoveryReport ra = run_host_failure(a);
  const RecoveryReport rb = run_host_failure(b);
  EXPECT_NE(ra.recovery_end_time, rb.recovery_end_time);
}

TEST(Recovery, NoFailureNoRecovery) {
  Cluster cl(fast_config());
  cl.create_pool();
  cl.apply_workload();
  cl.engine().run();
  EXPECT_FALSE(cl.report().complete);
  EXPECT_EQ(cl.report().objects_repaired, 0u);
}

TEST(Recovery, RebuiltChunksAccountedOnTargets) {
  ClusterConfig cfg = fast_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  const std::uint64_t stored_before = cl.total_stored_bytes();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  // Rebuilt chunks add storage on their new homes (the dead OSDs' copies
  // are gone but we do not subtract them — `ceph osd df` on dead OSDs
  // reports nothing either way; the cluster-wide sum grows).
  EXPECT_GT(cl.total_stored_bytes(), stored_before);
}

}  // namespace
}  // namespace ecf::cluster
