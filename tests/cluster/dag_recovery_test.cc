// DAG-staged recovery (pool.dag_recovery): the cluster executes structured
// ec::RepairDag recipes stage by stage — helper-local GF combines on the
// helper's CPU, only combined bytes on the fabric, staged fetches for
// multi-erasure Clay. These tests pin the executor's contract against the
// flat path: byte conservation, wire accounting, relay fan-in reduction,
// and bit-identity whenever the DAG degenerates to a flat plan.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "util/bytes.h"

namespace ecf::cluster {
namespace {

using util::MiB;

ClusterConfig fast_config() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 32;
  cfg.workload.num_objects = 200;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  cfg.protocol.down_out_interval_s = 30.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.check_invariants = true;
  return cfg;
}

RecoveryReport run_device_failure(ClusterConfig cfg, OsdId victim = 3) {
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl, victim] { cl.fail_device(victim); });
  return cl.run_to_recovery();
}

// RS single failure: the DAG distributes the GF decode across the helpers
// (each ships a full-size partial sum), so staged execution moves CPU, not
// bytes — every byte counter must match the flat run exactly, while the
// helper-side combines shift the event timeline.
TEST(DagRecovery, RsStagedConservesBytes) {
  ClusterConfig cfg = fast_config();
  const RecoveryReport flat = run_device_failure(cfg);
  cfg.pool.dag_recovery = true;
  const RecoveryReport dag = run_device_failure(cfg);

  ASSERT_TRUE(flat.complete);
  ASSERT_TRUE(dag.complete);
  EXPECT_EQ(flat.objects_repaired, dag.objects_repaired);
  EXPECT_EQ(flat.bytes_read_for_recovery, dag.bytes_read_for_recovery);
  EXPECT_EQ(flat.bytes_written_for_recovery, dag.bytes_written_for_recovery);
  EXPECT_EQ(flat.bytes_on_wire_for_recovery, dag.bytes_on_wire_for_recovery);
  // Wire = helper shipments + target pushes, so it strictly exceeds writes.
  EXPECT_GT(dag.bytes_on_wire_for_recovery, dag.bytes_written_for_recovery);
  // Helper-local combine CPU really ran: the schedule cannot be identical.
  EXPECT_NE(flat.recovery_end_time, dag.recovery_end_time);
}

// Flat-path wire accounting: a single-epoch host failure ships every
// recovery read and every rebuilt chunk across a NIC exactly once.
TEST(DagRecovery, FlatWireEqualsReadsPlusWrites) {
  ClusterConfig cfg = fast_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  const RecoveryReport r = cl.run_to_recovery();
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.epochs_published, 1);
  EXPECT_EQ(r.bytes_on_wire_for_recovery,
            r.bytes_read_for_recovery + r.bytes_written_for_recovery);
}

// LRC's local-group relay: the flat path funnels every group read into the
// primary, the DAG chains the XOR through the group so the primary receives
// a single combined chunk. Total wire bytes stay equal (each hop ships one
// chunk), but the primary host's NIC fan-in shrinks by the group size.
std::uint64_t lrc_primary_rx(bool dag_on, RecoveryReport* out) {
  ClusterConfig cfg = fast_config();
  cfg.pool.pg_num = 1;  // one PG so the primary's NIC isolates one repair
  cfg.workload.num_objects = 40;
  cfg.pool.ec_profile = {
      {"plugin", "lrc"}, {"k", "8"}, {"l", "2"}, {"g", "2"}};
  cfg.pool.dag_recovery = dag_on;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  const std::vector<OsdId> acting = cl.pg_acting(0);
  const OsdId victim = acting[0];  // data chunk: repaired via its local group
  // acting[0] dies, so acting[1] becomes the recovery primary; remap targets
  // avoid hosts that already hold a chunk, so this host's rx is pure fan-in.
  const HostId primary_host = cl.host_of(acting[1]);
  cl.engine().schedule(1.0, [&cl, victim] { cl.fail_device(victim); });
  *out = cl.run_to_recovery();
  return cl.nic_stats(primary_host).bytes_received;
}

TEST(DagRecovery, LrcRelayCutsPrimaryFanIn) {
  RecoveryReport flat;
  RecoveryReport dag;
  const std::uint64_t rx_flat = lrc_primary_rx(false, &flat);
  const std::uint64_t rx_dag = lrc_primary_rx(true, &dag);
  ASSERT_TRUE(flat.complete);
  ASSERT_TRUE(dag.complete);
  EXPECT_EQ(flat.objects_repaired, dag.objects_repaired);
  EXPECT_EQ(flat.bytes_read_for_recovery, dag.bytes_read_for_recovery);
  // Relay hops ship one chunk each, same as the flat fan-in's chunk count.
  EXPECT_EQ(flat.bytes_on_wire_for_recovery, dag.bytes_on_wire_for_recovery);
  // The headline: the relay delivers 1 combined chunk instead of the whole
  // group, so the primary's NIC receives strictly less.
  EXPECT_LT(rx_dag, rx_flat);
}

// Clay multi-erasure: two lost chunks in one PG force the plane-by-plane
// decode whose fetches the DAG issues stage by stage (per-stage disk reads
// and fabric shipments instead of fetch-everything rounds).
RecoveryReport run_clay_double_failure(bool dag_on) {
  ClusterConfig cfg = fast_config();
  cfg.pool.ec_profile = {
      {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  cfg.pool.dag_recovery = dag_on;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  // Two acting members of PG 0 (distinct hosts under the host failure
  // domain) fail together: PG 0 repairs a genuine double erasure.
  const std::vector<OsdId> acting = cl.pg_acting(0);
  const OsdId v0 = acting[0];
  const OsdId v1 = acting[1];
  cl.engine().schedule(1.0, [&cl, v0, v1] {
    cl.fail_device(v0);
    cl.fail_device(v1);
  });
  return cl.run_to_recovery();
}

TEST(DagRecovery, ClayMultiErasureStagedCompletes) {
  const RecoveryReport flat = run_clay_double_failure(false);
  const RecoveryReport dag = run_clay_double_failure(true);
  ASSERT_TRUE(flat.complete);
  ASSERT_TRUE(dag.complete);
  EXPECT_GT(dag.objects_repaired, 0u);
  EXPECT_GT(dag.bytes_on_wire_for_recovery, 0u);
  // Staged fetches pay per-stage scheduling instead of fetch-all rounds;
  // the timeline must diverge from the flat run.
  EXPECT_NE(flat.recovery_end_time, dag.recovery_end_time);
}

// Hitchhiker's single-failure DAG combines only at the target (its savings
// come from half-chunk reads, not helper-local math), so structured() is
// false and the executor falls through to the flat path — enabling
// dag_recovery must be bit-identical, not merely byte-equal.
TEST(DagRecovery, HitchhikerUnstructuredDagIsBitIdentical) {
  ClusterConfig cfg = fast_config();
  cfg.pool.ec_profile = {{"plugin", "hitchhiker"}, {"k", "9"}, {"m", "3"}};
  const RecoveryReport flat = run_device_failure(cfg);
  cfg.pool.dag_recovery = true;
  const RecoveryReport dag = run_device_failure(cfg);
  ASSERT_TRUE(flat.complete);
  ASSERT_TRUE(dag.complete);
  EXPECT_EQ(flat.recovery_end_time, dag.recovery_end_time);
  EXPECT_EQ(flat.bytes_read_for_recovery, dag.bytes_read_for_recovery);
  EXPECT_EQ(flat.bytes_on_wire_for_recovery, dag.bytes_on_wire_for_recovery);
  EXPECT_EQ(flat.objects_repaired, dag.objects_repaired);
}

// The ISSUE's acceptance gate at cluster level: Hitchhiker(12,9) repairs a
// device failure with measurably fewer bytes on the wire (and read from
// disk) than same-(n,k) Reed-Solomon.
TEST(DagRecovery, HitchhikerShipsFewerBytesThanRs) {
  ClusterConfig cfg = fast_config();
  cfg.pool.dag_recovery = true;
  cfg.pool.ec_profile = {{"plugin", "jerasure"}, {"technique", "reed_sol_van"},
                         {"k", "9"}, {"m", "3"}};
  const RecoveryReport rs = run_device_failure(cfg);
  cfg.pool.ec_profile = {{"plugin", "hitchhiker"}, {"k", "9"}, {"m", "3"}};
  const RecoveryReport hh = run_device_failure(cfg);
  ASSERT_TRUE(rs.complete);
  ASSERT_TRUE(hh.complete);
  EXPECT_EQ(rs.objects_repaired, hh.objects_repaired);
  EXPECT_LT(hh.bytes_read_for_recovery, rs.bytes_read_for_recovery);
  EXPECT_LT(hh.bytes_on_wire_for_recovery, rs.bytes_on_wire_for_recovery);
}

}  // namespace
}  // namespace ecf::cluster
