// Fabric acceptance tests.
//
// 1. Golden-compare: with the default (ideal) FabricParams, routing every
//    OSD disk access through the NVMe-oF fabric must reproduce pre-fabric
//    campaign results BIT-IDENTICALLY. The constants below were captured
//    at the commit immediately before the fabric was introduced, printed
//    with %a; any drift in the event stream shows up as an exact-equality
//    failure here.
// 2. Dirty network: injected link latency must slow recovery down
//    monotonically, with the slowdown attributed to the new transport-wait
//    counters rather than to device time.
// 3. Partition escalation: a network partition outliving the
//    controller-loss timeout must fail the host's devices through the
//    fabric state machine, and recovery must still complete.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "util/bytes.h"

namespace ecf::cluster {
namespace {

ClusterConfig golden_cfg() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 32;
  cfg.workload.num_objects = 200;
  cfg.workload.object_size = ecf::util::Bytes(16 * util::MiB);
  cfg.protocol.down_out_interval_s = 30.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.check_invariants = true;
  return cfg;
}

struct GoldenRun {
  RecoveryReport report;
  double wa = 0;
};

GoldenRun run_golden(ClusterConfig cfg, bool host_fault) {
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  if (host_fault) {
    cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  } else {
    cl.engine().schedule(1.0, [&cl] { cl.fail_device(9); });
  }
  GoldenRun out;
  out.report = cl.run_to_recovery();
  out.wa = cl.actual_wa();
  return out;
}

TEST(FabricGolden, HostFaultRsBitIdentical) {
  const GoldenRun g = run_golden(golden_cfg(), /*host_fault=*/true);
  ASSERT_TRUE(g.report.complete);
  EXPECT_EQ(g.report.recovery_end_time, 0x1.0950027a59b9cp+7);
  EXPECT_EQ(g.report.bytes_read_for_recovery, 6266290176u);
  EXPECT_EQ(g.report.bytes_written_for_recovery, 696254464u);
  EXPECT_EQ(g.report.objects_repaired, 166u);
  EXPECT_EQ(g.wa, 0x1.0d6e147ae147bp+2);
  // The ideal fabric never charges transport time.
  EXPECT_EQ(g.report.fabric_transport_wait_s, 0.0);
  EXPECT_EQ(g.report.fabric_retries, 0u);
  EXPECT_EQ(g.report.fabric_reconnects, 0u);
}

TEST(FabricGolden, DeviceFaultRsBitIdentical) {
  const GoldenRun g = run_golden(golden_cfg(), /*host_fault=*/false);
  ASSERT_TRUE(g.report.complete);
  EXPECT_EQ(g.report.recovery_end_time, 0x1.9b0a4ec5df236p+6);
  EXPECT_EQ(g.report.bytes_read_for_recovery, 4492099584u);
  EXPECT_EQ(g.report.bytes_written_for_recovery, 499122176u);
  EXPECT_EQ(g.report.objects_repaired, 119u);
  EXPECT_EQ(g.wa, 0x1.087eb851eb852p+2);
}

TEST(FabricGolden, HostFaultClayBitIdentical) {
  ClusterConfig cfg = golden_cfg();
  cfg.pool.ec_profile = {
      {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  const GoldenRun g = run_golden(cfg, /*host_fault=*/true);
  ASSERT_TRUE(g.report.complete);
  EXPECT_EQ(g.report.recovery_end_time, 0x1.08e021c85ac5p+7);
  EXPECT_EQ(g.report.bytes_read_for_recovery, 2552956164u);
  EXPECT_EQ(g.report.bytes_written_for_recovery, 696260772u);
  EXPECT_EQ(g.report.objects_repaired, 166u);
  EXPECT_EQ(g.wa, 0x1.0d71666666666p+2);
}

ClusterConfig dirty_cfg() {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.osds_per_host = 2;
  // RS(6,4): placeable across 8 hosts with a host failure domain.
  cfg.pool.ec_profile = {{"plugin", "jerasure"}, {"k", "4"}, {"m", "2"}};
  cfg.pool.pg_num = 16;
  cfg.workload.num_objects = 60;
  cfg.workload.object_size = ecf::util::Bytes(8 * util::MiB);
  cfg.protocol.down_out_interval_s = 10.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  return cfg;
}

TEST(DirtyNetwork, RecoveryTimeMonotoneInLinkLatency) {
  const std::vector<double> latencies = {0.0, 0.001, 0.005, 0.020};
  std::vector<RecoveryReport> reports;
  double total_busy_base = -1;
  for (const double lat : latencies) {
    Cluster cl(dirty_cfg());
    cl.create_pool();
    cl.apply_workload();
    if (lat > 0) {
      for (HostId h = 0; h < cl.config().num_hosts; ++h) {
        cl.set_link_latency(h, lat);
      }
    }
    cl.engine().schedule(1.0, [&cl] { cl.fail_device(3); });
    reports.push_back(cl.run_to_recovery());
    ASSERT_TRUE(reports.back().complete);

    double busy = 0;
    for (OsdId o = 0; o < cl.config().num_osds(); ++o) {
      busy += cl.disk_stats(o).busy_seconds;
    }
    if (total_busy_base < 0) total_busy_base = busy;
    // The network lever must not change device service time: the same
    // chunks move, only the wire gets slower.
    EXPECT_NEAR(busy, total_busy_base, 1e-6 * total_busy_base);
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    // Strictly slower recovery per latency step...
    EXPECT_GT(reports[i].recovery_end_time, reports[i - 1].recovery_end_time);
    // ...with the slowdown showing up in the transport-wait attribution.
    EXPECT_GT(reports[i].fabric_transport_wait_s,
              reports[i - 1].fabric_transport_wait_s);
    // Identical recovery work regardless of network quality.
    EXPECT_EQ(reports[i].bytes_read_for_recovery,
              reports[0].bytes_read_for_recovery);
    EXPECT_EQ(reports[i].bytes_written_for_recovery,
              reports[0].bytes_written_for_recovery);
  }
  EXPECT_EQ(reports[0].fabric_transport_wait_s, 0.0);
  // The wall-clock delta cannot exceed the summed per-command wait.
  EXPECT_LE(reports.back().recovery_end_time - reports[0].recovery_end_time,
            reports.back().fabric_transport_wait_s);
}

TEST(DirtyNetwork, PacketLossAddsRetriesAndSlowdown) {
  auto run = [](double loss) {
    Cluster cl(dirty_cfg());
    cl.create_pool();
    cl.apply_workload();
    if (loss > 0) {
      for (HostId h = 0; h < cl.config().num_hosts; ++h) {
        cl.set_packet_loss(h, loss);
      }
    }
    cl.engine().schedule(1.0, [&cl] { cl.fail_device(3); });
    return cl.run_to_recovery();
  };
  const RecoveryReport clean = run(0.0);
  const RecoveryReport lossy = run(0.05);
  ASSERT_TRUE(clean.complete);
  ASSERT_TRUE(lossy.complete);
  EXPECT_EQ(clean.fabric_retries, 0u);
  EXPECT_GT(lossy.fabric_retries, 0u);
  EXPECT_GT(lossy.recovery_end_time, clean.recovery_end_time);
}

TEST(FabricFault, PartitionEscalatesToDeviceLoss) {
  ClusterConfig cfg = dirty_cfg();
  // Shorten the fabric state machine so the partition exhausts
  // ctrl_loss_tmo quickly (transport costs stay zero).
  cfg.hw.fabric.keepalive_interval_s = ecf::util::SimSec(1.0);
  cfg.hw.fabric.ctrl_loss_timeout_s = ecf::util::SimSec(5.0);
  cfg.hw.fabric.reconnect_backoff_s = ecf::util::SimSec(1.0);
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.partition_host(2, 1000.0); });
  const RecoveryReport r = cl.run_to_recovery();
  ASSERT_TRUE(r.complete);
  // Both devices behind the partitioned link went FAILED and were
  // recovered elsewhere.
  for (const OsdId o : cl.osds_on_host(2)) {
    EXPECT_FALSE(cl.osd_alive(o));
  }
  EXPECT_GT(r.objects_repaired, 0u);
  EXPECT_GT(r.bytes_written_for_recovery, 0u);
}

TEST(FabricFault, ShortFlapDoesNotFailDevices) {
  ClusterConfig cfg = dirty_cfg();
  cfg.hw.fabric.keepalive_interval_s = ecf::util::SimSec(5.0);
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  // 0.5s flap, well under the keep-alive interval: traffic stalls and
  // retries, but every connection survives.
  cl.engine().schedule(1.0, [&cl] { cl.flap_link(2, 0.5); });
  cl.engine().schedule(2.0, [&cl] { cl.fail_device(3); });
  const RecoveryReport r = cl.run_to_recovery();
  ASSERT_TRUE(r.complete);
  for (const OsdId o : cl.osds_on_host(2)) {
    EXPECT_TRUE(cl.osd_alive(o));
  }
  EXPECT_EQ(r.fabric_reconnects, 0u);
}

TEST(FabricFault, DeviceRemovalMidRecoveryWithDirtyNetwork) {
  // A second device yanked while recovery from the first is in flight,
  // on a cluster-wide 1 ms dirty network: re-peering must discard the
  // stale work and still converge.
  ClusterConfig cfg = dirty_cfg();
  cfg.check_invariants = true;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  for (HostId h = 0; h < cl.config().num_hosts; ++h) {
    cl.set_link_latency(h, 0.001);
  }
  cl.engine().schedule(1.0, [&cl] { cl.fail_device(3); });
  cl.engine().schedule(20.0, [&cl] { cl.fail_device(8); });
  const RecoveryReport r = cl.run_to_recovery();
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(cl.osd_alive(3));
  EXPECT_FALSE(cl.osd_alive(8));
  EXPECT_GT(r.objects_repaired, 0u);
  EXPECT_GT(r.fabric_transport_wait_s, 0.0);
  EXPECT_GT(cl.invariant_events_checked(), 0u);
}

}  // namespace
}  // namespace ecf::cluster
