// Recovery QoS: dmClock tag arithmetic, the off-switch's bit-identity
// guarantee, deterministic load-aware helper selection, and pipelined
// chained transfers. The pure tag tests pin the scheduler math the bench
// sweeps; the cluster tests pin the contract that every new knob is
// default-off and, when off, leaves the event schedule untouched.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "cluster/qos.h"
#include "util/bytes.h"

namespace ecf::cluster {
namespace {

using util::KiB;
using util::MiB;

// --- pure dmClock tag arithmetic -------------------------------------------

TEST(DmClockTags, AdvanceTagNeverInPast) {
  // Backlogged: next tag is 1/rate past the previous one.
  EXPECT_DOUBLE_EQ(qos::advance_tag(5.0, 3.0, 2.0), 5.5);
  // Caught up: an op arriving after the previous tag is granted at `now`.
  EXPECT_DOUBLE_EQ(qos::advance_tag(1.0, 10.0, 2.0), 10.0);
  // Disabled rate degenerates to `now`.
  EXPECT_DOUBLE_EQ(qos::advance_tag(7.0, 4.0, 0.0), 4.0);
  // First-ever submission: the sentinel never wins over `now`.
  EXPECT_DOUBLE_EQ(qos::advance_tag(qos::TagState::kNeverTag, 2.0, 10.0), 2.0);
}

TEST(DmClockTags, WeightGapProportionalShare) {
  // Holding a class at w/(w+other) device share spaces grants by
  // cost * other / w.
  EXPECT_DOUBLE_EQ(qos::weight_gap(0.1, 10.0, 20.0), 0.2);
  EXPECT_DOUBLE_EQ(qos::weight_gap(1.0, 1.0, 100.0), 100.0);
  // Doubling the class weight halves the spacing.
  EXPECT_DOUBLE_EQ(qos::weight_gap(0.1, 100.0, 10.0),
                   qos::weight_gap(0.1, 200.0, 10.0) * 2.0);
  // No competition / free ops / disabled weight: no spacing.
  EXPECT_DOUBLE_EQ(qos::weight_gap(0.1, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(qos::weight_gap(0.0, 10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(qos::weight_gap(0.1, 0.0, 20.0), 0.0);
}

qos::QosConfig weights_only() {
  qos::QosConfig cfg;
  cfg.enabled = true;
  cfg.client = {0.0, 100.0, 0.0};
  cfg.recovery = {0.0, 10.0, 0.0};
  cfg.scrub = {0.0, 1.0, 0.0};
  return cfg;
}

// dmClock is work-conserving: a class with no active competitors is never
// deferred, whatever its weight.
TEST(DmClockTags, SoleActiveClassNeverDeferred) {
  const qos::QosConfig cfg = weights_only();
  qos::DmClockOsd osd;
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(
        osd.submit(cfg, qos::OpClass::kRecovery, 1.0, 0.5), 0.0);
  }
}

// A same-instant burst self-serializes: the i-th op waits i spacings of
// cost * other_weight / weight — the proportional-share schedule, not a
// thundering herd.
TEST(DmClockTags, BurstSelfSerializesAtProportionalShare) {
  const qos::QosConfig cfg = weights_only();
  qos::DmClockOsd osd;
  // Mark the client class active so recovery sees competing weight 100.
  osd.submit(cfg, qos::OpClass::kClient, 0.0, 0.0);
  const double cost = 0.01;  // 10 ms of device time per op
  // Only the client class has submitted, so it alone counts as competing
  // weight — scrub is idle and contributes nothing.
  const double gap =
      qos::weight_gap(cost, cfg.recovery.weight, cfg.client.weight);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(osd.submit(cfg, qos::OpClass::kRecovery, 0.0, cost),
                     i * gap);
  }
}

// The reservation tag bounds the hold: even when the weight schedule would
// push an op far out, a class with reservation r dispatches its i-th
// burst op no later than i/r.
TEST(DmClockTags, ReservationCapsWeightDelay) {
  qos::QosConfig cfg = weights_only();
  cfg.recovery = {10.0, 1.0, 0.0};  // weight 1 vs client 100: huge spacing
  qos::DmClockOsd osd;
  osd.submit(cfg, qos::OpClass::kClient, 0.0, 0.0);
  const double weight_spacing = qos::weight_gap(1.0, 1.0, 100.0);  // 100 s
  for (int i = 0; i < 4; ++i) {
    const double d = osd.submit(cfg, qos::OpClass::kRecovery, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(d, i / 10.0);
    EXPECT_LT(d, weight_spacing);
  }
}

// The limit tag is a ceiling that binds even with zero competition: a
// sole-active class capped at 5 ops/s dispatches its burst 0.2 s apart.
TEST(DmClockTags, LimitCapsSoleActiveBurst) {
  qos::QosConfig cfg = weights_only();
  cfg.scrub = {0.0, 1.0, 5.0};
  qos::DmClockOsd osd;
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(osd.submit(cfg, qos::OpClass::kScrub, 0.0, 0.01),
                     i * 0.2);
  }
}

// Idle handling: a class that stayed quiet past idle_reset_s must not bank
// credit (or debt) — its next submission starts from fresh tags, and it
// drops out of competitors' active-weight sums.
TEST(DmClockTags, IdleClassResetsTags) {
  const qos::QosConfig cfg = weights_only();
  qos::DmClockOsd osd;
  osd.submit(cfg, qos::OpClass::kClient, 0.0, 0.0);
  // Build a recovery backlog at t=0.
  double last = 0;
  for (int i = 0; i < 5; ++i) {
    last = osd.submit(cfg, qos::OpClass::kRecovery, 0.0, 0.1);
  }
  EXPECT_GT(last, 0.0);
  // Past the idle window both classes reset: the backlogged weight tag is
  // forgotten and the client class no longer counts as a competitor.
  const double t = cfg.idle_reset_s + 1.0;
  EXPECT_DOUBLE_EQ(osd.submit(cfg, qos::OpClass::kRecovery, t, 0.1), 0.0);
  // Client idle since t=0 means zero competing weight: no spacing either.
  EXPECT_DOUBLE_EQ(osd.submit(cfg, qos::OpClass::kRecovery, t, 0.1), 0.0);
}

// --- cluster-level contracts -----------------------------------------------

ClusterConfig qos_cluster_config() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 32;
  cfg.workload.num_objects = 200;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  cfg.protocol.down_out_interval_s = 30.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.check_invariants = true;
  return cfg;
}

RecoveryReport run_host_failure(ClusterConfig cfg) {
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.start_scrub();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  return cl.run_to_recovery();
}

// The off-switch contract: with qos.enabled == false the tag parameters are
// dead config — even adversarial values must leave the run bit-identical
// to the defaults, because qos_submit_delay() returns before touching any
// state. Client + scrub load makes all three op-class call sites execute.
TEST(RecoveryQos, DisabledIgnoresParams) {
  ClusterConfig base = qos_cluster_config();
  base.client.ops_per_s = 200;
  base.client.op_bytes = util::Bytes(256 * KiB);
  base.client.read_fraction = 0.5;
  base.client.horizon_s = util::SimSec(30.0);
  base.scrub.enabled = true;
  base.scrub.interval_s = 0.5;
  base.scrub.max_passes = 1;

  ClusterConfig wild = base;
  wild.qos.enabled = false;  // explicit: this is the property under test
  wild.qos.idle_reset_s = 0.01;
  wild.qos.client = {0.001, 0.001, 1.0};
  wild.qos.recovery = {9999.0, 5000.0, 9999.0};
  wild.qos.scrub = {500.0, 500.0, 500.0};

  const RecoveryReport a = run_host_failure(base);
  const RecoveryReport b = run_host_failure(wild);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(a.recovery_end_time, b.recovery_end_time);
  EXPECT_EQ(a.bytes_read_for_recovery, b.bytes_read_for_recovery);
  EXPECT_EQ(a.bytes_written_for_recovery, b.bytes_written_for_recovery);
  EXPECT_EQ(a.bytes_on_wire_for_recovery, b.bytes_on_wire_for_recovery);
  EXPECT_EQ(a.client_ops, b.client_ops);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.mean_client_latency(), b.mean_client_latency());
  EXPECT_EQ(a.max_client_latency(), b.max_client_latency());
  EXPECT_EQ(a.pgs_scrubbed, b.pgs_scrubbed);
}

// Turning the scheduler on must actually reschedule something: same
// workload, default tag parameters, and the recovery timeline diverges
// while the repaired-byte totals stay conserved.
TEST(RecoveryQos, EnabledChangesScheduleNotBytes) {
  ClusterConfig cfg = qos_cluster_config();
  cfg.client.ops_per_s = 200;
  cfg.client.op_bytes = util::Bytes(256 * KiB);
  cfg.client.horizon_s = util::SimSec(30.0);
  const RecoveryReport off = run_host_failure(cfg);
  cfg.qos.enabled = true;
  const RecoveryReport on = run_host_failure(cfg);
  ASSERT_TRUE(off.complete);
  ASSERT_TRUE(on.complete);
  EXPECT_NE(off.recovery_end_time, on.recovery_end_time);
  EXPECT_EQ(off.bytes_read_for_recovery, on.bytes_read_for_recovery);
  EXPECT_EQ(off.bytes_written_for_recovery, on.bytes_written_for_recovery);
}

// Load-aware helper selection must be deterministic: the score feeds on
// live fabric state, but ties break by OSD id and every input is itself
// deterministic, so the same config replays bit-identically across event
// lane counts (1 vs 8) and across repeats.
RecoveryReport run_load_aware(int lanes) {
  ClusterConfig cfg = qos_cluster_config();
  cfg.engine_lanes = lanes;
  cfg.helper_selection.enabled = true;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  // Skew the fabric so the load-aware score has real spread to rank on.
  for (HostId h = 0; h < 5; ++h) cl.set_link_latency(h, 2e-3);
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  return cl.run_to_recovery();
}

TEST(RecoveryQos, HelperSelectionDeterministicAcrossLanes) {
  const RecoveryReport one = run_load_aware(1);
  const RecoveryReport eight = run_load_aware(8);
  const RecoveryReport again = run_load_aware(8);
  ASSERT_TRUE(one.complete);
  ASSERT_TRUE(eight.complete);
  EXPECT_EQ(one.recovery_end_time, eight.recovery_end_time);
  EXPECT_EQ(one.bytes_read_for_recovery, eight.bytes_read_for_recovery);
  EXPECT_EQ(one.bytes_on_wire_for_recovery, eight.bytes_on_wire_for_recovery);
  EXPECT_EQ(eight.recovery_end_time, again.recovery_end_time);
  EXPECT_EQ(eight.bytes_read_for_recovery, again.bytes_read_for_recovery);
}

// Pipelined chained transfers reorder work, not bytes: a Clay double
// erasure (the multi-stage DAG the pipeline targets) repairs the same
// objects with identical disk/wire/write totals whether stages run behind
// barriers or overlapped.
RecoveryReport run_clay_double_failure(bool pipelined) {
  ClusterConfig cfg = qos_cluster_config();
  cfg.pool.ec_profile = {
      {"plugin", "clay"}, {"k", "9"}, {"m", "3"}, {"d", "11"}};
  cfg.pool.dag_recovery = true;
  cfg.pool.dag_pipeline = pipelined;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  const std::vector<OsdId> acting = cl.pg_acting(0);
  const OsdId v0 = acting[0];
  const OsdId v1 = acting[1];
  cl.engine().schedule(1.0, [&cl, v0, v1] {
    cl.fail_device(v0);
    cl.fail_device(v1);
  });
  return cl.run_to_recovery();
}

TEST(RecoveryQos, PipelinedClayConservesBytes) {
  const RecoveryReport staged = run_clay_double_failure(false);
  const RecoveryReport piped = run_clay_double_failure(true);
  ASSERT_TRUE(staged.complete);
  ASSERT_TRUE(piped.complete);
  EXPECT_EQ(staged.objects_repaired, piped.objects_repaired);
  EXPECT_EQ(staged.bytes_read_for_recovery, piped.bytes_read_for_recovery);
  EXPECT_EQ(staged.bytes_written_for_recovery,
            piped.bytes_written_for_recovery);
  EXPECT_EQ(staged.bytes_on_wire_for_recovery,
            piped.bytes_on_wire_for_recovery);
}

}  // namespace
}  // namespace ecf::cluster
