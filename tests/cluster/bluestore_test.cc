#include "cluster/bluestore.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace ecf::cluster {
namespace {

using util::KiB;
using util::MiB;

StoreConfig small_store() {
  StoreConfig s;
  s.min_alloc_size = 4 * KiB;
  s.onode_bytes = 1 * KiB;
  s.ec_attr_bytes = 1 * KiB;
  s.pg_log_entry_bytes = 2 * KiB;
  s.rocksdb_space_amp = 2.0;
  return s;
}

TEST(BlueStore, WriteChunkAccountsAllocAndMeta) {
  BlueStore bs(small_store(), CacheConfig{});
  const std::uint64_t added = bs.write_chunk(10 * KiB + 1);
  // Alloc rounds to 12 KiB; metadata = (1+1+2)KiB * 2 amp = 8 KiB.
  EXPECT_EQ(bs.data_bytes(), 12 * KiB);
  EXPECT_EQ(bs.meta_bytes(), 8 * KiB);
  EXPECT_EQ(added, 20 * KiB);
  EXPECT_EQ(bs.onode_count(), 1u);
  EXPECT_EQ(bs.stored_bytes(), 20 * KiB);
}

TEST(BlueStore, RemoveChunkReversesWrite) {
  BlueStore bs(small_store(), CacheConfig{});
  bs.write_chunk(10 * KiB);
  bs.remove_chunk(10 * KiB);
  EXPECT_EQ(bs.stored_bytes(), 0u);
  EXPECT_EQ(bs.onode_count(), 0u);
}

TEST(BlueStore, AlignedWriteHasNoAllocWaste) {
  BlueStore bs(small_store(), CacheConfig{});
  bs.write_chunk(8 * KiB);
  EXPECT_EQ(bs.data_bytes(), 8 * KiB);
}

TEST(BlueStore, HitRatesFollowRatios) {
  StoreConfig store = small_store();
  CacheConfig cache;
  cache.autotune = false;
  cache.kv_ratio = 0.5;
  cache.meta_ratio = 0.3;
  cache.data_ratio = 0.2;
  cache.cache_bytes = ecf::util::Bytes(1 * MiB);
  BlueStore bs(store, cache);
  // Empty store: everything fits, hit rates are 1.
  EXPECT_DOUBLE_EQ(bs.kv_hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(bs.meta_hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(bs.data_hit_rate(), 1.0);
  // Grow working sets far beyond the cache.
  for (int i = 0; i < 1000; ++i) bs.write_chunk(64 * KiB);
  EXPECT_LT(bs.kv_hit_rate(), 1.0);
  EXPECT_LT(bs.meta_hit_rate(), 1.0);
  EXPECT_LT(bs.data_hit_rate(), 1.0);
  // Hit rate proportionality: kv segment (0.5 MiB) over kv working set.
  const double expect_kv =
      0.5 * 1048576.0 / static_cast<double>(bs.kv_working_set());
  EXPECT_NEAR(bs.kv_hit_rate(), expect_kv, 1e-9);
}

TEST(BlueStore, AutotuneConvergesTowardDemand) {
  StoreConfig store = small_store();
  CacheConfig cache = CacheConfig::autotuned();
  cache.cache_bytes = ecf::util::Bytes(8 * MiB);
  BlueStore bs(store, cache);
  for (int i = 0; i < 2000; ++i) bs.write_chunk(64 * KiB);
  const double meta_before = bs.meta_hit_rate();
  for (int i = 0; i < 12; ++i) bs.autotune_step();
  // After tuning, meta+kv hit rates should not be worse than the fixed
  // initial 45/45 split, and ratios should sum sensibly.
  EXPECT_GE(bs.meta_hit_rate() + bs.kv_hit_rate(), meta_before);
  EXPECT_NEAR(bs.kv_ratio() + bs.meta_ratio() + bs.data_ratio(), 1.0, 0.15);
  EXPECT_GE(bs.data_ratio(), 0.05);
}

TEST(BlueStore, AutotuneOffKeepsRatios) {
  BlueStore bs(small_store(), CacheConfig::kv_optimized());
  for (int i = 0; i < 100; ++i) bs.write_chunk(64 * KiB);
  for (int i = 0; i < 5; ++i) bs.autotune_step();
  EXPECT_DOUBLE_EQ(bs.kv_ratio(), 0.70);
  EXPECT_DOUBLE_EQ(bs.meta_ratio(), 0.20);
}

TEST(BlueStore, PaperCacheConfigsMatchTable2) {
  const CacheConfig c1 = CacheConfig::kv_optimized();
  EXPECT_DOUBLE_EQ(c1.kv_ratio, 0.70);
  EXPECT_DOUBLE_EQ(c1.meta_ratio, 0.20);
  EXPECT_DOUBLE_EQ(c1.data_ratio, 0.10);
  const CacheConfig c2 = CacheConfig::data_optimized();
  EXPECT_DOUBLE_EQ(c2.data_ratio, 0.60);
  const CacheConfig c3 = CacheConfig::autotuned();
  EXPECT_TRUE(c3.autotune);
  EXPECT_DOUBLE_EQ(c3.kv_ratio, 0.45);
  EXPECT_DOUBLE_EQ(c3.meta_ratio, 0.45);
}

TEST(BlueStore, Table3CalibrationMagnitudes) {
  // Default StoreConfig must reproduce the Table 3 actual-WA magnitudes:
  // 12 chunks of an 8 MiB-chunk object cost ~1.73x the 64 MiB object.
  StoreConfig store;  // defaults
  BlueStore bs(store, CacheConfig{});
  std::uint64_t total = 0;
  for (int i = 0; i < 12; ++i) total += bs.write_chunk(8 * MiB);
  const double wa = static_cast<double>(total) / (64.0 * 1048576.0);
  EXPECT_NEAR(wa, 1.76, 0.06);
}

}  // namespace
}  // namespace ecf::cluster
