#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "ec/stripe.h"
#include "ec/wa_model.h"
#include "util/bytes.h"

namespace ecf::cluster {
namespace {

using util::KiB;
using util::MiB;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 32;
  cfg.workload.num_objects = 300;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  cfg.check_invariants = true;  // per-event validation in all tier-1 tests
  return cfg;
}

TEST(Cluster, TopologyMatchesConfig) {
  Cluster cl(small_config());
  EXPECT_EQ(cl.config().num_osds(), 30);
  EXPECT_EQ(cl.host_of(0), 0);
  EXPECT_EQ(cl.host_of(1), 0);
  EXPECT_EQ(cl.host_of(2), 1);
  EXPECT_EQ(cl.osds_on_host(3), (std::vector<OsdId>{6, 7}));
  EXPECT_TRUE(cl.osd_alive(17));
  EXPECT_EQ(cl.num_failed_osds(), 0);
}

TEST(Cluster, PoolCreationBuildsActingSets) {
  Cluster cl(small_config());
  cl.create_pool();
  EXPECT_EQ(cl.code().n(), 12u);
  EXPECT_EQ(cl.code().k(), 9u);
  for (PgId pg = 0; pg < 32; ++pg) {
    const auto acting = cl.pg_acting(pg);
    EXPECT_EQ(acting.size(), 12u);
  }
}

TEST(Cluster, PoolRequiresEnoughOsds) {
  ClusterConfig cfg = small_config();
  cfg.num_hosts = 5;  // 10 OSDs < n = 12
  Cluster cl(cfg);
  EXPECT_THROW(cl.create_pool(), std::invalid_argument);
}

TEST(Cluster, DoubleCreateRejected) {
  Cluster cl(small_config());
  cl.create_pool();
  EXPECT_THROW(cl.create_pool(), std::logic_error);
}

TEST(Cluster, WorkloadRequiresPool) {
  Cluster cl(small_config());
  EXPECT_THROW(cl.apply_workload(), std::logic_error);
}

TEST(Cluster, WorkloadDistributesAllObjects) {
  Cluster cl(small_config());
  cl.create_pool();
  cl.apply_workload();
  std::size_t total = 0;
  for (PgId pg = 0; pg < 32; ++pg) total += cl.objects_in_pg(pg);
  EXPECT_EQ(total, 300u);
}

TEST(Cluster, WorkloadAccountsStorage) {
  ClusterConfig cfg = small_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  EXPECT_EQ(cl.workload_bytes(), 300u * 16 * MiB);
  // Stored >= n/k * written (padding + metadata only add).
  EXPECT_GE(cl.actual_wa(), cl.code().theoretical_wa());
  // Data bytes match the stripe layout exactly (all chunks 4K-aligned).
  const auto layout = ec::compute_stripe_layout(16 * MiB, 12, 9,
                                                cfg.pool.stripe_unit);
  EXPECT_EQ(cl.total_data_bytes(), 300u * 12u * layout.chunk_size);
}

TEST(Cluster, ActualWaMatchesFormulaLowerBound) {
  ClusterConfig cfg = small_config();
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  const auto est =
      ec::estimate_wa(16 * MiB, 12, 9, cfg.pool.stripe_unit);
  EXPECT_GE(cl.actual_wa(), est.padding_only - 1e-9);
}

TEST(Cluster, FailDeviceMarksOsdDead) {
  Cluster cl(small_config());
  cl.create_pool();
  cl.apply_workload();
  cl.fail_device(4);
  EXPECT_FALSE(cl.osd_alive(4));
  EXPECT_TRUE(cl.osd_alive(5));
  EXPECT_EQ(cl.num_failed_osds(), 1);
  // Idempotent.
  cl.fail_device(4);
  EXPECT_EQ(cl.num_failed_osds(), 1);
}

TEST(Cluster, FailHostKillsAllItsOsds) {
  Cluster cl(small_config());
  cl.create_pool();
  cl.apply_workload();
  cl.fail_host(3);
  EXPECT_FALSE(cl.osd_alive(6));
  EXPECT_FALSE(cl.osd_alive(7));
  EXPECT_EQ(cl.num_failed_osds(), 2);
}

TEST(Cluster, PgsOnOsdConsistentWithActingSets) {
  Cluster cl(small_config());
  cl.create_pool();
  const auto pgs = cl.pgs_on_osd(9);
  for (const PgId pg : pgs) {
    const auto acting = cl.pg_acting(pg);
    EXPECT_NE(std::find(acting.begin(), acting.end(), 9), acting.end());
  }
}

TEST(Cluster, LogSinkReceivesSetupRecords) {
  std::vector<LogRecord> records;
  Cluster cl(small_config(), [&](const LogRecord& r) { records.push_back(r); });
  cl.create_pool();
  cl.apply_workload();
  ASSERT_GE(records.size(), 3u);
  EXPECT_EQ(records[0].node, "mon.0");
}

TEST(Cluster, EcProfileSelectsCode) {
  ClusterConfig cfg = small_config();
  cfg.pool.ec_profile = {{"plugin", "clay"}, {"k", "6"}, {"m", "3"},
                         {"d", "8"}};
  Cluster cl(cfg);
  cl.create_pool();
  EXPECT_EQ(cl.code().name(), "Clay(9,6,8)");
}

TEST(Cluster, RackDomainEndToEnd) {
  // 16 racks x 1 host: rack-separated placement, and a whole-host failure
  // still recovers.
  ClusterConfig cfg = small_config();
  cfg.num_hosts = 16;
  cfg.hosts_per_rack = 1;
  cfg.pool.failure_domain = FailureDomain::kRack;
  cfg.protocol.down_out_interval_s = 20.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  EXPECT_EQ(cl.rack_of(5), 5);
  for (PgId pg = 0; pg < cfg.pool.pg_num; ++pg) {
    std::set<int> racks;
    for (const OsdId o : cl.pg_acting(pg)) racks.insert(cl.rack_of(cl.host_of(o)));
    EXPECT_EQ(racks.size(), 12u);
  }
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(3); });
  EXPECT_TRUE(cl.run_to_recovery().complete);
}

TEST(Cluster, RackGroupingFollowsHostsPerRack) {
  ClusterConfig cfg = small_config();
  cfg.hosts_per_rack = 5;
  Cluster cl(cfg);
  EXPECT_EQ(cl.rack_of(0), 0);
  EXPECT_EQ(cl.rack_of(4), 0);
  EXPECT_EQ(cl.rack_of(5), 1);
  EXPECT_EQ(cl.rack_of(14), 2);
  EXPECT_THROW(cl.rack_of(99), std::out_of_range);
}

TEST(Cluster, DeterministicAcrossInstances) {
  ClusterConfig cfg = small_config();
  Cluster a(cfg), b(cfg);
  a.create_pool();
  b.create_pool();
  for (PgId pg = 0; pg < 32; ++pg) {
    EXPECT_EQ(a.pg_acting(pg), b.pg_acting(pg));
  }
}

}  // namespace
}  // namespace ecf::cluster
