// Foreground client-load generator: degraded reads, latency accounting,
// and interaction with recovery.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "util/bytes.h"

namespace ecf::cluster {
namespace {

using util::MiB;

ClusterConfig client_config(double ops_per_s) {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 16;
  cfg.workload.num_objects = 100;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  cfg.protocol.down_out_interval_s = 20.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.client.ops_per_s = ops_per_s;
  cfg.client.horizon_s = ecf::util::SimSec(120.0);
  cfg.check_invariants = true;  // per-event validation in all tier-1 tests
  return cfg;
}

TEST(ClientLoad, DisabledByDefault) {
  Cluster cl(client_config(0));
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().run();
  EXPECT_EQ(cl.report().client_ops, 0u);
}

TEST(ClientLoad, RequiresWorkload) {
  Cluster cl(client_config(10));
  cl.create_pool();
  EXPECT_THROW(cl.start_client_load(), std::logic_error);
}

TEST(ClientLoad, ServesOpsOnHealthyCluster) {
  Cluster cl(client_config(20));
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().run();
  const auto& r = cl.report();
  EXPECT_GT(r.client_ops, 100u);  // ~20/s over 120 s, Poisson
  EXPECT_EQ(r.degraded_reads, 0u);
  EXPECT_GT(r.mean_client_latency(), 0.0);
  EXPECT_LT(r.mean_client_latency(), 0.5);  // healthy reads are fast
}

TEST(ClientLoad, FailureCausesDegradedReads) {
  ClusterConfig cfg = client_config(20);
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  const auto& r = cl.report();
  EXPECT_GT(r.client_ops, 0u);
  EXPECT_GT(r.degraded_reads, 0u);
  // Degraded reads gather k shards + decode: tail latency above healthy.
  EXPECT_GT(r.max_client_latency(), 0.01);
}

TEST(ClientLoad, WritesMixedIn) {
  ClusterConfig cfg = client_config(20);
  cfg.client.read_fraction = 0.0;  // all writes
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().run();
  EXPECT_GT(cl.report().client_ops, 0u);
  EXPECT_EQ(cl.report().degraded_reads, 0u);
}

TEST(ClientLoad, ContentionSlowsRecovery) {
  // Recovery with heavy client traffic takes longer than on an idle
  // cluster — the resources are genuinely shared.
  ClusterConfig idle = client_config(0);
  Cluster a(idle);
  a.create_pool();
  a.apply_workload();
  a.engine().schedule(1.0, [&a] { a.fail_host(2); });
  const RecoveryReport idle_report = a.run_to_recovery();

  ClusterConfig busy = client_config(200);
  busy.client.horizon_s = ecf::util::SimSec(1000.0);
  Cluster b(busy);
  b.create_pool();
  b.apply_workload();
  b.start_client_load();
  b.engine().schedule(1.0, [&b] { b.fail_host(2); });
  const RecoveryReport busy_report = b.run_to_recovery();

  ASSERT_TRUE(idle_report.complete);
  ASSERT_TRUE(busy_report.complete);
  EXPECT_GT(busy_report.ec_recovery_period(),
            idle_report.ec_recovery_period());
}

TEST(ClientLoad, DeterministicAcrossRuns) {
  // Same seed, same config ⇒ identical op counts AND identical latency
  // distributions (histogram moments are a strong order-sensitive probe:
  // any divergence in zipf draws, arrival gaps, or event interleaving
  // shows up in the sum of latencies).
  ClusterConfig cfg = client_config(50);
  cfg.client.zipf_theta = 0.99;
  cfg.client.read_fraction = 0.8;
  RecoveryReport runs[2];
  for (auto& r : runs) {
    Cluster cl(cfg);
    cl.create_pool();
    cl.apply_workload();
    cl.start_client_load();
    cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
    r = cl.run_to_recovery();
  }
  EXPECT_EQ(runs[0].client_ops, runs[1].client_ops);
  EXPECT_EQ(runs[0].degraded_reads, runs[1].degraded_reads);
  const auto a = runs[0].client_latency_all();
  const auto b = runs[1].client_latency_all();
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());  // bit-identical, not just close
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(runs[0].recovery_end_time, runs[1].recovery_end_time);
}

TEST(ClientLoad, ClosedLoopBacksOffUnderDegradation) {
  // Closed-loop arrivals serve ops and stay deterministic.
  ClusterConfig cfg = client_config(100);
  cfg.client.closed_loop = true;
  cfg.client.clients = 16;
  cfg.client.think_time_s = ecf::util::SimSec(0.01);
  cfg.client.horizon_s = ecf::util::SimSec(60.0);
  std::uint64_t ops[2];
  for (auto& o : ops) {
    Cluster cl(cfg);
    cl.create_pool();
    cl.apply_workload();
    cl.start_client_load();
    cl.engine().run();
    o = cl.report().client_ops;
  }
  EXPECT_GT(ops[0], 16u);  // every worker completed multiple rounds
  EXPECT_EQ(ops[0], ops[1]);
}

TEST(ClientLoad, DegradedTailAboveCleanTail) {
  // The headline split: during failure + recovery, degraded reads (k-shard
  // gather + decode) carry a heavier tail than clean reads.
  ClusterConfig cfg = client_config(50);
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  cl.run_to_recovery();
  const auto& r = cl.report();
  ASSERT_FALSE(r.client_clean_read_lat.empty());
  ASSERT_FALSE(r.client_degraded_read_lat.empty());
  EXPECT_GT(r.client_degraded_read_lat.percentile(0.99),
            r.client_clean_read_lat.percentile(0.99));
}

TEST(ClientLoad, ZipfSkewConcentratesLoad) {
  // zipf_theta near 1 must still serve ops and hit many distinct PGs via
  // the scrambled rank → object map (no degenerate all-one-PG hammering).
  ClusterConfig cfg = client_config(100);
  cfg.client.zipf_theta = 0.99;
  cfg.client.horizon_s = ecf::util::SimSec(30.0);
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().run();
  EXPECT_GT(cl.report().client_ops, 100u);
  EXPECT_EQ(cl.report().degraded_reads, 0u);
}

TEST(ClientLoad, StopsAtHorizon) {
  ClusterConfig cfg = client_config(50);
  cfg.client.horizon_s = ecf::util::SimSec(10.0);
  Cluster cl(cfg);
  cl.create_pool();
  cl.apply_workload();
  cl.start_client_load();
  cl.engine().run();
  // ~50/s for 10 s; generous bounds for Poisson noise.
  EXPECT_GT(cl.report().client_ops, 200u);
  EXPECT_LT(cl.report().client_ops, 900u);
}

}  // namespace
}  // namespace ecf::cluster
