#include "cluster/pg_autoscale.h"

#include <gtest/gtest.h>

namespace ecf::cluster {
namespace {

TEST(PgAutoscale, PaperClusterRecommends512) {
  // 60 OSDs, width 12, target 100 shards/OSD: raw = 500 -> nearest pow2.
  EXPECT_EQ(recommended_pg_num(60, 12), 512);
}

TEST(PgAutoscale, PowersOfTwoOnly) {
  for (const int osds : {3, 10, 30, 60, 90, 500}) {
    const std::int32_t pg = recommended_pg_num(osds, 12);
    EXPECT_EQ(pg & (pg - 1), 0) << osds;
  }
}

TEST(PgAutoscale, ScalesWithOsdsAndWidth) {
  EXPECT_GT(recommended_pg_num(120, 12), recommended_pg_num(60, 12));
  EXPECT_LT(recommended_pg_num(60, 24), recommended_pg_num(60, 6));
}

TEST(PgAutoscale, MinimumIsOne) {
  EXPECT_EQ(recommended_pg_num(1, 12, 1), 1);
}

TEST(PgAutoscale, RejectsBadArguments) {
  EXPECT_THROW(recommended_pg_num(0, 12), std::invalid_argument);
  EXPECT_THROW(recommended_pg_num(60, 0), std::invalid_argument);
  EXPECT_THROW(recommended_pg_num(60, 12, 0), std::invalid_argument);
}

TEST(PgAutoscale, WindowAcceptsNearbyValues) {
  // Recommendation 512: 256..1024 is inside the 2x window.
  EXPECT_TRUE(pg_num_within_autoscale_window(512, 60, 12));
  EXPECT_TRUE(pg_num_within_autoscale_window(256, 60, 12));
  EXPECT_TRUE(pg_num_within_autoscale_window(1024, 60, 12));
  EXPECT_FALSE(pg_num_within_autoscale_window(16, 60, 12));
  // The paper's pg_num=1 experiment is exactly what the autoscaler warns
  // about.
  EXPECT_FALSE(pg_num_within_autoscale_window(1, 60, 12));
  EXPECT_FALSE(pg_num_within_autoscale_window(0, 60, 12));
}

}  // namespace
}  // namespace ecf::cluster
