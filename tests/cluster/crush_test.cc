#include "cluster/crush.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ecf::cluster {
namespace {

std::vector<HostId> flat_hosts(int hosts, int per_host) {
  std::vector<HostId> out;
  for (HostId h = 0; h < hosts; ++h) {
    for (int d = 0; d < per_host; ++d) out.push_back(h);
  }
  return out;
}

TEST(Crush, DeterministicPlacement) {
  const Crush a(flat_hosts(30, 2), {}, FailureDomain::kHost, 42);
  const Crush b(flat_hosts(30, 2), {}, FailureDomain::kHost, 42);
  const std::vector<bool> alive(60, true);
  for (PgId pg = 0; pg < 64; ++pg) {
    EXPECT_EQ(a.acting_set(pg, 12, alive), b.acting_set(pg, 12, alive));
  }
}

TEST(Crush, DifferentSeedsDifferentPlacement) {
  const Crush a(flat_hosts(30, 2), {}, FailureDomain::kHost, 1);
  const Crush b(flat_hosts(30, 2), {}, FailureDomain::kHost, 2);
  const std::vector<bool> alive(60, true);
  int same = 0;
  for (PgId pg = 0; pg < 32; ++pg) {
    if (a.acting_set(pg, 12, alive) == b.acting_set(pg, 12, alive)) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Crush, HostDomainSeparatesHosts) {
  const Crush c(flat_hosts(30, 2), {}, FailureDomain::kHost, 7);
  const std::vector<bool> alive(60, true);
  for (PgId pg = 0; pg < 128; ++pg) {
    const auto set = c.acting_set(pg, 12, alive);
    std::set<HostId> hosts;
    for (const OsdId o : set) hosts.insert(o / 2);
    EXPECT_EQ(hosts.size(), 12u) << "pg " << pg;
  }
}

TEST(Crush, OsdDomainPrefersHostSpreadWhilePossible) {
  // Even with the osd failure domain, chunks spread across distinct hosts
  // while hosts outnumber the stripe width (CRUSH hierarchical descent).
  const Crush c(flat_hosts(30, 3), {}, FailureDomain::kOsd, 7);
  const std::vector<bool> alive(90, true);
  for (PgId pg = 0; pg < 64; ++pg) {
    const auto set = c.acting_set(pg, 12, alive);
    std::set<HostId> hosts;
    for (const OsdId o : set) hosts.insert(o / 3);
    EXPECT_EQ(hosts.size(), 12u);
  }
}

TEST(Crush, OsdDomainAllowsCoLocationWhenHostsScarce) {
  // 4 hosts x 3 OSDs, width 9: co-location is unavoidable and allowed.
  const Crush c(flat_hosts(4, 3), {}, FailureDomain::kOsd, 7);
  const std::vector<bool> alive(12, true);
  const auto set = c.acting_set(0, 9, alive);
  EXPECT_EQ(set.size(), 9u);
  std::set<OsdId> distinct(set.begin(), set.end());
  EXPECT_EQ(distinct.size(), 9u);
}

TEST(Crush, HostDomainThrowsWhenImpossible) {
  const Crush c(flat_hosts(4, 3), {}, FailureDomain::kHost, 7);
  const std::vector<bool> alive(12, true);
  EXPECT_THROW(c.acting_set(0, 9, alive), std::runtime_error);
}

TEST(Crush, ExcludesDeadOsds) {
  const Crush c(flat_hosts(30, 2), {}, FailureDomain::kHost, 9);
  std::vector<bool> alive(60, true);
  alive[17] = false;
  alive[33] = false;
  for (PgId pg = 0; pg < 64; ++pg) {
    const auto set = c.acting_set(pg, 12, alive);
    EXPECT_EQ(std::count(set.begin(), set.end(), 17), 0);
    EXPECT_EQ(std::count(set.begin(), set.end(), 33), 0);
  }
}

TEST(Crush, MinimalMovementOnFailure) {
  // Removing one OSD must not re-home chunks that did not live on it.
  const Crush c(flat_hosts(30, 2), {}, FailureDomain::kOsd, 11);
  std::vector<bool> alive(60, true);
  const auto before = c.acting_set(5, 12, alive);
  const OsdId victim = before[4];
  alive[static_cast<std::size_t>(victim)] = false;
  const auto after = c.acting_set(5, 12, alive);
  // All survivors keep their relative order; only the victim is replaced.
  std::vector<OsdId> before_without;
  for (const OsdId o : before) {
    if (o != victim) before_without.push_back(o);
  }
  std::vector<OsdId> after_filtered;
  for (const OsdId o : after) {
    if (std::find(before_without.begin(), before_without.end(), o) !=
        before_without.end()) {
      after_filtered.push_back(o);
    }
  }
  EXPECT_EQ(after_filtered, before_without);
}

TEST(Crush, RemapTargetAvoidsCurrentMembers) {
  const Crush c(flat_hosts(30, 2), {}, FailureDomain::kHost, 13);
  std::vector<bool> alive(60, true);
  const auto set = c.acting_set(3, 12, alive);
  std::vector<OsdId> survivors(set.begin() + 1, set.end());
  alive[static_cast<std::size_t>(set[0])] = false;
  const OsdId target = c.remap_target(3, survivors, alive);
  ASSERT_NE(target, kNoOsd);
  EXPECT_EQ(std::count(survivors.begin(), survivors.end(), target), 0);
  // Host-domain: target's host must differ from every survivor's host.
  for (const OsdId s : survivors) {
    EXPECT_NE(s / 2, target / 2);
  }
}

TEST(Crush, RemapTargetReturnsNoOsdWhenExhausted) {
  const Crush c(flat_hosts(2, 1), {}, FailureDomain::kHost, 1);
  std::vector<bool> alive = {true, false};
  const OsdId t = c.remap_target(0, {0}, alive);
  EXPECT_EQ(t, kNoOsd);  // only OSD 0 alive and already a member
}

TEST(Crush, PlacementRoughlyBalanced) {
  const Crush c(flat_hosts(30, 2), {}, FailureDomain::kHost, 21);
  const std::vector<bool> alive(60, true);
  std::vector<int> load(60, 0);
  for (PgId pg = 0; pg < 256; ++pg) {
    for (const OsdId o : c.acting_set(pg, 12, alive)) {
      ++load[static_cast<std::size_t>(o)];
    }
  }
  // 256*12/60 = 51.2 expected; rendezvous hashing should stay within ~2.5x.
  for (const int l : load) {
    EXPECT_GT(l, 20);
    EXPECT_LT(l, 110);
  }
}

std::vector<int> racks_for(int hosts, int per_rack) {
  std::vector<int> out;
  for (int h = 0; h < hosts; ++h) out.push_back(h / per_rack);
  return out;
}

TEST(Crush, RackDomainSeparatesRacks) {
  // 16 racks x 2 hosts x 2 OSDs: width-12 stripes must span 12 racks.
  const Crush c(flat_hosts(32, 2), racks_for(32, 2), FailureDomain::kRack, 5);
  const std::vector<bool> alive(64, true);
  for (PgId pg = 0; pg < 64; ++pg) {
    const auto set = c.acting_set(pg, 12, alive);
    std::set<int> racks;
    for (const OsdId o : set) racks.insert((o / 2) / 2);
    EXPECT_EQ(racks.size(), 12u) << "pg " << pg;
  }
}

TEST(Crush, RackDomainThrowsWithTooFewRacks) {
  // 4 racks cannot host a width-12 rack-separated stripe.
  const Crush c(flat_hosts(8, 2), racks_for(8, 2), FailureDomain::kRack, 5);
  const std::vector<bool> alive(16, true);
  EXPECT_THROW(c.acting_set(0, 12, alive), std::runtime_error);
}

TEST(Crush, RackRemapTargetAvoidsUsedRacks) {
  const Crush c(flat_hosts(32, 2), racks_for(32, 2), FailureDomain::kRack, 5);
  std::vector<bool> alive(64, true);
  const auto set = c.acting_set(3, 12, alive);
  std::vector<OsdId> survivors(set.begin() + 1, set.end());
  alive[static_cast<std::size_t>(set[0])] = false;
  const OsdId target = c.remap_target(3, survivors, alive);
  ASSERT_NE(target, kNoOsd);
  const int target_rack = (target / 2) / 2;
  for (const OsdId s : survivors) {
    EXPECT_NE((s / 2) / 2, target_rack);
  }
}

}  // namespace
}  // namespace ecf::cluster
