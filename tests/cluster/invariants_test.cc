// ClusterInvariants: per-event validation of the cluster simulator, plus
// the negative tests proving the checker actually catches corrupted state.
#include "cluster/invariants.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "util/bytes.h"
#include "util/check.h"

namespace ecf::cluster {
namespace {

using util::MiB;

ClusterConfig checked_config() {
  ClusterConfig cfg;
  cfg.num_hosts = 15;
  cfg.osds_per_host = 2;
  cfg.pool.pg_num = 16;
  cfg.workload.num_objects = 100;
  cfg.workload.object_size = ecf::util::Bytes(16 * MiB);
  cfg.protocol.down_out_interval_s = 20.0;
  cfg.protocol.heartbeat_grace_s = 5.0;
  cfg.check_invariants = true;
  return cfg;
}

TEST(ClusterInvariants, FullRecoveryPassesUnderPerEventValidation) {
  Cluster cl(checked_config());
  ASSERT_TRUE(cl.invariant_checks_enabled());
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] { cl.fail_host(2); });
  const RecoveryReport r = cl.run_to_recovery();
  EXPECT_TRUE(r.complete);
  // Every event of the run went through the four invariant groups.
  EXPECT_GT(cl.invariant_events_checked(), 100u);
}

TEST(ClusterInvariants, EnableIsIdempotentAndOptIn) {
  ClusterConfig cfg = checked_config();
  cfg.check_invariants = false;
  Cluster cl(cfg);
  EXPECT_FALSE(cl.invariant_checks_enabled());
  EXPECT_EQ(cl.invariant_events_checked(), 0u);
  cl.enable_invariant_checks();
  cl.enable_invariant_checks();  // second call is a no-op
  EXPECT_TRUE(cl.invariant_checks_enabled());
}

TEST(ClusterInvariants, LegalTransitionEdgeSet) {
  using S = PgState;
  const auto ok = ClusterInvariants::legal_transition;
  for (const S s : {S::kActiveClean, S::kDegraded, S::kPeering,
                    S::kWaitReservation, S::kRecovering}) {
    EXPECT_TRUE(ok(s, s));  // self-loops always legal
  }
  EXPECT_TRUE(ok(S::kActiveClean, S::kDegraded));
  EXPECT_TRUE(ok(S::kActiveClean, S::kPeering));
  EXPECT_TRUE(ok(S::kDegraded, S::kPeering));
  EXPECT_TRUE(ok(S::kPeering, S::kWaitReservation));
  EXPECT_TRUE(ok(S::kWaitReservation, S::kRecovering));
  EXPECT_TRUE(ok(S::kRecovering, S::kActiveClean));
  // Re-peer edges on a new osdmap epoch.
  EXPECT_TRUE(ok(S::kWaitReservation, S::kPeering));
  EXPECT_TRUE(ok(S::kRecovering, S::kPeering));
  // Within-one-event closure: peering can complete and win its reservation
  // in the same event; a PG with no survivors is declared complete during
  // the epoch publish.
  EXPECT_TRUE(ok(S::kPeering, S::kRecovering));
  EXPECT_TRUE(ok(S::kDegraded, S::kActiveClean));
  // A PG cannot skip peering, recover without a reservation, or move
  // backwards into kDegraded.
  EXPECT_FALSE(ok(S::kActiveClean, S::kRecovering));
  EXPECT_FALSE(ok(S::kActiveClean, S::kWaitReservation));
  EXPECT_FALSE(ok(S::kDegraded, S::kRecovering));
  EXPECT_FALSE(ok(S::kDegraded, S::kWaitReservation));
  EXPECT_FALSE(ok(S::kPeering, S::kDegraded));
  EXPECT_FALSE(ok(S::kWaitReservation, S::kDegraded));
  EXPECT_FALSE(ok(S::kRecovering, S::kDegraded));
  EXPECT_FALSE(ok(S::kRecovering, S::kWaitReservation));
}

TEST(ClusterInvariants, CatchesBrokenCacheAccountingMutation) {
  // Negative test: plant a partition split that oversubscribes the cache
  // (the kind of bug a broken autotune step would introduce) and prove the
  // cache-accounting invariant catches it on the very next event.
  Cluster cl(checked_config());
  cl.create_pool();
  cl.apply_workload();
  cl.engine().schedule(1.0, [&cl] {
    cl.mutable_store(0).override_ratios(0.7, 0.7, 0.7);  // sums to 2.1
  });
  EXPECT_THROW(cl.engine().run(), util::CheckFailure);
}

TEST(ClusterInvariants, CatchesNegativeCacheRatioMutation) {
  Cluster cl(checked_config());
  cl.create_pool();
  cl.engine().schedule(1.0, [&cl] {
    cl.mutable_store(3).override_ratios(-0.1, 0.5, 0.5);
  });
  EXPECT_THROW(cl.engine().run(), util::CheckFailure);
}

TEST(ClusterInvariants, BadCacheConfigRejectedAtFirstUse) {
  // A misconfigured partition split fails the ensure_ratios contract the
  // first time any consumer asks for a ratio or hit rate.
  ClusterConfig cfg = checked_config();
  cfg.cache.autotune = false;
  cfg.cache.kv_ratio = 0.8;
  cfg.cache.meta_ratio = 0.8;  // 1.6 + data oversubscribes the cache
  BlueStore store(cfg.store, cfg.cache);
  EXPECT_THROW(store.kv_ratio(), util::CheckFailure);

  cfg.cache.meta_ratio = -0.2;  // negative ratios are contract violations too
  BlueStore negative(cfg.store, cfg.cache);
  EXPECT_THROW(negative.meta_hit_rate(), util::CheckFailure);
}

TEST(ClusterInvariants, MutableStoreBoundsChecked) {
  Cluster cl(checked_config());
  EXPECT_THROW(cl.mutable_store(-1), util::CheckFailure);
  EXPECT_THROW(cl.mutable_store(30 * 2), util::CheckFailure);
  EXPECT_NO_THROW(cl.mutable_store(0));
}

}  // namespace
}  // namespace ecf::cluster
