#include "ec/shec.h"

#include <gtest/gtest.h>

#include "tests/ec/ec_test_util.h"

namespace ecf::ec {
namespace {

using testutil::round_trip;
using testutil::subsets;

TEST(ShecCode, RejectsBadParameters) {
  EXPECT_THROW(ShecCode(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(ShecCode(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(ShecCode(4, 2, 0), std::invalid_argument);
  EXPECT_THROW(ShecCode(4, 2, 3), std::invalid_argument);  // c > m
  EXPECT_THROW(ShecCode(4, 5, 2), std::invalid_argument);  // m > k
}

TEST(ShecCode, WindowWidthFormula) {
  // l = ceil(k*c/m).
  EXPECT_EQ(ShecCode(6, 3, 2).window(), 4u);
  EXPECT_EQ(ShecCode(10, 5, 2).window(), 4u);
  EXPECT_EQ(ShecCode(8, 4, 3).window(), 6u);
}

TEST(ShecCode, WindowsShingleAndWrap) {
  const ShecCode code(6, 3, 2);
  EXPECT_EQ(code.parity_window(0), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(code.parity_window(1), (std::vector<std::size_t>{2, 3, 4, 5}));
  EXPECT_EQ(code.parity_window(2), (std::vector<std::size_t>{0, 1, 4, 5}));
}

TEST(ShecCode, EveryDataChunkCoveredByCWindows) {
  for (const auto& [k, m, c] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {6, 3, 2}, {8, 4, 3}, {10, 5, 2}, {9, 3, 2}}) {
    const ShecCode code(k, m, c);
    std::vector<int> coverage(k, 0);
    for (std::size_t p = 0; p < m; ++p) {
      for (const std::size_t d : code.parity_window(p)) {
        ++coverage[d];
      }
    }
    for (std::size_t d = 0; d < k; ++d) {
      EXPECT_GE(coverage[d], static_cast<int>(c))
          << "SHEC(" << k << "," << m << "," << c << ") chunk " << d;
    }
  }
}

TEST(ShecCode, GuaranteesAnyCFailures) {
  // The durability contract: every pattern of <= c erasures decodes.
  for (const auto& [k, m, c] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {6, 3, 2}, {8, 4, 2}, {10, 5, 2}}) {
    const ShecCode code(k, m, c);
    for (std::size_t e = 1; e <= c; ++e) {
      for (const auto& pattern : subsets(code.n(), e)) {
        EXPECT_TRUE(code.recoverable(pattern))
            << code.name() << " pattern size " << e;
        EXPECT_TRUE(round_trip(code, 48, pattern, 7))
            << code.name() << " pattern size " << e;
      }
    }
  }
}

TEST(ShecCode, SomePatternsBeyondCAreRecoverable) {
  // SHEC is not MDS: beyond c the recoverable fraction is < 100% but > 0.
  const ShecCode code(6, 3, 2);
  std::size_t good = 0, total = 0;
  for (const auto& pattern : subsets(code.n(), 3)) {
    ++total;
    if (code.recoverable(pattern)) {
      ++good;
      EXPECT_TRUE(round_trip(code, 24, pattern, 11));
    }
  }
  EXPECT_GT(good, 0u);
  EXPECT_LT(good, total);
}

TEST(ShecCode, SingleDataRepairUsesOneWindow) {
  const ShecCode code(6, 3, 2);  // window width 4
  const RepairPlan plan = code.repair_plan({1});
  // 3 surviving window members + the covering parity = 4 reads < k = 6.
  EXPECT_EQ(plan.reads.size(), 4u);
  EXPECT_TRUE(plan.bandwidth_optimal);
  EXPECT_LT(plan.read_fraction_total(), 6.0);
}

TEST(ShecCode, ParityRepairReadsItsWindow) {
  const ShecCode code(6, 3, 2);
  const RepairPlan plan = code.repair_plan({7});  // parity 1
  EXPECT_EQ(plan.reads.size(), 4u);
  for (const auto& r : plan.reads) EXPECT_LT(r.chunk, 6u);
}

TEST(ShecCode, SystematicEncode) {
  const ShecCode code(6, 3, 2);
  auto chunks = testutil::random_chunks(code, 64, 3);
  const std::vector<Buffer> data(chunks.begin(), chunks.begin() + 6);
  code.encode(chunks);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(chunks[i], data[i]);
}

TEST(ShecCode, StorageVsLocalityTradeoffVsRs) {
  // SHEC(6,3,2) stores like RS(9,6) but only tolerates 2 failures — the
  // price paid for the 4-read local repair (RS would read 6).
  const ShecCode shec(6, 3, 2);
  EXPECT_DOUBLE_EQ(shec.theoretical_wa(), 1.5);
  EXPECT_LT(shec.repair_plan({0}).read_fraction_total(), 6.0);
}

}  // namespace
}  // namespace ecf::ec
