// Property-style parameterized sweeps across all codes: any erasure pattern
// within the declared tolerance must round-trip bit-exact, repair plans must
// never read erased chunks, and linearity must hold.
#include <gtest/gtest.h>

#include <memory>

#include "ec/clay.h"
#include "ec/lrc.h"
#include "ec/replication.h"
#include "ec/rs.h"
#include "ec/shec.h"
#include "tests/ec/ec_test_util.h"

namespace ecf::ec {
namespace {

struct CodeSpec {
  std::string label;
  std::function<std::unique_ptr<ErasureCode>()> make;
  bool mds;  // true -> every <=m pattern must decode
};

std::vector<CodeSpec> all_specs() {
  return {
      {"rs_van_12_9", [] { return std::make_unique<RsCode>(12, 9); }, true},
      {"rs_cauchy_15_12",
       [] { return std::make_unique<RsCode>(15, 12, RsTechnique::kCauchy); },
       true},
      {"rs_6_4", [] { return std::make_unique<RsCode>(6, 4); }, true},
      {"clay_12_9_11", [] { return std::make_unique<ClayCode>(12, 9, 11); },
       true},
      {"clay_6_4_5", [] { return std::make_unique<ClayCode>(6, 4, 5); }, true},
      {"clay_8_6_7", [] { return std::make_unique<ClayCode>(8, 6, 7); }, true},
      {"lrc_8_2_2", [] { return std::make_unique<LrcCode>(8, 2, 2); }, false},
      {"shec_6_3_2", [] { return std::make_unique<ShecCode>(6, 3, 2); }, false},
      {"shec_8_4_2", [] { return std::make_unique<ShecCode>(8, 4, 2); }, false},
      {"lrc_6_3_2", [] { return std::make_unique<LrcCode>(6, 3, 2); }, false},
      {"rep_3", [] { return std::make_unique<ReplicationCode>(3); }, true},
  };
}

class CodeProperty : public ::testing::TestWithParam<CodeSpec> {};

INSTANTIATE_TEST_SUITE_P(
    AllCodes, CodeProperty, ::testing::ValuesIn(all_specs()),
    [](const ::testing::TestParamInfo<CodeSpec>& info) {
      return info.param.label;
    });

TEST_P(CodeProperty, EveryMaxToleranceMdsPatternDecodes) {
  const auto code = GetParam().make();
  const std::size_t chunk = code->alpha() * 4;
  for (const auto& pattern : testutil::subsets(code->n(), code->m())) {
    if (!GetParam().mds) {
      // Non-MDS codes: only verify patterns the code itself claims.
      auto* lrc = dynamic_cast<LrcCode*>(code.get());
      if (lrc && !lrc->recoverable(pattern)) continue;
      auto* shec = dynamic_cast<ShecCode*>(code.get());
      if (shec && !shec->recoverable(pattern)) continue;
    }
    EXPECT_TRUE(testutil::round_trip(*code, chunk, pattern, 1234))
        << GetParam().label;
  }
}

TEST_P(CodeProperty, SingleErasureAlwaysDecodes) {
  const auto code = GetParam().make();
  const std::size_t chunk = code->alpha() * 2;
  for (std::size_t e = 0; e < code->n(); ++e) {
    EXPECT_TRUE(testutil::round_trip(*code, chunk, {e}, 99 + e));
  }
}

TEST_P(CodeProperty, RepairPlanNeverReadsErasedChunks) {
  const auto code = GetParam().make();
  for (std::size_t e = 0; e < code->n(); ++e) {
    const RepairPlan plan = code->repair_plan({e});
    for (const auto& r : plan.reads) {
      EXPECT_NE(r.chunk, e) << GetParam().label;
      EXPECT_GT(r.fraction, 0.0);
      EXPECT_LE(r.fraction, 1.0);
    }
    EXPECT_FALSE(plan.reads.empty());
  }
}

TEST_P(CodeProperty, RepairPlanReadsAreWithinN) {
  const auto code = GetParam().make();
  const RepairPlan plan = code->repair_plan({0});
  for (const auto& r : plan.reads) EXPECT_LT(r.chunk, code->n());
}

TEST_P(CodeProperty, EncodeIsLinear) {
  // encode(a) XOR encode(b) == encode(a XOR b): all codes here are linear
  // over GF(2^8), so XOR (field addition) commutes with encoding.
  const auto code = GetParam().make();
  const std::size_t chunk = code->alpha() * 2;
  auto a = testutil::random_chunks(*code, chunk, 1);
  auto b = testutil::random_chunks(*code, chunk, 2);
  auto sum = a;
  for (std::size_t i = 0; i < code->k(); ++i) {
    for (std::size_t j = 0; j < chunk; ++j) sum[i][j] ^= b[i][j];
  }
  code->encode(a);
  code->encode(b);
  code->encode(sum);
  for (std::size_t i = 0; i < code->n(); ++i) {
    for (std::size_t j = 0; j < chunk; ++j) {
      ASSERT_EQ(sum[i][j], a[i][j] ^ b[i][j])
          << GetParam().label << " chunk " << i << " byte " << j;
    }
  }
}

TEST_P(CodeProperty, ZeroDataEncodesToZeroParity) {
  const auto code = GetParam().make();
  const std::size_t chunk = code->alpha();
  std::vector<Buffer> chunks(code->n(), Buffer(chunk, 0));
  code->encode(chunks);
  for (const auto& c : chunks) {
    EXPECT_EQ(c, Buffer(chunk, 0)) << GetParam().label;
  }
}

TEST_P(CodeProperty, DecodeIdempotent) {
  // Decoding the same pattern twice leaves the stripe unchanged.
  const auto code = GetParam().make();
  const std::size_t chunk = code->alpha() * 3;
  auto chunks = testutil::random_chunks(*code, chunk, 31);
  code->encode(chunks);
  const auto golden = chunks;
  ASSERT_TRUE(erase_and_decode(*code, chunks, {0}));
  ASSERT_TRUE(erase_and_decode(*code, chunks, {0}));
  EXPECT_EQ(chunks, golden);
}

TEST_P(CodeProperty, TheoreticalWaIsNOverK) {
  const auto code = GetParam().make();
  EXPECT_NEAR(code->theoretical_wa(),
              static_cast<double>(code->n()) / static_cast<double>(code->k()),
              1e-12);
}

}  // namespace
}  // namespace ecf::ec
