#include "ec/clay.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/ec/ec_test_util.h"

namespace ecf::ec {
namespace {

using testutil::random_chunks;
using testutil::round_trip;
using testutil::subsets;

TEST(ClayCode, RejectsBadParameters) {
  EXPECT_THROW(ClayCode(12, 0, 11), std::invalid_argument);
  EXPECT_THROW(ClayCode(12, 12, 11), std::invalid_argument);
  EXPECT_THROW(ClayCode(12, 9, 8), std::invalid_argument);   // d < k
  EXPECT_THROW(ClayCode(12, 9, 12), std::invalid_argument);  // d > n-1
}

TEST(ClayCode, PaperParameters) {
  const ClayCode code(12, 9, 11);
  EXPECT_EQ(code.q(), 3u);       // d-k+1
  EXPECT_EQ(code.t(), 4u);       // n/q
  EXPECT_EQ(code.alpha(), 81u);  // q^t
  EXPECT_EQ(code.name(), "Clay(12,9,11)");
  EXPECT_NEAR(code.repair_bandwidth_fraction(), 11.0 / 27.0, 1e-12);
}

TEST(ClayCode, ChunkSizeMustBeMultipleOfAlpha) {
  const ClayCode code(12, 9, 11);
  std::vector<Buffer> chunks(12, Buffer(80));  // 80 % 81 != 0
  EXPECT_THROW(code.encode(chunks), std::invalid_argument);
}

TEST(ClayCode, SystematicEncodePreservesData) {
  const ClayCode code(12, 9, 11);
  auto chunks = random_chunks(code, 81 * 2, 5);
  const std::vector<Buffer> data(chunks.begin(), chunks.begin() + 9);
  code.encode(chunks);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(chunks[i], data[i]);
}

TEST(ClayCode, EncodeIsDeterministic) {
  const ClayCode code(6, 4, 5);
  auto a = random_chunks(code, code.alpha() * 4, 9);
  auto b = a;
  code.encode(a);
  code.encode(b);
  EXPECT_EQ(a, b);
}

// Clay(12,9,11): all single and double patterns, sampled triple patterns
// (all 220 are covered in the slower property suite).
TEST(ClayCode, PaperCodeSingleErasures) {
  const ClayCode code(12, 9, 11);
  for (std::size_t e = 0; e < 12; ++e) {
    EXPECT_TRUE(round_trip(code, 81, {e}, 100 + e)) << "erased " << e;
  }
}

TEST(ClayCode, PaperCodeDoubleErasures) {
  const ClayCode code(12, 9, 11);
  for (const auto& pattern : subsets(12, 2)) {
    EXPECT_TRUE(round_trip(code, 81, pattern, 200))
        << pattern[0] << "," << pattern[1];
  }
}

TEST(ClayCode, PaperCodeTripleErasures) {
  const ClayCode code(12, 9, 11);
  for (const auto& pattern : subsets(12, 3)) {
    EXPECT_TRUE(round_trip(code, 81, pattern, 300))
        << pattern[0] << "," << pattern[1] << "," << pattern[2];
  }
}

TEST(ClayCode, ShortenedCode) {
  // n=10 not divisible by q=3 → internal shortening to n'=12.
  const ClayCode code(10, 7, 9);
  EXPECT_EQ(code.q(), 3u);
  EXPECT_EQ(code.alpha(), 81u);
  for (const auto& pattern : subsets(10, 3)) {
    EXPECT_TRUE(round_trip(code, 81, pattern, 400));
  }
}

TEST(ClayCode, SmallCode) {
  // Clay(4,2,3): q=2, t=2, alpha=4 — tiny enough to reason about by hand.
  const ClayCode code(4, 2, 3);
  EXPECT_EQ(code.alpha(), 4u);
  for (std::size_t e = 1; e <= 2; ++e) {
    for (const auto& pattern : subsets(4, e)) {
      EXPECT_TRUE(round_trip(code, 8, pattern, 500 + e));
    }
  }
}

TEST(ClayCode, DegenerateQ1IsScalar) {
  // d = k → q = 1, alpha = 1: degenerates to a scalar MDS code.
  const ClayCode code(6, 4, 4);
  EXPECT_EQ(code.alpha(), 1u);
  for (const auto& pattern : subsets(6, 2)) {
    EXPECT_TRUE(round_trip(code, 32, pattern, 600));
  }
}

// --- bandwidth-optimal repair ----------------------------------------------

TEST(ClayCode, RepairPlanesCountIsAlphaOverQ) {
  const ClayCode code(12, 9, 11);
  for (std::size_t f = 0; f < 12; ++f) {
    EXPECT_EQ(code.repair_planes(f).size(), 27u);
  }
}

TEST(ClayCode, RepairPlanesMatchFailedNodeCoordinates) {
  const ClayCode code(12, 9, 11);
  // Node f = (x, y) = (f%3, f/3); planes must have digit y equal to x.
  for (std::size_t f = 0; f < 12; ++f) {
    const std::size_t x = f % 3, y = f / 3;
    for (const std::size_t z : code.repair_planes(f)) {
      std::size_t p = 1;
      for (std::size_t i = 0; i < y; ++i) p *= 3;
      EXPECT_EQ((z / p) % 3, x);
    }
  }
}

// Full repair correctness: every chunk of Clay(12,9,11) can be rebuilt
// bit-exact from only the repair-plane sub-chunks of the other 11 chunks.
TEST(ClayCode, RepairOneRebuildsEveryChunk) {
  const ClayCode code(12, 9, 11);
  const std::size_t chunk_size = 81 * 4;
  auto chunks = random_chunks(code, chunk_size, 42);
  code.encode(chunks);
  const std::size_t sub = chunk_size / code.alpha();

  for (std::size_t failed = 0; failed < 12; ++failed) {
    const auto planes = code.repair_planes(failed);
    std::vector<std::vector<Buffer>> helper_planes;
    for (std::size_t h = 0; h < 12; ++h) {
      if (h == failed) continue;
      std::vector<Buffer> supplied;
      for (const std::size_t z : planes) {
        supplied.emplace_back(chunks[h].begin() + z * sub,
                              chunks[h].begin() + (z + 1) * sub);
      }
      helper_planes.push_back(std::move(supplied));
    }
    const Buffer rebuilt = code.repair_one(failed, helper_planes, chunk_size);
    EXPECT_EQ(rebuilt, chunks[failed]) << "failed chunk " << failed;
  }
}

TEST(ClayCode, RepairOneSmallCode) {
  const ClayCode code(4, 2, 3);
  const std::size_t chunk_size = 4 * 3;
  auto chunks = random_chunks(code, chunk_size, 43);
  code.encode(chunks);
  const std::size_t sub = chunk_size / code.alpha();
  for (std::size_t failed = 0; failed < 4; ++failed) {
    const auto planes = code.repair_planes(failed);
    std::vector<std::vector<Buffer>> helper_planes;
    for (std::size_t h = 0; h < 4; ++h) {
      if (h == failed) continue;
      std::vector<Buffer> supplied;
      for (const std::size_t z : planes) {
        supplied.emplace_back(chunks[h].begin() + z * sub,
                              chunks[h].begin() + (z + 1) * sub);
      }
      helper_planes.push_back(std::move(supplied));
    }
    EXPECT_EQ(code.repair_one(failed, helper_planes, chunk_size),
              chunks[failed]);
  }
}

TEST(ClayCode, RepairOneRequiresDNMinus1) {
  const ClayCode code(12, 9, 10);  // d < n-1
  EXPECT_THROW(code.repair_one(0, {}, 81), std::invalid_argument);
}

TEST(ClayCode, RepairPlanSingleFailureIsBandwidthOptimal) {
  const ClayCode code(12, 9, 11);
  const RepairPlan plan = code.repair_plan({3});
  EXPECT_EQ(plan.reads.size(), 11u);  // d helpers
  for (const auto& r : plan.reads) {
    EXPECT_NE(r.chunk, 3u);
    EXPECT_NEAR(r.fraction, 1.0 / 3.0, 1e-12);
  }
  EXPECT_TRUE(plan.bandwidth_optimal);
  // Total bytes: 11/3 chunk vs RS's 9 chunks — the Clay headline saving.
  EXPECT_NEAR(plan.read_fraction_total(), 11.0 / 3.0, 1e-9);
}

TEST(ClayCode, RepairPlanMultiFailureFallsBackToFullStripe) {
  const ClayCode code(12, 9, 11);
  const RepairPlan plan = code.repair_plan({3, 7});
  // The coupled-layer decode needs every survivor, not just k of them.
  EXPECT_EQ(plan.reads.size(), 10u);
  for (const auto& r : plan.reads) {
    EXPECT_DOUBLE_EQ(r.fraction, 1.0);
    EXPECT_EQ(r.subchunk_ios, 3u);  // q scattered segments per unit
  }
  EXPECT_FALSE(plan.bandwidth_optimal);
}

TEST(ClayCode, RepairSubchunkRunsDependOnColumn) {
  const ClayCode code(12, 9, 11);
  // y0 = f/3; runs = (alpha/q) / q^y0 = 27 / 3^y0.
  EXPECT_EQ(code.repair_subchunk_runs(0), 27u);   // y0=0
  EXPECT_EQ(code.repair_subchunk_runs(3), 9u);    // y0=1
  EXPECT_EQ(code.repair_subchunk_runs(6), 3u);    // y0=2
  EXPECT_EQ(code.repair_subchunk_runs(9), 1u);    // y0=3 (contiguous)
}

TEST(ClayCode, RepairReadsLessThanRsWouldFor12_9) {
  const ClayCode code(12, 9, 11);
  const RepairPlan clay = code.repair_plan({0});
  // 11/3 ≈ 3.67 chunk-equivalents vs 9 for RS — a 2.45x traffic reduction.
  EXPECT_LT(clay.read_fraction_total(), 9.0 / 2.0);
}

}  // namespace
}  // namespace ecf::ec
