// Shared helpers for the erasure-code test suites.
#pragma once

#include <cstdint>
#include <vector>

#include "ec/code.h"
#include "util/rng.h"

namespace ecf::ec::testutil {

// n chunk buffers of chunk_size bytes; first k filled with random data,
// parity buffers zero (to be filled by encode).
inline std::vector<Buffer> random_chunks(const ErasureCode& code,
                                         std::size_t chunk_size,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Buffer> chunks(code.n(), Buffer(chunk_size, 0));
  for (std::size_t i = 0; i < code.k(); ++i) {
    for (auto& b : chunks[i]) b = static_cast<gf::Byte>(rng.uniform(256));
  }
  return chunks;
}

// Encode, snapshot, zero out `erased`, decode, compare bit-exact.
inline bool round_trip(const ErasureCode& code, std::size_t chunk_size,
                       const std::vector<std::size_t>& erased,
                       std::uint64_t seed) {
  std::vector<Buffer> chunks = random_chunks(code, chunk_size, seed);
  code.encode(chunks);
  const std::vector<Buffer> golden = chunks;
  if (!erase_and_decode(code, chunks, erased)) return false;
  return chunks == golden;
}

// All e-subsets of [0, n): used for exhaustive erasure-pattern sweeps.
inline std::vector<std::vector<std::size_t>> subsets(std::size_t n,
                                                     std::size_t e) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> idx(e);
  for (std::size_t i = 0; i < e; ++i) idx[i] = i;
  while (true) {
    out.push_back(idx);
    std::size_t i = e;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - e) break;
    }
    if (idx[i] == i + n - e) break;
    ++idx[i];
    for (std::size_t j = i + 1; j < e; ++j) idx[j] = idx[j - 1] + 1;
  }
  return out;
}

}  // namespace ecf::ec::testutil
